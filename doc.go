// Package repro is a from-scratch Go reproduction of "Efficiently
// Detecting Races in Cilk Programs That Use Reducer Hyperobjects" (Lee &
// Schardl, SPAA 2015). The root package holds the evaluation benchmarks
// (bench_test.go) and CLI integration tests; the implementation lives
// under internal/ — see README.md for the map, DESIGN.md for the system
// inventory, and EXPERIMENTS.md for paper-vs-measured results.
package repro
