// Quickstart: declare a reducer, update it in parallel, read it after the
// sync, and run the two race detectors over correct and buggy variants.
package main

import (
	"fmt"

	"repro/internal/cilk"
	"repro/internal/mem"
	"repro/internal/peerset"
	"repro/internal/reducer"
	"repro/internal/spplus"
)

func main() {
	// --- 1. A correct reducer sum. ---
	var total int
	sum := func(c *cilk.Ctx) {
		h := reducer.New[int](c, "sum", reducer.OpAdd[int](), 0)
		c.ParFor("add", 1000, func(cc *cilk.Ctx, i int) {
			h.Update(cc, func(_ *cilk.Ctx, v int) int { return v + i })
		})
		total = h.Value(c) // after the loop's sync: safe
	}
	cilk.Run(sum, cilk.Config{})
	fmt.Printf("serial schedule:        sum = %d\n", total)
	cilk.Run(sum, cilk.Config{Spec: cilk.StealAll{}})
	fmt.Printf("every-steal schedule:   sum = %d (deterministic)\n", total)

	// Peer-Set finds no view-read race in it.
	ps := peerset.New()
	cilk.Run(sum, cilk.Config{Hooks: ps})
	fmt.Printf("peer-set on correct:    %s\n", ps.Report().Summary())

	// --- 2. A view-read race: reading before the sync. ---
	racy := func(c *cilk.Ctx) {
		h := reducer.New[int](c, "sum", reducer.OpAdd[int](), 0)
		c.Spawn("worker", func(cc *cilk.Ctx) {
			h.Update(cc, func(_ *cilk.Ctx, v int) int { return v + 42 })
		})
		_ = h.Value(c) // BUG: the spawned update may not be visible here
		c.Sync()
	}
	ps2 := peerset.New()
	cilk.Run(racy, cilk.Config{Hooks: ps2})
	fmt.Printf("peer-set on buggy:      %s\n", ps2.Report().Summary())

	// --- 3. A determinacy race under SP+ with a steal specification. ---
	al := mem.NewAllocator()
	x := al.Alloc("x", 1)
	detRacy := func(c *cilk.Ctx) {
		h := reducer.New[int](c, "h", reducer.OpAdd[int](), 0)
		c.Spawn("reader", func(cc *cilk.Ctx) { cc.Load(x.At(0)) })
		h.Update(c, func(cc *cilk.Ctx, v int) int {
			cc.Store(x.At(0)) // view-aware write to the location the child reads
			return v + 1
		})
		c.Sync()
	}
	sp := spplus.New()
	cilk.Run(detRacy, cilk.Config{Hooks: sp}) // no steals: same view, serialized
	fmt.Printf("sp+ no steals:          %s\n", sp.Report().Summary())
	sp2 := spplus.New()
	cilk.Run(detRacy, cilk.Config{Spec: cilk.StealAll{}, Hooks: sp2})
	fmt.Printf("sp+ with steals:        %s\n", sp2.Report().Summary())
}
