// Coverage demonstrates §7 of the paper: a single SP+ run checks one
// schedule, and a race hiding in a reduce operation shows up only under
// schedules that elicit that particular reduction. The generated Θ(M + K³)
// specification family checks them all.
package main

import (
	"fmt"

	"repro/internal/cilk"
	"repro/internal/mem"
	"repro/internal/rader"
	"repro/internal/sched"
	"repro/internal/specgen"
	"repro/internal/spplus"
)

// buggyProg hides a race inside the monoid's Reduce: combining the
// segment views that contain markers "s2" and "s3" writes a location that
// strand s1 reads. Only schedules whose reduce tree merges exactly those
// adjacent views trigger the racy write.
func buggyProg(al *mem.Allocator) func(*cilk.Ctx) {
	region := al.Alloc("shared", 1)
	const k = 5
	return func(c *cilk.Ctx) {
		m := cilk.MonoidFuncs(
			func(*cilk.Ctx) any { return []string(nil) },
			func(cc *cilk.Ctx, l, r any) any {
				lt, rt := l.([]string), r.([]string)
				if len(lt) > 0 && lt[0] == "s2" && len(rt) > 0 && rt[0] == "s3" {
					cc.Store(region.At(0)) // the hidden racy write
				}
				return append(lt, rt...)
			},
		)
		h := c.NewReducerQuiet("tags", m, []string{"s0"})
		for i := 1; i <= k; i++ {
			tag := fmt.Sprintf("s%d", i)
			c.Spawn("seg", func(cc *cilk.Ctx) {
				if tag == "s1" {
					cc.Load(region.At(0)) // the other side of the race
				}
			})
			c.Update(h, func(_ *cilk.Ctx, v any) any { return append(v.([]string), tag) })
		}
		c.Sync()
	}
}

func main() {
	al := mem.NewAllocator()
	prog := buggyProg(al)

	fmt.Println("== One schedule is not enough ==")
	for _, name := range []string{"none", "all", "triple:1,2,4"} {
		spec, _ := sched.Parse(name)
		d := spplus.New()
		cilk.Run(prog, cilk.Config{Spec: spec, Hooks: d})
		fmt.Printf("spec %-14s -> %s\n", name, d.Report().Summary())
	}

	fmt.Println()
	fmt.Println("== The Θ(M + K³) family checks every reduce operation ==")
	prof := specgen.Measure(prog)
	fmt.Printf("profile: M=%d, K=%d -> %d update specs + %d reduce specs\n",
		prof.MaxPDepth, prof.MaxSyncBlock,
		len(specgen.UpdateSpecs(prof)), len(specgen.ReduceSpecs(prof)))

	cr := rader.Coverage(prog)
	fmt.Printf("sweep over %d specifications:\n", cr.SpecsRun)
	for _, f := range cr.Races {
		fmt.Printf("  FOUND by %-14s %v\n", f.Spec, f.Race)
	}
	if len(cr.Races) == 0 {
		fmt.Println("  (nothing found — unexpected!)")
	}
}
