// Listrace walks through the paper's Figure 1 program: a linked list
// wrapped in a reducer, scanned in parallel with inserts through a copy
// that was only shallow-copied. The determinacy race hides inside the
// reducer machinery — the write that collides with the scan is performed
// by an Update or Reduce operation on a view — so SP-bags misses its
// significance while SP+ pins it down, and only under schedules that
// actually steal.
package main

import (
	"fmt"

	"repro/internal/cilk"
	"repro/internal/mem"
	"repro/internal/peerset"
	"repro/internal/progs"
	"repro/internal/rader"
	"repro/internal/sched"
	"repro/internal/spplus"
)

func main() {
	fmt.Println("== Figure 1: the shallow-copy linked-list program ==")

	// Serial schedule: the program misbehaves in no way SP+ can pin on
	// this execution.
	al := mem.NewAllocator()
	prog := progs.Fig1(al, progs.Fig1Options{})
	d := spplus.New()
	cilk.Run(prog, cilk.Config{Hooks: d})
	fmt.Printf("sp+ under the serial schedule:   %s\n", d.Report().Summary())

	// A schedule with steals: the scan of the shared nodes races with the
	// view-aware writes of the list reducer.
	out := rader.MustRun(prog, rader.Config{Detector: rader.SPPlus, Spec: cilk.StealAll{}})
	fmt.Printf("sp+ under steal-all:             %s\n", out.Report.Summary())
	fmt.Printf("replayable via steal spec:       %s\n", out.Replay)

	// The replay label reproduces it exactly.
	spec, err := sched.Parse(out.Replay)
	if err != nil {
		panic(err)
	}
	again := rader.MustRun(prog, rader.Config{Detector: rader.SPPlus, Spec: spec})
	fmt.Printf("replayed:                        %s\n", again.Report.Summary())

	// Peer-Set stays silent — this bug is not a view-read race.
	ps := peerset.New()
	cilk.Run(prog, cilk.Config{Hooks: ps})
	fmt.Printf("peer-set (not its kind of bug):  %s\n", ps.Report().Summary())

	// The §7 coverage sweep finds it without being told the schedule.
	cr := rader.Coverage(prog)
	fmt.Printf("coverage sweep (%d specs):        %d distinct race(s)\n", cr.SpecsRun, len(cr.Races))
	for _, f := range cr.Races {
		fmt.Printf("  elicited by %-12s %v\n", f.Spec, f.Race)
	}

	// And the fix: a deep copy separates the memory; the sweep is clean.
	fixed := progs.Fig1(mem.NewAllocator(), progs.Fig1Options{DeepCopy: true})
	crFixed := rader.Coverage(fixed)
	fmt.Printf("after the deep-copy fix:         clean=%v across %d specs\n",
		crFixed.Clean(), crFixed.SpecsRun)
}
