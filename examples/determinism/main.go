// Determinism demonstrates §7's precondition checker: the coverage
// guarantee holds only for ostensibly deterministic programs, and
// internal/ostensible tests that property differentially — fingerprinting
// the view-oblivious event stream across a panel of schedules and
// comparing reducer values across reduce orders.
package main

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/cilk"
	"repro/internal/mem"
	"repro/internal/ostensible"
	"repro/internal/reducer"
)

func main() {
	fmt.Println("== Are the evaluation benchmarks ostensibly deterministic? ==")
	for _, app := range apps.All() {
		al := mem.NewAllocator()
		ins := app.Build(al, apps.Test)
		v := ostensible.Check(ins.Prog, 7)
		fmt.Printf("%-10s %v\n", app.Name, v)
	}
	fmt.Println()
	fmt.Println("pbfs fails by design: the frontier bag's structure depends on the")
	fmt.Println("reduce tree, so traversal order — and which vertex wins each")
	fmt.Println("discovery — is schedule-dependent. Its ANSWER is still deterministic;")
	fmt.Println("its instruction trace is not, which is what §7's guarantee needs.")

	fmt.Println()
	fmt.Println("== A non-associative \"monoid\" is caught by value comparison ==")
	sub := cilk.MonoidFuncs(
		func(*cilk.Ctx) any { return 0 },
		func(_ *cilk.Ctx, l, r any) any { return l.(int) - r.(int) }, // not associative!
	)
	v := ostensible.CheckValue(func(c *cilk.Ctx) string {
		r := c.NewReducerQuiet("bad", sub, 0)
		for i := 1; i <= 6; i++ {
			i := i
			c.Spawn("u", func(cc *cilk.Ctx) {
				cc.Update(r, func(_ *cilk.Ctx, x any) any { return x.(int) + i })
			})
		}
		c.Sync()
		return fmt.Sprint(c.Value(r))
	}, 3)
	fmt.Printf("subtraction reducer: %v\n", v)

	fmt.Println()
	fmt.Println("== And a proper monoid passes ==")
	ok := ostensible.CheckValue(func(c *cilk.Ctx) string {
		h := reducer.New[int](c, "sum", reducer.OpAdd[int](), 0)
		c.ParForGrain("w", 100, 4, func(cc *cilk.Ctx, i int) {
			h.Update(cc, func(_ *cilk.Ctx, v int) int { return v + i })
		})
		return fmt.Sprint(h.Value(c))
	}, 3)
	fmt.Printf("opadd reducer:       %v\n", ok)
}
