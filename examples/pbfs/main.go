// Pbfs runs the Leiserson–Schardl parallel breadth-first search two ways:
// on the serial Cilk executor under several simulated schedules, and on
// the real work-stealing runtime across worker counts — showing that the
// bag reducer yields identical BFS levels everywhere.
package main

import (
	"fmt"
	"sync/atomic"

	"repro/internal/apps"
	"repro/internal/cilk"
	"repro/internal/mem"
	"repro/internal/workload"
	"repro/internal/wsrt"
)

func main() {
	fmt.Println("== PBFS on the serial executor, simulated schedules ==")
	for _, spec := range []struct {
		name string
		s    cilk.StealSpec
	}{
		{"serial (no steals)", nil},
		{"steal everything", cilk.StealAll{}},
		{"steal everything, eager reduces", cilk.StealAll{Reduce: cilk.ReduceEager}},
	} {
		al := mem.NewAllocator()
		ins := apps.PBFS().Build(al, apps.Small)
		res := cilk.Run(ins.Prog, cilk.Config{Spec: spec.s})
		if err := ins.Verify(); err != nil {
			panic(err)
		}
		fmt.Printf("%-34s ok: %d spawns, %d views, %d reduces\n",
			spec.name, res.Spawns, res.Views, res.Reduces)
	}

	fmt.Println()
	fmt.Println("== PBFS on the parallel work-stealing runtime ==")
	g := workload.RandomGraph(7, 4000, 16000)
	want := workload.BFSLevels(g, 0)
	for _, workers := range []int{1, 2, 4, 8} {
		rt := wsrt.New(workers)
		dist := parallelBFS(rt, g)
		for v := range dist {
			if dist[v] != want[v] {
				panic(fmt.Sprintf("workers=%d: dist[%d]=%d want %d", workers, v, dist[v], want[v]))
			}
		}
		fmt.Printf("workers=%d: levels identical to serial BFS (%d spawns, %d steals)\n",
			workers, rt.Spawns(), rt.Steals())
	}
}

// parallelBFS is a layer-synchronous BFS with a list-of-vertices reducer
// as the next frontier (a simple stand-in for the pennant bag on the wsrt
// substrate).
func parallelBFS(rt *wsrt.Runtime, g *workload.Graph) []int32 {
	dist := make([]int32, g.N)
	for i := range dist {
		dist[i] = -1
	}
	dist[0] = 0
	frontierMonoid := wsrt.MonoidFuncs(
		func() any { return []int32(nil) },
		func(l, r any) any { return append(l.([]int32), r.([]int32)...) },
	)
	rt.Run(func(c *wsrt.Ctx) {
		cur := []int32{0}
		for d := int32(0); len(cur) > 0; d++ {
			next := c.NewReducer("next", frontierMonoid, []int32(nil))
			c.ParFor(len(cur), 16, func(cc *wsrt.Ctx, i int) {
				v := cur[i]
				for _, w := range g.Neighbors(int(v)) {
					// CAS resolves the discovery race: exactly one worker
					// wins w and inserts it into the next frontier.
					if atomic.CompareAndSwapInt32(&dist[w], -1, d+1) {
						cc.Update(next, func(x any) any { return append(x.([]int32), w) })
					}
				}
			})
			cur = c.Value(next).([]int32)
		}
	})
	return dist
}
