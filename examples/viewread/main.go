// Viewread demonstrates peer-set semantics on the paper's Figure 2 dag:
// which pairs of reducer-reads are safe (equal peer sets) and which are
// view-read races, as detected by the Peer-Set algorithm.
package main

import (
	"fmt"

	"repro/internal/cilk"
	"repro/internal/peerset"
	"repro/internal/progs"
)

func check(a, b int) string {
	d := peerset.New()
	cilk.Run(progs.Fig2Reads(a, b), cilk.Config{Hooks: d})
	if d.Report().Empty() {
		return "safe (same peer set)"
	}
	return "VIEW-READ RACE (different peer sets)"
}

func main() {
	fmt.Println("== Peer-set semantics on the Figure 2 dag ==")
	fmt.Println("Strands 1..16 in serial order; reads of one reducer at two strands.")
	fmt.Println()
	pairs := [][2]int{
		{5, 9},   // the paper: same peers — the view at 9 reflects updates since 5
		{10, 14}, // the paper: 12 and 13 are peers of 14 but not of 10
		{1, 9},   // the paper's example race
		{10, 11}, // caller and callee first strand: same peers
		{11, 15}, // race-free through the SP bag with matching spawn counts
		{14, 15}, // same bag, different spawn counts: race
		{9, 10},  // logically parallel reads
		{1, 16},  // both ends of the program: empty peer sets
	}
	for _, p := range pairs {
		fmt.Printf("reads at %2d and %2d: %s\n", p[0], p[1], check(p[0], p[1]))
	}

	fmt.Println()
	fmt.Println("Full peer-set equivalence classes of the dag:")
	for _, class := range progs.Fig2PeerClasses {
		fmt.Printf("  %v\n", class)
	}
}
