// Package repro's root benchmarks regenerate the paper's evaluation:
// BenchmarkFigure7 times every (benchmark × configuration) cell of
// Figure 7 (plus the two baselines that Figure 8 divides by), and the
// remaining benchmarks check the asymptotic claims — Theorem 1 (Peer-Set
// in O(T·α)), Theorem 5 (SP+ in O((T+Mτ)·α)), Theorems 6/7 (specification
// family generation) — and the ablations DESIGN.md calls out. Run
// cmd/benchtab for the assembled overhead tables with the paper's numbers
// alongside; these testing.B benches expose the same cells to `go test
// -bench`.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/apps"
	"repro/internal/cilk"
	"repro/internal/mem"
	"repro/internal/peerset"
	"repro/internal/progs"
	"repro/internal/rader"
	"repro/internal/reducer"
	"repro/internal/sched"
	"repro/internal/spbags"
	"repro/internal/specgen"
	"repro/internal/spplus"
	"repro/internal/wsrt"
)

// benchScale keeps `go test -bench=.` tractable; benchtab -scale bench
// runs the full paper-sized inputs.
const benchScale = apps.Small

// evalConfigs are the timed cells: the two baselines plus Figure 7's four
// detector configurations.
var evalConfigs = []struct {
	name string
	det  rader.DetectorName
	spec func(k int) cilk.StealSpec
}{
	{"baseline", rader.None, func(int) cilk.StealSpec { return nil }},
	{"empty-tool", rader.EmptyTool, func(int) cilk.StealSpec { return nil }},
	{"view-read", rader.PeerSet, func(int) cilk.StealSpec { return nil }},
	{"no-steals", rader.SPPlus, func(int) cilk.StealSpec { return nil }},
	{"check-updates", rader.SPPlus, func(k int) cilk.StealSpec {
		d := k / 2
		if d < 1 {
			d = 1
		}
		return sched.ByDepth{D: d}
	}},
	{"check-reductions", rader.SPPlus, func(k int) cilk.StealSpec {
		return sched.Random{Seed: 20150613, K: k}
	}},
}

// BenchmarkFigure7 times each cell of the evaluation matrix. The overhead
// entries of Figures 7 and 8 are the ratios of these cells' times to the
// baseline and empty-tool rows respectively.
func BenchmarkFigure7(b *testing.B) {
	for _, app := range apps.All() {
		app := app
		al := mem.NewAllocator()
		ins := app.Build(al, benchScale)
		prof := specgen.Measure(ins.Prog)
		for _, cfg := range evalConfigs {
			cfg := cfg
			b.Run(app.Name+"/"+cfg.name, func(b *testing.B) {
				spec := cfg.spec(prof.MaxSyncBlock)
				for i := 0; i < b.N; i++ {
					rader.MustRun(ins.Prog, rader.Config{Detector: cfg.det, Spec: spec})
				}
				b.StopTimer()
				if err := ins.Verify(); err != nil {
					b.Fatal(err)
				}
			})
		}
	}
}

// BenchmarkPeerSetScaling checks Theorem 1: Peer-Set's cost grows
// near-linearly with the serial running time T (fib's T roughly triples
// per +2 of n; per-op times should scale likewise, the α factor being
// effectively constant).
func BenchmarkPeerSetScaling(b *testing.B) {
	for _, n := range []int{12, 15, 18, 21} {
		n := n
		b.Run(fmt.Sprintf("T=fib(%d)", n), func(b *testing.B) {
			prog := fibReducerProg(n)
			for i := 0; i < b.N; i++ {
				d := peerset.New()
				cilk.Run(prog, cilk.Config{Hooks: d})
			}
		})
	}
}

// BenchmarkSPPlusScalingT checks the T term of Theorem 5.
func BenchmarkSPPlusScalingT(b *testing.B) {
	for _, n := range []int{12, 15, 18, 21} {
		n := n
		b.Run(fmt.Sprintf("T=fib(%d)", n), func(b *testing.B) {
			prog := fibReducerProg(n)
			for i := 0; i < b.N; i++ {
				d := spplus.New()
				cilk.Run(prog, cilk.Config{Hooks: d})
			}
		})
	}
}

// BenchmarkSPPlusScalingM checks the M·τ term of Theorem 5: a fixed
// program under specifications with growing steal counts M; each steal
// adds a view and a reduce operation of cost τ.
func BenchmarkSPPlusScalingM(b *testing.B) {
	prog := fibReducerProg(16)
	specs := []struct {
		name string
		spec cilk.StealSpec
	}{
		{"M=0", nil},
		{"M=depth3", sched.ByDepth{D: 3}},
		{"M=depth6", sched.ByDepth{D: 6}},
		{"M=all", cilk.StealAll{}},
	}
	for _, s := range specs {
		s := s
		b.Run(s.name, func(b *testing.B) {
			var steals int
			for i := 0; i < b.N; i++ {
				d := spplus.New()
				res := cilk.Run(prog, cilk.Config{Spec: s.spec, Hooks: d})
				steals = len(res.Steals)
			}
			b.ReportMetric(float64(steals), "steals/run")
		})
	}
}

// BenchmarkSPPlusScalingTau isolates τ: same steal count, reduce
// operations of growing cost.
func BenchmarkSPPlusScalingTau(b *testing.B) {
	for _, tau := range []int{1, 16, 256} {
		tau := tau
		b.Run(fmt.Sprintf("tau=%d", tau), func(b *testing.B) {
			prog := func(c *cilk.Ctx) {
				m := cilk.MonoidFuncs(
					func(*cilk.Ctx) any { return 0 },
					func(_ *cilk.Ctx, l, r any) any {
						s := l.(int) + r.(int)
						for i := 0; i < tau; i++ { // τ units of reduce work
							s = s*1664525 + 1013904223
						}
						return s
					},
				)
				r := c.NewReducer("h", m, 0)
				for i := 0; i < 64; i++ {
					c.Spawn("u", func(cc *cilk.Ctx) {
						cc.Update(r, func(_ *cilk.Ctx, v any) any { return v.(int) + 1 })
					})
				}
				c.Sync()
			}
			for i := 0; i < b.N; i++ {
				d := spplus.New()
				cilk.Run(prog, cilk.Config{Spec: cilk.StealAll{}, Hooks: d})
			}
		})
	}
}

// BenchmarkAblationPStacks measures what SP+'s P stacks and view IDs cost
// over plain SP-bags on a reducer-free workload (DESIGN.md ablation 1).
func BenchmarkAblationPStacks(b *testing.B) {
	al := mem.NewAllocator()
	prog := progs.Random(al, progs.RandomOpts{Seed: 42, NoReducers: true, MaxDepth: 7, MaxStmts: 8})
	b.Run("sp-bags", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d := spbags.New()
			cilk.Run(prog, cilk.Config{Hooks: d})
		}
	})
	b.Run("sp-plus", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d := spplus.New()
			cilk.Run(prog, cilk.Config{Hooks: d})
		}
	})
}

// BenchmarkAblationLabeling compares SP-bags against the two §9 labeling
// schemes (Mellor-Crummey offset-span, Nudler-Rudolph English-Hebrew):
// O(α) constant-size bag operations versus O(depth) reusable labels versus
// ever-growing static labels, on a deep spawn tree.
func BenchmarkAblationLabeling(b *testing.B) {
	al := mem.NewAllocator()
	x := al.Alloc("xs", 64)
	var nest func(c *cilk.Ctx, d int)
	nest = func(c *cilk.Ctx, d int) {
		if d == 0 {
			c.Load(x.At(0))
			c.Store(x.At(1 + d%63))
			return
		}
		c.Spawn("n", func(cc *cilk.Ctx) { nest(cc, d-1) })
		c.Load(x.At(d % 64))
		c.Sync()
	}
	prog := func(c *cilk.Ctx) {
		for i := 0; i < 8; i++ {
			c.Spawn("t", func(cc *cilk.Ctx) { nest(cc, 48) })
		}
		c.Sync()
	}
	for _, det := range []rader.DetectorName{rader.SPBags, rader.OffsetSpan, rader.EnglishHebrew} {
		det := det
		b.Run(string(det), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rader.MustRun(prog, rader.Config{Detector: det})
			}
		})
	}
}

// BenchmarkAblationLazyViews compares the runtime's lazy view creation
// (§1's optimization) against eagerly materializing identity views at
// every steal (DESIGN.md ablation 4), on a program with several reducers
// of which each strand updates only one.
func BenchmarkAblationLazyViews(b *testing.B) {
	prog := func(c *cilk.Ctx) {
		reds := make([]reducer.Handle[int], 8)
		for i := range reds {
			reds[i] = reducer.New[int](c, "r", reducer.OpAdd[int](), 0)
		}
		c.ParForGrain("upd", 512, 1, func(cc *cilk.Ctx, i int) {
			reds[i%8].Update(cc, func(_ *cilk.Ctx, v int) int { return v + 1 })
		})
	}
	for _, eager := range []bool{false, true} {
		name := "lazy"
		if eager {
			name = "eager"
		}
		eager := eager
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cilk.Run(prog, cilk.Config{Spec: cilk.StealAll{}, EagerViews: eager})
			}
		})
	}
}

// BenchmarkSpecGenFamilies times the §7 family construction (Theorems 6
// and 7) for growing sync-block sizes.
func BenchmarkSpecGenFamilies(b *testing.B) {
	for _, k := range []int{8, 16, 32} {
		k := k
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			p := specgen.Profile{MaxPDepth: k, MaxSyncBlock: k}
			for i := 0; i < b.N; i++ {
				if len(specgen.All(p)) == 0 {
					b.Fatal("empty family")
				}
			}
		})
	}
}

// BenchmarkCoverageSweep times the full §7 check of the Figure 1 program.
func BenchmarkCoverageSweep(b *testing.B) {
	al := mem.NewAllocator()
	prog := progs.Fig1(al, progs.Fig1Options{})
	for i := 0; i < b.N; i++ {
		if cr := rader.Coverage(prog); len(cr.Races) == 0 {
			b.Fatal("sweep must find the Figure 1 race")
		}
	}
}

// BenchmarkCoverageSweepScaling shows the Θ(M + K³) sweep cost growing
// with the sync-block size K — the §7 trade-off between coverage and
// work: each +2 of K roughly doubles-to-triples the family.
func BenchmarkCoverageSweepScaling(b *testing.B) {
	for _, k := range []int{3, 5, 7, 9} {
		k := k
		prog := func(c *cilk.Ctx) {
			r := c.NewReducer("h", reducer.OpAdd[int](), 0)
			for i := 0; i < k; i++ {
				c.Spawn("u", func(cc *cilk.Ctx) {
					cc.Update(r, func(_ *cilk.Ctx, v any) any { return v.(int) + 1 })
				})
			}
			c.Sync()
		}
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			var specs int
			for i := 0; i < b.N; i++ {
				cr := rader.Coverage(prog)
				specs = cr.SpecsRun
			}
			b.ReportMetric(float64(specs), "specs")
		})
	}
}

// BenchmarkSweep times the §7 coverage sweep with and without prefix
// sharing on the SweepStress workload (92 specifications, long serial
// preamble shared by every unit) — the testing.B view of the
// BENCH_PR5.json comparison. Workers is pinned to 1 so the ratio
// measures work saved, not scheduling.
func BenchmarkSweep(b *testing.B) {
	factory := func() func(*cilk.Ctx) {
		return progs.SweepStress(mem.NewAllocator(), 7, 2048, 64)
	}
	if specs := len(specgen.All(specgen.Measure(factory()))); specs < 50 {
		b.Fatalf("benchmark family has %d specs, want >= 50", specs)
	}
	for _, mode := range []struct {
		name  string
		naive bool
	}{{"naive", true}, {"prefix", false}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			var cr *rader.CoverageResult
			for i := 0; i < b.N; i++ {
				cr = rader.Sweep(factory, rader.SweepOptions{Workers: 1, Naive: mode.naive})
			}
			if !cr.Complete() || !cr.Clean() {
				b.Fatalf("benchmark sweep misbehaved: failures=%v races=%v", cr.Failures, cr.Races)
			}
			b.ReportMetric(float64(cr.SpecsRun), "specs")
			b.ReportMetric(float64(cr.Stats.Groups), "groups")
		})
	}
}

// BenchmarkWSRT measures the parallel runtime's spawn/join throughput by
// worker count.
func BenchmarkWSRT(b *testing.B) {
	for _, w := range []int{1, 2, 4} {
		w := w
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			rt := wsrt.New(w)
			m := wsrt.MonoidFuncs(func() any { return 0 }, func(l, r any) any { return l.(int) + r.(int) })
			for i := 0; i < b.N; i++ {
				var got int
				rt.Run(func(c *wsrt.Ctx) {
					h := c.NewReducer("sum", m, 0)
					c.ParFor(2048, 32, func(cc *wsrt.Ctx, j int) {
						cc.Update(h, func(v any) any { return v.(int) + 1 })
					})
					got = c.Value(h).(int)
				})
				if got != 2048 {
					b.Fatalf("sum = %d", got)
				}
			}
		})
	}
}

// fibReducerProg is the Theorem 1/5 scaling workload: fib with an opadd
// reducer and per-frame instrumented locals.
func fibReducerProg(n int) func(*cilk.Ctx) {
	return func(c *cilk.Ctx) {
		h := reducer.New[int](c, "calls", reducer.OpAdd[int](), 0)
		next := mem.Addr(1)
		var rec func(c *cilk.Ctx, n int) int
		rec = func(c *cilk.Ctx, n int) int {
			h.Update(c, func(_ *cilk.Ctx, v int) int { return v + 1 })
			if n < 2 {
				return n
			}
			local := next
			next++
			var a, b int
			c.Spawn("fib", func(cc *cilk.Ctx) {
				a = rec(cc, n-1)
				cc.Store(local)
			})
			c.Call("fib", func(cc *cilk.Ctx) { b = rec(cc, n-2) })
			c.Sync()
			c.Load(local)
			return a + b
		}
		rec(c, n)
	}
}
