package main

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"
)

// bootDaemon starts run() on an ephemeral port and returns the base URL
// plus the output buffers and shutdown plumbing.
func bootDaemon(t *testing.T, args ...string) (string, *syncBuffer, *syncBuffer, chan os.Signal, chan int) {
	t.Helper()
	stdout, stderr := &syncBuffer{}, &syncBuffer{}
	shutdown := make(chan os.Signal, 1)
	done := make(chan int, 1)
	go func() {
		done <- run(append([]string{"-addr", "127.0.0.1:0"}, args...), stdout, stderr, shutdown)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if m := addrRe.FindStringSubmatch(stdout.String()); m != nil {
			return "http://" + m[1], stdout, stderr, shutdown, done
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address: %q / %q", stdout.String(), stderr.String())
		}
		time.Sleep(time.Millisecond)
	}
}

func stopDaemon(t *testing.T, shutdown chan os.Signal, done chan int) {
	t.Helper()
	shutdown <- os.Interrupt
	select {
	case code := <-done:
		if code != exitOK {
			t.Fatalf("exit code %d, want %d", code, exitOK)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// The daemon exposes the Go debug surfaces next to the service API, and
// /debug/vars mirrors the metric series as flat JSON.
func TestDaemonDebugEndpoints(t *testing.T) {
	base, _, stderr, shutdown, done := bootDaemon(t, "-workers", "2")

	if status, body := get(t, base+"/debug/pprof/"); status != http.StatusOK {
		t.Fatalf("pprof index: %d %s", status, body)
	}
	if status, body := get(t, base+"/debug/pprof/cmdline"); status != http.StatusOK {
		t.Fatalf("pprof cmdline: %d %s", status, body)
	}
	if status, body := get(t, base+"/debug/pprof/heap?debug=1"); status != http.StatusOK {
		t.Fatalf("pprof heap: %d %s", status, body)
	}

	// One analysis, so the exported series carry real values.
	resp, err := http.Post(base+"/analyze?prog=fig1&spec=all&detector=sp%2B", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	status, body := get(t, base+"/debug/vars")
	if status != http.StatusOK {
		t.Fatalf("/debug/vars: %d", status)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars is not a JSON object: %v\n%s", err, body)
	}
	if vars["memstats"] == nil {
		t.Error("/debug/vars lacks expvar's standard memstats")
	}
	var series map[string]float64
	if err := json.Unmarshal(vars["raderd"], &series); err != nil {
		t.Fatalf("raderd var is not a flat series map: %v\n%s", err, vars["raderd"])
	}
	if series[`raderd_jobs_total{state="done"}`] != 1 {
		t.Errorf("jobs_total done = %v, want 1 (map: %v)", series[`raderd_jobs_total{state="done"}`], series)
	}
	if series["raderd_workers"] != 2 {
		t.Errorf("workers = %v, want 2", series["raderd_workers"])
	}

	stopDaemon(t, shutdown, done)

	// Every request above produced one structured log line with an ID.
	logs := stderr.String()
	for _, want := range []string{"msg=request", "path=/analyze", "path=/debug/vars", "id="} {
		if !strings.Contains(logs, want) {
			t.Errorf("request log missing %q:\n%s", want, logs)
		}
	}
}

// -quiet silences request logging.
func TestDaemonQuiet(t *testing.T) {
	base, _, stderr, shutdown, done := bootDaemon(t, "-quiet")
	if status, _ := get(t, base+"/healthz"); status != http.StatusOK {
		t.Fatalf("healthz: %d", status)
	}
	stopDaemon(t, shutdown, done)
	if logs := stderr.String(); strings.Contains(logs, "msg=request") {
		t.Fatalf("-quiet still logged requests:\n%s", logs)
	}
}

// A second daemon in the same process must not panic on expvar re-publish
// and must export its own (fresh) counters.
func TestDaemonDebugVarsRebind(t *testing.T) {
	base, _, _, shutdown, done := bootDaemon(t, "-quiet", "-workers", "3")
	status, body := get(t, base+"/debug/vars")
	if status != http.StatusOK {
		t.Fatalf("/debug/vars: %d", status)
	}
	var vars struct {
		Raderd map[string]float64 `json:"raderd"`
	}
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatal(err)
	}
	if vars.Raderd["raderd_workers"] != 3 {
		t.Errorf("second daemon exports stale vars: workers = %v, want 3", vars.Raderd["raderd_workers"])
	}
	stopDaemon(t, shutdown, done)
}
