package main

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer lets the test read stdout while the daemon goroutine writes.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var addrRe = regexp.MustCompile(`listening on (\S+)`)

// Boot the daemon on an ephemeral port, analyze a built-in through it,
// then shut it down gracefully and check the exit code.
func TestDaemonEndToEnd(t *testing.T) {
	var stdout, stderr syncBuffer
	shutdown := make(chan os.Signal, 1)
	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-workers", "2"}, &stdout, &stderr, shutdown)
	}()

	var base string
	deadline := time.Now().Add(5 * time.Second)
	for base == "" {
		if m := addrRe.FindStringSubmatch(stdout.String()); m != nil {
			base = "http://" + m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address: %q / %q", stdout.String(), stderr.String())
		}
		time.Sleep(time.Millisecond)
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	ar, err := http.Post(base+"/analyze?prog=fig1&spec=all&detector=sp%2B", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(ar.Body)
	ar.Body.Close()
	if ar.StatusCode != http.StatusOK {
		t.Fatalf("analyze: %d %s", ar.StatusCode, body)
	}
	if !strings.Contains(string(body), `"clean":false`) {
		t.Fatalf("fig1 under steal-all must race: %s", body)
	}

	mr, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	if !strings.Contains(string(mbody), `raderd_jobs_total{state="done"} 1`) {
		t.Fatalf("metrics must count the analysis:\n%s", mbody)
	}

	shutdown <- os.Interrupt
	select {
	case code := <-done:
		if code != exitOK {
			t.Fatalf("exit code %d, want %d (stderr: %s)", code, exitOK, stderr.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	if !strings.Contains(stdout.String(), "shutting down") {
		t.Fatalf("missing shutdown banner: %q", stdout.String())
	}
}

func TestDaemonBadFlags(t *testing.T) {
	var stdout, stderr syncBuffer
	if code := run([]string{"-no-such-flag"}, &stdout, &stderr, nil); code != exitError {
		t.Fatalf("bad flag exit = %d, want %d", code, exitError)
	}
	if code := run([]string{"-addr", "256.256.256.256:99999"}, &stdout, &stderr, nil); code != exitError {
		t.Fatalf("bad addr exit = %d, want %d", code, exitError)
	}
}
