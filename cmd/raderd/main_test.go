package main

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer lets the test read stdout while the daemon goroutine writes.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var addrRe = regexp.MustCompile(`listening on (\S+)`)

// Boot the daemon on an ephemeral port, analyze a built-in through it,
// then shut it down gracefully and check the exit code.
func TestDaemonEndToEnd(t *testing.T) {
	var stdout, stderr syncBuffer
	shutdown := make(chan os.Signal, 1)
	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-workers", "2"}, &stdout, &stderr, shutdown)
	}()

	var base string
	deadline := time.Now().Add(5 * time.Second)
	for base == "" {
		if m := addrRe.FindStringSubmatch(stdout.String()); m != nil {
			base = "http://" + m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address: %q / %q", stdout.String(), stderr.String())
		}
		time.Sleep(time.Millisecond)
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	ar, err := http.Post(base+"/analyze?prog=fig1&spec=all&detector=sp%2B", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(ar.Body)
	ar.Body.Close()
	if ar.StatusCode != http.StatusOK {
		t.Fatalf("analyze: %d %s", ar.StatusCode, body)
	}
	if !strings.Contains(string(body), `"clean":false`) {
		t.Fatalf("fig1 under steal-all must race: %s", body)
	}

	mr, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	if !strings.Contains(string(mbody), `raderd_jobs_total{state="done"} 1`) {
		t.Fatalf("metrics must count the analysis:\n%s", mbody)
	}

	shutdown <- os.Interrupt
	select {
	case code := <-done:
		if code != exitOK {
			t.Fatalf("exit code %d, want %d (stderr: %s)", code, exitOK, stderr.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	if !strings.Contains(stdout.String(), "draining") || !strings.Contains(stdout.String(), "drained, exiting") {
		t.Fatalf("missing drain banners: %q", stdout.String())
	}
}

func TestDaemonBadFlags(t *testing.T) {
	var stdout, stderr syncBuffer
	if code := run([]string{"-no-such-flag"}, &stdout, &stderr, nil); code != exitError {
		t.Fatalf("bad flag exit = %d, want %d", code, exitError)
	}
	if code := run([]string{"-addr", "256.256.256.256:99999"}, &stdout, &stderr, nil); code != exitError {
		t.Fatalf("bad addr exit = %d, want %d", code, exitError)
	}
}

// A -store-dir daemon announces its recovery scan at boot, serves
// verdicts across a restart, and keeps the readiness-before-liveness
// contract while draining.
func TestDaemonDurableRestartAndDrain(t *testing.T) {
	dir := t.TempDir()

	// First incarnation: compute one verdict, then drain out.
	base1, out1, err1, sig1, done1 := bootDaemon(t, "-workers", "2", "-store-dir", dir)
	if !strings.Contains(out1.String(), "recovered:") {
		t.Fatalf("boot must print the recovery banner: %q", out1.String())
	}
	ar, err := http.Post(base1+"/analyze?prog=fig1&spec=all&detector=sp%2B", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	first, _ := io.ReadAll(ar.Body)
	ar.Body.Close()
	if ar.StatusCode != http.StatusOK {
		t.Fatalf("analyze: %d %s", ar.StatusCode, first)
	}

	// While draining: readyz 503, healthz still 200.
	sig1 <- os.Interrupt
	sawDrainingReadyz := false
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		rr, err := http.Get(base1 + "/readyz")
		if err != nil {
			break // listener gone — drain finished
		}
		rc := rr.StatusCode
		rr.Body.Close()
		if rc == http.StatusServiceUnavailable {
			sawDrainingReadyz = true
			hr, err := http.Get(base1 + "/healthz")
			if err != nil {
				break
			}
			hc := hr.StatusCode
			hr.Body.Close()
			if hc != http.StatusOK {
				t.Fatalf("healthz %d while draining — liveness must outlive readiness", hc)
			}
			break
		}
	}
	if code := <-done1; code != exitOK {
		t.Fatalf("drain exit %d (stderr: %s)", code, err1.String())
	}
	if !sawDrainingReadyz {
		t.Log("drain completed before readyz could be observed 503 (fast drain — acceptable)")
	}

	// Second incarnation over the same store: the verdict survives as a
	// cache hit with identical bytes.
	base2, _, _, sig2, done2 := bootDaemon(t, "-workers", "2", "-store-dir", dir)
	ar2, err := http.Post(base2+"/analyze?prog=fig1&spec=all&detector=sp%2B", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	second, _ := io.ReadAll(ar2.Body)
	ar2.Body.Close()
	if !strings.Contains(string(second), `"cached":true`) {
		t.Fatalf("restarted daemon must serve the stored verdict: %s", second)
	}
	// The report payloads must be byte-identical (envelope fields like
	// cached/durationMs legitimately differ).
	re := regexp.MustCompile(`"report":\{.*\}`)
	if r1, r2 := re.FindString(string(first)), re.FindString(string(second)); r1 == "" || r1 != r2 {
		t.Fatalf("verdict drifted across restart:\n%s\nvs\n%s", r1, r2)
	}
	sig2 <- os.Interrupt
	if code := <-done2; code != exitOK {
		t.Fatalf("second drain exit %d", code)
	}
}

// A store rooted somewhere unusable fails loudly at boot with exit 2 —
// never a silent fall-back to non-durable mode.
func TestDaemonBadStoreDirFailsLoudly(t *testing.T) {
	file := t.TempDir() + "/occupied"
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr syncBuffer
	if code := run([]string{"-addr", "127.0.0.1:0", "-store-dir", file}, &stdout, &stderr, nil); code != exitError {
		t.Fatalf("bad store dir exit %d, want %d (stderr: %s)", code, exitError, stderr.String())
	}
	if !strings.Contains(stderr.String(), "store") {
		t.Fatalf("error must mention the store: %s", stderr.String())
	}
}
