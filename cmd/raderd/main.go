// Command raderd serves race analysis over HTTP — the daemon face of the
// paper's record-once/analyze-many workflow (§8). Traces recorded with
// rader -record are uploaded to /analyze and replayed under any detector
// server-side; named built-in programs analyze and sweep without an
// upload. Verdicts are memoized in an LRU cache addressed by the trace's
// SHA-256 content digest, so resubmitting a trace costs one cache lookup.
//
// Usage:
//
//	raderd -addr :8735 -workers 8 -queue 16 -store-dir /var/lib/raderd
//	rader -remote http://localhost:8735 -replay t.trace
//
// Endpoints: POST /analyze, POST /sweep, GET /sweep/{id}, PUT/HEAD
// /traces/{digest}, GET /healthz, GET /readyz, GET /metrics (Prometheus
// text). The usual Go debug surfaces ride along: GET /debug/pprof/*
// (CPU, heap, goroutine profiles) and GET /debug/vars (the metric series
// as flat JSON, plus expvar's standard memstats). Requests are logged
// structured (log/slog) to stderr with a per-request ID; -quiet silences
// them. Capacity, cache and per-job limits are flags; see
// docs/SERVICE.md for the full API and failure-mode table.
//
// With -store-dir the daemon is crash-safe: verdicts and uploaded traces
// live in a disk-backed content-addressed store, sweep jobs are
// journaled and re-enqueued after a crash, and a startup recovery scan
// quarantines any torn or corrupt file instead of dying on it. SIGTERM
// triggers a graceful drain: /readyz flips to 503 first (so balancers
// stop routing here), in-flight work finishes up to -drain-timeout, and
// /healthz stays 200 until the process actually exits. See
// docs/ROBUSTNESS.md for the durability model.
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/service"
)

// Exit codes: 0 clean shutdown, 2 configuration or listen failure.
const (
	exitOK    = 0
	exitError = 2
)

func main() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, sig))
}

// run is main with its dependencies injected: tests drive it with their
// own listener address and shutdown channel.
func run(args []string, stdout, stderr io.Writer, shutdown <-chan os.Signal) int {
	fs := flag.NewFlagSet("raderd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", ":8735", "listen address")
		workers     = fs.Int("workers", 4, "max concurrent analyses")
		queue       = fs.Int("queue", 0, "max queued requests beyond the workers (0 = 2x workers); overflow is shed with 429")
		cacheSize   = fs.Int("cache", 256, "result-cache capacity in entries")
		eventBudget = fs.Int64("event-budget", 50_000_000, "per-job event budget (-1 = unlimited)")
		jobTimeout  = fs.Duration("job-timeout", 60*time.Second, "per-job wall-time bound")
		sweepWkrs   = fs.Int("sweep-workers", 0, "per-sweep parallelism (0 = workers)")
		maxUpload   = fs.Int64("max-upload", 64<<20, "max uploaded trace bytes (per chunk for resumable ingest)")
		keepJobs    = fs.Int("keep-jobs", 64, "finished sweep jobs retained for polling")
		cacheBytes  = fs.Int64("cache-bytes", 64<<20, "result-cache capacity in bytes")
		storeDir    = fs.String("store-dir", "", "root of the durable trace+verdict store (empty = in-memory only)")
		drainWait   = fs.Duration("drain-timeout", 30*time.Second, "graceful-shutdown bound: how long to wait for in-flight work before exiting")
		quiet       = fs.Bool("quiet", false, "suppress per-request structured logs")
	)
	if err := fs.Parse(args); err != nil {
		return exitError
	}

	logDst := io.Writer(stderr)
	if *quiet {
		logDst = io.Discard
	}
	logger := slog.New(slog.NewTextHandler(logDst, nil))

	srv, err := service.Open(service.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cacheSize,
		CacheBytes:     *cacheBytes,
		StoreDir:       *storeDir,
		EventBudget:    *eventBudget,
		JobTimeout:     *jobTimeout,
		SweepWorkers:   *sweepWkrs,
		MaxUploadBytes: *maxUpload,
		KeepJobs:       *keepJobs,
		Logger:         logger,
	})
	if err != nil {
		// A daemon that cannot open its durable store must fail loudly —
		// limping along non-durable would silently break the crash-safety
		// contract clients rely on.
		fmt.Fprintln(stderr, "raderd:", err)
		return exitError
	}
	publishDebugVars(srv)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "raderd:", err)
		return exitError
	}
	hs := &http.Server{Handler: logRequests(logger, debugMux(srv))}
	fmt.Fprintf(stdout, "raderd listening on %s (workers=%d queue=%d cache=%d)\n",
		ln.Addr(), *workers, *queue, *cacheSize)
	if banner := srv.RecoveryBanner(); banner != "" {
		fmt.Fprintf(stdout, "raderd: store %s: %s\n", *storeDir, banner)
	}

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		fmt.Fprintln(stderr, "raderd:", err)
		return exitError
	case <-shutdown:
		// Graceful drain, in contract order: readiness goes dark first
		// (srv.Drain flips /readyz to 503 and refuses new work at
		// admission), in-flight requests and journaled jobs get up to
		// -drain-timeout to finish, and only then does the listener — and
		// with it /healthz — go away. Work that does not finish in time
		// stays journaled in the store and re-runs on the next start.
		fmt.Fprintln(stdout, "raderd: draining")
		ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			fmt.Fprintln(stderr, "raderd: drain:", err)
		}
		if err := hs.Shutdown(ctx); err != nil {
			fmt.Fprintln(stderr, "raderd: shutdown:", err)
			return exitError
		}
		fmt.Fprintln(stdout, "raderd: drained, exiting")
		return exitOK
	}
}

// debugMux wraps the service routes with the standard Go debug surfaces:
// net/http/pprof's profile handlers and expvar's /debug/vars. The pprof
// handlers are registered explicitly because the service mounts its own
// mux — the package's DefaultServeMux side effects never apply here.
func debugMux(srv *service.Server) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

// The expvar registry is process-global and Publish panics on duplicates,
// but run() is re-entered by tests — so the "raderd" var is published once
// and reads through an atomic pointer to whichever server is current.
var (
	debugSrv    atomic.Pointer[service.Server]
	publishOnce sync.Once
)

func publishDebugVars(srv *service.Server) {
	debugSrv.Store(srv)
	publishOnce.Do(func() {
		expvar.Publish("raderd", expvar.Func(func() any {
			if s := debugSrv.Load(); s != nil {
				return s.MetricsSnapshot()
			}
			return nil
		}))
	})
}

// statusRecorder captures the status code and body size a handler wrote,
// for the request log line.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	n, err := r.ResponseWriter.Write(b)
	r.bytes += int64(n)
	return n, err
}

// logRequests logs one structured line per request with a per-request ID.
func logRequests(log *slog.Logger, next http.Handler) http.Handler {
	var id atomic.Uint64
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(rec, r)
		log.Info("request",
			"id", id.Add(1), "method", r.Method, "path", r.URL.Path,
			"status", rec.status, "bytes", rec.bytes, "dur", time.Since(start))
	})
}
