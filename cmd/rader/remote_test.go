package main

import (
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/service"
)

// startDaemon serves the same handler cmd/raderd mounts, on a loopback
// listener, and returns its base URL plus the server handle for metric
// inspection.
func startDaemon(t *testing.T, cfg service.Config) (*service.Server, string) {
	t.Helper()
	s := service.New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts.URL
}

// The acceptance path: record a trace locally, submit it twice via
// -remote; the second response is a cache hit, and the remote verdict is
// byte-for-byte the local -json verdict for the same trace.
func TestRemoteAnalyzeRoundTrip(t *testing.T) {
	srv, base := startDaemon(t, service.Config{Workers: 2})
	path := filepath.Join(t.TempDir(), "run.trace")

	code, out, errOut := exec(t, "-prog", "fig1", "-spec", "all", "-record", path)
	if code != exitClean {
		t.Fatalf("record: exit %d\n%s%s", code, out, errOut)
	}
	if !strings.Contains(out, "sha256 ") {
		t.Fatalf("record banner must announce the digest:\n%s", out)
	}

	code, localJSON, _ := exec(t, "-replay", path, "-detector", "sp+", "-json")
	if code != exitRaces {
		t.Fatalf("local replay: exit %d\n%s", code, localJSON)
	}

	code, remoteJSON, errOut := exec(t, "-remote", base, "-replay", path, "-detector", "sp+", "-json")
	if code != exitRaces {
		t.Fatalf("remote replay: exit %d\n%s%s", code, remoteJSON, errOut)
	}
	if remoteJSON != localJSON {
		t.Fatalf("remote and local verdicts must match byte-for-byte:\nremote: %s\nlocal:  %s",
			remoteJSON, localJSON)
	}
	if srv.CacheHits() != 0 {
		t.Fatalf("first submission must miss, hits=%d", srv.CacheHits())
	}

	code, remote2, errOut := exec(t, "-remote", base, "-replay", path, "-detector", "sp+", "-json")
	if code != exitRaces {
		t.Fatalf("second remote replay: exit %d\n%s%s", code, remote2, errOut)
	}
	if remote2 != remoteJSON {
		t.Fatalf("cached verdict drifted:\n%s\nvs\n%s", remote2, remoteJSON)
	}
	if srv.CacheHits() != 1 {
		t.Fatalf("second submission must hit the cache, hits=%d", srv.CacheHits())
	}

	// The human-readable mode reports the cache disposition.
	code, out, _ = exec(t, "-remote", base, "-replay", path, "-detector", "sp+")
	if code != exitRaces {
		t.Fatalf("plain remote replay: exit %d", code)
	}
	if !strings.Contains(out, "served from cache") || !strings.Contains(out, "race") {
		t.Fatalf("plain output must show cache state and races:\n%s", out)
	}
}

// Named programs analyze remotely without any upload.
func TestRemoteNamedProgram(t *testing.T) {
	_, base := startDaemon(t, service.Config{Workers: 2})
	code, out, errOut := exec(t, "-remote", base, "-prog", "fig1", "-spec", "all", "-detector", "sp+")
	if code != exitRaces {
		t.Fatalf("remote named analysis: exit %d\n%s%s", code, out, errOut)
	}
	code, out, _ = exec(t, "-remote", base, "-prog", "fig1-fixed", "-spec", "all", "-detector", "sp+")
	if code != exitClean {
		t.Fatalf("remote clean program: exit %d\n%s", code, out)
	}
}

// -remote -coverage submits an async sweep job and polls it to a verdict.
func TestRemoteCoverageSweep(t *testing.T) {
	_, base := startDaemon(t, service.Config{Workers: 2})
	code, out, errOut := exec(t, "-remote", base, "-prog", "fig1", "-coverage")
	if code != exitRaces {
		t.Fatalf("remote sweep: exit %d\n%s%s", code, out, errOut)
	}
	if !strings.Contains(out, "determinacy:") {
		t.Fatalf("sweep summary missing:\n%s", out)
	}
	// JSON mode emits the verdict document alone.
	code, jsonOut, _ := exec(t, "-remote", base, "-prog", "fig1", "-coverage", "-json")
	if code != exitRaces {
		t.Fatalf("remote sweep json: exit %d", code)
	}
	if !strings.HasPrefix(jsonOut, `{"schema":`) {
		t.Fatalf("json sweep output must be the bare document:\n%s", jsonOut)
	}
}

// Daemon errors surface as exit 2 with the server's explanation.
func TestRemoteErrors(t *testing.T) {
	_, base := startDaemon(t, service.Config{Workers: 1})
	code, _, errOut := exec(t, "-remote", base, "-prog", "no-such-program")
	if code != exitError {
		t.Fatalf("unknown remote program: exit %d", code)
	}
	if !strings.Contains(errOut, "unknown program") {
		t.Fatalf("daemon detail missing: %s", errOut)
	}
	code, _, errOut = exec(t, "-remote", "http://127.0.0.1:1", "-prog", "fig1")
	if code != exitError {
		t.Fatalf("unreachable daemon: exit %d", code)
	}
	if !strings.Contains(errOut, "reaching raderd") {
		t.Fatalf("connection error missing: %s", errOut)
	}
}

// Local -json output across modes is a single schema-bearing document.
func TestLocalJSONModes(t *testing.T) {
	code, out, _ := exec(t, "-prog", "fig1", "-spec", "all", "-detector", "sp+", "-json")
	if code != exitRaces || !strings.HasPrefix(out, `{"schema":`) {
		t.Fatalf("run -json: exit %d\n%s", code, out)
	}
	code, out, _ = exec(t, "-prog", "fig1-fixed", "-coverage", "-json")
	if code != exitClean || !strings.HasPrefix(out, `{"schema":`) {
		t.Fatalf("coverage -json: exit %d\n%s", code, out)
	}
}
