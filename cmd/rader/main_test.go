package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// exec drives the tool exactly as main does, capturing output.
func exec(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestExitCodeRaces(t *testing.T) {
	code, out, _ := exec(t, "-prog", "fig1", "-detector", "sp+", "-spec", "all")
	if code != exitRaces {
		t.Fatalf("racy run: exit %d, want %d\n%s", code, exitRaces, out)
	}
	if !strings.Contains(out, "race") {
		t.Fatalf("no race mentioned:\n%s", out)
	}
}

func TestExitCodeClean(t *testing.T) {
	code, out, _ := exec(t, "-prog", "fig1-fixed", "-detector", "sp+", "-spec", "all")
	if code != exitClean {
		t.Fatalf("clean run: exit %d, want %d\n%s", code, exitClean, out)
	}
}

func TestExitCodeCoverage(t *testing.T) {
	code, out, _ := exec(t, "-prog", "fig1-fixed", "-coverage")
	if code != exitClean {
		t.Fatalf("clean coverage: exit %d, want %d\n%s", code, exitClean, out)
	}
	if !strings.Contains(out, "no races under any specification") {
		t.Fatalf("coverage verdict missing:\n%s", out)
	}
	code, _, _ = exec(t, "-prog", "fig1", "-coverage")
	if code != exitRaces {
		t.Fatalf("racy coverage: exit %d, want %d", code, exitRaces)
	}
}

func TestExitCodeUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-definitely-not-a-flag"},
		{"-prog", "no-such-program"},
		{"-detector", "no-such-detector"},
		{"-spec", "gibberish:::"},
		{"-scale", "enormous"},
	}
	for _, args := range cases {
		if code, _, _ := exec(t, args...); code != exitError {
			t.Errorf("%v: exit %d, want %d", args, code, exitError)
		}
	}
}

func TestRecordReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.trace")
	code, out, errOut := exec(t, "-prog", "fig1", "-spec", "all", "-record", path)
	if code != exitClean {
		t.Fatalf("record: exit %d\n%s%s", code, out, errOut)
	}
	code, out, _ = exec(t, "-replay", path, "-detector", "sp+")
	if code != exitRaces {
		t.Fatalf("replay of racy trace: exit %d, want %d\n%s", code, exitRaces, out)
	}
	if !strings.Contains(out, "replayed ") {
		t.Fatalf("replay banner missing:\n%s", out)
	}
}

func TestReplayTruncatedTraceFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.trace")
	if code, _, _ := exec(t, "-prog", "fig1", "-spec", "all", "-record", path); code != exitClean {
		t.Fatal("record failed")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cut := filepath.Join(t.TempDir(), "cut.trace")
	if err := os.WriteFile(cut, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errOut := exec(t, "-replay", cut, "-detector", "sp+")
	if code != exitError {
		t.Fatalf("truncated replay: exit %d, want %d", code, exitError)
	}
	if !strings.Contains(errOut, "truncated") {
		t.Fatalf("error does not name the truncation: %s", errOut)
	}
}

func TestTimeoutFlagAborts(t *testing.T) {
	code, _, errOut := exec(t, "-prog", "fig1", "-spec", "all", "-timeout", "1ns")
	if code != exitError {
		t.Fatalf("expired run: exit %d, want %d\n%s", code, exitError, errOut)
	}
	if !strings.Contains(errOut, "deadline") {
		t.Fatalf("error does not name the deadline: %s", errOut)
	}
	if code, _, _ := exec(t, "-prog", "fig1-fixed", "-spec", "all", "-timeout", "1m"); code != exitClean {
		t.Fatalf("generous timeout: exit %d, want %d", code, exitClean)
	}
}
