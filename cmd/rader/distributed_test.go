package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/service"
)

// readMergedProfile parses a merged two-process profile without the
// X-only assertion readProfile enforces (multi-process output carries M
// metadata events by design).
func readMergedProfile(t *testing.T, path string) profileDoc {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc profileDoc
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("profile is not valid JSON: %v\n%s", err, b)
	}
	return doc
}

// traceIDOf extracts the trace-id field of a rendered traceparent.
func traceIDOf(t *testing.T, tp string) string {
	t.Helper()
	if _, err := obs.ParseTraceparent(tp); err != nil {
		t.Fatalf("bad traceparent %q: %v", tp, err)
	}
	return tp[3:35]
}

// A remote analyze with -profile-out merges client and server spans into
// one two-process Chrome trace linked by a single trace ID: the client's
// per-attempt request spans on PID 1, the daemon's queue/run/encode
// phases on PID 2.
func TestRemoteProfileMergesServerSpans(t *testing.T) {
	_, base := startDaemon(t, service.Config{Workers: 2})
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "run.trace")
	if code, out, errOut := exec(t, "-prog", "fig1", "-spec", "all", "-record", tracePath); code != exitClean {
		t.Fatalf("record: exit %d\n%s%s", code, out, errOut)
	}
	profPath := filepath.Join(dir, "remote.json")
	code, out, errOut := exec(t, "-remote", base, "-replay", tracePath,
		"-detector", "sp+", "-profile-out", profPath)
	if code != exitRaces {
		t.Fatalf("remote replay: exit %d\n%s%s", code, out, errOut)
	}
	doc := readMergedProfile(t, profPath)

	procNames := map[int]string{}
	procTraceparents := map[int]string{}
	spansByPID := map[int]map[string]int{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			switch ev.Name {
			case "process_name":
				procNames[ev.PID], _ = ev.Args["name"].(string)
			case "process_labels":
				procTraceparents[ev.PID], _ = ev.Args["traceparent"].(string)
			}
		case "X":
			if spansByPID[ev.PID] == nil {
				spansByPID[ev.PID] = map[string]int{}
			}
			spansByPID[ev.PID][ev.Name]++
			if ev.TS < 0 {
				t.Errorf("span %q has negative ts %g", ev.Name, ev.TS)
			}
		default:
			t.Errorf("unexpected phase %q on %q", ev.Ph, ev.Name)
		}
	}
	if procNames[1] != "rader (client)" || procNames[2] != "raderd (server)" {
		t.Fatalf("process names = %v", procNames)
	}
	if spansByPID[1]["attempt"] == 0 {
		t.Errorf("client lane lacks per-attempt request spans: %v", spansByPID[1])
	}
	for _, phase := range []string{"queue", "run", "encode"} {
		if spansByPID[2][phase] == 0 {
			t.Errorf("server lane lacks %q phase span: %v", phase, spansByPID[2])
		}
	}
	ctp, stp := procTraceparents[1], procTraceparents[2]
	if ctp == "" || stp == "" {
		t.Fatalf("both processes must be labelled with traceparents: %v", procTraceparents)
	}
	if traceIDOf(t, ctp) != traceIDOf(t, stp) {
		t.Fatalf("client and server spans are not one trace:\nclient %s\nserver %s", ctp, stp)
	}
	if ctp == stp {
		t.Fatal("server must carry its own span ID within the shared trace")
	}
}

// A remote sweep with -profile-out merges the daemon's per-worker sweep
// spans, and the plain-text run surfaces the live progress stream.
func TestRemoteSweepProfileAndProgress(t *testing.T) {
	_, base := startDaemon(t, service.Config{Workers: 2, SweepWorkers: 2})
	profPath := filepath.Join(t.TempDir(), "sweep.json")
	code, out, errOut := exec(t, "-remote", base, "-prog", "fig1", "-coverage",
		"-profile-out", profPath)
	if code != exitRaces {
		t.Fatalf("remote sweep: exit %d\n%s%s", code, out, errOut)
	}
	if !strings.Contains(out, "sweep progress: ") {
		t.Fatalf("plain sweep output must stream progress lines:\n%s", out)
	}
	if !strings.Contains(out, "determinacy:") {
		t.Fatalf("sweep verdict summary missing:\n%s", out)
	}
	doc := readMergedProfile(t, profPath)
	var haveUnit, haveEvents bool
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		if ev.PID == 2 && strings.HasPrefix(ev.Name, "spec:") {
			haveUnit = true
		}
		if ev.PID == 1 && ev.Name == "events" {
			haveEvents = true
		}
	}
	if !haveUnit {
		t.Error("server lane lacks per-unit spec: sweep spans")
	}
	if !haveEvents {
		t.Error("client lane lacks the events-stream span")
	}

	// JSON mode keeps stdout to one document: no progress lines.
	code, jsonOut, _ := exec(t, "-remote", base, "-prog", "fig1", "-coverage", "-json")
	if code != exitRaces {
		t.Fatalf("remote sweep json: exit %d", code)
	}
	if strings.Contains(jsonOut, "sweep progress") {
		t.Fatalf("json output must stay a bare document:\n%s", jsonOut)
	}
}

// Without -profile-out nothing fetches server spans, and local runs keep
// the single-process X-only profile shape readProfile pins.
func TestLocalProfileUnchangedShape(t *testing.T) {
	path := filepath.Join(t.TempDir(), "local.json")
	code, _, _ := exec(t, "-prog", "fig1", "-detector", "sp+", "-spec", "all", "-profile-out", path)
	if code != exitRaces {
		t.Fatalf("exit %d", code)
	}
	readProfile(t, path) // fails the test on any non-X event
}
