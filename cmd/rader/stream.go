package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/obs"
	"repro/internal/service"
)

// streamEvents follows GET /jobs/{id}/events until the daemon sends the
// terminal event and closes the stream. Progress frames print as they
// arrive (suppressed under -json, whose stdout is one document); every
// failure mode — an older daemon without the surface, a cut connection, a
// malformed frame — is silent, because the caller's poll loop is the
// source of truth for the job's outcome.
func (c *remoteClient) streamEvents(id string, jsonOut bool) {
	req, err := http.NewRequest(http.MethodGet, c.base+"/jobs/"+id+"/events", nil)
	if err != nil {
		return
	}
	if c.ctx.Valid() {
		req.Header.Set(obs.TraceparentHeader, c.ctx.Child().Traceparent())
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK ||
		!strings.HasPrefix(resp.Header.Get("Content-Type"), "text/event-stream") {
		io.Copy(io.Discard, resp.Body)
		return
	}
	span := c.tr.Start("events")
	frames := 0
	var last service.JobEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev service.JobEvent
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			continue
		}
		frames++
		p, lp := ev.Progress, last.Progress
		if !jsonOut && p.UnitsTotal > 0 && (p.UnitsDone != lp.UnitsDone || p.Races != lp.Races) {
			fmt.Fprintf(c.stdout, "sweep progress: %d/%d units, %d race(s) so far\n",
				p.UnitsDone, p.UnitsTotal, p.Races)
		}
		last = ev
	}
	span.Arg("frames", frames).Arg("state", last.State).End()
}

// fetchServerSpans pulls the daemon's span tree for the work this
// invocation just drove, for the -profile-out merge. Best effort and
// gated on profiling: without -profile-out nothing consumes the tree, so
// nothing is fetched.
func (c *remoteClient) fetchServerSpans(path string) {
	if c.tr == nil {
		return
	}
	resp, raw, err := c.get(path + "?format=spans")
	if err != nil || resp.StatusCode != http.StatusOK {
		return
	}
	doc, err := obs.DecodeSpans(raw)
	if err != nil {
		return
	}
	c.serverDoc = doc
}
