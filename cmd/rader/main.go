// Command rader runs a Cilk program under a race detector and steal
// specification — the command-line face of the paper's Rader prototype.
//
// Usage:
//
//	rader -prog pbfs -detector sp+ -spec all
//	rader -prog fig1 -detector sp+ -spec triple:1,2,3
//	rader -prog fig1 -coverage            # full §7 sweep
//	rader -prog fig1-early -detector peer-set
//
// With -remote <url> the analysis happens on a raderd daemon instead of
// in-process: a recorded trace (-replay) is uploaded to /analyze, a named
// program (-prog) is analyzed server-side, and -coverage submits an async
// sweep job and polls it. Verdicts print under the same internal/report
// JSON schema either way, so local and remote output for one trace are
// byte-for-byte identical.
//
//	rader -record t.trace -prog fig1 -spec all     # record locally
//	rader -remote http://localhost:8735 -replay t.trace -json
//
// With -live <workload> the analysis happens during a genuinely parallel
// execution: the named bridged workload (see -live list) runs on the
// work-stealing runtime with -live-workers workers while the depa
// detector watches on-the-fly. The verdict is byte-identical to a serial
// replay of the same program; the report's parallel section carries the
// worker count, shard merges and fast-path hit rate.
//
//	rader -live dedup -live-workers 8 -json
//
// Programs: the six benchmarks (collision, dedup, ferret, fib, knapsack,
// pbfs) at -scale test|small|bench, plus the paper's figures: fig1 (the
// §2 linked-list program), fig1-early (get_value before sync), fig1-late
// (set_value after spawn), fig1-fixed (deep copy), fig2 (§3's dag, reads
// at -reads strands).
//
// Exit status: 0 when the run is clean, 1 when races were detected, 2 on
// usage errors, internal errors, or an incomplete sweep.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/cilk"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/depa"
	"repro/internal/elide"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/progs"
	"repro/internal/rader"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/wsrt"
)

// Exit codes.
const (
	exitClean = 0
	exitRaces = 1
	exitError = 2
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its dependencies injected, returning the exit code so
// tests can drive the tool end to end without forking a process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rader", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		progName = fs.String("prog", "fib", "program: benchmark name or fig1[-early|-late|-fixed], fig2")
		detector = fs.String("detector", "sp+", "detector: none, empty, peer-set, sp-bags, sp+, offset-span, english-hebrew, or all (single-pass Peer-Set+SP-bags+SP+)")
		specStr  = fs.String("spec", "none", "steal specification (none, all, all-eager, depth:D, single:A, pair:A,B, triple:I,J,K, random:SEED,K, labels:...)")
		scale    = fs.String("scale", "small", "benchmark scale: test, small, bench")
		reads    = fs.String("reads", "1,9", "fig2 only: comma-separated strands that read the reducer")
		coverage = fs.Bool("coverage", false, "run the full §7 specification sweep with SP+ and Peer-Set")
		sweepW   = fs.Int("sweep-workers", 0, "worker lanes of the -coverage work-stealing scheduler (0 = one per CPU); the verdict is identical at any width")
		sweepN   = fs.Int("sweep-sample", 0, "cap the -coverage sweep at this many coverage-guided specifications (0 = the full family); sampled verdicts cover only the sampled schedules")
		timeout  = fs.Duration("timeout", 0, "abort the run or sweep after this long (0 = no limit)")
		verbose  = fs.Bool("v", false, "print run statistics")
		dot      = fs.Bool("dot", false, "emit the run's performance dag in Graphviz dot format and exit")
		jsonOut  = fs.Bool("json", false, "print the race report as JSON (for CI)")
		record   = fs.String("record", "", "record the run's event stream to this trace file")
		replay   = fs.String("replay", "", "skip execution; replay a recorded trace file into the detector")
		live     = fs.String("live", "", "run a bridged workload live on the work-stealing runtime under the depa detector (name, or 'list')")
		liveN    = fs.Int("live-workers", 4, "worker count for -live")
		remote   = fs.String("remote", "", "raderd base URL; analyze on the daemon instead of in-process")
		profile  = fs.String("profile-out", "", "write a Chrome trace-event JSON profile of the run to this file (open in chrome://tracing or ui.perfetto.dev)")
		elideOn  = fs.Bool("elide", false, "with -replay: statically elide provably race-free accesses before detection (verdicts stay byte-identical)")
		elideAud = fs.String("elide-audit", "", "with -replay: write the per-class \"why elided\" JSON audit to this file (implies -elide)")
		elideOut = fs.String("elide-out", "", "with -replay: write the filtered trace stream to this file (implies -elide)")
	)
	if err := fs.Parse(args); err != nil {
		return exitError
	}
	fatal := func(err error) int {
		fmt.Fprintln(stderr, "rader:", err)
		return exitError
	}
	eo := elideOpts{enabled: *elideOn || *elideAud != "" || *elideOut != "", auditPath: *elideAud, outPath: *elideOut}
	if eo.enabled {
		if *replay == "" {
			return fatal(fmt.Errorf("-elide analyzes a recorded trace; it requires -replay"))
		}
		if *coverage {
			return fatal(fmt.Errorf("-elide cannot be combined with -coverage"))
		}
		if *remote != "" && (eo.auditPath != "" || eo.outPath != "") {
			return fatal(fmt.Errorf("-elide-audit and -elide-out are local artifacts; drop -remote to produce them"))
		}
	}

	// With -profile-out the whole pipeline records spans; nil keeps every
	// instrumentation site on its zero-cost path. For remote runs the
	// deferred writer also merges the daemon's span tree (fetched by the
	// client after the work resolves) onto a second process lane.
	var tr *obs.Trace
	var remoteCl *remoteClient
	if *profile != "" {
		tr = obs.NewTrace()
		defer func() {
			var sdoc *obs.SpanDoc
			if remoteCl != nil {
				sdoc = remoteCl.serverDoc
			}
			if err := writeProfile(tr, sdoc, *profile); err != nil {
				fmt.Fprintln(stderr, "rader: writing profile:", err)
			} else if !*jsonOut {
				fmt.Fprintf(stderr, "profile written to %s\n", *profile)
			}
		}()
	}

	var deadline time.Time
	if *timeout > 0 {
		deadline = time.Now().Add(*timeout)
	}

	if *remote != "" {
		// The invocation is one distributed trace: its context rides every
		// request as a traceparent header, the daemon parents its spans
		// under it, and -profile-out shows both sides on one timeline.
		ctx := obs.NewSpanContext()
		tr.SetContext(ctx)
		cl := &remoteClient{base: strings.TrimRight(*remote, "/"), stdout: stdout, ctx: ctx, tr: tr}
		remoteCl = cl
		code, err := cl.run(remoteRequest{
			replayPath: *replay,
			prog:       *progName,
			scale:      *scale,
			detector:   *detector,
			spec:       *specStr,
			coverage:   *coverage,
			sweepW:     *sweepW,
			sweepN:     *sweepN,
			jsonOut:    *jsonOut,
			elide:      eo.enabled,
		})
		if err != nil {
			return fatal(err)
		}
		return code
	}

	if *replay != "" {
		det, err := rader.ParseDetector(*detector)
		if err != nil {
			return fatal(err)
		}
		if eo.enabled {
			code, err := replayTraceElided(stdout, *replay, det, *jsonOut, tr, eo)
			if err != nil {
				return fatal(err)
			}
			return code
		}
		code, err := replayTrace(stdout, *replay, det, *jsonOut, tr)
		if err != nil {
			return fatal(err)
		}
		return code
	}

	if *live != "" {
		code, err := runLive(stdout, *live, *liveN, *jsonOut, tr)
		if err != nil {
			return fatal(err)
		}
		return code
	}

	prog, verify, desc, err := buildProgram(*progName, *scale, *reads)
	if err != nil {
		return fatal(err)
	}
	if !*jsonOut {
		// JSON modes keep stdout to exactly one document so output is
		// machine-diffable against a remote verdict.
		fmt.Fprintf(stdout, "program: %s (%s)\n", *progName, desc)
	}

	if *coverage {
		return runCoverage(stdout, prog, rader.SweepOptions{
			Workers:     *sweepW,
			SampleSpecs: *sweepN,
			Timeout:     *timeout,
			Trace:       tr,
		}, *jsonOut)
	}

	det, err := rader.ParseDetector(*detector)
	if err != nil {
		return fatal(err)
	}
	spec, err := sched.Parse(*specStr)
	if err != nil {
		return fatal(err)
	}
	if *dot {
		rec := dag.NewRecorder()
		cilk.Run(prog, cilk.Config{Spec: spec, Hooks: rec})
		fmt.Fprint(stdout, rec.D.Dot(*progName))
		return exitClean
	}
	if *record != "" {
		digest, err := recordTrace(*record, prog, spec)
		if err != nil {
			return fatal(err)
		}
		fmt.Fprintf(stdout, "trace recorded to %s (sha256 %s)\n", *record, digest)
		return exitClean
	}
	out, err := rader.Run(prog, rader.Config{Detector: det, Spec: spec, Deadline: deadline, Trace: tr})
	if err != nil {
		return fatal(err)
	}
	if !*jsonOut {
		fmt.Fprintf(stdout, "detector: %s   spec: %s   time: %v\n", det, sched.Format(spec), out.Duration)
	}
	if *verbose {
		r := out.Result
		fmt.Fprintf(stdout, "frames=%d spawns=%d syncs=%d steals=%d views=%d reduces=%d loads=%d stores=%d reducer-reads=%d updates=%d\n",
			r.Frames, r.Spawns, r.Syncs, len(r.Steals), r.Views, r.Reduces, r.Loads, r.Stores, r.Reads, r.Updates)
		if out.Stats.Elems > 0 {
			fmt.Fprintf(stdout, "disjoint-set: %d elements, %d finds, %d unions (each amortized O(α))\n",
				out.Stats.Elems, out.Stats.Finds, out.Stats.Unions)
		}
	}
	if verify != nil && !*jsonOut {
		if err := verify(); err != nil {
			fmt.Fprintf(stdout, "VERIFY FAILED: %v\n", err)
		} else {
			fmt.Fprintln(stdout, "verify: ok")
		}
	}
	if det == rader.All {
		raced := false
		for _, do := range out.All {
			raced = raced || !do.Report.Empty()
		}
		if *jsonOut {
			b, err := report.FromAllOutcome(out, sched.Format(spec)).Marshal()
			if err != nil {
				return fatal(err)
			}
			fmt.Fprintln(stdout, string(b))
		} else {
			for _, do := range out.All {
				fmt.Fprintf(stdout, "%s: %s\n", do.Detector, do.Report.Summary())
			}
			if raced && len(out.Result.Steals) > 0 {
				fmt.Fprintf(stdout, "replay with: -spec '%s'\n", out.Replay)
			}
		}
		if raced {
			return exitRaces
		}
		return exitClean
	}
	if out.Report == nil {
		if *jsonOut {
			b, err := report.FromOutcome(out, sched.Format(spec)).Marshal()
			if err != nil {
				return fatal(err)
			}
			fmt.Fprintln(stdout, string(b))
		} else {
			fmt.Fprintln(stdout, "(no detector attached)")
		}
		return exitClean
	}
	if *jsonOut {
		b, err := report.FromOutcome(out, sched.Format(spec)).Marshal()
		if err != nil {
			return fatal(err)
		}
		fmt.Fprintln(stdout, string(b))
		if !out.Report.Empty() {
			return exitRaces
		}
		return exitClean
	}
	fmt.Fprintln(stdout, out.Report.Summary())
	if !out.Report.Empty() && len(out.Result.Steals) > 0 {
		fmt.Fprintf(stdout, "replay with: -spec '%s'\n", out.Replay)
	}
	if !out.Report.Empty() {
		return exitRaces
	}
	return exitClean
}

func runCoverage(stdout io.Writer, prog func(*cilk.Ctx), opts rader.SweepOptions, jsonOut bool) int {
	if opts.Workers < 1 {
		opts.Workers = runtime.NumCPU()
	}
	cr := rader.Sweep(func() func(*cilk.Ctx) { return prog }, opts)
	if jsonOut {
		b, err := report.FromCoverage(cr).Marshal()
		if err != nil {
			fmt.Fprintln(stdout, err)
			return exitError
		}
		fmt.Fprintln(stdout, string(b))
		switch {
		case !cr.Clean():
			return exitRaces
		case !cr.Complete():
			return exitError
		default:
			return exitClean
		}
	}
	fmt.Fprintf(stdout, "profile: max P-depth %d, max sync block %d, Cilk depth %d\n",
		cr.Profile.MaxPDepth, cr.Profile.MaxSyncBlock, cr.Profile.CilkDepth)
	fmt.Fprintf(stdout, "specifications run: %d (SP+), plus one Peer-Set pass\n", cr.SpecsRun)
	if cr.Stats.Sampled {
		fmt.Fprintf(stdout, "sampled: %s\n", cr.Stats.Confidence)
	}
	fmt.Fprintf(stdout, "view-read: %s\n", cr.ViewReads.Summary())
	if len(cr.Races) == 0 {
		fmt.Fprintln(stdout, "determinacy: no races under any specification")
	} else {
		fmt.Fprintf(stdout, "determinacy: %d distinct race(s):\n", len(cr.Races))
		for _, f := range cr.Races {
			fmt.Fprintf(stdout, "  [%s] %v\n", f.Spec, f.Race)
		}
	}
	for _, sf := range cr.Failures {
		fmt.Fprintf(stdout, "sweep failure: %v\n", sf)
	}
	switch {
	case !cr.Clean():
		return exitRaces
	case !cr.Complete():
		return exitError
	default:
		return exitClean
	}
}

func buildProgram(name, scaleStr, reads string) (func(*cilk.Ctx), func() error, string, error) {
	al := mem.NewAllocator()
	switch name {
	case "fig1":
		return progs.Fig1(al, progs.Fig1Options{}), nil, "Figure 1: shallow-copy list race", nil
	case "fig1-early":
		return progs.Fig1(al, progs.Fig1Options{EarlyGetValue: true}), nil, "Figure 1 with get_value before sync", nil
	case "fig1-late":
		return progs.Fig1(al, progs.Fig1Options{SetValueAfterSpawn: true}), nil, "Figure 1 with set_value after spawn", nil
	case "fig1-fixed":
		return progs.Fig1(al, progs.Fig1Options{DeepCopy: true}), nil, "Figure 1 with a deep copy (race-free)", nil
	case "fig2":
		var at []int
		for _, s := range strings.Split(reads, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || v < 1 || v > progs.Fig2Strands {
				return nil, nil, "", fmt.Errorf("bad fig2 read strand %q", s)
			}
			at = append(at, v)
		}
		return progs.Fig2Reads(at...), nil,
			fmt.Sprintf("Figure 2 dag with reducer reads at strands %v", at), nil
	}
	var sc apps.Scale
	switch scaleStr {
	case "test":
		sc = apps.Test
	case "small":
		sc = apps.Small
	case "bench":
		sc = apps.Bench
	default:
		return nil, nil, "", fmt.Errorf("bad scale %q", scaleStr)
	}
	app, err := apps.ByName(name)
	if err != nil {
		return nil, nil, "", err
	}
	ins := app.Build(al, sc)
	return ins.Prog, ins.Verify, fmt.Sprintf("%s, input %s", app.Desc, ins.InputDesc), nil
}

func recordTrace(path string, prog func(*cilk.Ctx), spec cilk.StealSpec) (trace.Digest, error) {
	f, err := os.Create(path)
	if err != nil {
		return trace.Digest{}, err
	}
	tw := trace.NewWriter(f)
	cilk.Run(prog, cilk.Config{Spec: spec, Hooks: tw})
	if err := tw.Close(); err != nil {
		f.Close()
		return trace.Digest{}, err
	}
	digest, err := tw.Digest()
	if err != nil {
		f.Close()
		return trace.Digest{}, err
	}
	return digest, f.Close()
}

// writeProfile renders collected spans as Chrome trace-event JSON. With a
// fetched server-side span tree the output is a two-process trace: the
// client's spans on PID 1, the daemon's on PID 2, time-shifted onto the
// client's clock by the difference of the two trace epochs and labelled
// with the traceparents that link them. Without one (local runs, or a
// daemon that recorded nothing) the single-process format is unchanged.
func writeProfile(tr *obs.Trace, sdoc *obs.SpanDoc, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var werr error
	if sdoc == nil {
		werr = tr.WriteChrome(f)
	} else {
		clientLabels := map[string]string{}
		if tp := tr.Context().Traceparent(); tp != "" {
			clientLabels["traceparent"] = tp
		}
		serverLabels := map[string]string{}
		if sdoc.Traceparent != "" {
			serverLabels["traceparent"] = sdoc.Traceparent
		}
		werr = obs.WriteChromeProcesses(f, []obs.Process{
			{PID: 1, Name: "rader (client)", Spans: tr.Spans(), Labels: clientLabels},
			{PID: 2, Name: "raderd (server)",
				Offset: time.Duration(sdoc.T0UnixNano - tr.T0().UnixNano()),
				Spans:  sdoc.Records(), Labels: serverLabels},
		})
	}
	if werr != nil {
		f.Close()
		return werr
	}
	return f.Close()
}

// replaySpan closes a "replay" span annotated with the stream accounting,
// and emits one "detector:<name>" span per detector carrying its event
// counts and verdict, so a -profile-out of a replay shows both the decode
// and the per-detector consumption.
func replaySpan(span *obs.Span, tr *obs.Trace, stats *trace.ReplayStats, dets []core.Detector) {
	span.Arg("events", stats.Events).Arg("bytes", stats.Bytes).
		Arg("frames", stats.Frames).Arg("labels", stats.InternedLabels).End()
	for _, d := range dets {
		dspan := tr.Start("detector:" + d.Name())
		if ec, ok := d.(core.EventCountsProvider); ok {
			for _, a := range ec.EventCounts().Args() {
				dspan.Arg(a.Key, a.Value)
			}
		}
		if rp := d.Report(); rp != nil {
			dspan.Arg("races", rp.Distinct())
		}
		dspan.End()
	}
}

func replayTrace(stdout io.Writer, path string, detName rader.DetectorName, jsonOut bool, tr *obs.Trace) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return exitError, err
	}
	defer f.Close()
	if detName == rader.All {
		dets := rader.NewAllDetectors()
		hooks := make([]cilk.Hooks, len(dets))
		for i, d := range dets {
			hooks[i] = d
		}
		var stats trace.ReplayStats
		span := tr.Start("replay")
		n, err := trace.ReplayAllStats(f, &stats, hooks...)
		if err != nil {
			span.Arg("error", err.Error()).End()
			return exitError, err
		}
		replaySpan(span, tr, &stats, dets)
		m := report.FromDetectors("", n, dets)
		if jsonOut {
			b, err := m.Marshal()
			if err != nil {
				return exitError, err
			}
			fmt.Fprintln(stdout, string(b))
		} else {
			fmt.Fprintf(stdout, "replayed %d events from %s in one pass under %d detectors\n",
				n, path, len(dets))
			for _, d := range dets {
				fmt.Fprintf(stdout, "%s: %s\n", d.Name(), d.Report().Summary())
			}
		}
		if !m.Clean {
			return exitRaces, nil
		}
		return exitClean, nil
	}
	det, hooks, err := rader.NewDetector(detName)
	if err != nil {
		return exitError, err
	}
	if det == nil {
		return exitError, fmt.Errorf("replay needs an analysing detector (got %s)", detName)
	}
	if dd, ok := det.(*depa.Detector); ok {
		// The parallel detector's finalize phase emits per-shard spans on
		// worker lanes when profiling is on.
		dd.Trace = tr
	}
	var stats trace.ReplayStats
	span := tr.Start("replay")
	n, err := trace.ReplayAllStats(f, &stats, hooks)
	if err != nil {
		span.Arg("error", err.Error()).End()
		return exitError, err
	}
	replaySpan(span, tr, &stats, []core.Detector{det})
	rp := det.Report()
	if jsonOut {
		b, err := report.FromDetector(string(detName), "", n, det).Marshal()
		if err != nil {
			return exitError, err
		}
		fmt.Fprintln(stdout, string(b))
	} else {
		fmt.Fprintf(stdout, "replayed %d events from %s under %s\n", n, path, detName)
		fmt.Fprintln(stdout, rp.Summary())
		if pp, ok := det.(depa.ParallelStatsProvider); ok {
			ps := pp.ParallelStats()
			fmt.Fprintf(stdout, "parallel: workers=%d shard-merges=%d fast-path=%.2f\n",
				ps.Workers, ps.ShardMerges, ps.FastPathRate())
		}
	}
	if !rp.Empty() {
		return exitRaces, nil
	}
	return exitClean, nil
}

// elideOpts is the -elide flag family: run the static elision pre-pass
// over the replayed trace and optionally persist its artifacts.
type elideOpts struct {
	enabled   bool
	auditPath string // -elide-audit: "why elided" JSON artifact
	outPath   string // -elide-out: filtered trace stream
}

// replayTraceElided is -replay with the static elision pre-pass in
// front: the trace is analyzed once to prove addresses race-free, the
// detectors then replay only the must-keep accesses (via the skip-set
// fast path), and the verdict document is fixed up to be byte-identical
// to a full replay — same races, same provenance ordinals, same event
// accounting.
func replayTraceElided(stdout io.Writer, path string, detName rader.DetectorName, jsonOut bool, tr *obs.Trace, eo elideOpts) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return exitError, err
	}
	espan := tr.Start("elide")
	plan, err := elide.Analyze(data)
	if err != nil {
		espan.Arg("error", err.Error()).End()
		return exitError, err
	}
	aud := plan.Audit()
	espan.Arg("originalEvents", aud.OriginalEvents).Arg("elidedEvents", aud.ElidedEvents).
		Arg("elidedBytes", aud.ElidedBytes).End()
	if eo.auditPath != "" {
		b, err := aud.Marshal()
		if err != nil {
			return exitError, err
		}
		if err := os.WriteFile(eo.auditPath, b, 0o644); err != nil {
			return exitError, err
		}
	}
	if eo.outPath != "" {
		filtered, _, err := plan.Filter(data)
		if err != nil {
			return exitError, err
		}
		if err := os.WriteFile(eo.outPath, filtered, 0o644); err != nil {
			return exitError, err
		}
	}
	if !jsonOut {
		fmt.Fprintf(stdout, "elision: %d of %d events proven race-free and skipped (%.2fx shrink, %d bytes)\n",
			aud.ElidedEvents, aud.OriginalEvents, aud.Shrink, aud.ElidedBytes)
		if eo.auditPath != "" {
			fmt.Fprintf(stdout, "elision audit written to %s\n", eo.auditPath)
		}
		if eo.outPath != "" {
			fmt.Fprintf(stdout, "filtered trace written to %s\n", eo.outPath)
		}
	}
	skip := plan.SkipSet()
	if detName == rader.All {
		dets := rader.NewAllDetectors()
		hooks := make([]cilk.Hooks, len(dets))
		for i, d := range dets {
			hooks[i] = d
		}
		var stats trace.ReplayStats
		span := tr.Start("replay")
		n, err := trace.ReplayAllBytesSkip(data, skip, &stats, hooks...)
		if err != nil {
			span.Arg("error", err.Error()).End()
			return exitError, err
		}
		replaySpan(span, tr, &stats, dets)
		m := report.FromDetectors("", n, dets)
		plan.FixupMulti(m)
		if jsonOut {
			b, err := m.Marshal()
			if err != nil {
				return exitError, err
			}
			fmt.Fprintln(stdout, string(b))
		} else {
			fmt.Fprintf(stdout, "replayed %d events from %s in one pass under %d detectors\n",
				n, path, len(dets))
			for _, d := range dets {
				fmt.Fprintf(stdout, "%s: %s\n", d.Name(), d.Report().Summary())
			}
		}
		if !m.Clean {
			return exitRaces, nil
		}
		return exitClean, nil
	}
	det, hooks, err := rader.NewDetector(detName)
	if err != nil {
		return exitError, err
	}
	if det == nil {
		return exitError, fmt.Errorf("replay needs an analysing detector (got %s)", detName)
	}
	if dd, ok := det.(*depa.Detector); ok {
		dd.Trace = tr
	}
	var stats trace.ReplayStats
	span := tr.Start("replay")
	n, err := trace.ReplayAllBytesSkip(data, skip, &stats, hooks)
	if err != nil {
		span.Arg("error", err.Error()).End()
		return exitError, err
	}
	replaySpan(span, tr, &stats, []core.Detector{det})
	doc := report.FromDetector(string(detName), "", n, det)
	plan.FixupReport(doc)
	if jsonOut {
		b, err := doc.Marshal()
		if err != nil {
			return exitError, err
		}
		fmt.Fprintln(stdout, string(b))
	} else {
		fmt.Fprintf(stdout, "replayed %d events from %s under %s\n", n, path, detName)
		fmt.Fprintln(stdout, det.Report().Summary())
		if doc.Parallel != nil {
			fmt.Fprintf(stdout, "parallel: workers=%d shard-merges=%d fast-path=%.2f\n",
				doc.Parallel.Workers, doc.Parallel.ShardMerges, doc.Parallel.FastPathRate)
		}
	}
	if !doc.Clean {
		return exitRaces, nil
	}
	return exitClean, nil
}

// runLive executes a bridged workload live on the work-stealing runtime
// with the depa detector watching during execution — the on-the-fly half
// of the detector, as opposed to -replay's post-mortem analysis. The
// verdict document is the standard report schema with the parallel stats
// section filled in from the live run.
func runLive(stdout io.Writer, name string, workers int, jsonOut bool, tr *obs.Trace) (int, error) {
	if name == "list" {
		for _, w := range depa.Workloads() {
			fmt.Fprintf(stdout, "%-12s %s\n", w.Name, w.Desc)
		}
		return exitClean, nil
	}
	w, err := depa.WorkloadByName(name)
	if err != nil {
		return exitError, err
	}
	if workers < 1 {
		return exitError, fmt.Errorf("-live-workers must be at least 1 (got %d)", workers)
	}
	live := depa.NewLive()
	live.Trace = tr
	live.Run(wsrt.New(workers), w.Build(mem.NewAllocator()))
	rp := live.Report()
	if jsonOut {
		doc := report.FromCore(live.Name(), "", 0, rp)
		doc.Parallel = report.ParallelFrom(live.ParallelStats())
		b, err := doc.Marshal()
		if err != nil {
			return exitError, err
		}
		fmt.Fprintln(stdout, string(b))
	} else {
		ps := live.ParallelStats()
		fmt.Fprintf(stdout, "workload: %s (%s)\n", w.Name, w.Desc)
		fmt.Fprintf(stdout, "live depa on %d worker(s): %s\n", ps.Workers, rp.Summary())
		fmt.Fprintf(stdout, "parallel: shard-merges=%d accesses=%d fast-path=%.2f\n",
			ps.ShardMerges, ps.Accesses, ps.FastPathRate())
	}
	if !rp.Empty() {
		return exitRaces, nil
	}
	return exitClean, nil
}
