// Command rader runs a Cilk program under a race detector and steal
// specification — the command-line face of the paper's Rader prototype.
//
// Usage:
//
//	rader -prog pbfs -detector sp+ -spec all
//	rader -prog fig1 -detector sp+ -spec triple:1,2,3
//	rader -prog fig1 -coverage            # full §7 sweep
//	rader -prog fig1-early -detector peer-set
//
// Programs: the six benchmarks (collision, dedup, ferret, fib, knapsack,
// pbfs) at -scale test|small|bench, plus the paper's figures: fig1 (the
// §2 linked-list program), fig1-early (get_value before sync), fig1-late
// (set_value after spawn), fig1-fixed (deep copy), fig2 (§3's dag, reads
// at -reads strands).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/apps"
	"repro/internal/cilk"
	"repro/internal/dag"
	"repro/internal/mem"
	"repro/internal/peerset"
	"repro/internal/progs"
	"repro/internal/rader"
	"repro/internal/sched"
	"repro/internal/spbags"
	"repro/internal/spplus"
	"repro/internal/trace"
)

func main() {
	var (
		progName = flag.String("prog", "fib", "program: benchmark name or fig1[-early|-late|-fixed], fig2")
		detector = flag.String("detector", "sp+", "detector: none, empty, peer-set, sp-bags, sp+")
		specStr  = flag.String("spec", "none", "steal specification (none, all, all-eager, depth:D, single:A, pair:A,B, triple:I,J,K, random:SEED,K, labels:...)")
		scale    = flag.String("scale", "small", "benchmark scale: test, small, bench")
		reads    = flag.String("reads", "1,9", "fig2 only: comma-separated strands that read the reducer")
		coverage = flag.Bool("coverage", false, "run the full §7 specification sweep with SP+ and Peer-Set")
		verbose  = flag.Bool("v", false, "print run statistics")
		dot      = flag.Bool("dot", false, "emit the run's performance dag in Graphviz dot format and exit")
		jsonOut  = flag.Bool("json", false, "print the race report as JSON (for CI)")
		record   = flag.String("record", "", "record the run's event stream to this trace file")
		replay   = flag.String("replay", "", "skip execution; replay a recorded trace file into the detector")
	)
	flag.Parse()

	if *replay != "" {
		det, err := rader.ParseDetector(*detector)
		if err != nil {
			fatal(err)
		}
		if err := replayTrace(*replay, det); err != nil {
			fatal(err)
		}
		return
	}

	prog, verify, desc, err := buildProgram(*progName, *scale, *reads)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("program: %s (%s)\n", *progName, desc)

	if *coverage {
		runCoverage(prog)
		return
	}

	det, err := rader.ParseDetector(*detector)
	if err != nil {
		fatal(err)
	}
	spec, err := sched.Parse(*specStr)
	if err != nil {
		fatal(err)
	}
	if *dot {
		rec := dag.NewRecorder()
		cilk.Run(prog, cilk.Config{Spec: spec, Hooks: rec})
		fmt.Print(rec.D.Dot(*progName))
		return
	}
	if *record != "" {
		if err := recordTrace(*record, prog, spec); err != nil {
			fatal(err)
		}
		fmt.Printf("trace recorded to %s\n", *record)
		return
	}
	out := rader.Run(prog, rader.Config{Detector: det, Spec: spec})
	fmt.Printf("detector: %s   spec: %s   time: %v\n", det, sched.Format(spec), out.Duration)
	if *verbose {
		r := out.Result
		fmt.Printf("frames=%d spawns=%d syncs=%d steals=%d views=%d reduces=%d loads=%d stores=%d reducer-reads=%d updates=%d\n",
			r.Frames, r.Spawns, r.Syncs, len(r.Steals), r.Views, r.Reduces, r.Loads, r.Stores, r.Reads, r.Updates)
		if out.Stats.Elems > 0 {
			fmt.Printf("disjoint-set: %d elements, %d finds, %d unions (each amortized O(α))\n",
				out.Stats.Elems, out.Stats.Finds, out.Stats.Unions)
		}
	}
	if verify != nil {
		if err := verify(); err != nil {
			fmt.Printf("VERIFY FAILED: %v\n", err)
		} else {
			fmt.Println("verify: ok")
		}
	}
	if out.Report == nil {
		fmt.Println("(no detector attached)")
		return
	}
	if *jsonOut {
		b, err := json.Marshal(out.Report)
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(b))
		if !out.Report.Empty() {
			os.Exit(1)
		}
		return
	}
	fmt.Println(out.Report.Summary())
	if !out.Report.Empty() && len(out.Result.Steals) > 0 {
		fmt.Printf("replay with: -spec '%s'\n", out.Replay)
	}
	if !out.Report.Empty() {
		os.Exit(1)
	}
}

func runCoverage(prog func(*cilk.Ctx)) {
	cr := rader.Coverage(prog)
	fmt.Printf("profile: max P-depth %d, max sync block %d, Cilk depth %d\n",
		cr.Profile.MaxPDepth, cr.Profile.MaxSyncBlock, cr.Profile.CilkDepth)
	fmt.Printf("specifications run: %d (SP+), plus one Peer-Set pass\n", cr.SpecsRun)
	fmt.Printf("view-read: %s\n", cr.ViewReads.Summary())
	if len(cr.Races) == 0 {
		fmt.Println("determinacy: no races under any specification")
	} else {
		fmt.Printf("determinacy: %d distinct race(s):\n", len(cr.Races))
		for _, f := range cr.Races {
			fmt.Printf("  [%s] %v\n", f.Spec, f.Race)
		}
	}
	if !cr.Clean() {
		os.Exit(1)
	}
}

func buildProgram(name, scaleStr, reads string) (func(*cilk.Ctx), func() error, string, error) {
	al := mem.NewAllocator()
	switch name {
	case "fig1":
		return progs.Fig1(al, progs.Fig1Options{}), nil, "Figure 1: shallow-copy list race", nil
	case "fig1-early":
		return progs.Fig1(al, progs.Fig1Options{EarlyGetValue: true}), nil, "Figure 1 with get_value before sync", nil
	case "fig1-late":
		return progs.Fig1(al, progs.Fig1Options{SetValueAfterSpawn: true}), nil, "Figure 1 with set_value after spawn", nil
	case "fig1-fixed":
		return progs.Fig1(al, progs.Fig1Options{DeepCopy: true}), nil, "Figure 1 with a deep copy (race-free)", nil
	case "fig2":
		var at []int
		for _, s := range strings.Split(reads, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || v < 1 || v > progs.Fig2Strands {
				return nil, nil, "", fmt.Errorf("bad fig2 read strand %q", s)
			}
			at = append(at, v)
		}
		return progs.Fig2Reads(at...), nil,
			fmt.Sprintf("Figure 2 dag with reducer reads at strands %v", at), nil
	}
	var sc apps.Scale
	switch scaleStr {
	case "test":
		sc = apps.Test
	case "small":
		sc = apps.Small
	case "bench":
		sc = apps.Bench
	default:
		return nil, nil, "", fmt.Errorf("bad scale %q", scaleStr)
	}
	app, err := apps.ByName(name)
	if err != nil {
		return nil, nil, "", err
	}
	ins := app.Build(al, sc)
	return ins.Prog, ins.Verify, fmt.Sprintf("%s, input %s", app.Desc, ins.InputDesc), nil
}

func recordTrace(path string, prog func(*cilk.Ctx), spec cilk.StealSpec) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	tw := trace.NewWriter(f)
	cilk.Run(prog, cilk.Config{Spec: spec, Hooks: tw})
	if err := tw.Close(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func replayTrace(path string, det rader.DetectorName) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var hooks cilk.Hooks
	var report func() string
	exit := 0
	switch det {
	case rader.PeerSet:
		d := peerset.New()
		hooks, report = d, func() string { return d.Report().Summary() }
	case rader.SPBags:
		d := spbags.New()
		hooks, report = d, func() string { return d.Report().Summary() }
	case rader.SPPlus:
		d := spplus.New()
		hooks, report = d, func() string { return d.Report().Summary() }
	default:
		return fmt.Errorf("replay needs peer-set, sp-bags or sp+ (got %s)", det)
	}
	n, err := trace.Replay(f, hooks)
	if err != nil {
		return err
	}
	fmt.Printf("replayed %d events from %s under %s\n", n, path, det)
	summary := report()
	fmt.Println(summary)
	if summary != "no races detected" {
		exit = 1
	}
	os.Exit(exit)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rader:", err)
	os.Exit(2)
}
