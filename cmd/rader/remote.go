package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/service"
	"repro/internal/trace"
)

// remoteRequest is one -remote invocation's worth of intent: exactly one
// of replayPath (upload a recorded trace), coverage (async §7 sweep of a
// named program), or the default named-program analysis.
type remoteRequest struct {
	replayPath string
	prog       string
	scale      string
	detector   string
	spec       string
	coverage   bool
	// sweepW/sweepN mirror -sweep-workers/-sweep-sample onto the daemon's
	// ?workers=/?sample= sweep parameters (0 = daemon default / full family).
	sweepW  int
	sweepN  int
	jsonOut bool
	// elide asks the daemon to run the static elision pre-pass before
	// detection (?elide=1). Verdicts are byte-identical either way; the
	// daemon's raderd_elide_* series account for the saved work.
	elide bool
}

// remoteClient drives a raderd daemon — the analyze-remotely half of the
// record-once/analyze-many workflow. Every exchange goes through the
// retrying transport in retry.go, so transient saturation (429), a
// draining daemon (503) and dial failures heal without the user seeing
// them; exhausted retries surface as ordinary errors (exit code 2).
type remoteClient struct {
	base   string
	stdout io.Writer
	// client overrides http.DefaultClient in tests.
	client *http.Client
	retry  retryPolicy
	// ctx is the client half of the distributed trace: every request
	// carries a traceparent derived from it, so the daemon's span trees
	// parent under this invocation. Zero disables propagation.
	ctx obs.SpanContext
	// tr records client-side spans when -profile-out is set; nil keeps
	// every instrumentation site on its zero-cost path.
	tr *obs.Trace
	// serverDoc is the daemon's span tree for this invocation's work,
	// fetched best-effort after a successful analyze or sweep so
	// -profile-out can merge both sides onto one timeline.
	serverDoc *obs.SpanDoc
}

func (c *remoteClient) http() *http.Client {
	if c.client != nil {
		return c.client
	}
	return http.DefaultClient
}

func (c *remoteClient) run(req remoteRequest) (int, error) {
	if req.coverage {
		return c.sweep(req)
	}
	return c.analyze(req)
}

// Resumable-upload shape: traces at or past resumableThreshold go
// through PUT /traces/{digest} in uploadChunk-sized pieces (each fsynced
// server-side before acknowledgment) and are then analyzed by reference,
// so neither end ever holds the trace in memory and an interrupted
// upload resumes from the last durable byte. Smaller traces — and any
// daemon without a store — use a single streamed POST body.
var (
	uploadChunk        = int64(4 << 20)
	resumableThreshold = int64(8 << 20)
)

// analyze submits one synchronous analysis: the trace file when
// -replay was given, the named program otherwise.
func (c *remoteClient) analyze(req remoteRequest) (int, error) {
	q := url.Values{}
	q.Set("detector", req.detector)
	var resp *http.Response
	var raw []byte
	var err error
	if req.replayPath != "" {
		if req.elide {
			q.Set("elide", "1")
		}
		resp, raw, err = c.analyzeTrace(req.replayPath, q)
	} else {
		if req.elide {
			return exitError, fmt.Errorf("-elide analyzes a recorded trace; it requires -replay")
		}
		q.Set("prog", req.prog)
		q.Set("scale", req.scale)
		q.Set("spec", req.spec)
		resp, raw, err = c.do(http.MethodPost, "/analyze?"+q.Encode(), nil, false)
	}
	if err != nil {
		return exitError, err
	}
	if resp.StatusCode != http.StatusOK {
		return exitError, remoteErr(resp, raw)
	}
	var ar service.AnalyzeResponse
	if err := json.Unmarshal(raw, &ar); err != nil {
		return exitError, fmt.Errorf("decoding daemon response: %v", err)
	}
	c.fetchServerSpans("/traces/" + ar.Digest + "/trace")
	if req.jsonOut {
		// Emit the verdict document exactly as the daemon encoded it —
		// byte-for-byte what a local -json run prints for the same trace.
		fmt.Fprintln(c.stdout, string(ar.Report))
	} else {
		c.printAnalyze(ar)
	}
	if ar.Clean {
		return exitClean, nil
	}
	return exitRaces, nil
}

// analyzeTrace uploads a recorded trace and returns the daemon's
// /analyze exchange. Large traces take the resumable digest-addressed
// path when the daemon supports it; everything else streams the file as
// a single POST body (reopened per retry attempt, never slurped).
func (c *remoteClient) analyzeTrace(path string, q url.Values) (*http.Response, []byte, error) {
	st, err := os.Stat(path)
	if err != nil {
		return nil, nil, err
	}
	if st.Size() >= resumableThreshold {
		resp, raw, handled, err := c.analyzeViaStore(path, q)
		if handled {
			return resp, raw, err
		}
	}
	mkBody := func() (io.Reader, error) { return os.Open(path) }
	return c.do(http.MethodPost, "/analyze?"+q.Encode(), mkBody, false)
}

// analyzeViaStore drives the resumable path: digest the file, ask the
// daemon where the upload stands, push the missing chunks, then analyze
// by reference. handled=false means the daemon has no trace store (501,
// or a pre-store daemon's 404/405) and the caller should fall back to
// the plain body upload.
func (c *remoteClient) analyzeViaStore(path string, q url.Values) (resp *http.Response, raw []byte, handled bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, true, err
	}
	defer f.Close()
	dg, err := trace.DigestOf(f)
	if err != nil {
		return nil, nil, true, fmt.Errorf("digesting %s: %v", path, err)
	}
	digest := dg.String()

	hresp, _, err := c.do(http.MethodHead, "/traces/"+digest, nil, true)
	if err != nil {
		return nil, nil, true, err
	}
	if hresp.StatusCode != http.StatusOK {
		return nil, nil, false, nil
	}
	offset, _ := strconv.ParseInt(hresp.Header.Get("Upload-Offset"), 10, 64)
	if hresp.Header.Get("Upload-Complete") != "true" {
		if err := c.uploadChunks(f, digest, offset); err != nil {
			return nil, nil, true, err
		}
	}
	q.Set("digest", digest)
	resp, raw, err = c.do(http.MethodPost, "/analyze?"+q.Encode(), nil, false)
	return resp, raw, true, err
}

// uploadChunks pushes the file from offset to EOF in uploadChunk pieces.
// Chunk PUTs are idempotent by construction — the server verifies the
// claimed offset against its durable state and answers a duplicate with
// 409 plus the true offset — so transport errors mid-chunk are safe to
// retry, and an offset conflict just resyncs the loop.
func (c *remoteClient) uploadChunks(f *os.File, digest string, offset int64) error {
	st, err := f.Stat()
	if err != nil {
		return err
	}
	size := st.Size()
	buf := make([]byte, uploadChunk)
	for offset < size {
		n := int64(len(buf))
		if rem := size - offset; rem < n {
			n = rem
		}
		if _, err := f.ReadAt(buf[:n], offset); err != nil {
			return fmt.Errorf("reading trace chunk at %d: %v", offset, err)
		}
		chunk := buf[:n]
		path := fmt.Sprintf("/traces/%s?offset=%d", digest, offset)
		if offset+n == size {
			path += "&complete=1"
		}
		cspan := c.tr.Start("chunk").Arg("offset", offset).Arg("bytes", n)
		resp, raw, err := c.do(http.MethodPut, path,
			func() (io.Reader, error) { return bytes.NewReader(chunk), nil }, true)
		cspan.End()
		if err != nil {
			return err
		}
		switch resp.StatusCode {
		case http.StatusOK:
			// Content-addressed no-op: the daemon already has this trace.
			return nil
		case http.StatusAccepted, http.StatusCreated:
			if v, perr := strconv.ParseInt(resp.Header.Get("Upload-Offset"), 10, 64); perr == nil {
				offset = v
			} else {
				offset += n
			}
		case http.StatusConflict:
			// Another client (or a retried chunk) moved the offset; the
			// header carries the durable truth to resume from.
			v, perr := strconv.ParseInt(resp.Header.Get("Upload-Offset"), 10, 64)
			if perr != nil {
				return remoteErr(resp, raw)
			}
			offset = v
		default:
			return remoteErr(resp, raw)
		}
	}
	return nil
}

func (c *remoteClient) printAnalyze(ar service.AnalyzeResponse) {
	served := "analyzed"
	if ar.Cached {
		served = "served from cache"
	}
	fmt.Fprintf(c.stdout, "remote: %s under %s (digest %s, %s)\n",
		c.base, ar.Detector, short(ar.Digest), served)
	if ar.Detector == "all" {
		var m report.Multi
		if err := json.Unmarshal(ar.Report, &m); err != nil {
			fmt.Fprintf(c.stdout, "unreadable verdict: %v\n", err)
			return
		}
		for _, rep := range m.Reports {
			if rep.Clean {
				fmt.Fprintf(c.stdout, "%s: no races detected\n", rep.Detector)
				continue
			}
			fmt.Fprintf(c.stdout, "%s: %d distinct race(s), %d report(s) total:\n",
				rep.Detector, rep.Distinct, rep.Total)
			for _, r := range rep.Races {
				fmt.Fprintf(c.stdout, "  %s\n", r)
			}
		}
		return
	}
	var rep report.Report
	if err := json.Unmarshal(ar.Report, &rep); err != nil {
		fmt.Fprintf(c.stdout, "unreadable verdict: %v\n", err)
		return
	}
	if rep.Clean {
		fmt.Fprintln(c.stdout, "no races detected")
		return
	}
	fmt.Fprintf(c.stdout, "%d distinct race(s), %d report(s) total:\n", rep.Distinct, rep.Total)
	for _, r := range rep.Races {
		fmt.Fprintf(c.stdout, "  %s\n", r)
	}
}

// sweep submits the §7 coverage sweep as an async job and polls until it
// resolves.
func (c *remoteClient) sweep(req remoteRequest) (int, error) {
	q := url.Values{}
	q.Set("prog", req.prog)
	q.Set("scale", req.scale)
	if req.sweepW > 0 {
		q.Set("workers", strconv.Itoa(req.sweepW))
	}
	if req.sweepN > 0 {
		q.Set("sample", strconv.Itoa(req.sweepN))
	}
	resp, raw, err := c.post("/sweep?"+q.Encode(), nil)
	if err != nil {
		return exitError, err
	}
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		return exitError, remoteErr(resp, raw)
	}
	var sr service.SweepResponse
	if err := json.Unmarshal(raw, &sr); err != nil {
		return exitError, fmt.Errorf("decoding daemon response: %v", err)
	}
	if sr.State == "queued" || sr.State == "running" {
		// Follow the job's live event stream while it runs; a daemon
		// without the surface (or any stream hiccup) just falls through to
		// the poll loop below, which remains the source of truth.
		c.streamEvents(sr.ID, req.jsonOut)
	}
	for sr.State == "queued" || sr.State == "running" {
		time.Sleep(100 * time.Millisecond)
		resp, raw, err := c.get("/sweep/" + sr.ID)
		if err != nil {
			return exitError, err
		}
		if resp.StatusCode != http.StatusOK {
			return exitError, remoteErr(resp, raw)
		}
		if err := json.Unmarshal(raw, &sr); err != nil {
			return exitError, fmt.Errorf("decoding poll response: %v", err)
		}
	}
	if sr.State == "failed" {
		return exitError, fmt.Errorf("remote sweep failed: %s", sr.Error)
	}
	c.fetchServerSpans("/jobs/" + sr.ID + "/trace")
	var sweep report.Sweep
	if err := json.Unmarshal(sr.Sweep, &sweep); err != nil {
		return exitError, fmt.Errorf("decoding sweep verdict: %v", err)
	}
	if req.jsonOut {
		fmt.Fprintln(c.stdout, string(sr.Sweep))
	} else {
		c.printSweep(sweep)
	}
	switch {
	case !sweep.Clean:
		return exitRaces, nil
	case !sweep.Complete:
		return exitError, nil
	default:
		return exitClean, nil
	}
}

func (c *remoteClient) printSweep(s report.Sweep) {
	fmt.Fprintf(c.stdout, "remote sweep: %d specifications (SP+), plus one Peer-Set pass\n", s.SpecsRun)
	if len(s.ViewReads) == 0 {
		fmt.Fprintln(c.stdout, "view-read: no races detected")
	} else {
		fmt.Fprintf(c.stdout, "view-read: %d race(s):\n", len(s.ViewReads))
		for _, r := range s.ViewReads {
			fmt.Fprintf(c.stdout, "  %s\n", r)
		}
	}
	if len(s.Races) == 0 {
		fmt.Fprintln(c.stdout, "determinacy: no races under any specification")
	} else {
		fmt.Fprintf(c.stdout, "determinacy: %d distinct race(s):\n", len(s.Races))
		for _, f := range s.Races {
			fmt.Fprintf(c.stdout, "  [%s] %s\n", f.Spec, f.Race)
		}
	}
	for _, f := range s.Failures {
		fmt.Fprintf(c.stdout, "sweep failure: [%s] %s\n", f.Spec, f.Error)
	}
}

// post submits a bodyless POST (sweep submission) through the retrying
// transport; non-idempotent, so only 429/503/dial failures replay it.
func (c *remoteClient) post(path string, body io.Reader) (*http.Response, []byte, error) {
	var mkBody func() (io.Reader, error)
	if body != nil {
		mkBody = func() (io.Reader, error) { return body, nil }
	}
	return c.do(http.MethodPost, path, mkBody, false)
}

// get reads through the retrying transport; GETs are idempotent, so a
// connection cut mid-response is retried too.
func (c *remoteClient) get(path string) (*http.Response, []byte, error) {
	return c.do(http.MethodGet, path, nil, true)
}

// remoteErr folds a non-2xx response into one readable error, surfacing
// the daemon's JSON error detail and the load-shedding case specially.
func remoteErr(resp *http.Response, raw []byte) error {
	var er service.ErrorResponse
	detail := string(bytes.TrimSpace(raw))
	if err := json.Unmarshal(raw, &er); err == nil && er.Error != "" {
		detail = er.Error
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		return fmt.Errorf("daemon saturated (429): %s (retry after %s)", detail, resp.Header.Get("Retry-After"))
	}
	return fmt.Errorf("daemon returned %s: %s", resp.Status, detail)
}

func short(digest string) string {
	if len(digest) > 12 {
		return digest[:12]
	}
	return digest
}
