package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"time"

	"repro/internal/report"
	"repro/internal/service"
)

// remoteRequest is one -remote invocation's worth of intent: exactly one
// of replayPath (upload a recorded trace), coverage (async §7 sweep of a
// named program), or the default named-program analysis.
type remoteRequest struct {
	replayPath string
	prog       string
	scale      string
	detector   string
	spec       string
	coverage   bool
	jsonOut    bool
}

// remoteClient drives a raderd daemon — the analyze-remotely half of the
// record-once/analyze-many workflow.
type remoteClient struct {
	base   string
	stdout io.Writer
	// client overrides http.DefaultClient in tests.
	client *http.Client
}

func (c *remoteClient) http() *http.Client {
	if c.client != nil {
		return c.client
	}
	return http.DefaultClient
}

func (c *remoteClient) run(req remoteRequest) (int, error) {
	if req.coverage {
		return c.sweep(req)
	}
	return c.analyze(req)
}

// analyze submits one synchronous analysis: the trace file when
// -replay was given, the named program otherwise.
func (c *remoteClient) analyze(req remoteRequest) (int, error) {
	q := url.Values{}
	q.Set("detector", req.detector)
	var body io.Reader
	if req.replayPath != "" {
		data, err := os.ReadFile(req.replayPath)
		if err != nil {
			return exitError, err
		}
		body = bytes.NewReader(data)
	} else {
		q.Set("prog", req.prog)
		q.Set("scale", req.scale)
		q.Set("spec", req.spec)
	}
	resp, raw, err := c.post("/analyze?"+q.Encode(), body)
	if err != nil {
		return exitError, err
	}
	if resp.StatusCode != http.StatusOK {
		return exitError, remoteErr(resp, raw)
	}
	var ar service.AnalyzeResponse
	if err := json.Unmarshal(raw, &ar); err != nil {
		return exitError, fmt.Errorf("decoding daemon response: %v", err)
	}
	if req.jsonOut {
		// Emit the verdict document exactly as the daemon encoded it —
		// byte-for-byte what a local -json run prints for the same trace.
		fmt.Fprintln(c.stdout, string(ar.Report))
	} else {
		c.printAnalyze(ar)
	}
	if ar.Clean {
		return exitClean, nil
	}
	return exitRaces, nil
}

func (c *remoteClient) printAnalyze(ar service.AnalyzeResponse) {
	served := "analyzed"
	if ar.Cached {
		served = "served from cache"
	}
	fmt.Fprintf(c.stdout, "remote: %s under %s (digest %s, %s)\n",
		c.base, ar.Detector, short(ar.Digest), served)
	if ar.Detector == "all" {
		var m report.Multi
		if err := json.Unmarshal(ar.Report, &m); err != nil {
			fmt.Fprintf(c.stdout, "unreadable verdict: %v\n", err)
			return
		}
		for _, rep := range m.Reports {
			if rep.Clean {
				fmt.Fprintf(c.stdout, "%s: no races detected\n", rep.Detector)
				continue
			}
			fmt.Fprintf(c.stdout, "%s: %d distinct race(s), %d report(s) total:\n",
				rep.Detector, rep.Distinct, rep.Total)
			for _, r := range rep.Races {
				fmt.Fprintf(c.stdout, "  %s\n", r)
			}
		}
		return
	}
	var rep report.Report
	if err := json.Unmarshal(ar.Report, &rep); err != nil {
		fmt.Fprintf(c.stdout, "unreadable verdict: %v\n", err)
		return
	}
	if rep.Clean {
		fmt.Fprintln(c.stdout, "no races detected")
		return
	}
	fmt.Fprintf(c.stdout, "%d distinct race(s), %d report(s) total:\n", rep.Distinct, rep.Total)
	for _, r := range rep.Races {
		fmt.Fprintf(c.stdout, "  %s\n", r)
	}
}

// sweep submits the §7 coverage sweep as an async job and polls until it
// resolves.
func (c *remoteClient) sweep(req remoteRequest) (int, error) {
	q := url.Values{}
	q.Set("prog", req.prog)
	q.Set("scale", req.scale)
	resp, raw, err := c.post("/sweep?"+q.Encode(), nil)
	if err != nil {
		return exitError, err
	}
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		return exitError, remoteErr(resp, raw)
	}
	var sr service.SweepResponse
	if err := json.Unmarshal(raw, &sr); err != nil {
		return exitError, fmt.Errorf("decoding daemon response: %v", err)
	}
	for sr.State == "queued" || sr.State == "running" {
		time.Sleep(100 * time.Millisecond)
		resp, raw, err := c.get("/sweep/" + sr.ID)
		if err != nil {
			return exitError, err
		}
		if resp.StatusCode != http.StatusOK {
			return exitError, remoteErr(resp, raw)
		}
		if err := json.Unmarshal(raw, &sr); err != nil {
			return exitError, fmt.Errorf("decoding poll response: %v", err)
		}
	}
	if sr.State == "failed" {
		return exitError, fmt.Errorf("remote sweep failed: %s", sr.Error)
	}
	var sweep report.Sweep
	if err := json.Unmarshal(sr.Sweep, &sweep); err != nil {
		return exitError, fmt.Errorf("decoding sweep verdict: %v", err)
	}
	if req.jsonOut {
		fmt.Fprintln(c.stdout, string(sr.Sweep))
	} else {
		c.printSweep(sweep)
	}
	switch {
	case !sweep.Clean:
		return exitRaces, nil
	case !sweep.Complete:
		return exitError, nil
	default:
		return exitClean, nil
	}
}

func (c *remoteClient) printSweep(s report.Sweep) {
	fmt.Fprintf(c.stdout, "remote sweep: %d specifications (SP+), plus one Peer-Set pass\n", s.SpecsRun)
	if len(s.ViewReads) == 0 {
		fmt.Fprintln(c.stdout, "view-read: no races detected")
	} else {
		fmt.Fprintf(c.stdout, "view-read: %d race(s):\n", len(s.ViewReads))
		for _, r := range s.ViewReads {
			fmt.Fprintf(c.stdout, "  %s\n", r)
		}
	}
	if len(s.Races) == 0 {
		fmt.Fprintln(c.stdout, "determinacy: no races under any specification")
	} else {
		fmt.Fprintf(c.stdout, "determinacy: %d distinct race(s):\n", len(s.Races))
		for _, f := range s.Races {
			fmt.Fprintf(c.stdout, "  [%s] %s\n", f.Spec, f.Race)
		}
	}
	for _, f := range s.Failures {
		fmt.Fprintf(c.stdout, "sweep failure: [%s] %s\n", f.Spec, f.Error)
	}
}

func (c *remoteClient) post(path string, body io.Reader) (*http.Response, []byte, error) {
	resp, err := c.http().Post(c.base+path, "application/octet-stream", body)
	if err != nil {
		return nil, nil, fmt.Errorf("reaching raderd at %s: %v", c.base, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	return resp, raw, err
}

func (c *remoteClient) get(path string) (*http.Response, []byte, error) {
	resp, err := c.http().Get(c.base + path)
	if err != nil {
		return nil, nil, fmt.Errorf("reaching raderd at %s: %v", c.base, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	return resp, raw, err
}

// remoteErr folds a non-2xx response into one readable error, surfacing
// the daemon's JSON error detail and the load-shedding case specially.
func remoteErr(resp *http.Response, raw []byte) error {
	var er service.ErrorResponse
	detail := string(bytes.TrimSpace(raw))
	if err := json.Unmarshal(raw, &er); err == nil && er.Error != "" {
		detail = er.Error
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		return fmt.Errorf("daemon saturated (429): %s (retry after %s)", detail, resp.Header.Get("Retry-After"))
	}
	return fmt.Errorf("daemon returned %s: %s", resp.Status, detail)
}

func short(digest string) string {
	if len(digest) > 12 {
		return digest[:12]
	}
	return digest
}
