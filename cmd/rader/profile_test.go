package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// profileDoc mirrors the Chrome trace-event object format rader emits.
type profileDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		TS   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		PID  int            `json:"pid"`
		TID  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

// readProfile parses a -profile-out file and returns the span names seen.
func readProfile(t *testing.T, path string) (profileDoc, map[string]int) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc profileDoc
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("profile is not valid JSON: %v\n%s", err, b)
	}
	names := map[string]int{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %q has phase %q, want complete (X)", ev.Name, ev.Ph)
		}
		if ev.TS < 0 || ev.Dur < 0 {
			t.Errorf("event %q has negative timing ts=%g dur=%g", ev.Name, ev.TS, ev.Dur)
		}
		names[ev.Name]++
	}
	return doc, names
}

// A live run profile carries the run span with its event-count args.
func TestProfileOutLiveRun(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.json")
	code, out, errOut := exec(t, "-prog", "fig1", "-detector", "sp+", "-spec", "all",
		"-profile-out", path)
	if code != exitRaces {
		t.Fatalf("exit %d, want %d\n%s%s", code, exitRaces, out, errOut)
	}
	if !strings.Contains(errOut, "profile written to") {
		t.Fatalf("no profile banner on stderr:\n%s", errOut)
	}
	_, names := readProfile(t, path)
	if names["run:sp+"] != 1 {
		t.Fatalf("profile missing run:sp+ span: %v", names)
	}
}

// A replay profile covers the decode and every detector's consumption.
func TestProfileOutReplayAllDetectors(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "run.trace")
	if code, out, errOut := exec(t, "-prog", "fig1", "-spec", "all", "-record", tracePath); code != exitClean {
		t.Fatalf("record: exit %d\n%s%s", code, out, errOut)
	}
	profPath := filepath.Join(dir, "replay.json")
	code, out, _ := exec(t, "-replay", tracePath, "-detector", "all", "-json",
		"-profile-out", profPath)
	if code != exitRaces {
		t.Fatalf("replay: exit %d, want %d\n%s", code, exitRaces, out)
	}
	// JSON mode keeps stdout to exactly one document even when profiling.
	if !strings.HasPrefix(strings.TrimSpace(out), "{") || strings.Count(out, "\n") != 1 {
		t.Fatalf("stdout is not a single JSON document:\n%s", out)
	}
	doc, names := readProfile(t, profPath)
	if names["replay"] != 1 {
		t.Fatalf("profile missing replay span: %v", names)
	}
	for _, det := range []string{"peer-set", "sp-bags", "sp+"} {
		if names["detector:"+det] != 1 {
			t.Fatalf("profile missing detector:%s span: %v", det, names)
		}
	}
	for _, ev := range doc.TraceEvents {
		if ev.Name == "replay" {
			if ev.Args["events"] == nil || ev.Args["bytes"] == nil {
				t.Fatalf("replay span lacks accounting args: %v", ev.Args)
			}
		}
		if ev.Name == "detector:sp+" {
			if ev.Args["races"] == nil || ev.Args["loads"] == nil {
				t.Fatalf("detector span lacks count args: %v", ev.Args)
			}
		}
	}
}

// A coverage profile shows the sweep's phases and per-spec units across
// worker lanes.
func TestProfileOutCoverageSweep(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.json")
	code, out, errOut := exec(t, "-prog", "fig1", "-coverage", "-profile-out", path)
	if code != exitRaces {
		t.Fatalf("sweep: exit %d, want %d\n%s%s", code, exitRaces, out, errOut)
	}
	// The standalone peer-set pass is piggybacked onto the first spec run,
	// so the phases a plain sweep shows are profile, per-spec units, collect.
	_, names := readProfile(t, path)
	for _, want := range []string{"profile", "collect"} {
		if names[want] != 1 {
			t.Fatalf("profile missing %q span: %v", want, names)
		}
	}
	specs := 0
	for n, c := range names {
		if strings.HasPrefix(n, "spec:") {
			specs += c
		}
	}
	if specs == 0 {
		t.Fatalf("profile has no per-spec spans: %v", names)
	}
}
