package main

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/service"
)

// The all-detectors golden path: one recorded trace, analyzed with
// -detector all locally and via a raderd daemon, must produce
// byte-identical JSON — the merged internal/report document is the one
// wire format for both.
func TestAllDetectorsLocalRemoteParity(t *testing.T) {
	srv, base := startDaemon(t, service.Config{Workers: 2})
	path := filepath.Join(t.TempDir(), "run.trace")

	code, out, errOut := exec(t, "-prog", "fig1", "-spec", "all", "-record", path)
	if code != exitClean {
		t.Fatalf("record: exit %d\n%s%s", code, out, errOut)
	}

	code, localJSON, errOut := exec(t, "-replay", path, "-detector", "all", "-json")
	if code != exitRaces {
		t.Fatalf("local all replay: exit %d\n%s%s", code, localJSON, errOut)
	}
	if !strings.HasPrefix(localJSON, `{"schema":`) || !strings.Contains(localJSON, `"detector":"all"`) {
		t.Fatalf("local all verdict is not the merged document:\n%s", localJSON)
	}

	code, remoteJSON, errOut := exec(t, "-remote", base, "-replay", path, "-detector", "all", "-json")
	if code != exitRaces {
		t.Fatalf("remote all replay: exit %d\n%s%s", code, remoteJSON, errOut)
	}
	if remoteJSON != localJSON {
		t.Fatalf("remote and local all-detectors verdicts must match byte-for-byte:\nremote: %s\nlocal:  %s",
			remoteJSON, localJSON)
	}

	// The daemon's single pass seeded per-detector entries: asking for
	// one detector now is a cache hit whose document matches a local
	// single-detector replay byte-for-byte.
	code, localSP, _ := exec(t, "-replay", path, "-detector", "sp+", "-json")
	if code != exitRaces {
		t.Fatalf("local sp+ replay: exit %d", code)
	}
	code, remoteSP, errOut := exec(t, "-remote", base, "-replay", path, "-detector", "sp+", "-json")
	if code != exitRaces {
		t.Fatalf("remote sp+ replay: exit %d\n%s", code, errOut)
	}
	if remoteSP != localSP {
		t.Fatalf("seeded sp+ verdict diverges from local replay:\nremote: %s\nlocal:  %s",
			remoteSP, localSP)
	}
	if srv.CacheHits() == 0 {
		t.Fatal("single-detector request after an all-pass must hit the seeded cache")
	}

	// Human-readable remote output lists one verdict line per detector.
	code, out, _ = exec(t, "-remote", base, "-replay", path, "-detector", "all")
	if code != exitRaces {
		t.Fatalf("plain remote all: exit %d", code)
	}
	for _, det := range []string{"peer-set", "sp-bags", "sp+"} {
		if !strings.Contains(out, det) {
			t.Fatalf("plain output missing %s verdict:\n%s", det, out)
		}
	}
}

// A live run under -detector all fans one execution out to the three
// detectors, and exits by the merged verdict.
func TestAllDetectorsLiveRun(t *testing.T) {
	code, out, _ := exec(t, "-prog", "fig1", "-spec", "all", "-detector", "all")
	if code != exitRaces {
		t.Fatalf("racy all run: exit %d\n%s", code, out)
	}
	for _, det := range []string{"peer-set", "sp-bags", "sp+"} {
		if !strings.Contains(out, det+":") {
			t.Fatalf("per-detector summary for %s missing:\n%s", det, out)
		}
	}
	code, jsonOut, _ := exec(t, "-prog", "fig1", "-spec", "all", "-detector", "all", "-json")
	if code != exitRaces || !strings.HasPrefix(jsonOut, `{"schema":`) {
		t.Fatalf("all -json run: exit %d\n%s", code, jsonOut)
	}
	code, out, _ = exec(t, "-prog", "fig1-fixed", "-spec", "all", "-detector", "all")
	if code != exitClean {
		t.Fatalf("clean all run: exit %d\n%s", code, out)
	}
}
