package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/trace"
)

// testPolicy is a deterministic retry policy that records sleeps instead
// of performing them.
func testPolicy(slept *[]time.Duration) retryPolicy {
	return retryPolicy{
		attempts: 4,
		base:     100 * time.Millisecond,
		cap:      time.Second,
		sleep:    func(d time.Duration) { *slept = append(*slept, d) },
		jitter:   func() float64 { return 0 }, // low edge of the jitter window
	}
}

func TestBackoffHonorsRetryAfter(t *testing.T) {
	p := retryPolicy{jitter: func() float64 { return 0 }}.withDefaults()
	if d := p.backoff(0, "3"); d != 3*time.Second {
		t.Fatalf("Retry-After 3 → %v, want 3s", d)
	}
	if d := p.backoff(5, "0"); d != 0 {
		t.Fatalf("Retry-After 0 → %v, want 0", d)
	}
	// HTTP-date form: a time in the past means "now".
	if d := p.backoff(0, time.Now().Add(-time.Minute).UTC().Format(http.TimeFormat)); d != 0 {
		t.Fatalf("past HTTP-date → %v, want 0", d)
	}
	// Without a hint: exponential, halved by the zero jitter, capped.
	if d := p.backoff(0, ""); d != 100*time.Millisecond {
		t.Fatalf("backoff(0) = %v, want 100ms (base/2 at zero jitter)", d)
	}
	if d := p.backoff(1, ""); d != 200*time.Millisecond {
		t.Fatalf("backoff(1) = %v, want 200ms", d)
	}
	if d := p.backoff(20, ""); d != p.cap/2 {
		t.Fatalf("backoff(20) = %v, want cap/2 = %v", d, p.cap/2)
	}
	// Full jitter reaches toward the top of the window.
	p.jitter = func() float64 { return 0.999 }
	if d := p.backoff(0, ""); d < 190*time.Millisecond || d > 200*time.Millisecond {
		t.Fatalf("jittered backoff(0) = %v, want just under 200ms", d)
	}
}

// A server hint beyond remoteRetryAfterCap is clamped, in both header
// forms: honoring a raw "Retry-After: 86400" (or a far-future HTTP
// date) would park a CLI invocation for a day on one bad header.
func TestBackoffClampsRetryAfter(t *testing.T) {
	p := retryPolicy{jitter: func() float64 { return 0 }}.withDefaults()
	if d := p.backoff(0, "86400"); d != remoteRetryAfterCap {
		t.Fatalf("Retry-After 86400 → %v, want the %v cap", d, remoteRetryAfterCap)
	}
	if d := p.backoff(0, "30"); d != 30*time.Second {
		t.Fatalf("Retry-After 30 → %v, want 30s (at the cap, not over it)", d)
	}
	future := time.Now().Add(24 * time.Hour).UTC().Format(http.TimeFormat)
	if d := p.backoff(0, future); d != remoteRetryAfterCap {
		t.Fatalf("far-future HTTP-date → %v, want the %v cap", d, remoteRetryAfterCap)
	}
	near := time.Now().Add(2 * time.Second).UTC().Format(http.TimeFormat)
	if d := p.backoff(0, near); d <= 0 || d > 2*time.Second {
		t.Fatalf("near HTTP-date → %v, want ~2s (under the cap, honored)", d)
	}
}

// A saturated daemon (429 with Retry-After) is retried after exactly the
// server-requested delay, and the request eventually succeeds without
// the user seeing the shed.
func TestRetryAfter429Shed(t *testing.T) {
	var calls atomic.Int64
	ar, _ := json.Marshal(service.AnalyzeResponse{Digest: "d", Detector: "sp+", Clean: true, Report: []byte(`{}`)})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "2")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"saturated"}`)
			return
		}
		w.Write(ar)
	}))
	defer ts.Close()

	var slept []time.Duration
	var out bytes.Buffer
	c := &remoteClient{base: ts.URL, stdout: &out, retry: testPolicy(&slept)}
	code, err := c.run(remoteRequest{prog: "fig1", detector: "sp+", spec: "all"})
	if err != nil || code != exitClean {
		t.Fatalf("run: code %d err %v", code, err)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want 3", calls.Load())
	}
	if len(slept) != 2 || slept[0] != 2*time.Second || slept[1] != 2*time.Second {
		t.Fatalf("sleeps %v, want two 2s waits from Retry-After", slept)
	}
}

// A draining daemon (503) is retried the same way — the restart heals
// underneath the client.
func TestRetryAfter503Draining(t *testing.T) {
	var calls atomic.Int64
	ar, _ := json.Marshal(service.AnalyzeResponse{Digest: "d", Detector: "sp+", Clean: true, Report: []byte(`{}`)})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":"draining: not accepting new work"}`)
			return
		}
		w.Write(ar)
	}))
	defer ts.Close()

	var slept []time.Duration
	var out bytes.Buffer
	c := &remoteClient{base: ts.URL, stdout: &out, retry: testPolicy(&slept)}
	code, err := c.run(remoteRequest{prog: "fig1", detector: "sp+", spec: "all"})
	if err != nil || code != exitClean {
		t.Fatalf("run: code %d err %v", code, err)
	}
	if len(slept) != 1 || slept[0] != time.Second {
		t.Fatalf("sleeps %v, want one 1s wait", slept)
	}
}

// Retries that never succeed end in an ordinary error — mapped by run()
// to exit code 2 — that names the attempt count.
func TestRetriesExhaustedExitCode(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"error":"saturated"}`)
	}))
	defer ts.Close()

	// Through the real CLI entry point: Retry-After 0 keeps the default
	// policy's sleeps at zero, so the test is fast.
	code, _, errOut := exec(t, "-remote", ts.URL, "-prog", "fig1")
	if code != exitError {
		t.Fatalf("exhausted retries: exit %d, want %d", code, exitError)
	}
	if !strings.Contains(errOut, "giving up after 4 attempts") || !strings.Contains(errOut, "saturated") {
		t.Fatalf("error must name the attempts and the cause: %s", errOut)
	}
}

// cutConn writes a response that claims more body than it delivers, then
// kills the connection — the reader sees an unexpected EOF mid-body.
func cutConn(w http.ResponseWriter) {
	conn, _, err := w.(http.Hijacker).Hijack()
	if err != nil {
		panic(err)
	}
	conn.Write([]byte("HTTP/1.1 200 OK\r\nContent-Length: 1000\r\n\r\n{\"partial\":"))
	conn.Close()
}

// A connection cut mid-response is retried for idempotent GETs — polling
// a sweep job survives it.
func TestMidResponseCutRetriedForGET(t *testing.T) {
	var polls atomic.Int64
	done, _ := json.Marshal(service.SweepResponse{ID: "sweep-1", Program: "fig1", State: "done",
		Sweep: []byte(`{"schema":3,"clean":true,"complete":true,"specsRun":1}`)})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodPost:
			w.WriteHeader(http.StatusAccepted)
			sub, _ := json.Marshal(service.SweepResponse{ID: "sweep-1", Program: "fig1", State: "queued"})
			w.Write(sub)
		case polls.Add(1) == 1:
			cutConn(w) // first poll dies mid-body
		default:
			w.Write(done)
		}
	}))
	defer ts.Close()

	var slept []time.Duration
	var out bytes.Buffer
	c := &remoteClient{base: ts.URL, stdout: &out, retry: testPolicy(&slept)}
	code, err := c.run(remoteRequest{prog: "fig1", coverage: true})
	if err != nil {
		t.Fatalf("sweep with cut poll: %v", err)
	}
	if code != exitClean {
		t.Fatalf("exit %d, want clean", code)
	}
	if polls.Load() < 2 {
		t.Fatalf("cut GET must be retried, polls=%d", polls.Load())
	}
}

// The same cut on a POST is NOT retried: the daemon may have acted on
// the request, and replaying a non-idempotent submission is not the
// client's call. The error says so and exits 2.
func TestMidResponseCutNotRetriedForPOST(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		cutConn(w)
	}))
	defer ts.Close()

	var slept []time.Duration
	var out bytes.Buffer
	c := &remoteClient{base: ts.URL, stdout: &out, retry: testPolicy(&slept)}
	_, err := c.run(remoteRequest{prog: "fig1", detector: "sp+", spec: "all"})
	if err == nil {
		t.Fatal("cut POST must fail")
	}
	if !strings.Contains(err.Error(), "not retried") {
		t.Fatalf("error must explain the no-retry decision: %v", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("POST was sent %d times, want exactly 1", calls.Load())
	}
}

// Dial failures are retried for any method — the request never left the
// machine — and exhaustion surfaces as exit 2, never a panic.
func TestDialFailureRetriedThenExit2(t *testing.T) {
	var slept []time.Duration
	var out bytes.Buffer
	c := &remoteClient{base: "http://127.0.0.1:1", stdout: &out, retry: testPolicy(&slept)}
	code, err := c.run(remoteRequest{prog: "fig1", detector: "sp+", spec: "all"})
	if err == nil || code != exitError {
		t.Fatalf("unreachable daemon: code %d err %v", code, err)
	}
	if len(slept) != 3 {
		t.Fatalf("dial failure should back off between all 4 attempts, slept %v", slept)
	}
	if !strings.Contains(err.Error(), "giving up after 4 attempts") {
		t.Fatalf("error must name the attempts: %v", err)
	}
}

// End-to-end resumable path: a trace past the threshold is uploaded in
// chunks to the daemon's store, analyzed by reference, and the verdict
// is byte-identical to the plain body-upload verdict. A second run skips
// the upload entirely (the trace is content-addressed) and hits the
// verdict cache.
func TestClientResumableUploadPath(t *testing.T) {
	defer func(th, ch int64) { resumableThreshold = th; uploadChunk = ch }(resumableThreshold, uploadChunk)
	resumableThreshold = 1 // force every -replay through the store path
	uploadChunk = 512      // and split even a small trace into many chunks

	dir := t.TempDir()
	srv, err := service.Open(service.Config{Workers: 2, StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	path := filepath.Join(t.TempDir(), "run.trace")
	if code, out, errOut := exec(t, "-prog", "fig1", "-spec", "all", "-record", path); code != exitClean {
		t.Fatalf("record: exit %d\n%s%s", code, out, errOut)
	}
	code, localJSON, _ := exec(t, "-replay", path, "-detector", "sp+", "-json")
	if code != exitRaces {
		t.Fatalf("local replay: exit %d", code)
	}

	code, remoteJSON, errOut := exec(t, "-remote", ts.URL, "-replay", path, "-detector", "sp+", "-json")
	if code != exitRaces {
		t.Fatalf("remote replay via store: exit %d\n%s%s", code, remoteJSON, errOut)
	}
	if remoteJSON != localJSON {
		t.Fatalf("store-path verdict != local verdict:\nremote: %s\nlocal:  %s", remoteJSON, localJSON)
	}

	// The trace must now be durably stored under its digest.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dg, _ := trace.DigestOf(bytes.NewReader(raw))
	req, _ := http.NewRequest(http.MethodHead, ts.URL+"/traces/"+dg.String(), nil)
	hresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.Header.Get("Upload-Complete") != "true" {
		t.Fatal("trace not finalized in the store after the resumable upload")
	}

	// Second run: no re-upload, verdict served from cache.
	code, remote2, _ := exec(t, "-remote", ts.URL, "-replay", path, "-detector", "sp+", "-json")
	if code != exitRaces || remote2 != remoteJSON {
		t.Fatalf("second store-path run: exit %d\n%s", code, remote2)
	}
	if srv.CacheHits() == 0 {
		t.Fatal("second run must hit the verdict cache")
	}
}

// A pre-store daemon (404/501 on /traces/) silently falls back to the
// single-body upload — the flag surface does not change behavior.
func TestClientFallsBackWithoutStore(t *testing.T) {
	defer func(th int64) { resumableThreshold = th }(resumableThreshold)
	resumableThreshold = 1

	_, base := startDaemon(t, service.Config{Workers: 2}) // no StoreDir
	path := filepath.Join(t.TempDir(), "run.trace")
	if code, _, _ := exec(t, "-prog", "fig1", "-spec", "all", "-record", path); code != exitClean {
		t.Fatal("record failed")
	}
	code, out, errOut := exec(t, "-remote", base, "-replay", path, "-detector", "sp+", "-json")
	if code != exitRaces {
		t.Fatalf("fallback body upload: exit %d\n%s%s", code, out, errOut)
	}
	if !strings.HasPrefix(out, `{"schema":`) {
		t.Fatalf("fallback verdict malformed:\n%s", out)
	}
}
