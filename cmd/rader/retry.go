package main

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
)

// retryPolicy shapes the remote client's retries: jittered exponential
// backoff between attempts, with server-provided Retry-After hints (from
// a 429 shed or a 503 drain) taking precedence over the computed delay.
// The zero value means "use defaults"; tests inject sleep and jitter.
type retryPolicy struct {
	attempts int           // total tries including the first (default 4)
	base     time.Duration // first backoff step (default 200ms)
	cap      time.Duration // backoff ceiling (default 5s)
	sleep    func(time.Duration)
	jitter   func() float64 // uniform in [0,1)
}

func (p retryPolicy) withDefaults() retryPolicy {
	if p.attempts < 1 {
		p.attempts = 4
	}
	if p.base <= 0 {
		p.base = 200 * time.Millisecond
	}
	if p.cap <= 0 {
		p.cap = 5 * time.Second
	}
	if p.sleep == nil {
		p.sleep = time.Sleep
	}
	if p.jitter == nil {
		p.jitter = rand.Float64
	}
	return p
}

// remoteRetryAfterCap bounds how long a server-provided Retry-After
// hint can park the client. The daemon's own hints never exceed 30s
// (retryAfterHint caps there), so anything larger is a misconfigured or
// hostile intermediary — honoring an uncapped hint would stall a CLI
// invocation for hours on one bad header.
const remoteRetryAfterCap = 30 * time.Second

// backoff computes the delay before retry attempt i (0-based). A
// parseable Retry-After wins over the computed delay — the server knows
// its own queue better than any client-side curve — but is clamped to
// remoteRetryAfterCap; otherwise exponential with full jitter over the
// top half of the window, so a thundering herd of shed clients
// decorrelates.
func (p retryPolicy) backoff(i int, retryAfter string) time.Duration {
	if retryAfter != "" {
		if secs, err := strconv.Atoi(retryAfter); err == nil && secs >= 0 {
			d := time.Duration(secs) * time.Second
			if d > remoteRetryAfterCap {
				d = remoteRetryAfterCap
			}
			return d
		}
		if at, err := http.ParseTime(retryAfter); err == nil {
			d := time.Until(at)
			switch {
			case d <= 0:
				return 0
			case d > remoteRetryAfterCap:
				return remoteRetryAfterCap
			}
			return d
		}
	}
	d := p.base << uint(i)
	if d > p.cap || d <= 0 {
		d = p.cap
	}
	half := d / 2
	return half + time.Duration(p.jitter()*float64(half))
}

// requestNeverSent reports whether a transport error happened before any
// bytes of the request could have reached the server — a dial failure
// (connection refused, no route). Those are safe to retry for any
// method: the server never saw the request.
func requestNeverSent(err error) bool {
	var op *net.OpError
	return errors.As(err, &op) && op.Op == "dial"
}

// do performs one HTTP exchange against the daemon with retries. mkBody
// recreates the request body for each attempt (nil for bodyless
// requests). idempotent governs what is retryable:
//
//   - 429 (shed) and 503 (draining/restarting) retry for every method,
//     honoring Retry-After.
//   - Dial failures retry for every method — the request never left.
//   - Connection reset or unexpected EOF mid-exchange retries ONLY when
//     idempotent: for a non-idempotent request the server may have
//     already acted on it, and replaying it is not the client's call.
//
// The response body is fully read and returned; the caller never touches
// resp.Body. On exhausted retries the last error (or last 429/503) comes
// back wrapped with the attempt count — the caller maps it to exit
// code 2 like any other remote failure.
func (c *remoteClient) do(method, path string, mkBody func() (io.Reader, error), idempotent bool) (*http.Response, []byte, error) {
	p := c.retry.withDefaults()
	route, _, _ := strings.Cut(path, "?")
	rspan := c.tr.Start("http:" + method + " " + route)
	defer rspan.End()
	var lastErr error
	for attempt := 0; attempt < p.attempts; attempt++ {
		var backoff time.Duration
		if attempt > 0 {
			retryAfter := ""
			var rerr *retryableStatus
			if errors.As(lastErr, &rerr) {
				retryAfter = rerr.retryAfter
			}
			backoff = p.backoff(attempt-1, retryAfter)
			p.sleep(backoff)
		}
		// Each attempt is its own child span so a profile shows every
		// retry with the backoff that preceded it.
		aspan := c.tr.Start("attempt").Arg("attempt", attempt+1)
		if attempt > 0 {
			aspan.Arg("backoffMs", backoff.Milliseconds())
		}
		var body io.Reader
		if mkBody != nil {
			b, err := mkBody()
			if err != nil {
				aspan.Arg("error", err.Error()).End()
				return nil, nil, err
			}
			body = b
		}
		req, err := http.NewRequest(method, c.base+path, body)
		if err != nil {
			aspan.Arg("error", err.Error()).End()
			return nil, nil, err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/octet-stream")
		}
		// Every attempt carries the client's trace identity with a fresh
		// span ID — the daemon parents its server-side spans under it.
		if c.ctx.Valid() {
			req.Header.Set(obs.TraceparentHeader, c.ctx.Child().Traceparent())
		}
		resp, err := c.http().Do(req)
		if err != nil {
			aspan.Arg("error", err.Error()).End()
			if idempotent || requestNeverSent(err) {
				lastErr = fmt.Errorf("reaching raderd at %s: %v", c.base, err)
				continue
			}
			return nil, nil, fmt.Errorf("reaching raderd at %s: %v (not retried: the daemon may have received the request)", c.base, err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		aspan.Arg("status", resp.StatusCode).End()
		if err != nil {
			// The response was cut mid-body — the server DID act on the
			// request, so only idempotent exchanges may replay it.
			if idempotent {
				lastErr = fmt.Errorf("reading response from %s: %v", c.base, err)
				continue
			}
			return nil, nil, fmt.Errorf("reading response from %s: %v (not retried: request was not idempotent)", c.base, err)
		}
		if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
			lastErr = &retryableStatus{
				err:        remoteErr(resp, raw),
				retryAfter: resp.Header.Get("Retry-After"),
			}
			continue
		}
		return resp, raw, nil
	}
	return nil, nil, fmt.Errorf("giving up after %d attempts: %w", p.attempts, lastErr)
}

// retryableStatus carries a retryable HTTP status (429/503) between
// attempts along with the server's Retry-After hint.
type retryableStatus struct {
	err        error
	retryAfter string
}

func (e *retryableStatus) Error() string { return e.err.Error() }
func (e *retryableStatus) Unwrap() error { return e.err }
