// Command benchtab regenerates the paper's evaluation tables — Figure 7
// (overhead over no instrumentation) and Figure 8 (overhead over an empty
// tool) — on this host, printing the paper's numbers alongside.
//
// Usage:
//
//	benchtab                    # both tables, bench scale
//	benchtab -table 7 -trials 5
//	benchtab -table parallel    # depa critical-path scaling table
//	benchtab -apps fib,pbfs -scale small
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/apps"
	"repro/internal/tables"
)

// benchDoc is the machine-readable benchmark artifact -json emits
// (BENCH_PR3.json / BENCH_PR5.json / BENCH_PR7.json / BENCH_PR8.json in
// the repo): the replay-throughput comparison behind the single-pass
// engine, the naive-vs-prefix sweep comparison behind the steal-decision
// trie, the parallel-detection scaling table behind the depa detector,
// the static-elision shrink/parity table, plus the regenerated Figure
// 7/8 tables. Schema 2 added the sweep section; schema 3 added the
// parallel section; schema 4 added the elide section; schema 5 added the
// sweep section's work-stealing fields (stress family, critical-path
// speedup, steals/handoffs).
type benchDoc struct {
	Schema   int                   `json:"schema"`
	Scale    string                `json:"scale"`
	Trials   int                   `json:"trials"`
	Replay   *tables.ReplayBench   `json:"replay"`
	Sweep    *tables.SweepBench    `json:"sweep"`
	Parallel *tables.ParallelBench `json:"parallel"`
	Elide    *tables.ElideBench    `json:"elide"`
	Figure7  *tables.Table         `json:"figure7"`
	Figure8  *tables.Table         `json:"figure8"`
	Headline struct {
		Fig7PeerSet float64 `json:"fig7PeerSet"`
		Fig7SPPlus  float64 `json:"fig7SpPlus"`
		Fig8PeerSet float64 `json:"fig8PeerSet"`
		Fig8SPPlus  float64 `json:"fig8SpPlus"`
	} `json:"headline"`
}

func main() {
	var (
		table    = flag.String("table", "both", "which table: 7, 8, both, sweep, parallel, elide")
		trials   = flag.Int("trials", 3, "timing repetitions per cell (median)")
		scaleStr = flag.String("scale", "bench", "input scale: test, small, bench")
		appsStr  = flag.String("apps", "", "comma-separated benchmark subset (default all)")
		seed     = flag.Int64("seed", 0, "seed for the check-reductions schedule")
		quiet    = flag.Bool("q", false, "suppress per-cell progress")
		csv      = flag.Bool("csv", false, "emit CSV instead of the rendered tables")
		jsonPath = flag.String("json", "", "also write the machine-readable benchmark document (tables + replay throughput) to this path")
	)
	flag.Parse()

	opts := tables.Options{Trials: *trials, Seed: *seed}
	switch *scaleStr {
	case "test":
		opts.Scale = apps.Test
	case "small":
		opts.Scale = apps.Small
	case "bench":
		opts.Scale = apps.Bench
	default:
		fmt.Fprintf(os.Stderr, "benchtab: bad scale %q\n", *scaleStr)
		os.Exit(2)
	}
	if *appsStr != "" {
		opts.Apps = strings.Split(*appsStr, ",")
	}
	if !*quiet {
		opts.Progress = func(s string) { fmt.Fprintln(os.Stderr, s) }
	}

	// -table sweep on its own skips the (much slower) figure tables; the
	// -json document always carries every section.
	var sweep *tables.SweepBench
	if *jsonPath != "" || *table == "sweep" {
		if !*quiet {
			fmt.Fprintln(os.Stderr, "measuring sweep throughput...")
		}
		var err error
		sweep, err = tables.MeasureSweep(*trials)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
			os.Exit(1)
		}
	}
	if *table == "sweep" && *jsonPath == "" {
		fmt.Println("=== §7 coverage sweep: naive vs prefix-sharing ===")
		fmt.Print(sweep.Render())
		return
	}

	// -table parallel on its own likewise skips the figure tables; the
	// -json document always carries the parallel section too.
	var parallel *tables.ParallelBench
	if *jsonPath != "" || *table == "parallel" {
		popts := tables.ParallelOptions{Trials: *trials}
		if !*quiet {
			popts.Progress = func(s string) { fmt.Fprintln(os.Stderr, s) }
			fmt.Fprintln(os.Stderr, "measuring parallel-detection scaling...")
		}
		var err error
		parallel, err = tables.MeasureParallel(popts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
			os.Exit(1)
		}
	}
	if *table == "parallel" && *jsonPath == "" {
		fmt.Println("=== depa parallel detection: critical-path scaling ===")
		fmt.Print(parallel.Render())
		return
	}

	// -table elide on its own likewise skips the figure tables; the
	// -json document always carries the elide section too. The shrink
	// measurement always runs at small scale — shrink ratios are
	// scale-stable and the parity check replays every trace seven times.
	var elided *tables.ElideBench
	if *jsonPath != "" || *table == "elide" {
		if !*quiet {
			fmt.Fprintln(os.Stderr, "measuring static elision...")
		}
		var err error
		elided, err = tables.MeasureElide(*trials, apps.Small, "small")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
			os.Exit(1)
		}
	}
	if *table == "elide" && *jsonPath == "" {
		fmt.Println("=== static elision: trace shrink and verdict parity ===")
		fmt.Print(elided.Render())
		return
	}

	fig7, fig8, err := tables.Generate(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
	if *jsonPath != "" {
		if !*quiet {
			fmt.Fprintln(os.Stderr, "measuring replay throughput...")
		}
		rb, err := tables.MeasureReplay(*trials)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
			os.Exit(1)
		}
		doc := benchDoc{Schema: 5, Scale: *scaleStr, Trials: *trials, Replay: rb, Sweep: sweep, Parallel: parallel, Elide: elided, Figure7: fig7, Figure8: fig8}
		doc.Headline.Fig7PeerSet, doc.Headline.Fig7SPPlus = fig7.Headline(true)
		doc.Headline.Fig8PeerSet, doc.Headline.Fig8SPPlus = fig8.Headline(true)
		b, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(b, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (replay speedup %.2fx, sweep speedup %.2fx, sweep critical-path %.2fx@%d workers, parallel speedup %.2fx, elide shrink dedup %.2fx/ferret %.2fx, decode loop %.4f allocs/event)\n",
			*jsonPath, rb.Speedup, sweep.Speedup, sweep.CriticalPathSpeedup, sweep.Workers, parallel.BestSpeedup, elided.DedupShrink, elided.FerretShrink, rb.DecodeLoop.AllocsPerEvent)
	}
	if *table == "sweep" {
		fmt.Println("=== §7 coverage sweep: naive vs prefix-sharing ===")
		fmt.Print(sweep.Render())
		return
	}
	if *table == "parallel" {
		fmt.Println("=== depa parallel detection: critical-path scaling ===")
		fmt.Print(parallel.Render())
		return
	}
	if *csv {
		if *table == "7" || *table == "both" {
			fmt.Print(fig7.RenderCSV())
		}
		if *table == "8" || *table == "both" {
			fmt.Print(fig8.RenderCSV())
		}
		return
	}
	if *table == "7" || *table == "both" {
		fmt.Println("=== Figure 7 ===")
		fmt.Print(fig7.Render(tables.PaperFigure7))
		ps, sp := fig7.Headline(true)
		fmt.Printf("headline geomeans (excluding ferret, as the paper does): Peer-Set %.2f (paper %.2f), SP+ %.2f (paper %.2f)\n\n",
			ps, tables.PaperHeadline7[0], sp, tables.PaperHeadline7[1])
	}
	if *table == "8" || *table == "both" {
		fmt.Println("=== Figure 8 ===")
		fmt.Print(fig8.Render(tables.PaperFigure8))
		ps, sp := fig8.Headline(true)
		fmt.Printf("headline geomeans (excluding ferret, as the paper does): Peer-Set %.2f (paper %.2f), SP+ %.2f (paper %.2f)\n",
			ps, tables.PaperHeadline8[0], sp, tables.PaperHeadline8[1])
	}
}
