// Command stealgen profiles a program and emits the §7 steal-specification
// families that give SP+ complete coverage of all view-aware strands:
// Θ(M) specifications for update strands (Theorem 6) and Θ(K³) for reduce
// strands (Theorem 7).
//
// Usage:
//
//	stealgen -prog fib -scale test
//	stealgen -prog fig1 -list        # print every specification
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/apps"
	"repro/internal/cilk"
	"repro/internal/mem"
	"repro/internal/progs"
	"repro/internal/sched"
	"repro/internal/specgen"
)

func main() {
	var (
		progName = flag.String("prog", "fig1", "program: benchmark name or fig1")
		scaleStr = flag.String("scale", "test", "benchmark scale: test, small, bench")
		list     = flag.Bool("list", false, "print every specification, not just counts")
	)
	flag.Parse()

	var prog func(*cilk.Ctx)
	al := mem.NewAllocator()
	if *progName == "fig1" {
		prog = progs.Fig1(al, progs.Fig1Options{})
	} else {
		var sc apps.Scale
		switch *scaleStr {
		case "test":
			sc = apps.Test
		case "small":
			sc = apps.Small
		case "bench":
			sc = apps.Bench
		default:
			fmt.Fprintf(os.Stderr, "stealgen: bad scale %q\n", *scaleStr)
			os.Exit(2)
		}
		app, err := apps.ByName(*progName)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stealgen:", err)
			os.Exit(2)
		}
		prog = app.Build(al, sc).Prog
	}

	p := specgen.Measure(prog)
	fmt.Printf("profile of %s: max P-depth M=%d, max sync block K=%d, Cilk depth D=%d\n",
		*progName, p.MaxPDepth, p.MaxSyncBlock, p.CilkDepth)
	upd := specgen.UpdateSpecs(p)
	red := specgen.ReduceSpecs(p)
	fmt.Printf("update-strand family (Theorem 6): %d specifications\n", len(upd))
	fmt.Printf("reduce-strand family (Theorem 7): %d specifications (= K² + C(K,3) = %d)\n",
		len(red), specgen.DistinctReduceOps(p.MaxSyncBlock))
	if *list {
		for _, s := range upd {
			fmt.Println(" ", sched.Format(s))
		}
		for _, s := range red {
			fmt.Println(" ", sched.Format(s))
		}
	}
}
