package faults_test

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/cilk"
	"repro/internal/faults"
	"repro/internal/mem"
	"repro/internal/peerset"
	"repro/internal/progs"
	"repro/internal/rader"
	"repro/internal/spbags"
	"repro/internal/spplus"
	"repro/internal/streamerr"
	"repro/internal/trace"
)

// record runs prog under spec and returns the trace bytes plus the total
// event count a replay delivers.
func record(t *testing.T, prog func(*cilk.Ctx), spec cilk.StealSpec) ([]byte, int64) {
	t.Helper()
	var buf bytes.Buffer
	tw := trace.NewWriter(&buf)
	cilk.Run(prog, cilk.Config{Spec: spec, Hooks: tw})
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	n, err := trace.Replay(bytes.NewReader(buf.Bytes()), cilk.Empty{})
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), n
}

// eventIndexOf replays data into a spy and returns the 0-based hook-call
// index at which FrameEnter(label) is delivered.
func eventIndexOf(t *testing.T, data []byte, label string) int64 {
	t.Helper()
	idx := int64(-1)
	var n int64
	spy := &countingSpy{on: func(f *cilk.Frame) {
		if f.Label == label && idx < 0 {
			idx = n
		}
	}, n: &n}
	if _, err := trace.Replay(bytes.NewReader(data), spy); err != nil {
		t.Fatal(err)
	}
	if idx < 0 {
		t.Fatalf("no FrameEnter(%q) in trace", label)
	}
	return idx
}

// countingSpy counts every hook call via a faults.Injector wrapped around
// an Empty consumer, observing FrameEnter along the way.
type countingSpy struct {
	cilk.Empty
	on func(*cilk.Frame)
	n  *int64
}

func (s *countingSpy) ProgramStart(f *cilk.Frame)                                    { *s.n++ }
func (s *countingSpy) ProgramEnd(f *cilk.Frame)                                      { *s.n++ }
func (s *countingSpy) FrameEnter(f *cilk.Frame)                                      { s.on(f); *s.n++ }
func (s *countingSpy) FrameReturn(g, f *cilk.Frame)                                  { *s.n++ }
func (s *countingSpy) Sync(f *cilk.Frame)                                            { *s.n++ }
func (s *countingSpy) ContinuationStolen(f *cilk.Frame, v cilk.ViewID)               { *s.n++ }
func (s *countingSpy) ReduceStart(f *cilk.Frame, k, d cilk.ViewID)                   { *s.n++ }
func (s *countingSpy) ReduceEnd(f *cilk.Frame)                                       { *s.n++ }
func (s *countingSpy) ViewAwareBegin(f *cilk.Frame, op cilk.ViewOp, r *cilk.Reducer) { *s.n++ }
func (s *countingSpy) ViewAwareEnd(f *cilk.Frame, op cilk.ViewOp, r *cilk.Reducer)   { *s.n++ }
func (s *countingSpy) ReducerCreate(f *cilk.Frame, r *cilk.Reducer)                  { *s.n++ }
func (s *countingSpy) ReducerRead(f *cilk.Frame, r *cilk.Reducer)                    { *s.n++ }
func (s *countingSpy) Load(f *cilk.Frame, a mem.Addr)                                { *s.n++ }
func (s *countingSpy) Store(f *cilk.Frame, a mem.Addr)                               { *s.n++ }

// TestFaultVerdictTable pins the exact verdict each fault class draws from
// Peer-Set when aimed at the FrameEnter of a spawned child: structural
// faults are caught as ordering violations, truncation is harmless (the
// detector just never finalizes), and a panicking consumer surfaces as
// KindConsumer. The trace is a two-frame program, so every index is known.
func TestFaultVerdictTable(t *testing.T) {
	data, _ := record(t, func(c *cilk.Ctx) {
		c.Spawn("a", func(*cilk.Ctx) {})
		c.Sync()
	}, nil)
	at := eventIndexOf(t, data, "a")

	cases := []struct {
		fault faults.FaultKind
		want  streamerr.Kind // KindConsumer/KindOrder; -1 = harmless
		none  bool
	}{
		{fault: faults.Drop, want: streamerr.KindOrder},
		{fault: faults.Duplicate, want: streamerr.KindOrder},
		{fault: faults.CorruptKind, want: streamerr.KindOrder},
		{fault: faults.Truncate, none: true},
		{fault: faults.ConsumerPanic, want: streamerr.KindConsumer},
	}
	for _, tc := range cases {
		inj := faults.New(peerset.New(), faults.Plan{Kind: tc.fault, At: at})
		_, err := trace.Replay(bytes.NewReader(data), inj)
		if !inj.Injected() {
			t.Errorf("%v@%d: fault did not fire", tc.fault, at)
			continue
		}
		if tc.none {
			if err != nil {
				t.Errorf("%v@%d: want harmless, got %v", tc.fault, at, err)
			}
			continue
		}
		var se *streamerr.Error
		if !errors.As(err, &se) {
			t.Errorf("%v@%d: want *streamerr.Error, got %v", tc.fault, at, err)
			continue
		}
		if se.Kind != tc.want {
			t.Errorf("%v@%d: kind = %v, want %v (err: %v)", tc.fault, at, se.Kind, tc.want, se)
		}
		if se.Event < 0 {
			t.Errorf("%v@%d: error carries no event index: %v", tc.fault, at, se)
		}
	}
}

// TestEveryFaultEveryDetector is the pipeline's robustness acceptance
// property: every fault class, injected at seeded stream positions into
// each of the three detectors during replay of a reducer-heavy trace, must
// yield either a nil error (provably harmless) or a structured
// *streamerr.Error — never an unrecovered panic, never a crash.
func TestEveryFaultEveryDetector(t *testing.T) {
	al := mem.NewAllocator()
	data, total := record(t, progs.Fig1(al, progs.Fig1Options{}), cilk.StealAll{})

	detectors := []struct {
		name string
		mk   func() cilk.Hooks
	}{
		{"peer-set", func() cilk.Hooks { return peerset.New() }},
		{"sp-bags", func() cilk.Hooks { return spbags.New() }},
		{"sp+", func() cilk.Hooks { return spplus.New() }},
	}
	plans := faults.Plans(1, 10*int(faults.NumKinds), total)
	for _, det := range detectors {
		for _, plan := range plans {
			inj := faults.New(det.mk(), plan)
			_, err := trace.Replay(bytes.NewReader(data), inj)
			if err == nil {
				continue // provably harmless: clean replay despite the fault
			}
			var se *streamerr.Error
			if !errors.As(err, &se) {
				t.Fatalf("%s under %v: untyped error %v", det.name, plan, err)
			}
			if plan.Kind == faults.ConsumerPanic && inj.Injected() && se.Kind != streamerr.KindConsumer {
				t.Fatalf("%s under %v: consumer panic surfaced as %v, want KindConsumer", det.name, plan, se)
			}
		}
	}
}

// TestSweepSurvivesPoisonedSpec drives the acceptance requirement on the
// §7 sweep: with faults injected into ONE specification's run via the Wrap
// seam, the sweep reports that unit in Failures and still returns results
// for every other specification — the process neither crashes nor discards
// the sweep.
func TestSweepSurvivesPoisonedSpec(t *testing.T) {
	factory := func() func(*cilk.Ctx) {
		return progs.Fig1(mem.NewAllocator(), progs.Fig1Options{DeepCopy: true})
	}
	// Unpoisoned baseline: fig1-fixed is race-free and the sweep completes.
	base := rader.Sweep(factory, rader.SweepOptions{})
	if !base.Clean() || !base.Complete() || base.SpecsRun < 2 {
		t.Fatalf("baseline sweep: clean=%v complete=%v specs=%d",
			base.Clean(), base.Complete(), base.SpecsRun)
	}

	// Every fault class is aimed at event 1 (the root FrameEnter) of one
	// specification's run. Structural faults there (a dropped, duplicated
	// or kind-corrupted root enter) and a crashing consumer must surface
	// as exactly one typed failure; a fault the detector provably absorbs
	// (truncation just stops the stream) must leave the sweep complete.
	// Either way every other specification still reports.
	mustFail := map[faults.FaultKind]bool{
		faults.Drop:          true,
		faults.CorruptKind:   true,
		faults.ConsumerPanic: true,
	}
	for kind := faults.FaultKind(0); kind < faults.NumKinds; kind++ {
		cr := rader.Sweep(factory, rader.SweepOptions{
			Wrap: func(index int, spec cilk.StealSpec, hooks cilk.Hooks) cilk.Hooks {
				if index != 1 {
					return hooks
				}
				return faults.New(hooks, faults.Plan{Kind: kind, At: 1})
			},
		})
		if cr.ViewReads == nil {
			t.Fatalf("%v: ViewReads lost", kind)
		}
		if len(cr.Failures) == 0 {
			if mustFail[kind] {
				t.Fatalf("%v: structural fault went undetected", kind)
			}
			if cr.SpecsRun != base.SpecsRun || !cr.Complete() {
				t.Fatalf("%v: harmless fault lost specs: ran %d of %d", kind, cr.SpecsRun, base.SpecsRun)
			}
			continue
		}
		if len(cr.Failures) != 1 {
			t.Fatalf("%v: failures = %v, want exactly 1", kind, cr.Failures)
		}
		var se *streamerr.Error
		if !errors.As(cr.Failures[0].Err, &se) {
			t.Fatalf("%v: failure is untyped: %v", kind, cr.Failures[0].Err)
		}
		if kind == faults.ConsumerPanic && se.Kind != streamerr.KindConsumer {
			t.Fatalf("%v: consumer panic surfaced as %v", kind, se)
		}
		if cr.SpecsRun != base.SpecsRun-1 {
			t.Fatalf("%v: specs run = %d, want %d (all but the poisoned one)",
				kind, cr.SpecsRun, base.SpecsRun-1)
		}
		if cr.Complete() {
			t.Fatalf("%v: sweep with a failure reports Complete", kind)
		}
	}
}

// TestPlansDeterministic pins that plan generation never consults global
// state: equal seeds yield equal plans, distinct seeds vary the indices.
func TestPlansDeterministic(t *testing.T) {
	a := faults.Plans(7, 20, 100)
	b := faults.Plans(7, 20, 100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("plan %d differs across identical calls: %v vs %v", i, a[i], b[i])
		}
	}
	if len(a) != 20 {
		t.Fatalf("got %d plans, want 20", len(a))
	}
	kinds := map[faults.FaultKind]bool{}
	for _, p := range a {
		kinds[p.Kind] = true
		if p.At < 0 || p.At >= 100 {
			t.Fatalf("plan %v out of range", p)
		}
	}
	if len(kinds) != int(faults.NumKinds) {
		t.Fatalf("plans cover %d kinds, want %d", len(kinds), faults.NumKinds)
	}
}
