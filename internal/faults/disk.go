package faults

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// ErrCrash is the sentinel a disk injector returns to simulate the
// process dying at an I/O boundary: the store layer aborts the operation
// immediately — no cleanup, no compensating writes — leaving on disk
// exactly what a SIGKILL at that instant would leave. Recovery code must
// treat the resulting state (orphan temp files, torn journals,
// unrenamed partials) as expected input, never as corruption to crash on.
var ErrCrash = errors.New("faults: simulated crash")

// ErrDisk is the generic injected I/O failure for non-crash plans: the
// operation fails, the process keeps running, and the caller must surface
// a structured error instead of wedging or corrupting state.
var ErrDisk = errors.New("faults: injected disk error")

// Disk injects one failure into a stream of store I/O operations. It
// implements the injection seam the disk-backed store exposes
// (store.Options.Inject): the store calls Check before every durable
// side effect — temp-file create/write/sync, rename, directory sync,
// journal append — naming the operation and path, and aborts if Check
// returns an error.
//
// FailAt counts matching operations from zero; the FailAt-th one returns
// Err (ErrCrash by default). Like the event-level Injector, the zero
// randomness rule applies: equal plans yield equal failures, so every
// chaos finding is replayable.
type Disk struct {
	// FailAt is the 0-based index (among matching ops) to fail.
	FailAt int64
	// Op restricts the fault to operations with this name; empty matches
	// every operation.
	Op string
	// Err is what the failing operation returns (default ErrCrash).
	Err error

	n        atomic.Int64
	injected atomic.Bool
}

// Check implements the store's injection seam. It is safe for concurrent
// use; exactly one matching operation fails.
func (d *Disk) Check(op, path string) error {
	if d == nil {
		return nil
	}
	if d.Op != "" && d.Op != op {
		return nil
	}
	if d.n.Add(1)-1 != d.FailAt {
		return nil
	}
	d.injected.Store(true)
	err := d.Err
	if err == nil {
		err = ErrCrash
	}
	return fmt.Errorf("%w (op %s on %s)", err, op, path)
}

// Ops reports how many matching operations the injector has observed —
// run a counting pass (FailAt < 0 never matches an index) to enumerate a
// workload's injection points, then iterate FailAt over [0, Ops).
func (d *Disk) Ops() int64 { return d.n.Load() }

// Injected reports whether the planned fault actually fired.
func (d *Disk) Injected() bool { return d.injected.Load() }
