package faults_test

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"repro/internal/cilk"
	"repro/internal/faults"
	"repro/internal/mem"
	"repro/internal/progs"
	"repro/internal/spplus"
	"repro/internal/streamerr"
	"repro/internal/trace"
)

var fuzzTrace struct {
	once sync.Once
	data []byte
}

func fuzzTraceBytes() []byte {
	fuzzTrace.once.Do(func() {
		var buf bytes.Buffer
		tw := trace.NewWriter(&buf)
		al := mem.NewAllocator()
		cilk.Run(progs.Fig1(al, progs.Fig1Options{}), cilk.Config{Spec: cilk.StealAll{}, Hooks: tw})
		if err := tw.Close(); err != nil {
			panic(err)
		}
		fuzzTrace.data = buf.Bytes()
	})
	return fuzzTrace.data
}

// FuzzFaultPlan: an arbitrary (kind, index) plan injected into SP+ during
// replay of a fixed reducer-heavy trace must yield a nil error or a typed
// *streamerr.Error — the process must never crash, whatever the plan.
func FuzzFaultPlan(f *testing.F) {
	f.Add(byte(0), int64(0))
	f.Add(byte(1), int64(5))
	f.Add(byte(2), int64(17))
	f.Add(byte(3), int64(100))
	f.Add(byte(4), int64(3))
	f.Add(byte(200), int64(-9))
	f.Fuzz(func(t *testing.T, kindByte byte, at int64) {
		plan := faults.Plan{
			Kind: faults.FaultKind(int(kindByte) % int(faults.NumKinds)),
			At:   at,
		}
		inj := faults.New(spplus.New(), plan)
		_, err := trace.Replay(bytes.NewReader(fuzzTraceBytes()), inj)
		if err == nil {
			return
		}
		var se *streamerr.Error
		if !errors.As(err, &se) {
			t.Fatalf("plan %v: untyped error %v", plan, err)
		}
	})
}
