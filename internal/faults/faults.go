// Package faults is the fault-injection layer of the analysis pipeline: a
// cilk.Hooks middleware that deterministically perturbs the event stream
// on its way to a downstream consumer (a detector, the dag recorder, a
// trace writer). It exists to property-test the pipeline's robustness
// contract: every injected fault must either surface as a structured
// *streamerr.Error or be provably harmless — never a process crash.
//
// Faults are event-level (a dropped FrameEnter, a duplicated steal, an
// event delivered as the wrong kind, a stream cut short, a consumer that
// panics mid-stream), complementing the byte-level corruption that
// FuzzReplay exercises in internal/trace. Injection is driven by a Plan —
// a (fault kind, event index) pair — so every failure is replayable; the
// seeded Plans generator derives plans without consulting the wall clock
// or global randomness.
package faults

import (
	"fmt"
	"math/rand"

	"repro/internal/cilk"
	"repro/internal/mem"
	"repro/internal/streamerr"
)

// FaultKind enumerates the injectable event-level fault classes.
type FaultKind int

const (
	// Drop swallows one event: the consumer never sees it.
	Drop FaultKind = iota
	// Duplicate delivers one event twice back to back.
	Duplicate
	// CorruptKind delivers a different event than the one that occurred,
	// reusing the original event's frame — the event-level analogue of a
	// corrupted kind byte.
	CorruptKind
	// Truncate stops delivering events from the chosen index onward.
	Truncate
	// ConsumerPanic panics with a non-StreamError value when the chosen
	// event is delivered, simulating a crashing downstream consumer.
	ConsumerPanic
	// NumKinds is the number of fault classes, for plan generators.
	NumKinds
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case Drop:
		return "drop"
	case Duplicate:
		return "duplicate"
	case CorruptKind:
		return "corrupt-kind"
	case Truncate:
		return "truncate"
	case ConsumerPanic:
		return "consumer-panic"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// Plan is one deterministic injection: apply Kind to the event with
// 0-based index At. A plan whose At lies beyond the end of the stream
// injects nothing (Injector.Injected reports false).
type Plan struct {
	Kind FaultKind
	At   int64
}

// String implements fmt.Stringer.
func (p Plan) String() string { return fmt.Sprintf("%v@%d", p.Kind, p.At) }

// Plans derives n deterministic plans covering all fault classes round-
// robin, with event indices drawn from a seeded generator over [0, total).
// No wall-clock or global randomness is involved: equal arguments yield
// equal plans.
func Plans(seed int64, n int, total int64) []Plan {
	if total < 1 {
		total = 1
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]Plan, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, Plan{
			Kind: FaultKind(i % int(NumKinds)),
			At:   rng.Int63n(total),
		})
	}
	return out
}

// Injector is the cilk.Hooks middleware applying one Plan to the stream
// flowing into a downstream consumer.
type Injector struct {
	h    cilk.Hooks
	plan Plan

	n         int64
	truncated bool
	injected  bool
}

// New wraps downstream with the fault described by plan.
func New(downstream cilk.Hooks, plan Plan) *Injector {
	return &Injector{h: downstream, plan: plan}
}

// Events reports how many events the injector has observed.
func (in *Injector) Events() int64 { return in.n }

// Injected reports whether the planned fault actually fired (false when
// the plan's event index lies beyond the end of the stream).
func (in *Injector) Injected() bool { return in.injected }

// step counts one observed event and applies the plan if this is the
// chosen index. fire delivers the original event; frame is the event's
// frame (nil for none), used by CorruptKind to fabricate a different
// event about the same frame. wasSync marks events that already are syncs
// so the corruption always changes the kind.
func (in *Injector) step(frame *cilk.Frame, wasSync bool, fire func(cilk.Hooks)) {
	i := in.n
	in.n++
	if in.truncated {
		return
	}
	if i != in.plan.At {
		fire(in.h)
		return
	}
	in.injected = true
	switch in.plan.Kind {
	case Drop:
		// Swallowed.
	case Duplicate:
		fire(in.h)
		fire(in.h)
	case CorruptKind:
		if frame == nil {
			// No frame to fabricate an event about; the closest kind
			// corruption is losing the event entirely.
			return
		}
		if wasSync {
			in.h.ReduceEnd(frame)
		} else {
			in.h.Sync(frame)
		}
	case Truncate:
		in.truncated = true
	case ConsumerPanic:
		// Deliberately NOT a *streamerr.Error: the recovery points must
		// wrap arbitrary consumer panics into KindConsumer themselves.
		panic(fmt.Sprintf("faults: injected consumer panic at event %d", i))
	default:
		panic(streamerr.Errorf("faults", streamerr.KindMalformed,
			"unknown fault kind %d", in.plan.Kind))
	}
}

// ProgramStart implements cilk.Hooks.
func (in *Injector) ProgramStart(f *cilk.Frame) {
	in.step(f, false, func(h cilk.Hooks) { h.ProgramStart(f) })
}

// ProgramEnd implements cilk.Hooks.
func (in *Injector) ProgramEnd(f *cilk.Frame) {
	in.step(f, false, func(h cilk.Hooks) { h.ProgramEnd(f) })
}

// FrameEnter implements cilk.Hooks.
func (in *Injector) FrameEnter(f *cilk.Frame) {
	in.step(f, false, func(h cilk.Hooks) { h.FrameEnter(f) })
}

// FrameReturn implements cilk.Hooks.
func (in *Injector) FrameReturn(g, f *cilk.Frame) {
	in.step(g, false, func(h cilk.Hooks) { h.FrameReturn(g, f) })
}

// Sync implements cilk.Hooks.
func (in *Injector) Sync(f *cilk.Frame) {
	in.step(f, true, func(h cilk.Hooks) { h.Sync(f) })
}

// ContinuationStolen implements cilk.Hooks.
func (in *Injector) ContinuationStolen(f *cilk.Frame, vid cilk.ViewID) {
	in.step(f, false, func(h cilk.Hooks) { h.ContinuationStolen(f, vid) })
}

// ReduceStart implements cilk.Hooks.
func (in *Injector) ReduceStart(f *cilk.Frame, keep, die cilk.ViewID) {
	in.step(f, false, func(h cilk.Hooks) { h.ReduceStart(f, keep, die) })
}

// ReduceEnd implements cilk.Hooks.
func (in *Injector) ReduceEnd(f *cilk.Frame) {
	in.step(f, false, func(h cilk.Hooks) { h.ReduceEnd(f) })
}

// ViewAwareBegin implements cilk.Hooks.
func (in *Injector) ViewAwareBegin(f *cilk.Frame, op cilk.ViewOp, r *cilk.Reducer) {
	in.step(f, false, func(h cilk.Hooks) { h.ViewAwareBegin(f, op, r) })
}

// ViewAwareEnd implements cilk.Hooks.
func (in *Injector) ViewAwareEnd(f *cilk.Frame, op cilk.ViewOp, r *cilk.Reducer) {
	in.step(f, false, func(h cilk.Hooks) { h.ViewAwareEnd(f, op, r) })
}

// ReducerCreate implements cilk.Hooks.
func (in *Injector) ReducerCreate(f *cilk.Frame, r *cilk.Reducer) {
	in.step(f, false, func(h cilk.Hooks) { h.ReducerCreate(f, r) })
}

// ReducerRead implements cilk.Hooks.
func (in *Injector) ReducerRead(f *cilk.Frame, r *cilk.Reducer) {
	in.step(f, false, func(h cilk.Hooks) { h.ReducerRead(f, r) })
}

// Load implements cilk.Hooks.
func (in *Injector) Load(f *cilk.Frame, a mem.Addr) {
	in.step(f, false, func(h cilk.Hooks) { h.Load(f, a) })
}

// Store implements cilk.Hooks.
func (in *Injector) Store(f *cilk.Frame, a mem.Addr) {
	in.step(f, false, func(h cilk.Hooks) { h.Store(f, a) })
}

var _ cilk.Hooks = (*Injector)(nil)
