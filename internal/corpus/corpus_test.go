package corpus

import (
	"testing"

	"repro/internal/cilk"
	"repro/internal/mem"
	"repro/internal/rader"
)

// TestCorpusMatrix sweeps every catalogued program through every detector
// configuration and checks the expected verdicts.
func TestCorpusMatrix(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			al := mem.NewAllocator()
			prog := e.Build(al)

			// Peer-Set (schedule-independent; check two schedules anyway).
			for _, spec := range []cilk.StealSpec{nil, cilk.StealAll{}} {
				out := rader.MustRun(prog, rader.Config{Detector: rader.PeerSet, Spec: spec})
				if got := !out.Report.Empty(); got != e.ViewRead {
					t.Errorf("peer-set (spec %v): race=%v, want %v\n%s",
						spec, got, e.ViewRead, out.Report.Summary())
				}
			}

			// SP+ under the two canonical schedules.
			serial := rader.MustRun(prog, rader.Config{Detector: rader.SPPlus})
			if got := !serial.Report.Empty(); got != e.DetSerial {
				t.Errorf("sp+ serial: race=%v, want %v\n%s", got, e.DetSerial, serial.Report.Summary())
			}
			all := rader.MustRun(prog, rader.Config{Detector: rader.SPPlus, Spec: cilk.StealAll{}})
			if got := !all.Report.Empty(); got != e.DetStealAll {
				t.Errorf("sp+ steal-all: race=%v, want %v\n%s", got, e.DetStealAll, all.Report.Summary())
			}

			// The §7 sweep.
			cr := rader.Coverage(prog)
			if got := len(cr.Races) > 0; got != e.DetSweep {
				t.Errorf("sweep: race=%v, want %v (%d specs)", got, e.DetSweep, cr.SpecsRun)
			}
			if got := !cr.ViewReads.Empty(); got != e.ViewRead {
				t.Errorf("sweep view-read: %v, want %v", got, e.ViewRead)
			}

			// A finding implies a replayable schedule that reproduces it.
			if e.DetStealAll {
				replayed := rader.MustRun(prog, rader.Config{Detector: rader.SPPlus, Spec: cilk.StealAll{}})
				if replayed.Report.Empty() {
					t.Error("steal-all verdict not reproducible")
				}
			}

			// Reducer-oblivious baselines agree with SP+ on pure programs.
			if e.Oblivious {
				for _, det := range []rader.DetectorName{rader.SPBags, rader.OffsetSpan, rader.EnglishHebrew} {
					out := rader.MustRun(prog, rader.Config{Detector: det})
					if got := !out.Report.Empty(); got != e.DetSerial {
						t.Errorf("%s: race=%v, want %v", det, got, e.DetSerial)
					}
				}
			}
		})
	}
}

// TestCorpusWellFormed checks catalogue hygiene: names unique, all
// programs rerunnable, and every entry's flags internally consistent
// (steal-all races must be sweep-visible; serial races imply steal-all).
func TestCorpusWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.Name] {
			t.Errorf("duplicate corpus name %q", e.Name)
		}
		seen[e.Name] = true
		if e.Desc == "" {
			t.Errorf("%s: missing description", e.Name)
		}
		if e.DetSerial && !e.DetStealAll {
			t.Errorf("%s: a serial-schedule race exists under every schedule", e.Name)
		}
		if e.DetStealAll && !e.DetSweep {
			t.Errorf("%s: the sweep includes rich schedules; steal-all races must be found", e.Name)
		}
		// Rerunnable: run twice without error.
		al := mem.NewAllocator()
		prog := e.Build(al)
		cilk.Run(prog, cilk.Config{})
		cilk.Run(prog, cilk.Config{Spec: cilk.StealAll{}})
	}
}

// TestCilkScreenStyleMiss pins §2's motivating claim: "A tool such as Cilk
// Screen will not catch this particular race, because the determinacy race
// involves a view-aware instruction executed in a Reduce operation." A
// Cilk-Screen-style tool analyses the serial execution with no steal
// simulation, so a racy write that exists ONLY inside a Reduce operation —
// the corpus's reduce-strand-race-hidden program — never executes under
// its analysis, whichever classic algorithm (SP-bags or either §9 labeling
// scheme) it embodies. SP+ plus the §7 specification family finds it.
func TestCilkScreenStyleMiss(t *testing.T) {
	var entry Entry
	for _, e := range All() {
		if e.Name == "reduce-strand-race-hidden" {
			entry = e
		}
	}
	al := mem.NewAllocator()
	prog := entry.Build(al)

	// The Cilk-Screen stand-ins: classic detectors on the serial schedule.
	for _, det := range []rader.DetectorName{rader.SPBags, rader.OffsetSpan, rader.EnglishHebrew} {
		if out := rader.MustRun(prog, rader.Config{Detector: det}); !out.Report.Empty() {
			t.Fatalf("%s on the serial schedule: the racy write never executes, yet:\n%s",
				det, out.Report.Summary())
		}
	}
	// SP+ with the generated specification family finds it.
	cr := rader.Coverage(prog)
	if len(cr.Races) == 0 {
		t.Fatal("the §7 sweep must find the hidden reduce-strand race")
	}
}
