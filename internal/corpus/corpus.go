// Package corpus is a catalogue of small named Cilk programs with known
// race verdicts — the executable semantics documentation of this
// repository. Each entry states, for every detector configuration, whether
// a race must be reported; the corpus test sweeps the whole matrix, so any
// semantic drift in the executor or a detector trips a named, readable
// failure. The entries cover the bug taxonomy of the paper: plain
// determinacy races, view-read races of both §3 flavours, races hiding in
// Update/Create-Identity/Reduce operations that only some schedules
// elicit, and the correct patterns that must stay silent.
package corpus

import (
	"repro/internal/cilk"
	"repro/internal/mem"
	"repro/internal/progs"
	"repro/internal/reducer"
)

// Entry is one catalogued program.
type Entry struct {
	Name string
	Desc string
	// Build constructs a fresh rerunnable instance.
	Build func(al *mem.Allocator) func(*cilk.Ctx)

	// Expected verdicts.
	ViewRead    bool // Peer-Set reports a view-read race
	DetSerial   bool // SP+ reports a determinacy race under NoSteals
	DetStealAll bool // SP+ reports one under StealAll
	DetSweep    bool // the §7 sweep finds a determinacy race
	// Oblivious marks programs with no reducer machinery, on which the
	// three reducer-oblivious baselines (SP-bags, offset-span,
	// English-Hebrew) must agree with SP+ exactly.
	Oblivious bool
}

// All returns the catalogue.
func All() []Entry {
	return []Entry{
		{
			Name: "clean-reducer-sum",
			Desc: "parallel updates through an opadd reducer, read after sync",
			Build: func(al *mem.Allocator) func(*cilk.Ctx) {
				return func(c *cilk.Ctx) {
					h := reducer.New[int](c, "sum", reducer.OpAdd[int](), 0)
					c.ParForGrain("w", 24, 2, func(cc *cilk.Ctx, i int) {
						h.Update(cc, func(_ *cilk.Ctx, v int) int { return v + i })
					})
					_ = h.Value(c)
				}
			},
		},
		{
			Name: "view-read-early-get",
			Desc: "get_value before the sync (§3)",
			Build: func(al *mem.Allocator) func(*cilk.Ctx) {
				return func(c *cilk.Ctx) {
					h := reducer.New[int](c, "sum", reducer.OpAdd[int](), 0)
					c.Spawn("u", func(cc *cilk.Ctx) {
						h.Update(cc, func(_ *cilk.Ctx, v int) int { return v + 1 })
					})
					_ = h.Value(c) // before sync
					c.Sync()
				}
			},
			ViewRead: true,
		},
		{
			Name: "view-read-set-after-spawn",
			Desc: "set_value after a spawn (§3's benign-but-still-a-race variant)",
			Build: func(al *mem.Allocator) func(*cilk.Ctx) {
				return func(c *cilk.Ctx) {
					h := reducer.New[int](c, "sum", reducer.OpAdd[int](), 0)
					c.Spawn("u", func(*cilk.Ctx) {})
					h.Set(c, 42)
					c.Sync()
					_ = h.Value(c)
				}
			},
			ViewRead: true,
		},
		{
			Name: "oblivious-write-read",
			Desc: "spawned write races the continuation's read",
			Build: func(al *mem.Allocator) func(*cilk.Ctx) {
				x := al.Alloc("x", 1)
				return func(c *cilk.Ctx) {
					c.Spawn("w", func(cc *cilk.Ctx) { cc.Store(x.At(0)) })
					c.Load(x.At(0))
					c.Sync()
				}
			},
			DetSerial: true, DetStealAll: true, DetSweep: true, Oblivious: true,
		},
		{
			Name: "oblivious-write-write-siblings",
			Desc: "two spawned siblings write one location",
			Build: func(al *mem.Allocator) func(*cilk.Ctx) {
				x := al.Alloc("x", 1)
				return func(c *cilk.Ctx) {
					c.Spawn("w1", func(cc *cilk.Ctx) { cc.Store(x.At(0)) })
					c.Spawn("w2", func(cc *cilk.Ctx) { cc.Store(x.At(0)) })
					c.Sync()
				}
			},
			DetSerial: true, DetStealAll: true, DetSweep: true, Oblivious: true,
		},
		{
			Name: "oblivious-sync-separated",
			Desc: "sync between conflicting accesses",
			Build: func(al *mem.Allocator) func(*cilk.Ctx) {
				x := al.Alloc("x", 1)
				return func(c *cilk.Ctx) {
					c.Spawn("w", func(cc *cilk.Ctx) { cc.Store(x.At(0)) })
					c.Sync()
					c.Load(x.At(0))
				}
			},
			Oblivious: true,
		},
		{
			Name: "oblivious-call-serial",
			Desc: "called child is serial with the caller",
			Build: func(al *mem.Allocator) func(*cilk.Ctx) {
				x := al.Alloc("x", 1)
				return func(c *cilk.Ctx) {
					c.Call("f", func(cc *cilk.Ctx) { cc.Store(x.At(0)) })
					c.Load(x.At(0))
				}
			},
			Oblivious: true,
		},
		{
			Name: "update-write-vs-oblivious-read",
			Desc: "a reducer Update writes a location a parallel strand reads; same view serially, parallel views once stolen",
			Build: func(al *mem.Allocator) func(*cilk.Ctx) {
				x := al.Alloc("x", 1)
				return func(c *cilk.Ctx) {
					h := reducer.New[int](c, "h", reducer.OpAdd[int](), 0)
					c.Spawn("r", func(cc *cilk.Ctx) { cc.Load(x.At(0)) })
					h.Update(c, func(cc *cilk.Ctx, v int) int {
						cc.Store(x.At(0))
						return v + 1
					})
					c.Sync()
				}
			},
			DetStealAll: true, DetSweep: true,
		},
		{
			Name: "figure1-shallow-copy",
			Desc: "the paper's Figure 1: the racing write hides in the list reducer's view operations",
			Build: func(al *mem.Allocator) func(*cilk.Ctx) {
				return progs.Fig1(al, progs.Fig1Options{})
			},
			DetStealAll: true, DetSweep: true,
		},
		{
			Name: "figure1-deep-copy",
			Desc: "the fix: a deep copy separates the memory",
			Build: func(al *mem.Allocator) func(*cilk.Ctx) {
				return progs.Fig1(al, progs.Fig1Options{DeepCopy: true})
			},
		},
		{
			Name: "reduce-strand-race-hidden",
			Desc: "the racy write runs only in the Reduce combining two particular views; steal-all's reduce tree happens to elicit it, and the sweep must",
			Build: func(al *mem.Allocator) func(*cilk.Ctx) {
				x := al.Alloc("x", 1)
				return func(c *cilk.Ctx) {
					m := cilk.MonoidFuncs(
						func(*cilk.Ctx) any { return []string(nil) },
						func(cc *cilk.Ctx, l, r any) any {
							lt, rt := l.([]string), r.([]string)
							if len(lt) > 0 && lt[0] == "s2" && len(rt) > 0 && rt[0] == "s3" {
								cc.Store(x.At(0))
							}
							return append(lt, rt...)
						},
					)
					h := c.NewReducerQuiet("tags", m, []string{"s0"})
					for i := 1; i <= 5; i++ {
						tag := []string{"s1", "s2", "s3", "s4", "s5"}[i-1]
						c.Spawn("seg", func(cc *cilk.Ctx) {
							if tag == "s1" {
								cc.Load(x.At(0))
							}
						})
						c.Update(h, func(_ *cilk.Ctx, v any) any { return append(v.([]string), tag) })
					}
					c.Sync()
				}
			},
			DetStealAll: true, DetSweep: true,
		},
		{
			Name: "create-identity-race",
			Desc: "the identity constructor writes a location a parallel strand reads",
			Build: func(al *mem.Allocator) func(*cilk.Ctx) {
				x := al.Alloc("x", 1)
				return func(c *cilk.Ctx) {
					m := cilk.MonoidFuncs(
						func(cc *cilk.Ctx) any { cc.Store(x.At(0)); return 0 },
						func(_ *cilk.Ctx, l, r any) any { return l.(int) + r.(int) },
					)
					h := c.NewReducerQuiet("h", m, 0)
					c.Spawn("r", func(cc *cilk.Ctx) { cc.Load(x.At(0)) })
					c.Update(h, func(_ *cilk.Ctx, v any) any { return v.(int) + 1 })
					c.Sync()
				}
			},
			DetStealAll: true, DetSweep: true,
		},
		{
			Name: "holder-private-scratch",
			Desc: "a holder gives each view context private workspace; no races anywhere",
			Build: func(al *mem.Allocator) func(*cilk.Ctx) {
				return func(c *cilk.Ctx) {
					h := reducer.New[[]byte](c, "scratch",
						reducer.Holder[[]byte](func() []byte { return make([]byte, 4) }),
						make([]byte, 4))
					c.ParForGrain("w", 12, 1, func(cc *cilk.Ctx, i int) {
						h.Update(cc, func(_ *cilk.Ctx, buf []byte) []byte {
							buf[0] = byte(i)
							return buf
						})
					})
				}
			},
		},
		{
			Name: "ostream-clean",
			Desc: "parallel writers through an ostream reducer; output deterministic, no races",
			Build: func(al *mem.Allocator) func(*cilk.Ctx) {
				return func(c *cilk.Ctx) {
					h := reducer.New[*reducer.Ostream](c, "out", reducer.OstreamMonoid(), &reducer.Ostream{})
					c.ParForGrain("emit", 10, 1, func(cc *cilk.Ctx, i int) {
						h.Update(cc, func(_ *cilk.Ctx, o *reducer.Ostream) *reducer.Ostream {
							o.Printf("%d;", i)
							return o
						})
					})
					_ = h.Value(c)
				}
			},
		},
		{
			Name: "bag-clean",
			Desc: "pennant-bag inserts in parallel; bag unions at reduces, no races",
			Build: func(al *mem.Allocator) func(*cilk.Ctx) {
				return func(c *cilk.Ctx) {
					h := reducer.New[*reducer.Bag[int]](c, "bag", reducer.BagMonoid[int](), reducer.NewBag[int]())
					c.ParForGrain("ins", 20, 2, func(cc *cilk.Ctx, i int) {
						h.Update(cc, func(_ *cilk.Ctx, b *reducer.Bag[int]) *reducer.Bag[int] {
							b.Insert(i)
							return b
						})
					})
					_ = h.Value(c)
				}
			},
		},
		{
			Name: "linked-list-clean",
			Desc: "O(1)-splice linked-list reducer used correctly",
			Build: func(al *mem.Allocator) func(*cilk.Ctx) {
				return func(c *cilk.Ctx) {
					h := reducer.New[*reducer.LinkedList[int]](c, "ll",
						reducer.LinkedListMonoid[int](), &reducer.LinkedList[int]{})
					c.ParForGrain("app", 16, 1, func(cc *cilk.Ctx, i int) {
						h.Update(cc, func(_ *cilk.Ctx, l *reducer.LinkedList[int]) *reducer.LinkedList[int] {
							l.PushBack(i)
							return l
						})
					})
					_ = h.Value(c)
				}
			},
		},
		{
			Name: "view-read-in-spawned-child",
			Desc: "a spawned child reads a reducer its siblings update — different peer set from the creating read",
			Build: func(al *mem.Allocator) func(*cilk.Ctx) {
				return func(c *cilk.Ctx) {
					h := reducer.New[int](c, "sum", reducer.OpAdd[int](), 0)
					c.Spawn("u", func(cc *cilk.Ctx) {
						cc.Update(h.R, func(_ *cilk.Ctx, v any) any { return v.(int) + 1 })
					})
					c.Spawn("reader", func(cc *cilk.Ctx) { _ = h.Value(cc) })
					c.Sync()
				}
			},
			ViewRead: true,
		},
		{
			Name: "nested-frames-clean",
			Desc: "reducer updated across three nesting levels of spawns and calls",
			Build: func(al *mem.Allocator) func(*cilk.Ctx) {
				return func(c *cilk.Ctx) {
					h := reducer.New[int](c, "sum", reducer.OpAdd[int](), 0)
					var rec func(cc *cilk.Ctx, d int)
					rec = func(cc *cilk.Ctx, d int) {
						h.Update(cc, func(_ *cilk.Ctx, v int) int { return v + 1 })
						if d == 0 {
							return
						}
						cc.Spawn("s", func(c3 *cilk.Ctx) { rec(c3, d-1) })
						cc.Call("c", func(c3 *cilk.Ctx) { rec(c3, d-1) })
						cc.Sync()
					}
					rec(c, 3)
					_ = h.Value(c)
				}
			},
		},
		{
			Name: "oblivious-read-read",
			Desc: "parallel reads of one location are never a race",
			Build: func(al *mem.Allocator) func(*cilk.Ctx) {
				x := al.Alloc("x", 1)
				return func(c *cilk.Ctx) {
					c.Spawn("r1", func(cc *cilk.Ctx) { cc.Load(x.At(0)) })
					c.Spawn("r2", func(cc *cilk.Ctx) { cc.Load(x.At(0)) })
					c.Load(x.At(0))
					c.Sync()
				}
			},
			Oblivious: true,
		},
		{
			Name: "two-reducers-one-racy-read",
			Desc: "two reducers; only one is read before the sync",
			Build: func(al *mem.Allocator) func(*cilk.Ctx) {
				return func(c *cilk.Ctx) {
					a := reducer.New[int](c, "a", reducer.OpAdd[int](), 0)
					b := reducer.New[int](c, "b", reducer.OpAdd[int](), 0)
					c.Spawn("u", func(cc *cilk.Ctx) {
						a.Update(cc, func(_ *cilk.Ctx, v int) int { return v + 1 })
						b.Update(cc, func(_ *cilk.Ctx, v int) int { return v + 1 })
					})
					_ = b.Value(c) // racy read of b only
					c.Sync()
					_ = a.Value(c) // fine
				}
			},
			ViewRead: true,
		},
	}
}
