// Package offsetspan implements Mellor-Crummey's offset-span labeling
// determinacy-race detector, the related-work baseline §9 of the paper
// compares the bags algorithms against. Every strand carries a label — a
// sequence of (offset, span) pairs whose length grows with the spawn
// nesting depth — and two strands' logical ordering is decided by
// comparing labels alone:
//
//   - equal labels, or one a prefix of the other: logically in series;
//   - at the first differing pair, equal spans with congruent offsets
//     (mod span): in series, smaller offset first;
//   - otherwise: logically parallel.
//
// The Cilk mapping treats each spawn as a binary fork — the child extends
// the current label with (0,2), the continuation with (1,2) — and a sync
// as the matching join: the label reverts to the sync block's base with
// its last pair's offset bumped by its span, which orders the sync strand
// after every strand of the block while keeping labels finite.
//
// Compared with SP-bags (and hence SP+), labels cost O(depth) space per
// shadow entry and O(depth) time per comparison, versus the bags' O(1)
// pointers and amortized O(α) finds — the §9 trade-off this package exists
// to make measurable (BenchmarkAblationLabeling). Like SP-bags it has no
// notion of reducer views and loses the paper's guarantees on programs
// that use reducers.
package offsetspan

import (
	"fmt"

	"repro/internal/cilk"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/obs"
)

// pair is one (offset, span) label component.
type pair struct {
	off  int32
	span int32
}

// label is an immutable strand label. Slices are copied on extension, so
// shadow entries can retain them.
type label []pair

func (l label) String() string {
	s := ""
	for _, p := range l {
		s += fmt.Sprintf("[%d,%d]", p.off, p.span)
	}
	return s
}

// extend returns l ++ (off, span) as fresh storage.
func (l label) extend(off, span int32) label {
	out := make(label, len(l)+1)
	copy(out, l)
	out[len(l)] = pair{off: off, span: span}
	return out
}

// bump returns l with its final offset advanced by the span — the join
// label ordered after every extension of l.
func (l label) bump() label {
	out := make(label, len(l))
	copy(out, l)
	out[len(out)-1].off += out[len(out)-1].span
	return out
}

// ordered reports whether the strands labeled a and b are logically in
// series (in either direction); otherwise they are parallel.
func ordered(a, b label) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] == b[i] {
			continue
		}
		pa, pb := a[i], b[i]
		if pa.span != pb.span {
			// Cannot happen under the Cilk mapping; treat conservatively
			// as parallel so a mapping bug surfaces as a false positive.
			return false
		}
		return (pa.off-pb.off)%pa.span == 0
	}
	return true // equal or prefix: series
}

type frameRec struct {
	id    cilk.FrameID
	label string
	cur   label
	base  label // label at the start of the current sync block
}

// Detector runs offset-span labeling over the cilk event stream. Like
// SP-bags it detects determinacy races between view-oblivious strands and
// is driven by one serial run.
type Detector struct {
	cilk.Empty

	stack  []*frameRec
	reader map[mem.Addr]shadowEntry
	writer map[mem.Addr]shadowEntry
	report core.Report
	// label accounting for the §9 space comparison
	maxLen   int
	labelSum int
	labels   int

	counts obs.EventCounts
	events int64 // ordinal of the event being processed (1-based)
}

type shadowEntry struct {
	l     label
	frame cilk.FrameID
	name  string
	event int64 // detector-relative ordinal of the access, for provenance
}

// New returns a fresh offset-span detector.
func New() *Detector {
	return &Detector{
		reader: make(map[mem.Addr]shadowEntry),
		writer: make(map[mem.Addr]shadowEntry),
	}
}

// Name implements core.Detector.
func (d *Detector) Name() string { return "offset-span" }

// Report implements core.Detector.
func (d *Detector) Report() *core.Report { return &d.report }

// MaxLabelLen reports the longest label created — the O(depth) space
// factor §9 contrasts with the bags' constant-size IDs.
func (d *Detector) MaxLabelLen() int { return d.maxLen }

// MeanLabelLen reports the average label length.
func (d *Detector) MeanLabelLen() float64 {
	if d.labels == 0 {
		return 0
	}
	return float64(d.labelSum) / float64(d.labels)
}

func (d *Detector) track(l label) label {
	if len(l) > d.maxLen {
		d.maxLen = len(l)
	}
	d.labelSum += len(l)
	d.labels++
	return l
}

func (d *Detector) top() *frameRec { return d.stack[len(d.stack)-1] }

// FrameEnter assigns the child's first label: a (0,2) extension for a
// spawned child — with the parent moving to the (1,2) continuation — and
// the caller's own label for a called child.
func (d *Detector) FrameEnter(f *cilk.Frame) {
	d.events++
	d.counts.FrameEnters++
	rec := &frameRec{id: f.ID, label: f.Label}
	if len(d.stack) == 0 {
		rec.cur = d.track(label{{off: 0, span: 1}})
	} else {
		parent := d.top()
		if f.Spawned {
			rec.cur = d.track(parent.cur.extend(0, 2))
			parent.cur = d.track(parent.cur.extend(1, 2))
		} else {
			rec.cur = parent.cur
		}
	}
	rec.base = rec.cur
	d.stack = append(d.stack, rec)
}

// FrameReturn pops the child; a called child's final label becomes the
// caller's (series), a spawned child's dies with it.
func (d *Detector) FrameReturn(g, f *cilk.Frame) {
	d.events++
	d.counts.FrameReturns++
	grec := d.top()
	d.stack = d.stack[:len(d.stack)-1]
	if !g.Spawned {
		d.top().cur = grec.cur
	}
}

// Sync joins the block: the label reverts to the current label's prefix at
// the block base's depth, with its last pair bumped. Bumping the *current*
// prefix rather than the stored base matters when a called child at the
// same label depth synced internally — its bumps advanced the clock at
// this depth, and bumping the stale base would rewind time and reuse
// labels, turning serial strands into phantom parallel ones. The prefix's
// last offset grows monotonically through the block, so the bump is
// ordered after every label the block issued.
func (d *Detector) Sync(f *cilk.Frame) {
	d.events++
	d.counts.Syncs++
	rec := d.top()
	prefix := rec.cur[:len(rec.base)]
	rec.cur = d.track(prefix.bump())
	rec.base = rec.cur
}

// Load implements the read rule (single-reader shadow, as in the serial
// SP-bags discipline).
func (d *Detector) Load(f *cilk.Frame, a mem.Addr) {
	d.events++
	d.counts.Loads++
	d.counts.ShadowLookups += 2
	rec := d.top()
	if w, ok := d.writer[a]; ok && !ordered(w.l, rec.cur) {
		d.report.Add(core.Race{
			Kind: core.Determinacy, Addr: a,
			First:  core.Access{Frame: w.frame, Label: w.name, Op: core.OpWrite},
			Second: core.Access{Frame: rec.id, Label: rec.label, Op: core.OpRead},
			Prov:   core.Provenance{FirstEvent: w.event, SecondEvent: d.events, Relation: "unordered labels"},
		})
	}
	if r, ok := d.reader[a]; !ok || ordered(r.l, rec.cur) {
		d.reader[a] = shadowEntry{l: rec.cur, frame: rec.id, name: rec.label, event: d.events}
	}
}

// Store implements the write rule.
func (d *Detector) Store(f *cilk.Frame, a mem.Addr) {
	d.events++
	d.counts.Stores++
	d.counts.ShadowLookups += 2
	rec := d.top()
	if r, ok := d.reader[a]; ok && !ordered(r.l, rec.cur) {
		d.report.Add(core.Race{
			Kind: core.Determinacy, Addr: a,
			First:  core.Access{Frame: r.frame, Label: r.name, Op: core.OpRead},
			Second: core.Access{Frame: rec.id, Label: rec.label, Op: core.OpWrite},
			Prov:   core.Provenance{FirstEvent: r.event, SecondEvent: d.events, Relation: "unordered labels"},
		})
	}
	w, ok := d.writer[a]
	if ok && !ordered(w.l, rec.cur) {
		d.report.Add(core.Race{
			Kind: core.Determinacy, Addr: a,
			First:  core.Access{Frame: w.frame, Label: w.name, Op: core.OpWrite},
			Second: core.Access{Frame: rec.id, Label: rec.label, Op: core.OpWrite},
			Prov:   core.Provenance{FirstEvent: w.event, SecondEvent: d.events, Relation: "unordered labels"},
		})
	}
	if !ok || ordered(w.l, rec.cur) {
		d.writer[a] = shadowEntry{l: rec.cur, frame: rec.id, name: rec.label, event: d.events}
	}
}

var (
	_ core.Detector = (*Detector)(nil)
	_ cilk.Hooks    = (*Detector)(nil)
)

// EventCounts implements core.EventCountsProvider.
func (d *Detector) EventCounts() obs.EventCounts { return d.counts }
