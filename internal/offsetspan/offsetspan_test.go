package offsetspan

import (
	"testing"
	"testing/quick"

	"repro/internal/cilk"
	"repro/internal/dag"
	"repro/internal/mem"
	"repro/internal/progs"
	"repro/internal/spbags"
)

func run(prog func(*cilk.Ctx)) (*Detector, bool) {
	d := New()
	cilk.Run(prog, cilk.Config{Hooks: d})
	return d, !d.Report().Empty()
}

func TestBasicRace(t *testing.T) {
	al := mem.NewAllocator()
	x := al.Alloc("x", 1)
	if _, racy := run(func(c *cilk.Ctx) {
		c.Spawn("w", func(c *cilk.Ctx) { c.Store(x.At(0)) })
		c.Load(x.At(0))
		c.Sync()
	}); !racy {
		t.Fatal("race missed")
	}
}

func TestSyncJoins(t *testing.T) {
	al := mem.NewAllocator()
	x := al.Alloc("x", 1)
	if _, racy := run(func(c *cilk.Ctx) {
		c.Spawn("w", func(c *cilk.Ctx) { c.Store(x.At(0)) })
		c.Sync()
		c.Load(x.At(0))
	}); racy {
		t.Fatal("false positive across sync")
	}
}

func TestCalledFrameAdvancesTime(t *testing.T) {
	// A called child's spawns must be ordered against the caller's later
	// accesses through the child's internal sync.
	al := mem.NewAllocator()
	x := al.Alloc("x", 1)
	if _, racy := run(func(c *cilk.Ctx) {
		c.Call("f", func(c *cilk.Ctx) {
			c.Spawn("w", func(c *cilk.Ctx) { c.Store(x.At(0)) })
			c.Sync()
		})
		c.Load(x.At(0)) // after f's sync: serial
	}); racy {
		t.Fatal("false positive: called frame's sync must order its spawns")
	}
}

func TestCalledFrameSpawnsStayParallelToCallerSpawns(t *testing.T) {
	al := mem.NewAllocator()
	x := al.Alloc("x", 1)
	if _, racy := run(func(c *cilk.Ctx) {
		c.Spawn("w", func(c *cilk.Ctx) { c.Store(x.At(0)) })
		c.Call("f", func(c *cilk.Ctx) {
			c.Spawn("r", func(c *cilk.Ctx) { c.Load(x.At(0)) })
			c.Sync()
		})
		c.Sync()
	}); !racy {
		t.Fatal("spawn in called frame is parallel with caller's outstanding spawn")
	}
}

func TestLabelOrderedRules(t *testing.T) {
	base := label{{0, 1}}
	child := base.extend(0, 2)
	cont := base.extend(1, 2)
	sync := base.bump()
	if ordered(child, cont) {
		t.Fatal("child ‖ continuation")
	}
	if !ordered(base, child) || !ordered(base, cont) {
		t.Fatal("prefix must be ordered")
	}
	if !ordered(child, sync) || !ordered(cont, sync) {
		t.Fatal("sync joins the block")
	}
	grand := child.extend(1, 2).extend(0, 2)
	if ordered(grand, cont) {
		t.Fatal("descendant of child stays parallel to continuation")
	}
	if !ordered(grand, sync) {
		t.Fatal("sync joins deep descendants too")
	}
}

func TestQuickAgreesWithSPBagsAndOracle(t *testing.T) {
	// On reducer-free random programs, offset-span, SP-bags and the dag
	// oracle must return identical racy-address sets.
	check := func(seed int64) bool {
		al := mem.NewAllocator()
		prog := progs.Random(al, progs.RandomOpts{Seed: seed, NoReducers: true})
		os := New()
		sb := spbags.New()
		rec := dag.NewRecorder()
		cilk.Run(prog, cilk.Config{Hooks: cilk.Multi{os, sb, rec}})
		want := rec.D.RacyAddrs()
		osAddrs := map[mem.Addr]bool{}
		for _, r := range os.Report().Races() {
			osAddrs[r.Addr] = true
		}
		sbAddrs := map[mem.Addr]bool{}
		for _, r := range sb.Report().Races() {
			sbAddrs[r.Addr] = true
		}
		if len(osAddrs) != len(want) || len(sbAddrs) != len(want) {
			t.Logf("seed %d: oracle %d, offset-span %d, sp-bags %d addrs",
				seed, len(want), len(osAddrs), len(sbAddrs))
			return false
		}
		for a := range want {
			if !osAddrs[a] || !sbAddrs[a] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRegressionCalledChildAdvancesClock(t *testing.T) {
	// Regression for a false positive found by the property test (seed
	// -4360200582654258469): a called child syncing at the caller's label
	// depth advances the clock; the caller's own sync must bump the
	// *current* prefix, not the stale block base, or labels get reused
	// and serial strands look parallel.
	al := mem.NewAllocator()
	x := al.Alloc("x", 1)
	if _, racy := run(func(c *cilk.Ctx) {
		c.Call("f", func(c *cilk.Ctx) {
			c.Spawn("s", func(*cilk.Ctx) {})
			c.Sync()
			c.Store(x.At(0)) // in f's post-sync context
			c.Sync()
		})
		c.Sync()
		c.Spawn("g", func(c *cilk.Ctx) {
			c.Load(x.At(0)) // serial with the store through both syncs
		})
		c.Sync()
	}); racy {
		t.Fatal("false positive: called child's syncs advanced the clock")
	}
}

func TestLabelLengthGrowsWithDepth(t *testing.T) {
	// §9's point: label size grows with spawn nesting depth.
	grow := func(depth int) int {
		var nest func(c *cilk.Ctx, d int)
		nest = func(c *cilk.Ctx, d int) {
			if d == 0 {
				return
			}
			c.Spawn("n", func(cc *cilk.Ctx) { nest(cc, d-1) })
			c.Sync()
		}
		d := New()
		cilk.Run(func(c *cilk.Ctx) { nest(c, depth) }, cilk.Config{Hooks: d})
		return d.MaxLabelLen()
	}
	l4, l16 := grow(4), grow(16)
	if l16 <= l4 {
		t.Fatalf("labels must grow with depth: %d vs %d", l4, l16)
	}
	if l16 < 16 {
		t.Fatalf("max label at depth 16 = %d, want >= 16", l16)
	}
	if New().MeanLabelLen() != 0 {
		t.Fatal("fresh detector has no labels")
	}
}
