// Package ostensible checks the precondition of the paper's §7 coverage
// guarantee: that a program is *ostensibly deterministic* — in the absence
// of a race, its view-oblivious instructions are fixed across all
// executions regardless of scheduling, and its reducers' reduce operations
// are semantically associative. The SP+ sweep is complete only for such
// programs, but the paper offers no way to test for the property; this
// package provides a practical differential check: run the program under a
// panel of schedules, fingerprint everything schedule-independent — the
// frame tree, sync structure, view-oblivious memory accesses and
// reducer-reads — and compare. It also stress-tests associativity by
// comparing each reducer's final value across reduce orders.
//
// A differential check cannot prove determinism (that would require the
// race detectors themselves, or exhaustive schedule enumeration), but a
// mismatch is a proof of nondeterminism, and the panel includes the
// schedules most likely to shake one out: no steals, every steal, eager
// and middle-first reduction, and seeded random schedules.
package ostensible

import (
	"fmt"
	"hash/fnv"

	"repro/internal/cilk"
	"repro/internal/mem"
	"repro/internal/progs"
)

// fingerprinter hashes the schedule-independent event stream.
type fingerprinter struct {
	cilk.Empty
	h       uint64
	events  int
	inAware int
}

func newFingerprinter() *fingerprinter {
	return &fingerprinter{h: 14695981039346656037} // FNV offset basis
}

func (f *fingerprinter) mix(vals ...uint64) {
	for _, v := range vals {
		for i := 0; i < 8; i++ {
			f.h ^= (v >> (8 * i)) & 0xff
			f.h *= 1099511628211
		}
	}
	f.events++
}

// FrameEnter folds the frame structure: id, label hash, spawned flag.
func (f *fingerprinter) FrameEnter(fr *cilk.Frame) {
	f.mix(1, uint64(fr.ID), hashString(fr.Label), boolBit(fr.Spawned))
}

// FrameReturn implements cilk.Hooks.
func (f *fingerprinter) FrameReturn(g, p *cilk.Frame) { f.mix(2, uint64(g.ID)) }

// Sync implements cilk.Hooks.
func (f *fingerprinter) Sync(fr *cilk.Frame) { f.mix(3, uint64(fr.ID)) }

// ViewAwareBegin implements cilk.Hooks: accesses inside view-aware
// sections are schedule-dependent by nature and excluded.
func (f *fingerprinter) ViewAwareBegin(*cilk.Frame, cilk.ViewOp, *cilk.Reducer) { f.inAware++ }

// ViewAwareEnd implements cilk.Hooks.
func (f *fingerprinter) ViewAwareEnd(*cilk.Frame, cilk.ViewOp, *cilk.Reducer) { f.inAware-- }

// Load implements cilk.Hooks.
func (f *fingerprinter) Load(fr *cilk.Frame, a mem.Addr) {
	if f.inAware == 0 {
		f.mix(4, uint64(fr.ID), uint64(a))
	}
}

// Store implements cilk.Hooks.
func (f *fingerprinter) Store(fr *cilk.Frame, a mem.Addr) {
	if f.inAware == 0 {
		f.mix(5, uint64(fr.ID), uint64(a))
	}
}

// ReducerCreate implements cilk.Hooks.
func (f *fingerprinter) ReducerCreate(fr *cilk.Frame, r *cilk.Reducer) {
	f.mix(6, uint64(fr.ID), uint64(r.Index()))
}

// ReducerRead implements cilk.Hooks.
func (f *fingerprinter) ReducerRead(fr *cilk.Frame, r *cilk.Reducer) {
	f.mix(7, uint64(fr.ID), uint64(r.Index()))
}

func hashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Verdict is the outcome of a determinism check.
type Verdict struct {
	// Deterministic reports whether every schedule produced the same
	// view-oblivious fingerprint.
	Deterministic bool
	// Schedules is the number of schedules compared.
	Schedules int
	// Mismatch names the first diverging schedule, if any.
	Mismatch string
	// Events is the event count of the reference run.
	Events int
}

// String implements fmt.Stringer.
func (v Verdict) String() string {
	if v.Deterministic {
		return fmt.Sprintf("ostensibly deterministic across %d schedules (%d events)", v.Schedules, v.Events)
	}
	return fmt.Sprintf("NOT ostensibly deterministic: schedule %q diverges from the serial run", v.Mismatch)
}

// panel is the default schedule panel.
func panel(seed int64) []struct {
	name string
	spec cilk.StealSpec
} {
	return []struct {
		name string
		spec cilk.StealSpec
	}{
		{"serial", nil},
		{"steal-all", cilk.StealAll{}},
		{"steal-all-eager", cilk.StealAll{Reduce: cilk.ReduceEager}},
		{"steal-all-middle", cilk.StealAll{Reduce: cilk.ReduceMiddleFirst}},
		{"random-a", progs.RandomSpec{Seed: seed, P: 0.3}},
		{"random-b", progs.RandomSpec{Seed: seed + 1, P: 0.7, Reduce: cilk.ReduceEager}},
	}
}

// Check runs prog under the schedule panel and compares view-oblivious
// fingerprints. prog must be rerunnable.
func Check(prog func(*cilk.Ctx), seed int64) Verdict {
	var ref uint64
	var refEvents int
	v := Verdict{Deterministic: true}
	for i, sc := range panel(seed) {
		fp := newFingerprinter()
		cilk.Run(prog, cilk.Config{Spec: sc.spec, Hooks: fp})
		v.Schedules++
		if i == 0 {
			ref, refEvents = fp.h, fp.events
			v.Events = refEvents
			continue
		}
		if fp.h != ref {
			v.Deterministic = false
			v.Mismatch = sc.name
			return v
		}
	}
	return v
}

// CheckValue additionally compares a result the caller extracts after each
// run (typically a reducer's final value rendered to a string), catching
// non-associative monoids whose oblivious trace is stable but whose
// reduced value is not.
func CheckValue(prog func(*cilk.Ctx) string, seed int64) Verdict {
	var ref string
	v := Verdict{Deterministic: true}
	for i, sc := range panel(seed) {
		var got string
		wrapped := func(c *cilk.Ctx) { got = prog(c) }
		fp := newFingerprinter()
		cilk.Run(wrapped, cilk.Config{Spec: sc.spec, Hooks: fp})
		v.Schedules++
		if i == 0 {
			ref = got
			v.Events = fp.events
			continue
		}
		if got != ref {
			v.Deterministic = false
			v.Mismatch = sc.name
			return v
		}
	}
	return v
}
