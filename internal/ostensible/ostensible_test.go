package ostensible

import (
	"fmt"
	"testing"

	"repro/internal/apps"
	"repro/internal/cilk"
	"repro/internal/mem"
	"repro/internal/reducer"
)

func TestBenchmarksAreOstensiblyDeterministic(t *testing.T) {
	// §7's assumption holds for five of the six evaluation benchmarks.
	// The exception is pbfs — fittingly, since its source paper is
	// subtitled "how to cope with the nondeterminism of reducers": the
	// frontier bag's pennant structure depends on the reduce tree, so the
	// traversal order, which vertex wins each discovery, and therefore
	// the view-oblivious access trace are all schedule-dependent (the
	// benign races SP+ reports on its dist array are the same
	// phenomenon). The final BFS distances are still deterministic.
	for _, app := range apps.All() {
		al := mem.NewAllocator()
		ins := app.Build(al, apps.Test)
		v := Check(ins.Prog, 7)
		if app.Name == "pbfs" {
			if v.Deterministic {
				t.Error("pbfs: expected the bag-order nondeterminism to be caught")
			}
			if err := verifyAfterPanel(ins); err != nil {
				t.Errorf("pbfs: result must still be deterministic: %v", err)
			}
			continue
		}
		if !v.Deterministic {
			t.Errorf("%s: %v", app.Name, v)
		}
		if v.Events == 0 || v.Schedules < 5 {
			t.Errorf("%s: malformed verdict %+v", app.Name, v)
		}
	}
}

// verifyAfterPanel reruns the instance under a stealing schedule and
// checks the answer.
func verifyAfterPanel(ins *apps.Instance) error {
	cilk.Run(ins.Prog, cilk.Config{Spec: cilk.StealAll{}})
	return ins.Verify()
}

func TestValueDeterminismSum(t *testing.T) {
	v := CheckValue(func(c *cilk.Ctx) string {
		h := reducer.New[int](c, "sum", reducer.OpAdd[int](), 0)
		c.ParForGrain("w", 64, 2, func(cc *cilk.Ctx, i int) {
			h.Update(cc, func(_ *cilk.Ctx, x int) int { return x + i })
		})
		return fmt.Sprint(h.Value(c))
	}, 3)
	if !v.Deterministic {
		t.Fatalf("associative sum must be deterministic: %v", v)
	}
}

func TestNonAssociativeMonoidCaught(t *testing.T) {
	// Subtraction is not associative; the reduced value depends on the
	// reduce tree, which the schedule panel varies.
	bad := cilk.MonoidFuncs(
		func(*cilk.Ctx) any { return 0 },
		func(_ *cilk.Ctx, l, r any) any { return l.(int) - r.(int) },
	)
	v := CheckValue(func(c *cilk.Ctx) string {
		r := c.NewReducerQuiet("bad", bad, 0)
		for i := 1; i <= 6; i++ {
			i := i
			c.Spawn("u", func(cc *cilk.Ctx) {
				cc.Update(r, func(_ *cilk.Ctx, x any) any { return x.(int) + i })
			})
		}
		c.Sync()
		return fmt.Sprint(c.Value(r))
	}, 3)
	if v.Deterministic {
		t.Fatal("non-associative reduction must be caught")
	}
	if v.Mismatch == "" {
		t.Fatal("mismatch must name the diverging schedule")
	}
}

func TestViewReadMakesObliviousTraceDiverge(t *testing.T) {
	// A program that branches on a mid-computation get_value performs
	// different oblivious accesses depending on the schedule — exactly
	// the nondeterminism view-read races expose.
	al := mem.NewAllocator()
	x := al.Alloc("x", 2)
	prog := func(c *cilk.Ctx) {
		h := reducer.New[int](c, "sum", reducer.OpAdd[int](), 0)
		c.Spawn("u", func(cc *cilk.Ctx) {
			h.Update(cc, func(_ *cilk.Ctx, v int) int { return v + 1 })
		})
		if h.Value(c) > 0 { // view-read race: value depends on stealing
			c.Load(x.At(0))
		} else {
			c.Load(x.At(1))
		}
		c.Sync()
	}
	v := Check(prog, 3)
	if v.Deterministic {
		t.Fatal("schedule-dependent branch must be caught")
	}
}

func TestAwareAccessesExcluded(t *testing.T) {
	// Accesses inside Update/Reduce are schedule-dependent by design and
	// must not trip the check: this program's update bodies write
	// different scratch addresses depending on nothing schedule-relevant,
	// but its REDUCE count varies by schedule; only oblivious events are
	// hashed.
	al := mem.NewAllocator()
	scratch := al.Alloc("scratch", 1)
	m := cilk.MonoidFuncs(
		func(*cilk.Ctx) any { return 0 },
		func(cc *cilk.Ctx, l, r any) any {
			cc.Store(scratch.At(0)) // view-aware, schedule-dependent count
			return l.(int) + r.(int)
		},
	)
	prog := func(c *cilk.Ctx) {
		r := c.NewReducerQuiet("h", m, 0)
		c.ParForGrain("w", 32, 1, func(cc *cilk.Ctx, i int) {
			cc.Update(r, func(ccc *cilk.Ctx, v any) any {
				ccc.Store(scratch.At(0)) // view-aware too
				return v.(int) + 1
			})
		})
	}
	v := Check(prog, 5)
	if !v.Deterministic {
		t.Fatalf("view-aware accesses must be excluded from the fingerprint: %v", v)
	}
}
