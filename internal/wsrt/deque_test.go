package wsrt

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// stressQueue hammers one workQueue with its ownership contract — a single
// owner pushing and popping, many concurrent thieves — and checks that
// every task is delivered exactly once and none are lost.
func stressQueue(t *testing.T, q workQueue, total, thieves int) {
	t.Helper()
	delivered := make([]atomic.Int32, total)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var stolen atomic.Int64

	take := func(tk *task) {
		if tk == nil {
			return
		}
		idx := tk.owner // owner field reused as payload index
		if delivered[idx].Add(1) != 1 {
			t.Errorf("task %d delivered twice", idx)
		}
	}
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if tk := q.stealTop(); tk != nil {
					stolen.Add(1)
					take(tk)
				}
			}
		}()
	}
	// Owner: push all tasks, popping a few along the way.
	for i := 0; i < total; i++ {
		q.pushBottom(&task{owner: i})
		if i%3 == 0 {
			take(q.popBottom())
		}
	}
	// Owner drains what the thieves have not taken.
	for {
		tk := q.popBottom()
		if tk == nil {
			// Thieves may still hold in-flight steals; wait for them.
			break
		}
		take(tk)
	}
	close(stop)
	wg.Wait()
	// Anything still in the queue after the thieves stopped.
	for {
		tk := q.popBottom()
		if tk == nil {
			break
		}
		take(tk)
	}
	for i := range delivered {
		if delivered[i].Load() != 1 {
			t.Fatalf("task %d delivered %d times", i, delivered[i].Load())
		}
	}
	t.Logf("thieves stole %d of %d", stolen.Load(), total)
}

func TestMutexDequeStress(t *testing.T) {
	stressQueue(t, &mutexDeque{}, 20000, 4)
}

func TestChaseLevStress(t *testing.T) {
	stressQueue(t, newChaseLev(), 20000, 4)
}

func TestChaseLevGrowth(t *testing.T) {
	// Push far past the initial buffer size with no consumers, then drain
	// in order.
	q := newChaseLev()
	const n = 1000
	for i := 0; i < n; i++ {
		q.pushBottom(&task{owner: i})
	}
	for i := n - 1; i >= 0; i-- {
		tk := q.popBottom()
		if tk == nil || tk.owner != i {
			t.Fatalf("pop %d: got %v", i, tk)
		}
	}
	if q.popBottom() != nil || q.stealTop() != nil {
		t.Fatal("drained deque must be empty")
	}
}

func TestChaseLevStealOrder(t *testing.T) {
	q := newChaseLev()
	for i := 0; i < 10; i++ {
		q.pushBottom(&task{owner: i})
	}
	// Thieves take the oldest first.
	for i := 0; i < 10; i++ {
		tk := q.stealTop()
		if tk == nil || tk.owner != i {
			t.Fatalf("steal %d: got %v", i, tk)
		}
	}
}

func TestChaseLevSingleElementRace(t *testing.T) {
	// One element, owner and thief compete: exactly one wins, many times.
	for trial := 0; trial < 2000; trial++ {
		q := newChaseLev()
		q.pushBottom(&task{owner: 1})
		var got atomic.Int32
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			if q.popBottom() != nil {
				got.Add(1)
			}
		}()
		go func() {
			defer wg.Done()
			if q.stealTop() != nil {
				got.Add(1)
			}
		}()
		wg.Wait()
		if got.Load() != 1 {
			t.Fatalf("trial %d: element taken %d times", trial, got.Load())
		}
	}
}

func TestLockFreeRuntimeDeterministic(t *testing.T) {
	listM := MonoidFuncs(
		func() any { return []int(nil) },
		func(l, r any) any { return append(l.([]int), r.([]int)...) },
	)
	for _, w := range []int{1, 2, 4, 8} {
		var got []int
		NewLockFree(w).Run(func(c *Ctx) {
			r := c.NewReducer("list", listM, []int(nil))
			c.ParFor(400, 8, func(cc *Ctx, i int) {
				cc.Update(r, func(v any) any { return append(v.([]int), i) })
			})
			got = c.Value(r).([]int)
		})
		for i, v := range got {
			if v != i {
				t.Fatalf("workers=%d: out of order at %d", w, i)
			}
		}
		if len(got) != 400 {
			t.Fatalf("workers=%d: len %d", w, len(got))
		}
	}
}

func BenchmarkWSRTDeques(b *testing.B) {
	m := MonoidFuncs(func() any { return 0 }, func(l, r any) any { return l.(int) + r.(int) })
	for _, mk := range []struct {
		name string
		rt   func(int) *Runtime
	}{
		{"mutex", New},
		{"chase-lev", NewLockFree},
	} {
		mk := mk
		for _, w := range []int{1, 4} {
			w := w
			b.Run(fmt.Sprintf("%s/workers=%d", mk.name, w), func(b *testing.B) {
				rt := mk.rt(w)
				for i := 0; i < b.N; i++ {
					rt.Run(func(c *Ctx) {
						h := c.NewReducer("sum", m, 0)
						c.ParFor(4096, 16, func(cc *Ctx, j int) {
							cc.Update(h, func(v any) any { return v.(int) + 1 })
						})
						if c.Value(h).(int) != 4096 {
							b.Fatal("bad sum")
						}
					})
				}
			})
		}
	}
}
