package wsrt

import (
	"sync"
	"sync/atomic"
)

// workQueue is the per-worker task store: the owner pushes and pops at the
// bottom (LIFO, preserving the serial order locally), thieves steal from
// the top (FIFO, taking the oldest — and typically largest — work first),
// the Blumofe–Leiserson discipline.
type workQueue interface {
	pushBottom(*task)
	popBottom() *task
	stealTop() *task
}

// mutexDeque is the obviously-correct baseline implementation.
type mutexDeque struct {
	mu    sync.Mutex
	tasks []*task
}

func (d *mutexDeque) pushBottom(t *task) {
	d.mu.Lock()
	d.tasks = append(d.tasks, t)
	d.mu.Unlock()
}

func (d *mutexDeque) popBottom() *task {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.tasks) == 0 {
		return nil
	}
	t := d.tasks[len(d.tasks)-1]
	d.tasks = d.tasks[:len(d.tasks)-1]
	return t
}

func (d *mutexDeque) stealTop() *task {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.tasks) == 0 {
		return nil
	}
	t := d.tasks[0]
	d.tasks = d.tasks[1:]
	return t
}

// chaseLev is the lock-free Chase–Lev work-stealing deque (Chase & Lev,
// SPAA 2005; the formulation follows Lê, Pop, Cohen & Zappa Nardelli,
// PPoPP 2013). The owner manipulates bottom without contention; thieves
// race on top with a compare-and-swap; the circular buffer grows on
// demand, and superseded buffers stay reachable until the garbage
// collector proves no thief still reads them — which is what makes the
// classic algorithm so much simpler in Go than in C. Go's atomics are
// sequentially consistent, covering the algorithm's fence requirements.
type chaseLev struct {
	top    atomic.Int64
	bottom atomic.Int64
	buf    atomic.Pointer[clBuffer]
}

type clBuffer struct {
	mask int64 // size-1; size is a power of two
	data []atomic.Pointer[task]
}

func newCLBuffer(size int64) *clBuffer {
	return &clBuffer{mask: size - 1, data: make([]atomic.Pointer[task], size)}
}

func (b *clBuffer) get(i int64) *task    { return b.data[i&b.mask].Load() }
func (b *clBuffer) put(i int64, t *task) { b.data[i&b.mask].Store(t) }
func (b *clBuffer) size() int64          { return b.mask + 1 }

func newChaseLev() *chaseLev {
	d := &chaseLev{}
	d.buf.Store(newCLBuffer(64))
	return d
}

// pushBottom appends a task; owner only.
func (d *chaseLev) pushBottom(t *task) {
	b := d.bottom.Load()
	top := d.top.Load()
	buf := d.buf.Load()
	if b-top >= buf.size() {
		// Grow: copy live entries to a doubled buffer at the same
		// logical indices. Only the owner resizes.
		nb := newCLBuffer(buf.size() * 2)
		for i := top; i < b; i++ {
			nb.put(i, buf.get(i))
		}
		d.buf.Store(nb)
		buf = nb
	}
	buf.put(b, t)
	d.bottom.Store(b + 1)
}

// popBottom takes the newest task; owner only.
func (d *chaseLev) popBottom() *task {
	b := d.bottom.Load() - 1
	buf := d.buf.Load()
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Empty: restore.
		d.bottom.Store(t)
		return nil
	}
	task := buf.get(b)
	if t == b {
		// Last element: race the thieves for it.
		if !d.top.CompareAndSwap(t, t+1) {
			task = nil // a thief got it
		}
		d.bottom.Store(t + 1)
		return task
	}
	return task
}

// stealTop takes the oldest task; any thief.
func (d *chaseLev) stealTop() *task {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return nil
	}
	buf := d.buf.Load()
	task := buf.get(t)
	if !d.top.CompareAndSwap(t, t+1) {
		return nil // lost the race; caller will try elsewhere
	}
	return task
}

var (
	_ workQueue = (*mutexDeque)(nil)
	_ workQueue = (*chaseLev)(nil)
)
