package wsrt

import (
	"strings"
	"testing"
)

func TestViewReadGuardFlagsEarlyRead(t *testing.T) {
	rt := New(2).EnableViewReadGuard()
	rt.Run(func(c *Ctx) {
		r := c.NewReducer("sum", sumMonoid, 0)
		c.Spawn(func(cc *Ctx) {
			cc.Update(r, func(v any) any { return v.(int) + 1 })
		})
		_ = c.Value(r) // BUG: child outstanding
		c.Sync()
	})
	warns := rt.ViewReadWarnings()
	if len(warns) != 1 {
		t.Fatalf("warnings = %d, want 1: %v", len(warns), warns)
	}
	if warns[0].Reducer != "sum" || warns[0].Op != "get" || warns[0].Pending == 0 {
		t.Fatalf("warning malformed: %+v", warns[0])
	}
	if !strings.Contains(warns[0].String(), "view-read warning") {
		t.Fatal("stringer")
	}
}

func TestViewReadGuardSilentOnCorrectUse(t *testing.T) {
	rt := New(2).EnableViewReadGuard()
	var got int
	rt.Run(func(c *Ctx) {
		r := c.NewReducer("sum", sumMonoid, 0)
		c.SetValue(r, 5) // before any spawn: fine
		c.ParFor(100, 4, func(cc *Ctx, i int) {
			cc.Update(r, func(v any) any { return v.(int) + 1 })
		})
		got = c.Value(r).(int) // after the sync: fine
	})
	if got != 105 {
		t.Fatalf("sum = %d", got)
	}
	if warns := rt.ViewReadWarnings(); len(warns) != 0 {
		t.Fatalf("correct use must not warn: %v", warns)
	}
}

func TestViewReadGuardSetAfterSpawn(t *testing.T) {
	rt := New(1).EnableViewReadGuard()
	rt.Run(func(c *Ctx) {
		r := c.NewReducer("sum", sumMonoid, 0)
		c.Spawn(func(cc *Ctx) {})
		c.SetValue(r, 9) // the §3 set_value-after-spawn pattern
		c.Sync()
	})
	warns := rt.ViewReadWarnings()
	if len(warns) != 1 || warns[0].Op != "set" {
		t.Fatalf("warnings = %v", warns)
	}
}

func TestViewReadGuardDisabledByDefault(t *testing.T) {
	rt := New(1)
	rt.Run(func(c *Ctx) {
		r := c.NewReducer("sum", sumMonoid, 0)
		c.Spawn(func(cc *Ctx) {})
		_ = c.Value(r)
		c.Sync()
	})
	if rt.ViewReadWarnings() != nil {
		t.Fatal("guard off by default")
	}
}
