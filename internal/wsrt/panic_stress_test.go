package wsrt

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// runExpectingPanic runs root and returns the propagated panic value,
// failing the test if the runtime hangs instead of quiescing (the latched
// panic must never stall the join) or completes without panicking.
func runExpectingPanic(t *testing.T, rt *Runtime, root func(*Ctx)) any {
	t.Helper()
	type result struct{ p any }
	ch := make(chan result, 1)
	go func() {
		defer func() { ch <- result{p: recover()} }()
		rt.Run(root)
	}()
	select {
	case res := <-ch:
		if res.p == nil {
			t.Fatal("run completed without the expected panic")
		}
		return res.p
	case <-time.After(30 * time.Second):
		t.Fatal("runtime failed to quiesce after a task panic")
		return nil
	}
}

// TestPanicUnderActiveThieves panics a single task in the middle of a wide
// spawn storm, with every sibling doing real reducer work to keep thieves
// busy: the exact panic value must come back out of Run, and the join must
// complete on both deque implementations.
func TestPanicUnderActiveThieves(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func(int) *Runtime
	}{
		{"mutex", New},
		{"chase-lev", NewLockFree},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rt := tc.mk(8)
			sum := MonoidFuncs(func() any { return 0 }, func(l, r any) any { return l.(int) + r.(int) })
			p := runExpectingPanic(t, rt, func(c *Ctx) {
				r := c.NewReducer("sum", sum, 0)
				for i := 0; i < 400; i++ {
					i := i
					c.Spawn(func(cc *Ctx) {
						if i == 137 {
							panic("poison-137")
						}
						for j := 0; j < 50; j++ {
							cc.Update(r, func(v any) any { return v.(int) + 1 })
						}
					})
				}
				c.Sync()
			})
			if s, ok := p.(string); !ok || s != "poison-137" {
				t.Fatalf("panic value = %v (%T), want the first task's exact value", p, p)
			}
		})
	}
}

// TestManyPanicsLatchFirst fires many concurrent panicking tasks: exactly
// one value is propagated, it is one of the injected values, and the
// runtime still quiesces. Repeated rounds shake out latch races under the
// race detector.
func TestManyPanicsLatchFirst(t *testing.T) {
	rt := NewLockFree(8)
	for round := 0; round < 10; round++ {
		var fired atomic.Int64
		p := runExpectingPanic(t, rt, func(c *Ctx) {
			for i := 0; i < 64; i++ {
				i := i
				c.Spawn(func(*Ctx) {
					fired.Add(1)
					panic(fmt.Sprintf("poison-%d", i))
				})
			}
			c.Sync()
		})
		s, ok := p.(string)
		if !ok || !strings.HasPrefix(s, "poison-") {
			t.Fatalf("round %d: propagated %v (%T), not an injected value", round, p, p)
		}
		if fired.Load() == 0 {
			t.Fatalf("round %d: no task ran", round)
		}
	}
}

// TestPanicInNestedSpawnTree panics deep inside a recursive spawn tree
// while ancestors are mid-Sync (helping thieves), covering the path where
// the panicking task's parent is itself executing stolen work.
func TestPanicInNestedSpawnTree(t *testing.T) {
	rt := New(4)
	var depth func(c *Ctx, d int)
	depth = func(c *Ctx, d int) {
		if d == 0 {
			panic(999)
		}
		for i := 0; i < 3; i++ {
			c.Spawn(func(cc *Ctx) { depth(cc, d-1) })
		}
		c.Sync()
	}
	p := runExpectingPanic(t, rt, func(c *Ctx) { depth(c, 5) })
	if v, ok := p.(int); !ok || v != 999 {
		t.Fatalf("panic value = %v (%T), want 999", p, p)
	}
}

// TestRuntimeReusableAfterPanic pins that a runtime whose previous Run
// panicked starts the next Run with a clear latch and produces a correct
// reduction.
func TestRuntimeReusableAfterPanic(t *testing.T) {
	rt := New(4)
	runExpectingPanic(t, rt, func(c *Ctx) {
		c.Spawn(func(*Ctx) { panic("first run") })
		c.Sync()
	})
	sum := MonoidFuncs(func() any { return 0 }, func(l, r any) any { return l.(int) + r.(int) })
	var got int
	rt.Run(func(c *Ctx) {
		r := c.NewReducer("sum", sum, 0)
		c.ParFor(1000, 8, func(cc *Ctx, i int) {
			cc.Update(r, func(v any) any { return v.(int) + 1 })
		})
		got = c.Value(r).(int)
	})
	if got != 1000 {
		t.Fatalf("post-panic run reduced to %d, want 1000", got)
	}
}
