// Package wsrt is a parallel work-stealing runtime with reducer
// hyperobjects: the substrate a Cilk program actually runs on when it is
// not being analysed by the serial detectors. Workers keep double-ended
// task queues, push spawned children, pop from the bottom like a stack,
// and steal from the top of random victims' deques when idle — the
// Blumofe–Leiserson discipline the paper's §2 describes.
//
// Go cannot capture a goroutine's continuation, so unlike Cilk's
// continuation stealing this runtime steals *children* (help-first): Spawn
// enqueues the child and the parent keeps running its continuation; at
// Sync the parent drains its own deque and helps finish stolen children.
// Reducer views adapt to child stealing: every task keeps a private
// hypermap whose identity views materialize lazily, a task's own updates
// are segmented by its spawns to keep them ordered relative to its
// children, and everything reduces in serial order at the sync, so an
// associative monoid yields the serial result — the determinism property
// TestDeterministicAcrossWorkers checks across worker counts. The serial
// race detectors never run on this substrate; it exists to validate
// reducer semantics end-to-end under real parallelism and to serve the
// examples.
package wsrt

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
)

// Monoid defines a reducer over view type any, mirroring cilk.Monoid but
// without the serial executor's context (user code here is ordinary Go).
type Monoid interface {
	Identity() any
	Combine(left, right any) any
}

// MonoidFuncs adapts closures to Monoid.
func MonoidFuncs(identity func() any, combine func(l, r any) any) Monoid {
	return monoidFuncs{identity: identity, combine: combine}
}

type monoidFuncs struct {
	identity func() any
	combine  func(l, r any) any
}

func (m monoidFuncs) Identity() any        { return m.identity() }
func (m monoidFuncs) Combine(l, r any) any { return m.combine(l, r) }

// Runtime is one work-stealing scheduler instance.
type Runtime struct {
	workers  int
	lockFree bool
	steals   atomic.Int64
	spawns   atomic.Int64
	deques   []workQueue
	states   []*workerState
	panicked atomic.Pointer[panicBox]
	guard    *guard
}

// panicBox carries a panic value from a worker to Run.
type panicBox struct{ value any }

// New creates a runtime with n workers (0 means GOMAXPROCS) using the
// mutex-guarded deques.
func New(n int) *Runtime {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Runtime{workers: n}
}

// NewLockFree creates a runtime whose workers use the lock-free Chase–Lev
// deques instead of the mutex baseline (BenchmarkWSRTDeques compares the
// two).
func NewLockFree(n int) *Runtime {
	rt := New(n)
	rt.lockFree = true
	return rt
}

// Workers reports the worker count.
func (rt *Runtime) Workers() int { return rt.workers }

// Steals reports how many tasks ran on a worker other than their spawner
// during the last Run — the events that create reducer views.
func (rt *Runtime) Steals() int64 { return rt.steals.Load() }

// Spawns reports the number of spawned tasks during the last Run.
func (rt *Runtime) Spawns() int64 { return rt.spawns.Load() }

// task is one spawned child: a closure plus join bookkeeping.
type task struct {
	run   func(*Ctx)
	owner int // worker that spawned it
	// view state for the joining parent: filled when the task completes
	// on a remote worker.
	views map[*Reducer]any
	done  chan struct{}
	// stolen is set when a worker other than owner executes the task.
	stolen bool
}

// Reducer is a hyperobject registered with a Run.
type Reducer struct {
	name string
	m    Monoid
	idx  int
}

// String implements fmt.Stringer.
func (r *Reducer) String() string { return fmt.Sprintf("wsrt.reducer(%s)", r.name) }

// Ctx is the per-task execution context: it knows the executing worker
// and carries the task's hypermap (lazy views per reducer).
type Ctx struct {
	rt     *Runtime
	worker *workerState
	frame  *frame
}

// frame tracks one task's spawn scope. To preserve the serial reduction
// order for non-commutative monoids, the task's own updates are segmented
// by its spawns: updates before a spawn belong to an earlier view segment
// than the spawned child's, which in turn precedes updates made after the
// spawn. items interleaves sealed parent segments with children in serial
// order; cur is the open segment.
type frame struct {
	items []joinItem
	cur   map[*Reducer]any // nil until the segment's first update
}

// joinItem is either a sealed parent view segment or a spawned child.
type joinItem struct {
	views map[*Reducer]any
	child *task
}

type workerState struct {
	id    int
	rt    *Runtime
	deque workQueue
	rng   *rand.Rand
}

// Run executes root on the runtime and blocks until it completes.
func (rt *Runtime) Run(root func(*Ctx)) {
	rt.steals.Store(0)
	rt.spawns.Store(0)
	deques := make([]workQueue, rt.workers)
	for i := range deques {
		if rt.lockFree {
			deques[i] = newChaseLev()
		} else {
			deques[i] = &mutexDeque{}
		}
	}
	states := make([]*workerState, rt.workers)
	for i := range states {
		states[i] = &workerState{id: i, rt: rt, deque: deques[i], rng: rand.New(rand.NewSource(int64(i) + 1))}
	}
	rt.deques = deques
	rt.states = states

	rootTask := &task{
		run:   root,
		owner: 0,
		done:  make(chan struct{}),
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 1; i < rt.workers; i++ {
		wg.Add(1)
		go func(ws *workerState) {
			defer wg.Done()
			ws.scavenge(stop)
		}(states[i])
	}
	rt.panicked.Store(nil)
	states[0].execute(rootTask)
	close(stop)
	wg.Wait()
	if pb := rt.panicked.Load(); pb != nil {
		panic(pb.value)
	}
}

// scavenge loops stealing tasks until stopped.
func (ws *workerState) scavenge(stop <-chan struct{}) {
	for {
		select {
		case <-stop:
			return
		default:
		}
		if t := ws.findWork(); t != nil {
			ws.execute(t)
		} else {
			runtime.Gosched()
		}
	}
}

// findWork pops locally, then tries random victims.
func (ws *workerState) findWork() *task {
	if t := ws.deque.popBottom(); t != nil {
		return t
	}
	n := len(ws.rt.deques)
	for attempt := 0; attempt < n; attempt++ {
		victim := ws.rng.Intn(n)
		if victim == ws.id {
			continue
		}
		if t := ws.rt.deques[victim].stealTop(); t != nil {
			ws.rt.steals.Add(1)
			t.stolen = true
			return t
		}
	}
	return nil
}

// execute runs one task to completion on this worker. Every task keeps a
// private hypermap that starts empty — identity views materialize lazily
// on first update — because child stealing cannot tell in advance whether
// the task will run on its spawner's worker. An unstolen child's private
// map then merges into its parent's at the join exactly as a stolen one's
// would; associativity makes the result identical to sharing the view, at
// the cost of more view churn than continuation-stealing Cilk.
func (ws *workerState) execute(t *task) {
	defer func() {
		if p := recover(); p != nil {
			// Latch the first panic; the root's Run rethrows it after
			// all workers quiesce, so a panicking task cannot silently
			// kill one worker and hang the join.
			ws.rt.panicked.CompareAndSwap(nil, &panicBox{value: p})
		}
		close(t.done)
	}()
	fr := &frame{}
	ctx := &Ctx{rt: ws.rt, worker: ws, frame: fr}
	t.run(ctx)
	ctx.Sync() // implicit sync before the task returns
	t.views = fr.cur
}

// Worker reports the ID of the worker executing this task, in
// [0, Workers()). Tasks never migrate mid-execution, so the value is
// stable for the lifetime of the Ctx; instrumentation layered on the
// runtime (the depa live detector's per-worker lanes) keys its logs and
// spans on it.
func (c *Ctx) Worker() int { return c.worker.id }

// Call runs body as a called (not spawned) child scope on the same
// worker: a nested join context whose spawns are joined by body's own
// Sync — plus an implicit one at return — without joining the caller's
// outstanding children. This mirrors a plain function call in Cilk: the
// callee must sync its own spawns before returning (§2). The callee's
// final view segment folds into the caller's current segment, preserving
// the serial reduction order.
func (c *Ctx) Call(body func(*Ctx)) {
	fr := &frame{}
	ctx := &Ctx{rt: c.rt, worker: c.worker, frame: fr}
	body(ctx)
	ctx.Sync()
	if fr.cur != nil {
		pf := c.frame
		if pf.cur == nil {
			pf.cur = fr.cur
		} else {
			for r, rv := range fr.cur {
				if lv, ok := pf.cur[r]; ok {
					pf.cur[r] = r.m.Combine(lv, rv)
				} else {
					pf.cur[r] = rv
				}
			}
		}
	}
}

// Spawn schedules body to run in parallel with the continuation, sealing
// the current view segment so later updates stay ordered after the child.
func (c *Ctx) Spawn(body func(*Ctx)) {
	c.rt.spawns.Add(1)
	t := &task{run: body, owner: c.worker.id, done: make(chan struct{})}
	fr := c.frame
	if fr.cur != nil {
		fr.items = append(fr.items, joinItem{views: fr.cur})
		fr.cur = nil
	}
	fr.items = append(fr.items, joinItem{child: t})
	c.worker.deque.pushBottom(t)
}

// Sync joins all children spawned by this task so far, folding sealed
// parent segments and children's views in serial order. The syncing worker
// helps: while a child is outstanding it runs other pending work instead
// of blocking idle.
func (c *Ctx) Sync() {
	fr := c.frame
	var acc map[*Reducer]any
	fold := func(views map[*Reducer]any) {
		if views == nil {
			return
		}
		if acc == nil {
			acc = views
			return
		}
		for r, rv := range views {
			if lv, ok := acc[r]; ok {
				acc[r] = r.m.Combine(lv, rv)
			} else {
				acc[r] = rv
			}
		}
	}
	for _, item := range fr.items {
		if item.child == nil {
			fold(item.views)
			continue
		}
		child := item.child
	wait:
		for {
			select {
			case <-child.done:
				break wait
			default:
				// Help: run pending work rather than idling. Never block
				// outright — the child may sit in another worker's deque
				// whose owner is itself waiting, so someone must keep
				// scanning.
				if t := c.worker.findWork(); t != nil {
					c.worker.execute(t)
				} else {
					runtime.Gosched()
				}
			}
		}
		fold(child.views)
	}
	fold(fr.cur)
	fr.items = fr.items[:0]
	fr.cur = acc
}

// ParFor runs body(i) for i in [0,n) with divide-and-conquer spawning.
func (c *Ctx) ParFor(n, grain int, body func(*Ctx, int)) {
	if grain < 1 {
		grain = 1
	}
	var rec func(c *Ctx, lo, hi int)
	rec = func(c *Ctx, lo, hi int) {
		for hi-lo > grain {
			mid := lo + (hi-lo)/2
			lo2, hi2 := lo, mid
			c.Spawn(func(cc *Ctx) { rec(cc, lo2, hi2) })
			lo = mid
		}
		for i := lo; i < hi; i++ {
			body(c, i)
		}
	}
	rec(c, 0, n)
	c.Sync()
}

// Update applies f to the current view segment of r, creating an identity
// view lazily on the segment's first update.
func (c *Ctx) Update(r *Reducer, f func(view any) any) {
	if c.frame.cur == nil {
		c.frame.cur = make(map[*Reducer]any)
	}
	v, ok := c.frame.cur[r]
	if !ok {
		v = r.m.Identity()
	}
	c.frame.cur[r] = f(v)
}

// Value reads the task's current view after a Sync; meaningful at the
// root after all children joined (reading elsewhere is exactly the
// view-read race the Peer-Set algorithm exists to catch — and what the
// always-on guard flags when enabled).
func (c *Ctx) Value(r *Reducer) any {
	c.rt.flagViewRead(r, "get", len(c.frame.items))
	if c.frame.cur == nil {
		return r.m.Identity()
	}
	if v, ok := c.frame.cur[r]; ok {
		return v
	}
	return r.m.Identity()
}

// SetValue resets the task's current view.
func (c *Ctx) SetValue(r *Reducer, v any) {
	c.rt.flagViewRead(r, "set", len(c.frame.items))
	if c.frame.cur == nil {
		c.frame.cur = make(map[*Reducer]any)
	}
	c.frame.cur[r] = v
}

// NewReducer registers a reducer with initial value v in the calling
// task's view map.
func (c *Ctx) NewReducer(name string, m Monoid, v any) *Reducer {
	r := &Reducer{name: name, m: m}
	c.SetValue(r, v)
	return r
}
