package wsrt

import (
	"fmt"
	"sync/atomic"
	"testing"
	"testing/quick"
)

var sumMonoid = MonoidFuncs(
	func() any { return 0 },
	func(l, r any) any { return l.(int) + r.(int) },
)

var listMonoid = MonoidFuncs(
	func() any { return []int(nil) },
	func(l, r any) any { return append(l.([]int), r.([]int)...) },
)

var workerCounts = []int{1, 2, 4, 8}

func TestFibCorrect(t *testing.T) {
	var fib func(c *Ctx, n int, out *int64)
	fib = func(c *Ctx, n int, out *int64) {
		if n < 2 {
			atomic.AddInt64(out, int64(n))
			return
		}
		fib2 := func(m int) func(*Ctx) {
			return func(cc *Ctx) { fib(cc, m, out) }
		}
		c.Spawn(fib2(n - 1))
		fib(c, n-2, out)
		c.Sync()
	}
	for _, w := range workerCounts {
		var out int64
		New(w).Run(func(c *Ctx) { fib(c, 18, &out) })
		if out != 2584 {
			t.Fatalf("workers=%d: fib(18) accumulated %d, want 2584", w, out)
		}
	}
}

func TestReducerSumAcrossWorkers(t *testing.T) {
	for _, w := range workerCounts {
		var got int
		New(w).Run(func(c *Ctx) {
			r := c.NewReducer("sum", sumMonoid, 0)
			c.ParFor(1000, 16, func(cc *Ctx, i int) {
				cc.Update(r, func(v any) any { return v.(int) + i })
			})
			got = c.Value(r).(int)
		})
		if got != 499500 {
			t.Fatalf("workers=%d: sum = %d, want 499500", w, got)
		}
	}
}

func TestDeterministicAcrossWorkers(t *testing.T) {
	// The defining reducer property: a non-commutative (list) monoid
	// yields the serial-order result on every worker count, every run.
	want := make([]int, 300)
	for i := range want {
		want[i] = i
	}
	for _, w := range workerCounts {
		for trial := 0; trial < 3; trial++ {
			var got []int
			New(w).Run(func(c *Ctx) {
				r := c.NewReducer("list", listMonoid, []int(nil))
				c.ParFor(300, 7, func(cc *Ctx, i int) {
					cc.Update(r, func(v any) any { return append(v.([]int), i) })
				})
				got = c.Value(r).([]int)
			})
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("workers=%d trial=%d: list out of serial order", w, trial)
			}
		}
	}
}

func TestSegmentedParentUpdates(t *testing.T) {
	// Parent updates interleaved with spawns must stay in serial order:
	// a, (child b), c, (child d), e.
	for _, w := range workerCounts {
		var got []string
		New(w).Run(func(c *Ctx) {
			m := MonoidFuncs(
				func() any { return []string(nil) },
				func(l, r any) any { return append(l.([]string), r.([]string)...) },
			)
			r := c.NewReducer("tags", m, []string(nil))
			add := func(cc *Ctx, s string) {
				cc.Update(r, func(v any) any { return append(v.([]string), s) })
			}
			add(c, "a")
			c.Spawn(func(cc *Ctx) { add(cc, "b") })
			add(c, "c")
			c.Spawn(func(cc *Ctx) { add(cc, "d") })
			add(c, "e")
			c.Sync()
			got = c.Value(r).([]string)
		})
		if fmt.Sprint(got) != "[a b c d e]" {
			t.Fatalf("workers=%d: tags = %v, want [a b c d e]", w, got)
		}
	}
}

func TestNestedSyncBlocks(t *testing.T) {
	for _, w := range workerCounts {
		var got []int
		New(w).Run(func(c *Ctx) {
			r := c.NewReducer("list", listMonoid, []int(nil))
			for block := 0; block < 3; block++ {
				base := block * 10
				for i := 0; i < 4; i++ {
					v := base + i
					c.Spawn(func(cc *Ctx) {
						cc.Update(r, func(x any) any { return append(x.([]int), v) })
					})
				}
				c.Sync()
			}
			got = c.Value(r).([]int)
		})
		want := "[0 1 2 3 10 11 12 13 20 21 22 23]"
		if fmt.Sprint(got) != want {
			t.Fatalf("workers=%d: %v, want %v", w, got, want)
		}
	}
}

func TestStealsHappen(t *testing.T) {
	if testing.Short() {
		t.Skip("scheduling-dependent")
	}
	rt := New(4)
	rt.Run(func(c *Ctx) {
		r := c.NewReducer("sum", sumMonoid, 0)
		c.ParFor(2000, 1, func(cc *Ctx, i int) {
			cc.Update(r, func(v any) any { return v.(int) + 1 })
		})
	})
	if rt.Spawns() == 0 {
		t.Fatal("no spawns recorded")
	}
	// With GOMAXPROCS=1 steals may legitimately be zero; just exercise
	// the counters.
	t.Logf("spawns=%d steals=%d", rt.Spawns(), rt.Steals())
}

func TestQuickRandomTreesDeterministic(t *testing.T) {
	// Random spawn trees with list updates: result equals the 1-worker
	// result on every worker count.
	check := func(seed int64) bool {
		shape := func(s int64) []int {
			// derive a small tree shape from the seed
			var out []int
			x := uint64(s)
			for i := 0; i < 12; i++ {
				x ^= x << 13
				x ^= x >> 7
				x ^= x << 17
				out = append(out, int(x%4))
			}
			return out
		}(seed)
		run := func(workers int) []int {
			var got []int
			New(workers).Run(func(c *Ctx) {
				r := c.NewReducer("l", listMonoid, []int(nil))
				var build func(cc *Ctx, depth, id int)
				build = func(cc *Ctx, depth, id int) {
					cc.Update(r, func(v any) any { return v.([]int) })
					n := shape[(depth*5+id)%len(shape)]
					for i := 0; i < n; i++ {
						val := depth*100 + id*10 + i
						cc.Update(r, func(v any) any { return append(v.([]int), val) })
						if depth < 3 {
							i := i
							cc.Spawn(func(c3 *Ctx) { build(c3, depth+1, i) })
						}
					}
					cc.Sync()
				}
				build(c, 0, 0)
				got = c.Value(r).([]int)
			})
			return got
		}
		want := run(1)
		for _, w := range []int{2, 5} {
			if fmt.Sprint(run(w)) != fmt.Sprint(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestPanicPropagation(t *testing.T) {
	for _, w := range []int{1, 4} {
		rt := New(w)
		func() {
			defer func() {
				p := recover()
				if p == nil {
					t.Fatalf("workers=%d: panic must propagate to Run", w)
				}
				if s, ok := p.(string); !ok || s != "boom" {
					t.Fatalf("workers=%d: wrong panic value %v", w, p)
				}
			}()
			rt.Run(func(c *Ctx) {
				for i := 0; i < 8; i++ {
					i := i
					c.Spawn(func(cc *Ctx) {
						if i == 5 {
							panic("boom")
						}
					})
				}
				c.Sync()
			})
		}()
		// The runtime stays usable after a panicking run.
		var ok bool
		rt.Run(func(c *Ctx) { ok = true })
		if !ok {
			t.Fatalf("workers=%d: runtime unusable after panic", w)
		}
	}
}

func TestParForEdgeCases(t *testing.T) {
	rt := New(2)
	ran := 0
	rt.Run(func(c *Ctx) {
		c.ParFor(0, 4, func(*Ctx, int) { ran++ })
		c.ParFor(-5, 4, func(*Ctx, int) { ran++ })
		c.ParFor(3, -1, func(*Ctx, int) { ran++ }) // grain repaired to 1
	})
	if ran != 3 {
		t.Fatalf("ran = %d, want 3", ran)
	}
}

func TestValueOfUnknownReducer(t *testing.T) {
	rt := New(1)
	rt.Run(func(c *Ctx) {
		r := &Reducer{name: "detached", m: sumMonoid}
		if got := c.Value(r); got.(int) != 0 {
			t.Fatalf("unknown reducer reads identity, got %v", got)
		}
	})
}
