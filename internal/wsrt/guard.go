package wsrt

import (
	"fmt"
	"sync"
)

// The paper's conclusion (§10) floats an "always-on view-read race
// detection tool" as the payoff of a parallel Peer-Set — noting that the
// serial algorithm's last-reader shadow has no parallel counterpart. This
// guard is a deliberately simple realization of the always-on idea for
// the child-stealing runtime: it exploits a structural fact of wsrt's
// view management instead of tracking peers. A task's current view segment
// reflects exactly the updates made by this task since its last Spawn or
// Sync — nothing from outstanding children, nothing from sealed segments.
// Reading or resetting a reducer while the task has unjoined work is
// therefore reading a value that depends on where the runtime happened to
// cut the segments: the view-read races of §3, caught at runtime with an
// O(1) check per reducer-read and zero cost on updates.
//
// The check is sound for wsrt's semantics (every flagged read really can
// observe a segment-dependent value) and complete for reads within one
// task (a read with no unjoined work sees the full fold of everything the
// task synced). Cross-task protocol errors — reading in a spawned child a
// reducer the parent still updates — surface in the child itself, whose
// private view is empty until it updates, making such reads flag-worthy
// wherever they could differ from the serial value.

// ViewReadWarning records one flagged reducer-read.
type ViewReadWarning struct {
	Reducer string
	Op      string // "get" or "set"
	// Pending is the number of unjoined items (children and sealed
	// segments) at the read.
	Pending int
}

// String implements fmt.Stringer.
func (w ViewReadWarning) String() string {
	return fmt.Sprintf("view-read warning: %s of reducer %q with %d unjoined item(s) in scope",
		w.Op, w.Reducer, w.Pending)
}

// guard collects warnings across workers.
type guard struct {
	mu   sync.Mutex
	warn []ViewReadWarning
}

// EnableViewReadGuard turns on the always-on view-read checks for
// subsequent Runs on this runtime.
func (rt *Runtime) EnableViewReadGuard() *Runtime {
	rt.guard = &guard{}
	return rt
}

// ViewReadWarnings returns the warnings accumulated since the guard was
// enabled.
func (rt *Runtime) ViewReadWarnings() []ViewReadWarning {
	if rt.guard == nil {
		return nil
	}
	rt.guard.mu.Lock()
	defer rt.guard.mu.Unlock()
	out := make([]ViewReadWarning, len(rt.guard.warn))
	copy(out, rt.guard.warn)
	return out
}

func (rt *Runtime) flagViewRead(r *Reducer, op string, pending int) {
	if rt.guard == nil || pending == 0 {
		return
	}
	rt.guard.mu.Lock()
	rt.guard.warn = append(rt.guard.warn, ViewReadWarning{Reducer: r.name, Op: op, Pending: pending})
	rt.guard.mu.Unlock()
}
