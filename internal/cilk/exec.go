package cilk

import (
	"repro/internal/mem"
	"repro/internal/streamerr"
)

// Config selects the schedule and instrumentation for one run.
type Config struct {
	// Spec fixes the simulated schedule. nil means NoSteals: the plain
	// serial execution with only the leftmost view.
	Spec StealSpec
	// Hooks receives the instrumentation event stream. nil runs the
	// program with no instrumentation (the Figure 7 baseline).
	Hooks Hooks
	// EagerViews disables the runtime's lazy view creation: every
	// simulated steal immediately materializes identity views for all
	// registered reducers, instead of waiting for the first Update. The
	// paper's runtime is lazy (§1); this knob exists for the
	// BenchmarkAblationLazyViews comparison.
	EagerViews bool
}

// Result summarizes one run of a program.
type Result struct {
	Frames  int // Cilk function instantiations
	Spawns  int
	Syncs   int // explicit and implicit syncs executed
	Reduces int // reduce operations performed
	Views   int // parallel views created by simulated steals
	Steals  []ContInfo
	Loads   uint64
	Stores  uint64
	Reads   uint64 // reducer-reads (create, set-value, get-value)
	Updates uint64 // reducer Update operations
}

// Executor runs one program serially under one Config. A fresh Executor is
// required per run; Run is the usual entry point.
type Executor struct {
	spec     StealSpec
	order    ReduceOrder
	hooks    Hooks
	hasHooks bool

	nextFrame  FrameID
	nextView   ViewID
	contSeq    int
	reducers   []*Reducer
	viewAware  int
	eagerViews bool
	res        Result
}

// Run executes prog under cfg and returns the run summary.
func Run(prog func(*Ctx), cfg Config) *Result {
	ex := &Executor{spec: cfg.Spec, hooks: cfg.Hooks, eagerViews: cfg.EagerViews}
	if ex.spec == nil {
		ex.spec = NoSteals{}
	}
	ex.order = ex.spec.Order()
	ex.hasHooks = cfg.Hooks != nil

	root := ex.newFrame(nil, "main", false)
	root.slots0[0] = newViewSlot(0)
	root.slots = root.slots0[:1]
	if ex.hasHooks {
		ex.hooks.ProgramStart(root)
		ex.hooks.FrameEnter(root)
	}
	prog(&root.ctx)
	ex.exitFrame(root)
	if ex.hasHooks {
		ex.hooks.ProgramEnd(root)
	}
	res := ex.res
	return &res
}

func (ex *Executor) newFrame(parent *Frame, label string, spawned bool) *Frame {
	f := &Frame{
		ID:      ex.nextFrame,
		Parent:  parent,
		Label:   label,
		Spawned: spawned,
	}
	ex.nextFrame++
	ex.res.Frames++
	if parent != nil {
		f.Depth = parent.Depth + 1
		f.AncestorSpawns = parent.AncestorSpawns + parent.LocalSpawns
		f.slots0[0] = parent.top()
		f.slots = f.slots0[:1]
	}
	f.ctx = Ctx{ex: ex, frame: f}
	return f
}

// exitFrame performs the implicit sync of a returning Cilk function and
// emits FrameReturn. Every function that spawned must sync before it
// returns (§2); functions that never spawned return as a single strand.
func (ex *Executor) exitFrame(f *Frame) {
	if f.everSpawned {
		ex.syncFrame(f)
	}
	if len(f.slots) != 1 {
		panic(streamerr.Errorf("cilk", streamerr.KindState,
			"frame %v returning with %d unreduced views", f, len(f.slots)-1).WithFrame(int64(f.ID)))
	}
	if f.Parent != nil && ex.hasHooks {
		ex.hooks.FrameReturn(f, f.Parent)
	}
}

// syncFrame executes a cilk_sync in f: it forces every outstanding reduce
// operation of the sync block (view invariant 3), then emits the Sync event
// and opens the next sync block.
func (ex *Executor) syncFrame(f *Frame) {
	if ex.viewAware > 0 {
		panic(streamerr.Errorf("cilk", streamerr.KindState,
			"sync inside a view-aware operation").WithFrame(int64(f.ID)))
	}
	if ex.order == ReduceMiddleFirst && len(f.slots) >= 3 {
		ex.reducePairAt(f, 1)
	}
	for len(f.slots) > 1 {
		ex.reducePairAt(f, len(f.slots)-2)
	}
	f.SyncBlock++
	f.LocalSpawns = 0
	ex.res.Syncs++
	if ex.hasHooks {
		ex.hooks.Sync(f)
	}
}

// reducePairAt reduces the adjacent pair of views slots[i] (dominating,
// surviving) and slots[i+1] (dominated, destroyed). The ReduceStart event
// precedes the user Reduce code so the SP+ P-bag union happens first (§6).
func (ex *Executor) reducePairAt(f *Frame, i int) {
	keep, die := f.slots[i], f.slots[i+1]
	if ex.hasHooks {
		ex.hooks.ReduceStart(f, keep.vid, die.vid)
	}
	for _, r := range die.order {
		rv := die.views[r]
		if lv, ok := keep.get(r); ok {
			ex.beginViewAware(f, OpReduce, r)
			nv := r.m.Combine(&f.ctx, lv, rv)
			ex.endViewAware(f, OpReduce, r)
			keep.set(r, nv)
		} else {
			// The dominating context never touched this reducer; the
			// dominated view transfers wholesale, no user code runs.
			keep.set(r, rv)
		}
	}
	f.slots = append(f.slots[:i+1], f.slots[i+2:]...)
	ex.res.Reduces++
	if ex.hasHooks {
		ex.hooks.ReduceEnd(f)
	}
}

func (ex *Executor) beginViewAware(f *Frame, op ViewOp, r *Reducer) {
	ex.viewAware++
	if ex.hasHooks {
		ex.hooks.ViewAwareBegin(f, op, r)
	}
}

func (ex *Executor) endViewAware(f *Frame, op ViewOp, r *Reducer) {
	if ex.hasHooks {
		ex.hooks.ViewAwareEnd(f, op, r)
	}
	ex.viewAware--
}

// Ctx is the handle a Cilk function uses to spawn, sync, access
// instrumented memory and operate on reducers. Each frame has its own Ctx;
// user code receives it as the first argument of every Cilk function body.
type Ctx struct {
	ex    *Executor
	frame *Frame
}

// Frame returns the Cilk function instantiation this context belongs to.
func (c *Ctx) Frame() *Frame { return c.frame }

// Spawn executes body as a spawned child Cilk function (cilk_spawn). The
// serial executor runs the child to completion and then evaluates whether
// the steal specification steals the continuation; if so a fresh identity
// view context begins (view invariant 2).
func (c *Ctx) Spawn(label string, body func(*Ctx)) {
	ex := c.ex
	if ex.viewAware > 0 {
		panic(streamerr.Errorf("cilk", streamerr.KindState,
			"spawn inside a view-aware operation").WithFrame(int64(c.frame.ID)))
	}
	f := c.frame
	f.LocalSpawns++
	f.TotalSpawns++
	f.everSpawned = true
	ex.res.Spawns++

	child := ex.newFrame(f, label, true)
	if ex.hasHooks {
		ex.hooks.FrameEnter(child)
	}
	body(&child.ctx)
	ex.exitFrame(child)

	ex.contSeq++
	ci := ContInfo{
		Frame:     f,
		Label:     f.Label,
		Depth:     f.Depth,
		SyncBlock: f.SyncBlock,
		Index:     f.LocalSpawns,
		Seq:       ex.contSeq,
		PDepth:    f.AncestorSpawns + f.LocalSpawns,
	}

	if ex.spec.ShouldSteal(ci) {
		ex.nextView++
		ns := newViewSlot(ex.nextView)
		f.slots = append(f.slots, ns)
		ex.res.Views++
		ex.res.Steals = append(ex.res.Steals, ci)
		if ex.hasHooks {
			ex.hooks.ContinuationStolen(f, ns.vid)
		}
		if ex.eagerViews {
			for _, r := range ex.reducers {
				f.ctx.createIdentity(r, ns)
			}
		}
	}

	// Reduction scheduling. A view may be reduced only once no live strand
	// will use it again, so mid-execution reductions always exclude the
	// top view — the continuation now executing (stolen or not) holds it.
	// Views strictly below the top are complete in serial order, so
	// collapsing them corresponds to a real schedule in which their
	// subcomputations joined. A ReduceScheduler spec dictates exactly how
	// many pairs to collapse; the eager policy collapses all of them, as
	// the stock runtime's opportunistic reduction would.
	if rs, ok := ex.spec.(ReduceScheduler); ok {
		for n := rs.ReducesAfterReturn(ci); n > 0 && len(f.slots) > 2; n-- {
			ex.reducePairAt(f, len(f.slots)-3)
		}
	} else if ex.order == ReduceEager {
		for len(f.slots) > 2 {
			ex.reducePairAt(f, len(f.slots)-3)
		}
	}
}

// Call executes body as a called (not spawned) child Cilk function.
func (c *Ctx) Call(label string, body func(*Ctx)) {
	ex := c.ex
	if ex.viewAware > 0 {
		panic(streamerr.Errorf("cilk", streamerr.KindState,
			"call inside a view-aware operation").WithFrame(int64(c.frame.ID)))
	}
	child := ex.newFrame(c.frame, label, false)
	if ex.hasHooks {
		ex.hooks.FrameEnter(child)
	}
	body(&child.ctx)
	ex.exitFrame(child)
}

// Sync executes a cilk_sync: all previously spawned children of this frame
// have returned (trivially true in serial order) and all parallel views of
// the sync block are reduced.
func (c *Ctx) Sync() {
	c.ex.syncFrame(c.frame)
}

// ParFor executes body(i) for i in [0, n) as a cilk_for with automatic
// grain size, expanding to the standard divide-and-conquer spawn tree.
func (c *Ctx) ParFor(label string, n int, body func(*Ctx, int)) {
	grain := n / 256
	if grain < 1 {
		grain = 1
	}
	c.ParForGrain(label, n, grain, body)
}

// ParForGrain is ParFor with an explicit grain size: leaves of the spawn
// tree execute up to grain consecutive iterations serially.
func (c *Ctx) ParForGrain(label string, n, grain int, body func(*Ctx, int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	c.Call(label, func(cc *Ctx) {
		parforRec(cc, label, 0, n, grain, body)
	})
}

func parforRec(c *Ctx, label string, lo, hi, grain int, body func(*Ctx, int)) {
	if hi-lo <= grain {
		for i := lo; i < hi; i++ {
			body(c, i)
		}
		return
	}
	mid := lo + (hi-lo)/2
	c.Spawn(label, func(cc *Ctx) {
		parforRec(cc, label, lo, mid, grain, body)
	})
	c.Call(label, func(cc *Ctx) {
		parforRec(cc, label, mid, hi, grain, body)
	})
	c.Sync()
}

// Load reports a read of address a by the currently executing strand.
func (c *Ctx) Load(a mem.Addr) {
	c.ex.res.Loads++
	if c.ex.hasHooks {
		c.ex.hooks.Load(c.frame, a)
	}
}

// Store reports a write of address a by the currently executing strand.
func (c *Ctx) Store(a mem.Addr) {
	c.ex.res.Stores++
	if c.ex.hasHooks {
		c.ex.hooks.Store(c.frame, a)
	}
}

// LoadRange reports reads of n consecutive addresses starting at a.
func (c *Ctx) LoadRange(a mem.Addr, n int) {
	for i := 0; i < n; i++ {
		c.Load(a + mem.Addr(i))
	}
}

// StoreRange reports writes of n consecutive addresses starting at a.
func (c *Ctx) StoreRange(a mem.Addr, n int) {
	for i := 0; i < n; i++ {
		c.Store(a + mem.Addr(i))
	}
}

// NewReducer declares a reducer hyperobject with the given monoid and
// initial (leftmost-view) value. Declaring a reducer is a reducer-read in
// the paper's sense, as is SetValue and Value; only Update and the
// runtime-invoked Create-Identity and Reduce operate on views.
func (c *Ctx) NewReducer(name string, m Monoid, initial any) *Reducer {
	r := c.NewReducerQuiet(name, m, initial)
	c.ex.res.Reads++
	if c.ex.hasHooks {
		c.ex.hooks.ReducerCreate(c.frame, r)
	}
	return r
}

// NewReducerQuiet declares a reducer without emitting the ReducerCreate
// (reducer-read) event, modeling a reducer constructed outside the measured
// computation — for instance a global reducer built before the Cilk region
// starts. Test fixtures use it to probe specific reducer-read pairs without
// the construction read participating.
func (c *Ctx) NewReducerQuiet(name string, m Monoid, initial any) *Reducer {
	ex := c.ex
	r := &Reducer{Name: name, m: m, idx: len(ex.reducers)}
	ex.reducers = append(ex.reducers, r)
	c.frame.top().set(r, initial)
	return r
}

// SetValue resets the reducer's current view to v (a reducer-read).
func (c *Ctx) SetValue(r *Reducer, v any) {
	c.ex.res.Reads++
	if c.ex.hasHooks {
		c.ex.hooks.ReducerRead(c.frame, r)
	}
	c.frame.top().set(r, v)
}

// Value retrieves the reducer's current view (a reducer-read, the paper's
// get_value). If the current view context has no view yet — which is
// exactly the situation where the retrieved value is schedule-dependent —
// an identity view materializes first.
func (c *Ctx) Value(r *Reducer) any {
	ex := c.ex
	ex.res.Reads++
	if ex.hasHooks {
		ex.hooks.ReducerRead(c.frame, r)
	}
	slot := c.frame.top()
	v, ok := slot.get(r)
	if !ok {
		v = c.createIdentity(r, slot)
	}
	return v
}

// Update applies body to the reducer's current view and stores the result
// back. If the current view context has no view for r — the first Update
// after a simulated steal — Create-Identity runs first, lazily, exactly as
// the runtime does (§2).
func (c *Ctx) Update(r *Reducer, body func(c *Ctx, view any) any) {
	ex := c.ex
	ex.res.Updates++
	slot := c.frame.top()
	v, ok := slot.get(r)
	if !ok {
		v = c.createIdentity(r, slot)
	}
	ex.beginViewAware(c.frame, OpUpdate, r)
	nv := body(c, v)
	ex.endViewAware(c.frame, OpUpdate, r)
	slot.set(r, nv)
}

func (c *Ctx) createIdentity(r *Reducer, slot *viewSlot) any {
	c.ex.beginViewAware(c.frame, OpCreateIdentity, r)
	v := r.m.Identity(c)
	c.ex.endViewAware(c.frame, OpCreateIdentity, r)
	slot.set(r, v)
	return v
}

// CurrentVID returns the view ID of the currently executing strand's view
// context, mainly for tests and the DAG recorder.
func (c *Ctx) CurrentVID() ViewID { return c.frame.CurrentVID() }
