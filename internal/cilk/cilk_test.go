package cilk

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

// sumMonoid is an integer addition monoid for tests.
var sumMonoid = MonoidFuncs(
	func(*Ctx) any { return 0 },
	func(_ *Ctx, l, r any) any { return l.(int) + r.(int) },
)

// listMonoid concatenates []int views, preserving serial order.
var listMonoid = MonoidFuncs(
	func(*Ctx) any { return []int(nil) },
	func(_ *Ctx, l, r any) any { return append(l.([]int), r.([]int)...) },
)

func TestSerialOrderDepthFirst(t *testing.T) {
	var trace []string
	prog := func(c *Ctx) {
		trace = append(trace, "a1")
		c.Spawn("f", func(c *Ctx) { trace = append(trace, "f") })
		trace = append(trace, "a2")
		c.Spawn("g", func(c *Ctx) { trace = append(trace, "g") })
		trace = append(trace, "a3")
		c.Sync()
		trace = append(trace, "a4")
	}
	Run(prog, Config{})
	want := "a1 f a2 g a3 a4"
	if got := strings.Join(trace, " "); got != want {
		t.Fatalf("serial order = %q, want %q", got, want)
	}
}

func TestResultCounts(t *testing.T) {
	res := Run(func(c *Ctx) {
		c.Spawn("f", func(c *Ctx) {})
		c.Spawn("g", func(c *Ctx) {
			c.Spawn("h", func(c *Ctx) {})
			c.Sync()
		})
		c.Sync()
	}, Config{})
	if res.Frames != 4 { // main, f, g, h
		t.Fatalf("frames = %d, want 4", res.Frames)
	}
	if res.Spawns != 3 {
		t.Fatalf("spawns = %d, want 3", res.Spawns)
	}
	// g syncs explicitly (counted once; implicit skipped only when block clean):
	// g: explicit sync + implicit sync at return; main: explicit + implicit.
	if res.Syncs < 2 {
		t.Fatalf("syncs = %d, want >= 2", res.Syncs)
	}
}

func TestReducerSerialNoSteals(t *testing.T) {
	var got int
	Run(func(c *Ctx) {
		r := c.NewReducer("sum", sumMonoid, 0)
		for i := 1; i <= 4; i++ {
			i := i
			c.Spawn("add", func(c *Ctx) {
				c.Update(r, func(_ *Ctx, v any) any { return v.(int) + i })
			})
		}
		c.Sync()
		got = c.Value(r).(int)
	}, Config{})
	if got != 10 {
		t.Fatalf("sum = %d, want 10", got)
	}
}

func TestReducerDeterministicAcrossSpecs(t *testing.T) {
	// The defining property of a reducer with an associative monoid: the
	// retrieved value after sync is schedule-independent. List concat is
	// associative but NOT commutative, so this also checks that reduces
	// run in the correct (serial) order: left view ⊗ right view.
	prog := func(want *[]int) func(*Ctx) {
		return func(c *Ctx) {
			r := c.NewReducer("list", listMonoid, []int(nil))
			for i := 0; i < 9; i++ {
				i := i
				c.Spawn("app", func(c *Ctx) {
					c.Update(r, func(_ *Ctx, v any) any { return append(v.([]int), i) })
				})
			}
			c.Sync()
			*want = c.Value(r).([]int)
		}
	}
	var serial []int
	Run(prog(&serial), Config{})
	if fmt.Sprint(serial) != "[0 1 2 3 4 5 6 7 8]" {
		t.Fatalf("serial = %v", serial)
	}
	specs := []StealSpec{
		StealAll{Reduce: ReduceAtSync},
		StealAll{Reduce: ReduceEager},
		StealAll{Reduce: ReduceMiddleFirst},
	}
	for _, spec := range specs {
		var got []int
		Run(prog(&got), Config{Spec: spec})
		if fmt.Sprint(got) != fmt.Sprint(serial) {
			t.Errorf("spec %#v: got %v, want %v", spec, got, serial)
		}
	}
}

// randomSpec steals each continuation with probability p, deterministically
// from a seed, to drive the quick-check determinism property.
type randomSpec struct {
	seed  int64
	p     float64
	order ReduceOrder
}

func (s randomSpec) ShouldSteal(ci ContInfo) bool {
	// Hash seq with the seed for a stable pseudo-random decision.
	h := uint64(ci.Seq)*0x9e3779b97f4a7c15 + uint64(s.seed)
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return float64(h%1000)/1000 < s.p
}

func (s randomSpec) Order() ReduceOrder { return s.order }

func TestQuickReducerDeterminism(t *testing.T) {
	// Random programs (random spawn trees with list-reducer updates) must
	// produce the identical, serial-order list under every schedule.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		depthBudget := 4
		var build func(c *Ctx, r *Reducer, prefix string, budget int)
		build = func(c *Ctx, r *Reducer, prefix string, budget int) {
			n := rng.Intn(4)
			for i := 0; i < n; i++ {
				i := i
				val := len(prefix)*10 + i
				if budget > 0 && rng.Intn(2) == 0 {
					c.Spawn("s", func(cc *Ctx) {
						cc.Update(r, func(_ *Ctx, v any) any { return append(v.([]int), val) })
						build(cc, r, prefix+"s", budget-1)
					})
				} else {
					c.Update(r, func(_ *Ctx, v any) any { return append(v.([]int), val) })
				}
				if rng.Intn(4) == 0 {
					c.Sync()
				}
			}
			c.Sync()
		}
		run := func(spec StealSpec) []int {
			rng = rand.New(rand.NewSource(seed)) // rebuild the same program
			var out []int
			Run(func(c *Ctx) {
				r := c.NewReducer("l", listMonoid, []int(nil))
				build(c, r, "", depthBudget)
				out = c.Value(r).([]int)
			}, Config{Spec: spec})
			return out
		}
		want := run(NoSteals{})
		for _, spec := range []StealSpec{
			StealAll{Reduce: ReduceAtSync},
			StealAll{Reduce: ReduceEager},
			randomSpec{seed: seed, p: 0.5, order: ReduceAtSync},
			randomSpec{seed: seed + 1, p: 0.3, order: ReduceMiddleFirst},
			randomSpec{seed: seed + 2, p: 0.7, order: ReduceEager},
		} {
			if fmt.Sprint(run(spec)) != fmt.Sprint(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestViewCreatedOnlyOnSteal(t *testing.T) {
	// With no steals there is exactly one view; with a steal the
	// continuation sees a fresh identity view.
	var contView int
	prog := func(c *Ctx) {
		r := c.NewReducer("sum", sumMonoid, 100)
		c.Spawn("f", func(c *Ctx) {
			c.Update(r, func(_ *Ctx, v any) any { return v.(int) + 1 })
		})
		// continuation: observe the view Update sees
		c.Update(r, func(_ *Ctx, v any) any { contView = v.(int); return v })
		c.Sync()
	}
	Run(prog, Config{})
	if contView != 101 {
		t.Fatalf("unstolen continuation saw view %d, want 101 (shared view)", contView)
	}
	Run(prog, Config{Spec: StealAll{}})
	if contView != 0 {
		t.Fatalf("stolen continuation saw view %d, want 0 (identity view)", contView)
	}
}

func TestViewInvariant3SyncRestoresView(t *testing.T) {
	// After a sync, the view is the same as the function's first strand's
	// view, with all updates folded in.
	var after int
	Run(func(c *Ctx) {
		r := c.NewReducer("sum", sumMonoid, 5)
		c.Spawn("f", func(c *Ctx) {
			c.Update(r, func(_ *Ctx, v any) any { return v.(int) + 10 })
		})
		c.Update(r, func(_ *Ctx, v any) any { return v.(int) + 100 }) // stolen continuation
		c.Sync()
		after = c.Value(r).(int)
	}, Config{Spec: StealAll{}})
	if after != 115 {
		t.Fatalf("after sync = %d, want 115", after)
	}
}

func TestStealsRecorded(t *testing.T) {
	res := Run(func(c *Ctx) {
		for i := 0; i < 3; i++ {
			c.Spawn("f", func(c *Ctx) {})
		}
		c.Sync()
	}, Config{Spec: StealAll{}})
	if len(res.Steals) != 3 {
		t.Fatalf("steals = %d, want 3", len(res.Steals))
	}
	if res.Views != 3 {
		t.Fatalf("views = %d, want 3", res.Views)
	}
	if res.Reduces != 3 {
		t.Fatalf("reduces = %d, want 3", res.Reduces)
	}
	if res.Steals[0].Index != 1 || res.Steals[2].Index != 3 {
		t.Fatalf("continuation indices wrong: %v", res.Steals)
	}
}

func TestParForCoversAllIterations(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 100} {
		seen := make([]bool, n)
		Run(func(c *Ctx) {
			c.ParForGrain("loop", n, 3, func(_ *Ctx, i int) {
				if seen[i] {
					t.Fatalf("n=%d: iteration %d executed twice", n, i)
				}
				seen[i] = true
			})
		}, Config{Spec: StealAll{}})
		for i, ok := range seen {
			if !ok {
				t.Fatalf("n=%d: iteration %d never executed", n, i)
			}
		}
	}
}

func TestParForSerialOrder(t *testing.T) {
	var order []int
	Run(func(c *Ctx) {
		c.ParForGrain("loop", 10, 2, func(_ *Ctx, i int) { order = append(order, i) })
	}, Config{})
	for i, v := range order {
		if v != i {
			t.Fatalf("serial execution of ParFor out of order: %v", order)
		}
	}
}

func TestSpawnInsideUpdatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("spawn inside Update must panic")
		}
	}()
	Run(func(c *Ctx) {
		r := c.NewReducer("x", sumMonoid, 0)
		c.Update(r, func(c *Ctx, v any) any {
			c.Spawn("bad", func(*Ctx) {})
			return v
		})
	}, Config{})
}

// hookCounter counts events to validate the event contract.
type hookCounter struct {
	Empty
	enters, returns, syncs, steals, reduceStarts, reduceEnds int
	vaBegin, vaEnd                                           int
	creates, reads, loads, stores                            int
	maxViewDepth                                             int
	viewDepth                                                int
}

func (h *hookCounter) FrameEnter(*Frame)                  { h.enters++ }
func (h *hookCounter) FrameReturn(*Frame, *Frame)         { h.returns++ }
func (h *hookCounter) Sync(*Frame)                        { h.syncs++ }
func (h *hookCounter) ContinuationStolen(*Frame, ViewID)  { h.steals++ }
func (h *hookCounter) ReduceStart(*Frame, ViewID, ViewID) { h.reduceStarts++ }
func (h *hookCounter) ReduceEnd(*Frame)                   { h.reduceEnds++ }
func (h *hookCounter) ViewAwareBegin(*Frame, ViewOp, *Reducer) {
	h.vaBegin++
	h.viewDepth++
	if h.viewDepth > h.maxViewDepth {
		h.maxViewDepth = h.viewDepth
	}
}
func (h *hookCounter) ViewAwareEnd(*Frame, ViewOp, *Reducer) { h.vaEnd++; h.viewDepth-- }
func (h *hookCounter) ReducerCreate(*Frame, *Reducer)        { h.creates++ }
func (h *hookCounter) ReducerRead(*Frame, *Reducer)          { h.reads++ }
func (h *hookCounter) Load(*Frame, mem.Addr)                 { h.loads++ }
func (h *hookCounter) Store(*Frame, mem.Addr)                { h.stores++ }

func TestHookEventContract(t *testing.T) {
	h := &hookCounter{}
	al := mem.NewAllocator()
	reg := al.Alloc("xs", 8)
	Run(func(c *Ctx) {
		r := c.NewReducer("sum", sumMonoid, 0)
		for i := 0; i < 4; i++ {
			i := i
			c.Spawn("f", func(c *Ctx) {
				c.Load(reg.At(i))
				c.Store(reg.At(i))
				c.Update(r, func(_ *Ctx, v any) any { return v.(int) + 1 })
			})
		}
		c.Sync()
		_ = c.Value(r)
	}, Config{Spec: StealAll{}, Hooks: h})
	if h.enters != 5 { // main + 4 children
		t.Fatalf("enters = %d, want 5", h.enters)
	}
	if h.returns != 4 { // root emits no FrameReturn
		t.Fatalf("returns = %d, want 4", h.returns)
	}
	if h.steals != 4 {
		t.Fatalf("steals = %d, want 4", h.steals)
	}
	if h.reduceStarts != 4 || h.reduceEnds != 4 {
		t.Fatalf("reduces = %d/%d, want 4/4", h.reduceStarts, h.reduceEnds)
	}
	if h.vaBegin != h.vaEnd {
		t.Fatalf("view-aware begin/end mismatch: %d vs %d", h.vaBegin, h.vaEnd)
	}
	// 4 updates; children 2..4 run after a steal so need Create-Identity
	// (3 of them); value-read after sync needs none (view present);
	// 3 reduces run user code (the 4th transfers into... actually every
	// dying slot has a view, and the keep slot always has one: 4 Combine
	// calls minus those where keep lacks the view).
	if h.maxViewDepth != 1 {
		t.Fatalf("view-aware sections must not nest here: depth %d", h.maxViewDepth)
	}
	if h.creates != 1 || h.reads != 1 {
		t.Fatalf("creates/reads = %d/%d, want 1/1", h.creates, h.reads)
	}
	if h.loads != 4 || h.stores != 4 {
		t.Fatalf("loads/stores = %d/%d, want 4/4", h.loads, h.stores)
	}
}

func TestMultiHooksFanOut(t *testing.T) {
	a, b := &hookCounter{}, &hookCounter{}
	Run(func(c *Ctx) {
		c.Spawn("f", func(*Ctx) {})
		c.Sync()
	}, Config{Hooks: Multi{a, b}})
	if a.enters != b.enters || a.enters != 2 {
		t.Fatalf("multi hooks diverge: %d vs %d", a.enters, b.enters)
	}
}

func TestFrameMetadata(t *testing.T) {
	Run(func(c *Ctx) {
		if c.Frame().Depth != 0 || c.Frame().Label != "main" {
			t.Fatal("root frame metadata wrong")
		}
		c.Spawn("child", func(cc *Ctx) {
			f := cc.Frame()
			if f.Depth != 1 || !f.Spawned || f.Parent != c.Frame() {
				t.Fatalf("child frame metadata wrong: %+v", f)
			}
		})
		c.Call("callee", func(cc *Ctx) {
			if cc.Frame().Spawned {
				t.Fatal("called frame must not be marked spawned")
			}
		})
		c.Sync()
	}, Config{})
}

func TestValueAfterStealMaterializesIdentity(t *testing.T) {
	var v any
	Run(func(c *Ctx) {
		r := c.NewReducer("sum", sumMonoid, 42)
		c.Spawn("f", func(*Ctx) {})
		v = c.Value(r) // stolen continuation: a view-read race in real code
		c.Sync()
	}, Config{Spec: StealAll{}})
	if v.(int) != 0 {
		t.Fatalf("value in stolen continuation = %v, want identity 0", v)
	}
}

func TestUninstrumentedRunHasNoHookOverheadPath(t *testing.T) {
	// Smoke test: a run with nil hooks must not panic on any code path
	// that would dereference hooks.
	res := Run(func(c *Ctx) {
		r := c.NewReducer("s", sumMonoid, 0)
		c.ParFor("loop", 100, func(cc *Ctx, i int) {
			cc.Update(r, func(_ *Ctx, v any) any { return v.(int) + i })
		})
		if got := c.Value(r).(int); got != 4950 {
			t.Fatalf("sum = %d, want 4950", got)
		}
	}, Config{Spec: StealAll{}})
	if res.Views == 0 || res.Reduces == 0 {
		t.Fatal("expected steals and reduces under StealAll")
	}
}
