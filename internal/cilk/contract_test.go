package cilk

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/mem"
)

// eventLog records every hook invocation as one line, pinning the
// executor's event contract: detectors are written against exactly this
// ordering, so any change to it must show up here first.
type eventLog struct {
	lines []string
}

func (l *eventLog) add(format string, args ...any) {
	l.lines = append(l.lines, fmt.Sprintf(format, args...))
}

func (l *eventLog) ProgramStart(f *Frame)   { l.add("program-start") }
func (l *eventLog) ProgramEnd(f *Frame)     { l.add("program-end") }
func (l *eventLog) FrameEnter(f *Frame)     { l.add("enter %s spawned=%v", f, f.Spawned) }
func (l *eventLog) FrameReturn(g, f *Frame) { l.add("return %s -> %s", g, f) }
func (l *eventLog) Sync(f *Frame)           { l.add("sync %s", f) }
func (l *eventLog) ContinuationStolen(f *Frame, v ViewID) {
	l.add("stolen %s vid=%d", f, v)
}
func (l *eventLog) ReduceStart(f *Frame, k, d ViewID) { l.add("reduce %s keep=%d die=%d", f, k, d) }
func (l *eventLog) ReduceEnd(f *Frame)                { l.add("reduce-end %s", f) }
func (l *eventLog) ViewAwareBegin(f *Frame, op ViewOp, r *Reducer) {
	l.add("va-begin %s %v %s", f, op, r.Name)
}
func (l *eventLog) ViewAwareEnd(f *Frame, op ViewOp, r *Reducer) {
	l.add("va-end %s %v %s", f, op, r.Name)
}
func (l *eventLog) ReducerCreate(f *Frame, r *Reducer) { l.add("create %s %s", f, r.Name) }
func (l *eventLog) ReducerRead(f *Frame, r *Reducer)   { l.add("read %s %s", f, r.Name) }
func (l *eventLog) Load(f *Frame, a mem.Addr)          { l.add("load %s %d", f, a) }
func (l *eventLog) Store(f *Frame, a mem.Addr)         { l.add("store %s %d", f, a) }

// TestEventContractGolden runs a small program with one steal and pins the
// exact event sequence the executor emits.
func TestEventContractGolden(t *testing.T) {
	log := &eventLog{}
	prog := func(c *Ctx) {
		r := c.NewReducer("h", sumMonoid, 0)
		c.Load(100)
		c.Spawn("child", func(cc *Ctx) {
			cc.Update(r, func(_ *Ctx, v any) any { return v.(int) + 1 })
			cc.Store(200)
		})
		c.Update(r, func(_ *Ctx, v any) any { return v.(int) + 2 }) // stolen ctx: create-identity first
		c.Sync()
		_ = c.Value(r)
	}
	Run(prog, Config{Spec: StealAll{}, Hooks: log})
	want := strings.TrimSpace(`
program-start
enter main#0 spawned=false
create main#0 h
load main#0 100
enter child#1 spawned=true
va-begin child#1 Update h
va-end child#1 Update h
store child#1 200
return child#1 -> main#0
stolen main#0 vid=1
va-begin main#0 Create-Identity h
va-end main#0 Create-Identity h
va-begin main#0 Update h
va-end main#0 Update h
reduce main#0 keep=0 die=1
va-begin main#0 Reduce h
va-end main#0 Reduce h
reduce-end main#0
sync main#0
read main#0 h
sync main#0
program-end`)
	got := strings.Join(log.lines, "\n")
	if got != want {
		t.Fatalf("event contract changed:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestEventContractFig5 pins the Figure 5 schedule's reduce-tree events.
func TestEventContractFig5(t *testing.T) {
	log := &eventLog{}
	// A minimal 3-spawn frame under a steal-everything schedule with
	// middle-first reduction: reduces fire as (v1,v2) then right-to-left.
	Run(func(c *Ctx) {
		r := c.NewReducer("h", sumMonoid, 0)
		for i := 0; i < 3; i++ {
			c.Spawn("f", func(cc *Ctx) {
				cc.Update(r, func(_ *Ctx, v any) any { return v.(int) + 1 })
			})
		}
		c.Sync()
	}, Config{Spec: StealAll{Reduce: ReduceMiddleFirst}, Hooks: log})
	var reduces []string
	for _, l := range log.lines {
		if strings.HasPrefix(l, "reduce main") {
			reduces = append(reduces, l)
		}
	}
	want := []string{
		"reduce main#0 keep=1 die=2", // middle pair first
		"reduce main#0 keep=1 die=3", // then right-to-left
		"reduce main#0 keep=0 die=1",
	}
	if fmt.Sprint(reduces) != fmt.Sprint(want) {
		t.Fatalf("reduce order = %v, want %v", reduces, want)
	}
}
