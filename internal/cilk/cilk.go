// Package cilk implements the Cilk-style fork-join execution model that the
// paper's race-detection algorithms operate on.
//
// A Cilk program is expressed as Go code against a *Ctx: Spawn and Sync
// mirror cilk_spawn and cilk_sync, Call is an ordinary invocation of a Cilk
// function, and ParFor mirrors cilk_for via the usual divide-and-conquer
// expansion. The Executor runs the program serially in its depth-first
// serial order — exactly the order the Peer-Set, SP-bags and SP+ algorithms
// evaluate strands in — while emitting the event stream that Rader obtains
// from compiler instrumentation: frame entry and return, syncs, stolen
// continuations, reducer reads, view-aware sections (Update,
// Create-Identity, Reduce), and memory loads and stores.
//
// Steals do not happen physically; they are simulated according to a steal
// specification (the paper's §5 input to SP+), which fixes the schedule:
// which continuations are stolen, and in which order views are reduced. The
// executor maintains reducer views according to the three view invariants
// of §5:
//
//  1. a strand with out-degree 1 passes its view to its successor;
//  2. a spawned child inherits the spawning strand's view, while the
//     continuation gets a fresh identity view iff it is stolen;
//  3. a sync strand sees the view of the first strand of its function,
//     which the executor guarantees by reducing every parallel view created
//     in the sync block before the sync, destroying the dominated view of
//     each adjacent pair.
package cilk

import "fmt"

// FrameID uniquely identifies one Cilk function instantiation within a run.
// IDs are assigned in frame-entry (serial) order; the root frame has ID 0.
type FrameID int32

// NoFrame is the sentinel for "no frame", used by shadow spaces.
const NoFrame FrameID = -1

// ViewID identifies one reducer view within a run. The root (leftmost) view
// context has ViewID 0; each simulated steal mints a fresh ViewID.
type ViewID int64

// ViewOp classifies a view-aware section.
type ViewOp int

// The three view-aware operations of a reducer (§5).
const (
	OpUpdate ViewOp = iota
	OpCreateIdentity
	OpReduce
)

// String implements fmt.Stringer.
func (op ViewOp) String() string {
	switch op {
	case OpUpdate:
		return "Update"
	case OpCreateIdentity:
		return "Create-Identity"
	case OpReduce:
		return "Reduce"
	default:
		return fmt.Sprintf("ViewOp(%d)", int(op))
	}
}

// Frame is one Cilk function instantiation. The executor exposes frames to
// hooks; detectors treat them as read-only.
type Frame struct {
	ID      FrameID
	Parent  *Frame
	Label   string // function name, for reports
	Spawned bool   // spawned (vs called) by its parent
	Depth   int    // nesting depth of Cilk functions; root is 0

	// SyncBlock is the index of the sync block currently executing in this
	// frame; it increments at each sync (explicit or implicit).
	SyncBlock int
	// LocalSpawns counts spawns since the frame's last sync — the paper's
	// local-spawn count ls, and also the 1-based index of the next
	// continuation within the current sync block.
	LocalSpawns int
	// TotalSpawns counts spawns over the frame's lifetime.
	TotalSpawns int
	// AncestorSpawns is the paper's ancestor-spawn count: the total
	// number of spawns each ancestor had performed since that ancestor's
	// last sync, frozen at this frame's entry (ancestors are suspended
	// while this frame runs). AncestorSpawns+LocalSpawns is the number of
	// P nodes on the root-to-here path of the SP parse tree — the
	// "continuation depth" the §7 update-eliciting specifications group
	// by.
	AncestorSpawns int

	everSpawned bool
	slots       []*viewSlot // view-slot stack; slots[0] is inherited
	slots0      [4]*viewSlot
	ctx         Ctx
}

// CurrentVID returns the view ID associated with the frame's currently
// executing strand.
func (f *Frame) CurrentVID() ViewID { return f.top().vid }

// PendingViews reports how many unreduced parallel views the frame's
// current sync block has created (the height of the view-slot stack above
// the inherited slot).
func (f *Frame) PendingViews() int { return len(f.slots) - 1 }

func (f *Frame) top() *viewSlot { return f.slots[len(f.slots)-1] }

// String implements fmt.Stringer.
func (f *Frame) String() string {
	if f == nil {
		return "<nil frame>"
	}
	return fmt.Sprintf("%s#%d", f.Label, f.ID)
}

// ContInfo describes one continuation point (the code after a cilk_spawn)
// that a steal specification may choose to steal.
type ContInfo struct {
	Frame     *Frame
	Label     string // the spawning frame's label
	Depth     int    // the spawning frame's Depth
	SyncBlock int    // sync block index within the frame
	Index     int    // 1-based continuation index within the sync block
	Seq       int    // global sequence number of this continuation in serial order
	// PDepth is the number of P nodes on the root-to-continuation path of
	// the SP parse tree (the frame's ancestor-spawn count plus its local
	// spawn count). Theorem 6's breadth-first specification family steals
	// all continuations of one PDepth per specification.
	PDepth int
}

// String renders the continuation's replay label, the identifier Rader
// reports so a racy schedule can be repeated for regression tests (§8).
func (ci ContInfo) String() string {
	return fmt.Sprintf("%s/b%d/c%d@%d", ci.Label, ci.SyncBlock, ci.Index, ci.Seq)
}

// ReduceOrder selects the order in which the executor performs the reduce
// operations that a sync block's simulated steals make necessary.
type ReduceOrder int

const (
	// ReduceAtSync performs all reductions immediately before the sync,
	// newest adjacent pair first (right-to-left). This is the "hold off on
	// a reduction" mode the paper's modified runtime uses (§8).
	ReduceAtSync ReduceOrder = iota
	// ReduceEager performs a reduction as soon as a spawned child returns
	// and two unreduced views are adjacent, mirroring the opportunistic
	// eager reduction of the stock Cilk runtime.
	ReduceEager
	// ReduceMiddleFirst reduces, at sync, the two oldest parallel views
	// first and then proceeds right-to-left. With steals at continuations
	// i<j<k this elicits the reduce strand combining views (i+1..j) and
	// (j+1..k) — the general adjacent-pair shape Theorem 7 counts.
	ReduceMiddleFirst
)

// StealSpec fixes the schedule the executor simulates: which continuations
// are stolen and in which order reductions run (§5's "steal specification").
type StealSpec interface {
	// ShouldSteal reports whether the continuation described by ci is
	// stolen in this schedule.
	ShouldSteal(ci ContInfo) bool
	// Order returns the reduce ordering policy for this schedule.
	Order() ReduceOrder
}

// ReduceScheduler is an optional extension of StealSpec: a spec that also
// implements it controls exactly when reductions run, by asking for a
// number of (top adjacent pair) reductions immediately after the spawned
// child at a given continuation returns. Remaining reductions are forced at
// the sync. This is how the paper's Figure 5 schedule — r0 reducing views α
// and β while γ and δ are still live — is expressed.
type ReduceScheduler interface {
	// ReducesAfterReturn reports how many adjacent-pair reductions to
	// perform right after the child whose continuation is ci returns (and
	// after ci's own steal decision). Reductions collapse the newest
	// reducible pair first and never touch the top view, whose
	// continuation is still live; the executor clamps to the number of
	// reducible pairs.
	ReducesAfterReturn(ci ContInfo) int
}

// NoSteals is the empty schedule: the serial execution, no views beyond the
// leftmost, no reduce operations.
type NoSteals struct{}

// ShouldSteal implements StealSpec: nothing is stolen.
func (NoSteals) ShouldSteal(ContInfo) bool { return false }

// Order implements StealSpec.
func (NoSteals) Order() ReduceOrder { return ReduceAtSync }

// StealAll steals every continuation, maximizing view churn.
type StealAll struct{ Reduce ReduceOrder }

// ShouldSteal implements StealSpec: everything is stolen.
func (StealAll) ShouldSteal(ContInfo) bool { return true }

// Order implements StealSpec.
func (s StealAll) Order() ReduceOrder { return s.Reduce }

// viewSlot holds, for one simulated steal (or for the leftmost context),
// the views of every reducer updated in that context. Slots are created
// empty; identity views materialize lazily on the first Update, mirroring
// the runtime optimization described in §1 and §2.
type viewSlot struct {
	vid   ViewID
	views map[*Reducer]any
	order []*Reducer // deterministic iteration order for reductions
}

func newViewSlot(vid ViewID) *viewSlot {
	return &viewSlot{vid: vid}
}

func (s *viewSlot) get(r *Reducer) (any, bool) {
	if s.views == nil {
		return nil, false
	}
	v, ok := s.views[r]
	return v, ok
}

func (s *viewSlot) set(r *Reducer, v any) {
	if s.views == nil {
		s.views = make(map[*Reducer]any)
	}
	if _, ok := s.views[r]; !ok {
		s.order = append(s.order, r)
	}
	s.views[r] = v
}

func (s *viewSlot) delete(r *Reducer) {
	delete(s.views, r)
	for i, rr := range s.order {
		if rr == r {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}
