package cilk

import "repro/internal/mem"

// Hooks is the instrumentation interface the executor drives. It is the Go
// analogue of the compiler instrumentation Rader inserts: parallel-control
// events (akin to the Low Overhead Annotations) plus memory-access events
// (akin to the ThreadSanitizer hooks). Detectors implement Hooks; passing a
// nil Hooks to the executor runs the program with no instrumentation at
// all, which is the "no instrumentation" baseline of Figure 7, while
// passing Empty runs it against no-op callbacks, the "empty tool" baseline
// of Figure 8.
//
// Event ordering contract, matching §5 and §6:
//
//   - FrameEnter(G) fires before any event of G's body; FrameReturn(G)
//     fires after G's implicit sync and before control resumes in the
//     parent.
//   - ContinuationStolen(F, vid) fires when the serial execution reaches a
//     continuation the steal specification marks stolen, before any event
//     of the continuation itself.
//   - ReduceStart(F, keep, die) fires before the Reduce operation's own
//     view-aware section and its memory accesses; the SP+ P-bag union is
//     performed on this event, which is why a reduce strand's accesses
//     carry the surviving view ID (§6).
//   - Sync(F) fires after every reduction of the sync block has completed,
//     so the detector's P stack is back to a single bag (§6's invariant).
//   - ViewAwareBegin/ViewAwareEnd bracket the body of every Update,
//     Create-Identity and Reduce operation; Load/Store events in between
//     come from a view-aware strand, all others from view-oblivious
//     strands.
//
// Threading contract: the serial executor and the trace replay engine
// drive Hooks from a single goroutine, and the serial detectors (SP-bags,
// SP+, Peer-Set, the depa replay detector) rely on that — their state
// machines assume one totally-ordered event stream and are NOT safe for
// concurrent invocation. A caller that drives hooks from several
// goroutines (the work-stealing runtime's live mode, a test harness
// fanning one stream to per-worker consumers) must either give each
// goroutine its own Hooks value or use an implementation documented as
// concurrent-safe (Empty is; a Multi is exactly when every element is,
// see Multi's doc). Violating the contract is a data race, not a detected
// error: run such configurations under the race detector.
type Hooks interface {
	ProgramStart(root *Frame)
	ProgramEnd(root *Frame)

	FrameEnter(f *Frame)
	FrameReturn(f, parent *Frame)
	Sync(f *Frame)
	ContinuationStolen(f *Frame, newVID ViewID)

	ReduceStart(f *Frame, keepVID, dieVID ViewID)
	ReduceEnd(f *Frame)
	ViewAwareBegin(f *Frame, op ViewOp, r *Reducer)
	ViewAwareEnd(f *Frame, op ViewOp, r *Reducer)

	ReducerCreate(f *Frame, r *Reducer)
	ReducerRead(f *Frame, r *Reducer)

	Load(f *Frame, a mem.Addr)
	Store(f *Frame, a mem.Addr)
}

// Empty is a Hooks implementation whose callbacks do nothing. Running a
// program against Empty measures pure instrumentation dispatch cost — the
// paper's "empty tool" (§8).
type Empty struct{}

// ProgramStart implements Hooks.
func (Empty) ProgramStart(*Frame) {}

// ProgramEnd implements Hooks.
func (Empty) ProgramEnd(*Frame) {}

// FrameEnter implements Hooks.
func (Empty) FrameEnter(*Frame) {}

// FrameReturn implements Hooks.
func (Empty) FrameReturn(*Frame, *Frame) {}

// Sync implements Hooks.
func (Empty) Sync(*Frame) {}

// ContinuationStolen implements Hooks.
func (Empty) ContinuationStolen(*Frame, ViewID) {}

// ReduceStart implements Hooks.
func (Empty) ReduceStart(*Frame, ViewID, ViewID) {}

// ReduceEnd implements Hooks.
func (Empty) ReduceEnd(*Frame) {}

// ViewAwareBegin implements Hooks.
func (Empty) ViewAwareBegin(*Frame, ViewOp, *Reducer) {}

// ViewAwareEnd implements Hooks.
func (Empty) ViewAwareEnd(*Frame, ViewOp, *Reducer) {}

// ReducerCreate implements Hooks.
func (Empty) ReducerCreate(*Frame, *Reducer) {}

// ReducerRead implements Hooks.
func (Empty) ReducerRead(*Frame, *Reducer) {}

// Load implements Hooks.
func (Empty) Load(*Frame, mem.Addr) {}

// Store implements Hooks.
func (Empty) Store(*Frame, mem.Addr) {}

// Multi fans events out to several Hooks in order, so a detector and a
// trace recorder can observe the same run.
//
// Multi itself holds no mutable state — each callback is a read-only
// iteration over the slice — so a Multi is safe for concurrent invocation
// exactly when every element is. Under a single-goroutine driver the
// in-order fan-out additionally guarantees every element sees the same
// totally-ordered stream; under a concurrent driver no such total order
// exists and each element must tolerate interleaved callbacks (the Hooks
// threading contract above).
type Multi []Hooks

// MultiHooks builds the cheapest demultiplexer for the given consumers:
// nil entries are dropped, a single survivor is returned unwrapped (no
// fan-out indirection on the hot path), and zero survivors collapse to
// Empty. It is the hook-chain constructor behind the single-pass replay
// engine and the all-detectors run mode: one decoded event stream feeding
// every registered consumer.
func MultiHooks(hs ...Hooks) Hooks {
	// Count first so the 0- and 1-consumer cases allocate nothing: the
	// replay engine's zero-allocation decode loop calls this per replay.
	n := 0
	var single Hooks
	for _, h := range hs {
		if h != nil {
			n++
			single = h
		}
	}
	switch n {
	case 0:
		return Empty{}
	case 1:
		return single
	}
	out := make(Multi, 0, n)
	for _, h := range hs {
		if h != nil {
			out = append(out, h)
		}
	}
	return out
}

// ProgramStart implements Hooks.
func (m Multi) ProgramStart(f *Frame) {
	for _, h := range m {
		h.ProgramStart(f)
	}
}

// ProgramEnd implements Hooks.
func (m Multi) ProgramEnd(f *Frame) {
	for _, h := range m {
		h.ProgramEnd(f)
	}
}

// FrameEnter implements Hooks.
func (m Multi) FrameEnter(f *Frame) {
	for _, h := range m {
		h.FrameEnter(f)
	}
}

// FrameReturn implements Hooks.
func (m Multi) FrameReturn(f, p *Frame) {
	for _, h := range m {
		h.FrameReturn(f, p)
	}
}

// Sync implements Hooks.
func (m Multi) Sync(f *Frame) {
	for _, h := range m {
		h.Sync(f)
	}
}

// ContinuationStolen implements Hooks.
func (m Multi) ContinuationStolen(f *Frame, vid ViewID) {
	for _, h := range m {
		h.ContinuationStolen(f, vid)
	}
}

// ReduceStart implements Hooks.
func (m Multi) ReduceStart(f *Frame, keep, die ViewID) {
	for _, h := range m {
		h.ReduceStart(f, keep, die)
	}
}

// ReduceEnd implements Hooks.
func (m Multi) ReduceEnd(f *Frame) {
	for _, h := range m {
		h.ReduceEnd(f)
	}
}

// ViewAwareBegin implements Hooks.
func (m Multi) ViewAwareBegin(f *Frame, op ViewOp, r *Reducer) {
	for _, h := range m {
		h.ViewAwareBegin(f, op, r)
	}
}

// ViewAwareEnd implements Hooks.
func (m Multi) ViewAwareEnd(f *Frame, op ViewOp, r *Reducer) {
	for _, h := range m {
		h.ViewAwareEnd(f, op, r)
	}
}

// ReducerCreate implements Hooks.
func (m Multi) ReducerCreate(f *Frame, r *Reducer) {
	for _, h := range m {
		h.ReducerCreate(f, r)
	}
}

// ReducerRead implements Hooks.
func (m Multi) ReducerRead(f *Frame, r *Reducer) {
	for _, h := range m {
		h.ReducerRead(f, r)
	}
}

// Load implements Hooks.
func (m Multi) Load(f *Frame, a mem.Addr) {
	for _, h := range m {
		h.Load(f, a)
	}
}

// Store implements Hooks.
func (m Multi) Store(f *Frame, a mem.Addr) {
	for _, h := range m {
		h.Store(f, a)
	}
}
