package cilk

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/mem"
)

// atomicHooks is a concurrent-safe Hooks implementation: every callback
// bumps an atomic counter. It stands in for the class of consumers the
// threading contract allows under parallel invocation.
type atomicHooks struct {
	control  atomic.Int64 // frame/sync/steal/reduce/program events
	accesses atomic.Int64 // loads and stores
	reducer  atomic.Int64 // reducer and view-aware events
}

func (c *atomicHooks) ProgramStart(*Frame)                     { c.control.Add(1) }
func (c *atomicHooks) ProgramEnd(*Frame)                       { c.control.Add(1) }
func (c *atomicHooks) FrameEnter(*Frame)                       { c.control.Add(1) }
func (c *atomicHooks) FrameReturn(*Frame, *Frame)              { c.control.Add(1) }
func (c *atomicHooks) Sync(*Frame)                             { c.control.Add(1) }
func (c *atomicHooks) ContinuationStolen(*Frame, ViewID)       { c.control.Add(1) }
func (c *atomicHooks) ReduceStart(*Frame, ViewID, ViewID)      { c.control.Add(1) }
func (c *atomicHooks) ReduceEnd(*Frame)                        { c.control.Add(1) }
func (c *atomicHooks) ViewAwareBegin(*Frame, ViewOp, *Reducer) { c.reducer.Add(1) }
func (c *atomicHooks) ViewAwareEnd(*Frame, ViewOp, *Reducer)   { c.reducer.Add(1) }
func (c *atomicHooks) ReducerCreate(*Frame, *Reducer)          { c.reducer.Add(1) }
func (c *atomicHooks) ReducerRead(*Frame, *Reducer)            { c.reducer.Add(1) }
func (c *atomicHooks) Load(*Frame, mem.Addr)                   { c.accesses.Add(1) }
func (c *atomicHooks) Store(*Frame, mem.Addr)                  { c.accesses.Add(1) }

// TestMultiHooksConcurrentInvocation stress-tests the Hooks threading
// contract's concurrent half: a Multi whose elements are all
// concurrent-safe must itself be safe under parallel invocation — the
// configuration live detection on the work-stealing runtime creates. The
// test hammers every callback from several goroutines and checks the
// fan-out lost no event; run under -race it also proves the
// demultiplexer adds no shared mutable state of its own.
func TestMultiHooksConcurrentInvocation(t *testing.T) {
	a, b := &atomicHooks{}, &atomicHooks{}
	hooks := MultiHooks(nil, a, Empty{}, b)
	if _, ok := hooks.(Multi); !ok {
		t.Fatalf("MultiHooks(nil, a, Empty, b) = %T, want Multi", hooks)
	}

	const goroutines = 8
	const rounds = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			f := &Frame{} // one frame per goroutine, as the runtime would
			for i := 0; i < rounds; i++ {
				hooks.FrameEnter(f)
				hooks.Load(f, mem.Addr(g))
				hooks.Store(f, mem.Addr(g))
				hooks.Sync(f)
				hooks.FrameReturn(f, f)
			}
		}(g)
	}
	wg.Wait()

	wantControl := int64(goroutines * rounds * 3)
	wantAccess := int64(goroutines * rounds * 2)
	for name, c := range map[string]*atomicHooks{"first": a, "second": b} {
		if got := c.control.Load(); got != wantControl {
			t.Errorf("%s consumer saw %d control events, want %d", name, got, wantControl)
		}
		if got := c.accesses.Load(); got != wantAccess {
			t.Errorf("%s consumer saw %d access events, want %d", name, got, wantAccess)
		}
	}
}

// TestMultiHooksConcurrentReplayFanOut covers the cross-stream variant:
// several goroutines each replay an independent serial stream into the
// same shared Multi. This is the shape a parallel test harness or a
// sharded replay uses; the fan-out must stay race-free and exact.
func TestMultiHooksConcurrentReplayFanOut(t *testing.T) {
	shared := &atomicHooks{}
	const streams = 6
	var wg sync.WaitGroup
	var frames atomic.Int64
	for s := 0; s < streams; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			private := &atomicHooks{}
			hooks := MultiHooks(shared, private)
			f := &Frame{}
			n := 100 + s*10
			for i := 0; i < n; i++ {
				hooks.FrameEnter(f)
				hooks.Store(f, mem.Addr(i))
				hooks.FrameReturn(f, f)
			}
			frames.Add(int64(n))
			if got := private.control.Load(); got != int64(2*n) {
				t.Errorf("stream %d private consumer saw %d control events, want %d", s, got, 2*n)
			}
		}(s)
	}
	wg.Wait()
	if got, want := shared.control.Load(), 2*frames.Load(); got != want {
		t.Errorf("shared consumer saw %d control events, want %d", got, want)
	}
}
