package cilk

import (
	"fmt"
	"testing"
)

// These tests pin reducer lifecycle semantics that the paper's §2/§5
// narrative implies but never spells out.

func TestReducerCreatedInChildVisibleAfterReturn(t *testing.T) {
	// A reducer created in a called child writes its initial view into
	// the shared (inherited) view slot; the caller can read it after the
	// child returns.
	var got int
	Run(func(c *Ctx) {
		var r *Reducer
		c.Call("maker", func(cc *Ctx) {
			r = cc.NewReducer("h", sumMonoid, 7)
		})
		got = c.Value(r).(int)
	}, Config{})
	if got != 7 {
		t.Fatalf("value = %d, want 7", got)
	}
}

func TestReducerCreatedInSpawnedChildFoldsIntoParent(t *testing.T) {
	// Created in a spawned child under steals: the child's view context
	// is the leftmost view for that reducer, and updates fold normally.
	var got int
	Run(func(c *Ctx) {
		var r *Reducer
		c.Spawn("maker", func(cc *Ctx) {
			r = cc.NewReducer("h", sumMonoid, 1)
			cc.Update(r, func(_ *Ctx, v any) any { return v.(int) + 10 })
		})
		c.Sync()
		// After the sync every view has been reduced; the parent reads
		// the folded value.
		got = c.Value(r).(int)
	}, Config{Spec: StealAll{}})
	if got != 11 {
		t.Fatalf("value = %d, want 11", got)
	}
}

func TestSetValueDiscardsCurrentView(t *testing.T) {
	// set_value replaces the current view outright; prior updates to that
	// view are gone, but parallel views still fold in around it.
	var got []int
	Run(func(c *Ctx) {
		r := c.NewReducer("l", listMonoid, []int{1})
		c.Update(r, func(_ *Ctx, v any) any { return append(v.([]int), 2) })
		c.SetValue(r, []int{100}) // discards [1 2]
		c.Spawn("u", func(cc *Ctx) {
			cc.Update(r, func(_ *Ctx, v any) any { return append(v.([]int), 3) })
		})
		c.Sync()
		got = c.Value(r).([]int)
	}, Config{})
	// No steals: the child shares the view; serial semantics.
	if fmt.Sprint(got) != "[100 3]" {
		t.Fatalf("value = %v, want [100 3]", got)
	}
}

func TestUpdateReturningNewViewObject(t *testing.T) {
	// Update's body may return a brand-new view value (views are values,
	// not mutable slots); the runtime must store it back.
	var got int
	Run(func(c *Ctx) {
		r := c.NewReducer("h", sumMonoid, 5)
		c.ParForGrain("w", 8, 1, func(cc *Ctx, i int) {
			cc.Update(r, func(_ *Ctx, v any) any {
				return v.(int) + 1 // fresh int each time
			})
		})
		got = c.Value(r).(int)
	}, Config{Spec: StealAll{Reduce: ReduceEager}})
	if got != 13 {
		t.Fatalf("value = %d, want 13", got)
	}
}

func TestTwoReducersReduceIndependently(t *testing.T) {
	// A view slot holding two reducers reduces each with its own monoid,
	// in registration order, without cross-talk.
	var a []int
	var b int
	Run(func(c *Ctx) {
		rl := c.NewReducer("list", listMonoid, []int(nil))
		rs := c.NewReducer("sum", sumMonoid, 0)
		for i := 0; i < 6; i++ {
			i := i
			c.Spawn("u", func(cc *Ctx) {
				cc.Update(rl, func(_ *Ctx, v any) any { return append(v.([]int), i) })
				cc.Update(rs, func(_ *Ctx, v any) any { return v.(int) + i })
			})
		}
		c.Sync()
		a = c.Value(rl).([]int)
		b = c.Value(rs).(int)
	}, Config{Spec: StealAll{Reduce: ReduceMiddleFirst}})
	if fmt.Sprint(a) != "[0 1 2 3 4 5]" || b != 15 {
		t.Fatalf("list=%v sum=%d", a, b)
	}
}

func TestViewSlotGrowthPastInlineArray(t *testing.T) {
	// Frames embed a small inline slot array; more than four live views
	// must spill to the heap transparently.
	var got []int
	Run(func(c *Ctx) {
		r := c.NewReducer("l", listMonoid, []int(nil))
		for i := 0; i < 12; i++ { // 12 steals → 13 slots live before sync
			i := i
			c.Spawn("u", func(cc *Ctx) {
				cc.Update(r, func(_ *Ctx, v any) any { return append(v.([]int), i) })
			})
		}
		if pending := c.Frame().PendingViews(); pending != 12 {
			t.Fatalf("pending views = %d, want 12", pending)
		}
		c.Sync()
		got = c.Value(r).([]int)
	}, Config{Spec: StealAll{}})
	if len(got) != 12 {
		t.Fatalf("len = %d", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("order broken: %v", got)
		}
	}
}
