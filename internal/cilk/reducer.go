package cilk

import "fmt"

// Monoid is the algebraic triple (T, ⊗, e) that defines a reducer (§2). The
// view type T is `any` at this layer; package reducer provides typed
// wrappers and a library of common monoids. Identity constructs e; Combine
// implements ⊗, which must be associative for the reducer to behave
// deterministically. Combine may mutate and return left (the dominating
// view); it must not retain right after returning.
//
// Both methods receive the executing *Ctx because reducer operations are
// user code from the detector's point of view: a Create-Identity or Reduce
// body may itself Load and Store instrumented memory — indeed the paper's
// Figure 1 race is a write performed inside a Reduce operation.
type Monoid interface {
	Identity(c *Ctx) any
	Combine(c *Ctx, left, right any) any
}

// Reducer is a reducer hyperobject handle. It is created inside a program
// via Ctx.NewReducer and accessed via Ctx.Value, Ctx.SetValue (both
// reducer-reads in the paper's sense) and Ctx.Update (a view-aware
// operation on the current view).
type Reducer struct {
	Name string
	m    Monoid
	idx  int // registration index within the run
}

// String implements fmt.Stringer.
func (r *Reducer) String() string { return fmt.Sprintf("reducer(%s#%d)", r.Name, r.idx) }

// Index returns the reducer's registration index within its run.
func (r *Reducer) Index() int { return r.idx }

// Monoid returns the reducer's monoid.
func (r *Reducer) Monoid() Monoid { return r.m }

// funcMonoid adapts a pair of closures to Monoid.
type funcMonoid struct {
	identity func(c *Ctx) any
	combine  func(c *Ctx, left, right any) any
}

func (m funcMonoid) Identity(c *Ctx) any { return m.identity(c) }

func (m funcMonoid) Combine(c *Ctx, left, right any) any { return m.combine(c, left, right) }

// MonoidFuncs builds a Monoid from two closures, for quick user-defined
// reducers (the paper's list_monoid is expressed this way in the examples).
func MonoidFuncs(identity func(c *Ctx) any, combine func(c *Ctx, left, right any) any) Monoid {
	return funcMonoid{identity: identity, combine: combine}
}

// SyntheticReducer builds a detached reducer handle for trace replay: a
// recorded event stream identifies reducers by registration index only, and
// the replayer needs distinct *Reducer identities to hand to detectors. The
// handle carries no monoid and must not be used with a live executor.
func SyntheticReducer(name string, idx int) *Reducer {
	return &Reducer{Name: name, idx: idx}
}
