package cilk

import (
	"testing"

	"repro/internal/mem"
)

// invariantChecker verifies the §5 view invariants online, at every event
// of every run it observes:
//
//  1. within a strand the view context never changes (contexts switch
//     only at steals, reductions and syncs);
//  2. a spawned child's first strand inherits the spawning strand's view,
//     and a stolen continuation gets a brand-new view ID;
//  3. a sync strand sees the view of the function's first strand.
type invariantChecker struct {
	Empty
	t       *testing.T
	entry   map[FrameID]ViewID // view at frame entry
	seen    map[ViewID]bool    // all view IDs ever current
	current map[FrameID]ViewID
}

func newInvariantChecker(t *testing.T) *invariantChecker {
	return &invariantChecker{
		t:       t,
		entry:   make(map[FrameID]ViewID),
		seen:    map[ViewID]bool{0: true},
		current: make(map[FrameID]ViewID),
	}
}

func (ic *invariantChecker) FrameEnter(f *Frame) {
	vid := f.CurrentVID()
	if f.Parent != nil && vid != f.Parent.CurrentVID() {
		ic.t.Errorf("invariant 2: frame %v entered with view %d, parent holds %d",
			f, vid, f.Parent.CurrentVID())
	}
	ic.entry[f.ID] = vid
	ic.current[f.ID] = vid
	ic.seen[vid] = true
}

func (ic *invariantChecker) ContinuationStolen(f *Frame, newVID ViewID) {
	if ic.seen[newVID] {
		ic.t.Errorf("invariant 2: stolen continuation reuses view %d", newVID)
	}
	ic.seen[newVID] = true
	ic.current[f.ID] = newVID
	if f.CurrentVID() != newVID {
		ic.t.Errorf("stolen continuation of %v not in its new view", f)
	}
}

func (ic *invariantChecker) ReduceStart(f *Frame, keep, die ViewID) {
	if !ic.seen[keep] || !ic.seen[die] {
		ic.t.Errorf("reduce of unknown views (%d,%d)", keep, die)
	}
	if keep == die {
		ic.t.Errorf("reduce of a view with itself: %d", keep)
	}
}

func (ic *invariantChecker) ReduceEnd(f *Frame) {
	ic.current[f.ID] = f.CurrentVID()
}

func (ic *invariantChecker) Sync(f *Frame) {
	if got, want := f.CurrentVID(), ic.entry[f.ID]; got != want {
		ic.t.Errorf("invariant 3: sync of %v sees view %d, entry view was %d", f, got, want)
	}
	if f.PendingViews() != 0 {
		ic.t.Errorf("invariant 3: sync of %v with %d unreduced views", f, f.PendingViews())
	}
	ic.current[f.ID] = f.CurrentVID()
}

func (ic *invariantChecker) Load(f *Frame, a mem.Addr) {
	// Invariant 1: between control events the frame's view is stable.
	if cur, ok := ic.current[f.ID]; ok && f.CurrentVID() != cur {
		ic.t.Errorf("invariant 1: view of %v changed mid-strand (%d -> %d)",
			f, cur, f.CurrentVID())
	}
}

func TestViewInvariantsOnline(t *testing.T) {
	progs := []func(*Ctx){
		func(c *Ctx) { // nested spawn tree with reducers
			r := c.NewReducer("h", listMonoid, []int(nil))
			var rec func(c *Ctx, d int)
			rec = func(c *Ctx, d int) {
				if d == 0 {
					c.Update(r, func(_ *Ctx, v any) any { return append(v.([]int), d) })
					c.Load(1)
					return
				}
				c.Spawn("l", func(cc *Ctx) { rec(cc, d-1) })
				c.Load(2)
				c.Call("r", func(cc *Ctx) { rec(cc, d-1) })
				c.Sync()
				c.Load(3)
			}
			rec(c, 4)
		},
		func(c *Ctx) { // wide sync blocks
			r := c.NewReducer("h", sumMonoid, 0)
			for b := 0; b < 3; b++ {
				for i := 0; i < 5; i++ {
					c.Spawn("u", func(cc *Ctx) {
						cc.Update(r, func(_ *Ctx, v any) any { return v.(int) + 1 })
						cc.Load(4)
					})
					c.Load(5)
				}
				c.Sync()
			}
		},
	}
	specs := []StealSpec{
		nil, StealAll{}, StealAll{Reduce: ReduceEager}, StealAll{Reduce: ReduceMiddleFirst},
	}
	for pi, prog := range progs {
		for _, spec := range specs {
			ic := newInvariantChecker(t)
			Run(prog, Config{Spec: spec, Hooks: ic})
			if t.Failed() {
				t.Fatalf("invariants violated (program %d, spec %#v)", pi, spec)
			}
		}
	}
}
