package cilk

import "repro/internal/mem"

// Gate forwards the instrumentation event stream to an inner Hooks only
// once activated, counting the events it suppresses. It is the mechanism
// behind the prefix-sharing coverage sweep: two steal specifications that
// agree on every steal decision up to continuation t produce bit-identical
// event prefixes, so a sweep unit seeded from a detector snapshot taken at
// t re-executes the program with the gate closed — paying only empty
// dispatch for the shared prefix — and opens the gate at the divergence
// point, when the live detector takes over.
//
// Activation is driven by a GatedSpec wrapping the unit's steal
// specification: the ShouldSteal probe at the divergence continuation is
// exactly the boundary between the shared prefix and the divergent suffix,
// because every event before that probe is determined by the shared
// decisions and every event after it may depend on the probe's answer.
type Gate struct {
	inner   Hooks
	active  bool
	skipped int64
	probes  int64
}

// NewGate returns a gate in front of inner, open (forwarding) when active
// is true and closed (suppressing) otherwise.
func NewGate(inner Hooks, active bool) *Gate {
	return &Gate{inner: inner, active: active}
}

// Activate opens the gate; subsequent events reach the inner hooks.
func (g *Gate) Activate() { g.active = true }

// Rearm resets the gate for a new sweep unit: the inner hooks are swapped
// (the unit's freshly restored detector), the open/closed state is set,
// and the skip/probe counters restart from zero. The work-stealing sweep
// keeps one gate per worker and re-arms it on every unit — including
// stolen units whose snapshot was handed off from another worker — instead
// of allocating a gate per unit.
func (g *Gate) Rearm(inner Hooks, active bool) {
	g.inner = inner
	g.active = active
	g.skipped = 0
	g.probes = 0
}

// Active reports whether the gate is open.
func (g *Gate) Active() bool { return g.active }

// Skipped reports how many events the gate suppressed while closed.
func (g *Gate) Skipped() int64 { return g.skipped }

// Probes reports how many continuation probes the gated specification has
// observed (open or closed).
func (g *Gate) Probes() int64 { return g.probes }

// ProgramStart implements Hooks.
func (g *Gate) ProgramStart(f *Frame) {
	if !g.active {
		g.skipped++
		return
	}
	g.inner.ProgramStart(f)
}

// ProgramEnd implements Hooks.
func (g *Gate) ProgramEnd(f *Frame) {
	if !g.active {
		g.skipped++
		return
	}
	g.inner.ProgramEnd(f)
}

// FrameEnter implements Hooks.
func (g *Gate) FrameEnter(f *Frame) {
	if !g.active {
		g.skipped++
		return
	}
	g.inner.FrameEnter(f)
}

// FrameReturn implements Hooks.
func (g *Gate) FrameReturn(f, parent *Frame) {
	if !g.active {
		g.skipped++
		return
	}
	g.inner.FrameReturn(f, parent)
}

// Sync implements Hooks.
func (g *Gate) Sync(f *Frame) {
	if !g.active {
		g.skipped++
		return
	}
	g.inner.Sync(f)
}

// ContinuationStolen implements Hooks.
func (g *Gate) ContinuationStolen(f *Frame, vid ViewID) {
	if !g.active {
		g.skipped++
		return
	}
	g.inner.ContinuationStolen(f, vid)
}

// ReduceStart implements Hooks.
func (g *Gate) ReduceStart(f *Frame, keep, die ViewID) {
	if !g.active {
		g.skipped++
		return
	}
	g.inner.ReduceStart(f, keep, die)
}

// ReduceEnd implements Hooks.
func (g *Gate) ReduceEnd(f *Frame) {
	if !g.active {
		g.skipped++
		return
	}
	g.inner.ReduceEnd(f)
}

// ViewAwareBegin implements Hooks.
func (g *Gate) ViewAwareBegin(f *Frame, op ViewOp, r *Reducer) {
	if !g.active {
		g.skipped++
		return
	}
	g.inner.ViewAwareBegin(f, op, r)
}

// ViewAwareEnd implements Hooks.
func (g *Gate) ViewAwareEnd(f *Frame, op ViewOp, r *Reducer) {
	if !g.active {
		g.skipped++
		return
	}
	g.inner.ViewAwareEnd(f, op, r)
}

// ReducerCreate implements Hooks.
func (g *Gate) ReducerCreate(f *Frame, r *Reducer) {
	if !g.active {
		g.skipped++
		return
	}
	g.inner.ReducerCreate(f, r)
}

// ReducerRead implements Hooks.
func (g *Gate) ReducerRead(f *Frame, r *Reducer) {
	if !g.active {
		g.skipped++
		return
	}
	g.inner.ReducerRead(f, r)
}

// Load implements Hooks.
func (g *Gate) Load(f *Frame, a mem.Addr) {
	if !g.active {
		g.skipped++
		return
	}
	g.inner.Load(f, a)
}

// Store implements Hooks.
func (g *Gate) Store(f *Frame, a mem.Addr) {
	if !g.active {
		g.skipped++
		return
	}
	g.inner.Store(f, a)
}

var _ Hooks = (*Gate)(nil)

// gatedSpec wraps a StealSpec so that continuation probes drive the gate:
// each ShouldSteal call is counted, reported to an optional observer, and
// — once the activation sequence number is reached — opens the gate before
// the wrapped specification answers. Decisions and reduce ordering are
// delegated unchanged, so a run under the wrapper is event-for-event the
// run under the wrapped spec.
type gatedSpec struct {
	spec       StealSpec
	gate       *Gate
	activateAt int
	onProbe    func(ci ContInfo)
}

// ShouldSteal implements StealSpec.
func (s *gatedSpec) ShouldSteal(ci ContInfo) bool {
	s.gate.probes++
	if s.onProbe != nil {
		s.onProbe(ci)
	}
	if s.activateAt > 0 && ci.Seq >= s.activateAt {
		s.gate.Activate()
	}
	return s.spec.ShouldSteal(ci)
}

// Order implements StealSpec.
func (s *gatedSpec) Order() ReduceOrder { return s.spec.Order() }

// gatedSpecRS additionally forwards ReduceScheduler, for wrapped specs
// that dictate reduction timing. The plain wrapper must NOT implement
// ReduceScheduler: the executor falls back to eager collapsing only when
// the spec does not schedule reductions itself, and a vacuous forwarder
// would suppress that fallback.
type gatedSpecRS struct {
	gatedSpec
	rs ReduceScheduler
}

// ReducesAfterReturn implements ReduceScheduler.
func (s *gatedSpecRS) ReducesAfterReturn(ci ContInfo) int {
	return s.rs.ReducesAfterReturn(ci)
}

// NewGatedSpec wraps spec so its continuation probes drive gate:
// activateAt is the 1-based probe sequence number at which the gate opens
// (0 = never; pre-open the gate for a fully live run), and onProbe, when
// non-nil, observes every probe before the decision — the seam the sweep
// scheduler uses to verify the probe sequence and capture snapshots at
// trie branch points.
func NewGatedSpec(spec StealSpec, gate *Gate, activateAt int, onProbe func(ci ContInfo)) StealSpec {
	gs := gatedSpec{spec: spec, gate: gate, activateAt: activateAt, onProbe: onProbe}
	if rs, ok := spec.(ReduceScheduler); ok {
		return &gatedSpecRS{gatedSpec: gs, rs: rs}
	}
	return &gs
}
