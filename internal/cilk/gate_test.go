package cilk

import "testing"

// countingHooks tallies every hook invocation, across all 14 event
// classes, so its total is comparable with Gate.Skipped.
type countingHooks struct {
	Empty
	n int64
}

func (c *countingHooks) FrameEnter(*Frame)                       { c.n++ }
func (c *countingHooks) FrameReturn(*Frame, *Frame)              { c.n++ }
func (c *countingHooks) Sync(*Frame)                             { c.n++ }
func (c *countingHooks) ProgramStart(*Frame)                     { c.n++ }
func (c *countingHooks) ProgramEnd(*Frame)                       { c.n++ }
func (c *countingHooks) ContinuationStolen(*Frame, ViewID)       { c.n++ }
func (c *countingHooks) ReduceStart(*Frame, ViewID, ViewID)      { c.n++ }
func (c *countingHooks) ReduceEnd(*Frame)                        { c.n++ }
func (c *countingHooks) ViewAwareBegin(*Frame, ViewOp, *Reducer) { c.n++ }
func (c *countingHooks) ViewAwareEnd(*Frame, ViewOp, *Reducer)   { c.n++ }
func (c *countingHooks) ReducerCreate(*Frame, *Reducer)          { c.n++ }
func (c *countingHooks) ReducerRead(*Frame, *Reducer)            { c.n++ }

func gateProg(c *Ctx) {
	for i := 0; i < 4; i++ {
		c.Spawn("w", func(*Ctx) {})
	}
	c.Sync()
}

// A closed gate suppresses every event and counts them; an open gate is
// transparent. Skipped plus delivered must cover the whole stream.
func TestGateSuppressesUntilActivated(t *testing.T) {
	live := &countingHooks{}
	Run(gateProg, Config{Spec: NoSteals{}, Hooks: live})
	if live.n == 0 {
		t.Fatal("no events in the reference run")
	}

	inner := &countingHooks{}
	gate := NewGate(inner, false)
	Run(gateProg, Config{Spec: NoSteals{}, Hooks: gate})
	if inner.n != 0 {
		t.Fatalf("closed gate delivered %d events", inner.n)
	}
	if gate.Skipped() == 0 {
		t.Fatal("closed gate counted no suppressed events")
	}

	open := &countingHooks{}
	ogate := NewGate(open, true)
	Run(gateProg, Config{Spec: NoSteals{}, Hooks: ogate})
	if open.n != live.n {
		t.Fatalf("open gate delivered %d events, ungated run saw %d", open.n, live.n)
	}
	if ogate.Skipped() != 0 {
		t.Fatalf("open gate suppressed %d events", ogate.Skipped())
	}
}

// A gated spec opens the gate at its activation probe — before the steal
// decision at that probe — so the delivered suffix starts exactly at the
// divergence point, and the steal decisions themselves are unchanged.
func TestGatedSpecActivatesAtProbe(t *testing.T) {
	for activateAt := 1; activateAt <= 4; activateAt++ {
		inner := &countingHooks{}
		gate := NewGate(inner, false)
		var probes []int
		spec := NewGatedSpec(StealAll{}, gate, activateAt, func(ci ContInfo) {
			probes = append(probes, ci.Seq)
		})
		res := Run(gateProg, Config{Spec: spec, Hooks: gate})
		if !gate.Active() {
			t.Fatalf("activateAt=%d: gate never opened", activateAt)
		}
		if inner.n == 0 || gate.Skipped() == 0 {
			t.Fatalf("activateAt=%d: delivered=%d skipped=%d, want both nonzero",
				activateAt, inner.n, gate.Skipped())
		}
		if len(res.Steals) != 4 {
			t.Fatalf("activateAt=%d: wrapper changed decisions: %d steals", activateAt, len(res.Steals))
		}
		for i, seq := range probes {
			if seq != i+1 {
				t.Fatalf("probe order broken: %v", probes)
			}
		}
		if gate.Probes() != 4 {
			t.Fatalf("gate counted %d probes, want 4", gate.Probes())
		}
	}
}

// The delivered suffix must be identical to the suffix a live detector
// would have seen: gate at probe k, then compare event counts with
// (full stream − events before probe k), measured by a second gate
// activated at the same probe in front of a counting sink.
func TestGateSuffixMatchesLiveSuffix(t *testing.T) {
	full := &countingHooks{}
	Run(gateProg, Config{Spec: StealAll{}, Hooks: full})

	for k := 1; k <= 4; k++ {
		inner := &countingHooks{}
		gate := NewGate(inner, false)
		Run(gateProg, Config{Spec: NewGatedSpec(StealAll{}, gate, k, nil), Hooks: gate})
		if inner.n+gate.Skipped() != full.n {
			t.Fatalf("k=%d: delivered %d + skipped %d != full %d",
				k, inner.n, gate.Skipped(), full.n)
		}
	}
}

// Wrapping must not change scheduler capability: a plain spec's wrapper
// must NOT satisfy ReduceScheduler (that would suppress the executor's
// eager-collapse fallback), while a scheduling spec's wrapper must.
func TestGatedSpecPreservesReduceScheduler(t *testing.T) {
	gate := NewGate(Empty{}, true)
	plain := NewGatedSpec(StealAll{}, gate, 0, nil)
	if _, ok := plain.(ReduceScheduler); ok {
		t.Fatal("wrapper of a plain spec claims ReduceScheduler")
	}
	rs := NewGatedSpec(stealAllScheduler{}, gate, 0, nil)
	if _, ok := rs.(ReduceScheduler); !ok {
		t.Fatal("wrapper of a scheduling spec lost ReduceScheduler")
	}
}

type stealAllScheduler struct{ StealAll }

func (stealAllScheduler) ReducesAfterReturn(ContInfo) int { return 1 }
