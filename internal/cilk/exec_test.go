package cilk

import (
	"fmt"
	"testing"
)

func TestEagerViewsMatchLazySemantics(t *testing.T) {
	// EagerViews materializes identities at steals instead of first
	// update; the reduced results must be identical.
	prog := func(out *[]int) func(*Ctx) {
		return func(c *Ctx) {
			r := c.NewReducer("l", listMonoid, []int(nil))
			r2 := c.NewReducer("untouched", sumMonoid, 7)
			c.ParForGrain("w", 20, 1, func(cc *Ctx, i int) {
				cc.Update(r, func(_ *Ctx, v any) any { return append(v.([]int), i) })
			})
			*out = c.Value(r).([]int)
			if got := c.Value(r2).(int); got != 7 {
				t.Fatalf("untouched reducer = %d, want 7", got)
			}
		}
	}
	var lazy, eager []int
	Run(prog(&lazy), Config{Spec: StealAll{}})
	Run(prog(&eager), Config{Spec: StealAll{}, EagerViews: true})
	if fmt.Sprint(lazy) != fmt.Sprint(eager) {
		t.Fatalf("lazy %v != eager %v", lazy, eager)
	}
}

func TestEagerViewsRunMoreIdentities(t *testing.T) {
	ids := 0
	m := MonoidFuncs(
		func(*Ctx) any { ids++; return 0 },
		func(_ *Ctx, l, r any) any { return l.(int) + r.(int) },
	)
	prog := func(c *Ctx) {
		r := c.NewReducer("h", m, 0)
		for i := 0; i < 4; i++ {
			c.Spawn("f", func(cc *Ctx) {
				cc.Update(r, func(_ *Ctx, v any) any { return v.(int) + 1 })
			})
		}
		c.Sync()
	}
	ids = 0
	Run(prog, Config{Spec: StealAll{}})
	lazyIDs := ids
	ids = 0
	Run(prog, Config{Spec: StealAll{}, EagerViews: true})
	eagerIDs := ids
	if eagerIDs < lazyIDs {
		t.Fatalf("eager identities %d < lazy %d", eagerIDs, lazyIDs)
	}
	if lazyIDs == 0 {
		t.Fatal("steals must force identity creation even lazily")
	}
}

func TestSetValueInStolenContinuation(t *testing.T) {
	// set_value replaces the *current* view; in a stolen continuation
	// that is the fresh identity view context, and the final value folds
	// it in serial position.
	var final []int
	Run(func(c *Ctx) {
		r := c.NewReducer("l", listMonoid, []int{1})
		c.Spawn("f", func(cc *Ctx) {
			cc.Update(r, func(_ *Ctx, v any) any { return append(v.([]int), 2) })
		})
		c.SetValue(r, []int{30}) // stolen continuation's view
		c.Update(r, func(_ *Ctx, v any) any { return append(v.([]int), 31) })
		c.Sync()
		final = c.Value(r).([]int)
	}, Config{Spec: StealAll{}})
	// Views: leftmost [1,2] (child updated the inherited view), stolen
	// continuation [30,31]; reduced in serial order.
	if fmt.Sprint(final) != "[1 2 30 31]" {
		t.Fatalf("final = %v", final)
	}
}

func TestSyncInsideViewAwarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("sync inside Update must panic")
		}
	}()
	Run(func(c *Ctx) {
		r := c.NewReducer("h", sumMonoid, 0)
		c.Update(r, func(cc *Ctx, v any) any {
			cc.Sync()
			return v
		})
	}, Config{})
}

func TestCallInsideViewAwarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("call inside Update must panic")
		}
	}()
	Run(func(c *Ctx) {
		r := c.NewReducer("h", sumMonoid, 0)
		c.Update(r, func(cc *Ctx, v any) any {
			cc.Call("bad", func(*Ctx) {})
			return v
		})
	}, Config{})
}

func TestParForGrainExtremes(t *testing.T) {
	for _, grain := range []int{-5, 0, 1, 1000} {
		sum := 0
		Run(func(c *Ctx) {
			c.ParForGrain("w", 50, grain, func(_ *Ctx, i int) { sum += i })
		}, Config{Spec: StealAll{}})
		if sum != 1225 {
			t.Fatalf("grain %d: sum = %d", grain, sum)
		}
	}
}

func TestParForZeroAndNegative(t *testing.T) {
	ran := false
	Run(func(c *Ctx) {
		c.ParFor("w", 0, func(*Ctx, int) { ran = true })
		c.ParFor("w", -3, func(*Ctx, int) { ran = true })
	}, Config{})
	if ran {
		t.Fatal("empty loops must not run the body")
	}
}

func TestResultAccessCounters(t *testing.T) {
	res := Run(func(c *Ctx) {
		r := c.NewReducer("h", sumMonoid, 0)
		c.Load(5)
		c.Store(6)
		c.LoadRange(10, 3)
		c.StoreRange(20, 2)
		c.SetValue(r, 1)
		_ = c.Value(r)
		c.Update(r, func(_ *Ctx, v any) any { return v })
	}, Config{})
	if res.Loads != 4 || res.Stores != 3 {
		t.Fatalf("loads/stores = %d/%d, want 4/3", res.Loads, res.Stores)
	}
	if res.Reads != 3 { // create + set + value
		t.Fatalf("reducer-reads = %d, want 3", res.Reads)
	}
	if res.Updates != 1 {
		t.Fatalf("updates = %d, want 1", res.Updates)
	}
}

func TestContInfoString(t *testing.T) {
	var label string
	spy := stealSpy{f: func(ci ContInfo) { label = ci.String() }}
	Run(func(c *Ctx) {
		c.Spawn("child", func(*Ctx) {})
		c.Sync()
	}, Config{Spec: spy})
	if label != "main/b0/c1@1" {
		t.Fatalf("label = %q", label)
	}
}

type stealSpy struct{ f func(ContInfo) }

func (s stealSpy) ShouldSteal(ci ContInfo) bool { s.f(ci); return false }
func (s stealSpy) Order() ReduceOrder           { return ReduceAtSync }

func TestViewOpString(t *testing.T) {
	if OpUpdate.String() != "Update" || OpCreateIdentity.String() != "Create-Identity" ||
		OpReduce.String() != "Reduce" {
		t.Fatal("ViewOp strings")
	}
}

func TestFrameString(t *testing.T) {
	var s string
	Run(func(c *Ctx) { s = c.Frame().String() }, Config{})
	if s != "main#0" {
		t.Fatalf("frame string = %q", s)
	}
	var nilFrame *Frame
	if nilFrame.String() != "<nil frame>" {
		t.Fatal("nil frame string")
	}
}

func TestMultipleReducersIndependentViews(t *testing.T) {
	var a, b int
	Run(func(c *Ctx) {
		ra := c.NewReducer("a", sumMonoid, 0)
		rb := c.NewReducer("b", sumMonoid, 100)
		c.ParForGrain("w", 10, 1, func(cc *Ctx, i int) {
			if i%2 == 0 {
				cc.Update(ra, func(_ *Ctx, v any) any { return v.(int) + 1 })
			} else {
				cc.Update(rb, func(_ *Ctx, v any) any { return v.(int) + 1 })
			}
		})
		a, b = c.Value(ra).(int), c.Value(rb).(int)
	}, Config{Spec: StealAll{Reduce: ReduceEager}})
	if a != 5 || b != 105 {
		t.Fatalf("a=%d b=%d, want 5/105", a, b)
	}
}

func TestUnreducedViewsPanicIsImpossibleViaPublicAPI(t *testing.T) {
	// Whatever spec is supplied, every frame return must see exactly one
	// view slot; exercise a pathological spec that steals everything with
	// middle-first reduction and deep nesting.
	var deep func(c *Ctx, d int)
	deep = func(c *Ctx, d int) {
		if d == 0 {
			return
		}
		r := c.NewReducer("h", sumMonoid, 0)
		for i := 0; i < 3; i++ {
			c.Spawn("x", func(cc *Ctx) {
				cc.Update(r, func(_ *Ctx, v any) any { return v.(int) + 1 })
				deep(cc, d-1)
			})
		}
		c.Sync()
		if got := c.Value(r).(int); got != 3 {
			t.Fatalf("depth %d: %d", d, got)
		}
	}
	Run(func(c *Ctx) { deep(c, 4) }, Config{Spec: StealAll{Reduce: ReduceMiddleFirst}})
}
