package mem

import "testing"

// A snapshot must be immutable: writes through the originating shadow
// after Snapshot go to fresh private pages, and any number of shadows
// restored from the snapshot see exactly the captured contents.
func TestShadowSnapshotImmutable(t *testing.T) {
	s := NewShadow(-1)
	s.Set(10, 1)
	s.Set(pageSize+10, 2)
	snap := s.Snapshot()

	s.Set(10, 99)
	s.Set(pageSize+10, 98)
	s.Set(2*pageSize, 97) // page born after the snapshot

	for i, other := range []*Shadow{NewShadow(-1), NewShadow(-1)} {
		other.Restore(snap)
		if got := other.Get(10); got != 1 {
			t.Fatalf("restore %d: addr 10 reads %d, want the captured 1", i, got)
		}
		if got := other.Get(pageSize + 10); got != 2 {
			t.Fatalf("restore %d: addr page+10 reads %d, want 2", i, got)
		}
		if got := other.Get(2 * pageSize); got != -1 {
			t.Fatalf("restore %d: post-snapshot page leaked: %d", i, got)
		}
	}
	// The originating shadow keeps its post-snapshot values.
	if s.Get(10) != 99 || s.Get(pageSize+10) != 98 {
		t.Fatalf("origin lost post-snapshot writes: %d %d", s.Get(10), s.Get(pageSize+10))
	}
}

// Writes diverging from a shared snapshot clone each touched page exactly
// once — the O(pages touched since fork) cost the sweep banks on.
func TestShadowCopyOnWriteCounts(t *testing.T) {
	s := NewShadow(0)
	s.Set(1, 1)
	s.Set(pageSize+1, 2)
	if n := s.PagesCopied(); n != 0 {
		t.Fatalf("copies before any snapshot: %d", n)
	}
	snap := s.Snapshot()

	s.Set(1, 5) // first write to a shared page clones it
	s.Set(2, 6) // second write to the now-private clone does not
	if n := s.PagesCopied(); n != 1 {
		t.Fatalf("after two writes to one shared page: %d copies, want 1", n)
	}
	s.Set(pageSize+1, 7)
	if n := s.PagesCopied(); n != 2 {
		t.Fatalf("after touching the second shared page: %d copies, want 2", n)
	}

	// A shadow restored from the snapshot pays its own copies.
	r := NewShadow(0)
	r.Restore(snap)
	r.Set(1, 9)
	if n := r.PagesCopied(); n != 1 {
		t.Fatalf("restored shadow: %d copies, want 1", n)
	}
	// And the fork stayed independent.
	if s.Get(1) != 5 || r.Get(1) != 9 {
		t.Fatalf("forks alias: origin=%d restored=%d", s.Get(1), r.Get(1))
	}
}

// Reset must be equivalent to a fresh construction: every address reads
// the sentinel again, even when the buffer came back off the free list
// with stale contents, and shared pages survive for their snapshots.
func TestShadowResetThenReuse(t *testing.T) {
	s := NewShadow(-3)
	for a := Addr(0); a < 8; a++ {
		s.Set(a, int32(a)+1)
	}
	snap := s.Snapshot()
	s.Set(0, 42) // forces a private COW clone eligible for recycling
	s.Reset()
	if got := s.Get(0); got != -3 {
		t.Fatalf("after Reset addr 0 reads %d, want sentinel", got)
	}
	// Reuse recycles the freed buffer; it must come back sentinel-filled.
	s.Set(1, 7)
	if got := s.Get(0); got != -3 {
		t.Fatalf("recycled page leaked stale value %d at addr 0", got)
	}
	if got := s.Get(1); got != 7 {
		t.Fatalf("recycled page lost its write: %d", got)
	}
	// The snapshot's shared pages were untouched by Reset.
	r := NewShadow(0)
	r.Restore(snap)
	if got := r.Get(0); got != 1 {
		t.Fatalf("snapshot damaged by Reset: addr 0 reads %d, want 1", got)
	}
	// PagesCopied is a lifetime counter and survives Reset.
	if s.PagesCopied() == 0 {
		t.Fatal("lifetime PagesCopied counter was cleared by Reset")
	}
}

// MapShadow.Reset is the parity operation of Shadow.Reset.
func TestMapShadowReset(t *testing.T) {
	m := NewMapShadow(-1)
	m.Set(3, 9)
	m.Reset()
	if got := m.Get(3); got != -1 {
		t.Fatalf("after Reset MapShadow reads %d, want sentinel", got)
	}
}
