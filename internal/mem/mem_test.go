package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAllocatorDisjoint(t *testing.T) {
	al := NewAllocator()
	a := al.Alloc("a", 100)
	b := al.Alloc("b", 50)
	if a.Base+Addr(a.Len) > b.Base {
		t.Fatalf("regions overlap: %v then %v", a, b)
	}
	if a.Contains(b.Base) || b.Contains(a.Base) {
		t.Fatal("regions must be disjoint")
	}
	if al.Footprint() != 150 {
		t.Fatalf("footprint = %d, want 150", al.Footprint())
	}
}

func TestAllocatorZeroReserved(t *testing.T) {
	al := NewAllocator()
	r := al.Alloc("r", 10)
	if r.Contains(0) {
		t.Fatal("address 0 must never be allocated")
	}
	var zero Allocator
	r2 := zero.Alloc("z", 1)
	if r2.Contains(0) {
		t.Fatal("zero-value allocator must also reserve address 0")
	}
}

func TestRegionAt(t *testing.T) {
	al := NewAllocator()
	r := al.Alloc("xs", 4)
	for i := 0; i < 4; i++ {
		if got := r.At(i); got != r.Base+Addr(i) {
			t.Fatalf("At(%d) = %d, want %d", i, got, r.Base+Addr(i))
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("At out of range must panic")
		}
	}()
	r.At(4)
}

func TestResolveDescribe(t *testing.T) {
	al := NewAllocator()
	al.Alloc("first", 8)
	r := al.Alloc("xs", 16)
	got := al.Describe(r.At(3))
	if got != "xs[3]" {
		t.Fatalf("Describe = %q, want xs[3]", got)
	}
	if _, ok := al.Resolve(Addr(10_000)); ok {
		t.Fatal("Resolve of unallocated address must fail")
	}
	if s := al.Describe(Addr(10_000)); s == "" {
		t.Fatal("Describe must fall back to hex")
	}
}

func TestShadowSentinel(t *testing.T) {
	s := NewShadow(-1)
	if got := s.Get(12345); got != -1 {
		t.Fatalf("unwritten Get = %d, want -1", got)
	}
	s.Set(12345, 7)
	if got := s.Get(12345); got != 7 {
		t.Fatalf("Get = %d, want 7", got)
	}
	// Neighbours on the same page still read sentinel.
	if got := s.Get(12346); got != -1 {
		t.Fatalf("neighbour Get = %d, want -1", got)
	}
}

func TestShadowPagesSparse(t *testing.T) {
	s := NewShadow(0)
	s.Set(1, 1)
	s.Set(1<<30, 2)
	if s.Pages() != 2 {
		t.Fatalf("pages = %d, want 2", s.Pages())
	}
	if s.Get(1) != 1 || s.Get(1<<30) != 2 {
		t.Fatal("paged values lost")
	}
}

func TestShadowMatchesMapShadow(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := NewShadow(-1)
		m := NewMapShadow(-1)
		for i := 0; i < 500; i++ {
			a := Addr(rng.Intn(1 << 16))
			if rng.Intn(2) == 0 {
				v := int32(rng.Intn(1000))
				p.Set(a, v)
				m.Set(a, v)
			}
			if p.Get(a) != m.Get(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAblationShadow(b *testing.B) {
	const span = 1 << 16
	b.Run("paged", func(b *testing.B) {
		s := NewShadow(-1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a := Addr(i % span)
			s.Set(a, int32(i))
			if s.Get(a) != int32(i) {
				b.Fatal("bad value")
			}
		}
	})
	b.Run("map", func(b *testing.B) {
		s := NewMapShadow(-1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a := Addr(i % span)
			s.Set(a, int32(i))
			if s.Get(a) != int32(i) {
				b.Fatal("bad value")
			}
		}
	})
}
