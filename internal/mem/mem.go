// Package mem provides the simulated shared-memory substrate the detectors
// instrument. The paper's Rader prototype piggybacks on ThreadSanitizer
// compiler instrumentation to observe each read and write of the program
// under test; here, programs instead allocate logical address ranges from an
// Allocator and report their accesses through the cilk execution context,
// which forwards (address, kind) pairs to the active detector.
//
// The package also provides the paged shadow spaces ("reader" and "writer"
// in the paper) that map each accessed address to the ID of the function
// instantiation that last read or wrote it.
package mem

import "fmt"

// Addr is a logical address in the simulated shared memory.
type Addr uint64

// Region is a named contiguous address range, typically shadowing one Go
// slice of the program under test.
type Region struct {
	Name string
	Base Addr
	Len  uint64
}

// Contains reports whether a falls inside the region.
func (r Region) Contains(a Addr) bool {
	return a >= r.Base && a < r.Base+Addr(r.Len)
}

// At returns the address of element i of the region.
func (r Region) At(i int) Addr {
	if i < 0 || uint64(i) >= r.Len {
		panic(fmt.Sprintf("mem: %s[%d] out of range [0,%d)", r.Name, i, r.Len))
	}
	return r.Base + Addr(i)
}

// String implements fmt.Stringer.
func (r Region) String() string {
	return fmt.Sprintf("%s[%#x,%#x)", r.Name, uint64(r.Base), uint64(r.Base)+r.Len)
}

// Allocator hands out non-overlapping address ranges. The zero value is
// ready for use and allocates from address 1 (address 0 is reserved so the
// zero Addr never aliases real data).
type Allocator struct {
	next    Addr
	regions []Region
}

// NewAllocator returns an allocator starting at address 1.
func NewAllocator() *Allocator { return &Allocator{next: 1} }

// Alloc reserves n addresses under the given name.
func (al *Allocator) Alloc(name string, n int) Region {
	if al.next == 0 {
		al.next = 1
	}
	if n < 0 {
		panic("mem: negative allocation")
	}
	r := Region{Name: name, Base: al.next, Len: uint64(n)}
	al.next += Addr(n)
	al.regions = append(al.regions, r)
	return r
}

// Resolve returns the region containing a, for human-readable race reports.
func (al *Allocator) Resolve(a Addr) (Region, bool) {
	for _, r := range al.regions {
		if r.Contains(a) {
			return r, true
		}
	}
	return Region{}, false
}

// Describe renders an address as region[offset] when known.
func (al *Allocator) Describe(a Addr) string {
	if r, ok := al.Resolve(a); ok {
		return fmt.Sprintf("%s[%d]", r.Name, uint64(a-r.Base))
	}
	return fmt.Sprintf("%#x", uint64(a))
}

// Footprint reports the total number of addresses allocated, the v in the
// paper's O(T·alpha(v,v)) bounds.
func (al *Allocator) Footprint() uint64 { return uint64(al.next) - 1 }

const (
	pageBits = 12
	pageSize = 1 << pageBits
	pageMask = pageSize - 1
)

// Shadow is a two-level paged shadow space mapping addresses to int32
// values (function-instantiation IDs in the detectors). Unmapped addresses
// read as the sentinel passed at construction. Pages materialize on first
// write, so sparse address spaces stay cheap while hot loops avoid map
// overhead — the ablation bench BenchmarkAblationShadow quantifies this
// against MapShadow.
type Shadow struct {
	pages    map[uint64][]int32
	sentinel int32
	// one-entry cache: hot loops touch consecutive addresses. Validity is
	// carried by lastBuf != nil, never by a magic lastPage value: with
	// 12-bit pages the key ^uint64(0) happens to be unreachable (a 64-bit
	// address shifts down to at most 2^52-1), but indexing correctness
	// must not hinge on that arithmetic accident surviving a pageBits
	// change.
	lastPage uint64
	lastBuf  []int32
}

// NewShadow returns a shadow space whose unwritten entries read as sentinel.
func NewShadow(sentinel int32) *Shadow {
	return &Shadow{pages: make(map[uint64][]int32), sentinel: sentinel}
}

func (s *Shadow) page(a Addr, create bool) []int32 {
	pn := uint64(a) >> pageBits
	if pn == s.lastPage && s.lastBuf != nil {
		return s.lastBuf
	}
	buf, ok := s.pages[pn]
	if !ok {
		if !create {
			return nil
		}
		buf = make([]int32, pageSize)
		if s.sentinel != 0 {
			for i := range buf {
				buf[i] = s.sentinel
			}
		}
		s.pages[pn] = buf
	}
	s.lastPage, s.lastBuf = pn, buf
	return buf
}

// Get returns the value stored at a, or the sentinel if never written.
func (s *Shadow) Get(a Addr) int32 {
	buf := s.page(a, false)
	if buf == nil {
		return s.sentinel
	}
	return buf[uint64(a)&pageMask]
}

// Set stores v at address a.
func (s *Shadow) Set(a Addr, v int32) {
	s.page(a, true)[uint64(a)&pageMask] = v
}

// Pages reports how many shadow pages have materialized.
func (s *Shadow) Pages() int { return len(s.pages) }

// MapShadow is the map-backed alternative used only as the ablation baseline.
type MapShadow struct {
	m        map[Addr]int32
	sentinel int32
}

// NewMapShadow returns a map-backed shadow with the given sentinel.
func NewMapShadow(sentinel int32) *MapShadow {
	return &MapShadow{m: make(map[Addr]int32), sentinel: sentinel}
}

// Get returns the value at a or the sentinel.
func (s *MapShadow) Get(a Addr) int32 {
	if v, ok := s.m[a]; ok {
		return v
	}
	return s.sentinel
}

// Set stores v at a.
func (s *MapShadow) Set(a Addr, v int32) { s.m[a] = v }
