// Package mem provides the simulated shared-memory substrate the detectors
// instrument. The paper's Rader prototype piggybacks on ThreadSanitizer
// compiler instrumentation to observe each read and write of the program
// under test; here, programs instead allocate logical address ranges from an
// Allocator and report their accesses through the cilk execution context,
// which forwards (address, kind) pairs to the active detector.
//
// The package also provides the paged shadow spaces ("reader" and "writer"
// in the paper) that map each accessed address to the ID of the function
// instantiation that last read or wrote it.
package mem

import "fmt"

// Addr is a logical address in the simulated shared memory.
type Addr uint64

// Region is a named contiguous address range, typically shadowing one Go
// slice of the program under test.
type Region struct {
	Name string
	Base Addr
	Len  uint64
}

// Contains reports whether a falls inside the region.
func (r Region) Contains(a Addr) bool {
	return a >= r.Base && a < r.Base+Addr(r.Len)
}

// At returns the address of element i of the region.
func (r Region) At(i int) Addr {
	if i < 0 || uint64(i) >= r.Len {
		panic(fmt.Sprintf("mem: %s[%d] out of range [0,%d)", r.Name, i, r.Len))
	}
	return r.Base + Addr(i)
}

// String implements fmt.Stringer.
func (r Region) String() string {
	return fmt.Sprintf("%s[%#x,%#x)", r.Name, uint64(r.Base), uint64(r.Base)+r.Len)
}

// Allocator hands out non-overlapping address ranges. The zero value is
// ready for use and allocates from address 1 (address 0 is reserved so the
// zero Addr never aliases real data).
type Allocator struct {
	next    Addr
	regions []Region
}

// NewAllocator returns an allocator starting at address 1.
func NewAllocator() *Allocator { return &Allocator{next: 1} }

// Alloc reserves n addresses under the given name.
func (al *Allocator) Alloc(name string, n int) Region {
	if al.next == 0 {
		al.next = 1
	}
	if n < 0 {
		panic("mem: negative allocation")
	}
	r := Region{Name: name, Base: al.next, Len: uint64(n)}
	al.next += Addr(n)
	al.regions = append(al.regions, r)
	return r
}

// Resolve returns the region containing a, for human-readable race reports.
func (al *Allocator) Resolve(a Addr) (Region, bool) {
	for _, r := range al.regions {
		if r.Contains(a) {
			return r, true
		}
	}
	return Region{}, false
}

// Describe renders an address as region[offset] when known.
func (al *Allocator) Describe(a Addr) string {
	if r, ok := al.Resolve(a); ok {
		return fmt.Sprintf("%s[%d]", r.Name, uint64(a-r.Base))
	}
	return fmt.Sprintf("%#x", uint64(a))
}

// Footprint reports the total number of addresses allocated, the v in the
// paper's O(T·alpha(v,v)) bounds.
func (al *Allocator) Footprint() uint64 { return uint64(al.next) - 1 }

const (
	pageBits = 12
	pageSize = 1 << pageBits
	pageMask = pageSize - 1

	// maxFreePages caps the Reset free list. A 10^4-spec sweep resets
	// pooled detectors tens of thousands of times; without a cap each
	// Reset of a page-heavy unit would park every private page forever,
	// hoarding arena-sized buffers that the next (usually small) unit
	// never drains. 128 pages (2 MiB of int32s) keeps the hot reuse path
	// while bounding the pool.
	maxFreePages = 128
)

// shadowPage is one materialized page. A page starts private to the Shadow
// that created it; taking a Snapshot marks every live page shared, after
// which the struct is immutable — a later write copies the buffer into a
// fresh private page and swaps the map entry, leaving every snapshot that
// references the shared page untouched (copy-on-write).
type shadowPage struct {
	buf    []int32
	shared bool
}

// Shadow is a two-level paged shadow space mapping addresses to int32
// values (function-instantiation IDs in the detectors). Unmapped addresses
// read as the sentinel passed at construction. Pages materialize on first
// write, so sparse address spaces stay cheap while hot loops avoid map
// overhead — the ablation bench BenchmarkAblationShadow quantifies this
// against MapShadow.
type Shadow struct {
	pages    map[uint64]*shadowPage
	sentinel int32
	// one-entry cache: hot loops touch consecutive addresses. Validity is
	// carried by last != nil, never by a magic lastPage value: with
	// 12-bit pages the key ^uint64(0) happens to be unreachable (a 64-bit
	// address shifts down to at most 2^52-1), but indexing correctness
	// must not hinge on that arithmetic accident surviving a pageBits
	// change.
	lastPage uint64
	last     *shadowPage
	// free recycles private page buffers across Reset calls so pooled
	// sweep units reuse pages without reallocation.
	free [][]int32
	// copied counts copy-on-write page clones since construction.
	copied uint64
}

// NewShadow returns a shadow space whose unwritten entries read as sentinel.
func NewShadow(sentinel int32) *Shadow {
	return &Shadow{pages: make(map[uint64]*shadowPage), sentinel: sentinel}
}

// newPage hands out a sentinel-filled buffer, recycling one from the free
// list when available.
func (s *Shadow) newPage() []int32 {
	var buf []int32
	if n := len(s.free); n > 0 {
		buf = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		buf = make([]int32, pageSize)
		if s.sentinel == 0 {
			return buf
		}
	}
	for i := range buf {
		buf[i] = s.sentinel
	}
	return buf
}

func (s *Shadow) page(a Addr, create bool) *shadowPage {
	pn := uint64(a) >> pageBits
	if pn == s.lastPage && s.last != nil {
		return s.last
	}
	pg, ok := s.pages[pn]
	if !ok {
		if !create {
			return nil
		}
		pg = &shadowPage{buf: s.newPage()}
		s.pages[pn] = pg
	}
	s.lastPage, s.last = pn, pg
	return pg
}

// Get returns the value stored at a, or the sentinel if never written.
func (s *Shadow) Get(a Addr) int32 {
	pg := s.page(a, false)
	if pg == nil {
		return s.sentinel
	}
	return pg.buf[uint64(a)&pageMask]
}

// Set stores v at address a. Writing to a page shared with a snapshot
// first clones it into a fresh private page (copy-on-write), so snapshots
// stay immutable.
func (s *Shadow) Set(a Addr, v int32) {
	pg := s.page(a, true)
	if pg.shared {
		clone := &shadowPage{buf: s.newPage()}
		copy(clone.buf, pg.buf)
		pn := uint64(a) >> pageBits
		s.pages[pn] = clone
		s.lastPage, s.last = pn, clone
		s.copied++
		pg = clone
	}
	pg.buf[uint64(a)&pageMask] = v
}

// Pages reports how many shadow pages have materialized.
func (s *Shadow) Pages() int { return len(s.pages) }

// PagesCopied reports how many copy-on-write page clones writes have
// forced since construction (Reset does not clear it; it is a lifetime
// counter feeding the sweep's pages-copied metric).
func (s *Shadow) PagesCopied() uint64 { return s.copied }

// Reset forgets every stored value, as if the shadow were freshly
// constructed with the same sentinel. Private page buffers are recycled
// into a free list (capped at maxFreePages) for the next materialization;
// shared pages may still back live snapshots, and overflow beyond the cap
// is left to the garbage collector.
func (s *Shadow) Reset() {
	for pn, pg := range s.pages {
		if !pg.shared && len(s.free) < maxFreePages {
			s.free = append(s.free, pg.buf)
		}
		delete(s.pages, pn)
	}
	s.last = nil
}

// PagesPooled reports how many recycled page buffers the free list holds,
// the residency behind the raderd_sweep_pages_pooled gauge.
func (s *Shadow) PagesPooled() int { return len(s.free) }

// ShadowSnap is an immutable point-in-time copy of a Shadow, produced by
// Snapshot and consumed (any number of times) by Restore. Cost is
// proportional to the number of materialized pages — page buffers are
// shared copy-on-write, not copied.
type ShadowSnap struct {
	pages    map[uint64]*shadowPage
	sentinel int32
}

// Snapshot captures the current contents. Every live page is marked
// shared, so subsequent writes through this Shadow (or any Shadow restored
// from the snapshot) copy the page before mutating it.
func (s *Shadow) Snapshot() *ShadowSnap {
	return s.SnapshotInto(nil)
}

// SnapshotInto is Snapshot reusing a retired snapshot's containers. The
// work-stealing sweep refcounts snapshots: once every seeded unit has
// restored from one, its struct and page map (never the page buffers,
// which stay shared) can back the next capture without reallocation.
// Passing nil allocates fresh, exactly like Snapshot.
func (s *Shadow) SnapshotInto(snap *ShadowSnap) *ShadowSnap {
	if snap == nil || snap.pages == nil {
		snap = &ShadowSnap{pages: make(map[uint64]*shadowPage, len(s.pages))}
	} else {
		clear(snap.pages)
	}
	snap.sentinel = s.sentinel
	for pn, pg := range s.pages {
		// Only flip private pages: an already-shared page may be visible to
		// sibling shadows restored from an earlier snapshot, and re-writing
		// the flag would race with their reads. Shared is monotonic, so the
		// prior write is already visible via the snapshot handoff.
		if !pg.shared {
			pg.shared = true
		}
		snap.pages[pn] = pg
	}
	return snap
}

// Restore replaces the shadow's contents with the snapshot's. The sentinel
// is adopted from the snapshot; previously private pages are recycled.
func (s *Shadow) Restore(snap *ShadowSnap) {
	s.Reset()
	s.sentinel = snap.sentinel
	for pn, pg := range snap.pages {
		s.pages[pn] = pg
	}
}

// MapShadow is the map-backed alternative used only as the ablation baseline.
type MapShadow struct {
	m        map[Addr]int32
	sentinel int32
}

// NewMapShadow returns a map-backed shadow with the given sentinel.
func NewMapShadow(sentinel int32) *MapShadow {
	return &MapShadow{m: make(map[Addr]int32), sentinel: sentinel}
}

// Get returns the value at a or the sentinel.
func (s *MapShadow) Get(a Addr) int32 {
	if v, ok := s.m[a]; ok {
		return v
	}
	return s.sentinel
}

// Set stores v at a.
func (s *MapShadow) Set(a Addr, v int32) { s.m[a] = v }

// Reset forgets every stored value, the MapShadow parity of Shadow.Reset.
func (s *MapShadow) Reset() { clear(s.m) }
