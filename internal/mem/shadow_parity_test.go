package mem

import (
	"math/rand"
	"testing"
)

// The paged Shadow and the map-backed MapShadow implement one contract: a
// Get returns the last Set value, or the sentinel for a never-written
// address. The property test drives both with an identical random
// operation mix over the full 64-bit address range — including the page
// holding ^uint64(0), the boundary that would collide with a lastPage
// sentinel chosen from the page-key space — and demands bit-for-bit
// agreement throughout.
func TestShadowMapShadowParity(t *testing.T) {
	const sentinel = -7
	rng := rand.New(rand.NewSource(20150613))

	// Addresses are drawn from clusters that stress the cache and the
	// paging: dense low addresses, page-boundary straddles, and the very
	// top of the address space where a sentinel-valued page key would
	// live.
	clusters := []uint64{
		0,
		1,
		pageSize - 2,
		pageSize,
		(1 << 20) - 3,
		^uint64(0) - pageSize - 2,
		^uint64(0) - 2,
	}
	pick := func() Addr {
		base := clusters[rng.Intn(len(clusters))]
		return Addr(base + uint64(rng.Intn(5)))
	}

	paged := NewShadow(sentinel)
	mapped := NewMapShadow(sentinel)
	for i := 0; i < 20000; i++ {
		a := pick()
		switch rng.Intn(40) {
		case 0:
			// Reset-then-reuse: both sides forget everything; the paged side
			// must refill recycled buffers with the sentinel, not leak stale
			// values back through the free list.
			paged.Reset()
			mapped.Reset()
		case 1:
			// A snapshot marks pages shared; subsequent writes go through
			// the copy-on-write path. Parity must survive the transition.
			paged.Snapshot()
		default:
			if rng.Intn(2) == 0 {
				v := int32(rng.Intn(100))
				paged.Set(a, v)
				mapped.Set(a, v)
			}
		}
		if got, want := paged.Get(a), mapped.Get(a); got != want {
			t.Fatalf("op %d: Shadow.Get(%#x) = %d, MapShadow says %d", i, uint64(a), got, want)
		}
		// Interleave a read of a different cluster so the one-entry page
		// cache is repeatedly invalidated and repopulated.
		b := pick()
		if got, want := paged.Get(b), mapped.Get(b); got != want {
			t.Fatalf("op %d: Shadow.Get(%#x) = %d, MapShadow says %d", i, uint64(b), got, want)
		}
	}
}

// The sentinel boundary itself: the highest addresses must read as unset,
// accept writes, and not alias any other page — even though their page
// number is the largest representable key, adjacent to what a ^uint64(0)
// cache sentinel would occupy if page keys ever widened.
func TestShadowSentinelBoundary(t *testing.T) {
	s := NewShadow(-1)
	top := Addr(^uint64(0))
	if got := s.Get(top); got != -1 {
		t.Fatalf("unwritten top address reads %d, want sentinel -1", got)
	}
	s.Set(top, 42)
	if got := s.Get(top); got != 42 {
		t.Fatalf("top address reads %d after Set, want 42", got)
	}
	// The first page must be unaffected: a collapsed or aliased page key
	// would surface here.
	if got := s.Get(0); got != -1 {
		t.Fatalf("address 0 reads %d after writing the top page, want sentinel", got)
	}
	s.Set(0, 7)
	if got, gotTop := s.Get(0), s.Get(top); got != 7 || gotTop != 42 {
		t.Fatalf("pages alias: low=%d (want 7), top=%d (want 42)", got, gotTop)
	}
	if s.Pages() != 2 {
		t.Fatalf("expected exactly 2 materialized pages, got %d", s.Pages())
	}
}
