package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/rader"
	"repro/internal/report"
	"repro/internal/store"
	"repro/internal/trace"
)

// openDurable starts a store-backed server rooted at dir. Unlike
// newTestServer it surfaces store errors (the point under test).
func openDurable(t *testing.T, dir string, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.StoreDir = dir
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// putChunk PUTs one chunk of a resumable upload and returns the decoded
// status (or error body text) plus the response.
func putChunk(t *testing.T, base, digest string, offset int64, complete bool, body []byte) (*http.Response, []byte) {
	t.Helper()
	url := fmt.Sprintf("%s/traces/%s?offset=%d", base, digest, offset)
	if complete {
		url += "&complete=1"
	}
	req, err := http.NewRequest(http.MethodPut, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, b
}

// headTrace reads the resume state of an upload.
func headTrace(t *testing.T, base, digest string) (offset int64, complete bool) {
	t.Helper()
	req, _ := http.NewRequest(http.MethodHead, base+"/traces/"+digest, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HEAD /traces/%s: %d", digest, resp.StatusCode)
	}
	fmt.Sscanf(resp.Header.Get("Upload-Offset"), "%d", &offset)
	complete = resp.Header.Get("Upload-Complete") == "true"
	return offset, complete
}

// A verdict computed before a restart must be served — byte-identical and
// marked cached — by the restarted daemon, with an empty RAM cache: the
// disk store is the source of truth, the LRU only a read-through layer.
func TestVerdictSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	raw := fixture(t, "fig1_v2.trace")

	_, ts1 := openDurable(t, dir, Config{Workers: 2})
	resp, body := postAnalyze(t, ts1.URL+"/analyze?detector=sp%2B", raw)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze: %d %s", resp.StatusCode, body)
	}
	first := decodeAnalyze(t, body)
	if first.Cached {
		t.Fatal("first analysis cannot be cached")
	}
	ts1.Close()

	_, ts2 := openDurable(t, dir, Config{Workers: 2})
	resp2, body2 := postAnalyze(t, ts2.URL+"/analyze?detector=sp%2B", raw)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("analyze after restart: %d %s", resp2.StatusCode, body2)
	}
	second := decodeAnalyze(t, body2)
	if !second.Cached {
		t.Fatal("restarted daemon must serve the stored verdict as a cache hit")
	}
	if !bytes.Equal(first.Report, second.Report) {
		t.Fatalf("verdict not byte-identical across restart:\n%s\nvs\n%s", first.Report, second.Report)
	}
}

// An all-detectors verdict — including every seeded per-detector sub-verdict —
// survives a restart too.
func TestAllDetectorVerdictsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	raw := fixture(t, "fig1_v2.trace")

	_, ts1 := openDurable(t, dir, Config{Workers: 2})
	resp, body := postAnalyze(t, ts1.URL+"/analyze?detector=all", raw)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze all: %d %s", resp.StatusCode, body)
	}
	ts1.Close()

	_, ts2 := openDurable(t, dir, Config{Workers: 2})
	// A single-detector request for the same digest must hit the seeded,
	// persisted sub-verdict without re-running anything.
	resp2, body2 := postAnalyze(t, ts2.URL+"/analyze?detector=sp%2B", raw)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("sub-verdict after restart: %d %s", resp2.StatusCode, body2)
	}
	if ar := decodeAnalyze(t, body2); !ar.Cached {
		t.Fatal("seeded sub-verdict must survive the restart as a cache hit")
	}
}

// A complete sweep verdict survives a restart: resubmitting the sweep on
// the restarted daemon returns the stored document immediately.
func TestSweepVerdictSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	_, ts1 := openDurable(t, dir, Config{Workers: 2, SweepWorkers: 2})
	sr := submitSweepAndWait(t, ts1.URL, "fig1")
	ts1.Close()

	_, ts2 := openDurable(t, dir, Config{Workers: 2, SweepWorkers: 2})
	resp, err := http.Post(ts2.URL+"/sweep?prog=fig1", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep after restart should be a stored hit: %d %s", resp.StatusCode, body)
	}
	var sr2 SweepResponse
	if err := json.Unmarshal(body, &sr2); err != nil {
		t.Fatal(err)
	}
	if sr2.State != stateDone || !bytes.Equal(sr2.Sweep, sr.Sweep) {
		t.Fatalf("restarted sweep verdict diverges: %+v", sr2)
	}
}

// submitSweepAndWait runs one sweep job to completion and returns the
// final poll response.
func submitSweepAndWait(t *testing.T, base, prog string) SweepResponse {
	t.Helper()
	resp, err := http.Post(base+"/sweep?prog="+prog, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep submit: %d %s", resp.StatusCode, body)
	}
	var sr SweepResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for sr.State != stateDone && sr.State != stateFailed {
		if time.Now().After(deadline) {
			t.Fatalf("sweep stuck in state %q", sr.State)
		}
		time.Sleep(5 * time.Millisecond)
		pr, err := http.Get(base + "/sweep/" + sr.ID)
		if err != nil {
			t.Fatal(err)
		}
		pb, _ := io.ReadAll(pr.Body)
		pr.Body.Close()
		if err := json.Unmarshal(pb, &sr); err != nil {
			t.Fatalf("poll decode: %v (%s)", err, pb)
		}
	}
	if sr.State != stateDone {
		t.Fatalf("sweep failed: %s", sr.Error)
	}
	return sr
}

// The full resumable-ingest contract: chunked PUTs with durable offsets,
// HEAD resume, offset-conflict recovery, commit, idempotent re-upload,
// and analyze-by-digest parity with a local replay.
func TestResumableIngestAndAnalyzeByDigest(t *testing.T) {
	dir := t.TempDir()
	_, ts := openDurable(t, dir, Config{Workers: 2})
	raw := fixture(t, "fig1_v2.trace")
	dg, _ := trace.DigestOf(bytes.NewReader(raw))
	digest := dg.String()

	// Analyze-by-digest before upload: 404.
	resp, body := postAnalyze(t, ts.URL+"/analyze?digest="+digest, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("analyze of unknown digest: %d %s", resp.StatusCode, body)
	}

	half := len(raw) / 2
	resp, body = putChunk(t, ts.URL, digest, 0, false, raw[:half])
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("chunk 1: %d %s", resp.StatusCode, body)
	}
	if off, complete := headTrace(t, ts.URL, digest); off != int64(half) || complete {
		t.Fatalf("after chunk 1: offset %d complete %v, want %d false", off, complete, half)
	}

	// A stale offset (a client retrying a chunk the server already has)
	// conflicts with the truth in Upload-Offset.
	resp, body = putChunk(t, ts.URL, digest, 0, false, raw[:half])
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale chunk: %d %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Upload-Offset"); got != fmt.Sprint(half) {
		t.Fatalf("conflict Upload-Offset %q, want %d", got, half)
	}

	resp, body = putChunk(t, ts.URL, digest, int64(half), true, raw[half:])
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("final chunk: %d %s", resp.StatusCode, body)
	}
	var st TraceStatusResponse
	if err := json.Unmarshal(body, &st); err != nil || !st.Complete {
		t.Fatalf("commit response: %s (err %v)", body, err)
	}

	// Re-uploading a stored trace is an idempotent no-op.
	resp, body = putChunk(t, ts.URL, digest, 0, true, raw)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("idempotent re-upload: %d %s", resp.StatusCode, body)
	}

	// Analyze by reference; the verdict must equal a local replay.
	resp, body = postAnalyze(t, ts.URL+"/analyze?digest="+digest+"&detector=sp%2B", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze by digest: %d %s", resp.StatusCode, body)
	}
	ar := decodeAnalyze(t, body)
	det, hooks, err := rader.NewDetector(rader.SPPlus)
	if err != nil {
		t.Fatal(err)
	}
	events, err := trace.Replay(bytes.NewReader(raw), hooks)
	if err != nil {
		t.Fatal(err)
	}
	local, err := report.FromCore(string(rader.SPPlus), "", events, det.Report()).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(local, ar.Report) {
		t.Fatalf("stored-trace verdict != local verdict:\nremote: %s\nlocal:  %s", ar.Report, local)
	}
}

// A partially uploaded trace survives a daemon restart: the new process
// reports the durable offset and the client finishes from there.
func TestPartialUploadSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	raw := fixture(t, "fig1_v2.trace")
	dg, _ := trace.DigestOf(bytes.NewReader(raw))
	digest := dg.String()
	half := len(raw) / 2

	_, ts1 := openDurable(t, dir, Config{Workers: 2})
	if resp, body := putChunk(t, ts1.URL, digest, 0, false, raw[:half]); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("chunk 1: %d %s", resp.StatusCode, body)
	}
	ts1.Close()

	_, ts2 := openDurable(t, dir, Config{Workers: 2})
	off, complete := headTrace(t, ts2.URL, digest)
	if off != int64(half) || complete {
		t.Fatalf("restart lost the partial: offset %d complete %v, want %d false", off, complete, half)
	}
	if resp, body := putChunk(t, ts2.URL, digest, off, true, raw[half:]); resp.StatusCode != http.StatusCreated {
		t.Fatalf("resume after restart: %d %s", resp.StatusCode, body)
	}
	if resp, body := postAnalyze(t, ts2.URL+"/analyze?digest="+digest, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze resumed trace: %d %s", resp.StatusCode, body)
	}
}

// A complete upload whose content is wrong — digest mismatch or an
// invalid trace — is rejected at commit with 422 and the partial is
// quarantined, forcing a clean restart from offset 0.
func TestIngestCommitRejectsCorruptContent(t *testing.T) {
	dir := t.TempDir()
	_, ts := openDurable(t, dir, Config{Workers: 2})

	// Content that hashes to the claimed digest but is not a trace.
	junk := []byte("definitely not a CILKTRACE stream")
	dg, _ := trace.DigestOf(bytes.NewReader(junk))
	resp, body := putChunk(t, ts.URL, dg.String(), 0, true, junk)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("non-trace commit: %d %s", resp.StatusCode, body)
	}
	if off, complete := headTrace(t, ts.URL, dg.String()); off != 0 || complete {
		t.Fatalf("rejected upload must reset: offset %d complete %v", off, complete)
	}

	// Content that does not hash to the claimed digest.
	raw := fixture(t, "fig1_v2.trace")
	wrong := strings.Repeat("ab", 32)
	resp, body = putChunk(t, ts.URL, wrong, 0, true, raw)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("digest-mismatch commit: %d %s", resp.StatusCode, body)
	}
}

// Ingest request validation: digests are checked before any disk I/O and
// a store-less daemon refuses the endpoint outright.
func TestIngestValidation(t *testing.T) {
	dir := t.TempDir()
	_, ts := openDurable(t, dir, Config{Workers: 1})

	resp, body := putChunk(t, ts.URL, "not-a-digest", 0, false, []byte("x"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad digest: %d %s", resp.StatusCode, body)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/traces/"+strings.Repeat("ab", 32), nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE: %d", dresp.StatusCode)
	}

	// Without a store the whole endpoint is 501, and so is
	// analyze-by-digest.
	_, plain := newTestServer(t, Config{Workers: 1})
	resp, body = putChunk(t, plain.URL, strings.Repeat("ab", 32), 0, false, []byte("x"))
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("store-less ingest: %d %s", resp.StatusCode, body)
	}
	aresp, abody := postAnalyze(t, plain.URL+"/analyze?digest="+strings.Repeat("ab", 32), nil)
	if aresp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("store-less analyze-by-digest: %d %s", aresp.StatusCode, abody)
	}
}

// The graceful-drain contract: once draining, /readyz flips to 503 while
// /healthz stays 200, and every work-accepting endpoint refuses with 503
// (not 429 — the condition is terminal for this process).
func TestDrainRefusesNewWorkReadyzBeforeHealthz(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})

	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if get("/readyz") != http.StatusOK || get("/healthz") != http.StatusOK {
		t.Fatal("fresh server must be ready and healthy")
	}

	s.BeginDrain()
	if get("/readyz") != http.StatusServiceUnavailable {
		t.Fatal("draining server must fail readiness")
	}
	if get("/healthz") != http.StatusOK {
		t.Fatal("draining server must stay live — readiness flips first, liveness last")
	}
	resp, body := postAnalyze(t, ts.URL+"/analyze", fixture(t, "fig1_v2.trace"))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining analyze: %d %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("drain refusal must carry Retry-After")
	}
	sresp, err := http.Post(ts.URL+"/sweep?prog=fig1", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if sresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining sweep: %d", sresp.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain of idle server: %v", err)
	}
}

// Draining with work in flight waits for it; an expired deadline reports
// how much was abandoned.
func TestDrainWaitsForInFlight(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, SweepWorkers: 1})
	// Occupy the only worker with a sweep.
	resp, err := http.Post(ts.URL+"/sweep?prog=fig1", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if s.Admitted() != 0 {
		t.Fatalf("post-drain admitted = %d", s.Admitted())
	}
}

// A journaled-but-unfinished sweep job from a dead incarnation is
// re-enqueued on the next start, runs to completion, and closes its
// journal record — a third start finds nothing pending.
func TestJournaledJobReenqueuedOnRestart(t *testing.T) {
	dir := t.TempDir()

	// Incarnation 1 "crashes" with a queued job in the journal. Writing
	// the record directly simulates dying after the 202 acknowledgment
	// but before the sweep ran.
	s1, err := Open(Config{Workers: 1, StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.store.JournalJob(store.JobRecord{ID: "dead0-sweep-1", Prog: "fig1", State: store.JobQueued}); err != nil {
		t.Fatal(err)
	}

	// Incarnation 2 must re-enqueue and finish it.
	s2, err := Open(Config{Workers: 1, SweepWorkers: 2, StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s2.recovery.PendingJobs); got != 1 {
		t.Fatalf("recovery found %d pending jobs, want 1", got)
	}
	if s2.recovered.Load() != 1 {
		t.Fatalf("recovered counter = %d, want 1", s2.recovered.Load())
	}
	deadline := time.Now().Add(30 * time.Second)
	for s2.Admitted() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("recovered job never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Incarnation 3: the journal is clean and the sweep verdict is
	// already durable.
	s3, ts3 := openDurable(t, dir, Config{Workers: 1})
	if got := len(s3.recovery.PendingJobs); got != 0 {
		t.Fatalf("journal not closed after recovered run: %d pending", got)
	}
	resp, err := http.Post(ts3.URL+"/sweep?prog=fig1", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recovered sweep verdict should be a stored hit: %d %s", resp.StatusCode, body)
	}
}

// A journaled job naming a program this build does not know is closed as
// failed, not retried forever.
func TestJournaledJobUnknownProgramMarkedFailed(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(Config{Workers: 1, StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.store.JournalJob(store.JobRecord{ID: "dead0-sweep-9", Prog: "no-such-program", State: store.JobQueued}); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(Config{Workers: 1, StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s2.recovery.PendingJobs); got != 1 {
		t.Fatalf("second open: %d pending, want 1", got)
	}
	s3, err := Open(Config{Workers: 1, StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s3.recovery.PendingJobs); got != 0 {
		t.Fatalf("unknown-program job must be closed failed: %d still pending", got)
	}
}

// Chunked ingest of a multi-hundred-megabyte upload must not buffer the
// trace in RAM: heap growth across the whole upload stays bounded by a
// constant far below the payload size.
func TestLargeChunkedUploadBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("large upload test skipped in -short mode")
	}
	dir := t.TempDir()
	_, ts := openDurable(t, dir, Config{Workers: 1, MaxUploadBytes: 8 << 20})

	const total = 120 << 20 // 120 MiB, well past any plausible buffer
	const chunk = 6 << 20
	// Deterministic pseudo-random content, generated chunk by chunk so the
	// test itself never holds the payload either.
	makeChunk := func(off int64, n int) []byte {
		b := make([]byte, n)
		for i := range b {
			v := off + int64(i)
			b[i] = byte(v*2654435761 + v>>13)
		}
		return b
	}
	digest := strings.Repeat("0123456789abcdef", 4) // never committed; content is junk

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	var peak uint64

	for off := int64(0); off < total; off += chunk {
		n := chunk
		if rem := total - off; rem < int64(n) {
			n = int(rem)
		}
		resp, body := putChunk(t, ts.URL, digest, off, false, makeChunk(off, n))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("chunk at %d: %d %s", off, resp.StatusCode, body)
		}
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > peak {
			peak = ms.HeapAlloc
		}
	}
	if off, _ := headTrace(t, ts.URL, digest); off != total {
		t.Fatalf("durable offset %d, want %d", off, total)
	}

	// Peak heap growth must be a small constant (chunk buffers + HTTP
	// machinery), nowhere near the 120 MiB payload.
	growth := int64(peak) - int64(before.HeapAlloc)
	if growth > 64<<20 {
		t.Fatalf("heap grew %d MiB during a streamed 120 MiB upload — ingest is buffering", growth>>20)
	}
}
