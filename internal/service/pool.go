package service

import "context"

// pool is the admission-controlled worker pool. Two counting semaphores
// bound the system: admit caps the total work accepted (running plus
// queued — overflow is shed with 429 at the door), run caps the analyses
// executing at once. A request first claims an admission token without
// blocking; holders then queue for a run slot. The daemon therefore never
// has more than workers analyses running nor more than queueDepth requests
// waiting, no matter the request rate.
type pool struct {
	admit chan struct{}
	run   chan struct{}
}

func newPool(workers, queueDepth int) *pool {
	if workers < 1 {
		workers = 1
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	return &pool{
		admit: make(chan struct{}, workers+queueDepth),
		run:   make(chan struct{}, workers),
	}
}

// tryAdmit claims an admission token, reporting false when the system is
// saturated (the caller responds 429).
func (p *pool) tryAdmit() bool {
	select {
	case p.admit <- struct{}{}:
		return true
	default:
		return false
	}
}

// unadmit returns an admission token (pair with tryAdmit).
func (p *pool) unadmit() { <-p.admit }

// acquire blocks for a run slot, or gives up when ctx is cancelled (the
// client hung up while queued).
func (p *pool) acquire(ctx context.Context) error {
	select {
	case p.run <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns a run slot (pair with acquire).
func (p *pool) release() { <-p.run }

// running reports the analyses executing now.
func (p *pool) running() int { return len(p.run) }

// admitted reports the total work in the system (running + queued).
func (p *pool) admitted() int { return len(p.admit) }

// workers reports the run capacity.
func (p *pool) workers() int { return cap(p.run) }
