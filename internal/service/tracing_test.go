package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// analyzeWithTraceparent posts one /analyze request carrying a client
// traceparent and returns the decoded response.
func analyzeWithTraceparent(t *testing.T, url, tp string) AnalyzeResponse {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obs.TraceparentHeader, tp)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze: %d %s", resp.StatusCode, body)
	}
	return decodeAnalyze(t, body)
}

// A propagated traceparent must surface in the persisted span tree: the
// stored SpanDoc carries the client's trace ID, and the Chrome rendering
// of GET /traces/{digest}/trace contains the server's phase spans.
func TestTraceparentLinksServerSpans(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	ctx := obs.NewSpanContext()
	ar := analyzeWithTraceparent(t, ts.URL+"/analyze?prog=fig1&spec=all", ctx.Traceparent())
	if ar.Cached {
		t.Fatal("first analysis cannot be cached")
	}

	resp, err := http.Get(ts.URL + "/traces/" + ar.Digest + "/trace?format=spans")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("span tree fetch: %d %s", resp.StatusCode, raw)
	}
	doc, err := obs.DecodeSpans(raw)
	if err != nil {
		t.Fatalf("decoding span doc: %v", err)
	}
	if doc.Process != "raderd" {
		t.Errorf("process = %q, want raderd", doc.Process)
	}
	sctx, ok := doc.Context()
	if !ok {
		t.Fatalf("span doc has no trace context: %s", raw)
	}
	if sctx.TraceID != ctx.TraceID {
		t.Errorf("server trace ID %x, want the client's %x", sctx.TraceID, ctx.TraceID)
	}
	if sctx.SpanID == ctx.SpanID {
		t.Error("server must mint its own span ID, not reuse the client's")
	}
	var names []string
	for _, sp := range doc.Spans {
		names = append(names, sp.Name)
	}
	for _, want := range []string{"queue", "run", "encode"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("span tree lacks phase %q (have %v)", want, names)
		}
	}

	// Default format is Chrome trace-event JSON with process metadata.
	cresp, err := http.Get(ts.URL + "/traces/" + ar.Digest + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	craw, _ := io.ReadAll(cresp.Body)
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("chrome trace fetch: %d %s", cresp.StatusCode, craw)
	}
	var cdoc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(craw, &cdoc); err != nil {
		t.Fatalf("chrome trace is not a trace-event document: %v", err)
	}
	var haveX, haveMeta bool
	for _, ev := range cdoc.TraceEvents {
		switch ev["ph"] {
		case "X":
			haveX = true
		case "M":
			haveMeta = true
		}
	}
	if !haveX || !haveMeta {
		t.Errorf("chrome rendering needs X spans and M metadata, got X=%v M=%v", haveX, haveMeta)
	}
}

// Without a traceparent the server roots its own trace; the tree is
// still persisted and retrievable.
func TestTraceTreeWithoutClientContext(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	resp, body := postAnalyze(t, ts.URL+"/analyze?prog=fig1&spec=none", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze: %d %s", resp.StatusCode, body)
	}
	ar := decodeAnalyze(t, body)
	tresp, err := http.Get(ts.URL + "/traces/" + ar.Digest + "/trace?format=spans")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(tresp.Body)
	tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("span tree fetch: %d %s", tresp.StatusCode, raw)
	}
	doc, err := obs.DecodeSpans(raw)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := doc.Context(); !ok {
		t.Error("a server-rooted trace must still carry a valid context")
	}
}

// A malformed traceparent must not fail the request — propagation is an
// upgrade, never a requirement.
func TestMalformedTraceparentIgnored(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	ar := analyzeWithTraceparent(t, ts.URL+"/analyze?prog=fig1&spec=all", "00-borked")
	if ar.Clean {
		t.Fatal("fig1 under steal-all must race")
	}
}

func TestTraceTreeNotFound(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	digest := strings.Repeat("ab", 32)
	resp, err := http.Get(ts.URL + "/traces/" + digest + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown digest trace: %d, want 404", resp.StatusCode)
	}
	badResp, err := http.Get(ts.URL + "/traces/nothex/trace")
	if err != nil {
		t.Fatal(err)
	}
	badResp.Body.Close()
	if badResp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad digest trace: %d, want 400", badResp.StatusCode)
	}
}

// submitSweep posts /sweep and returns the decoded job envelope.
func submitSweep(t *testing.T, url string) SweepResponse {
	t.Helper()
	resp, err := http.Post(url, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep submit: %d %s", resp.StatusCode, body)
	}
	var sr SweepResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	return sr
}

// waitJobDone polls /sweep/{id} until the job is terminal.
func waitJobDone(t *testing.T, base, id string) SweepResponse {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/sweep/" + id)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var sr SweepResponse
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Fatal(err)
		}
		if sr.State == stateDone || sr.State == stateFailed {
			return sr
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q", id, sr.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// sseEvent is one parsed frame of an SSE stream.
type sseEvent struct {
	name string
	ev   JobEvent
}

// readSSE consumes an event stream to completion, skipping keepalive
// comments, and returns the parsed frames.
func readSSE(t *testing.T, body io.Reader) []sseEvent {
	t.Helper()
	var out []sseEvent
	var name string
	sc := bufio.NewScanner(body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			var ev JobEvent
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				t.Fatalf("bad SSE data line %q: %v", line, err)
			}
			out = append(out, sseEvent{name: name, ev: ev})
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading SSE stream: %v", err)
	}
	return out
}

// The events stream must deliver monotone progress and end with a
// terminal event whose state matches the job's final status.
func TestJobEventsSSEMonotone(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, SweepWorkers: 2})
	sr := submitSweep(t, ts.URL+"/sweep?prog=fig1")

	resp, err := http.Get(ts.URL + "/jobs/" + sr.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	events := readSSE(t, resp.Body)
	if len(events) == 0 {
		t.Fatal("no events received")
	}
	var prev obs.ProgressSnapshot
	for i, e := range events {
		p := e.ev.Progress
		if p.UnitsDone < prev.UnitsDone || p.UnitsTotal < prev.UnitsTotal ||
			p.EventsSkipped < prev.EventsSkipped || p.PagesCopied < prev.PagesCopied ||
			p.Races < prev.Races {
			t.Fatalf("event %d regressed: %+v after %+v", i, p, prev)
		}
		prev = p
		if e.ev.ID != sr.ID {
			t.Fatalf("event %d names job %q, want %q", i, e.ev.ID, sr.ID)
		}
		if e.name == "end" && i != len(events)-1 {
			t.Fatalf("terminal event %d is not last of %d", i, len(events))
		}
	}
	last := events[len(events)-1]
	if last.name != "end" {
		t.Fatalf("stream ended with %q, want end", last.name)
	}
	final := waitJobDone(t, ts.URL, sr.ID)
	if last.ev.State != final.State {
		t.Fatalf("terminal event state %q, final job state %q", last.ev.State, final.State)
	}
	if final.State != stateDone {
		t.Fatalf("sweep failed: %s", final.Error)
	}
	if last.ev.Progress.UnitsTotal == 0 || last.ev.Progress.UnitsDone != last.ev.Progress.UnitsTotal {
		t.Fatalf("terminal progress incomplete: %+v", last.ev.Progress)
	}
	if last.ev.Progress.Races == 0 {
		t.Fatalf("fig1 sweep must report live races: %+v", last.ev.Progress)
	}
}

// ?wait=1 is the long-poll fallback: one JSON JobEvent per request, with
// the event version in a header so the client can block for the next.
func TestJobEventsLongPoll(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, SweepWorkers: 2})
	sr := submitSweep(t, ts.URL+"/sweep?prog=fig1")
	waitJobDone(t, ts.URL, sr.ID)

	resp, err := http.Get(ts.URL + "/jobs/" + sr.ID + "/events?wait=1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("long-poll: %d %s", resp.StatusCode, body)
	}
	ver := resp.Header.Get("X-Job-Event-Version")
	if ver == "" {
		t.Fatal("long-poll response lacks X-Job-Event-Version")
	}
	var ev JobEvent
	if err := json.Unmarshal(body, &ev); err != nil {
		t.Fatal(err)
	}
	if ev.State != stateDone {
		t.Fatalf("long-poll state %q, want done", ev.State)
	}

	// Echoing the current version of a terminal job returns immediately
	// (terminal short-circuits the wait).
	start := time.Now()
	resp2, err := http.Get(fmt.Sprintf("%s/jobs/%s/events?wait=1&ver=%s", ts.URL, sr.ID, ver))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("terminal long-poll blocked %v", d)
	}
}

// GET /jobs/{id} mirrors the poll surface; unknown subresources 404.
func TestJobsSurface(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, SweepWorkers: 2})
	sr := submitSweep(t, ts.URL+"/sweep?prog=fig1")

	resp, err := http.Get(ts.URL + "/jobs/" + sr.ID)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("jobs view: %d %s", resp.StatusCode, body)
	}
	var view SweepResponse
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatal(err)
	}
	if view.ID != sr.ID {
		t.Fatalf("jobs view ID %q, want %q", view.ID, sr.ID)
	}

	for path, want := range map[string]int{
		"/jobs/" + sr.ID + "/bogus": http.StatusNotFound,
		"/jobs/nonesuch/events":     http.StatusNotFound,
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("GET %s: %d, want %d", path, resp.StatusCode, want)
		}
	}
}

// A finished sweep serves its span tree on /jobs/{id}/trace; a later
// cache-served job (which ran nothing) serves the computing sweep's tree
// through its spans key.
func TestJobTraceAndCacheFallback(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, SweepWorkers: 2})
	ctx := obs.NewSpanContext()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/sweep?prog=fig1", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obs.TraceparentHeader, ctx.Traceparent())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var sr SweepResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("submit: %v (%s)", err, body)
	}
	waitJobDone(t, ts.URL, sr.ID)

	fetchDoc := func(id string) *obs.SpanDoc {
		t.Helper()
		resp, err := http.Get(ts.URL + "/jobs/" + id + "/trace?format=spans")
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("job trace: %d %s", resp.StatusCode, raw)
		}
		doc, err := obs.DecodeSpans(raw)
		if err != nil {
			t.Fatal(err)
		}
		return doc
	}
	doc := fetchDoc(sr.ID)
	sctx, ok := doc.Context()
	if !ok || sctx.TraceID != ctx.TraceID {
		t.Fatalf("sweep span tree not parented under the client trace: ok=%v", ok)
	}
	var haveUnit bool
	for _, sp := range doc.Spans {
		if strings.HasPrefix(sp.Name, "spec:") {
			haveUnit = true
		}
	}
	if !haveUnit {
		t.Errorf("sweep span tree lacks per-unit spec: spans")
	}

	// Resubmission is a cache hit: a fresh job ID that never ran, served
	// by the persisted tree of the sweep above.
	sr2 := submitSweep(t, ts.URL+"/sweep?prog=fig1")
	if sr2.State != stateDone {
		t.Fatalf("resubmission state %q, want done", sr2.State)
	}
	doc2 := fetchDoc(sr2.ID)
	ctx2, ok := doc2.Context()
	if !ok || ctx2.TraceID != sctx.TraceID {
		t.Fatalf("cache-served job must fall back to the computing sweep's tree")
	}
}

// The /debug/requests ring retains recent requests newest-first, records
// propagated traceparents, and excludes itself.
func TestDebugRequestsRing(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	ctx := obs.NewSpanContext()
	analyzeWithTraceparent(t, ts.URL+"/analyze?prog=fig1&spec=all", ctx.Traceparent())
	http.Get(ts.URL + "/healthz")

	resp, err := http.Get(ts.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug/requests: %d %s", resp.StatusCode, body)
	}
	var page struct {
		Capacity int                 `json:"capacity"`
		Requests []obs.RequestRecord `json:"requests"`
	}
	if err := json.Unmarshal(body, &page); err != nil {
		t.Fatal(err)
	}
	if page.Capacity != requestRingSize {
		t.Errorf("capacity = %d, want %d", page.Capacity, requestRingSize)
	}
	if len(page.Requests) < 2 {
		t.Fatalf("ring holds %d requests, want at least 2", len(page.Requests))
	}
	// Newest first: /healthz before /analyze.
	if page.Requests[0].Path != "/healthz" {
		t.Errorf("newest request is %q, want /healthz", page.Requests[0].Path)
	}
	var analyzed *obs.RequestRecord
	for i := range page.Requests {
		if page.Requests[i].Path == "/analyze" {
			analyzed = &page.Requests[i]
		}
		if page.Requests[i].Path == "/debug/requests" {
			t.Error("the ring must not record /debug/requests itself")
		}
	}
	if analyzed == nil {
		t.Fatal("/analyze missing from the ring")
	}
	if analyzed.Status != http.StatusOK {
		t.Errorf("analyze status = %d", analyzed.Status)
	}
	if analyzed.Traceparent != ctx.Traceparent() {
		t.Errorf("traceparent = %q, want %q", analyzed.Traceparent, ctx.Traceparent())
	}
	if analyzed.Duration <= 0 {
		t.Errorf("duration = %v", analyzed.Duration)
	}
}

// syncWriter serializes concurrent slog writes into one buffer.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// Cache hits log cacheHit=true; the first analysis logs cacheHit=false.
// The slog line shape is part of the observability surface.
func TestAnalyzeLogCacheHitFields(t *testing.T) {
	var buf bytes.Buffer
	sw := &syncWriter{w: &buf}
	logger := slog.New(slog.NewTextHandler(sw, nil))
	_, ts := newTestServer(t, Config{Workers: 2, Logger: logger})
	raw := fixture(t, "fig1_v2.trace")
	postAnalyze(t, ts.URL+"/analyze?detector=sp%2B", raw)
	postAnalyze(t, ts.URL+"/analyze?detector=sp%2B", raw)

	sw.mu.Lock()
	out := buf.String()
	sw.mu.Unlock()
	if !strings.Contains(out, "cacheHit=false") {
		t.Errorf("first analysis must log cacheHit=false:\n%s", out)
	}
	if !strings.Contains(out, "cacheHit=true") {
		t.Errorf("second analysis must log cacheHit=true:\n%s", out)
	}
	if !strings.Contains(out, "elide=false") {
		t.Errorf("analyze logs must carry the elide field:\n%s", out)
	}
}
