// Package service is the analysis daemon behind cmd/raderd: an HTTP
// front-end that accepts recorded CILKTRACE streams (or names a built-in
// program), runs any detector configuration server-side on a bounded
// worker pool, and memoizes verdicts in an LRU cache addressed by a strong
// content digest. It is the serving half of the paper's §8
// record-once/analyze-many workflow: instrumented runs happen wherever the
// program lives, while detection — the expensive, repeatable half — is
// centralized, cached, and admission-controlled.
//
// Endpoints:
//
//	POST /analyze     trace bytes in the body, or ?prog=<name>[&scale=][&spec=];
//	                  ?detector= selects the analysis (default sp+).
//	                  Synchronous; sheds load with 429 when saturated.
//	POST /sweep       ?prog=<name>[&scale=][&workers=][&sample=] — the §7
//	                  coverage sweep as an asynchronous job; returns an ID
//	                  to poll. workers overrides the scheduler width for
//	                  this job (same verdict, different wall time); sample
//	                  caps the family at that many coverage-guided
//	                  specifications and is part of the verdict (and the
//	                  cache key).
//	GET  /sweep/{id}  job state, then the sweep verdict document.
//	PUT  /traces/{digest}  chunked resumable trace ingest (?offset=,
//	                  &complete=1); HEAD reports the resume offset.
//	GET  /healthz     liveness (200 for the process's whole life).
//	GET  /readyz      readiness (503 once draining; flip order matters:
//	                  readyz goes dark first, healthz last).
//	GET  /metrics     Prometheus text exposition.
//
// Capacity model: at most Workers analyses run concurrently and at most
// QueueDepth more wait; everything beyond that is rejected at admission
// with 429 before any work is done. Each job runs under the rader event
// budget and deadline guards, so one pathological trace cannot wedge a
// worker forever. Cache keys are digest × detector × spec: two uploads
// with the same bytes, or two requests for the same program
// configuration, pay for one analysis.
//
// Durability: with StoreDir configured, verdicts and uploaded traces
// live in a disk-backed content-addressed store (internal/store); the
// in-memory LRU becomes a read-through layer over it, sweep jobs are
// journaled and re-enqueued after a crash, and restarts serve verdicts
// byte-identical to an uninterrupted run. Without StoreDir everything is
// in-memory, exactly as before.
package service

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/cilk"
	"repro/internal/elide"
	"repro/internal/obs"
	"repro/internal/rader"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/store"
	"repro/internal/trace"
)

// Config sizes the daemon. Zero values get serviceable defaults.
type Config struct {
	// Workers caps concurrent analyses (default 4).
	Workers int
	// QueueDepth caps admitted-but-waiting requests (default 2×Workers).
	// Admission beyond Workers+QueueDepth is shed with 429.
	QueueDepth int
	// CacheEntries caps the result cache's entry count (default 256).
	CacheEntries int
	// CacheBytes caps the result cache's resident bytes (default
	// 64 MiB). The cache is bounded by whichever limit binds first;
	// verdict documents vary from hundreds of bytes to megabytes, so the
	// byte bound is the one that protects RAM.
	CacheBytes int64
	// StoreDir, when non-empty, roots the disk-backed content-addressed
	// trace + verdict store. Verdicts survive restarts, uploads become
	// resumable, and sweep jobs are journaled for crash re-enqueue. Use
	// Open (not New) to surface store-initialization errors.
	StoreDir string
	// EventBudget bounds each job's event stream (default 50M; <0 means
	// unlimited).
	EventBudget int64
	// JobTimeout bounds each job's wall time (default 60s).
	JobTimeout time.Duration
	// MaxUploadBytes bounds an uploaded trace (default 64 MiB).
	MaxUploadBytes int64
	// SweepWorkers is the per-sweep parallelism (default Workers).
	SweepWorkers int
	// KeepJobs bounds retained finished sweep jobs (default 64).
	KeepJobs int
	// Programs adds (or overrides) named programs on top of the built-in
	// figures, corpus entries and benchmarks. Tests use this seam.
	Programs map[string]Program
	// Logger receives structured request logs (one line per analyze or
	// sweep request, tagged with a per-request ID). Nil discards them.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = 4
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 2 * c.Workers
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 0
	}
	if c.CacheEntries < 1 {
		c.CacheEntries = 256
	}
	if c.CacheBytes < 1 {
		c.CacheBytes = 64 << 20
	}
	if c.EventBudget == 0 {
		c.EventBudget = 50_000_000
	}
	if c.EventBudget < 0 {
		c.EventBudget = 0
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 60 * time.Second
	}
	if c.MaxUploadBytes <= 0 {
		c.MaxUploadBytes = 64 << 20
	}
	if c.SweepWorkers < 1 {
		c.SweepWorkers = c.Workers
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return c
}

// Server is the analysis service. Create with New (or Open when a
// StoreDir is configured), mount Handler.
type Server struct {
	cfg      Config
	pool     *pool
	cache    *resultCache
	metrics  *metrics
	jobs     *jobTable
	programs *registry
	store    *store.Store
	recovery *store.Recovery
	log      *slog.Logger
	reqID    atomic.Uint64
	// spans retains recent server-side span trees (RAM layer; the store,
	// when configured, is the durable layer); ring holds the last N
	// request summaries for /debug/requests.
	spans *spanTable
	ring  *obs.RequestRing
	// bootID distinguishes this process's journal records from a prior
	// incarnation's, so re-used sweep-N table IDs never collide with a
	// pending journal entry.
	bootID string
	// draining flips once, at the start of graceful shutdown: /readyz
	// goes 503 and admission is refused, while /healthz stays 200 until
	// the process exits — the readiness-before-liveness contract load
	// balancers rely on.
	draining  atomic.Bool
	recovered atomic.Uint64
}

// New builds a Server from cfg. It panics if the disk store cannot be
// initialized — use Open to handle that error (a daemon with a bad
// -store-dir must fail loudly, not limp along non-durable).
func New(cfg Config) *Server {
	s, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Open builds a Server from cfg, initializing (and crash-recovering)
// the disk store when cfg.StoreDir is set: orphaned temp files are
// removed, torn or corrupt store files are quarantined, and journaled
// sweep jobs that never finished are re-enqueued on the worker pool.
func Open(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	pool := newPool(cfg.Workers, cfg.QueueDepth)
	cache := newResultCache(cfg.CacheEntries, cfg.CacheBytes)
	jobs := newJobTable(cfg.KeepJobs)
	var nonce [4]byte
	_, _ = rand.Read(nonce[:])
	s := &Server{
		cfg:      cfg,
		pool:     pool,
		cache:    cache,
		jobs:     jobs,
		programs: &registry{extra: cfg.Programs},
		log:      cfg.Logger,
		bootID:   hex.EncodeToString(nonce[:]),
		spans:    newSpanTable(requestRingSize),
		ring:     obs.NewRequestRing(requestRingSize),
	}
	if cfg.StoreDir != "" {
		st, rec, err := store.Open(cfg.StoreDir, store.Options{
			VerifyTrace: trace.VerifyIntegrity,
		})
		if err != nil {
			return nil, err
		}
		s.store, s.recovery = st, rec
	}
	s.metrics = newMetrics(pool, cache, jobs, s.store, &s.recovered, s.ring)
	if s.recovery != nil {
		s.requeueRecovered(s.recovery.PendingJobs)
	}
	return s, nil
}

// RecoveryBanner returns the startup recovery summary ("" without a
// store) for the daemon's boot log line.
func (s *Server) RecoveryBanner() string {
	if s.recovery == nil {
		return ""
	}
	return s.recovery.String()
}

// Draining reports whether graceful shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// BeginDrain flips the server into draining mode: /readyz answers 503
// and new work is refused at admission. Idempotent.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Drain begins the drain and waits until every admitted request and
// background job has left the system, or ctx expires. In-flight sweep
// jobs that do not finish in time stay journaled as pending (when a
// store is configured) and re-run on the next start — the drain never
// abandons durable work, it only stops waiting for it.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for {
		if s.pool.admitted() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("drain: %d requests still in flight: %w", s.pool.admitted(), ctx.Err())
		case <-tick.C:
		}
	}
}

// requeueRecovered re-enqueues journaled-but-unfinished sweep jobs from
// a previous incarnation. Each reuses its journal ID, so finishing this
// time marks the original record done; an unknown program (a journal
// from an older build) is marked failed rather than retried forever.
func (s *Server) requeueRecovered(pending []store.JobRecord) {
	for _, jr := range pending {
		jr := jr
		prog, identity, err := s.programs.resolve(jr.Prog, jr.Scale)
		log := s.log.With("req", s.nextReqID("recover"), "prog", jr.Prog, "journal", jr.ID)
		if err != nil {
			log.Warn("recovered job names unknown program; marking failed", "err", err)
			_ = s.store.JournalJob(store.JobRecord{ID: jr.ID, Prog: jr.Prog, Scale: jr.Scale, Sample: jr.Sample, State: store.JobFailed})
			continue
		}
		if !s.pool.tryAdmit() {
			// More recovered jobs than capacity: leave the rest pending;
			// they re-run on a later start (or a bigger pool).
			log.Warn("no capacity to re-enqueue recovered job; leaving journaled")
			continue
		}
		s.recovered.Add(1)
		job := s.jobs.add(jr.Prog)
		job.setSpansKey(sweepKey(programDigest(identity), jr.Sample))
		log.Info("re-enqueued recovered sweep job", "job", job.view().ID)
		// A recovered job has no client request to inherit a traceparent
		// from; it roots a fresh trace. It re-runs at the configured
		// scheduler width — workers never change the verdict.
		tr := obs.NewTrace()
		tr.SetContext(obs.NewSpanContext())
		go s.runSweep(job, prog, identity, 0, jr, tr, log)
	}
}

// nextReqID mints a per-request log tag, unique within this Server.
func (s *Server) nextReqID(kind string) string {
	return fmt.Sprintf("%s-%d", kind, s.reqID.Add(1))
}

// MetricsSnapshot returns the current metric series as a flat map, the
// form cmd/raderd publishes on /debug/vars.
func (s *Server) MetricsSnapshot() map[string]any { return s.metrics.snapshot() }

// retryAfterHint estimates, in whole seconds, how long a shed client
// should wait before retrying: roughly one "drain interval" per queued
// request per worker, at least 1 and capped so a deep queue never tells
// clients to go away for minutes.
func retryAfterHint(queued, workers int) int {
	if workers < 1 {
		workers = 1
	}
	hint := (queued + workers) / workers // ceil(queued/workers), min 1
	if hint < 1 {
		hint = 1
	}
	if hint > 30 {
		hint = 30
	}
	return hint
}

// shed rejects a request with 429 plus a computed Retry-After hint.
func (s *Server) shed(w http.ResponseWriter, format string, a ...any) {
	s.metrics.shed()
	queued := s.pool.admitted() - s.pool.running()
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterHint(queued, s.pool.workers())))
	writeErr(w, http.StatusTooManyRequests, format, a...)
}

// refuseDraining answers a request that arrived after graceful shutdown
// began: 503 (not 429 — the condition is terminal for this process, the
// client should go elsewhere) with a short Retry-After for clients
// behind a balancer that will re-resolve.
func (s *Server) refuseDraining(w http.ResponseWriter) {
	w.Header().Set("Retry-After", "1")
	writeErr(w, http.StatusServiceUnavailable, "draining: not accepting new work")
}

// Handler returns the service's HTTP routes, wrapped so every request is
// recorded into the /debug/requests ring.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/analyze", s.handleAnalyze)
	mux.HandleFunc("/sweep", s.handleSweepSubmit)
	mux.HandleFunc("/sweep/", s.handleSweepPoll)
	mux.HandleFunc("/jobs/", s.handleJobs)
	mux.HandleFunc("/traces/", s.handleTraces)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/requests", s.handleDebugRequests)
	return s.recordRequests(mux)
}

// CacheHits exposes the hit counter for tests and ops tooling.
func (s *Server) CacheHits() uint64 { return s.metrics.snapshotHits() }

// Admitted reports requests currently in the system (running + queued).
func (s *Server) Admitted() int { return s.pool.admitted() }

// Running reports analyses executing right now.
func (s *Server) Running() int { return s.pool.running() }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, a ...any) {
	writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, a...)})
}

// analyzeUnit is one fully-resolved analysis request: either an uploaded
// trace replay or a live run of a named program. run records its phases
// on the per-request server trace it is handed (nil-safe throughout, per
// the obs contract).
type analyzeUnit struct {
	digest   string
	detector rader.DetectorName
	specStr  string // "" for replays
	elide    bool   // static elision pre-pass requested
	run      func(tr *obs.Trace) (*analysisResult, error)
}

func (u *analyzeUnit) key() string {
	return u.digest + "|" + string(u.detector) + "|" + u.specStr
}

// analysisResult is one successful analysis: the document to return and,
// for an all-detectors pass, the per-detector sub-documents to seed into
// the cache under their own digest|detector|spec keys.
type analysisResult struct {
	doc    interface{ Marshal() ([]byte, error) }
	clean  bool
	events int64
	subs   []subResult
	// parallel is the depa detector's machinery stats, nil for every
	// serial detector; it feeds the raderd_depa_* series.
	parallel *report.Parallel
	// elidedEvents/elidedBytes account for the static elision pre-pass
	// (?elide=1): access events proven race-free and skipped, and the
	// encoded bytes they occupied. Zero when elision was off. They feed
	// the raderd_elide_* series.
	elidedEvents int64
	elidedBytes  int64
}

// subResult is one detector's verdict extracted from an all-mode pass.
// The document is built by report.FromCore exactly as a standalone
// request for that detector would build it, so the seeded cache entry is
// byte-identical to what the single-detector path computes.
type subResult struct {
	detector rader.DetectorName
	doc      *report.Report
}

// subsFromMulti pairs each sub-report of a Multi document with its
// detector name for cache seeding.
func subsFromMulti(m *report.Multi) []subResult {
	subs := make([]subResult, len(m.Reports))
	for i, rep := range m.Reports {
		subs[i] = subResult{detector: rader.DetectorName(rep.Detector), doc: rep}
	}
	return subs
}

// resolveAnalyze parses an /analyze request into a unit without running
// anything. Returns a non-nil unit or writes the error response itself.
func (s *Server) resolveAnalyze(w http.ResponseWriter, r *http.Request) *analyzeUnit {
	q := r.URL.Query()
	detStr := q.Get("detector")
	if detStr == "" {
		detStr = string(rader.SPPlus)
	}
	det, err := rader.ParseDetector(detStr)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return nil
	}
	elideOn := q.Get("elide") == "1"
	deadline := time.Now().Add(s.cfg.JobTimeout)

	if name := q.Get("prog"); name != "" {
		if elideOn {
			writeErr(w, http.StatusBadRequest,
				"elide=1 applies to recorded traces; program runs (?prog=) are not elidable")
			return nil
		}
		prog, identity, err := s.programs.resolve(name, q.Get("scale"))
		if err != nil {
			writeErr(w, http.StatusNotFound, "%v", err)
			return nil
		}
		specStr := q.Get("spec")
		if specStr == "" {
			specStr = "none"
		}
		spec, err := sched.Parse(specStr)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "%v", err)
			return nil
		}
		canon := sched.Format(spec)
		return &analyzeUnit{
			digest:   programDigest(identity),
			detector: det,
			specStr:  canon,
			run: func(tr *obs.Trace) (*analysisResult, error) {
				out, err := rader.Run(prog.Factory(), rader.Config{
					Detector:    det,
					Spec:        spec,
					EventBudget: s.cfg.EventBudget,
					Deadline:    deadline,
					Trace:       tr,
				})
				if err != nil {
					return nil, err
				}
				if det == rader.All {
					m := report.FromAllOutcome(out, canon)
					return &analysisResult{doc: m, clean: m.Clean, subs: subsFromMulti(m)}, nil
				}
				rep := report.FromOutcome(out, canon)
				return &analysisResult{doc: rep, clean: rep.Clean, parallel: rep.Parallel}, nil
			},
		}
	}

	// A previously ingested trace, analyzed by reference: the body stays
	// empty and the trace streams from the store — multi-GB traces never
	// transit RAM whole.
	if digest := q.Get("digest"); digest != "" {
		if s.store == nil {
			writeErr(w, http.StatusNotImplemented,
				"analyze-by-digest needs a store (-store-dir); upload the trace in the body instead")
			return nil
		}
		if !s.store.HasTrace(digest) {
			writeErr(w, http.StatusNotFound,
				"no stored trace %s (upload it via PUT /traces/{digest})", digest)
			return nil
		}
		return &analyzeUnit{
			digest:   digest,
			detector: det,
			elide:    elideOn,
			run: func(tr *obs.Trace) (*analysisResult, error) {
				return s.analyzeStored(digest, det, elideOn, tr)
			},
		}
	}

	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes)
	data, err := io.ReadAll(body)
	if err != nil {
		writeErr(w, http.StatusRequestEntityTooLarge,
			"reading upload (limit %d bytes): %v", s.cfg.MaxUploadBytes, err)
		return nil
	}
	if len(data) == 0 {
		writeErr(w, http.StatusBadRequest,
			"empty request: upload a CILKTRACE stream or name a built-in with ?prog=")
		return nil
	}
	digest, _ := trace.DigestOf(bytes.NewReader(data)) // in-memory: cannot fail
	return &analyzeUnit{
		digest:   digest.String(),
		detector: det,
		elide:    elideOn,
		run: func(tr *obs.Trace) (*analysisResult, error) {
			return analyzeTraceBytes(data, det, elideOn, tr)
		},
	}
}

// analyzeTraceBytes replays an in-memory trace into the requested
// detector configuration, optionally behind the static elision pre-pass.
// With elision the detectors consume only the accesses the pass could
// not prove race-free, and the verdict document is fixed up afterwards
// so it is byte-identical to the full replay — the cache key therefore
// never needs to mention elision.
func analyzeTraceBytes(data []byte, det rader.DetectorName, elideOn bool, tr *obs.Trace) (*analysisResult, error) {
	var plan *elide.Plan
	var skip *trace.SkipSet
	res := &analysisResult{}
	if elideOn {
		espan := tr.Start("elide")
		p, err := elide.Analyze(data)
		if err != nil {
			espan.Arg("error", err.Error()).End()
			return nil, err
		}
		plan, skip = p, p.SkipSet()
		aud := p.Audit()
		res.elidedEvents = aud.ElidedEvents
		res.elidedBytes = aud.ElidedBytes
		espan.Arg("elidedEvents", aud.ElidedEvents).Arg("elidedBytes", aud.ElidedBytes).End()
	}
	if det == rader.All {
		dets := rader.NewAllDetectors()
		hooks := make([]cilk.Hooks, len(dets))
		for i, d := range dets {
			hooks[i] = d
		}
		rspan := tr.Start("replay")
		events, err := trace.ReplayAllBytesSkip(data, skip, nil, hooks...)
		rspan.Arg("events", events).End()
		if err != nil {
			return nil, err
		}
		m := report.FromDetectors("", events, dets)
		if plan != nil {
			plan.FixupMulti(m)
		}
		res.doc, res.clean, res.events, res.subs = m, m.Clean, events, subsFromMulti(m)
		return res, nil
	}
	d, hooks, err := rader.NewDetector(det)
	if err != nil {
		return nil, err
	}
	if hooks == nil {
		// Replaying into no detector still validates the stream.
		hooks = cilk.Empty{}
	}
	rspan := tr.Start("replay")
	events, err := trace.ReplayAllBytesSkip(data, skip, nil, hooks)
	rspan.Arg("events", events).End()
	if err != nil {
		return nil, err
	}
	var rep *report.Report
	if d != nil {
		rep = report.FromDetector(string(det), "", events, d)
	} else {
		rep = report.FromCore(string(det), "", events, nil)
	}
	if plan != nil {
		plan.FixupReport(rep)
	}
	res.doc, res.clean, res.events, res.parallel = rep, rep.Clean, events, rep.Parallel
	return res, nil
}

// storeLookup is the read-through path: on a RAM miss, a verified
// verdict record from the disk store rehydrates the cache. Returns nil
// on miss (or without a store).
func (s *Server) storeLookup(key string) *cached {
	if s.store == nil {
		return nil
	}
	rec, ok, err := s.store.GetVerdict(key)
	if err != nil || !ok {
		return nil
	}
	entry := &cached{digest: rec.Digest, report: rec.Report, clean: rec.Clean}
	s.cache.put(key, entry)
	return entry
}

// storePersist durably writes one verdict under its cache key. Best
// effort: a store write failure degrades durability, not the response.
func (s *Server) storePersist(key, digest, detector, spec string, clean bool, doc []byte, log *slog.Logger) {
	if s.store == nil {
		return
	}
	err := s.store.PutVerdict(&store.Verdict{
		Key: key, Digest: digest, Detector: detector, Spec: spec,
		Clean: clean, Report: doc,
	})
	if err != nil {
		log.Error("verdict store write failed", "err", err, "key", key)
	}
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST /analyze")
		return
	}
	if s.draining.Load() {
		s.refuseDraining(w)
		return
	}
	unit := s.resolveAnalyze(w, r)
	if unit == nil {
		return
	}
	id := s.nextReqID("analyze")
	log := s.log.With("req", id, "detector", string(unit.detector), "digest", unit.digest)
	hit, ok := s.cache.get(unit.key())
	if !ok {
		if hit = s.storeLookup(unit.key()); hit != nil {
			ok = true
			log.Info("analyze rehydrated from store", "clean", hit.clean)
		}
	}
	if ok {
		s.metrics.hit()
		log.Info("analyze served from cache", "clean", hit.clean,
			"cacheHit", true, "elide", unit.elide)
		writeJSON(w, http.StatusOK, AnalyzeResponse{
			Digest:   hit.digest,
			Detector: string(unit.detector),
			Spec:     unit.specStr,
			Cached:   true,
			Clean:    hit.clean,
			Report:   hit.report,
		})
		return
	}
	s.metrics.miss()

	if !s.pool.tryAdmit() {
		log.Warn("analyze shed", "running", s.pool.running(),
			"queued", s.pool.admitted()-s.pool.running())
		s.shed(w, "saturated: %d analyses running, %d queued; retry later",
			s.pool.running(), s.pool.admitted()-s.pool.running())
		return
	}
	defer s.pool.unadmit()
	// The per-request server trace: parented under the client's
	// traceparent when one arrived, so its spans join the client's
	// distributed trace; persisted under the digest when the analysis
	// succeeds.
	tr := s.serverTrace(r)
	queueStart := time.Now()
	qspan := tr.Start("queue")
	if err := s.pool.acquire(r.Context()); err != nil {
		qspan.Arg("error", err.Error()).End()
		log.Warn("analyze cancelled while queued", "err", err)
		writeErr(w, http.StatusServiceUnavailable, "cancelled while queued: %v", err)
		return
	}
	qspan.End()
	defer s.pool.release()
	s.metrics.observePhase(phaseQueue, time.Since(queueStart))

	start := time.Now()
	rspan := tr.Start("run").Arg("detector", string(unit.detector))
	res, err := unit.run(tr)
	rspan.End()
	dur := time.Since(start)
	s.metrics.observePhase(phaseRun, dur)
	if err != nil {
		s.metrics.fail()
		log.Error("analyze failed", "err", err, "dur", dur)
		// The trace or program was accepted but analysis failed — a
		// client-side artifact problem (truncated upload, budget blowout),
		// not a server fault. Nothing is cached: a failed validation must
		// be re-validated on the next upload, never served from the LRU.
		writeErr(w, http.StatusUnprocessableEntity, "analysis failed: %v", err)
		return
	}
	encodeStart := time.Now()
	espan := tr.Start("encode")
	raw, err := res.doc.Marshal()
	espan.End()
	s.metrics.observePhase(phaseEncode, time.Since(encodeStart))
	if err != nil {
		s.metrics.fail()
		log.Error("analyze report encoding failed", "err", err)
		writeErr(w, http.StatusInternalServerError, "encoding report: %v", err)
		return
	}
	s.metrics.done(string(unit.detector), dur, res.events)
	s.metrics.depa(res.parallel)
	s.metrics.elide(res.elidedEvents, res.elidedBytes)
	log.Info("analyze done", "dur", dur, "events", res.events, "clean", res.clean,
		"cacheHit", false, "elide", unit.elide)
	s.saveSpans(unit.digest, tr, log)
	entry := &cached{digest: unit.digest, report: raw, clean: res.clean}
	s.cache.put(unit.key(), entry)
	s.storePersist(unit.key(), unit.digest, string(unit.detector), unit.specStr, res.clean, raw, log)
	// An all-detectors pass also seeds one cache entry per detector, so a
	// later single-detector request for the same digest and spec is a hit
	// — one upload, one decode, four cache entries.
	for _, sub := range res.subs {
		sraw, err := sub.doc.Marshal()
		if err != nil {
			continue
		}
		skey := unit.digest + "|" + string(sub.detector) + "|" + unit.specStr
		s.cache.put(skey, &cached{digest: unit.digest, report: sraw, clean: sub.doc.Clean})
		s.storePersist(skey, unit.digest, string(sub.detector), unit.specStr, sub.doc.Clean, sraw, log)
	}
	writeJSON(w, http.StatusOK, AnalyzeResponse{
		Digest:     entry.digest,
		Detector:   string(unit.detector),
		Spec:       unit.specStr,
		Cached:     false,
		DurationMS: float64(dur) / float64(time.Millisecond),
		Clean:      entry.clean,
		Report:     entry.report,
	})
}

func (s *Server) handleSweepSubmit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST /sweep, poll GET /sweep/{id}")
		return
	}
	if s.draining.Load() {
		s.refuseDraining(w)
		return
	}
	name := r.URL.Query().Get("prog")
	if name == "" {
		writeErr(w, http.StatusBadRequest, "sweep needs ?prog= (sweeps rerun the program; traces cannot be swept)")
		return
	}
	scale := r.URL.Query().Get("scale")
	prog, identity, err := s.programs.resolve(name, scale)
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	workers, err := queryInt(r, "workers")
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	sample, err := queryInt(r, "sample")
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	// workers only changes how fast the verdict is computed, so it stays
	// out of the cache key; sample changes which specifications run, so
	// it is part of the verdict's identity.
	key := sweepKey(programDigest(identity), sample)
	log := s.log.With("req", s.nextReqID("sweep"), "prog", name)
	hit, ok := s.cache.get(key)
	if !ok {
		if hit = s.storeLookup(key); hit != nil {
			ok = true
		}
	}
	if ok {
		s.metrics.hit()
		job := s.jobs.add(name)
		// A cache-served job ran nothing, so it has no span tree of its
		// own; the key points GET /jobs/{id}/trace at the tree persisted
		// by the sweep that computed the verdict.
		job.setSpansKey(key)
		job.finish(hit.report, nil)
		log.Info("sweep served from cache", "job", job.view().ID)
		writeJSON(w, http.StatusOK, job.view())
		return
	}
	s.metrics.miss()
	if !s.pool.tryAdmit() {
		log.Warn("sweep shed")
		s.shed(w, "saturated; retry later")
		return
	}
	job := s.jobs.add(name)
	job.setSpansKey(key)
	log = log.With("job", job.view().ID)
	// The job's trace is rooted now, under the submitting client's
	// traceparent when one arrived — the sweep runs after this request
	// returns 202, but its spans still join the client's trace.
	tr := s.serverTrace(r)
	// Journal the job as queued before acknowledging it: if the process
	// dies between the 202 and the verdict, the next start re-enqueues it.
	// The journal ID carries this boot's nonce so the sweep-N table IDs,
	// which restart from 1 every boot, never collide across incarnations.
	jr := store.JobRecord{ID: s.bootID + "-" + job.view().ID, Prog: name, Scale: scale, Sample: sample, State: store.JobQueued}
	if s.store != nil {
		if err := s.store.JournalJob(jr); err != nil {
			log.Error("job journal write failed; job will not survive a crash", "err", err)
			jr.ID = "" // skip the terminal record too
		}
	}
	go s.runSweep(job, prog, identity, workers, jr, tr, log)
	writeJSON(w, http.StatusAccepted, job.view())
}

// sweepKey is the cache/store key of a sweep verdict: the program digest
// plus any sampling cap, which selects a different (smaller) verdict.
func sweepKey(digest string, sample int) string {
	key := digest + "|sweep"
	if sample > 0 {
		key += "|sample=" + strconv.Itoa(sample)
	}
	return key
}

// queryInt parses an optional non-negative integer query parameter.
func queryInt(r *http.Request, name string) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("?%s= must be a non-negative integer, got %q", name, raw)
	}
	return v, nil
}

// runSweep executes one admitted sweep job to completion: it acquires a
// worker slot, runs the §7 coverage sweep, memoizes complete verdicts in
// both cache layers, and writes the job's terminal journal record. It is
// the shared body behind fresh submissions and crash-recovered re-runs —
// jr is the journal record to close out (jr.ID == "" means unjournaled)
// and carries the sampling cap; workers (0 = configured default) is this
// job's scheduler width, which never changes the verdict.
func (s *Server) runSweep(job *sweepJob, prog Program, identity string, workers int, jr store.JobRecord, tr *obs.Trace, log *slog.Logger) {
	defer s.pool.unadmit()
	// journalTerminal closes the journal record; without it the job would
	// re-run on every restart forever.
	journalTerminal := func(state string) {
		if s.store == nil || jr.ID == "" {
			return
		}
		if err := s.store.JournalJob(store.JobRecord{ID: jr.ID, Prog: jr.Prog, Scale: jr.Scale, Sample: jr.Sample, State: state}); err != nil {
			log.Error("job journal terminal write failed", "err", err)
		}
	}
	// The job outlives the submitting request on purpose — clients
	// poll for it — so it waits on the background context, not r's.
	qspan := tr.Start("queue")
	if err := s.pool.acquire(context.Background()); err != nil {
		qspan.Arg("error", err.Error()).End()
		log.Warn("sweep cancelled while queued", "err", err)
		job.finish(nil, fmt.Errorf("cancelled while queued: %w", err))
		journalTerminal(store.JobFailed)
		return
	}
	qspan.End()
	defer s.pool.release()
	job.set(stateRunning)
	start := time.Now()
	rspan := tr.Start("run").Arg("prog", job.prog)
	if workers < 1 {
		workers = s.cfg.SweepWorkers
	}
	cr := rader.Sweep(prog.Factory, rader.SweepOptions{
		Workers:     workers,
		SampleSpecs: jr.Sample,
		EventBudget: s.cfg.EventBudget,
		Timeout:     s.cfg.JobTimeout,
		Trace:       tr,
		OnProgress: func(p rader.SweepProgress) {
			job.progress.Publish(obs.ProgressSnapshot{
				UnitsDone:     int64(p.UnitsDone),
				UnitsTotal:    int64(p.UnitsTotal),
				EventsSkipped: p.EventsSkipped,
				PagesCopied:   p.PagesCopied,
				Races:         int64(p.Races),
			})
		},
	})
	rspan.End()
	espan := tr.Start("encode")
	raw, err := report.FromCoverage(cr).Marshal()
	espan.End()
	if err != nil {
		s.metrics.fail()
		log.Error("sweep report encoding failed", "err", err)
		job.finish(nil, err)
		journalTerminal(store.JobFailed)
		return
	}
	s.metrics.done("sweep", time.Since(start), 0)
	s.metrics.sweep(cr.Stats)
	log.Info("sweep done", "dur", time.Since(start),
		"specs", cr.SpecsRun, "clean", cr.Clean(), "complete", cr.Complete(),
		"strategy", cr.Stats.Strategy, "snapshotHits", cr.Stats.SnapshotHits,
		"eventsSkipped", cr.Stats.EventsSkipped)
	// Only complete sweeps are cacheable: a sweep degraded by a
	// deadline or budget abort reports Failures instead of verdicts
	// for some specifications, and serving that from the cache would
	// freeze the degradation forever. Incomplete results still go to
	// the submitting job; the next submission reruns the sweep.
	if cr.Complete() {
		digest := programDigest(identity)
		key := sweepKey(digest, jr.Sample)
		s.cache.put(key, &cached{digest: digest, report: raw, clean: cr.Clean()})
		s.storePersist(key, digest, "sweep", "", cr.Clean(), raw, log)
		// The span tree persists under the same key, so later cache-served
		// jobs (which run nothing) can still serve the computing sweep's
		// trace via their spansKey.
		s.saveSpans(key, tr, log)
	}
	if doc, err := tr.EncodeSpans("raderd"); err == nil {
		job.setSpans(doc)
	}
	job.finish(raw, nil)
	journalTerminal(store.JobDone)
}

func (s *Server) handleSweepPoll(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET /sweep/{id}")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/sweep/")
	job, ok := s.jobs.get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "no such sweep job %q (finished jobs are retained up to a bound)", id)
		return
	}
	writeJSON(w, http.StatusOK, job.view())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is the readiness probe: 200 while serving, 503 once
// draining. It flips before /healthz ever does — a balancer stops
// routing new work here while in-flight requests finish behind a
// still-live process.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// analyzeStored replays a store-resident trace straight from disk into
// the requested detector. The trace streams through trace.ReplayAll, so
// peak memory is independent of trace size — the property that makes
// multi-GB resumable uploads worth having. The elision pre-pass needs
// random access to classify addresses before replaying, so elide=1
// materializes the stored trace and takes the in-memory path instead.
func (s *Server) analyzeStored(digest string, det rader.DetectorName, elideOn bool, tr *obs.Trace) (*analysisResult, error) {
	rc, _, err := s.store.OpenTrace(digest)
	if err != nil {
		return nil, fmt.Errorf("opening stored trace %s: %w", digest, err)
	}
	defer rc.Close()
	if elideOn {
		data, err := io.ReadAll(rc)
		if err != nil {
			return nil, fmt.Errorf("reading stored trace %s: %w", digest, err)
		}
		return analyzeTraceBytes(data, det, true, tr)
	}
	if det == rader.All {
		dets := rader.NewAllDetectors()
		hooks := make([]cilk.Hooks, len(dets))
		for i, d := range dets {
			hooks[i] = d
		}
		rspan := tr.Start("replay")
		events, err := trace.ReplayAll(rc, hooks...)
		rspan.Arg("events", events).End()
		if err != nil {
			return nil, err
		}
		m := report.FromDetectors("", events, dets)
		return &analysisResult{doc: m, clean: m.Clean, events: events, subs: subsFromMulti(m)}, nil
	}
	d, hooks, err := rader.NewDetector(det)
	if err != nil {
		return nil, err
	}
	if hooks == nil {
		hooks = cilk.Empty{}
	}
	rspan := tr.Start("replay")
	events, err := trace.ReplayAll(rc, hooks)
	rspan.Arg("events", events).End()
	if err != nil {
		return nil, err
	}
	var rep *report.Report
	if d != nil {
		rep = report.FromDetector(string(det), "", events, d)
	} else {
		rep = report.FromCore(string(det), "", events, nil)
	}
	return &analysisResult{doc: rep, clean: rep.Clean, events: events, parallel: rep.Parallel}, nil
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.write(w)
}
