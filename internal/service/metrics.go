package service

import (
	"io"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/rader"
	"repro/internal/report"
	"repro/internal/store"
)

// knownDetectors is the closed label set for per-detector series. Detector
// names reaching metrics.done are already validated by rader.ParseDetector
// (plus the internal "sweep" pseudo-detector), but the exposition guards
// its own cardinality anyway: a future call site forwarding raw client
// input must not be able to mint unbounded label values.
var knownDetectors = map[string]bool{
	"none": true, "empty": true, "peer-set": true, "sp-bags": true,
	"sp+": true, "offset-span": true, "english-hebrew": true, "depa": true,
	"all": true, "sweep": true,
}

// sanitizeDetector folds unknown detector names into "other".
func sanitizeDetector(d string) string {
	if knownDetectors[d] {
		return d
	}
	return "other"
}

// Request phases instrumented by raderd_phase_latency_seconds.
const (
	phaseQueue  = "queue"  // admission to worker-slot acquisition
	phaseRun    = "run"    // the analysis itself
	phaseEncode = "encode" // marshaling the verdict document
)

// metrics is the daemon's instrumentation, an obs.Registry rendering the
// same Prometheus exposition the hand-rolled implementation produced
// (family order, label shapes and value formats are pinned by
// TestMetricsExpositionFormat). Scrape-time gauges — queue depth, worker
// occupancy, cache residency, sweep-job states — are registered as
// GaugeFuncs over state owned by the pool, cache and job table.
type metrics struct {
	reg *obs.Registry

	jobsDone    *obs.Counter
	jobsFailed  *obs.Counter
	jobsShed    *obs.Counter
	cacheHits   *obs.Counter
	cacheMisses *obs.Counter
	events      *obs.Counter
	lastEPS     *obs.Gauge
	ingestBytes *obs.Counter

	sweepSnapHits   *obs.Counter
	sweepSnapMisses *obs.Counter
	sweepSkipped    *obs.Counter
	sweepPages      *obs.Counter
	sweepSteals     *obs.Counter
	sweepHandoffs   *obs.Counter
	sweepPooled     *obs.Gauge

	depaMerges   *obs.Counter
	depaFastPath *obs.Gauge

	elideEvents *obs.Counter
	elideBytes  *obs.Counter

	tracesPropagated *obs.Counter
	spanTrees        *obs.Counter
	eventStreams     *obs.Counter

	phase map[string]*obs.Histogram
}

// newMetrics builds the registry. The pool/cache/jobs closures feed the
// scrape-time gauges; registration order fixes the exposition order. st
// may be nil (no -store-dir): the store families are then simply absent,
// so a non-durable daemon's exposition is unchanged from before.
func newMetrics(pool *pool, cache *resultCache, jobs *jobTable, st *store.Store, recovered *atomic.Uint64, ring *obs.RequestRing) *metrics {
	reg := obs.NewRegistry()
	m := &metrics{reg: reg}

	m.jobsDone = reg.Counter("raderd_jobs_total",
		"Analysis requests by final disposition.", `state="done"`)
	m.jobsFailed = reg.Counter("raderd_jobs_total",
		"Analysis requests by final disposition.", `state="failed"`)
	m.jobsShed = reg.Counter("raderd_jobs_total",
		"Analysis requests by final disposition.", `state="rejected"`)

	reg.GaugeFunc("raderd_queue_depth",
		"Requests admitted but waiting for a worker.", "", func() float64 {
			if q := pool.admitted() - pool.running(); q > 0 {
				return float64(q)
			}
			return 0
		})
	reg.GaugeFunc("raderd_workers_busy", "Analyses executing now.", "",
		func() float64 { return float64(pool.running()) })
	reg.GaugeFunc("raderd_workers", "Configured worker-pool size.", "",
		func() float64 { return float64(pool.workers()) })

	m.cacheHits = reg.Counter("raderd_cache_hits_total",
		"Analyses served from the digest-addressed cache.", "")
	m.cacheMisses = reg.Counter("raderd_cache_misses_total",
		"Analyses that had to run.", "")
	reg.GaugeFunc("raderd_cache_hit_ratio", "Hits over lookups since start.", "",
		func() float64 {
			hits, misses := m.cacheHits.Load(), m.cacheMisses.Load()
			if lookups := hits + misses; lookups > 0 {
				return float64(hits) / float64(lookups)
			}
			return 0
		})
	reg.GaugeFunc("raderd_cache_entries", "Resident cache entries.", "",
		func() float64 { return float64(cache.len()) })
	reg.GaugeFunc("raderd_cache_bytes", "Resident cache bytes (the LRU's byte bound binds on this).", "",
		func() float64 { return float64(cache.size()) })

	m.events = reg.Counter("raderd_events_total",
		"Trace events consumed by completed analyses.", "")
	m.lastEPS = reg.Gauge("raderd_events_per_second",
		"Throughput of the most recent event-counted analysis.", "")
	m.ingestBytes = reg.Counter("raderd_ingest_bytes_total",
		"Trace bytes accepted over PUT /traces/{digest}.", "")

	for _, st := range []string{"queued", "running", "done", "failed"} {
		st := st
		reg.GaugeFunc("raderd_sweep_jobs", "Coverage-sweep jobs by state.",
			obs.Label("state", st),
			func() float64 { return float64(jobs.states()[st]) })
	}

	m.sweepSnapHits = reg.Counter("raderd_sweep_snapshot_hits_total",
		"Prefix-sharing sweep units seeded from a detector snapshot.", "")
	m.sweepSnapMisses = reg.Counter("raderd_sweep_snapshot_misses_total",
		"Prefix-sharing sweep units that ran without a seed snapshot.", "")
	m.sweepSkipped = reg.Counter("raderd_sweep_events_skipped_total",
		"Detector events skipped over shared steal-decision prefixes.", "")
	m.sweepPages = reg.Counter("raderd_sweep_pages_copied_total",
		"Shadow-memory pages copied on write by snapshot-seeded sweep units.", "")
	m.sweepSteals = reg.Counter("raderd_sweep_steals_total",
		"Sweep units taken from another worker's deque by the work-stealing scheduler.", "")
	m.sweepHandoffs = reg.Counter("raderd_sweep_handoffs_total",
		"Stolen sweep units that carried a copy-on-write snapshot across workers.", "")
	m.sweepPooled = reg.Gauge("raderd_sweep_pages_pooled",
		"Shadow-page free-list residency of the most recent sweep's pooled detectors.", "")

	m.depaMerges = reg.Counter("raderd_depa_shard_merges_total",
		"Shard merges performed by completed depa (parallel detector) analyses.", "")
	m.depaFastPath = reg.Gauge("raderd_depa_fast_path_rate",
		"Strand-local fast-path hit rate of the most recent depa analysis.", "")

	m.elideEvents = reg.Counter("raderd_elide_events_elided_total",
		"Access events the static elision pre-pass proved race-free and skipped.", "")
	m.elideBytes = reg.Counter("raderd_elide_bytes_saved_total",
		"Encoded trace bytes the elision pre-pass removed from detector replay.", "")

	m.tracesPropagated = reg.Counter("raderd_trace_propagated_total",
		"Requests that arrived with a valid traceparent header.", "")
	m.spanTrees = reg.Counter("raderd_span_trees_persisted_total",
		"Server-side span trees recorded for later retrieval.", "")
	m.eventStreams = reg.Counter("raderd_job_event_streams_total",
		"GET /jobs/{id}/events requests (streams and long-polls).", "")
	reg.GaugeFunc("raderd_request_ring_depth",
		"Requests currently retained in the /debug/requests ring.", "",
		func() float64 { return float64(ring.Len()) })

	m.phase = make(map[string]*obs.Histogram, 3)
	for _, ph := range []string{phaseQueue, phaseRun, phaseEncode} {
		m.phase[ph] = reg.Histogram("raderd_phase_latency_seconds",
			"Wall time of analyze-request phases.",
			obs.Label("phase", ph), nil)
	}

	if st != nil {
		type statFn func(store.Stats) uint64
		for _, sg := range []struct {
			name, help string
			get        statFn
		}{
			{"raderd_store_verdict_writes_total", "Verdict records durably written.",
				func(s store.Stats) uint64 { return s.VerdictWrites }},
			{"raderd_store_verdict_hits_total", "Checksum-verified verdict reads from disk.",
				func(s store.Stats) uint64 { return s.VerdictHits }},
			{"raderd_store_verdict_misses_total", "Verdict reads that missed (absent or quarantined).",
				func(s store.Stats) uint64 { return s.VerdictMisses }},
			{"raderd_store_trace_writes_total", "Traces committed to the content-addressed store.",
				func(s store.Stats) uint64 { return s.TraceWrites }},
			{"raderd_store_quarantined_total", "Corrupt or torn store files moved to quarantine.",
				func(s store.Stats) uint64 { return s.Quarantined }},
			{"raderd_store_ingest_bytes_total", "Bytes durably appended to resumable uploads.",
				func(s store.Stats) uint64 { return s.IngestBytes }},
			{"raderd_store_spans_writes_total", "Span-tree records durably written.",
				func(s store.Stats) uint64 { return s.SpansWrites }},
		} {
			get := sg.get
			reg.GaugeFunc(sg.name, sg.help, "",
				func() float64 { return float64(get(st.Stats())) })
		}
		reg.GaugeFunc("raderd_recovered_jobs", "Journaled sweep jobs re-enqueued at startup.", "",
			func() float64 { return float64(recovered.Load()) })
	}
	return m
}

// ingested accumulates resumable-upload bytes accepted by the ingest
// handler (the store counts its own durable bytes; this counter exists
// even without a store so the family is stable for the /analyze path).
func (m *metrics) ingested(n int64) {
	if n > 0 {
		m.ingestBytes.Add(uint64(n))
	}
}

func (m *metrics) hit()  { m.cacheHits.Inc() }
func (m *metrics) miss() { m.cacheMisses.Inc() }
func (m *metrics) shed() { m.jobsShed.Inc() }
func (m *metrics) fail() { m.jobsFailed.Inc() }

func (m *metrics) tracePropagated()   { m.tracesPropagated.Inc() }
func (m *metrics) spanTreePersisted() { m.spanTrees.Inc() }
func (m *metrics) eventStream()       { m.eventStreams.Inc() }

// observePhase records one request phase's wall time.
func (m *metrics) observePhase(phase string, d time.Duration) {
	m.phase[phase].Observe(d.Seconds())
}

// done records one completed analysis: its detector, wall time and event
// count (0 when the run was live and uncounted).
func (m *metrics) done(detector string, d time.Duration, events int64) {
	m.jobsDone.Inc()
	m.events.Add(uint64(events))
	if s := d.Seconds(); s > 0 && events > 0 {
		m.lastEPS.Set(float64(events) / s)
	}
	h := m.reg.Histogram("raderd_analyze_latency_seconds",
		"Wall time of completed analyses by detector.",
		obs.Label("detector", sanitizeDetector(detector)), nil)
	h.Observe(d.Seconds())
}

// depa accumulates the parallel detector's machinery stats from one
// completed analysis: shard merges add up across requests, the fast-path
// rate tracks the most recent run (matching lastEPS's convention). Serial
// detectors pass nil and the series stay flat.
func (m *metrics) depa(p *report.Parallel) {
	if p == nil {
		return
	}
	m.depaMerges.Add(uint64(p.ShardMerges))
	m.depaFastPath.Set(p.FastPathRate)
}

// elide accumulates the static elision pre-pass's savings from one
// completed analysis. Non-elided analyses pass zeros and the series stay
// flat — the families exist from boot so dashboards never see them
// appear mid-flight.
func (m *metrics) elide(events, bytes int64) {
	if events > 0 {
		m.elideEvents.Add(uint64(events))
	}
	if bytes > 0 {
		m.elideBytes.Add(uint64(bytes))
	}
}

// sweep accumulates the sharing and scheduling counters of one completed
// coverage sweep. Naive sweeps contribute zeros; the counters then read
// as a flat line, which is itself the signal that prefix sharing is off.
// Pages pooled tracks the most recent sweep (matching lastEPS's
// convention) since free-list residency is a level, not a flow.
func (m *metrics) sweep(st rader.SweepStats) {
	m.sweepSnapHits.Add(uint64(st.SnapshotHits))
	m.sweepSnapMisses.Add(uint64(st.SnapshotMisses))
	m.sweepSkipped.Add(uint64(st.EventsSkipped))
	m.sweepPages.Add(uint64(st.PagesCopied))
	m.sweepSteals.Add(uint64(st.Steals))
	m.sweepHandoffs.Add(uint64(st.Handoffs))
	m.sweepPooled.Set(float64(st.PagesPooled))
}

// snapshotHits returns the current cache-hit count (tests poll it).
func (m *metrics) snapshotHits() uint64 { return m.cacheHits.Load() }

// write renders the exposition document.
func (m *metrics) write(w io.Writer) { m.reg.WritePrometheus(w) }

// snapshot returns the flat series map for /debug/vars export.
func (m *metrics) snapshot() map[string]any { return m.reg.Snapshot() }
