package service

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// latencyBuckets are the histogram upper bounds in seconds, spanning
// sub-millisecond corpus replays through multi-second bench sweeps.
var latencyBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10}

// hist is a fixed-bucket latency histogram in the Prometheus cumulative
// style. Guarded by the owning metrics mutex.
type hist struct {
	counts []uint64 // one per bucket plus +Inf
	sum    float64
	n      uint64
}

func newHist() *hist { return &hist{counts: make([]uint64, len(latencyBuckets)+1)} }

func (h *hist) observe(seconds float64) {
	h.sum += seconds
	h.n++
	for i, ub := range latencyBuckets {
		if seconds <= ub {
			h.counts[i]++
		}
	}
	h.counts[len(latencyBuckets)]++
}

// metrics is the daemon's instrumentation: job counters, cache traffic,
// event throughput, and per-detector latency histograms, rendered in
// Prometheus text exposition format by write.
type metrics struct {
	mu          sync.Mutex
	jobsDone    uint64
	jobsFailed  uint64
	jobsShed    uint64 // rejected with 429 at admission
	cacheHits   uint64
	cacheMisses uint64
	events      uint64 // total events replayed/analyzed
	lastEPS     float64
	perDetector map[string]*hist
}

func newMetrics() *metrics {
	return &metrics{perDetector: make(map[string]*hist)}
}

func (m *metrics) hit()  { m.mu.Lock(); m.cacheHits++; m.mu.Unlock() }
func (m *metrics) miss() { m.mu.Lock(); m.cacheMisses++; m.mu.Unlock() }
func (m *metrics) shed() { m.mu.Lock(); m.jobsShed++; m.mu.Unlock() }
func (m *metrics) fail() { m.mu.Lock(); m.jobsFailed++; m.mu.Unlock() }

// done records one completed analysis: its detector, wall time and event
// count (0 when the run was live and uncounted).
func (m *metrics) done(detector string, d time.Duration, events int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobsDone++
	m.events += uint64(events)
	if s := d.Seconds(); s > 0 && events > 0 {
		m.lastEPS = float64(events) / s
	}
	h, ok := m.perDetector[detector]
	if !ok {
		h = newHist()
		m.perDetector[detector] = h
	}
	h.observe(d.Seconds())
}

// snapshotHits returns the current cache-hit count (tests poll it).
func (m *metrics) snapshotHits() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cacheHits
}

// write renders the exposition document. Gauges that live outside this
// struct (queue depth, worker occupancy, cache residency, sweep-job
// states) are passed in by the handler so metrics stays free of back
// references.
func (m *metrics) write(w io.Writer, queueDepth, busy, workers, cacheLen int, sweepStates map[string]int) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintln(w, "# HELP raderd_jobs_total Analysis requests by final disposition.")
	fmt.Fprintln(w, "# TYPE raderd_jobs_total counter")
	fmt.Fprintf(w, "raderd_jobs_total{state=\"done\"} %d\n", m.jobsDone)
	fmt.Fprintf(w, "raderd_jobs_total{state=\"failed\"} %d\n", m.jobsFailed)
	fmt.Fprintf(w, "raderd_jobs_total{state=\"rejected\"} %d\n", m.jobsShed)

	fmt.Fprintln(w, "# HELP raderd_queue_depth Requests admitted but waiting for a worker.")
	fmt.Fprintln(w, "# TYPE raderd_queue_depth gauge")
	fmt.Fprintf(w, "raderd_queue_depth %d\n", queueDepth)
	fmt.Fprintln(w, "# HELP raderd_workers_busy Analyses executing now.")
	fmt.Fprintln(w, "# TYPE raderd_workers_busy gauge")
	fmt.Fprintf(w, "raderd_workers_busy %d\n", busy)
	fmt.Fprintln(w, "# HELP raderd_workers Configured worker-pool size.")
	fmt.Fprintln(w, "# TYPE raderd_workers gauge")
	fmt.Fprintf(w, "raderd_workers %d\n", workers)

	fmt.Fprintln(w, "# HELP raderd_cache_hits_total Analyses served from the digest-addressed cache.")
	fmt.Fprintln(w, "# TYPE raderd_cache_hits_total counter")
	fmt.Fprintf(w, "raderd_cache_hits_total %d\n", m.cacheHits)
	fmt.Fprintln(w, "# HELP raderd_cache_misses_total Analyses that had to run.")
	fmt.Fprintln(w, "# TYPE raderd_cache_misses_total counter")
	fmt.Fprintf(w, "raderd_cache_misses_total %d\n", m.cacheMisses)
	fmt.Fprintln(w, "# HELP raderd_cache_hit_ratio Hits over lookups since start.")
	fmt.Fprintln(w, "# TYPE raderd_cache_hit_ratio gauge")
	ratio := 0.0
	if lookups := m.cacheHits + m.cacheMisses; lookups > 0 {
		ratio = float64(m.cacheHits) / float64(lookups)
	}
	fmt.Fprintf(w, "raderd_cache_hit_ratio %g\n", ratio)
	fmt.Fprintln(w, "# HELP raderd_cache_entries Resident cache entries.")
	fmt.Fprintln(w, "# TYPE raderd_cache_entries gauge")
	fmt.Fprintf(w, "raderd_cache_entries %d\n", cacheLen)

	fmt.Fprintln(w, "# HELP raderd_events_total Trace events consumed by completed analyses.")
	fmt.Fprintln(w, "# TYPE raderd_events_total counter")
	fmt.Fprintf(w, "raderd_events_total %d\n", m.events)
	fmt.Fprintln(w, "# HELP raderd_events_per_second Throughput of the most recent event-counted analysis.")
	fmt.Fprintln(w, "# TYPE raderd_events_per_second gauge")
	fmt.Fprintf(w, "raderd_events_per_second %g\n", m.lastEPS)

	fmt.Fprintln(w, "# HELP raderd_sweep_jobs Coverage-sweep jobs by state.")
	fmt.Fprintln(w, "# TYPE raderd_sweep_jobs gauge")
	for _, st := range []string{"queued", "running", "done", "failed"} {
		fmt.Fprintf(w, "raderd_sweep_jobs{state=%q} %d\n", st, sweepStates[st])
	}

	fmt.Fprintln(w, "# HELP raderd_analyze_latency_seconds Wall time of completed analyses by detector.")
	fmt.Fprintln(w, "# TYPE raderd_analyze_latency_seconds histogram")
	dets := make([]string, 0, len(m.perDetector))
	for d := range m.perDetector {
		dets = append(dets, d)
	}
	sort.Strings(dets)
	for _, d := range dets {
		h := m.perDetector[d]
		for i, ub := range latencyBuckets {
			fmt.Fprintf(w, "raderd_analyze_latency_seconds_bucket{detector=%q,le=%q} %d\n", d, trimFloat(ub), h.counts[i])
		}
		fmt.Fprintf(w, "raderd_analyze_latency_seconds_bucket{detector=%q,le=\"+Inf\"} %d\n", d, h.counts[len(latencyBuckets)])
		fmt.Fprintf(w, "raderd_analyze_latency_seconds_sum{detector=%q} %g\n", d, h.sum)
		fmt.Fprintf(w, "raderd_analyze_latency_seconds_count{detector=%q} %d\n", d, h.n)
	}
}

func trimFloat(f float64) string { return fmt.Sprintf("%g", f) }
