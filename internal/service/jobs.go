package service

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
)

// Job states for async sweep jobs.
const (
	stateQueued  = "queued"
	stateRunning = "running"
	stateDone    = "done"
	stateFailed  = "failed"
)

// sweepJob is one asynchronous §7 coverage sweep. The submit handler
// returns its ID immediately; clients poll GET /sweep/{id} (or stream
// GET /jobs/{id}/events) until the state is done or failed.
type sweepJob struct {
	mu       sync.Mutex
	id       string
	prog     string
	state    string
	err      string
	sweep    json.RawMessage // verdict document once done
	created  time.Time
	finished time.Time

	// spans is the encoded obs.SpanDoc of the server-side span tree once
	// the sweep finishes; spansKey is the store key it persists under
	// (programDigest|sweep), doubling as the fallback lookup for jobs
	// answered from the cache.
	spans    json.RawMessage
	spansKey string

	// progress is the job's monotone live-progress cell. Every job has
	// one from creation; finish() bumps it so streams waiting on the
	// change channel always observe the terminal transition.
	progress *obs.Progress
}

func (j *sweepJob) set(state string) {
	j.mu.Lock()
	j.state = state
	j.mu.Unlock()
	j.progress.Bump()
}

func (j *sweepJob) finish(sweep json.RawMessage, err error) {
	j.mu.Lock()
	j.finished = time.Now()
	if err != nil {
		j.state = stateFailed
		j.err = err.Error()
	} else {
		j.state = stateDone
		j.sweep = sweep
	}
	j.mu.Unlock()
	// Wake event streams even when no counter moved (a cache-served or
	// failed job may finish without a single progress publish).
	j.progress.Bump()
}

// setSpans attaches the encoded server-side span tree.
func (j *sweepJob) setSpans(doc json.RawMessage) {
	j.mu.Lock()
	j.spans = doc
	j.mu.Unlock()
}

// setSpansKey records the store key the job's span tree lives under.
func (j *sweepJob) setSpansKey(key string) {
	j.mu.Lock()
	j.spansKey = key
	j.mu.Unlock()
}

func (j *sweepJob) spansDoc() (json.RawMessage, string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.spans, j.spansKey
}

// terminal reports whether the job has reached done or failed.
func (j *sweepJob) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state == stateDone || j.state == stateFailed
}

// event renders the job's progress-event payload (the SSE/long-poll
// frame body).
func (j *sweepJob) event() JobEvent {
	snap, _, _ := j.progress.Load()
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobEvent{ID: j.id, State: j.state, Error: j.err, Progress: snap}
}

// view renders the job's poll response under its lock.
func (j *sweepJob) view() SweepResponse {
	snap, _, _ := j.progress.Load()
	j.mu.Lock()
	defer j.mu.Unlock()
	resp := SweepResponse{ID: j.id, Program: j.prog, State: j.state, Error: j.err, Sweep: j.sweep}
	if snap != (obs.ProgressSnapshot{}) {
		s := snap
		resp.Progress = &s
	}
	return resp
}

// jobTable tracks sweep jobs, bounding retention: once more than keep jobs
// are finished, the oldest finished jobs are dropped (pollers of a dropped
// ID get 404, the standard at-most-N retention contract).
type jobTable struct {
	mu   sync.Mutex
	seq  int
	keep int
	jobs map[string]*sweepJob
}

func newJobTable(keep int) *jobTable {
	if keep < 1 {
		keep = 64
	}
	return &jobTable{keep: keep, jobs: make(map[string]*sweepJob)}
}

func (t *jobTable) add(prog string) *sweepJob {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	j := &sweepJob{
		id: fmt.Sprintf("sweep-%d", t.seq), prog: prog, state: stateQueued,
		created: time.Now(), progress: obs.NewProgress(),
	}
	t.jobs[j.id] = j
	t.evictLocked()
	return j
}

func (t *jobTable) get(id string) (*sweepJob, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	j, ok := t.jobs[id]
	return j, ok
}

// states counts jobs by state for /metrics.
func (t *jobTable) states() map[string]int {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]int, 4)
	for _, j := range t.jobs {
		j.mu.Lock()
		out[j.state]++
		j.mu.Unlock()
	}
	return out
}

// evictLocked drops the oldest finished jobs beyond the retention bound.
// Requires t.mu.
func (t *jobTable) evictLocked() {
	var finished []*sweepJob
	for _, j := range t.jobs {
		j.mu.Lock()
		if j.state == stateDone || j.state == stateFailed {
			finished = append(finished, j)
		}
		j.mu.Unlock()
	}
	if len(finished) <= t.keep {
		return
	}
	// Oldest finished first.
	for i := range finished {
		for k := i + 1; k < len(finished); k++ {
			if finished[k].finished.Before(finished[i].finished) {
				finished[i], finished[k] = finished[k], finished[i]
			}
		}
	}
	for _, j := range finished[:len(finished)-t.keep] {
		delete(t.jobs, j.id)
	}
}
