package service

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"
)

// Job states for async sweep jobs.
const (
	stateQueued  = "queued"
	stateRunning = "running"
	stateDone    = "done"
	stateFailed  = "failed"
)

// sweepJob is one asynchronous §7 coverage sweep. The submit handler
// returns its ID immediately; clients poll GET /sweep/{id} until the state
// is done or failed.
type sweepJob struct {
	mu       sync.Mutex
	id       string
	prog     string
	state    string
	err      string
	sweep    json.RawMessage // verdict document once done
	created  time.Time
	finished time.Time
}

func (j *sweepJob) set(state string) {
	j.mu.Lock()
	j.state = state
	j.mu.Unlock()
}

func (j *sweepJob) finish(sweep json.RawMessage, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finished = time.Now()
	if err != nil {
		j.state = stateFailed
		j.err = err.Error()
		return
	}
	j.state = stateDone
	j.sweep = sweep
}

// view renders the job's poll response under its lock.
func (j *sweepJob) view() SweepResponse {
	j.mu.Lock()
	defer j.mu.Unlock()
	return SweepResponse{ID: j.id, Program: j.prog, State: j.state, Error: j.err, Sweep: j.sweep}
}

// jobTable tracks sweep jobs, bounding retention: once more than keep jobs
// are finished, the oldest finished jobs are dropped (pollers of a dropped
// ID get 404, the standard at-most-N retention contract).
type jobTable struct {
	mu   sync.Mutex
	seq  int
	keep int
	jobs map[string]*sweepJob
}

func newJobTable(keep int) *jobTable {
	if keep < 1 {
		keep = 64
	}
	return &jobTable{keep: keep, jobs: make(map[string]*sweepJob)}
}

func (t *jobTable) add(prog string) *sweepJob {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	j := &sweepJob{id: fmt.Sprintf("sweep-%d", t.seq), prog: prog, state: stateQueued, created: time.Now()}
	t.jobs[j.id] = j
	t.evictLocked()
	return j
}

func (t *jobTable) get(id string) (*sweepJob, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	j, ok := t.jobs[id]
	return j, ok
}

// states counts jobs by state for /metrics.
func (t *jobTable) states() map[string]int {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]int, 4)
	for _, j := range t.jobs {
		j.mu.Lock()
		out[j.state]++
		j.mu.Unlock()
	}
	return out
}

// evictLocked drops the oldest finished jobs beyond the retention bound.
// Requires t.mu.
func (t *jobTable) evictLocked() {
	var finished []*sweepJob
	for _, j := range t.jobs {
		j.mu.Lock()
		if j.state == stateDone || j.state == stateFailed {
			finished = append(finished, j)
		}
		j.mu.Unlock()
	}
	if len(finished) <= t.keep {
		return
	}
	// Oldest finished first.
	for i := range finished {
		for k := i + 1; k < len(finished); k++ {
			if finished[k].finished.Before(finished[i].finished) {
				finished[i], finished[k] = finished[k], finished[i]
			}
		}
	}
	for _, j := range finished[:len(finished)-t.keep] {
		delete(t.jobs, j.id)
	}
}
