package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cilk"
	"repro/internal/rader"
	"repro/internal/report"
	"repro/internal/trace"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postAnalyze(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func decodeAnalyze(t *testing.T, b []byte) AnalyzeResponse {
	t.Helper()
	var ar AnalyzeResponse
	if err := json.Unmarshal(b, &ar); err != nil {
		t.Fatalf("decoding %s: %v", b, err)
	}
	return ar
}

func fixture(t *testing.T, name string) []byte {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// Uploading the same trace twice must run the analysis once: the second
// response is a cache hit with a byte-identical verdict document.
func TestAnalyzeUploadCached(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	raw := fixture(t, "fig1_v2.trace")

	resp, body := postAnalyze(t, ts.URL+"/analyze?detector=sp%2B", raw)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first analyze: %d %s", resp.StatusCode, body)
	}
	first := decodeAnalyze(t, body)
	if first.Cached {
		t.Fatal("first analysis cannot be a cache hit")
	}
	if first.Clean {
		t.Fatal("fig1 under steal-all must race")
	}
	wantDigest, _ := trace.DigestOf(bytes.NewReader(raw))
	if first.Digest != wantDigest.String() {
		t.Fatalf("digest %s, want %s", first.Digest, wantDigest)
	}

	resp2, body2 := postAnalyze(t, ts.URL+"/analyze?detector=sp%2B", raw)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second analyze: %d %s", resp2.StatusCode, body2)
	}
	second := decodeAnalyze(t, body2)
	if !second.Cached {
		t.Fatal("identical upload must be served from cache")
	}
	if !bytes.Equal(first.Report, second.Report) {
		t.Fatalf("cached verdict differs:\n%s\nvs\n%s", first.Report, second.Report)
	}
	if s.CacheHits() != 1 {
		t.Fatalf("cache hits = %d, want 1", s.CacheHits())
	}

	// The verdict must equal a local replay encoded under the shared
	// schema — the record-locally/analyze-remotely equivalence.
	det, hooks, err := rader.NewDetector(rader.SPPlus)
	if err != nil {
		t.Fatal(err)
	}
	events, err := trace.Replay(bytes.NewReader(raw), hooks)
	if err != nil {
		t.Fatal(err)
	}
	local, err := report.FromCore(string(rader.SPPlus), "", events, det.Report()).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(local, first.Report) {
		t.Fatalf("remote verdict != local verdict:\nremote: %s\nlocal:  %s", first.Report, local)
	}
}

// A legacy v1 (CILKTRACE1, unfootered) stream must still analyze: recorded
// traces outlive daemon upgrades.
func TestAnalyzeV1BackCompat(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, body := postAnalyze(t, ts.URL+"/analyze?detector=sp%2B", fixture(t, "fig1_v1.trace"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("v1 analyze: %d %s", resp.StatusCode, body)
	}
	ar := decodeAnalyze(t, body)
	if ar.Clean {
		t.Fatal("v1 fig1 trace must report the figure-1 race")
	}
	var rep report.Report
	if err := json.Unmarshal(ar.Report, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Schema != report.Schema || rep.Distinct != 1 {
		t.Fatalf("unexpected verdict: %+v", rep)
	}
	// The v1 framing has different bytes than the v2 recording of the
	// same run, so it must cache under a different digest.
	v2d, _ := trace.DigestOf(bytes.NewReader(fixture(t, "fig1_v2.trace")))
	if ar.Digest == v2d.String() {
		t.Fatal("v1 and v2 framings must not share a digest")
	}
}

// Named built-ins analyze without an upload, and the (program, detector,
// spec) configuration is cached like a trace digest.
func TestAnalyzeNamedProgram(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	url := ts.URL + "/analyze?prog=fig1&spec=all&detector=sp%2B"
	resp, body := postAnalyze(t, url, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("named analyze: %d %s", resp.StatusCode, body)
	}
	ar := decodeAnalyze(t, body)
	if ar.Clean {
		t.Fatal("fig1 under all-steals must race")
	}
	if ar.Spec != "all" {
		t.Fatalf("spec echo = %q", ar.Spec)
	}

	// Same program, different spec — distinct cache entry, clean verdict
	// (the figure-1 race needs a steal).
	resp2, body2 := postAnalyze(t, ts.URL+"/analyze?prog=fig1&spec=none&detector=sp%2B", nil)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("serial analyze: %d %s", resp2.StatusCode, body2)
	}
	if ar2 := decodeAnalyze(t, body2); !ar2.Clean || ar2.Cached {
		t.Fatalf("serial fig1 should be a fresh clean verdict, got %+v", ar2)
	}

	resp3, body3 := postAnalyze(t, url, nil)
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("repeat analyze: %d %s", resp3.StatusCode, body3)
	}
	if ar3 := decodeAnalyze(t, body3); !ar3.Cached {
		t.Fatal("repeat configuration must hit the cache")
	}
	if s.CacheHits() != 1 {
		t.Fatalf("cache hits = %d, want 1", s.CacheHits())
	}

	// Corpus entries resolve by name too.
	resp4, body4 := postAnalyze(t, ts.URL+"/analyze?prog=view-read-early-get&detector=peer-set", nil)
	if resp4.StatusCode != http.StatusOK {
		t.Fatalf("corpus analyze: %d %s", resp4.StatusCode, body4)
	}
	if ar4 := decodeAnalyze(t, body4); ar4.Clean {
		t.Fatal("view-read-early-get must report a view-read race under peer-set")
	}
}

func TestAnalyzeRejectsBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := []struct {
		name string
		url  string
		body []byte
		want int
	}{
		{"empty body, no prog", "/analyze", nil, http.StatusBadRequest},
		{"bad detector", "/analyze?detector=quantum", []byte("x"), http.StatusBadRequest},
		{"unknown program", "/analyze?prog=nonesuch", nil, http.StatusNotFound},
		{"bad spec", "/analyze?prog=fig1&spec=sometimes", nil, http.StatusBadRequest},
		{"bad scale", "/analyze?prog=fib&scale=galactic", nil, http.StatusNotFound},
		{"garbage trace", "/analyze", []byte("not a trace at all"), http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postAnalyze(t, ts.URL+tc.url, tc.body)
			if resp.StatusCode != tc.want {
				t.Fatalf("status %d, want %d (%s)", resp.StatusCode, tc.want, body)
			}
			var er ErrorResponse
			if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
				t.Fatalf("error responses must carry a JSON error: %s", body)
			}
		})
	}
	resp, err := http.Get(ts.URL + "/analyze")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /analyze = %d, want 405", resp.StatusCode)
	}
}

// A truncated upload must come back as an analysis failure naming the
// truncation, not a 500 or a hang.
func TestAnalyzeTruncatedUpload(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	raw := fixture(t, "fig1_v2.trace")
	resp, body := postAnalyze(t, ts.URL+"/analyze", raw[:len(raw)-20])
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("truncated upload: %d %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "truncated") {
		t.Fatalf("error must name the truncation: %s", body)
	}
}

// Saturation: with the pool full and the queue full, further requests are
// shed with 429, and the worker bound is never exceeded.
func TestAnalyzeSheddingUnderSaturation(t *testing.T) {
	const workers, queue = 2, 2
	gate := make(chan struct{})
	var cur, peak atomic.Int32
	blocking := Program{
		Desc: "blocks until the test opens the gate",
		Factory: func() func(*cilk.Ctx) {
			return func(*cilk.Ctx) {
				v := cur.Add(1)
				for {
					p := peak.Load()
					if v <= p || peak.CompareAndSwap(p, v) {
						break
					}
				}
				<-gate
				cur.Add(-1)
			}
		},
	}
	s, ts := newTestServer(t, Config{
		Workers:    workers,
		QueueDepth: queue,
		Programs:   map[string]Program{"slow": blocking},
	})

	type result struct {
		status int
		body   []byte
	}
	results := make(chan result, workers+queue)
	var wg sync.WaitGroup
	for i := 0; i < workers+queue; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, body := postAnalyze(t, ts.URL+"/analyze?prog=slow&detector=none", nil)
			results <- result{resp.StatusCode, body}
		}()
	}

	// Wait until the system is provably full: workers running, queue full.
	deadline := time.Now().Add(5 * time.Second)
	for s.Admitted() < workers+queue {
		if time.Now().After(deadline) {
			t.Fatalf("pool never filled: admitted=%d running=%d", s.Admitted(), s.Running())
		}
		time.Sleep(time.Millisecond)
	}
	if s.Running() > workers {
		t.Fatalf("running=%d exceeds worker bound %d", s.Running(), workers)
	}

	// Everything beyond capacity is shed immediately with 429.
	for i := 0; i < 5; i++ {
		resp, body := postAnalyze(t, ts.URL+"/analyze?prog=slow&detector=none", nil)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("saturated request %d: %d %s", i, resp.StatusCode, body)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatal("429 must carry Retry-After")
		}
	}

	close(gate)
	wg.Wait()
	close(results)
	for r := range results {
		if r.status != http.StatusOK {
			t.Fatalf("admitted request failed: %d %s", r.status, r.body)
		}
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent analyses, worker bound is %d", p, workers)
	}
	var mb bytes.Buffer
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(&mb, mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(mb.String(), `raderd_jobs_total{state="rejected"} 5`) {
		t.Fatalf("metrics must count the shed requests:\n%s", mb.String())
	}
}

// The §7 sweep runs as an async job: submit, poll to done, verdict carries
// the figure-1 race; resubmission is served from cache without re-running.
func TestSweepAsyncJob(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, SweepWorkers: 2})
	resp, err := http.Post(ts.URL+"/sweep?prog=fig1", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep submit: %d %s", resp.StatusCode, body)
	}
	var sr SweepResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.ID == "" || (sr.State != stateQueued && sr.State != stateRunning) {
		t.Fatalf("unexpected submit response: %+v", sr)
	}

	deadline := time.Now().Add(30 * time.Second)
	for sr.State != stateDone && sr.State != stateFailed {
		if time.Now().After(deadline) {
			t.Fatalf("sweep stuck in state %q", sr.State)
		}
		time.Sleep(5 * time.Millisecond)
		pr, err := http.Get(ts.URL + "/sweep/" + sr.ID)
		if err != nil {
			t.Fatal(err)
		}
		pb, _ := io.ReadAll(pr.Body)
		pr.Body.Close()
		if pr.StatusCode != http.StatusOK {
			t.Fatalf("poll: %d %s", pr.StatusCode, pb)
		}
		if err := json.Unmarshal(pb, &sr); err != nil {
			t.Fatal(err)
		}
	}
	if sr.State != stateDone {
		t.Fatalf("sweep failed: %s", sr.Error)
	}
	var sweep report.Sweep
	if err := json.Unmarshal(sr.Sweep, &sweep); err != nil {
		t.Fatal(err)
	}
	if sweep.Clean || len(sweep.Races) == 0 {
		t.Fatalf("the fig1 sweep must find the race: %s", sr.Sweep)
	}
	if !sweep.Complete {
		t.Fatalf("sweep incomplete: %s", sr.Sweep)
	}

	// Resubmitting is a cache hit: the job arrives already done.
	resp2, err := http.Post(ts.URL+"/sweep?prog=fig1", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("cached sweep submit: %d %s", resp2.StatusCode, body2)
	}
	var sr2 SweepResponse
	if err := json.Unmarshal(body2, &sr2); err != nil {
		t.Fatal(err)
	}
	if sr2.State != stateDone || !bytes.Equal(sr2.Sweep, sr.Sweep) {
		t.Fatalf("resubmission must be served done from cache: %+v", sr2)
	}
	if s.CacheHits() != 1 {
		t.Fatalf("cache hits = %d, want 1", s.CacheHits())
	}

	// Unknown job IDs 404.
	pr, err := http.Get(ts.URL + "/sweep/sweep-999")
	if err != nil {
		t.Fatal(err)
	}
	pr.Body.Close()
	if pr.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job poll: %d", pr.StatusCode)
	}
}

// pollSweepDone polls a submitted sweep job until it reaches a terminal
// state and requires that state to be done.
func pollSweepDone(t *testing.T, base string, sr SweepResponse) SweepResponse {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for sr.State != stateDone && sr.State != stateFailed {
		if time.Now().After(deadline) {
			t.Fatalf("sweep stuck in state %q", sr.State)
		}
		time.Sleep(5 * time.Millisecond)
		pr, err := http.Get(base + "/sweep/" + sr.ID)
		if err != nil {
			t.Fatal(err)
		}
		pb, _ := io.ReadAll(pr.Body)
		pr.Body.Close()
		if pr.StatusCode != http.StatusOK {
			t.Fatalf("poll: %d %s", pr.StatusCode, pb)
		}
		if err := json.Unmarshal(pb, &sr); err != nil {
			t.Fatal(err)
		}
	}
	if sr.State != stateDone {
		t.Fatalf("sweep failed: %s", sr.Error)
	}
	return sr
}

// ?sample= caps the sweep at that many coverage-guided specifications and
// is part of the verdict's cache identity; ?workers= only changes the
// scheduler width, so it shares the cache entry. Malformed values 400.
func TestSweepSampleAndWorkersParams(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, SweepWorkers: 2})

	submit := func(query string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/sweep?"+query, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, body
	}

	resp, body := submit("prog=fig1&sample=3&workers=4")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sampled sweep submit: %d %s", resp.StatusCode, body)
	}
	var sr SweepResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	sr = pollSweepDone(t, ts.URL, sr)
	var sweep report.Sweep
	if err := json.Unmarshal(sr.Sweep, &sweep); err != nil {
		t.Fatal(err)
	}
	if !sweep.Stats.Sampled || sweep.Stats.Confidence == "" {
		t.Fatalf("sampled sweep document missing sampling stats: %+v", sweep.Stats)
	}
	if sweep.Stats.CoverageFraction <= 0 || sweep.Stats.CoverageFraction >= 1 {
		t.Fatalf("coverage fraction %v, want in (0,1)", sweep.Stats.CoverageFraction)
	}
	if sweep.SpecsRun > 3 {
		t.Fatalf("sampled sweep ran %d specs, cap was 3", sweep.SpecsRun)
	}

	// The full-family sweep must not be served from the sampled verdict.
	resp2, body2 := submit("prog=fig1")
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("full sweep after sampled: %d %s (a cache hit here would serve the wrong verdict)",
			resp2.StatusCode, body2)
	}
	var full SweepResponse
	if err := json.Unmarshal(body2, &full); err != nil {
		t.Fatal(err)
	}
	pollSweepDone(t, ts.URL, full)

	// The same sampled request is a cache hit; a different workers= value
	// still hits, because scheduler width never changes the verdict.
	for _, q := range []string{"prog=fig1&sample=3", "prog=fig1&sample=3&workers=8"} {
		resp3, body3 := submit(q)
		var again SweepResponse
		if err := json.Unmarshal(body3, &again); err != nil {
			t.Fatal(err)
		}
		if resp3.StatusCode != http.StatusOK || again.State != stateDone {
			t.Fatalf("%s: %d %+v, want cache-served done job", q, resp3.StatusCode, again)
		}
		if !bytes.Equal(again.Sweep, sr.Sweep) {
			t.Fatalf("%s served a different document than the computing job", q)
		}
	}

	for _, q := range []string{"prog=fig1&sample=x", "prog=fig1&sample=-1", "prog=fig1&workers=no"} {
		resp4, body4 := submit(q)
		if resp4.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: %d %s, want 400", q, resp4.StatusCode, body4)
		}
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(b), "ok") {
		t.Fatalf("healthz: %d %s", resp.StatusCode, b)
	}

	// Drive one analysis so the histogram materializes.
	postAnalyze(t, ts.URL+"/analyze?prog=fig1&spec=all", nil)

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	text := string(mb)
	for _, series := range []string{
		`raderd_jobs_total{state="done"} 1`,
		"raderd_queue_depth 0",
		"raderd_workers 1",
		"raderd_cache_misses_total 1",
		"raderd_cache_hit_ratio 0",
		"raderd_cache_entries 1",
		`raderd_sweep_jobs{state="done"} 0`,
		`raderd_analyze_latency_seconds_bucket{detector="sp+",le="+Inf"} 1`,
		`raderd_analyze_latency_seconds_count{detector="sp+"} 1`,
	} {
		if !strings.Contains(text, series) {
			t.Errorf("metrics missing %q:\n%s", series, text)
		}
	}
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
}

// Unit coverage for the LRU: capacity bound, recency refresh, overwrite.
func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(2, 0)
	c.put("a", &cached{digest: "a"})
	c.put("b", &cached{digest: "b"})
	if _, ok := c.get("a"); !ok { // refresh a
		t.Fatal("a should be resident")
	}
	c.put("c", &cached{digest: "c"}) // evicts b
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted as least-recently-used")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.get(k); !ok {
			t.Fatalf("%s should be resident", k)
		}
	}
	c.put("a", &cached{digest: "a2"})
	if v, _ := c.get("a"); v.digest != "a2" {
		t.Fatal("put must overwrite in place")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
}

// Two equal uploads racing through a cold cache both succeed; the cache
// ends up with one entry (last writer wins on the same key).
func TestConcurrentSameDigestUploads(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 4})
	raw := fixture(t, "fig1_v2.trace")
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, body := postAnalyze(t, ts.URL+"/analyze?detector=sp%2B", raw)
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Sprintf("%d %s", resp.StatusCode, body)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if s.cache.len() != 1 {
		t.Fatalf("cache entries = %d, want 1", s.cache.len())
	}
}
