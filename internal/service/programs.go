package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"

	"repro/internal/apps"
	"repro/internal/cilk"
	"repro/internal/corpus"
	"repro/internal/mem"
	"repro/internal/progs"
)

// Program is one named built-in the service can analyze without an
// uploaded trace. Factory must return a fresh rerunnable instance per call
// (sweeps run it hundreds of times), with identical address layouts across
// instances so findings are comparable.
type Program struct {
	Desc    string
	Factory func() func(*cilk.Ctx)
}

// registry resolves program names for /analyze?prog= and /sweep?prog=.
// Built-ins are the paper's figures, the corpus catalogue, and the six
// Figure 7 benchmarks (the latter parameterized by scale).
type registry struct {
	extra map[string]Program
}

// resolve returns the program and its stable identity string. The identity
// feeds the cache digest, so it must name everything that changes the
// program's behaviour — for benchmarks that includes the scale.
func (rg *registry) resolve(name, scaleStr string) (Program, string, error) {
	if p, ok := rg.extra[name]; ok {
		return p, "program\x00" + name, nil
	}
	switch name {
	case "fig1":
		return figure("Figure 1: shallow-copy list race", progs.Fig1Options{}), "program\x00fig1", nil
	case "fig1-early":
		return figure("Figure 1 with get_value before sync", progs.Fig1Options{EarlyGetValue: true}), "program\x00fig1-early", nil
	case "fig1-late":
		return figure("Figure 1 with set_value after spawn", progs.Fig1Options{SetValueAfterSpawn: true}), "program\x00fig1-late", nil
	case "fig1-fixed":
		return figure("Figure 1 with a deep copy (race-free)", progs.Fig1Options{DeepCopy: true}), "program\x00fig1-fixed", nil
	case "fig2":
		return Program{
			Desc:    "Figure 2 dag with reducer reads at strands 1 and 9",
			Factory: func() func(*cilk.Ctx) { return progs.Fig2Reads(1, 9) },
		}, "program\x00fig2", nil
	}
	for _, e := range corpus.All() {
		if e.Name == name {
			e := e
			return Program{
				Desc:    e.Desc,
				Factory: func() func(*cilk.Ctx) { return e.Build(mem.NewAllocator()) },
			}, "program\x00corpus\x00" + name, nil
		}
	}
	if app, err := apps.ByName(name); err == nil {
		sc, err := parseScale(scaleStr)
		if err != nil {
			return Program{}, "", err
		}
		return Program{
			Desc: app.Desc,
			Factory: func() func(*cilk.Ctx) {
				return app.Build(mem.NewAllocator(), sc).Prog
			},
		}, fmt.Sprintf("program\x00app\x00%s\x00%s", name, sc), nil
	}
	return Program{}, "", fmt.Errorf("unknown program %q (figures, corpus entries, or benchmarks %v)", name, appNames())
}

func figure(desc string, opts progs.Fig1Options) Program {
	return Program{
		Desc:    desc,
		Factory: func() func(*cilk.Ctx) { return progs.Fig1(mem.NewAllocator(), opts) },
	}
}

func parseScale(s string) (apps.Scale, error) {
	switch s {
	case "", "test":
		return apps.Test, nil
	case "small":
		return apps.Small, nil
	case "bench":
		return apps.Bench, nil
	default:
		return 0, fmt.Errorf("bad scale %q (test, small, bench)", s)
	}
}

func appNames() []string {
	var names []string
	for _, a := range apps.All() {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	return names
}

// programDigest converts a program identity into the same hex-digest shape
// uploaded traces get, so the cache has one key scheme.
func programDigest(identity string) string {
	sum := sha256.Sum256([]byte(identity))
	return hex.EncodeToString(sum[:])
}
