package service

import (
	"container/list"
	"encoding/json"
	"sync"
)

// cached is one memoized verdict: the encoded report document plus the
// metadata the response envelope repeats. Entries are immutable once
// stored, so concurrent readers share them without copying.
type cached struct {
	digest string
	report json.RawMessage
	clean  bool
}

// resultCache is a plain LRU keyed by digest × detector × spec. The
// digest is a SHA-256 of the trace content (or a synthetic program
// identity), so a hit is a proof the same analysis already ran — the whole
// point of the paper's record-once/analyze-many workflow served hot.
type resultCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recent
	m   map[string]*list.Element
}

type cacheItem struct {
	key string
	val *cached
}

func newResultCache(capacity int) *resultCache {
	if capacity < 1 {
		capacity = 1
	}
	return &resultCache{cap: capacity, ll: list.New(), m: make(map[string]*list.Element)}
}

// get returns the entry for key and refreshes its recency.
func (c *resultCache) get(key string) (*cached, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheItem).val, true
}

// put stores the entry, evicting the least-recently-used beyond capacity.
func (c *resultCache) put(key string, val *cached) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		el.Value.(*cacheItem).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.m[key] = c.ll.PushFront(&cacheItem{key: key, val: val})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*cacheItem).key)
	}
}

// len reports the resident entry count.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
