package service

import (
	"container/list"
	"encoding/json"
	"sync"
)

// cached is one memoized verdict: the encoded report document plus the
// metadata the response envelope repeats. Entries are immutable once
// stored, so concurrent readers share them without copying.
type cached struct {
	digest string
	report json.RawMessage
	clean  bool
}

// cost is the entry's accounting size for the byte bound: the payload
// bytes plus the envelope strings and a fixed overhead for the list and
// map machinery. An approximation, but a monotone one — a bigger report
// always costs more.
func (c *cached) cost(key string) int64 {
	const entryOverhead = 128
	return int64(len(c.report)) + int64(len(c.digest)) + int64(len(key)) + entryOverhead
}

// resultCache is an LRU keyed by digest × detector × spec, bounded by
// total resident bytes (the RAM that actually matters when verdict
// documents vary from hundreds of bytes to megabytes) and secondarily by
// entry count. With a disk store configured the cache is a read-through
// layer: an eviction costs one store read, not one analysis. The digest
// is a SHA-256 of the trace content (or a synthetic program identity),
// so a hit is a proof the same analysis already ran — the whole point of
// the paper's record-once/analyze-many workflow served hot.
type resultCache struct {
	mu       sync.Mutex
	maxBytes int64
	maxEnts  int
	bytes    int64
	ll       *list.List // front = most recent
	m        map[string]*list.Element
}

type cacheItem struct {
	key  string
	val  *cached
	cost int64
}

func newResultCache(maxEntries int, maxBytes int64) *resultCache {
	if maxEntries < 1 {
		maxEntries = 1
	}
	if maxBytes < 1 {
		maxBytes = 64 << 20
	}
	return &resultCache{
		maxBytes: maxBytes,
		maxEnts:  maxEntries,
		ll:       list.New(),
		m:        make(map[string]*list.Element),
	}
}

// get returns the entry for key and refreshes its recency.
func (c *resultCache) get(key string) (*cached, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheItem).val, true
}

// put stores the entry, evicting least-recently-used entries until both
// the byte and entry bounds hold. An entry larger than the whole byte
// budget is not admitted at all (it would evict everything and then be
// evicted by its successor — pure churn).
func (c *resultCache) put(key string, val *cached) {
	cost := val.cost(key)
	c.mu.Lock()
	defer c.mu.Unlock()
	if cost > c.maxBytes {
		return
	}
	if el, ok := c.m[key]; ok {
		item := el.Value.(*cacheItem)
		c.bytes += cost - item.cost
		item.val, item.cost = val, cost
		c.ll.MoveToFront(el)
	} else {
		c.m[key] = c.ll.PushFront(&cacheItem{key: key, val: val, cost: cost})
		c.bytes += cost
	}
	for (c.bytes > c.maxBytes || c.ll.Len() > c.maxEnts) && c.ll.Len() > 1 {
		oldest := c.ll.Back()
		item := oldest.Value.(*cacheItem)
		c.ll.Remove(oldest)
		delete(c.m, item.key)
		c.bytes -= item.cost
	}
}

// len reports the resident entry count.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// size reports the resident bytes (the raderd_cache_bytes gauge).
func (c *resultCache) size() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}
