package service

import (
	"encoding/json"

	"repro/internal/obs"
)

// AnalyzeResponse is the envelope of POST /analyze. Report is the shared
// internal/report verdict document, kept as raw bytes so a client can
// re-emit it byte-for-byte identical to a local rader -json run.
type AnalyzeResponse struct {
	// Digest is the SHA-256 content identity the result is cached under
	// (trace bytes for uploads, program identity for named programs).
	Digest string `json:"digest"`
	// Detector and Spec echo the analysed configuration.
	Detector string `json:"detector"`
	Spec     string `json:"spec,omitempty"`
	// Cached reports whether this verdict was served from the cache.
	Cached bool `json:"cached"`
	// DurationMS is the server-side analysis wall time; 0 for cache hits.
	DurationMS float64 `json:"durationMs"`
	// Clean mirrors report.clean for quick exit-code decisions.
	Clean bool `json:"clean"`
	// Report is the verdict document (report.Report).
	Report json.RawMessage `json:"report"`
}

// SweepResponse is the envelope of POST /sweep and GET /sweep/{id}.
type SweepResponse struct {
	ID      string `json:"id"`
	Program string `json:"program"`
	// State is queued, running, done, or failed.
	State string `json:"state"`
	Error string `json:"error,omitempty"`
	// Sweep is the verdict document (report.Sweep) once State is done.
	Sweep json.RawMessage `json:"sweep,omitempty"`
	// Progress is the job's live monotone progress, once any has been
	// reported (absent before the sweep announces its unit count).
	Progress *obs.ProgressSnapshot `json:"progress,omitempty"`
}

// JobEvent is one progress event of GET /jobs/{id}/events: the SSE
// "data:" payload, and the whole body of a ?wait= long-poll response.
// Progress fields are monotone across a job's event sequence; the stream
// ends with a terminal event whose State matches the final job status.
type JobEvent struct {
	ID       string               `json:"id"`
	State    string               `json:"state"`
	Error    string               `json:"error,omitempty"`
	Progress obs.ProgressSnapshot `json:"progress"`
}

// TraceStatusResponse is the envelope of PUT/HEAD /traces/{digest}: the
// durable state of a resumable upload. Offset is also mirrored in the
// Upload-Offset header so a HEAD (no body) carries it too.
type TraceStatusResponse struct {
	Digest string `json:"digest"`
	// Offset is the count of bytes durably received so far; a resuming
	// client continues from here.
	Offset int64 `json:"offset"`
	// Complete reports whether the trace has been verified and finalized
	// into the content-addressed store.
	Complete bool `json:"complete"`
}

// ErrorResponse is the body of every non-2xx JSON response.
type ErrorResponse struct {
	Error string `json:"error"`
}
