package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/report"
	"repro/internal/trace"
)

// One all-detectors upload must decode the trace once and leave FOUR
// cache entries behind: the merged document plus one per detector, each
// byte-identical to what a standalone single-detector request computes.
func TestAnalyzeAllDetectorsSeedsCache(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	raw := fixture(t, "fig1_v2.trace")

	resp, body := postAnalyze(t, ts.URL+"/analyze?detector=all", raw)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("all-detectors analyze: %d %s", resp.StatusCode, body)
	}
	ar := decodeAnalyze(t, body)
	if ar.Cached || ar.Detector != "all" {
		t.Fatalf("first all-pass: cached=%v detector=%q", ar.Cached, ar.Detector)
	}
	if ar.Clean {
		t.Fatal("fig1 under steal-all must race")
	}
	var m report.Multi
	if err := json.Unmarshal(ar.Report, &m); err != nil {
		t.Fatalf("decoding merged document: %v", err)
	}
	if len(m.Reports) != 3 || m.Detector != "all" {
		t.Fatalf("merged document malformed: %s", ar.Report)
	}

	// Every per-detector request is now a cache hit, served with the
	// exact bytes of the matching sub-report.
	for i, det := range []string{"peer-set", "sp-bags", "sp%2B"} {
		resp, body := postAnalyze(t, ts.URL+"/analyze?detector="+det, raw)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s after all-pass: %d %s", det, resp.StatusCode, body)
		}
		sub := decodeAnalyze(t, body)
		if !sub.Cached {
			t.Fatalf("%s must be served from the seeded cache", det)
		}
		want, err := m.Reports[i].Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sub.Report, want) {
			t.Fatalf("%s seeded entry differs from sub-report:\ncache: %s\nsub:   %s",
				det, sub.Report, want)
		}
	}
	if s.CacheHits() != 3 {
		t.Fatalf("cache hits = %d, want 3", s.CacheHits())
	}

	// The seeded entries must also be byte-identical to what a fresh
	// server computes for a standalone single-detector upload.
	_, ts2 := newTestServer(t, Config{Workers: 2})
	resp, body = postAnalyze(t, ts2.URL+"/analyze?detector=sp%2B", raw)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fresh sp+ analyze: %d %s", resp.StatusCode, body)
	}
	fresh := decodeAnalyze(t, body)
	want, err := m.Reports[2].Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fresh.Report, want) {
		t.Fatalf("all-pass sub-report != standalone verdict:\nsub:        %s\nstandalone: %s",
			want, fresh.Report)
	}

	// A repeated all-detectors upload hits the merged entry.
	resp, body = postAnalyze(t, ts.URL+"/analyze?detector=all", raw)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second all-pass: %d %s", resp.StatusCode, body)
	}
	if again := decodeAnalyze(t, body); !again.Cached || !bytes.Equal(again.Report, ar.Report) {
		t.Fatalf("merged verdict not served from cache: cached=%v", again.Cached)
	}
}

// An upload that fails Replay validation must never leave a cache entry:
// resubmitting the same corrupt bytes re-validates them instead of
// serving a verdict (or the failure) from the LRU.
func TestAnalyzeFailedValidationNotCached(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	valid := fixture(t, "fig1_v2.trace")
	truncated := valid[:len(valid)/2]
	corrupt := append([]byte(nil), valid...)
	corrupt[len(trace.Magic)+4] ^= 0x01

	for _, tc := range []struct {
		name string
		data []byte
		det  string
	}{
		{"truncated-sp+", truncated, "sp%2B"},
		{"truncated-all", truncated, "all"},
		{"corrupt-all", corrupt, "all"},
	} {
		for attempt := 0; attempt < 2; attempt++ {
			resp, body := postAnalyze(t, ts.URL+"/analyze?detector="+tc.det, tc.data)
			if resp.StatusCode != http.StatusUnprocessableEntity {
				t.Fatalf("%s attempt %d: %d %s — bad upload must 422 every time",
					tc.name, attempt, resp.StatusCode, body)
			}
		}
	}
	if s.CacheHits() != 0 {
		t.Fatalf("failed validations produced %d cache hits, want 0", s.CacheHits())
	}

	// A failed all-pass must not have seeded per-detector entries either.
	resp, body := postAnalyze(t, ts.URL+"/analyze?detector=sp%2B", corrupt)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("corrupt single-detector: %d %s", resp.StatusCode, body)
	}
	if s.CacheHits() != 0 {
		t.Fatalf("corrupt upload hit a seeded entry: hits=%d", s.CacheHits())
	}

	// The digest space is shared with valid traces: after all the
	// failures, the genuine bytes still analyze fresh and correctly.
	resp, body = postAnalyze(t, ts.URL+"/analyze?detector=all", valid)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valid trace after failures: %d %s", resp.StatusCode, body)
	}
	if ar := decodeAnalyze(t, body); ar.Cached || ar.Clean {
		t.Fatalf("valid trace verdict wrong: cached=%v clean=%v", ar.Cached, ar.Clean)
	}
}
