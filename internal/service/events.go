package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"
)

// sseKeepalive is how often an idle event stream emits a comment frame so
// intermediaries don't reap the connection.
const sseKeepalive = 15 * time.Second

// longPollWindow bounds one ?wait=1 long-poll: the request returns the
// current event no later than this even if nothing changed.
const longPollWindow = 25 * time.Second

// handleJobs dispatches the /jobs/{id}[...] surface:
//
//	GET /jobs/{id}         job status (alias of GET /sweep/{id})
//	GET /jobs/{id}/trace   server-side span tree (?format=spans|chrome)
//	GET /jobs/{id}/events  SSE progress stream (?wait=1 for one long-poll)
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/jobs/")
	id, sub, _ := strings.Cut(rest, "/")
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET /jobs/{id}[/trace|/events]")
		return
	}
	job, ok := s.jobs.get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job %q (finished jobs are retained up to a bound)", id)
		return
	}
	switch sub {
	case "":
		writeJSON(w, http.StatusOK, job.view())
	case "trace":
		s.handleJobTrace(w, r, job)
	case "events":
		s.handleJobEvents(w, r, job)
	default:
		writeErr(w, http.StatusNotFound, "unknown job subresource %q (trace, events)", sub)
	}
}

// handleJobTrace serves the job's server-side span tree. A job answered
// from the cache never ran, so it falls back to the tree persisted by the
// sweep that computed the cached verdict.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request, job *sweepJob) {
	doc, key := job.spansDoc()
	if doc == nil && key != "" {
		if d, ok := s.lookupSpans(key); ok {
			doc = d
		}
	}
	if doc == nil {
		writeErr(w, http.StatusNotFound,
			"no span tree for this job yet (it appears when the sweep finishes)")
		return
	}
	writeSpanDoc(w, r, doc)
}

// handleJobEvents streams the job's monotone progress. Default transport
// is Server-Sent Events: one "progress" event per change, ending with a
// terminal "end" event whose state matches the final job status. ?wait=1
// is the long-poll fallback for clients without SSE: it returns one
// JobEvent as plain JSON, blocking up to longPollWindow for a change past
// the version the client echoes in ?ver=.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request, job *sweepJob) {
	s.metrics.eventStream()
	if r.URL.Query().Get("wait") == "1" {
		s.longPollEvent(w, r, job)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		// No streaming support under this writer: degrade to one snapshot.
		writeJSON(w, http.StatusOK, job.event())
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	keep := time.NewTicker(sseKeepalive)
	defer keep.Stop()
	for {
		_, ver, wake := job.progress.Load()
		ev := job.event()
		terminal := ev.State == stateDone || ev.State == stateFailed
		name := "progress"
		if terminal {
			name = "end"
		}
		if err := writeSSE(w, name, ev); err != nil {
			return
		}
		fl.Flush()
		if terminal {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-wake:
			// Re-read and emit. ver is only used to detect that the load
			// and the wake channel belong together; the loop re-Loads.
			_ = ver
		case <-keep.C:
			if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

// longPollEvent answers one ?wait=1 request: if the client echoes the
// version of its last event in ?ver=, the response blocks until the job
// changes past it (or the window closes); without ?ver= it returns the
// current event immediately.
func (s *Server) longPollEvent(w http.ResponseWriter, r *http.Request, job *sweepJob) {
	snapVer := r.URL.Query().Get("ver")
	deadline := time.NewTimer(longPollWindow)
	defer deadline.Stop()
	for {
		_, ver, wake := job.progress.Load()
		cur := fmt.Sprintf("%d", ver)
		if snapVer == "" || cur != snapVer || job.terminal() {
			ev := job.event()
			w.Header().Set("X-Job-Event-Version", cur)
			writeJSON(w, http.StatusOK, ev)
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-deadline.C:
			ev := job.event()
			w.Header().Set("X-Job-Event-Version", cur)
			writeJSON(w, http.StatusOK, ev)
			return
		case <-wake:
		}
	}
}

// writeSSE emits one SSE frame: event name plus the JSON payload.
func writeSSE(w http.ResponseWriter, event string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
	return err
}
