// Command gen regenerates the committed trace fixtures used by the
// service tests:
//
//	go run ./internal/service/testdata/gen
//
// fig1_v2.trace is a current-format recording of the paper's Figure 1
// program under steal-all; fig1_v1.trace is the same event stream in the
// legacy CILKTRACE1 framing (v1 header, no integrity footer), which the
// service must keep accepting — recorded traces outlive daemon upgrades.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/cilk"
	"repro/internal/mem"
	"repro/internal/progs"
	"repro/internal/trace"
)

func main() {
	var buf bytes.Buffer
	tw := trace.NewWriter(&buf)
	al := mem.NewAllocator()
	cilk.Run(progs.Fig1(al, progs.Fig1Options{}), cilk.Config{Spec: cilk.StealAll{}, Hooks: tw})
	if err := tw.Close(); err != nil {
		log.Fatal(err)
	}
	v2 := buf.Bytes()

	// v1 framing: swap the magic, drop the 13-byte footer.
	if !bytes.HasPrefix(v2, []byte(trace.Magic)) {
		log.Fatal("unexpected v2 header")
	}
	body := v2[len(trace.Magic) : len(v2)-13]
	v1 := append([]byte(trace.MagicV1), body...)

	dir := filepath.Join("internal", "service", "testdata")
	for name, data := range map[string][]byte{
		"fig1_v2.trace": v2,
		"fig1_v1.trace": v1,
	} {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", name, len(data))
	}
	digest, err := tw.Digest()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("v2 digest: %s\n", digest)
}
