package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/cilk"
)

// progOf wraps a plain func as a named service Program.
func progOf(desc string, body func()) Program {
	return Program{
		Desc:    desc,
		Factory: func() func(*cilk.Ctx) { return func(*cilk.Ctx) { body() } },
	}
}

func TestSanitizeDetector(t *testing.T) {
	for _, d := range []string{"none", "empty", "peer-set", "sp-bags", "sp+",
		"offset-span", "english-hebrew", "depa", "all", "sweep"} {
		if got := sanitizeDetector(d); got != d {
			t.Errorf("sanitizeDetector(%q) = %q, want identity", d, got)
		}
	}
	for _, d := range []string{"", "bogus", "sp+\nINJECTED 1", `x"y`, "SP+"} {
		if got := sanitizeDetector(d); got != "other" {
			t.Errorf("sanitizeDetector(%q) = %q, want \"other\"", d, got)
		}
	}
}

// A hostile detector label must not mint a new series: it lands in the
// bounded "other" bucket.
func TestMetricsLabelCardinality(t *testing.T) {
	s := New(Config{Workers: 1})
	for i := 0; i < 50; i++ {
		s.metrics.done(fmt.Sprintf("evil-%d", i), time.Millisecond, 0)
	}
	s.metrics.done("sp+", time.Millisecond, 0)
	var buf bytes.Buffer
	s.metrics.write(&buf)
	out := buf.String()
	if strings.Contains(out, "evil-") {
		t.Fatal("unsanitized detector label leaked into exposition")
	}
	if !strings.Contains(out, `raderd_analyze_latency_seconds_count{detector="other"} 50`) {
		t.Errorf("unknown detectors not folded into other:\n%s", out)
	}
	if !strings.Contains(out, `raderd_analyze_latency_seconds_count{detector="sp+"} 1`) {
		t.Errorf("known detector series missing:\n%s", out)
	}
}

func TestRetryAfterHint(t *testing.T) {
	cases := []struct {
		queued, workers, want int
	}{
		{0, 4, 1},     // empty queue: minimum hint
		{1, 4, 1},     // shallow queue still drains within a second
		{4, 4, 2},     // one full drain interval queued
		{16, 4, 5},    // grows with depth
		{1000, 4, 30}, // capped
		{5, 0, 6},     // degenerate worker count clamps to 1
		{-3, 4, 1},    // transient negative depth clamps to minimum
	}
	for _, c := range cases {
		if got := retryAfterHint(c.queued, c.workers); got != c.want {
			t.Errorf("retryAfterHint(%d, %d) = %d, want %d", c.queued, c.workers, got, c.want)
		}
	}
	// Monotone in queue depth for a fixed pool.
	prev := 0
	for q := 0; q < 200; q += 7 {
		h := retryAfterHint(q, 4)
		if h < prev {
			t.Fatalf("hint not monotone: queued=%d gave %d after %d", q, h, prev)
		}
		prev = h
	}
}

// The shed path must carry a parseable, positive Retry-After computed from
// pool state rather than a constant.
func TestShedRetryAfterComputed(t *testing.T) {
	block := make(chan struct{})
	s, ts := newTestServer(t, Config{
		Workers:    1,
		QueueDepth: 8,
		Programs: map[string]Program{
			"stall": progOf("blocks until the test ends", func() { <-block }),
		},
	})
	defer close(block)

	// Fill the worker and the queue, then overflow.
	for i := 0; i < 1+8; i++ {
		go http.Post(ts.URL+"/analyze?prog=stall&detector=none", "", nil)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Admitted() < 9 {
		if time.Now().After(deadline) {
			t.Fatalf("pool never filled: admitted=%d", s.Admitted())
		}
		time.Sleep(time.Millisecond)
	}

	resp, err := http.Post(ts.URL+"/analyze?prog=stall&detector=none", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	secs, err := strconv.Atoi(ra)
	if err != nil {
		t.Fatalf("Retry-After %q is not an integer: %v", ra, err)
	}
	// 8 queued on 1 worker: the hint must reflect the backlog, not be the
	// old hardcoded 1.
	if want := retryAfterHint(8, 1); secs != want {
		t.Errorf("Retry-After = %d, want %d (8 queued / 1 worker)", secs, want)
	}
}

// expoSeries is one parsed sample line of a Prometheus text exposition.
type expoSeries struct {
	name   string // metric name including _bucket/_sum/_count suffix
	labels string // raw {...} contents, "" when unlabelled
	value  float64
}

// parseExposition validates the overall document shape — every sample
// preceded by # HELP and # TYPE for its family, no interleaved families —
// and returns the samples in order.
func parseExposition(t *testing.T, r io.Reader) ([]expoSeries, map[string]string) {
	t.Helper()
	var series []expoSeries
	types := map[string]string{}
	helps := map[string]string{}
	seenOrder := []string{}
	cur := ""
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, help, ok := strings.Cut(rest, " ")
			if !ok || help == "" {
				t.Fatalf("malformed HELP line %q", line)
			}
			if prev, dup := helps[name]; dup && prev != help {
				t.Fatalf("family %s re-announced with different help", name)
			}
			if _, dup := helps[name]; dup {
				t.Fatalf("duplicate family announcement for %s", name)
			}
			helps[name] = help
			seenOrder = append(seenOrder, name)
			cur = name
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, _ := strings.Cut(rest, " ")
			if name != cur {
				t.Fatalf("TYPE for %s does not follow its HELP (current family %s)", name, cur)
			}
			if typ != "counter" && typ != "gauge" && typ != "histogram" {
				t.Fatalf("unknown type %q for %s", typ, name)
			}
			types[name] = typ
			continue
		}
		// Sample line: name{labels} value or name value.
		nameAndLabels, valStr, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("sample %q has unparseable value: %v", line, err)
		}
		name, labels := nameAndLabels, ""
		if i := strings.IndexByte(nameAndLabels, '{'); i >= 0 {
			if !strings.HasSuffix(nameAndLabels, "}") {
				t.Fatalf("unterminated label set in %q", line)
			}
			name, labels = nameAndLabels[:i], nameAndLabels[i+1:len(nameAndLabels)-1]
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name,
			"_bucket"), "_sum"), "_count")
		if types[base] == "" && types[name] == "" {
			t.Fatalf("sample %s appears before its family metadata", name)
		}
		fam := base
		if types[name] != "" {
			fam = name
		}
		if fam != cur {
			t.Fatalf("sample for family %s interleaved into family %s", fam, cur)
		}
		series = append(series, expoSeries{name: name, labels: labels, value: v})
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	// No family announced twice (checked above) and none announced empty.
	if len(seenOrder) == 0 {
		t.Fatal("exposition contained no families")
	}
	return series, types
}

// TestMetricsExpositionFormat scrapes a live server and validates the
// Prometheus text-format contract: HELP/TYPE metadata, no duplicate or
// interleaved families, monotone cumulative histogram buckets ending in
// +Inf, and count/sum coherence.
func TestMetricsExpositionFormat(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, Programs: map[string]Program{
		"quick": progOf("returns immediately", func() {}),
	}})
	s.metrics.done("sp+", 3*time.Millisecond, 1000)
	s.metrics.done("weird", 40*time.Millisecond, 0)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	series, types := parseExposition(t, resp.Body)

	for _, fam := range []string{
		"raderd_jobs_total", "raderd_queue_depth", "raderd_workers_busy",
		"raderd_workers", "raderd_cache_hits_total", "raderd_cache_misses_total",
		"raderd_cache_hit_ratio", "raderd_cache_entries", "raderd_events_total",
		"raderd_events_per_second", "raderd_sweep_jobs",
		"raderd_sweep_snapshot_hits_total", "raderd_sweep_snapshot_misses_total",
		"raderd_sweep_events_skipped_total", "raderd_sweep_pages_copied_total",
		"raderd_sweep_steals_total", "raderd_sweep_handoffs_total",
		"raderd_sweep_pages_pooled",
		"raderd_depa_shard_merges_total", "raderd_depa_fast_path_rate",
		"raderd_elide_events_elided_total", "raderd_elide_bytes_saved_total",
		"raderd_trace_propagated_total", "raderd_span_trees_persisted_total",
		"raderd_job_event_streams_total", "raderd_request_ring_depth",
		"raderd_phase_latency_seconds", "raderd_analyze_latency_seconds",
	} {
		if types[fam] == "" {
			t.Errorf("family %s missing from exposition", fam)
		}
	}
	if types["raderd_jobs_total"] != "counter" ||
		types["raderd_queue_depth"] != "gauge" ||
		types["raderd_analyze_latency_seconds"] != "histogram" {
		t.Errorf("unexpected family types: %v", types)
	}

	// Within each family, no duplicate child label sets.
	seen := map[string]bool{}
	for _, sr := range series {
		key := sr.name + "{" + sr.labels + "}"
		if seen[key] {
			t.Errorf("duplicate series %s", key)
		}
		seen[key] = true
	}

	// Histogram coherence per labelled child: buckets are cumulative and
	// monotone, last bucket is +Inf and equals _count.
	type histState struct {
		prev    float64
		prevLE  float64
		last    float64
		infSeen bool
		count   float64
	}
	hists := map[string]*histState{}
	for _, sr := range series {
		if strings.HasSuffix(sr.name, "_bucket") {
			base := strings.TrimSuffix(sr.name, "_bucket")
			le := ""
			for _, part := range strings.Split(sr.labels, ",") {
				if v, ok := strings.CutPrefix(part, "le="); ok {
					le = strings.Trim(v, `"`)
				}
			}
			child := base + "|" + sr.labels[:strings.LastIndex(sr.labels, "le=")]
			h := hists[child]
			if h == nil {
				h = &histState{prevLE: -1}
				hists[child] = h
			}
			if sr.value < h.prev {
				t.Errorf("%s: bucket counts not cumulative (%g after %g)", child, sr.value, h.prev)
			}
			if le == "+Inf" {
				h.infSeen = true
			} else {
				bound, err := strconv.ParseFloat(le, 64)
				if err != nil {
					t.Errorf("%s: bad le %q", child, le)
				} else if bound <= h.prevLE {
					t.Errorf("%s: le bounds not increasing (%g after %g)", child, bound, h.prevLE)
				} else {
					h.prevLE = bound
				}
				if h.infSeen {
					t.Errorf("%s: bucket after +Inf", child)
				}
			}
			h.prev, h.last = sr.value, sr.value
		}
		if strings.HasSuffix(sr.name, "_count") {
			base := strings.TrimSuffix(sr.name, "_count")
			prefix := base + "_bucket|" + sr.labels
			if sr.labels != "" {
				prefix += ","
			}
			for child, h := range hists {
				if strings.HasPrefix(child, prefix) {
					h.count = sr.value
					if !h.infSeen {
						t.Errorf("%s: histogram missing +Inf bucket", child)
					}
					if h.last != sr.value {
						t.Errorf("%s: +Inf bucket %g != count %g", child, h.last, sr.value)
					}
				}
			}
		}
	}
	if len(hists) == 0 {
		t.Fatal("no histogram children parsed")
	}

	// The sanitized label and the phase family carry real observations.
	var otherCount, phaseCount float64
	for _, sr := range series {
		if sr.name == "raderd_analyze_latency_seconds_count" && sr.labels == `detector="other"` {
			otherCount = sr.value
		}
		if sr.name == "raderd_phase_latency_seconds_count" {
			phaseCount += sr.value
		}
	}
	if otherCount != 1 {
		t.Errorf(`detector="other" count = %g, want 1`, otherCount)
	}
	_ = phaseCount // present but zero until a request runs; family checked above

	// Driving one real request populates the phase histograms.
	if _, err := http.Post(ts.URL+"/analyze?prog=quick&detector=none", "", nil); err != nil {
		t.Fatal(err)
	}
	resp2, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	series2, _ := parseExposition(t, resp2.Body)
	phases := map[string]float64{}
	for _, sr := range series2 {
		if sr.name == "raderd_phase_latency_seconds_count" {
			phases[sr.labels] = sr.value
		}
	}
	for _, ph := range []string{phaseQueue, phaseRun, phaseEncode} {
		if phases[fmt.Sprintf("phase=%q", ph)] < 1 {
			t.Errorf("phase %q histogram has no observations: %v", ph, phases)
		}
	}
}

// TestDepaMetricsSeries pins the parallel detector's series names: one
// completed detector=depa analysis must populate
// raderd_depa_shard_merges_total and raderd_depa_fast_path_rate on both
// /metrics and the /debug/vars snapshot, and its verdict document must
// carry the parallel stats section.
func TestDepaMetricsSeries(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	resp, err := http.Post(ts.URL+"/analyze?prog=fig1&detector=depa", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze?detector=depa = %d: %s", resp.StatusCode, body)
	}
	var ar AnalyzeResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(ar.Report), `"parallel":{`) {
		t.Errorf("depa verdict document missing the parallel section: %s", ar.Report)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	text := string(mb)
	value := func(series string) float64 {
		for _, line := range strings.Split(text, "\n") {
			if rest, ok := strings.CutPrefix(line, series+" "); ok {
				v, err := strconv.ParseFloat(rest, 64)
				if err != nil {
					t.Fatalf("series %s has unparsable value %q", series, rest)
				}
				return v
			}
		}
		t.Fatalf("series %s missing from exposition:\n%s", series, text)
		return 0
	}
	if merges := value("raderd_depa_shard_merges_total"); merges < 1 {
		t.Errorf("raderd_depa_shard_merges_total = %g, want >= 1 after a depa analysis", merges)
	}
	value("raderd_depa_fast_path_rate") // presence is the contract

	vars := s.MetricsSnapshot()
	for _, name := range []string{
		"raderd_depa_shard_merges_total",
		"raderd_depa_fast_path_rate",
	} {
		if _, ok := vars[name]; !ok {
			t.Errorf("/debug/vars snapshot missing %s", name)
		}
	}
}

// TestElideMetricsSeries pins the elision series names: one elide=1
// trace analysis must move raderd_elide_events_elided_total and
// raderd_elide_bytes_saved_total on both /metrics and the /debug/vars
// snapshot, while the verdict document stays byte-identical to the
// plain analysis of the same trace (same cache key, same races).
func TestElideMetricsSeries(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	raw := fixture(t, "fig1_v2.trace")

	plain, plainBody := postAnalyze(t, ts.URL+"/analyze?detector=sp-bags", raw)
	if plain.StatusCode != http.StatusOK {
		t.Fatalf("plain analyze: %d %s", plain.StatusCode, plainBody)
	}
	full := decodeAnalyze(t, plainBody)

	// Same digest+detector: the elided request is answered from the cache
	// the plain one seeded — the elision counters must not move.
	resp, body := postAnalyze(t, ts.URL+"/analyze?detector=sp-bags&elide=1", raw)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached elide analyze: %d %s", resp.StatusCode, body)
	}
	if ar := decodeAnalyze(t, body); !ar.Cached {
		t.Fatal("elide=1 for an already-analyzed digest must hit the cache (verdicts are byte-identical)")
	}

	// A fresh detector key actually runs the elision pre-pass.
	resp2, body2 := postAnalyze(t, ts.URL+"/analyze?detector=depa&elide=1", raw)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("elide analyze: %d %s", resp2.StatusCode, body2)
	}
	elided := decodeAnalyze(t, body2)
	if elided.Cached {
		t.Fatal("fresh detector key cannot be a cache hit")
	}
	resp3, body3 := postAnalyze(t, ts.URL+"/analyze?detector=depa", raw)
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("plain depa analyze: %d %s", resp3.StatusCode, body3)
	}
	if ar := decodeAnalyze(t, body3); !ar.Cached {
		t.Fatal("plain analysis after an elided one must be a cache hit: same key, identical verdict")
	}
	if full.Clean || elided.Clean {
		t.Fatal("fig1 trace must race with and without elision")
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	text := string(mb)
	value := func(series string) float64 {
		for _, line := range strings.Split(text, "\n") {
			if rest, ok := strings.CutPrefix(line, series+" "); ok {
				v, err := strconv.ParseFloat(rest, 64)
				if err != nil {
					t.Fatalf("series %s has unparsable value %q", series, rest)
				}
				return v
			}
		}
		t.Fatalf("series %s missing from exposition:\n%s", series, text)
		return 0
	}
	if ev := value("raderd_elide_events_elided_total"); ev < 1 {
		t.Errorf("raderd_elide_events_elided_total = %g, want >= 1 after an elided analysis", ev)
	}
	if by := value("raderd_elide_bytes_saved_total"); by < 1 {
		t.Errorf("raderd_elide_bytes_saved_total = %g, want >= 1 after an elided analysis", by)
	}

	vars := s.MetricsSnapshot()
	for _, name := range []string{
		"raderd_elide_events_elided_total",
		"raderd_elide_bytes_saved_total",
	} {
		if _, ok := vars[name]; !ok {
			t.Errorf("/debug/vars snapshot missing %s", name)
		}
	}

	// Elision proves facts about a recorded stream; a program run has no
	// stream to elide and must be refused at resolve time.
	resp4, body4 := postAnalyze(t, ts.URL+"/analyze?prog=fig1&elide=1", nil)
	if resp4.StatusCode != http.StatusBadRequest {
		t.Fatalf("elide=1 with ?prog= = %d, want 400: %s", resp4.StatusCode, body4)
	}
}

// TestSweepSharingMetricsSeries pins the sweep-sharing series names: one
// completed sweep must populate raderd_sweep_snapshot_{hits,misses}_total,
// raderd_sweep_events_skipped_total and raderd_sweep_pages_copied_total on
// both /metrics and the /debug/vars snapshot — the default sweep is the
// prefix-sharing one, so the hit and skip counters move.
func TestSweepSharingMetricsSeries(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, SweepWorkers: 2})
	resp, err := http.Post(ts.URL+"/sweep?prog=fig1", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var sr SweepResponse
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("submit: %v in %s", err, body)
	}
	deadline := time.Now().Add(30 * time.Second)
	for sr.State != stateDone && sr.State != stateFailed {
		if time.Now().After(deadline) {
			t.Fatalf("sweep stuck in state %q", sr.State)
		}
		time.Sleep(5 * time.Millisecond)
		pr, err := http.Get(ts.URL + "/sweep/" + sr.ID)
		if err != nil {
			t.Fatal(err)
		}
		pb, _ := io.ReadAll(pr.Body)
		pr.Body.Close()
		if err := json.Unmarshal(pb, &sr); err != nil {
			t.Fatal(err)
		}
	}
	if sr.State != stateDone {
		t.Fatalf("sweep failed: %s", sr.Error)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	text := string(mb)
	value := func(series string) float64 {
		for _, line := range strings.Split(text, "\n") {
			if rest, ok := strings.CutPrefix(line, series+" "); ok {
				v, err := strconv.ParseFloat(rest, 64)
				if err != nil {
					t.Fatalf("series %s has unparsable value %q", series, rest)
				}
				return v
			}
		}
		t.Fatalf("series %s missing from exposition:\n%s", series, text)
		return 0
	}
	if hits := value("raderd_sweep_snapshot_hits_total"); hits == 0 {
		t.Error("a prefix-sharing sweep must seed at least one unit from a snapshot")
	}
	if misses := value("raderd_sweep_snapshot_misses_total"); misses == 0 {
		t.Error("the root unit always runs without a seed; misses cannot be zero")
	}
	if skipped := value("raderd_sweep_events_skipped_total"); skipped == 0 {
		t.Error("snapshot-seeded units must skip prefix events")
	}
	value("raderd_sweep_pages_copied_total") // presence is the contract; fig1 may or may not COW
	// Scheduler series exist from boot; their values depend on how the
	// two workers raced, so only presence is pinned.
	value("raderd_sweep_steals_total")
	value("raderd_sweep_handoffs_total")
	value("raderd_sweep_pages_pooled")

	vars := s.MetricsSnapshot()
	for _, name := range []string{
		"raderd_sweep_snapshot_hits_total",
		"raderd_sweep_snapshot_misses_total",
		"raderd_sweep_events_skipped_total",
		"raderd_sweep_pages_copied_total",
		"raderd_sweep_steals_total",
		"raderd_sweep_handoffs_total",
		"raderd_sweep_pages_pooled",
	} {
		if _, ok := vars[name]; !ok {
			t.Errorf("/debug/vars snapshot missing %s", name)
		}
	}
}
