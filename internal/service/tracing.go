package service

import (
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
)

// requestRingSize bounds the /debug/requests ring: enough to see the
// recent past of a busy daemon, small enough to never matter for RAM.
const requestRingSize = 128

// extractContext reads the request's traceparent header. A missing or
// malformed header returns ok=false and the server mints its own trace
// identity — propagation is an upgrade, never a requirement.
func (s *Server) extractContext(r *http.Request) (obs.SpanContext, bool) {
	tp := r.Header.Get(obs.TraceparentHeader)
	if tp == "" {
		return obs.SpanContext{}, false
	}
	ctx, err := obs.ParseTraceparent(tp)
	if err != nil {
		return obs.SpanContext{}, false
	}
	s.metrics.tracePropagated()
	return ctx, true
}

// serverTrace builds the per-request server-side trace: parented under
// the client's context when one arrived, freshly rooted otherwise.
func (s *Server) serverTrace(r *http.Request) *obs.Trace {
	tr := obs.NewTrace()
	if ctx, ok := s.extractContext(r); ok {
		// Same trace as the client, own span identity — the server is a
		// child participant, not an alias of the caller's span.
		tr.SetContext(ctx.Child())
	} else {
		tr.SetContext(obs.NewSpanContext())
	}
	return tr
}

// spanTable is the bounded in-memory layer of span-tree retention: the
// last N encoded SpanDocs keyed by the verdict-style key, FIFO-evicted.
// The disk store (when configured) is the durable layer underneath.
type spanTable struct {
	mu    sync.Mutex
	keep  int
	order []string
	docs  map[string][]byte
}

func newSpanTable(keep int) *spanTable {
	if keep < 1 {
		keep = 128
	}
	return &spanTable{keep: keep, docs: make(map[string][]byte)}
}

func (t *spanTable) put(key string, doc []byte) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.docs[key]; !ok {
		t.order = append(t.order, key)
		if len(t.order) > t.keep {
			delete(t.docs, t.order[0])
			t.order = t.order[1:]
		}
	}
	t.docs[key] = doc
}

func (t *spanTable) get(key string) ([]byte, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	doc, ok := t.docs[key]
	return doc, ok
}

// saveSpans records a finished server-side span tree under key: always in
// the in-memory table, durably when a store is configured. Best effort —
// observability data must never fail the request it describes.
func (s *Server) saveSpans(key string, tr *obs.Trace, log *slog.Logger) {
	doc, err := tr.EncodeSpans("raderd")
	if err != nil {
		log.Error("span tree encoding failed", "err", err, "key", key)
		return
	}
	s.spans.put(key, doc)
	if s.store != nil {
		err := s.store.PutSpans(&store.SpanTree{
			Key: key, Traceparent: tr.Context().Traceparent(), Doc: doc,
		})
		if err != nil {
			log.Error("span tree store write failed", "err", err, "key", key)
		}
	}
	s.metrics.spanTreePersisted()
}

// lookupSpans finds a span tree by key: RAM first, then the disk store.
func (s *Server) lookupSpans(key string) ([]byte, bool) {
	if doc, ok := s.spans.get(key); ok {
		return doc, true
	}
	if s.store != nil {
		if rec, ok, _ := s.store.GetSpans(key); ok {
			s.spans.put(key, rec.Doc)
			return rec.Doc, true
		}
	}
	return nil, false
}

// writeSpanDoc renders a stored span document to the client. format=spans
// returns the raw obs.SpanDoc JSON (what rader -profile-out merges);
// the default is Chrome trace-event JSON, loadable directly in Perfetto.
func writeSpanDoc(w http.ResponseWriter, r *http.Request, doc []byte) {
	if r.URL.Query().Get("format") == "spans" {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(doc)
		return
	}
	sd, err := obs.DecodeSpans(doc)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "decoding stored span tree: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	labels := map[string]string{}
	if sd.Traceparent != "" {
		labels["traceparent"] = sd.Traceparent
	}
	_ = obs.WriteChromeProcesses(w, []obs.Process{
		{PID: 1, Name: "raderd", Spans: sd.Records(), Labels: labels},
	})
}

// handleTraceTree serves GET /traces/{digest}/trace: the server-side span
// tree of the most recent analysis of that digest. Cache hits serve the
// tree recorded by the request that computed the verdict — the tree
// describes the computation, and a hit performed none.
func (s *Server) handleTraceTree(w http.ResponseWriter, r *http.Request, digest string) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET /traces/{digest}/trace")
		return
	}
	doc, ok := s.lookupSpans(digest)
	if !ok {
		writeErr(w, http.StatusNotFound,
			"no span tree recorded for digest %s (analyze it first)", digest)
		return
	}
	writeSpanDoc(w, r, doc)
}

// handleDebugRequests serves the x/net/trace-style recent-requests ring
// as JSON, newest first.
func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET /debug/requests")
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Capacity int                 `json:"capacity"`
		Requests []obs.RequestRecord `json:"requests"`
	}{Capacity: s.ring.Cap(), Requests: s.ring.Snapshot()})
}

// statusRecorder captures the response status for the request ring while
// passing Flush through — the SSE endpoint depends on the wrapped writer
// still implementing http.Flusher.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.status = code
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	return sr.ResponseWriter.Write(b)
}

func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// recordRequests wraps the service mux, recording every finished request
// into the ring. The ring itself is excluded — watching the watcher just
// fills it with /debug/requests entries.
func (s *Server) recordRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/debug/requests") {
			next.ServeHTTP(w, r)
			return
		}
		start := time.Now()
		sr := &statusRecorder{ResponseWriter: w}
		next.ServeHTTP(sr, r)
		status := sr.status
		if status == 0 {
			status = http.StatusOK
		}
		s.ring.Add(obs.RequestRecord{
			ID:          s.nextReqID("http"),
			Method:      r.Method,
			Path:        r.URL.Path,
			Status:      status,
			Start:       start,
			Duration:    time.Since(start),
			Traceparent: r.Header.Get(obs.TraceparentHeader),
		})
	})
}
