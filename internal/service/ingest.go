package service

import (
	"errors"
	"io"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/store"
)

// handleTraces is the resumable trace ingest endpoint:
//
//	PUT  /traces/{digest}?offset=N[&complete=1]  append one chunk at N
//	HEAD /traces/{digest}                        resume offset + status
//
// A client uploads a recorded CILKTRACE stream in chunks of any size; each
// chunk is fsynced before the new offset is acknowledged, so after any
// crash — client, server, or network — a HEAD tells the client exactly
// where to resume. The final chunk carries complete=1 (or the client sends
// a zero-length complete-only PUT), which verifies the SHA-256 of every
// received byte against {digest} plus the trace's own CRC footer, then
// atomically finalizes it. Chunks stream straight to disk: peak memory is
// independent of trace size, which is what lets multi-GB traces through a
// daemon with a small heap. The finalized trace is analyzed by reference
// with POST /analyze?digest={digest}.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	digest := strings.TrimPrefix(r.URL.Path, "/traces/")
	// GET /traces/{digest}/trace is the span-tree surface, not ingest:
	// it works without a store (the span table's RAM layer backs it).
	if d, ok := strings.CutSuffix(digest, "/trace"); ok {
		if !store.ValidDigest(d) {
			writeErr(w, http.StatusBadRequest,
				"trace path must name a lowercase hex SHA-256 digest, got %q", d)
			return
		}
		s.handleTraceTree(w, r, d)
		return
	}
	if s.store == nil {
		writeErr(w, http.StatusNotImplemented,
			"trace ingest needs a store: start raderd with -store-dir")
		return
	}
	if !store.ValidDigest(digest) {
		writeErr(w, http.StatusBadRequest,
			"trace path must name a lowercase hex SHA-256 digest, got %q", digest)
		return
	}
	switch r.Method {
	case http.MethodHead:
		s.traceStatus(w, digest, true)
	case http.MethodGet:
		s.traceStatus(w, digest, false)
	case http.MethodPut:
		if s.draining.Load() {
			s.refuseDraining(w)
			return
		}
		s.tracePut(w, r, digest)
	default:
		writeErr(w, http.StatusMethodNotAllowed, "PUT or HEAD /traces/{digest}")
	}
}

// traceStatus answers HEAD (headers only) and GET (headers + JSON body)
// with the upload's durable state.
func (s *Server) traceStatus(w http.ResponseWriter, digest string, headOnly bool) {
	resp := TraceStatusResponse{Digest: digest}
	if s.store.HasTrace(digest) {
		resp.Complete = true
	} else {
		resp.Offset = s.store.PartialOffset(digest)
	}
	w.Header().Set("Upload-Offset", strconv.FormatInt(resp.Offset, 10))
	w.Header().Set("Upload-Complete", strconv.FormatBool(resp.Complete))
	if headOnly {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// tracePut appends one chunk (and optionally commits). Error mapping:
//
//	409 offset mismatch  — Upload-Offset header carries the truth to resume
//	413 chunk too large  — per-chunk MaxUploadBytes bound
//	422 commit rejected  — content hashes wrong or fails trace verification
func (s *Server) tracePut(w http.ResponseWriter, r *http.Request, digest string) {
	q := r.URL.Query()
	offset := int64(0)
	if o := q.Get("offset"); o != "" {
		v, err := strconv.ParseInt(o, 10, 64)
		if err != nil || v < 0 {
			writeErr(w, http.StatusBadRequest, "bad offset %q", o)
			return
		}
		offset = v
	}
	complete := q.Get("complete") == "1" || q.Get("complete") == "true"
	log := s.log.With("req", s.nextReqID("ingest"), "digest", digest)

	if s.store.HasTrace(digest) {
		// Content-addressed idempotence: the trace already exists, so any
		// re-upload — whatever its offset — is a no-op success.
		_, _ = io.Copy(io.Discard, http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes))
		log.Info("ingest chunk for already-stored trace ignored")
		w.Header().Set("Upload-Offset", "0")
		writeJSON(w, http.StatusOK, TraceStatusResponse{Digest: digest, Complete: true})
		return
	}

	// Each chunk is bounded by MaxUploadBytes, but the trace itself is
	// not: the whole point of chunking is that total size outruns any
	// single request bound without outrunning RAM.
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes)
	newOffset, err := s.store.AppendPartial(digest, offset, body)
	if err != nil {
		var oe *store.OffsetError
		if errors.As(err, &oe) {
			w.Header().Set("Upload-Offset", strconv.FormatInt(oe.Want, 10))
			log.Warn("ingest offset conflict", "want", oe.Want, "got", oe.Got)
			writeErr(w, http.StatusConflict,
				"offset mismatch: server has %d bytes, client claimed %d; resume from Upload-Offset", oe.Want, oe.Got)
			return
		}
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			log.Warn("ingest chunk too large", "limit", s.cfg.MaxUploadBytes)
			writeErr(w, http.StatusRequestEntityTooLarge,
				"chunk exceeds %d bytes; split it and resume from Upload-Offset", s.cfg.MaxUploadBytes)
			return
		}
		log.Error("ingest append failed", "err", err)
		writeErr(w, http.StatusInternalServerError, "appending chunk: %v", err)
		return
	}
	s.metrics.ingested(newOffset - offset)
	w.Header().Set("Upload-Offset", strconv.FormatInt(newOffset, 10))

	if !complete {
		log.Info("ingest chunk accepted", "offset", offset, "newOffset", newOffset)
		writeJSON(w, http.StatusAccepted, TraceStatusResponse{Digest: digest, Offset: newOffset})
		return
	}
	if err := s.store.CommitPartial(digest); err != nil {
		// The upload was complete but wrong: digest mismatch or a trace
		// that fails integrity verification. The partial is quarantined
		// server-side; the client must restart from offset 0.
		log.Warn("ingest commit rejected", "err", err)
		w.Header().Set("Upload-Offset", "0")
		writeErr(w, http.StatusUnprocessableEntity, "finalizing trace: %v", err)
		return
	}
	log.Info("ingest committed", "bytes", newOffset)
	writeJSON(w, http.StatusCreated, TraceStatusResponse{Digest: digest, Offset: newOffset, Complete: true})
}
