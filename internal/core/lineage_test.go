package core

import "testing"

func TestLineagePath(t *testing.T) {
	var l Lineage
	l.Add(0, 0, "main", NoParent)
	l.Add(1, 1, "f", 0)
	l.Add(2, 2, "g", 1)
	if got := l.Path(2); got != "main>f>g" {
		t.Fatalf("path = %q", got)
	}
	if got := l.Path(0); got != "main" {
		t.Fatalf("root path = %q", got)
	}
	if l.Frame(2) != 2 || l.Label(1) != "f" {
		t.Fatal("accessors")
	}
	if l.Frame(-1) != -1 || l.Label(99) != "?" {
		t.Fatal("out-of-range accessors must be safe")
	}
}

func TestLineageTruncatesDeepPaths(t *testing.T) {
	var l Lineage
	l.Add(0, 0, "root", NoParent)
	for i := int32(1); i <= 40; i++ {
		l.Add(i, 0, "n", i-1)
	}
	p := l.Path(40)
	if len(p) == 0 || p[0:1] == ">" {
		t.Fatalf("path = %q", p)
	}
	if want := "…"; !contains(p, want) {
		t.Fatalf("deep path must be truncated: %q", p)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
