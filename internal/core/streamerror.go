package core

import (
	"repro/internal/cilk"
	"repro/internal/streamerr"
)

// StreamError is the single structured error (and contract-panic value)
// type of the analysis pipeline. It is defined in internal/streamerr —
// below internal/cilk, so the executor can use it too — and re-exported
// here because detector code programs against package core.
type StreamError = streamerr.Error

// StreamErrorKind classifies a StreamError.
type StreamErrorKind = streamerr.Kind

// The stream-fault classes, re-exported from internal/streamerr.
const (
	StreamOrder     = streamerr.KindOrder
	StreamState     = streamerr.KindState
	StreamMalformed = streamerr.KindMalformed
	StreamTruncated = streamerr.KindTruncated
	StreamCorrupt   = streamerr.KindCorrupt
	StreamConsumer  = streamerr.KindConsumer
	StreamBudget    = streamerr.KindBudget
	StreamDeadline  = streamerr.KindDeadline
)

// Violatef builds the *StreamError a detector panics with on an event
// contract violation. The event index is unknown at the detection site
// (detectors do not count events); the recovery point fills it in.
func Violatef(layer string, kind StreamErrorKind, frame cilk.FrameID, format string, a ...any) *StreamError {
	return streamerr.Errorf(layer, kind, format, a...).WithFrame(int64(frame))
}
