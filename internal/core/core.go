// Package core defines the shared vocabulary of the race detectors: race
// kinds, race records, the report accumulator, and the Detector interface
// that the Peer-Set, SP-bags and SP+ implementations satisfy. The paper's
// primary contribution — the two detection algorithms — lives in
// internal/peerset and internal/spplus; this package is their common
// foundation and the surface the rader driver programs against.
package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cilk"
	"repro/internal/mem"
	"repro/internal/obs"
)

// Kind classifies a race (§1 identifies exactly these two kinds for
// programs that use reducers).
type Kind int

const (
	// ViewRead is a view-read race: two reducer-reads at strands with
	// different peer sets (§3).
	ViewRead Kind = iota
	// Determinacy is a determinacy race: two accesses to one location,
	// at least one a write, that are logically parallel — and, when the
	// later access is view-aware, operate on parallel views (§5).
	Determinacy
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case ViewRead:
		return "view-read race"
	case Determinacy:
		return "determinacy race"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// AccessOp names what each racing side did.
type AccessOp int

// Access operations.
const (
	OpRead AccessOp = iota
	OpWrite
	OpReducerRead
)

// String implements fmt.Stringer.
func (op AccessOp) String() string {
	switch op {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpReducerRead:
		return "reducer-read"
	default:
		return fmt.Sprintf("AccessOp(%d)", int(op))
	}
}

// Access records one side of a race.
type Access struct {
	Frame     cilk.FrameID
	Label     string
	Path      string // spawn path "main>f>g", when the detector tracks lineage
	Op        AccessOp
	ViewAware bool
	ViewOp    cilk.ViewOp // meaningful only when ViewAware
	VID       cilk.ViewID // view context of the access (SP+ only)
}

// String implements fmt.Stringer.
func (a Access) String() string {
	where := fmt.Sprintf("%s#%d", a.Label, a.Frame)
	if a.Path != "" {
		where = fmt.Sprintf("%s#%d [%s]", a.Label, a.Frame, a.Path)
	}
	s := fmt.Sprintf("%s by %s", a.Op, where)
	if a.ViewAware {
		s += fmt.Sprintf(" (view-aware %s, view %d)", a.ViewOp, a.VID)
	}
	return s
}

// Provenance explains *why* a detector reported a race: which SP relation
// fired, and where in the event stream the two sides sat. Event ordinals
// are detector-relative — the 1-based index among the events that
// detector's algorithm consumes (Peer-Set, which ignores memory traffic,
// numbers only control and reducer events) — so two detectors replaying
// one trace may assign different ordinals to the same logical access.
// FirstEvent is 0 when the detector's shadow state no longer pins the
// earlier access's position.
type Provenance struct {
	// FirstEvent is the ordinal of the earlier access (0 = unknown).
	FirstEvent int64
	// SecondEvent is the ordinal of the access at which the race fired.
	SecondEvent int64
	// Relation names the SP relation (or label rule) that triggered the
	// report: "reader in P-bag", "writer on parallel view",
	// "spawn-count mismatch", "unordered labels", ...
	Relation string
}

// Race is one detected race.
type Race struct {
	Kind    Kind
	Addr    mem.Addr // racing location (Determinacy only)
	Reducer string   // racing reducer (ViewRead only)
	First   Access   // earlier access in serial order
	Second  Access   // access at which the race was detected
	Prov    Provenance
}

// String implements fmt.Stringer.
func (r Race) String() string {
	switch r.Kind {
	case ViewRead:
		return fmt.Sprintf("%v on reducer %q: %v vs %v", r.Kind, r.Reducer, r.First, r.Second)
	default:
		return fmt.Sprintf("%v at %#x: %v vs %v", r.Kind, uint64(r.Addr), r.First, r.Second)
	}
}

// raceKey dedups repeated reports of the same logical race. Detectors fire
// once per offending access, which in loops can repeat; the report keeps
// one representative per (kind, location, frame pair) and counts the rest.
type raceKey struct {
	kind          Kind
	addr          mem.Addr
	reducer       string
	first, second cilk.FrameID
}

// Report accumulates races from one detector run.
type Report struct {
	// Limit bounds the number of distinct races retained (0 = default 1024).
	Limit int

	races []Race
	seen  map[raceKey]int
	total int
}

// Add records a race.
func (rp *Report) Add(r Race) {
	rp.total++
	if rp.seen == nil {
		rp.seen = make(map[raceKey]int)
	}
	k := raceKey{kind: r.Kind, addr: r.Addr, reducer: r.Reducer, first: r.First.Frame, second: r.Second.Frame}
	if _, dup := rp.seen[k]; dup {
		rp.seen[k]++
		return
	}
	rp.seen[k] = 1
	limit := rp.Limit
	if limit == 0 {
		limit = 1024
	}
	if len(rp.races) < limit {
		rp.races = append(rp.races, r)
	}
}

// Races returns the retained distinct races in detection order.
func (rp *Report) Races() []Race { return rp.races }

// Clone returns an independent copy of the report; adding to either side
// afterward leaves the other unchanged.
func (rp *Report) Clone() *Report {
	out := &Report{Limit: rp.Limit, total: rp.total}
	out.races = append(make([]Race, 0, len(rp.races)), rp.races...)
	if rp.seen != nil {
		out.seen = make(map[raceKey]int, len(rp.seen))
		for k, v := range rp.seen {
			out.seen[k] = v
		}
	}
	return out
}

// CopyFrom makes rp an independent copy of src, reusing rp's allocations
// where possible.
func (rp *Report) CopyFrom(src *Report) {
	rp.Limit = src.Limit
	rp.total = src.total
	rp.races = append(rp.races[:0], src.races...)
	if rp.seen != nil {
		clear(rp.seen)
	}
	if src.seen != nil {
		if rp.seen == nil {
			rp.seen = make(map[raceKey]int, len(src.seen))
		}
		for k, v := range src.seen {
			rp.seen[k] = v
		}
	}
}

// Reset empties the report, keeping allocated capacity for reuse.
func (rp *Report) Reset() {
	rp.races = rp.races[:0]
	clear(rp.seen)
	rp.total = 0
}

// Total returns the total number of race reports, counting duplicates.
func (rp *Report) Total() int { return rp.total }

// Distinct returns the number of distinct races seen.
func (rp *Report) Distinct() int { return len(rp.seen) }

// Empty reports whether no race was detected.
func (rp *Report) Empty() bool { return rp.total == 0 }

// HasKind reports whether any race of kind k was detected.
func (rp *Report) HasKind(k Kind) bool {
	for _, r := range rp.races {
		if r.Kind == k {
			return true
		}
	}
	return false
}

// Summary renders a human-readable digest.
func (rp *Report) Summary() string {
	if rp.Empty() {
		return "no races detected"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d distinct race(s), %d report(s) total:\n", rp.Distinct(), rp.Total())
	lines := make([]string, 0, len(rp.races))
	for _, r := range rp.races {
		lines = append(lines, "  "+r.String())
	}
	sort.Strings(lines)
	b.WriteString(strings.Join(lines, "\n"))
	return b.String()
}

// Detector is a race-detection algorithm driven by the cilk event stream.
type Detector interface {
	cilk.Hooks
	// Name identifies the algorithm ("peer-set", "sp-bags", "sp+").
	Name() string
	// Report returns the races accumulated so far.
	Report() *Report
}

// Stats is the bookkeeping account of a disjoint-set-based detector: the
// number of Find and Union operations performed (each amortized O(α)) and
// the number of set elements created. The paper's Theorem 1 and Theorem 5
// bounds are, concretely, Finds+Unions = O(events) with the α factor
// hidden in each operation.
type Stats struct {
	Elems  int
	Finds  uint64
	Unions uint64
}

// StatsProvider is implemented by detectors that expose their accounting.
type StatsProvider interface {
	Stats() Stats
}

// EventCountsProvider is implemented by detectors that account for the
// event classes they consumed (obs.EventCounts), the measurement substrate
// behind the Figure 7/8 per-class overhead breakdown.
type EventCountsProvider interface {
	EventCounts() obs.EventCounts
}
