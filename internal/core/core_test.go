package core

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/cilk"
)

func TestReportDedup(t *testing.T) {
	var rp Report
	r := Race{Kind: Determinacy, Addr: 42, First: Access{Frame: 1}, Second: Access{Frame: 2}}
	for i := 0; i < 5; i++ {
		rp.Add(r)
	}
	if rp.Total() != 5 {
		t.Fatalf("total = %d, want 5", rp.Total())
	}
	if rp.Distinct() != 1 {
		t.Fatalf("distinct = %d, want 1", rp.Distinct())
	}
	if len(rp.Races()) != 1 {
		t.Fatalf("retained = %d, want 1", len(rp.Races()))
	}
}

func TestReportDistinguishesKeys(t *testing.T) {
	var rp Report
	rp.Add(Race{Kind: Determinacy, Addr: 1, First: Access{Frame: 1}, Second: Access{Frame: 2}})
	rp.Add(Race{Kind: Determinacy, Addr: 2, First: Access{Frame: 1}, Second: Access{Frame: 2}})
	rp.Add(Race{Kind: ViewRead, Reducer: "sum", First: Access{Frame: 1}, Second: Access{Frame: 2}})
	rp.Add(Race{Kind: ViewRead, Reducer: "list", First: Access{Frame: 1}, Second: Access{Frame: 2}})
	rp.Add(Race{Kind: Determinacy, Addr: 1, First: Access{Frame: 3}, Second: Access{Frame: 2}})
	if rp.Distinct() != 5 {
		t.Fatalf("distinct = %d, want 5", rp.Distinct())
	}
}

func TestReportLimit(t *testing.T) {
	rp := Report{Limit: 2}
	for i := 0; i < 10; i++ {
		rp.Add(Race{Kind: Determinacy, Addr: 100, First: Access{Frame: 1}, Second: Access{Frame: cilk.FrameID(2 + i)}})
	}
	if got := len(rp.Races()); got != 2 {
		t.Fatalf("retained = %d, want 2", got)
	}
	if rp.Distinct() != 10 {
		t.Fatalf("distinct = %d, want 10 (limit caps retention, not counting)", rp.Distinct())
	}
}

func TestReportEmptyAndSummary(t *testing.T) {
	var rp Report
	if !rp.Empty() {
		t.Fatal("fresh report must be empty")
	}
	if rp.Summary() != "no races detected" {
		t.Fatalf("summary = %q", rp.Summary())
	}
	rp.Add(Race{Kind: ViewRead, Reducer: "sum",
		First:  Access{Frame: 1, Label: "main", Op: OpReducerRead},
		Second: Access{Frame: 2, Label: "f", Op: OpReducerRead}})
	s := rp.Summary()
	if !strings.Contains(s, "view-read race") || !strings.Contains(s, `"sum"`) {
		t.Fatalf("summary missing details: %q", s)
	}
	if !rp.HasKind(ViewRead) || rp.HasKind(Determinacy) {
		t.Fatal("HasKind wrong")
	}
}

func TestStringers(t *testing.T) {
	for _, tc := range []struct {
		got, want string
	}{
		{ViewRead.String(), "view-read race"},
		{Determinacy.String(), "determinacy race"},
		{OpRead.String(), "read"},
		{OpWrite.String(), "write"},
		{OpReducerRead.String(), "reducer-read"},
	} {
		if tc.got != tc.want {
			t.Errorf("got %q, want %q", tc.got, tc.want)
		}
	}
	a := Access{Frame: 3, Label: "f", Op: OpWrite, ViewAware: true, VID: 7}
	if !strings.Contains(a.String(), "view-aware") {
		t.Fatalf("access string missing view-aware: %q", a)
	}
}

func TestReportJSON(t *testing.T) {
	var rp Report
	rp.Add(Race{Kind: Determinacy, Addr: 3,
		First:  Access{Frame: 1, Label: "r", Path: "main>r", Op: OpRead},
		Second: Access{Frame: 2, Label: "w", Op: OpWrite, ViewAware: true, ViewOp: cilk.OpReduce, VID: 4}})
	rp.Add(Race{Kind: ViewRead, Reducer: "sum",
		First:  Access{Frame: 1, Label: "a", Op: OpReducerRead},
		Second: Access{Frame: 2, Label: "b", Op: OpReducerRead}})
	b, err := json.Marshal(&rp)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Races []struct {
			Kind    string `json:"kind"`
			Addr    uint64 `json:"addr"`
			Reducer string `json:"reducer"`
			Second  struct {
				ViewAware bool   `json:"viewAware"`
				ViewOp    string `json:"viewOp"`
				VID       int64  `json:"vid"`
			} `json:"second"`
		} `json:"races"`
		Distinct int `json:"distinct"`
		Total    int `json:"total"`
	}
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Distinct != 2 || decoded.Total != 2 || len(decoded.Races) != 2 {
		t.Fatalf("counts wrong: %+v", decoded)
	}
	if decoded.Races[0].Addr != 3 || !decoded.Races[0].Second.ViewAware ||
		decoded.Races[0].Second.ViewOp != "Reduce" || decoded.Races[0].Second.VID != 4 {
		t.Fatalf("determinacy race JSON wrong: %s", b)
	}
	if decoded.Races[1].Reducer != "sum" || decoded.Races[1].Addr != 0 {
		t.Fatalf("view-read race JSON wrong: %s", b)
	}
	// An empty report still renders a valid document.
	var empty Report
	b2, err := json.Marshal(&empty)
	if err != nil || string(b2) != `{"races":[],"distinct":0,"total":0}` {
		t.Fatalf("empty report JSON = %s (%v)", b2, err)
	}
}
