package core

import (
	"strings"

	"repro/internal/cilk"
)

// Lineage records, for each detector element (function instantiation or
// reduce invocation), its frame, label and parent element, so a race
// report can reconstruct the spawn path of each participant on demand —
// "main>update_list>insert" tells the user where the racing strand came
// from without any cost on the hot path.
type Lineage struct {
	meta []lineageEntry
}

type lineageEntry struct {
	frame  cilk.FrameID
	label  string
	parent int32
}

// NoParent marks a root element.
const NoParent int32 = -1

// CopyFrom makes l an independent copy of src, reusing l's capacity.
func (l *Lineage) CopyFrom(src *Lineage) {
	l.meta = append(l.meta[:0], src.meta...)
}

// Reset empties the lineage, keeping allocated capacity for reuse.
func (l *Lineage) Reset() { l.meta = l.meta[:0] }

// Add registers element id (dense, append-ordered) with its parent.
func (l *Lineage) Add(id int32, frame cilk.FrameID, label string, parent int32) {
	for int(id) >= len(l.meta) {
		l.meta = append(l.meta, lineageEntry{parent: NoParent})
	}
	l.meta[id] = lineageEntry{frame: frame, label: label, parent: parent}
}

// Frame returns the frame of element id.
func (l *Lineage) Frame(id int32) cilk.FrameID {
	if int(id) >= len(l.meta) || id < 0 {
		return -1
	}
	return l.meta[id].frame
}

// Label returns the label of element id.
func (l *Lineage) Label(id int32) string {
	if int(id) >= len(l.meta) || id < 0 {
		return "?"
	}
	return l.meta[id].label
}

// Path reconstructs the spawn path of element id, innermost last,
// truncated to the last maxDepth segments (0 means 16).
func (l *Lineage) Path(id int32) string {
	const defaultDepth = 16
	var segs []string
	for cur := id; cur != NoParent && int(cur) < len(l.meta); cur = l.meta[cur].parent {
		segs = append(segs, l.meta[cur].label)
		if len(segs) > defaultDepth {
			segs = append(segs, "…")
			break
		}
	}
	// reverse
	for i, j := 0, len(segs)-1; i < j; i, j = i+1, j-1 {
		segs[i], segs[j] = segs[j], segs[i]
	}
	return strings.Join(segs, ">")
}
