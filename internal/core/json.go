package core

import "encoding/json"

// reportJSON is the machine-readable form of a Report, for CI integration
// (rader -json).
type reportJSON struct {
	Races    []raceJSON `json:"races"`
	Distinct int        `json:"distinct"`
	Total    int        `json:"total"`
}

type raceJSON struct {
	Kind       string     `json:"kind"`
	Addr       uint64     `json:"addr,omitempty"`
	Reducer    string     `json:"reducer,omitempty"`
	First      accessJSON `json:"first"`
	Second     accessJSON `json:"second"`
	Provenance *provJSON  `json:"provenance,omitempty"`
}

type provJSON struct {
	FirstEvent  int64  `json:"firstEvent,omitempty"`
	SecondEvent int64  `json:"secondEvent,omitempty"`
	Relation    string `json:"relation"`
}

type accessJSON struct {
	Frame     int32  `json:"frame"`
	Label     string `json:"label"`
	Path      string `json:"path,omitempty"`
	Op        string `json:"op"`
	ViewAware bool   `json:"viewAware,omitempty"`
	ViewOp    string `json:"viewOp,omitempty"`
	VID       int64  `json:"vid,omitempty"`
}

func toAccessJSON(a Access) accessJSON {
	out := accessJSON{
		Frame: int32(a.Frame), Label: a.Label, Path: a.Path,
		Op: a.Op.String(), ViewAware: a.ViewAware,
	}
	if a.ViewAware {
		out.ViewOp = a.ViewOp.String()
		out.VID = int64(a.VID)
	}
	return out
}

// MarshalJSON renders the report's retained races plus counters.
func (rp *Report) MarshalJSON() ([]byte, error) {
	out := reportJSON{
		Races:    []raceJSON{},
		Distinct: rp.Distinct(),
		Total:    rp.Total(),
	}
	for _, r := range rp.Races() {
		rj := raceJSON{
			Kind:    r.Kind.String(),
			Reducer: r.Reducer,
			First:   toAccessJSON(r.First),
			Second:  toAccessJSON(r.Second),
		}
		if r.Prov != (Provenance{}) {
			rj.Provenance = &provJSON{
				FirstEvent:  r.Prov.FirstEvent,
				SecondEvent: r.Prov.SecondEvent,
				Relation:    r.Prov.Relation,
			}
		}
		if r.Kind == Determinacy {
			rj.Addr = uint64(r.Addr)
		}
		out.Races = append(out.Races, rj)
	}
	return json.Marshal(out)
}
