package report

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cilk"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/depa"
	"repro/internal/mem"
	"repro/internal/rader"
	"repro/internal/spbags"
)

var update = flag.Bool("update", false, "rewrite golden files")

// golden compares got against testdata/name, rewriting under -update.
// These files pin the wire schema: a diff here means the JSON contract
// with remote clients changed and Schema must be bumped.
func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(got, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(bytes.TrimRight(want, "\n"), got) {
		t.Errorf("schema drift against %s:\ngot:  %s\nwant: %s", path, got, want)
	}
}

// fixedReport builds a report with one race of each kind, fully populated,
// so the golden file exercises every field and omission rule.
func fixedReport() *core.Report {
	rp := &core.Report{}
	rp.Add(core.Race{
		Kind:    core.ViewRead,
		Reducer: "sum",
		First:   core.Access{Frame: 3, Label: "u", Path: "main>u", Op: core.OpReducerRead},
		Second:  core.Access{Frame: 1, Label: "main", Path: "main", Op: core.OpReducerRead},
		Prov:    core.Provenance{FirstEvent: 5, SecondEvent: 9, Relation: "reader in P-bag"},
	})
	rp.Add(core.Race{
		Kind:   core.Determinacy,
		Addr:   0x2a,
		First:  core.Access{Frame: 4, Label: "w", Op: core.OpWrite},
		Second: core.Access{Frame: 1, Label: "main", Op: core.OpRead, ViewAware: true, ViewOp: cilk.OpUpdate, VID: 7},
		// FirstEvent omitted: the golden also pins the unknown-ordinal rule.
		Prov: core.Provenance{SecondEvent: 12, Relation: "writer on parallel view"},
	})
	// A duplicate report of the first race bumps Total past Distinct.
	rp.Add(core.Race{
		Kind:    core.ViewRead,
		Reducer: "sum",
		First:   core.Access{Frame: 3, Label: "u", Path: "main>u", Op: core.OpReducerRead},
		Second:  core.Access{Frame: 1, Label: "main", Path: "main", Op: core.OpReducerRead},
	})
	return rp
}

func TestRunReportGolden(t *testing.T) {
	doc := FromCore("sp+", "all", 123, fixedReport())
	b, err := doc.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "run_report.golden", b)
}

func TestEmptyReportGolden(t *testing.T) {
	doc := FromCore("none", "", 0, nil)
	b, err := doc.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "empty_report.golden", b)
}

// The sweep document is pinned against a real corpus sweep so it also
// locks in the canonical ordering rader.Sweep guarantees.
func TestSweepReportGolden(t *testing.T) {
	var entry corpus.Entry
	for _, e := range corpus.All() {
		if e.Name == "figure1-shallow-copy" {
			entry = e
			break
		}
	}
	cr := rader.Sweep(func() func(*cilk.Ctx) {
		return entry.Build(mem.NewAllocator())
	}, rader.SweepOptions{Workers: 4})
	b, err := FromCoverage(cr).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "sweep_report.golden", b)
}

// The all-detectors document nests one fully-populated sub-report per
// detector; the golden file pins its field order and omission rules.
func TestAllReportGolden(t *testing.T) {
	out := &rader.Outcome{
		Detector: rader.All,
		All: []rader.DetectorOutcome{
			{Detector: rader.PeerSet, Report: fixedReport()},
			{Detector: rader.SPBags, Report: &core.Report{}},
			{Detector: rader.SPPlus, Report: fixedReport()},
		},
	}
	b, err := FromAllOutcome(out, "all").Marshal()
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "all_report.golden", b)
}

// The parallel stats section (schema 4) gets its own golden pinning field
// order and the rate's float rendering; the serial goldens above pin the
// omission rule (no "parallel" key).
func TestParallelReportGolden(t *testing.T) {
	doc := FromCore("depa", "", 123, fixedReport())
	doc.Parallel = ParallelFrom(depa.ParallelStats{
		Workers: 8, ShardMerges: 9, FastPathHits: 90, Accesses: 120,
	})
	b, err := doc.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "parallel_report.golden", b)
}

// FromDetector attaches the parallel section exactly when the detector
// provides it.
func TestFromDetectorAttachesParallel(t *testing.T) {
	det := depa.New()
	det.Shards = 2
	cilk.Run(func(c *cilk.Ctx) { c.Store(1); c.Store(1) }, cilk.Config{Hooks: det})
	doc := FromDetector("depa", "", 0, det)
	if doc.Parallel == nil {
		t.Fatal("depa report is missing the parallel section")
	}
	if doc.Parallel.Workers != 2 || doc.Parallel.Accesses != 2 || doc.Parallel.FastPathHits != 1 {
		t.Fatalf("parallel section = %+v, want workers=2 accesses=2 fastPathHits=1", doc.Parallel)
	}
	serial := FromDetector("sp-bags", "", 0, spbags.New())
	if serial.Parallel != nil {
		t.Fatal("serial detector report grew a parallel section")
	}
}

// Marshaling the same value twice must be byte-identical — the property
// the digest-addressed cache and the remote/local diff test rely on.
func TestMarshalDeterministic(t *testing.T) {
	doc := FromCore("sp+", "all", 99, fixedReport())
	a, _ := doc.Marshal()
	b, _ := doc.Marshal()
	if !bytes.Equal(a, b) {
		t.Fatal("marshaling is not deterministic")
	}
}
