// Package report defines the machine-readable form of a race-analysis
// verdict — the one JSON schema shared by the rader CLI's -json output and
// the raderd service's responses. Keeping the encoding in one place means
// a verdict computed locally and one computed remotely for the same trace
// are byte-for-byte identical, which is what the end-to-end tests (and any
// CI pipeline diffing verdicts) rely on.
//
// The schema is versioned: Schema names the current version and every
// document carries it. Changing any field name, type, ordering, or
// omission rule is a schema change — bump Schema and regenerate the golden
// files in testdata/, which exist precisely to make accidental drift a
// test failure.
//
// Encoding is deterministic by construction: the types contain only
// structs and slices (no maps), so encoding/json renders equal values to
// equal bytes.
package report

import (
	"encoding/json"
	"fmt"

	"repro/internal/core"
	"repro/internal/depa"
	"repro/internal/rader"
)

// Schema is the current schema version, carried by every document.
// Version 2 added the per-race provenance section; version 3 added the
// sweep document's execution-stats section; version 4 added the parallel
// detector's stats section (workers, shard merges, fast-path hit rate);
// version 5 added the sweep document's sampling section (family size,
// coverage fraction, confidence note).
const Schema = 5

// Access is one side of a race.
type Access struct {
	Frame     int64  `json:"frame"`
	Label     string `json:"label"`
	Path      string `json:"path,omitempty"`
	Op        string `json:"op"`
	ViewAware bool   `json:"viewAware,omitempty"`
	ViewOp    string `json:"viewOp,omitempty"`
	VID       int64  `json:"vid,omitempty"`
}

// Provenance explains why the detector reported the race: the SP relation
// (or label rule) that fired and the detector-relative event ordinals of
// the two sides (see core.Provenance for the ordinal contract).
type Provenance struct {
	FirstEvent  int64  `json:"firstEvent,omitempty"`
	SecondEvent int64  `json:"secondEvent,omitempty"`
	Relation    string `json:"relation"`
}

// Race is one detected race.
type Race struct {
	Kind       string      `json:"kind"`
	Addr       uint64      `json:"addr,omitempty"`
	Reducer    string      `json:"reducer,omitempty"`
	First      Access      `json:"first"`
	Second     Access      `json:"second"`
	Provenance *Provenance `json:"provenance,omitempty"`
}

// String renders a one-line human summary, used by the remote client's
// plain-text output.
func (r Race) String() string {
	if r.Reducer != "" {
		return fmt.Sprintf("%s on reducer %q: %s#%d vs %s#%d",
			r.Kind, r.Reducer, r.First.Label, r.First.Frame, r.Second.Label, r.Second.Frame)
	}
	return fmt.Sprintf("%s at %#x: %s#%d vs %s#%d",
		r.Kind, r.Addr, r.First.Label, r.First.Frame, r.Second.Label, r.Second.Frame)
}

// Parallel is the parallel detector's execution accounting: how many
// workers (or shards) the detection ran on, how many shard merges the
// run performed, and how often the strand-local coalescing fast path
// absorbed an access without logging a fresh entry. Present only when
// the analysing detector is depa; verdict fields are unaffected by it —
// two runs of the same trace at different shard counts differ only here.
type Parallel struct {
	Workers      int     `json:"workers"`
	ShardMerges  int64   `json:"shardMerges"`
	FastPathHits int64   `json:"fastPathHits"`
	Accesses     int64   `json:"accesses"`
	FastPathRate float64 `json:"fastPathRate"`
}

// ParallelFrom mirrors the detector's stats into the document section.
func ParallelFrom(ps depa.ParallelStats) *Parallel {
	return &Parallel{
		Workers:      ps.Workers,
		ShardMerges:  ps.ShardMerges,
		FastPathHits: ps.FastPathHits,
		Accesses:     ps.Accesses,
		FastPathRate: ps.FastPathRate(),
	}
}

// Report is the verdict document for one analysed run or replay.
type Report struct {
	Schema   int    `json:"schema"`
	Detector string `json:"detector"`
	// Spec is the steal specification of a live run; empty for a trace
	// replay, where the schedule is baked into the stream.
	Spec string `json:"spec,omitempty"`
	// Events is the number of events replayed; zero for live runs.
	Events   int64  `json:"events,omitempty"`
	Races    []Race `json:"races"`
	Distinct int    `json:"distinct"`
	Total    int    `json:"total"`
	Clean    bool   `json:"clean"`
	// Parallel carries the depa detector's parallel-machinery stats;
	// absent for every serial detector.
	Parallel *Parallel `json:"parallel,omitempty"`
}

// Marshal renders the document. Encoding equal values always yields equal
// bytes, so verdicts are diffable across machines.
func (r *Report) Marshal() ([]byte, error) { return json.Marshal(r) }

func fromAccess(a core.Access) Access {
	out := Access{
		Frame: int64(a.Frame), Label: a.Label, Path: a.Path,
		Op: a.Op.String(), ViewAware: a.ViewAware,
	}
	if a.ViewAware {
		out.ViewOp = a.ViewOp.String()
		out.VID = int64(a.VID)
	}
	return out
}

func fromRace(r core.Race) Race {
	out := Race{
		Kind:    r.Kind.String(),
		Reducer: r.Reducer,
		First:   fromAccess(r.First),
		Second:  fromAccess(r.Second),
	}
	if r.Kind == core.Determinacy {
		out.Addr = uint64(r.Addr)
	}
	if r.Prov != (core.Provenance{}) {
		out.Provenance = &Provenance{
			FirstEvent:  r.Prov.FirstEvent,
			SecondEvent: r.Prov.SecondEvent,
			Relation:    r.Prov.Relation,
		}
	}
	return out
}

// FromCore builds a Report from a raw detector report. detector and spec
// label the configuration; events is the replayed-event count (0 for live
// runs). A nil rp (detector "none"/"empty") yields an empty clean report.
func FromCore(detector, spec string, events int64, rp *core.Report) *Report {
	out := &Report{
		Schema:   Schema,
		Detector: detector,
		Spec:     spec,
		Events:   events,
		Races:    []Race{},
		Clean:    true,
	}
	if rp == nil {
		return out
	}
	for _, r := range rp.Races() {
		out.Races = append(out.Races, fromRace(r))
	}
	out.Distinct = rp.Distinct()
	out.Total = rp.Total()
	out.Clean = rp.Empty()
	return out
}

// FromDetector builds a Report from one detector that consumed an event
// stream, attaching the parallel stats section when the detector provides
// it (the verdict fields come from FromCore unchanged).
func FromDetector(detector, spec string, events int64, det core.Detector) *Report {
	out := FromCore(detector, spec, events, det.Report())
	if pp, ok := det.(depa.ParallelStatsProvider); ok {
		out.Parallel = ParallelFrom(pp.ParallelStats())
	}
	return out
}

// FromOutcome builds a Report from one rader.Run outcome.
func FromOutcome(out *rader.Outcome, spec string) *Report {
	rep := FromCore(string(out.Detector), spec, 0, out.Report)
	if out.Parallel != nil {
		rep.Parallel = ParallelFrom(*out.Parallel)
	}
	return rep
}

// Multi is the verdict document for a single-pass all-detectors run or
// replay: one sub-Report per detector, in rader.AllDetectors order. Each
// sub-report is built by FromCore exactly as a standalone run of that
// detector would build it, so a per-detector document extracted from a
// Multi is byte-identical to the document a single-detector request
// produces — the property the service's fan-out cache relies on.
type Multi struct {
	Schema   int       `json:"schema"`
	Detector string    `json:"detector"` // always "all"
	Spec     string    `json:"spec,omitempty"`
	Events   int64     `json:"events,omitempty"`
	Reports  []*Report `json:"reports"`
	Clean    bool      `json:"clean"`
}

// Marshal renders the document deterministically.
func (m *Multi) Marshal() ([]byte, error) { return json.Marshal(m) }

// FromDetectors builds a Multi from detectors that consumed one replayed
// (or live) event stream, e.g. via trace.ReplayAll. spec and events label
// the configuration as in FromCore.
func FromDetectors(spec string, events int64, dets []core.Detector) *Multi {
	out := &Multi{
		Schema:   Schema,
		Detector: string(rader.All),
		Spec:     spec,
		Events:   events,
		Reports:  make([]*Report, len(dets)),
		Clean:    true,
	}
	for i, det := range dets {
		out.Reports[i] = FromDetector(det.Name(), spec, events, det)
		out.Clean = out.Clean && out.Reports[i].Clean
	}
	return out
}

// FromAllOutcome builds a Multi from a merged rader.Run / RunDetectors
// outcome of a live run.
func FromAllOutcome(out *rader.Outcome, spec string) *Multi {
	m := &Multi{
		Schema:   Schema,
		Detector: string(rader.All),
		Spec:     spec,
		Reports:  make([]*Report, len(out.All)),
		Clean:    true,
	}
	for i, do := range out.All {
		m.Reports[i] = FromCore(string(do.Detector), spec, 0, do.Report)
		m.Clean = m.Clean && m.Reports[i].Clean
	}
	return m
}

// Profile mirrors the sweep's measured program profile.
type Profile struct {
	MaxPDepth    int `json:"maxPDepth"`
	MaxSyncBlock int `json:"maxSyncBlock"`
	CilkDepth    int `json:"cilkDepth"`
}

// SweepFinding is one distinct determinacy race with the specification
// that elicited it.
type SweepFinding struct {
	Spec string `json:"spec"`
	Race Race   `json:"race"`
}

// SweepFailure is one sweep unit that produced an error instead of a
// verdict.
type SweepFailure struct {
	Spec  string `json:"spec"`
	Error string `json:"error"`
}

// SweepStats mirrors the sweep's execution accounting: which strategy
// ran, what prefix sharing saved, and how much of the family the sweep
// covered. The values are deterministic for a given program and options
// (the trie, the snapshot points, the copy-on-write writes and the
// stratified sample are all schedule-independent), so they are safe in
// the byte-identical cached document. The scheduler-dependent counters
// (workers, steals, handoffs, per-worker busy time) are deliberately NOT
// here: they vary run to run and would break document identity.
type SweepStats struct {
	Strategy       string `json:"strategy"`
	Groups         int    `json:"groups"`
	SnapshotHits   int64  `json:"snapshotHits"`
	SnapshotMisses int64  `json:"snapshotMisses"`
	EventsSkipped  int64  `json:"eventsSkipped"`
	PagesCopied    int64  `json:"pagesCopied"`
	// SpecsTotal is the full family size; when the sweep sampled a subset,
	// Sampled is set, CoverageFraction is the fraction that ran, and
	// Confidence carries the human-readable caveat.
	SpecsTotal       int     `json:"specsTotal"`
	Sampled          bool    `json:"sampled,omitempty"`
	CoverageFraction float64 `json:"coverageFraction"`
	Confidence       string  `json:"confidence,omitempty"`
}

// Sweep is the verdict document for a §7 coverage sweep.
type Sweep struct {
	Schema       int            `json:"schema"`
	Profile      Profile        `json:"profile"`
	SpecsRun     int            `json:"specsRun"`
	ViewReads    []Race         `json:"viewReads"`
	Races        []SweepFinding `json:"races"`
	Failures     []SweepFailure `json:"failures"`
	TotalReports int            `json:"totalReports"`
	Clean        bool           `json:"clean"`
	Complete     bool           `json:"complete"`
	Stats        SweepStats     `json:"stats"`
}

// Marshal renders the document deterministically.
func (s *Sweep) Marshal() ([]byte, error) { return json.Marshal(s) }

// FromCoverage builds a Sweep from a CoverageResult. The result's Races
// and Failures are already in canonical spec order (rader.Sweep sorts
// them), so the document is identical across worker counts.
func FromCoverage(cr *rader.CoverageResult) *Sweep {
	out := &Sweep{
		Schema: Schema,
		Profile: Profile{
			MaxPDepth:    cr.Profile.MaxPDepth,
			MaxSyncBlock: cr.Profile.MaxSyncBlock,
			CilkDepth:    cr.Profile.CilkDepth,
		},
		SpecsRun:     cr.SpecsRun,
		ViewReads:    []Race{},
		Races:        []SweepFinding{},
		Failures:     []SweepFailure{},
		TotalReports: cr.TotalReports(),
		Clean:        cr.Clean(),
		Complete:     cr.Complete(),
		Stats: SweepStats{
			Strategy:         cr.Stats.Strategy,
			Groups:           cr.Stats.Groups,
			SnapshotHits:     cr.Stats.SnapshotHits,
			SnapshotMisses:   cr.Stats.SnapshotMisses,
			EventsSkipped:    cr.Stats.EventsSkipped,
			PagesCopied:      cr.Stats.PagesCopied,
			SpecsTotal:       cr.Stats.SpecsTotal,
			Sampled:          cr.Stats.Sampled,
			CoverageFraction: cr.Stats.CoverageFraction,
			Confidence:       cr.Stats.Confidence,
		},
	}
	if cr.ViewReads != nil {
		for _, r := range cr.ViewReads.Races() {
			out.ViewReads = append(out.ViewReads, fromRace(r))
		}
	}
	for _, f := range cr.Races {
		out.Races = append(out.Races, SweepFinding{Spec: f.Spec, Race: fromRace(f.Race)})
	}
	for _, f := range cr.Failures {
		out.Failures = append(out.Failures, SweepFailure{Spec: f.Spec, Error: fmt.Sprint(f.Err)})
	}
	return out
}
