package tables

import "testing"

// TestMeasureParallelQuick exercises the scaling harness end to end at a
// tiny scale: parity must hold in every cell and every live run, and the
// row/cell population must match the requested shard counts.
func TestMeasureParallelQuick(t *testing.T) {
	pb, err := MeasureParallel(ParallelOptions{
		Trials:        1,
		ShardCounts:   []int{1, 2},
		DedupChunks:   64,
		FerretQueries: 16,
		StressLeaves:  32,
		StressWork:    8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !pb.Parity {
		t.Fatal("verdict parity failed in a scaling cell or live run")
	}
	if len(pb.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(pb.Rows))
	}
	for _, row := range pb.Rows {
		if len(row.Cells) != 2 {
			t.Fatalf("%s: cells = %d, want 2", row.Workload, len(row.Cells))
		}
		if row.Entries == 0 || row.Accesses < row.Entries {
			t.Fatalf("%s: bad log accounting entries=%d accesses=%d", row.Workload, row.Entries, row.Accesses)
		}
	}
	if len(pb.Live) != 3*2 {
		t.Fatalf("live checks = %d, want 6", len(pb.Live))
	}
	_ = pb.Render()
}
