// Parallel-detection scaling measurement: the numbers behind
// BENCH_PR7.json's "parallel" section — the Figure-7-style table for the
// depa detector. For each workload the access log is recorded once, then
// the sharded detection phase runs at 1/2/4/8 shards with the shards
// timed one after another on the calling goroutine (depa's Sequential
// mode). The table reports critical-path speedup: the ratio of the
// one-shard detection time to the slowest shard's busy time at each
// shard count. This is the span of the detection phase — what wall-clock
// scaling converges to on a machine with enough cores — measured this
// way because CI containers often pin the suite to one CPU, where
// wall-clock "speedup" of concurrent goroutines is meaningless. The
// verdict-parity columns are measured, not assumed: every cell's report
// must be byte-identical to serial SP-bags'.
package tables

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/cilk"
	"repro/internal/core"
	"repro/internal/depa"
	"repro/internal/mem"
	"repro/internal/spbags"
	"repro/internal/trace"
	"repro/internal/wsrt"
)

// ParallelCell is one (workload, shard count) measurement.
type ParallelCell struct {
	Shards int `json:"shards"`
	// CriticalPathMs is the median (over trials) of the slowest shard's
	// busy time — the detection phase's span at this shard count.
	CriticalPathMs float64 `json:"criticalPathMs"`
	// TotalWorkMs is the median sum of all shard busy times — the
	// detection phase's work, which grows slowly with shard count (every
	// shard scans the log through a cheap page filter).
	TotalWorkMs float64 `json:"totalWorkMs"`
	// Speedup is the one-shard critical path over this cell's.
	Speedup float64 `json:"speedup"`
	// Parity records that this cell's verdict was byte-identical to
	// serial SP-bags' (modulo the provenance relation wording).
	Parity bool `json:"parity"`
}

// ParallelRow is one workload's scaling measurements.
type ParallelRow struct {
	Workload string `json:"workload"`
	Events   int64  `json:"events"`
	// Entries is the coalesced access-log size the detection phase
	// consumes; Accesses is the raw access count before coalescing.
	Entries  int64          `json:"entries"`
	Accesses int64          `json:"accesses"`
	Races    int            `json:"races"`
	Cells    []ParallelCell `json:"cells"`
	// Monotone reports that speedup never decreased as shards doubled,
	// with a 5% allowance for timer noise on sub-millisecond cells.
	Monotone bool `json:"monotone"`
}

// LiveCheck is one live-mode verification run: the workload executed on
// the work-stealing runtime with the live detector watching, checked
// against the serial SP-bags verdict.
type LiveCheck struct {
	Workload     string  `json:"workload"`
	Workers      int     `json:"workers"`
	Parity       bool    `json:"parity"`
	ShardMerges  int64   `json:"shardMerges"`
	FastPathRate float64 `json:"fastPathRate"`
}

// ParallelBench is the parallel-detection section of BENCH_PR7.json.
type ParallelBench struct {
	// Note pins the methodology so the numbers aren't misread as
	// wall-clock times from a many-core box.
	Note        string        `json:"note"`
	ShardCounts []int         `json:"shardCounts"`
	Rows        []ParallelRow `json:"rows"`
	Live        []LiveCheck   `json:"live"`
	// BestSpeedup is the largest speedup at the highest shard count —
	// the value the CI scaling gate reads.
	BestSpeedup float64 `json:"bestSpeedup"`
	// Parity is the conjunction of every replay cell's and live run's
	// verdict parity.
	Parity bool `json:"parity"`
}

// ParallelOptions configures MeasureParallel. The zero value measures
// the committed BENCH_PR7.json configuration.
type ParallelOptions struct {
	Trials      int
	ShardCounts []int // default 1, 2, 4, 8; must start at 1
	// Workload scales. The bench defaults are larger than the catalogue
	// entries so each cell's detection time is well above timer noise:
	// dedup's footprint spans a dozen shadow pages (it shards), ferret's
	// fits in one (it honestly doesn't), stress is page-per-leaf.
	DedupChunks   int
	FerretQueries int
	StressLeaves  int
	StressWork    int
	Progress      func(string)
}

// parallelWorkloads returns the measured workloads as (name, builder)
// pairs; the builder must yield an identical program for each fresh
// allocator so serial, replay and live runs see one address stream.
func parallelWorkloads(o ParallelOptions) []struct {
	name  string
	build func(al *mem.Allocator) func(depa.BCtx)
} {
	return []struct {
		name  string
		build func(al *mem.Allocator) func(depa.BCtx)
	}{
		{"dedup", func(al *mem.Allocator) func(depa.BCtx) { return depa.DedupWorkload(al, o.DedupChunks, false) }},
		{"ferret", func(al *mem.Allocator) func(depa.BCtx) {
			return depa.FerretWorkload(al, o.FerretQueries, 16, false)
		}},
		{"stress", func(al *mem.Allocator) func(depa.BCtx) {
			return depa.StressWorkload(al, o.StressLeaves, o.StressWork)
		}},
	}
}

// verdictKey renders a report for parity comparison across detectors:
// dedup counts, every race with both frames and provenance ordinals —
// everything except the relation wording, which legitimately differs
// between SP-bags ("writer in P-bag") and depa ("writer parallel").
func verdictKey(rp *core.Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "distinct=%d total=%d\n", rp.Distinct(), rp.Total())
	for _, r := range rp.Races() {
		fmt.Fprintf(&b, "%v first=%d second=%d\n", r, r.Prov.FirstEvent, r.Prov.SecondEvent)
	}
	return b.String()
}

// MeasureParallel records each workload's event stream once, replays it
// into the depa detector at every shard count (timing the detection
// phase's shards sequentially), and runs the live detector on the
// work-stealing runtime at the same worker counts — verifying every
// verdict against serial SP-bags.
func MeasureParallel(o ParallelOptions) (*ParallelBench, error) {
	if o.Trials < 1 {
		o.Trials = 3
	}
	if len(o.ShardCounts) == 0 {
		o.ShardCounts = []int{1, 2, 4, 8}
	}
	if o.ShardCounts[0] != 1 {
		return nil, fmt.Errorf("tables: shard counts must start at 1 (got %v)", o.ShardCounts)
	}
	if o.DedupChunks == 0 {
		o.DedupChunks = 8192
	}
	if o.FerretQueries == 0 {
		o.FerretQueries = 1024
	}
	if o.StressLeaves == 0 {
		o.StressLeaves = 256
	}
	if o.StressWork == 0 {
		o.StressWork = 64
	}
	progress := o.Progress
	if progress == nil {
		progress = func(string) {}
	}

	out := &ParallelBench{
		Note: "criticalPathMs is the slowest shard's busy time with shards run sequentially " +
			"(depa Sequential mode); speedup is the detection phase's span ratio, not wall clock " +
			"on this host's core count",
		ShardCounts: o.ShardCounts,
		Parity:      true,
	}

	for _, w := range parallelWorkloads(o) {
		progress(fmt.Sprintf("parallel: recording %s", w.name))
		// One serial run records the trace and the SP-bags baseline.
		var buf bytes.Buffer
		tw := trace.NewWriter(&buf)
		bags := spbags.New()
		cilk.Run(depa.CilkProg(w.build(mem.NewAllocator())),
			cilk.Config{Hooks: cilk.Multi{tw, bags}})
		if err := tw.Close(); err != nil {
			return nil, err
		}
		data := buf.Bytes()
		want := verdictKey(bags.Report())

		row := ParallelRow{Workload: w.name, Monotone: true}
		for _, shards := range o.ShardCounts {
			cell := ParallelCell{Shards: shards, Parity: true}
			crit := make([]time.Duration, o.Trials)
			work := make([]time.Duration, o.Trials)
			for t := 0; t < o.Trials; t++ {
				det := depa.New()
				det.Shards = shards
				det.Sequential = true
				events, err := trace.ReplayAllBytes(data, det)
				if err != nil {
					return nil, fmt.Errorf("tables: replaying %s: %w", w.name, err)
				}
				rp := det.Report()
				if verdictKey(rp) != want {
					cell.Parity = false
					out.Parity = false
				}
				var max, sum time.Duration
				for _, d := range det.ShardTimes() {
					sum += d
					if d > max {
						max = d
					}
				}
				crit[t], work[t] = max, sum
				if t == 0 && shards == o.ShardCounts[0] {
					st := det.ParallelStats()
					row.Events = events
					row.Accesses = st.Accesses
					row.Entries = st.Accesses - st.FastPathHits
					row.Races = rp.Distinct()
				}
			}
			sort.Slice(crit, func(i, j int) bool { return crit[i] < crit[j] })
			sort.Slice(work, func(i, j int) bool { return work[i] < work[j] })
			cell.CriticalPathMs = float64(crit[o.Trials/2].Nanoseconds()) / 1e6
			cell.TotalWorkMs = float64(work[o.Trials/2].Nanoseconds()) / 1e6
			row.Cells = append(row.Cells, cell)
			progress(fmt.Sprintf("parallel: %s shards=%d critical-path=%.3fms", w.name, shards, cell.CriticalPathMs))
		}
		base := row.Cells[0].CriticalPathMs
		prev := 0.0
		for i := range row.Cells {
			if cp := row.Cells[i].CriticalPathMs; cp > 0 {
				row.Cells[i].Speedup = base / cp
			}
			if row.Cells[i].Speedup < prev*0.95 {
				row.Monotone = false
			}
			prev = row.Cells[i].Speedup
		}
		if s := row.Cells[len(row.Cells)-1].Speedup; s > out.BestSpeedup {
			out.BestSpeedup = s
		}
		out.Rows = append(out.Rows, row)

		// Live verification at the same counts: genuinely parallel
		// execution on the work-stealing runtime, verdict checked against
		// the same SP-bags baseline.
		for _, workers := range o.ShardCounts {
			live := depa.NewLive()
			live.Run(wsrt.New(workers), w.build(mem.NewAllocator()))
			st := live.ParallelStats()
			lc := LiveCheck{
				Workload:     w.name,
				Workers:      workers,
				Parity:       verdictKey(live.Report()) == want,
				ShardMerges:  st.ShardMerges,
				FastPathRate: st.FastPathRate(),
			}
			if !lc.Parity {
				out.Parity = false
			}
			out.Live = append(out.Live, lc)
		}
	}
	return out, nil
}

// Render formats the scaling table for benchtab's plain output.
func (pb *ParallelBench) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %10s %8s", "workload", "entries", "races")
	for _, s := range pb.ShardCounts {
		fmt.Fprintf(&b, " %9s", fmt.Sprintf("s=%d", s))
	}
	fmt.Fprintf(&b, "  %s\n", "speedup@max")
	for _, row := range pb.Rows {
		fmt.Fprintf(&b, "%-8s %10d %8d", row.Workload, row.Entries, row.Races)
		for _, c := range row.Cells {
			fmt.Fprintf(&b, " %7.3fms", c.CriticalPathMs)
		}
		last := row.Cells[len(row.Cells)-1]
		mono := ""
		if !row.Monotone {
			mono = " (non-monotone)"
		}
		fmt.Fprintf(&b, "  %.2fx%s\n", last.Speedup, mono)
	}
	ok, n := 0, 0
	for _, lc := range pb.Live {
		n++
		if lc.Parity {
			ok++
		}
	}
	fmt.Fprintf(&b, "live on wsrt: %d/%d runs byte-identical to serial SP-bags\n", ok, n)
	fmt.Fprintf(&b, "parity: %v   best critical-path speedup at %d shards: %.2fx\n",
		pb.Parity, pb.ShardCounts[len(pb.ShardCounts)-1], pb.BestSpeedup)
	fmt.Fprintf(&b, "note: %s\n", pb.Note)
	return b.String()
}
