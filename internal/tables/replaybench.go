// Replay-throughput measurement: the numbers behind BENCH_PR3.json. The
// paper's Figures 7 and 8 measure live-run overhead; this harness measures
// the other half of the record-once/analyze-many workflow — how fast a
// recorded trace replays into the detectors, and what the single-pass
// fan-out engine (trace.ReplayAll) buys over one streaming replay per
// detector.
package tables

import (
	"bytes"
	"fmt"
	"runtime"
	"sort"
	"time"

	"repro/internal/cilk"
	"repro/internal/mem"
	"repro/internal/progs"
	"repro/internal/rader"
	"repro/internal/trace"
)

// ReplayPath is one measured replay configuration.
type ReplayPath struct {
	NsPerEvent     float64 `json:"nsPerEvent"`
	AllocsPerEvent float64 `json:"allocsPerEvent"`
}

// ReplayDetector is one detector's sequential streaming-replay cost.
type ReplayDetector struct {
	Detector string `json:"detector"`
	ReplayPath
}

// ReplayBench is the replay-throughput section of BENCH_PR3.json.
type ReplayBench struct {
	// Events and TraceBytes describe the measured trace (Figure 1 at a
	// bench-sized N, recorded under steal-all).
	Events     int64 `json:"events"`
	TraceBytes int   `json:"traceBytes"`
	// Detectors holds one streaming replay per detector — the sequential
	// baseline's addends.
	Detectors []ReplayDetector `json:"detectors"`
	// DecodeLoop is the pooled single-pass engine with no consumers,
	// measured on a reducer-free stream: its steady state performs zero
	// allocations per event (the CI allocation-regression gate).
	DecodeLoop ReplayPath `json:"decodeLoop"`
	// Sequential is the all-detectors verdict computed the old way: three
	// streaming replays of the same bytes.
	Sequential ReplayPath `json:"sequential"`
	// AllDetectors is the same verdict from one trace.ReplayAll pass.
	AllDetectors ReplayPath `json:"allDetectors"`
	// Speedup is Sequential.NsPerEvent / AllDetectors.NsPerEvent — the
	// PR's acceptance gate demands >= 2.
	Speedup float64 `json:"speedup"`
}

// measureReplayPath times f (which must replay the whole trace once per
// call) and reports median ns/event over trials plus allocations/event.
func measureReplayPath(trials int, events int64, f func()) ReplayPath {
	f() // warm pools, arenas, and intern tables
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	f()
	runtime.ReadMemStats(&after)
	allocs := float64(after.Mallocs - before.Mallocs)

	const reps = 5
	samples := make([]time.Duration, trials)
	for i := range samples {
		start := time.Now()
		for r := 0; r < reps; r++ {
			f()
		}
		samples[i] = time.Since(start) / reps
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	med := samples[len(samples)/2]
	return ReplayPath{
		NsPerEvent:     float64(med.Nanoseconds()) / float64(events),
		AllocsPerEvent: allocs / float64(events),
	}
}

// MeasureReplay runs the replay-throughput comparison: per-detector
// streaming replays, the three-replay sequential baseline, the
// single-pass all-detectors path, and the bare decode loop.
func MeasureReplay(trials int) (*ReplayBench, error) {
	if trials < 1 {
		trials = 3
	}
	record := func(prog func(*cilk.Ctx)) ([]byte, error) {
		var buf bytes.Buffer
		tw := trace.NewWriter(&buf)
		cilk.Run(prog, cilk.Config{Spec: cilk.StealAll{}, Hooks: tw})
		if err := tw.Close(); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
	al := mem.NewAllocator()
	data, err := record(progs.Fig1(al, progs.Fig1Options{N: 256}))
	if err != nil {
		return nil, err
	}
	events, err := trace.ReplayAllBytes(data, cilk.Empty{})
	if err != nil {
		return nil, err
	}
	out := &ReplayBench{Events: events, TraceBytes: len(data)}

	mustReplay := func(hooks cilk.Hooks) {
		if _, err := trace.Replay(bytes.NewReader(data), hooks); err != nil {
			panic(err)
		}
	}
	for _, name := range rader.AllDetectors {
		name := name
		p := measureReplayPath(trials, events, func() {
			_, hooks, err := rader.NewDetector(name)
			if err != nil {
				panic(err)
			}
			mustReplay(hooks)
		})
		out.Detectors = append(out.Detectors, ReplayDetector{Detector: string(name), ReplayPath: p})
	}
	out.Sequential = measureReplayPath(trials, events, func() {
		for _, name := range rader.AllDetectors {
			_, hooks, err := rader.NewDetector(name)
			if err != nil {
				panic(err)
			}
			mustReplay(hooks)
		}
	})
	out.AllDetectors = measureReplayPath(trials, events, func() {
		dets := rader.NewAllDetectors()
		hooks := make([]cilk.Hooks, len(dets))
		for i, d := range dets {
			hooks[i] = d.(cilk.Hooks)
		}
		if _, err := trace.ReplayAllBytes(data, hooks...); err != nil {
			panic(err)
		}
	})

	// The decode loop is measured on a reducer-free stream with a
	// dedicated engine: reducer objects are the one legitimate per-replay
	// allocation, and the steady-state claim is about the loop itself.
	alNR := mem.NewAllocator()
	x := alNR.Alloc("x", 8)
	plain, err := record(func(c *cilk.Ctx) {
		for i := 0; i < 64; i++ {
			c.Spawn("worker", func(cc *cilk.Ctx) {
				cc.Store(x.At(0))
				cc.Load(x.At(1))
				cc.Call("leaf", func(ccc *cilk.Ctx) { ccc.Store(x.At(2)) })
			})
		}
		c.Sync()
	})
	if err != nil {
		return nil, err
	}
	plainEvents, err := trace.ReplayAllBytes(plain, cilk.Empty{})
	if err != nil {
		return nil, err
	}
	rp := trace.NewReplayer()
	out.DecodeLoop = measureReplayPath(trials, plainEvents, func() {
		if _, err := rp.Replay(plain, cilk.Empty{}); err != nil {
			panic(err)
		}
	})

	if out.AllDetectors.NsPerEvent <= 0 {
		return nil, fmt.Errorf("tables: degenerate all-detectors measurement")
	}
	out.Speedup = out.Sequential.NsPerEvent / out.AllDetectors.NsPerEvent
	return out, nil
}
