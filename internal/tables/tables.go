// Package tables regenerates the paper's evaluation tables: Figure 7
// (Rader's overhead over running each benchmark without instrumentation)
// and Figure 8 (overhead over an empty tool), across the four
// configurations the paper times:
//
//	Check view-read race — the Peer-Set algorithm, serial schedule;
//	No steals           — SP+ with the empty steal specification;
//	Check updates       — SP+ with steals at continuation depth K/2;
//	Check reductions    — SP+ with three random steal points per sync
//	                      block (seeded), eliciting a subset of reduce
//	                      operations.
//
// Absolute times differ from the paper's Xeon E5-2665 (this substrate is a
// Go interpreter of the Cilk model, not compiled C), so the object of
// comparison is the overhead structure: Peer-Set ≪ SP+, fib and knapsack
// worst because they do almost no work per strand, ferret near 1 because
// little of its computation is instrumented, and check-reductions ≥
// no-steals because reduce operations add work.
package tables

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/cilk"
	"repro/internal/mem"
	"repro/internal/rader"
	"repro/internal/sched"
	"repro/internal/specgen"
)

// Configs of the evaluation, in column order.
const (
	ColViewRead = iota
	ColNoSteals
	ColUpdates
	ColReductions
	numCols
)

// ColumnNames mirror the paper's column headers.
var ColumnNames = [numCols]string{
	"Check view-read race",
	"No steals",
	"Check updates",
	"Check reductions",
}

// Row is one benchmark's measurements.
type Row struct {
	Benchmark string
	Input     string
	Desc      string
	Base      time.Duration // baseline (no instrumentation or empty tool)
	Times     [numCols]time.Duration
	Overhead  [numCols]float64
}

// Table is one regenerated evaluation table.
type Table struct {
	Baseline string // "no instrumentation" or "empty tool"
	Rows     []Row
	GeoMean  [numCols]float64
}

// Options configure a run of the harness.
type Options struct {
	Scale  apps.Scale // zero value is apps.Test; pass apps.Bench to reproduce the paper
	Trials int        // timing repetitions per cell; median taken (default 3)
	Seed   int64      // seed for the check-reductions random schedule
	// Apps restricts the benchmark set (nil = all six).
	Apps []string
	// Progress, if non-nil, receives per-cell progress lines.
	Progress func(string)
}

func (o *Options) defaults() {
	if o.Trials == 0 {
		o.Trials = 3
	}
	if o.Seed == 0 {
		o.Seed = 20150613 // SPAA'15 opening day
	}
}

// Generate times every benchmark under every configuration and builds
// both tables: overhead over no instrumentation (Figure 7) and over the
// empty tool (Figure 8).
func Generate(opts Options) (fig7, fig8 *Table, err error) {
	opts.defaults()
	list := apps.All()
	if opts.Apps != nil {
		list = list[:0]
		for _, name := range opts.Apps {
			a, err := apps.ByName(name)
			if err != nil {
				return nil, nil, err
			}
			list = append(list, a)
		}
	}
	fig7 = &Table{Baseline: "no instrumentation"}
	fig8 = &Table{Baseline: "empty tool"}
	for _, app := range list {
		al := mem.NewAllocator()
		ins := app.Build(al, opts.Scale)
		// Profile once to derive the schedule parameters (K).
		prof := specgen.Measure(ins.Prog)
		k := prof.MaxSyncBlock
		specs := [numCols]cilk.StealSpec{
			ColViewRead:   nil,
			ColNoSteals:   nil,
			ColUpdates:    sched.ByDepth{D: maxInt(1, k/2)},
			ColReductions: sched.Random{Seed: opts.Seed, K: k},
		}
		detectors := [numCols]rader.DetectorName{
			ColViewRead:   rader.PeerSet,
			ColNoSteals:   rader.SPPlus,
			ColUpdates:    rader.SPPlus,
			ColReductions: rader.SPPlus,
		}

		base := o(opts, app.Name, "baseline", func() time.Duration {
			return timeRun(ins.Prog, rader.None, nil, opts.Trials)
		})
		empty := o(opts, app.Name, "empty tool", func() time.Duration {
			return timeRun(ins.Prog, rader.EmptyTool, nil, opts.Trials)
		})
		r7 := Row{Benchmark: app.Name, Input: ins.InputDesc, Desc: app.Desc, Base: base}
		r8 := Row{Benchmark: app.Name, Input: ins.InputDesc, Desc: app.Desc, Base: empty}
		for col := 0; col < numCols; col++ {
			col := col
			d := o(opts, app.Name, ColumnNames[col], func() time.Duration {
				return timeRun(ins.Prog, detectors[col], specs[col], opts.Trials)
			})
			r7.Times[col] = d
			r8.Times[col] = d
			r7.Overhead[col] = ratio(d, base)
			r8.Overhead[col] = ratio(d, empty)
		}
		if err := ins.Verify(); err != nil {
			return nil, nil, fmt.Errorf("tables: %s failed verification after timing: %w", app.Name, err)
		}
		fig7.Rows = append(fig7.Rows, r7)
		fig8.Rows = append(fig8.Rows, r8)
	}
	fig7.computeGeoMean()
	fig8.computeGeoMean()
	return fig7, fig8, nil
}

func o(opts Options, app, what string, f func() time.Duration) time.Duration {
	d := f()
	if opts.Progress != nil {
		opts.Progress(fmt.Sprintf("%-10s %-22s %v", app, what, d.Round(time.Microsecond)))
	}
	return d
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func ratio(a, b time.Duration) float64 {
	if b <= 0 {
		return math.NaN()
	}
	return float64(a) / float64(b)
}

// timeRun reports the median duration of trials runs.
func timeRun(prog func(*cilk.Ctx), det rader.DetectorName, spec cilk.StealSpec, trials int) time.Duration {
	times := make([]time.Duration, 0, trials)
	for i := 0; i < trials; i++ {
		out := rader.MustRun(prog, rader.Config{Detector: det, Spec: spec})
		times = append(times, out.Duration)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[len(times)/2]
}

func (t *Table) computeGeoMean() {
	for col := 0; col < numCols; col++ {
		logsum := 0.0
		n := 0
		for _, r := range t.Rows {
			if !math.IsNaN(r.Overhead[col]) && r.Overhead[col] > 0 {
				logsum += math.Log(r.Overhead[col])
				n++
			}
		}
		if n > 0 {
			t.GeoMean[col] = math.Exp(logsum / float64(n))
		}
	}
}

// Render prints the table in the paper's layout, with the paper's
// reported numbers alongside for comparison when available.
func (t *Table) Render(paper map[string][numCols]float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Overhead over %s\n", t.Baseline)
	fmt.Fprintf(&b, "%-10s %-28s %-26s %10s %10s %10s %10s\n",
		"Benchmark", "Input size", "Description",
		"View-read", "No steals", "Updates", "Reductions")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-10s %-28s %-26s %10.2f %10.2f %10.2f %10.2f\n",
			r.Benchmark, r.Input, r.Desc,
			r.Overhead[0], r.Overhead[1], r.Overhead[2], r.Overhead[3])
		if p, ok := paper[r.Benchmark]; ok {
			fmt.Fprintf(&b, "%-10s %-28s %-26s %10.2f %10.2f %10.2f %10.2f\n",
				"", "", "  (paper)", p[0], p[1], p[2], p[3])
		}
	}
	fmt.Fprintf(&b, "%-10s %-28s %-26s %10.2f %10.2f %10.2f %10.2f\n",
		"geomean", "", "", t.GeoMean[0], t.GeoMean[1], t.GeoMean[2], t.GeoMean[3])
	return b.String()
}

// RenderCSV emits the table as CSV (benchmark, input, baseline_ns, then
// per-configuration ns and overhead columns) for downstream tooling.
func (t *Table) RenderCSV() string {
	var b strings.Builder
	b.WriteString("benchmark,input,baseline_ns")
	for _, c := range ColumnNames {
		name := strings.ReplaceAll(strings.ToLower(c), " ", "_")
		fmt.Fprintf(&b, ",%s_ns,%s_overhead", name, name)
	}
	b.WriteString("\n")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%s,%q,%d", r.Benchmark, r.Input, r.Base.Nanoseconds())
		for col := 0; col < numCols; col++ {
			fmt.Fprintf(&b, ",%d,%.4f", r.Times[col].Nanoseconds(), r.Overhead[col])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// PaperFigure7 holds the paper's Figure 7 numbers (overhead over no
// instrumentation).
var PaperFigure7 = map[string][numCols]float64{
	"collision": {1.03, 17.25, 17.11, 17.10},
	"dedup":     {1.21, 6.72, 6.71, 6.67},
	"ferret":    {1.00, 2.25, 2.25, 2.25},
	"fib":       {5.95, 33.58, 36.90, 75.60},
	"knapsack":  {2.70, 49.24, 56.41, 66.79},
	"pbfs":      {3.34, 3.94, 3.94, 5.65},
}

// PaperFigure8 holds the paper's Figure 8 numbers (overhead over the
// empty tool).
var PaperFigure8 = map[string][numCols]float64{
	"collision": {1.00, 8.19, 8.13, 8.12},
	"dedup":     {1.22, 6.53, 6.52, 6.48},
	"ferret":    {1.00, 1.04, 1.04, 1.04},
	"fib":       {3.89, 6.15, 6.76, 13.85},
	"knapsack":  {2.44, 11.56, 13.24, 15.68},
	"pbfs":      {1.79, 3.04, 3.04, 4.6},
}

// Headline computes the two numbers the paper's abstract quotes from a
// table: the Peer-Set geometric mean (the view-read column) and the SP+
// geometric mean (pooled over the three SP+ columns). Recomputing from the
// paper's own Figure 7/8 entries shows both headline means exclude ferret
// — 2.32 and 16.76 for Figure 7, 1.84 and 7.27 for Figure 8 reproduce
// exactly only without it — consistent with §8's remark that ferret is an
// outlier whose library code is deliberately uninstrumented.
func (t *Table) Headline(excludeFerret bool) (peerSet, spPlus float64) {
	logPS, nPS := 0.0, 0
	logSP, nSP := 0.0, 0
	for _, r := range t.Rows {
		if excludeFerret && r.Benchmark == "ferret" {
			continue
		}
		if v := r.Overhead[ColViewRead]; v > 0 && !math.IsNaN(v) {
			logPS += math.Log(v)
			nPS++
		}
		for _, col := range []int{ColNoSteals, ColUpdates, ColReductions} {
			if v := r.Overhead[col]; v > 0 && !math.IsNaN(v) {
				logSP += math.Log(v)
				nSP++
			}
		}
	}
	if nPS > 0 {
		peerSet = math.Exp(logPS / float64(nPS))
	}
	if nSP > 0 {
		spPlus = math.Exp(logSP / float64(nSP))
	}
	return peerSet, spPlus
}

// PaperHeadline7 are the paper's abstract numbers for Figure 7: Peer-Set
// 2.32, SP+ 16.76.
var PaperHeadline7 = [2]float64{2.32, 16.76}

// PaperHeadline8 are the §8 numbers for Figure 8: Peer-Set 1.84, SP+ 7.27.
var PaperHeadline8 = [2]float64{1.84, 7.27}
