package tables

import (
	"strings"
	"testing"
)

// TestMeasureStealingQuick exercises the work-stealing measurement end
// to end at a tiny scale: the 1-vs-N-worker verdict parity must hold,
// the accounting fields must be populated, and the render must carry the
// scheduler section.
func TestMeasureStealingQuick(t *testing.T) {
	out := &SweepBench{}
	if err := measureStealing(out, 10, 4, 0); err != nil {
		t.Fatal(err)
	}
	if out.Workers != 4 {
		t.Fatalf("Workers = %d, want 4", out.Workers)
	}
	if out.StressSpecs <= 0 || out.StressGroups <= 0 {
		t.Fatalf("empty stress family: specs=%d groups=%d", out.StressSpecs, out.StressGroups)
	}
	if out.SerialBusyMs <= 0 || out.MaxLaneBusyMs <= 0 || out.CriticalPathSpeedup <= 0 {
		t.Fatalf("degenerate busy accounting: serial=%.3f maxLane=%.3f speedup=%.3f",
			out.SerialBusyMs, out.MaxLaneBusyMs, out.CriticalPathSpeedup)
	}
	if out.Steals < 0 || out.Handoffs > out.Steals {
		t.Fatalf("impossible steal accounting: steals=%d handoffs=%d", out.Steals, out.Handoffs)
	}
	if !strings.Contains(out.Render(), "work-stealing scheduler") {
		t.Fatal("render is missing the work-stealing section")
	}
}
