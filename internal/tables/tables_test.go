package tables

import (
	"math"
	"strings"
	"testing"

	"repro/internal/apps"
)

func TestGenerateTestScale(t *testing.T) {
	fig7, fig8, err := Generate(Options{Scale: apps.Test, Trials: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig7.Rows) != 6 || len(fig8.Rows) != 6 {
		t.Fatalf("rows = %d/%d, want 6", len(fig7.Rows), len(fig8.Rows))
	}
	for _, r := range fig7.Rows {
		for col := 0; col < numCols; col++ {
			if math.IsNaN(r.Overhead[col]) || r.Overhead[col] <= 0 {
				t.Fatalf("%s col %d: overhead %v", r.Benchmark, col, r.Overhead[col])
			}
		}
	}
	for col := 0; col < numCols; col++ {
		if fig7.GeoMean[col] <= 0 {
			t.Fatalf("geomean col %d not computed", col)
		}
	}
	// Both tables share the instrumented timings; only baselines differ.
	for i := range fig7.Rows {
		for col := 0; col < numCols; col++ {
			if fig7.Rows[i].Times[col] != fig8.Rows[i].Times[col] {
				t.Fatalf("%s col %d: tables measured different runs", fig7.Rows[i].Benchmark, col)
			}
		}
	}
	// (At Test scale runs take microseconds, so the fig7-vs-fig8 ratio
	// relationship is noise; bench_test.go exercises the real scale.)
}

func TestGenerateSubset(t *testing.T) {
	fig7, _, err := Generate(Options{Scale: apps.Test, Trials: 1, Apps: []string{"fib"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig7.Rows) != 1 || fig7.Rows[0].Benchmark != "fib" {
		t.Fatal("subset selection broken")
	}
	if _, _, err := Generate(Options{Apps: []string{"nope"}}); err == nil {
		t.Fatal("unknown app must error")
	}
}

func TestRender(t *testing.T) {
	fig7, _, err := Generate(Options{Scale: apps.Test, Trials: 1, Apps: []string{"ferret"}})
	if err != nil {
		t.Fatal(err)
	}
	out := fig7.Render(PaperFigure7)
	for _, want := range []string{"ferret", "geomean", "(paper)", "No steals"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestPaperConstantsComplete(t *testing.T) {
	for _, app := range apps.All() {
		if _, ok := PaperFigure7[app.Name]; !ok {
			t.Errorf("PaperFigure7 missing %s", app.Name)
		}
		if _, ok := PaperFigure8[app.Name]; !ok {
			t.Errorf("PaperFigure8 missing %s", app.Name)
		}
	}
	// The paper's headline geometric means recompute from its own table
	// entries only when ferret is excluded (see Headline).
	recompute := func(fig map[string][numCols]float64) (float64, float64) {
		tbl := &Table{}
		for name, v := range fig {
			tbl.Rows = append(tbl.Rows, Row{Benchmark: name, Overhead: v})
		}
		return tbl.Headline(true)
	}
	ps7, sp7 := recompute(PaperFigure7)
	if math.Abs(ps7-PaperHeadline7[0]) > 0.01 {
		t.Errorf("Figure 7 Peer-Set headline recomputes to %.3f, paper says %.2f", ps7, PaperHeadline7[0])
	}
	if math.Abs(sp7-PaperHeadline7[1]) > 0.01 {
		t.Errorf("Figure 7 SP+ headline recomputes to %.3f, paper says %.2f", sp7, PaperHeadline7[1])
	}
	ps8, sp8 := recompute(PaperFigure8)
	if math.Abs(ps8-PaperHeadline8[0]) > 0.02 {
		t.Errorf("Figure 8 Peer-Set headline recomputes to %.3f, paper says %.2f", ps8, PaperHeadline8[0])
	}
	if math.Abs(sp8-PaperHeadline8[1]) > 0.03 {
		t.Errorf("Figure 8 SP+ headline recomputes to %.3f, paper says %.2f", sp8, PaperHeadline8[1])
	}
}

func TestRenderCSV(t *testing.T) {
	fig7, _, err := Generate(Options{Scale: apps.Test, Trials: 1, Apps: []string{"fib"}})
	if err != nil {
		t.Fatal(err)
	}
	csv := fig7.RenderCSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv lines = %d, want header + 1 row:\n%s", len(lines), csv)
	}
	header := strings.Split(lines[0], ",")
	row := strings.Split(lines[1], ",")
	if len(header) != len(row) {
		t.Fatalf("header has %d fields, row %d", len(header), len(row))
	}
	if header[0] != "benchmark" || row[0] != "fib" {
		t.Fatalf("csv malformed:\n%s", csv)
	}
}
