// Sweep-throughput measurement: the numbers behind BENCH_PR5.json. The
// §7 coverage sweep re-executes the program once per specification; most
// of those executions share a long prefix of steal decisions. This
// harness times the prefix-sharing sweep (steal-decision trie +
// copy-on-write detector snapshots) against the naive one-run-per-spec
// sweep on a program built to have a long shared prefix, and records the
// sharing counters that explain the speedup.
package tables

import (
	"fmt"
	"reflect"
	"sort"
	"time"

	"repro/internal/cilk"
	"repro/internal/mem"
	"repro/internal/progs"
	"repro/internal/rader"
)

// SweepBench is the sweep-throughput section of BENCH_PR5.json.
type SweepBench struct {
	// Program identifies the benchmark workload: progs.SweepStress with
	// the recorded shape (spawns / preamble accesses / per-child accesses).
	Program string `json:"program"`
	// Specs is the §7 family size — the acceptance bar demands >= 50.
	Specs int `json:"specs"`
	// Groups is how many distinct event streams the trie found; the
	// prefix sweep runs one unit per group instead of one per spec.
	Groups int `json:"groups"`
	// NaiveMs and PrefixMs are median wall-clock milliseconds for one
	// whole sweep (Workers: 1, so the ratio measures work, not
	// scheduling).
	NaiveMs  float64 `json:"naiveMs"`
	PrefixMs float64 `json:"prefixMs"`
	// Speedup is NaiveMs / PrefixMs — the PR's acceptance gate demands
	// >= 2.
	Speedup float64 `json:"speedup"`
	// Sharing counters from the measured prefix sweep: every unit seeded
	// from a snapshot is a hit, EventsSkipped is detector work not done,
	// PagesCopied is the copy-on-write bill for all the forks.
	SnapshotHits   int64 `json:"snapshotHits"`
	SnapshotMisses int64 `json:"snapshotMisses"`
	EventsSkipped  int64 `json:"eventsSkipped"`
	PagesCopied    int64 `json:"pagesCopied"`

	// The work-stealing section (BENCH_PR10.json): the same prefix sweep
	// run on a 10^4-specification stress family, once at one worker and
	// once at Workers lanes. Wall clock on a small host conflates the two
	// runs with CPU contention, so the scaling gate is critical-path
	// speedup: total busy time at one worker over the busiest lane at
	// Workers lanes — the wall-clock ratio an unloaded Workers-core host
	// would see. The acceptance bar demands >= 3 at 8 workers.
	StressProgram string `json:"stressProgram"`
	// StressSpecs is the stress family size (>= 10^4 by construction);
	// StressGroups is its trie-group count — the unit count the scheduler
	// actually balances.
	StressSpecs         int     `json:"stressSpecs"`
	StressGroups        int     `json:"stressGroups"`
	Workers             int     `json:"workers"`
	SerialBusyMs        float64 `json:"serialBusyMs"`
	MaxLaneBusyMs       float64 `json:"maxLaneBusyMs"`
	CriticalPathSpeedup float64 `json:"criticalPathSpeedup"`
	// Steals and Handoffs come from the Workers-lane run: units taken
	// from another lane's deque, and how many of those crossed with a
	// copy-on-write snapshot. PagesPooled is the shadow-page free-list
	// residency of the pooled detectors after that run.
	Steals      int64 `json:"steals"`
	Handoffs    int64 `json:"handoffs"`
	PagesPooled int   `json:"pagesPooled"`
}

// Render formats the comparison as benchtab's sweep table.
func (sb *SweepBench) Render() string {
	out := fmt.Sprintf(
		"program:            %s\n"+
			"family:             %d specifications in %d trie groups\n"+
			"naive sweep:        %8.2f ms   (one detector run per specification)\n"+
			"prefix sweep:       %8.2f ms   (one unit per group, snapshot-seeded suffixes)\n"+
			"speedup:            %8.2fx\n"+
			"snapshot seeding:   %d hits, %d misses\n"+
			"detector work skipped: %d events; copy-on-write pages copied: %d\n",
		sb.Program, sb.Specs, sb.Groups, sb.NaiveMs, sb.PrefixMs, sb.Speedup,
		sb.SnapshotHits, sb.SnapshotMisses, sb.EventsSkipped, sb.PagesCopied)
	if sb.Workers > 1 {
		out += fmt.Sprintf(
			"\n--- work-stealing scheduler, %d lanes ---\n"+
				"stress family:      %s: %d specifications in %d trie groups\n"+
				"serial busy:        %8.2f ms   (total unit time at one worker)\n"+
				"busiest lane:       %8.2f ms   (max unit time over %d workers)\n"+
				"critical-path speedup: %5.2fx\n"+
				"steals: %d (snapshot handoffs: %d); shadow pages pooled: %d\n",
			sb.Workers, sb.StressProgram, sb.StressSpecs, sb.StressGroups,
			sb.SerialBusyMs, sb.MaxLaneBusyMs, sb.Workers,
			sb.CriticalPathSpeedup, sb.Steals, sb.Handoffs, sb.PagesPooled)
	}
	return out
}

// measureSweep times f over trials and returns the median duration plus
// the last result (for counter extraction).
func measureSweep(trials int, f func() *rader.CoverageResult) (time.Duration, *rader.CoverageResult) {
	cr := f() // warm pools and the page free lists
	samples := make([]time.Duration, trials)
	for i := range samples {
		start := time.Now()
		cr = f()
		samples[i] = time.Since(start)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return samples[len(samples)/2], cr
}

// MeasureSweep runs the naive-vs-prefix sweep comparison on the
// SweepStress workload, first checking that the two strategies agree on
// the canonical verdict they are being timed to produce.
func MeasureSweep(trials int) (*SweepBench, error) {
	if trials < 1 {
		trials = 3
	}
	const spawns, preamble, body = 7, 2048, 64
	factory := func() func(*cilk.Ctx) {
		return progs.SweepStress(mem.NewAllocator(), spawns, preamble, body)
	}
	run := func(naive bool) *rader.CoverageResult {
		return rader.Sweep(factory, rader.SweepOptions{Workers: 1, Naive: naive})
	}

	naiveCR := run(true)
	prefixCR := run(false)
	if err := sweepsAgree(naiveCR, prefixCR); err != nil {
		return nil, err
	}
	out := &SweepBench{
		Program: fmt.Sprintf("SweepStress(spawns=%d, preamble=%d, body=%d)", spawns, preamble, body),
		Specs:   naiveCR.SpecsRun,
		Groups:  prefixCR.Stats.Groups,
	}
	if out.Specs < 50 {
		return nil, fmt.Errorf("tables: benchmark family has %d specs, want >= 50", out.Specs)
	}

	naiveMed, _ := measureSweep(trials, func() *rader.CoverageResult { return run(true) })
	prefixMed, cr := measureSweep(trials, func() *rader.CoverageResult { return run(false) })
	out.NaiveMs = float64(naiveMed.Nanoseconds()) / 1e6
	out.PrefixMs = float64(prefixMed.Nanoseconds()) / 1e6
	if out.PrefixMs <= 0 {
		return nil, fmt.Errorf("tables: degenerate prefix-sweep measurement")
	}
	out.Speedup = out.NaiveMs / out.PrefixMs
	out.SnapshotHits = cr.Stats.SnapshotHits
	out.SnapshotMisses = cr.Stats.SnapshotMisses
	out.EventsSkipped = cr.Stats.EventsSkipped
	out.PagesCopied = cr.Stats.PagesCopied
	if err := measureStealing(out, 40, 8, 10000); err != nil {
		return nil, err
	}
	return out, nil
}

// measureStealing fills the work-stealing section: the prefix sweep on a
// minSpecs-specification family at one worker versus lanes, compared by
// critical path (busiest lane) rather than wall clock so the number
// means the same thing on a loaded one-core CI host as on an idle
// eight-core workstation.
func measureStealing(out *SweepBench, stressSpawns, lanes, minSpecs int) error {
	factory := func() func(*cilk.Ctx) {
		return progs.ReducerBench(mem.NewAllocator(), stressSpawns)
	}
	serial := rader.Sweep(factory, rader.SweepOptions{Workers: 1})
	par := rader.Sweep(factory, rader.SweepOptions{Workers: lanes})
	if err := sweepsAgree(serial, par); err != nil {
		return fmt.Errorf("1-vs-%d-worker %w", lanes, err)
	}
	out.StressProgram = fmt.Sprintf("ReducerBench(spawns=%d)", stressSpawns)
	out.StressSpecs = serial.Stats.SpecsTotal
	out.StressGroups = par.Stats.Groups
	if out.StressSpecs < minSpecs {
		return fmt.Errorf("tables: stress family has %d specs, want >= %d", out.StressSpecs, minSpecs)
	}
	var sumBusy, maxLane int64
	for _, b := range serial.Stats.WorkerBusy {
		sumBusy += b
	}
	for _, b := range par.Stats.WorkerBusy {
		if b > maxLane {
			maxLane = b
		}
	}
	if maxLane <= 0 {
		return fmt.Errorf("tables: degenerate %d-worker busy measurement", lanes)
	}
	out.Workers = lanes
	out.SerialBusyMs = float64(sumBusy) / 1e6
	out.MaxLaneBusyMs = float64(maxLane) / 1e6
	out.CriticalPathSpeedup = float64(sumBusy) / float64(maxLane)
	out.Steals = par.Stats.Steals
	out.Handoffs = par.Stats.Handoffs
	out.PagesPooled = par.Stats.PagesPooled
	return nil
}

// sweepsAgree checks the canonical verdict fields the equivalence
// property test pins, so the benchmark can never time two sweeps that
// disagree about the answer.
func sweepsAgree(a, b *rader.CoverageResult) error {
	if a.SpecsRun != b.SpecsRun {
		return fmt.Errorf("tables: sweeps disagree on SpecsRun: %d vs %d", a.SpecsRun, b.SpecsRun)
	}
	if !reflect.DeepEqual(a.Races, b.Races) {
		return fmt.Errorf("tables: sweeps disagree on races:\n%v\nvs\n%v", a.Races, b.Races)
	}
	if len(a.Failures) != 0 || len(b.Failures) != 0 {
		return fmt.Errorf("tables: benchmark sweep failed: %v / %v", a.Failures, b.Failures)
	}
	if a.TotalReports() != b.TotalReports() {
		return fmt.Errorf("tables: sweeps disagree on total reports: %d vs %d", a.TotalReports(), b.TotalReports())
	}
	if !reflect.DeepEqual(a.ViewReads.Races(), b.ViewReads.Races()) {
		return fmt.Errorf("tables: sweeps disagree on view-read races")
	}
	return nil
}
