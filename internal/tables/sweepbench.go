// Sweep-throughput measurement: the numbers behind BENCH_PR5.json. The
// §7 coverage sweep re-executes the program once per specification; most
// of those executions share a long prefix of steal decisions. This
// harness times the prefix-sharing sweep (steal-decision trie +
// copy-on-write detector snapshots) against the naive one-run-per-spec
// sweep on a program built to have a long shared prefix, and records the
// sharing counters that explain the speedup.
package tables

import (
	"fmt"
	"reflect"
	"sort"
	"time"

	"repro/internal/cilk"
	"repro/internal/mem"
	"repro/internal/progs"
	"repro/internal/rader"
)

// SweepBench is the sweep-throughput section of BENCH_PR5.json.
type SweepBench struct {
	// Program identifies the benchmark workload: progs.SweepStress with
	// the recorded shape (spawns / preamble accesses / per-child accesses).
	Program string `json:"program"`
	// Specs is the §7 family size — the acceptance bar demands >= 50.
	Specs int `json:"specs"`
	// Groups is how many distinct event streams the trie found; the
	// prefix sweep runs one unit per group instead of one per spec.
	Groups int `json:"groups"`
	// NaiveMs and PrefixMs are median wall-clock milliseconds for one
	// whole sweep (Workers: 1, so the ratio measures work, not
	// scheduling).
	NaiveMs  float64 `json:"naiveMs"`
	PrefixMs float64 `json:"prefixMs"`
	// Speedup is NaiveMs / PrefixMs — the PR's acceptance gate demands
	// >= 2.
	Speedup float64 `json:"speedup"`
	// Sharing counters from the measured prefix sweep: every unit seeded
	// from a snapshot is a hit, EventsSkipped is detector work not done,
	// PagesCopied is the copy-on-write bill for all the forks.
	SnapshotHits   int64 `json:"snapshotHits"`
	SnapshotMisses int64 `json:"snapshotMisses"`
	EventsSkipped  int64 `json:"eventsSkipped"`
	PagesCopied    int64 `json:"pagesCopied"`
}

// Render formats the comparison as benchtab's sweep table.
func (sb *SweepBench) Render() string {
	return fmt.Sprintf(
		"program:            %s\n"+
			"family:             %d specifications in %d trie groups\n"+
			"naive sweep:        %8.2f ms   (one detector run per specification)\n"+
			"prefix sweep:       %8.2f ms   (one unit per group, snapshot-seeded suffixes)\n"+
			"speedup:            %8.2fx\n"+
			"snapshot seeding:   %d hits, %d misses\n"+
			"detector work skipped: %d events; copy-on-write pages copied: %d\n",
		sb.Program, sb.Specs, sb.Groups, sb.NaiveMs, sb.PrefixMs, sb.Speedup,
		sb.SnapshotHits, sb.SnapshotMisses, sb.EventsSkipped, sb.PagesCopied)
}

// measureSweep times f over trials and returns the median duration plus
// the last result (for counter extraction).
func measureSweep(trials int, f func() *rader.CoverageResult) (time.Duration, *rader.CoverageResult) {
	cr := f() // warm pools and the page free lists
	samples := make([]time.Duration, trials)
	for i := range samples {
		start := time.Now()
		cr = f()
		samples[i] = time.Since(start)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return samples[len(samples)/2], cr
}

// MeasureSweep runs the naive-vs-prefix sweep comparison on the
// SweepStress workload, first checking that the two strategies agree on
// the canonical verdict they are being timed to produce.
func MeasureSweep(trials int) (*SweepBench, error) {
	if trials < 1 {
		trials = 3
	}
	const spawns, preamble, body = 7, 2048, 64
	factory := func() func(*cilk.Ctx) {
		return progs.SweepStress(mem.NewAllocator(), spawns, preamble, body)
	}
	run := func(naive bool) *rader.CoverageResult {
		return rader.Sweep(factory, rader.SweepOptions{Workers: 1, Naive: naive})
	}

	naiveCR := run(true)
	prefixCR := run(false)
	if err := sweepsAgree(naiveCR, prefixCR); err != nil {
		return nil, err
	}
	out := &SweepBench{
		Program: fmt.Sprintf("SweepStress(spawns=%d, preamble=%d, body=%d)", spawns, preamble, body),
		Specs:   naiveCR.SpecsRun,
		Groups:  prefixCR.Stats.Groups,
	}
	if out.Specs < 50 {
		return nil, fmt.Errorf("tables: benchmark family has %d specs, want >= 50", out.Specs)
	}

	naiveMed, _ := measureSweep(trials, func() *rader.CoverageResult { return run(true) })
	prefixMed, cr := measureSweep(trials, func() *rader.CoverageResult { return run(false) })
	out.NaiveMs = float64(naiveMed.Nanoseconds()) / 1e6
	out.PrefixMs = float64(prefixMed.Nanoseconds()) / 1e6
	if out.PrefixMs <= 0 {
		return nil, fmt.Errorf("tables: degenerate prefix-sweep measurement")
	}
	out.Speedup = out.NaiveMs / out.PrefixMs
	out.SnapshotHits = cr.Stats.SnapshotHits
	out.SnapshotMisses = cr.Stats.SnapshotMisses
	out.EventsSkipped = cr.Stats.EventsSkipped
	out.PagesCopied = cr.Stats.PagesCopied
	return out, nil
}

// sweepsAgree checks the canonical verdict fields the equivalence
// property test pins, so the benchmark can never time two sweeps that
// disagree about the answer.
func sweepsAgree(a, b *rader.CoverageResult) error {
	if a.SpecsRun != b.SpecsRun {
		return fmt.Errorf("tables: sweeps disagree on SpecsRun: %d vs %d", a.SpecsRun, b.SpecsRun)
	}
	if !reflect.DeepEqual(a.Races, b.Races) {
		return fmt.Errorf("tables: sweeps disagree on races:\n%v\nvs\n%v", a.Races, b.Races)
	}
	if len(a.Failures) != 0 || len(b.Failures) != 0 {
		return fmt.Errorf("tables: benchmark sweep failed: %v / %v", a.Failures, b.Failures)
	}
	if a.TotalReports() != b.TotalReports() {
		return fmt.Errorf("tables: sweeps disagree on total reports: %d vs %d", a.TotalReports(), b.TotalReports())
	}
	if !reflect.DeepEqual(a.ViewReads.Races(), b.ViewReads.Races()) {
		return fmt.Errorf("tables: sweeps disagree on view-read races")
	}
	return nil
}
