// Elision measurement: the numbers behind BENCH_PR8.json. The static
// elision pass (internal/elide) proves trace accesses race-free before
// any detector runs; this harness records each benchmark, measures how
// much of its trace the pass removes, checks the soundness contract
// (filtered verdicts byte-identical to full-trace verdicts under the
// all-detectors fan-out), and times full versus elided replay.
package tables

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/cilk"
	"repro/internal/elide"
	"repro/internal/mem"
	"repro/internal/rader"
	"repro/internal/report"
	"repro/internal/trace"
)

// ElideApp is one benchmark's elision measurement.
type ElideApp struct {
	App            string `json:"app"`
	OriginalEvents int64  `json:"originalEvents"`
	FilteredEvents int64  `json:"filteredEvents"`
	ElidedBytes    int64  `json:"elidedBytes"`
	TraceBytes     int    `json:"traceBytes"`
	// Shrink is original/filtered event count — the replay-work ratio.
	Shrink float64 `json:"shrink"`
	// Parity: the all-detectors verdict of the filtered trace (after
	// ordinal fixup) is byte-identical to the full trace's.
	Parity bool `json:"parity"`
	// AnalyzeMS is the elision pass itself; FullReplayMS and
	// ElidedReplayMS are the all-detectors fan-out over the full stream
	// and over the skip-set fast path (medians over trials).
	AnalyzeMS      float64 `json:"analyzeMs"`
	FullReplayMS   float64 `json:"fullReplayMs"`
	ElidedReplayMS float64 `json:"elidedReplayMs"`
}

// ElideBench is the elision section of BENCH_PR8.json.
type ElideBench struct {
	Scale string     `json:"scale"`
	Apps  []ElideApp `json:"apps"`
	// DedupShrink and FerretShrink are the acceptance headline: the PR's
	// gate demands >= 5x on both.
	DedupShrink  float64 `json:"dedupShrink"`
	FerretShrink float64 `json:"ferretShrink"`
	// Parity is the conjunction over apps — false anywhere means the
	// elision pass is unsound and every other number is moot.
	Parity bool `json:"parity"`
}

// medianMS times f over trials and returns the median in milliseconds.
func medianMS(trials int, f func()) float64 {
	f() // warm pools and intern tables
	samples := make([]time.Duration, trials)
	for i := range samples {
		start := time.Now()
		f()
		samples[i] = time.Since(start)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return float64(samples[len(samples)/2].Nanoseconds()) / 1e6
}

// allDetectorsDoc replays data under the all-detectors fan-out
// (optionally through a skip set) and returns the marshaled Multi
// verdict, fixed up by plan when one is given.
func allDetectorsDoc(data []byte, skip *trace.SkipSet, plan *elide.Plan) ([]byte, error) {
	dets := rader.NewAllDetectors()
	hooks := make([]cilk.Hooks, len(dets))
	for i, d := range dets {
		hooks[i] = d.(cilk.Hooks)
	}
	n, err := trace.ReplayAllBytesSkip(data, skip, nil, hooks...)
	if err != nil {
		return nil, err
	}
	m := report.FromDetectors("", n, dets)
	if plan != nil {
		plan.FixupMulti(m)
	}
	return m.Marshal()
}

// MeasureElide records every benchmark at the given scale under
// steal-all, runs the elision pass, and reports shrink, parity and
// replay timings per app.
func MeasureElide(trials int, scale apps.Scale, scaleName string) (*ElideBench, error) {
	if trials < 1 {
		trials = 3
	}
	out := &ElideBench{Scale: scaleName, Parity: true}
	for _, app := range apps.All() {
		al := mem.NewAllocator()
		inst := app.Build(al, scale)
		var buf bytes.Buffer
		tw := trace.NewWriter(&buf)
		cilk.Run(inst.Prog, cilk.Config{Spec: cilk.StealAll{}, Hooks: tw})
		if err := tw.Close(); err != nil {
			return nil, fmt.Errorf("recording %s: %w", app.Name, err)
		}
		data := buf.Bytes()

		plan, err := elide.Analyze(data)
		if err != nil {
			return nil, fmt.Errorf("analyzing %s: %w", app.Name, err)
		}
		aud := plan.Audit()
		row := ElideApp{
			App:            app.Name,
			OriginalEvents: aud.OriginalEvents,
			FilteredEvents: aud.FilteredEvents,
			ElidedBytes:    aud.ElidedBytes,
			TraceBytes:     len(data),
			Shrink:         aud.Shrink,
		}

		full, err := allDetectorsDoc(data, nil, nil)
		if err != nil {
			return nil, fmt.Errorf("full replay of %s: %w", app.Name, err)
		}
		elided, err := allDetectorsDoc(data, plan.SkipSet(), plan)
		if err != nil {
			return nil, fmt.Errorf("elided replay of %s: %w", app.Name, err)
		}
		row.Parity = bytes.Equal(full, elided)
		out.Parity = out.Parity && row.Parity

		row.AnalyzeMS = medianMS(trials, func() {
			if _, err := elide.Analyze(data); err != nil {
				panic(err)
			}
		})
		row.FullReplayMS = medianMS(trials, func() {
			if _, err := allDetectorsDoc(data, nil, nil); err != nil {
				panic(err)
			}
		})
		skip := plan.SkipSet()
		row.ElidedReplayMS = medianMS(trials, func() {
			if _, err := allDetectorsDoc(data, skip, plan); err != nil {
				panic(err)
			}
		})

		switch app.Name {
		case "dedup":
			out.DedupShrink = row.Shrink
		case "ferret":
			out.FerretShrink = row.Shrink
		}
		out.Apps = append(out.Apps, row)
	}
	return out, nil
}

// Render formats the elision table for the terminal, ending with the
// greppable gate line CI keys on.
func (b *ElideBench) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %10s %10s %8s %7s %10s %10s %10s\n",
		"app", "events", "filtered", "shrink", "parity", "analyze", "full", "elided")
	for _, a := range b.Apps {
		parity := "ok"
		if !a.Parity {
			parity = "FAIL"
		}
		fmt.Fprintf(&sb, "%-10s %10d %10d %7.2fx %7s %8.2fms %8.2fms %8.2fms\n",
			a.App, a.OriginalEvents, a.FilteredEvents, a.Shrink, parity,
			a.AnalyzeMS, a.FullReplayMS, a.ElidedReplayMS)
	}
	fmt.Fprintf(&sb, "elide-gate: dedup %.2fx ferret %.2fx parity %v (target >= 5x, byte-identical verdicts)\n",
		b.DedupShrink, b.FerretShrink, b.Parity)
	return sb.String()
}
