package spplus

import (
	"reflect"
	"testing"

	"repro/internal/cilk"
	"repro/internal/mem"
	"repro/internal/progs"
)

func fig1() func(*cilk.Ctx) {
	return progs.Fig1(mem.NewAllocator(), progs.Fig1Options{})
}

// Snapshot/Restore fidelity: a detector restored from a snapshot taken at
// continuation probe k, fed only the events after probe k, must end in
// exactly the state of a detector that processed the whole run live —
// same races, same totals, same event and accounting counters. This is
// the substrate contract the prefix-sharing sweep builds on.
func TestSnapshotRestoreResumesExactly(t *testing.T) {
	spec := cilk.StealAll{}

	// Reference: one uninterrupted live run.
	ref := New()
	cilk.Run(fig1(), cilk.Config{Spec: spec, Hooks: ref})

	for _, forkAt := range []int{1, 2, 3} {
		// Capture a snapshot at probe forkAt during a second live run.
		donor := New()
		gate := cilk.NewGate(donor, true)
		var snap *Snapshot
		cilk.Run(fig1(), cilk.Config{
			Hooks: gate,
			Spec: cilk.NewGatedSpec(spec, gate, 0, func(ci cilk.ContInfo) {
				if ci.Seq == forkAt {
					snap = donor.Snapshot()
				}
			}),
		})
		if snap == nil {
			t.Fatalf("probe %d never fired", forkAt)
		}
		// The donor kept running past the snapshot; its final report must
		// match the reference (the gate was open throughout).
		if !reflect.DeepEqual(donor.Report().Races(), ref.Report().Races()) {
			t.Fatalf("fork %d: donor diverged from reference", forkAt)
		}

		// Fork: fresh detector, restored state, suppressed prefix, live
		// suffix from probe forkAt on.
		fork := New()
		fork.Restore(snap)
		fgate := cilk.NewGate(fork, false)
		cilk.Run(fig1(), cilk.Config{
			Hooks: fgate,
			Spec:  cilk.NewGatedSpec(spec, fgate, forkAt, nil),
		})
		if fgate.Skipped() == 0 {
			t.Fatalf("fork %d: gate suppressed nothing; the prefix ran live", forkAt)
		}
		if !reflect.DeepEqual(fork.Report().Races(), ref.Report().Races()) {
			t.Errorf("fork %d races:\n%v\nwant:\n%v", forkAt, fork.Report().Races(), ref.Report().Races())
		}
		if fork.Report().Total() != ref.Report().Total() {
			t.Errorf("fork %d total = %d, want %d", forkAt, fork.Report().Total(), ref.Report().Total())
		}
		if fork.Events() != ref.Events() {
			t.Errorf("fork %d event counter = %d, want %d", forkAt, fork.Events(), ref.Events())
		}
		if fork.EventCounts() != ref.EventCounts() {
			t.Errorf("fork %d counts = %+v, want %+v", forkAt, fork.EventCounts(), ref.EventCounts())
		}
		if fork.Stats() != ref.Stats() {
			t.Errorf("fork %d stats = %+v, want %+v", forkAt, fork.Stats(), ref.Stats())
		}
	}
}

// One snapshot must be able to seed many forks: restoring twice and
// driving both forks to completion yields identical, independent results.
func TestSnapshotSeedsManyForks(t *testing.T) {
	spec := cilk.StealAll{}
	donor := New()
	gate := cilk.NewGate(donor, true)
	var snap *Snapshot
	cilk.Run(fig1(), cilk.Config{
		Hooks: gate,
		Spec: cilk.NewGatedSpec(spec, gate, 0, func(ci cilk.ContInfo) {
			if ci.Seq == 2 {
				snap = donor.Snapshot()
			}
		}),
	})

	var reports [][]string
	for i := 0; i < 2; i++ {
		fork := New()
		fork.Restore(snap)
		fgate := cilk.NewGate(fork, false)
		cilk.Run(fig1(), cilk.Config{
			Hooks: fgate,
			Spec:  cilk.NewGatedSpec(spec, fgate, 2, nil),
		})
		var lines []string
		for _, r := range fork.Report().Races() {
			lines = append(lines, r.String())
		}
		reports = append(reports, lines)
	}
	if !reflect.DeepEqual(reports[0], reports[1]) {
		t.Fatalf("two forks of one snapshot disagree:\n%v\nvs\n%v", reports[0], reports[1])
	}
}

// Reset must return a pooled detector to its as-constructed behaviour:
// a run after Reset reports exactly what a fresh detector reports.
func TestDetectorResetReuse(t *testing.T) {
	d := New()
	cilk.Run(fig1(), cilk.Config{Spec: cilk.StealAll{}, Hooks: d})
	first := d.Report().Total()
	if first == 0 {
		t.Fatal("fig1 under StealAll should report races")
	}
	d.Reset()
	if d.Report().Total() != 0 {
		t.Fatal("Reset left races behind")
	}
	cilk.Run(fig1(), cilk.Config{Spec: cilk.StealAll{}, Hooks: d})
	if d.Report().Total() != first {
		t.Fatalf("reused detector reports %d, fresh reported %d", d.Report().Total(), first)
	}
	fresh := New()
	cilk.Run(fig1(), cilk.Config{Spec: cilk.StealAll{}, Hooks: fresh})
	if !reflect.DeepEqual(d.Report().Races(), fresh.Report().Races()) {
		t.Fatal("reused detector's races differ from a fresh detector's")
	}
}
