package spplus

import (
	"strings"
	"testing"

	"repro/internal/cilk"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/progs"
	"repro/internal/spbags"
)

func run(prog func(*cilk.Ctx), spec cilk.StealSpec) *core.Report {
	d := New()
	cilk.Run(prog, cilk.Config{Spec: spec, Hooks: d})
	return d.Report()
}

// --- view-oblivious behaviour: SP+ must match SP-bags ---

func racyProg(al *mem.Allocator) func(*cilk.Ctx) {
	x := al.Alloc("x", 1)
	return func(c *cilk.Ctx) {
		c.Spawn("w", func(c *cilk.Ctx) { c.Store(x.At(0)) })
		c.Load(x.At(0)) // parallel with the spawned write
		c.Sync()
	}
}

func cleanProg(al *mem.Allocator) func(*cilk.Ctx) {
	x := al.Alloc("x", 1)
	return func(c *cilk.Ctx) {
		c.Spawn("w", func(c *cilk.Ctx) { c.Store(x.At(0)) })
		c.Sync()
		c.Load(x.At(0)) // after the sync: in series
	}
}

func TestObliviousRaceDetected(t *testing.T) {
	if run(racyProg(mem.NewAllocator()), nil).Empty() {
		t.Fatal("spawn-write vs continuation-read must race")
	}
	if rep := run(cleanProg(mem.NewAllocator()), nil); !rep.Empty() {
		t.Fatalf("synced program must be clean: %s", rep.Summary())
	}
}

func TestWriteWriteRace(t *testing.T) {
	al := mem.NewAllocator()
	x := al.Alloc("x", 1)
	rep := run(func(c *cilk.Ctx) {
		c.Spawn("w1", func(c *cilk.Ctx) { c.Store(x.At(0)) })
		c.Store(x.At(0))
		c.Sync()
	}, nil)
	if rep.Empty() {
		t.Fatal("parallel writes must race")
	}
}

func TestReadReadNoRace(t *testing.T) {
	al := mem.NewAllocator()
	x := al.Alloc("x", 1)
	rep := run(func(c *cilk.Ctx) {
		c.Spawn("r1", func(c *cilk.Ctx) { c.Load(x.At(0)) })
		c.Load(x.At(0))
		c.Sync()
	}, nil)
	if !rep.Empty() {
		t.Fatalf("parallel reads are not a race: %s", rep.Summary())
	}
}

func TestSiblingSpawnsRace(t *testing.T) {
	al := mem.NewAllocator()
	x := al.Alloc("x", 1)
	rep := run(func(c *cilk.Ctx) {
		c.Spawn("w1", func(c *cilk.Ctx) { c.Store(x.At(0)) })
		c.Spawn("w2", func(c *cilk.Ctx) { c.Store(x.At(0)) })
		c.Sync()
	}, nil)
	if rep.Empty() {
		t.Fatal("two spawned siblings writing one location must race")
	}
}

func TestSpawnThenSyncThenSpawnNoRace(t *testing.T) {
	al := mem.NewAllocator()
	x := al.Alloc("x", 1)
	rep := run(func(c *cilk.Ctx) {
		c.Spawn("w1", func(c *cilk.Ctx) { c.Store(x.At(0)) })
		c.Sync()
		c.Spawn("w2", func(c *cilk.Ctx) { c.Store(x.At(0)) })
		c.Sync()
	}, nil)
	if !rep.Empty() {
		t.Fatalf("sync-separated writes are in series: %s", rep.Summary())
	}
}

func TestCalledChildSerialWithCaller(t *testing.T) {
	al := mem.NewAllocator()
	x := al.Alloc("x", 1)
	rep := run(func(c *cilk.Ctx) {
		c.Call("w", func(c *cilk.Ctx) { c.Store(x.At(0)) })
		c.Load(x.At(0))
	}, nil)
	if !rep.Empty() {
		t.Fatalf("call is serial: %s", rep.Summary())
	}
}

func TestPseudotransitivityReaderKept(t *testing.T) {
	// Reader shadow keeps the first parallel reader: a later serial
	// reader must not hide the race with a subsequent parallel write.
	al := mem.NewAllocator()
	x := al.Alloc("x", 1)
	rep := run(func(c *cilk.Ctx) {
		c.Spawn("r1", func(c *cilk.Ctx) { c.Load(x.At(0)) }) // parallel reader
		c.Load(x.At(0))                                      // serial-with-write reader? no: parallel too
		c.Spawn("w", func(c *cilk.Ctx) { c.Store(x.At(0)) })
		c.Sync()
	}, nil)
	if rep.Empty() {
		t.Fatal("write racing with earlier parallel read must be reported")
	}
}

// TestAgainstSPBagsOnObliviousPrograms: with no reducers SP+ and SP-bags
// must agree verdict-for-verdict, under any steal spec.
func TestAgainstSPBagsOnObliviousPrograms(t *testing.T) {
	progsList := []func(*mem.Allocator) func(*cilk.Ctx){racyProg, cleanProg}
	specs := []cilk.StealSpec{nil, cilk.StealAll{}, cilk.StealAll{Reduce: cilk.ReduceEager}}
	for pi, mk := range progsList {
		for si, spec := range specs {
			plus := run(mk(mem.NewAllocator()), spec)
			bags := spbags.New()
			cilk.Run(mk(mem.NewAllocator()), cilk.Config{Spec: spec, Hooks: bags})
			if plus.Empty() != bags.Report().Empty() {
				t.Errorf("prog %d spec %d: SP+ empty=%v, SP-bags empty=%v",
					pi, si, plus.Empty(), bags.Report().Empty())
			}
		}
	}
}

// --- reducer behaviour ---

func TestCanonicalReducerPatternClean(t *testing.T) {
	// Parallel updates through a reducer, read after sync: race-free
	// under every schedule.
	prog := func(c *cilk.Ctx) {
		r := c.NewReducer("sum", progs.SumMonoid, 0)
		c.ParForGrain("upd", 32, 2, func(c *cilk.Ctx, i int) {
			c.Update(r, func(_ *cilk.Ctx, v any) any { return v.(int) + i })
		})
		_ = c.Value(r)
	}
	for _, spec := range []cilk.StealSpec{
		nil,
		cilk.StealAll{},
		cilk.StealAll{Reduce: cilk.ReduceEager},
		cilk.StealAll{Reduce: cilk.ReduceMiddleFirst},
	} {
		if rep := run(prog, spec); !rep.Empty() {
			t.Fatalf("spec %#v: canonical reducer pattern reported: %s", spec, rep.Summary())
		}
	}
}

func TestFig1NoStealsNoRace(t *testing.T) {
	// The no-steal schedule is the serial execution; SP+ is correct with
	// respect to the given schedule, and serially nothing races.
	al := mem.NewAllocator()
	if rep := run(progs.Fig1(al, progs.Fig1Options{}), nil); !rep.Empty() {
		t.Fatalf("no-steal schedule must be race-free: %s", rep.Summary())
	}
}

func TestFig1RaceUnderSteals(t *testing.T) {
	// With steals, the scan of the shared list races with the view-aware
	// writes of the list reducer (update and/or reduce strands).
	al := mem.NewAllocator()
	rep := run(progs.Fig1(al, progs.Fig1Options{}), cilk.StealAll{})
	if !rep.HasKind(core.Determinacy) {
		t.Fatalf("Figure 1 race missed under StealAll: %s", rep.Summary())
	}
	// The racing second access must be view-aware: it happens inside the
	// reducer machinery (Update append or Reduce concat).
	found := false
	for _, r := range rep.Races() {
		if r.Second.ViewAware {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected a view-aware racing access: %s", rep.Summary())
	}
}

func TestFig1DeepCopyClean(t *testing.T) {
	al := mem.NewAllocator()
	rep := run(progs.Fig1(al, progs.Fig1Options{DeepCopy: true}), cilk.StealAll{})
	if !rep.Empty() {
		t.Fatalf("deep copy fixes the race: %s", rep.Summary())
	}
}

// --- Figure 5 / §6 walk-through ---

// fig5Run executes the Figure 5 schedule with an instrumented load at
// loadSite and a store inside the r1 reduce strand (the Combine whose left
// view begins with "e").
func fig5Run(t *testing.T, loadSite string) *core.Report {
	t.Helper()
	al := mem.NewAllocator()
	l := al.Alloc("l", 1)
	d := New()
	prog := progs.Fig5(
		func(c *cilk.Ctx, site string) {
			if site == loadSite {
				c.Load(l.At(0))
			}
		},
		func(c *cilk.Ctx, left, right []string) {
			if len(left) > 0 && left[0] == "e" { // this Combine is r1
				c.Store(l.At(0))
			}
		},
	)
	cilk.Run(prog, cilk.Config{Spec: progs.Fig5Spec{}, Hooks: d})
	return d.Report()
}

func TestFig5ReduceTreeShape(t *testing.T) {
	// Verify the schedule itself: three steals, three reduces, and the
	// final value lists the tags in serial order.
	var final []string
	prog := progs.Fig5(func(*cilk.Ctx, string) {}, nil)
	res := cilk.Run(func(c *cilk.Ctx) {
		prog(c)
	}, cilk.Config{Spec: progs.Fig5Spec{}})
	if res.Views != 3 {
		t.Fatalf("views = %d, want 3 (β, γ, δ)", res.Views)
	}
	if res.Reduces != 3 {
		t.Fatalf("reduces = %d, want 3 (r0, r1, r2)", res.Reduces)
	}
	_ = final
}

func TestFig5ReduceValueSerialOrder(t *testing.T) {
	var got []string
	wrapped := func(c *cilk.Ctx) {
		progs.Fig5(func(*cilk.Ctx, string) {}, nil)(c)
	}
	_ = wrapped
	// Re-run with a probe that captures the final view via the last
	// Combine (r2 produces the full list).
	var last []string
	prog := progs.Fig5(func(*cilk.Ctx, string) {}, func(_ *cilk.Ctx, l, r []string) {
		last = append(append([]string(nil), l...), r...)
	})
	cilk.Run(prog, cilk.Config{Spec: progs.Fig5Spec{}})
	got = last
	want := "a b c d e f a4"
	if strings.Join(got, " ") != want {
		t.Fatalf("final view = %q, want %q", strings.Join(got, " "), want)
	}
}

func TestFig5R1SameViewNoRace(t *testing.T) {
	// §6: "If r1 ... happens to write to location ℓ last accessed by the
	// first strand in f labeled with γ, SP+ will not report a race, since
	// they now share the same view after the union."
	if rep := fig5Run(t, "f"); !rep.Empty() {
		t.Fatalf("r1 vs f share view γ — no race, got: %s", rep.Summary())
	}
}

func TestFig5R1ParallelViewRace(t *testing.T) {
	// §6: "If the last access of ℓ before r1 is performed by a strand in
	// c, however, a race will be reported, since c is in a different P bag
	// of a."
	if rep := fig5Run(t, "c:1"); rep.Empty() {
		t.Fatal("r1 vs strand in c operate on parallel views — race expected")
	}
}

func TestFig5SPBagsFalsePositive(t *testing.T) {
	// The same-view case that SP+ correctly ignores is reported by
	// SP-bags, which cannot tell views apart — the reason the paper needs
	// SP+ at all.
	al := mem.NewAllocator()
	l := al.Alloc("l", 1)
	d := spbags.New()
	prog := progs.Fig5(
		func(c *cilk.Ctx, site string) {
			if site == "f" {
				c.Load(l.At(0))
			}
		},
		func(c *cilk.Ctx, left, right []string) {
			if len(left) > 0 && left[0] == "e" {
				c.Store(l.At(0))
			}
		},
	)
	cilk.Run(prog, cilk.Config{Spec: progs.Fig5Spec{}, Hooks: d})
	if d.Report().Empty() {
		t.Fatal("SP-bags lacks view IDs and must (wrongly) report the same-view pair")
	}
}

func TestUpdateVsObliviousSameViewNoRace(t *testing.T) {
	// An unstolen continuation's Update shares the spawned child's view;
	// even though they are logically parallel there is no race in this
	// schedule (they run on one worker).
	al := mem.NewAllocator()
	x := al.Alloc("x", 1)
	prog := func(c *cilk.Ctx) {
		r := c.NewReducer("h", progs.SumMonoid, 0)
		c.Spawn("g", func(c *cilk.Ctx) { c.Load(x.At(0)) })
		c.Update(r, func(c *cilk.Ctx, v any) any {
			c.Store(x.At(0)) // view-aware write, same view as g's context
			return v
		})
		c.Sync()
	}
	if rep := run(prog, nil); !rep.Empty() {
		t.Fatalf("same-view update must not race in this schedule: %s", rep.Summary())
	}
	// But once the continuation is stolen the views are parallel: race.
	if rep := run(prog, cilk.StealAll{}); rep.Empty() {
		t.Fatal("stolen continuation's update operates on a parallel view: race expected")
	}
}

func TestObliviousAfterViewAwareWrite(t *testing.T) {
	// A view-aware write followed by a logically-parallel oblivious read:
	// the oblivious read races regardless of views (it has no view).
	al := mem.NewAllocator()
	x := al.Alloc("x", 1)
	prog := func(c *cilk.Ctx) {
		r := c.NewReducer("h", progs.SumMonoid, 0)
		c.Spawn("g", func(c *cilk.Ctx) {
			c.Update(r, func(c *cilk.Ctx, v any) any {
				c.Store(x.At(0))
				return v
			})
		})
		c.Load(x.At(0)) // oblivious, parallel with g's view-aware write
		c.Sync()
	}
	if rep := run(prog, nil); rep.Empty() {
		t.Fatal("oblivious read parallel with view-aware write must race")
	}
}

func TestReduceStrandInSeriesWithReducedBags(t *testing.T) {
	// After the reduce strand runs, later strands of F are in series with
	// it: writing in Reduce then reading after sync is no race.
	al := mem.NewAllocator()
	x := al.Alloc("x", 1)
	m := cilk.MonoidFuncs(
		func(*cilk.Ctx) any { return 0 },
		func(c *cilk.Ctx, l, r any) any {
			c.Store(x.At(0))
			return l.(int) + r.(int)
		},
	)
	prog := func(c *cilk.Ctx) {
		r := c.NewReducer("h", m, 0)
		c.Spawn("g", func(c *cilk.Ctx) {
			c.Update(r, func(_ *cilk.Ctx, v any) any { return v.(int) + 1 })
		})
		c.Update(r, func(_ *cilk.Ctx, v any) any { return v.(int) + 2 })
		c.Sync() // reduce writes x here
		c.Load(x.At(0))
	}
	if rep := run(prog, cilk.StealAll{}); !rep.Empty() {
		t.Fatalf("read after sync is in series with the reduce: %s", rep.Summary())
	}
}

func TestTwoReduceStrandsSequence(t *testing.T) {
	// Two reductions touching the same location in one sync block: they
	// are in series with each other (each reduce joins adjacent views),
	// so no race between them.
	al := mem.NewAllocator()
	x := al.Alloc("x", 1)
	m := cilk.MonoidFuncs(
		func(*cilk.Ctx) any { return 0 },
		func(c *cilk.Ctx, l, r any) any {
			c.Load(x.At(0))
			c.Store(x.At(0))
			return l.(int) + r.(int)
		},
	)
	prog := func(c *cilk.Ctx) {
		r := c.NewReducer("h", m, 0)
		for i := 0; i < 4; i++ {
			c.Spawn("g", func(c *cilk.Ctx) {
				c.Update(r, func(_ *cilk.Ctx, v any) any { return v.(int) + 1 })
			})
		}
		c.Sync()
	}
	if rep := run(prog, cilk.StealAll{}); !rep.Empty() {
		t.Fatalf("successive reduce strands are serialized: %s", rep.Summary())
	}
}

func TestStealSpecChangesVerdict(t *testing.T) {
	// The same program is racy under one spec and clean under another —
	// the reason §7 needs many specs for coverage.
	al := mem.NewAllocator()
	x := al.Alloc("x", 1)
	prog := func(c *cilk.Ctx) {
		r := c.NewReducer("h", progs.SumMonoid, 0)
		c.Spawn("g", func(c *cilk.Ctx) { c.Store(x.At(0)) })
		c.Update(r, func(c *cilk.Ctx, v any) any {
			c.Store(x.At(0))
			return v
		})
		c.Sync()
	}
	if rep := run(prog, nil); !rep.Empty() {
		t.Fatalf("clean under no-steals: %s", rep.Summary())
	}
	if rep := run(prog, cilk.StealAll{}); rep.Empty() {
		t.Fatal("racy under steal-all")
	}
}
