package spplus

import (
	"testing"

	"repro/internal/cilk"
	"repro/internal/mem"
	"repro/internal/progs"
)

// These tests pin down the fine print of Figure 6's access rules: the
// shadow-space update conditions and the view-ID comparisons for each of
// the four access kinds.

func TestCreateIdentityIsViewAware(t *testing.T) {
	// An access inside Create-Identity is view-aware: against a parallel
	// access with a different view it races; with the same view it does
	// not.
	al := mem.NewAllocator()
	x := al.Alloc("x", 1)
	m := cilk.MonoidFuncs(
		func(cc *cilk.Ctx) any {
			cc.Store(x.At(0)) // instrumented identity constructor
			return 0
		},
		func(_ *cilk.Ctx, l, r any) any { return l.(int) + r.(int) },
	)
	prog := func(c *cilk.Ctx) {
		r := c.NewReducer("h", m, 0)
		c.Spawn("g", func(cc *cilk.Ctx) { cc.Load(x.At(0)) })
		// Stolen continuation: first Update triggers Create-Identity,
		// whose store races with g's load (parallel views).
		c.Update(r, func(_ *cilk.Ctx, v any) any { return v.(int) + 1 })
		c.Sync()
	}
	if rep := run(prog, cilk.StealAll{}); rep.Empty() {
		t.Fatal("Create-Identity store on a parallel view must race")
	}
	if rep := run(prog, nil); !rep.Empty() {
		t.Fatalf("same view (no steal): no race, got %s", rep.Summary())
	}
}

func TestAwareReadVsAwareWriteSameView(t *testing.T) {
	// Updates of the same reducer in the same view context are
	// serialized; their accesses never race regardless of frames.
	al := mem.NewAllocator()
	x := al.Alloc("x", 1)
	prog := func(c *cilk.Ctx) {
		r := c.NewReducer("h", progs.SumMonoid, 0)
		touch := func(cc *cilk.Ctx) {
			cc.Update(r, func(ccc *cilk.Ctx, v any) any {
				ccc.Load(x.At(0))
				ccc.Store(x.At(0))
				return v.(int) + 1
			})
		}
		c.Spawn("g1", func(cc *cilk.Ctx) { touch(cc) })
		c.Spawn("g2", func(cc *cilk.Ctx) { touch(cc) })
		c.Sync()
	}
	// No steals: both updates hit the leftmost view — same view, no race.
	if rep := run(prog, nil); !rep.Empty() {
		t.Fatalf("same-view updates must not race: %s", rep.Summary())
	}
	// With steals, g2 runs in a fresh view context: parallel views, race.
	if rep := run(prog, cilk.StealAll{}); rep.Empty() {
		t.Fatal("updates on parallel views touching one location must race")
	}
}

func TestObliviousWriteThenAwareReadSameView(t *testing.T) {
	// e1 oblivious write in the spawned child, e2 view-aware read in the
	// unstolen continuation: same view → not a race in this schedule.
	al := mem.NewAllocator()
	x := al.Alloc("x", 1)
	prog := func(c *cilk.Ctx) {
		r := c.NewReducer("h", progs.SumMonoid, 0)
		c.Spawn("g", func(cc *cilk.Ctx) { cc.Store(x.At(0)) })
		c.Update(r, func(cc *cilk.Ctx, v any) any {
			cc.Load(x.At(0))
			return v
		})
		c.Sync()
	}
	if rep := run(prog, nil); !rep.Empty() {
		t.Fatalf("unstolen: same view, no race; got %s", rep.Summary())
	}
	if rep := run(prog, cilk.StealAll{}); rep.Empty() {
		t.Fatal("stolen: parallel views, race")
	}
}

func TestWriterShadowNotClobberedByAwareSameViewWrite(t *testing.T) {
	// Figure 6's write rule: a view-aware write updates writer(ℓ) only if
	// the previous writer is in an S bag (or the same-view reduce case).
	// Here the parallel oblivious writer must survive an intervening
	// same-view aware write, so the later oblivious reader still races.
	al := mem.NewAllocator()
	x := al.Alloc("x", 1)
	prog := func(c *cilk.Ctx) {
		r := c.NewReducer("h", progs.SumMonoid, 0)
		c.Spawn("w", func(cc *cilk.Ctx) { cc.Store(x.At(0)) }) // parallel writer
		c.Update(r, func(cc *cilk.Ctx, v any) any {
			cc.Store(x.At(0)) // aware write, same view as w's context
			return v
		})
		c.Load(x.At(0)) // oblivious read: races with w
		c.Sync()
	}
	rep := run(prog, nil)
	if rep.Empty() {
		t.Fatal("oblivious read must race with the parallel oblivious write")
	}
}

func TestReduceStrandUpdatesShadowSameView(t *testing.T) {
	// "F is an invocation of Reduce and FindBag(writer).vid == Top.vid →
	// writer = F": the reduce strand takes over the shadow from a
	// same-view predecessor, and a later serial read is then clean.
	al := mem.NewAllocator()
	x := al.Alloc("x", 1)
	m := cilk.MonoidFuncs(
		func(*cilk.Ctx) any { return 0 },
		func(cc *cilk.Ctx, l, r any) any {
			cc.Store(x.At(0))
			return l.(int) + r.(int)
		},
	)
	prog := func(c *cilk.Ctx) {
		h := c.NewReducer("h", m, 0)
		for i := 0; i < 3; i++ {
			c.Spawn("g", func(cc *cilk.Ctx) {
				cc.Update(h, func(_ *cilk.Ctx, v any) any { return v.(int) + 1 })
			})
		}
		c.Sync()        // reduces write x
		c.Load(x.At(0)) // in series with all reduces
		c.Store(x.At(0))
	}
	if rep := run(prog, cilk.StealAll{}); !rep.Empty() {
		t.Fatalf("post-sync accesses are serial with the reduces: %s", rep.Summary())
	}
}

func TestDistinctAddressesIndependent(t *testing.T) {
	al := mem.NewAllocator()
	x := al.Alloc("x", 2)
	prog := func(c *cilk.Ctx) {
		c.Spawn("w", func(cc *cilk.Ctx) { cc.Store(x.At(0)) })
		c.Store(x.At(1)) // different address: no race
		c.Sync()
	}
	if rep := run(prog, cilk.StealAll{}); !rep.Empty() {
		t.Fatalf("distinct addresses must not race: %s", rep.Summary())
	}
}

func TestRaceReportCarriesViewInfo(t *testing.T) {
	al := mem.NewAllocator()
	x := al.Alloc("x", 1)
	prog := func(c *cilk.Ctx) {
		r := c.NewReducer("h", progs.SumMonoid, 0)
		c.Spawn("g", func(cc *cilk.Ctx) { cc.Load(x.At(0)) })
		c.Update(r, func(cc *cilk.Ctx, v any) any {
			cc.Store(x.At(0))
			return v
		})
		c.Sync()
	}
	rep := run(prog, cilk.StealAll{})
	if rep.Empty() {
		t.Fatal("race expected")
	}
	race := rep.Races()[0]
	if !race.Second.ViewAware {
		t.Fatal("second access must be marked view-aware")
	}
	if race.Second.ViewOp != cilk.OpUpdate {
		t.Fatalf("view op = %v, want Update", race.Second.ViewOp)
	}
	if race.Second.VID == 0 {
		t.Fatal("the update ran in a stolen context; VID must be nonzero")
	}
}

func TestDetectorName(t *testing.T) {
	if New().Name() != "sp+" {
		t.Fatal("name")
	}
}
