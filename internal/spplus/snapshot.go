package spplus

import (
	"repro/internal/cilk"
	"repro/internal/core"
	"repro/internal/dsu"
	"repro/internal/mem"
	"repro/internal/obs"
)

// Snapshot is an immutable point-in-time copy of a Detector's full state:
// the frame stack with its S and P bags, the disjoint-set forest, the
// lineage and race report, the four shadow spaces (copy-on-write, so the
// cost is O(pages materialized), not O(addresses)), and the scalar
// counters. One snapshot can seed any number of detectors via Restore —
// the fork operation behind the prefix-sharing coverage sweep.
//
// Snapshots may only be taken at a continuation-probe boundary (outside
// view-aware sections and reduce strands): that is where the sweep's trie
// branch points live, and it is the only place the detector has no
// transient mid-operation state.
type Snapshot struct {
	forest  *dsu.Forest
	stack   []*frameRec
	current int // index into stack, -1 when no frame has entered

	reader   *mem.ShadowSnap
	writer   *mem.ShadowSnap
	readerEv *mem.ShadowSnap
	writerEv *mem.ShadowSnap

	lin    core.Lineage
	report *core.Report
	counts obs.EventCounts
	events int64
}

// cloneBag returns the memoized deep copy of b (nil-safe).
func cloneBag(memo map[*bag]*bag, b *bag) *bag {
	if b == nil {
		return nil
	}
	if c, ok := memo[b]; ok {
		return c
	}
	c := &bag{kind: b.kind, vid: b.vid, root: b.root}
	memo[b] = c
	return c
}

// cloneFrames deep-copies a frame stack, memoizing bag copies so shared
// references stay shared on the other side.
func cloneFrames(stack []*frameRec, memo map[*bag]*bag) []*frameRec {
	return cloneFramesInto(make([]*frameRec, 0, len(stack)), stack, memo)
}

// cloneFramesInto is cloneFrames appending into a recycled slice.
func cloneFramesInto(out []*frameRec, stack []*frameRec, memo map[*bag]*bag) []*frameRec {
	for _, fr := range stack {
		nfr := &frameRec{id: fr.id, label: fr.label, elem: fr.elem, s: cloneBag(memo, fr.s)}
		nfr.pstack = make([]*bag, len(fr.pstack))
		for j, b := range fr.pstack {
			nfr.pstack[j] = cloneBag(memo, b)
		}
		out = append(out, nfr)
	}
	return out
}

// remapPayloads rewrites every *bag payload of f through the memo so the
// forest references the cloned bags, never the source detector's.
func remapPayloads(f *dsu.Forest, memo map[*bag]*bag) {
	payloads := f.Payloads()
	for i, p := range payloads {
		if b, ok := p.(*bag); ok {
			payloads[i] = cloneBag(memo, b)
		}
	}
}

// Snapshot captures the detector's state. It panics if called inside a
// view-aware section or reduce strand — the sweep only snapshots at
// continuation probes, where neither can be live.
func (d *Detector) Snapshot() *Snapshot {
	return d.SnapshotInto(nil)
}

// SnapshotInto is Snapshot reusing a retired snapshot's containers: the
// frame-stack slice, the forest's backing arrays, the shadow page maps and
// the report's storage. The work-stealing sweep refcounts handed-off
// snapshots and, once every seeded thief has restored, recycles the struct
// through a per-worker free list — the capture itself then allocates only
// the cloned bags. Passing nil allocates fresh, exactly like Snapshot.
// Recycling is safe because Restore copies state out of the snapshot; the
// only aliased storage is the copy-on-write page buffers, which are
// immutable once shared and are never reused here.
func (d *Detector) SnapshotInto(s *Snapshot) *Snapshot {
	if d.vaDepth != 0 || d.inReduce {
		panic(core.Violatef("spplus", core.StreamState, d.currentFrameID(),
			"snapshot inside a view-aware or reduce strand (vaDepth=%d inReduce=%v)",
			d.vaDepth, d.inReduce))
	}
	if s == nil {
		s = &Snapshot{}
	}
	memo := make(map[*bag]*bag)
	s.stack = cloneFramesInto(s.stack[:0], d.stack, memo)
	s.current = -1
	if s.forest == nil {
		s.forest = d.forest.Clone()
	} else {
		s.forest.CopyFrom(d.forest)
	}
	remapPayloads(s.forest, memo)
	s.reader = d.reader.SnapshotInto(s.reader)
	s.writer = d.writer.SnapshotInto(s.writer)
	s.readerEv = d.readerEv.SnapshotInto(s.readerEv)
	s.writerEv = d.writerEv.SnapshotInto(s.writerEv)
	if s.report == nil {
		s.report = d.report.Clone()
	} else {
		s.report.CopyFrom(&d.report)
	}
	s.counts = d.counts
	s.events = d.events
	for i, fr := range d.stack {
		if fr == d.current {
			s.current = i
		}
	}
	s.lin.CopyFrom(&d.lin)
	return s
}

// Restore replaces the detector's state with an independent copy of the
// snapshot's, as if the detector had processed exactly the event prefix
// the snapshot was taken after. Restoring reuses the detector's existing
// allocations where possible, so pooled detectors fork cheaply.
func (d *Detector) Restore(s *Snapshot) {
	memo := make(map[*bag]*bag)
	d.stack = append(d.stack[:0], cloneFrames(s.stack, memo)...)
	d.forest.CopyFrom(s.forest)
	remapPayloads(d.forest, memo)
	d.current = nil
	if s.current >= 0 {
		d.current = d.stack[s.current]
	}
	d.reader.Restore(s.reader)
	d.writer.Restore(s.writer)
	d.readerEv.Restore(s.readerEv)
	d.writerEv.Restore(s.writerEv)
	d.lin.CopyFrom(&s.lin)
	d.report.CopyFrom(s.report)
	d.vaDepth = 0
	d.vaOp = 0
	d.vaReducer = nil
	d.inReduce = false
	d.reduceVID = 0
	d.reduceElem = dsu.None
	d.counts = s.counts
	d.events = s.events
}

// Reset returns the detector to its freshly constructed state, keeping
// allocated capacity (forest slices, shadow pages, lineage and report
// backing arrays) so pooled sweep units reuse memory across runs. The
// shadow PagesCopied counters survive as lifetime totals.
func (d *Detector) Reset() {
	d.forest.Reset()
	d.stack = d.stack[:0]
	d.reader.Reset()
	d.writer.Reset()
	d.readerEv.Reset()
	d.writerEv.Reset()
	d.lin.Reset()
	d.report.Reset()
	d.current = nil
	d.vaDepth = 0
	d.vaOp = 0
	d.vaReducer = nil
	d.inReduce = false
	d.reduceVID = 0
	d.reduceElem = dsu.None
	d.counts = obs.EventCounts{}
	d.events = 0
}

// PagesCopied totals the copy-on-write page clones across the detector's
// four shadow spaces — the sweep's cost-of-forking metric.
func (d *Detector) PagesCopied() uint64 {
	return d.reader.PagesCopied() + d.writer.PagesCopied() +
		d.readerEv.PagesCopied() + d.writerEv.PagesCopied()
}

// PagesPooled totals the page buffers parked on the four shadow free
// lists, the residency behind the raderd_sweep_pages_pooled gauge.
func (d *Detector) PagesPooled() int {
	return d.reader.PagesPooled() + d.writer.PagesPooled() +
		d.readerEv.PagesPooled() + d.writerEv.PagesPooled()
}

// Events reports the detector-relative ordinal of the last processed
// event, used by sweep accounting.
func (d *Detector) Events() int64 { return d.events }

func (d *Detector) currentFrameID() cilk.FrameID {
	if d.current == nil {
		return cilk.NoFrame
	}
	return d.current.id
}
