package spplus

import (
	"repro/internal/cilk"
	"repro/internal/core"
	"repro/internal/dsu"
	"repro/internal/mem"
	"repro/internal/obs"
)

// Snapshot is an immutable point-in-time copy of a Detector's full state:
// the frame stack with its S and P bags, the disjoint-set forest, the
// lineage and race report, the four shadow spaces (copy-on-write, so the
// cost is O(pages materialized), not O(addresses)), and the scalar
// counters. One snapshot can seed any number of detectors via Restore —
// the fork operation behind the prefix-sharing coverage sweep.
//
// Snapshots may only be taken at a continuation-probe boundary (outside
// view-aware sections and reduce strands): that is where the sweep's trie
// branch points live, and it is the only place the detector has no
// transient mid-operation state.
type Snapshot struct {
	forest  *dsu.Forest
	stack   []*frameRec
	current int // index into stack, -1 when no frame has entered

	reader   *mem.ShadowSnap
	writer   *mem.ShadowSnap
	readerEv *mem.ShadowSnap
	writerEv *mem.ShadowSnap

	lin    core.Lineage
	report *core.Report
	counts obs.EventCounts
	events int64
}

// cloneBag returns the memoized deep copy of b (nil-safe).
func cloneBag(memo map[*bag]*bag, b *bag) *bag {
	if b == nil {
		return nil
	}
	if c, ok := memo[b]; ok {
		return c
	}
	c := &bag{kind: b.kind, vid: b.vid, root: b.root}
	memo[b] = c
	return c
}

// cloneFrames deep-copies a frame stack, memoizing bag copies so shared
// references stay shared on the other side.
func cloneFrames(stack []*frameRec, memo map[*bag]*bag) []*frameRec {
	out := make([]*frameRec, len(stack))
	for i, fr := range stack {
		nfr := &frameRec{id: fr.id, label: fr.label, elem: fr.elem, s: cloneBag(memo, fr.s)}
		nfr.pstack = make([]*bag, len(fr.pstack))
		for j, b := range fr.pstack {
			nfr.pstack[j] = cloneBag(memo, b)
		}
		out[i] = nfr
	}
	return out
}

// remapPayloads rewrites every *bag payload of f through the memo so the
// forest references the cloned bags, never the source detector's.
func remapPayloads(f *dsu.Forest, memo map[*bag]*bag) {
	payloads := f.Payloads()
	for i, p := range payloads {
		if b, ok := p.(*bag); ok {
			payloads[i] = cloneBag(memo, b)
		}
	}
}

// Snapshot captures the detector's state. It panics if called inside a
// view-aware section or reduce strand — the sweep only snapshots at
// continuation probes, where neither can be live.
func (d *Detector) Snapshot() *Snapshot {
	if d.vaDepth != 0 || d.inReduce {
		panic(core.Violatef("spplus", core.StreamState, d.currentFrameID(),
			"snapshot inside a view-aware or reduce strand (vaDepth=%d inReduce=%v)",
			d.vaDepth, d.inReduce))
	}
	memo := make(map[*bag]*bag)
	s := &Snapshot{
		stack:    cloneFrames(d.stack, memo),
		current:  -1,
		forest:   d.forest.Clone(),
		reader:   d.reader.Snapshot(),
		writer:   d.writer.Snapshot(),
		readerEv: d.readerEv.Snapshot(),
		writerEv: d.writerEv.Snapshot(),
		report:   d.report.Clone(),
		counts:   d.counts,
		events:   d.events,
	}
	remapPayloads(s.forest, memo)
	for i, fr := range d.stack {
		if fr == d.current {
			s.current = i
		}
	}
	s.lin.CopyFrom(&d.lin)
	return s
}

// Restore replaces the detector's state with an independent copy of the
// snapshot's, as if the detector had processed exactly the event prefix
// the snapshot was taken after. Restoring reuses the detector's existing
// allocations where possible, so pooled detectors fork cheaply.
func (d *Detector) Restore(s *Snapshot) {
	memo := make(map[*bag]*bag)
	d.stack = append(d.stack[:0], cloneFrames(s.stack, memo)...)
	d.forest.CopyFrom(s.forest)
	remapPayloads(d.forest, memo)
	d.current = nil
	if s.current >= 0 {
		d.current = d.stack[s.current]
	}
	d.reader.Restore(s.reader)
	d.writer.Restore(s.writer)
	d.readerEv.Restore(s.readerEv)
	d.writerEv.Restore(s.writerEv)
	d.lin.CopyFrom(&s.lin)
	d.report.CopyFrom(s.report)
	d.vaDepth = 0
	d.vaOp = 0
	d.vaReducer = nil
	d.inReduce = false
	d.reduceVID = 0
	d.reduceElem = dsu.None
	d.counts = s.counts
	d.events = s.events
}

// Reset returns the detector to its freshly constructed state, keeping
// allocated capacity (forest slices, shadow pages, lineage and report
// backing arrays) so pooled sweep units reuse memory across runs. The
// shadow PagesCopied counters survive as lifetime totals.
func (d *Detector) Reset() {
	d.forest.Reset()
	d.stack = d.stack[:0]
	d.reader.Reset()
	d.writer.Reset()
	d.readerEv.Reset()
	d.writerEv.Reset()
	d.lin.Reset()
	d.report.Reset()
	d.current = nil
	d.vaDepth = 0
	d.vaOp = 0
	d.vaReducer = nil
	d.inReduce = false
	d.reduceVID = 0
	d.reduceElem = dsu.None
	d.counts = obs.EventCounts{}
	d.events = 0
}

// PagesCopied totals the copy-on-write page clones across the detector's
// four shadow spaces — the sweep's cost-of-forking metric.
func (d *Detector) PagesCopied() uint64 {
	return d.reader.PagesCopied() + d.writer.PagesCopied() +
		d.readerEv.PagesCopied() + d.writerEv.PagesCopied()
}

// Events reports the detector-relative ordinal of the last processed
// event, used by sweep accounting.
func (d *Detector) Events() int64 { return d.events }

func (d *Detector) currentFrameID() cilk.FrameID {
	if d.current == nil {
		return cilk.NoFrame
	}
	return d.current.id
}
