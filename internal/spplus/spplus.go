// Package spplus implements the SP+ algorithm (§5–§6 of the paper), which
// detects determinacy races in Cilk computations that use reducer
// hyperobjects. SP+ extends SP-bags in two ways:
//
//  1. Each function's single P bag becomes a *stack* of P bags, one per
//     unreduced parallel view of the function's current sync block. Each P
//     bag carries the view ID minted when the corresponding continuation
//     was stolen (per the steal specification); the P bags partition the
//     function's parallel completed descendants by the view their initial
//     strands share.
//  2. Memory-access checks distinguish view-oblivious from view-aware
//     strands. For a view-oblivious access, logical parallelism alone is a
//     race, exactly as in SP-bags. For a view-aware access (inside Update,
//     Create-Identity or Reduce), a race additionally requires the two
//     strands to operate on *parallel views* — their view IDs must differ —
//     because two strands sharing a view are necessarily executed by one
//     worker between steals and thus serialized in this schedule (§5).
//
// Executing a stolen continuation pushes a fresh P bag with a new view ID;
// executing a Reduce pops the dominated view's P bag and unions it into the
// dominating one *before* the user Reduce code runs, so the reduce strand's
// accesses are in series with the descendants in both bags and carry the
// surviving view ID (§6). At a sync all parallel views have been reduced
// and a single P bag remains, restoring the SP-bags invariant.
//
// Given the steal specification, SP+ reports a determinacy race iff the
// fixed execution contains one (§6), in time O((T + Mτ)·α(v,v)) for a
// program with running time T, M specified steals and worst-case reduce
// cost τ (Theorem 5).
package spplus

import (
	"repro/internal/cilk"
	"repro/internal/core"
	"repro/internal/dsu"
	"repro/internal/mem"
	"repro/internal/obs"
)

type bagKind int8

const (
	kindS bagKind = iota
	kindP
)

// bag is a disjoint set with a kind and a view ID. A P bag's view ID is set
// at creation and preserved across unions into it, mirroring Figure 6's
// MakeBag note.
type bag struct {
	kind bagKind
	vid  cilk.ViewID
	root dsu.Elem
}

type frameRec struct {
	id     cilk.FrameID
	label  string
	elem   dsu.Elem
	s      *bag
	pstack []*bag
}

func (r *frameRec) topP() *bag { return r.pstack[len(r.pstack)-1] }

// Detector runs SP+ over the cilk event stream of one run.
type Detector struct {
	forest *dsu.Forest
	stack  []*frameRec
	reader *mem.Shadow
	writer *mem.Shadow
	lin    core.Lineage
	report core.Report

	current *frameRec
	// view-aware section state
	vaDepth   int
	vaOp      cilk.ViewOp
	vaReducer *cilk.Reducer
	// inReduce marks that the executing strand is a runtime Reduce
	// invocation; reduceVID is the surviving view ID of that reduction,
	// which is the strand's view context (Top(F.P).vid in Figure 6's
	// top-pair case, generalized for non-top adjacent reductions).
	// reduceElem is the reduce invocation's own ID: the paper treats each
	// Reduce as a function instantiation of its own, and its ID must live
	// in the merged P bag — the reduce strand is in series with the
	// descendants it joins but parallel to the frame's newer view
	// contexts, so parking it in the frame's S bag would wrongly
	// serialize it with everything that follows.
	inReduce   bool
	reduceVID  cilk.ViewID
	reduceElem dsu.Elem

	// readerEv/writerEv shadow the same locations with the detector-relative
	// event ordinal of the recorded access, so a race report can point back
	// into the stream. Ordinals are truncated to int32 — adequate for any
	// trace the shadow space itself can hold.
	readerEv *mem.Shadow
	writerEv *mem.Shadow

	counts obs.EventCounts
	events int64 // ordinal of the event being processed (1-based)
}

// New returns a fresh SP+ detector.
func New() *Detector {
	return &Detector{
		forest:   dsu.NewForest(256),
		reader:   mem.NewShadow(int32(dsu.None)),
		writer:   mem.NewShadow(int32(dsu.None)),
		readerEv: mem.NewShadow(0),
		writerEv: mem.NewShadow(0),
	}
}

// Name implements core.Detector.
func (d *Detector) Name() string { return "sp+" }

// Report implements core.Detector.
func (d *Detector) Report() *core.Report { return &d.report }

func (d *Detector) addToBag(b *bag, e dsu.Elem) {
	d.counts.BagOps++
	if b.root == dsu.None {
		b.root = e
		d.forest.SetPayload(e, b)
		return
	}
	b.root = d.forest.Union(b.root, e)
}

func (d *Detector) unionInto(dst, src *bag) {
	if src.root == dsu.None {
		return
	}
	d.counts.BagOps++
	if dst.root == dsu.None {
		dst.root = src.root
		d.forest.SetPayload(src.root, dst)
	} else {
		dst.root = d.forest.Union(dst.root, src.root)
	}
	src.root = dsu.None
}

func (d *Detector) top() *frameRec { return d.stack[len(d.stack)-1] }

func (d *Detector) bagOf(e dsu.Elem) *bag { return d.forest.Payload(e).(*bag) }

// ProgramStart implements cilk.Hooks.
func (d *Detector) ProgramStart(*cilk.Frame) {}

// ProgramEnd implements cilk.Hooks.
func (d *Detector) ProgramEnd(*cilk.Frame) {}

// FrameEnter implements Figure 6's "F spawns or calls G": G's S bag
// contains G and inherits the parent's current view ID; G's P stack starts
// with one empty bag of the same view ID.
func (d *Detector) FrameEnter(f *cilk.Frame) {
	d.events++
	d.counts.FrameEnters++
	var inherit cilk.ViewID
	if len(d.stack) > 0 {
		inherit = d.top().topP().vid
	}
	rec := &frameRec{id: f.ID, label: f.Label}
	rec.s = &bag{kind: kindS, vid: inherit, root: dsu.None}
	rec.pstack = []*bag{{kind: kindP, vid: inherit, root: dsu.None}}
	rec.elem = d.forest.MakeSet(nil)
	d.addToBag(rec.s, rec.elem)
	parent := core.NoParent
	if len(d.stack) > 0 {
		parent = int32(d.top().elem)
	}
	d.lin.Add(int32(rec.elem), f.ID, f.Label, parent)
	d.stack = append(d.stack, rec)
	d.current = rec
}

// FrameReturn implements "spawned G returns" (Top(F.P) ∪= G.S) and
// "called G returns" (F.S ∪= G.S).
func (d *Detector) FrameReturn(g, f *cilk.Frame) {
	d.events++
	d.counts.FrameReturns++
	if len(d.stack) < 2 {
		panic(core.Violatef("spplus", core.StreamOrder, g.ID,
			"return of frame %d with %d frames on the stack", g.ID, len(d.stack)))
	}
	grec := d.top()
	if grec.id != g.ID {
		panic(core.Violatef("spplus", core.StreamOrder, g.ID,
			"event order violation: return %d, top %d", g.ID, grec.id))
	}
	if len(grec.pstack) != 1 {
		panic(core.Violatef("spplus", core.StreamState, g.ID,
			"%v returned with %d P bags", g, len(grec.pstack)))
	}
	d.stack = d.stack[:len(d.stack)-1]
	frec := d.top()
	if g.Spawned {
		d.unionInto(frec.topP(), grec.s)
	} else {
		d.unionInto(frec.s, grec.s)
	}
	d.current = frec
}

// Sync implements "F syncs": the single remaining P bag's contents move
// into F.S, and a fresh P bag with F.S's view ID replaces it.
func (d *Detector) Sync(f *cilk.Frame) {
	d.events++
	d.counts.Syncs++
	if len(d.stack) == 0 {
		panic(core.Violatef("spplus", core.StreamOrder, f.ID, "sync before any frame entered"))
	}
	rec := d.top()
	if len(rec.pstack) != 1 {
		panic(core.Violatef("spplus", core.StreamState, f.ID,
			"sync with %d P bags; reduces must precede sync", len(rec.pstack)))
	}
	d.unionInto(rec.s, rec.pstack[0])
	rec.pstack[0] = &bag{kind: kindP, vid: rec.s.vid, root: dsu.None}
}

// ContinuationStolen implements "F executes a stolen continuation": push a
// fresh P bag carrying the new view ID.
func (d *Detector) ContinuationStolen(f *cilk.Frame, newVID cilk.ViewID) {
	d.events++
	d.counts.Steals++
	if len(d.stack) == 0 {
		panic(core.Violatef("spplus", core.StreamOrder, f.ID, "stolen continuation before any frame entered"))
	}
	rec := d.top()
	rec.pstack = append(rec.pstack, &bag{kind: kindP, vid: newVID, root: dsu.None})
}

// ReduceStart implements "F executes Reduce": the dominated view's P bag is
// popped and unioned into the dominating view's bag, whose view ID is
// preserved. This happens before the user Reduce code runs, so the reduce
// strand is in series with the descendants in both bags. The executor may
// reduce a non-top adjacent pair (ReduceMiddleFirst); the bags are located
// by their view IDs.
func (d *Detector) ReduceStart(f *cilk.Frame, keepVID, dieVID cilk.ViewID) {
	d.events++
	d.counts.Reduces++
	if len(d.stack) == 0 {
		panic(core.Violatef("spplus", core.StreamOrder, f.ID, "reduce before any frame entered"))
	}
	rec := d.top()
	idx := -1
	for i := len(rec.pstack) - 1; i > 0; i-- {
		if rec.pstack[i].vid == dieVID && rec.pstack[i-1].vid == keepVID {
			idx = i
			break
		}
	}
	if idx < 0 {
		panic(core.Violatef("spplus", core.StreamState, f.ID,
			"reduce of unknown view pair (%d,%d)", keepVID, dieVID))
	}
	d.unionInto(rec.pstack[idx-1], rec.pstack[idx])
	rec.pstack = append(rec.pstack[:idx], rec.pstack[idx+1:]...)
	d.inReduce = true
	d.reduceVID = keepVID
	// The reduce invocation's own ID joins the merged bag: in series with
	// everything the reduction joins, parallel to the frame's other views.
	d.reduceElem = d.forest.MakeSet(nil)
	d.addToBag(rec.pstack[idx-1], d.reduceElem)
	d.lin.Add(int32(d.reduceElem), f.ID, f.Label+"/reduce", int32(rec.elem))
}

// ReduceEnd implements cilk.Hooks.
func (d *Detector) ReduceEnd(f *cilk.Frame) {
	d.events++
	d.inReduce = false
	d.reduceElem = dsu.None
}

// ViewAwareBegin implements cilk.Hooks: accesses until ViewAwareEnd come
// from a view-aware strand.
func (d *Detector) ViewAwareBegin(f *cilk.Frame, op cilk.ViewOp, r *cilk.Reducer) {
	d.events++
	d.counts.ViewAwares++
	d.vaDepth++
	d.vaOp = op
	d.vaReducer = r
}

// ViewAwareEnd implements cilk.Hooks.
func (d *Detector) ViewAwareEnd(f *cilk.Frame, op cilk.ViewOp, r *cilk.Reducer) {
	d.events++
	d.vaDepth--
}

// ReducerCreate implements cilk.Hooks; reducer-reads are the Peer-Set
// algorithm's concern, not SP+'s.
func (d *Detector) ReducerCreate(*cilk.Frame, *cilk.Reducer) {}

// ReducerRead implements cilk.Hooks.
func (d *Detector) ReducerRead(*cilk.Frame, *cilk.Reducer) {}

// currentVID is the view ID of the executing strand's view context: the
// surviving view for a reduce strand, the top P bag's view otherwise.
func (d *Detector) currentVID() cilk.ViewID {
	if d.inReduce {
		return d.reduceVID
	}
	return d.current.topP().vid
}

// curElem is the ID recorded in the shadow spaces for the executing
// strand: the reduce invocation's own ID inside a Reduce, the enclosing
// function's otherwise.
func (d *Detector) curElem() dsu.Elem {
	if d.inReduce {
		return d.reduceElem
	}
	return d.current.elem
}

func (d *Detector) access(op core.AccessOp) core.Access {
	e := int32(d.curElem())
	return core.Access{
		Frame: d.lin.Frame(e), Label: d.lin.Label(e), Path: d.lin.Path(e), Op: op,
		ViewAware: d.vaDepth > 0, ViewOp: d.vaOp, VID: d.currentVID(),
	}
}

func (d *Detector) prior(e dsu.Elem, op core.AccessOp) core.Access {
	return core.Access{
		Frame: d.lin.Frame(int32(e)), Label: d.lin.Label(int32(e)),
		Path: d.lin.Path(int32(e)), Op: op,
	}
}

// Load implements the two read rules of Figure 6.
func (d *Detector) Load(f *cilk.Frame, a mem.Addr) {
	d.events++
	d.counts.Loads++
	if d.current == nil {
		panic(core.Violatef("spplus", core.StreamOrder, f.ID, "memory access before any frame entered"))
	}
	d.counts.ShadowLookups += 2
	if d.vaDepth == 0 {
		d.loadOblivious(a)
	} else {
		d.loadAware(a)
	}
}

// Store implements the two write rules of Figure 6.
func (d *Detector) Store(f *cilk.Frame, a mem.Addr) {
	d.events++
	d.counts.Stores++
	if d.current == nil {
		panic(core.Violatef("spplus", core.StreamOrder, f.ID, "memory access before any frame entered"))
	}
	d.counts.ShadowLookups += 2
	if d.vaDepth == 0 {
		d.storeOblivious(a)
	} else {
		d.storeAware(a)
	}
}

func (d *Detector) loadOblivious(a mem.Addr) {
	if w := dsu.Elem(d.writer.Get(a)); w != dsu.None && d.bagOf(w).kind == kindP {
		d.report.Add(core.Race{
			Kind: core.Determinacy, Addr: a,
			First:  d.prior(w, core.OpWrite),
			Second: d.access(core.OpRead),
			Prov:   d.prov(d.writerEv.Get(a), "writer in P-bag"),
		})
	}
	if r := dsu.Elem(d.reader.Get(a)); r == dsu.None || d.bagOf(r).kind == kindS {
		d.reader.Set(a, int32(d.curElem()))
		d.readerEv.Set(a, int32(d.events))
	}
}

func (d *Detector) storeOblivious(a mem.Addr) {
	if r := dsu.Elem(d.reader.Get(a)); r != dsu.None && d.bagOf(r).kind == kindP {
		d.report.Add(core.Race{
			Kind: core.Determinacy, Addr: a,
			First:  d.prior(r, core.OpRead),
			Second: d.access(core.OpWrite),
			Prov:   d.prov(d.readerEv.Get(a), "reader in P-bag"),
		})
	}
	w := dsu.Elem(d.writer.Get(a))
	if w != dsu.None && d.bagOf(w).kind == kindP {
		d.report.Add(core.Race{
			Kind: core.Determinacy, Addr: a,
			First:  d.prior(w, core.OpWrite),
			Second: d.access(core.OpWrite),
			Prov:   d.prov(d.writerEv.Get(a), "writer in P-bag"),
		})
	}
	if w == dsu.None || d.bagOf(w).kind == kindS {
		d.writer.Set(a, int32(d.curElem()))
		d.writerEv.Set(a, int32(d.events))
	}
}

func (d *Detector) loadAware(a mem.Addr) {
	vid := d.currentVID()
	if w := dsu.Elem(d.writer.Get(a)); w != dsu.None {
		if b := d.bagOf(w); b.kind == kindP && b.vid != vid {
			d.report.Add(core.Race{
				Kind: core.Determinacy, Addr: a,
				First:  d.prior(w, core.OpWrite),
				Second: d.access(core.OpRead),
				Prov:   d.prov(d.writerEv.Get(a), "writer on parallel view"),
			})
		}
	}
	r := dsu.Elem(d.reader.Get(a))
	if r == dsu.None || d.bagOf(r).kind == kindS ||
		(d.inReduce && d.bagOf(r).vid == vid) {
		d.reader.Set(a, int32(d.curElem()))
		d.readerEv.Set(a, int32(d.events))
	}
}

func (d *Detector) storeAware(a mem.Addr) {
	vid := d.currentVID()
	if r := dsu.Elem(d.reader.Get(a)); r != dsu.None {
		if b := d.bagOf(r); b.kind == kindP && b.vid != vid {
			d.report.Add(core.Race{
				Kind: core.Determinacy, Addr: a,
				First:  d.prior(r, core.OpRead),
				Second: d.access(core.OpWrite),
				Prov:   d.prov(d.readerEv.Get(a), "reader on parallel view"),
			})
		}
	}
	w := dsu.Elem(d.writer.Get(a))
	if w != dsu.None {
		if b := d.bagOf(w); b.kind == kindP && b.vid != vid {
			d.report.Add(core.Race{
				Kind: core.Determinacy, Addr: a,
				First:  d.prior(w, core.OpWrite),
				Second: d.access(core.OpWrite),
				Prov:   d.prov(d.writerEv.Get(a), "writer on parallel view"),
			})
		}
	}
	if w == dsu.None || d.bagOf(w).kind == kindS ||
		(d.inReduce && d.bagOf(w).vid == vid) {
		d.writer.Set(a, int32(d.curElem()))
		d.writerEv.Set(a, int32(d.events))
	}
}

var (
	_ core.Detector = (*Detector)(nil)
	_ cilk.Hooks    = (*Detector)(nil)
)

// prov assembles a Provenance for a race firing at the current event
// against a prior access recorded in an ordinal shadow.
func (d *Detector) prov(firstEv int32, relation string) core.Provenance {
	return core.Provenance{FirstEvent: int64(firstEv), SecondEvent: d.events, Relation: relation}
}

// Stats implements core.StatsProvider: the disjoint-set accounting behind
// the O((T+Mτ)·α(v,v)) bound of Theorem 5.
func (d *Detector) Stats() core.Stats {
	finds, unions := d.forest.Stats()
	return core.Stats{Elems: d.forest.Len(), Finds: finds, Unions: unions}
}

// EventCounts implements core.EventCountsProvider.
func (d *Detector) EventCounts() obs.EventCounts { return d.counts }
