// Package dag records an executed Cilk computation as its (performance)
// dag — strands and parallel control dependencies, including the reduce
// strands and reduce-tree dependencies that executing a steal specification
// introduces (§5, Figure 5) — and provides brute-force oracles over it:
// pairwise logical parallelism by reachability, peer sets (§3), view-read
// races, and determinacy races per the §5 conditions. The oracles are
// quadratic and meant for property-testing the Peer-Set and SP+ detectors
// on small programs, not for production detection.
package dag

import (
	"fmt"

	"repro/internal/cilk"
	"repro/internal/mem"
)

// Strand is one vertex of the recorded dag.
type Strand struct {
	ID       int
	Frame    cilk.FrameID
	Label    string
	VID      cilk.ViewID // view context of the strand
	IsReduce bool        // strand executes a runtime Reduce operation
}

// Access is one recorded memory access.
type Access struct {
	Strand    int
	Addr      mem.Addr
	Write     bool
	ViewAware bool
	Seq       int // global serial order
}

// ReducerRead is one recorded reducer-read (create, set-value, get-value).
type ReducerRead struct {
	Strand  int
	Reducer *cilk.Reducer
	Seq     int
}

// Dag is the recorded computation.
type Dag struct {
	Strands []Strand
	Out     [][]int // adjacency lists; every edge goes forward in ID order
	Acc     []Access
	Reads   []ReducerRead

	reach      []bitset // lazily computed reachability closure
	schedReach []bitset // closure including same-view serialization
}

// Edge adds a dependency u → v.
func (d *Dag) edge(u, v int) {
	if u < 0 || v < 0 {
		return
	}
	if u >= v {
		panic(fmt.Sprintf("dag: non-forward edge %d -> %d", u, v))
	}
	d.Out[u] = append(d.Out[u], v)
	d.reach = nil
	d.schedReach = nil
}

func (d *Dag) newStrand(frame cilk.FrameID, label string, vid cilk.ViewID, isReduce bool) int {
	id := len(d.Strands)
	d.Strands = append(d.Strands, Strand{ID: id, Frame: frame, Label: label, VID: vid, IsReduce: isReduce})
	d.Out = append(d.Out, nil)
	d.reach = nil
	d.schedReach = nil
	return id
}

type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (i % 64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<(i%64)) != 0 }

func (b bitset) or(o bitset) {
	for i := range b {
		b[i] |= o[i]
	}
}

func (b bitset) equal(o bitset) bool {
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}

// closure computes, for each strand, the set of strands reachable from it.
// All edges are forward in ID order, so a single reverse sweep suffices.
func (d *Dag) closure() []bitset {
	if d.reach != nil {
		return d.reach
	}
	n := len(d.Strands)
	reach := make([]bitset, n)
	for i := n - 1; i >= 0; i-- {
		reach[i] = newBitset(n)
		for _, s := range d.Out[i] {
			reach[i].set(s)
			reach[i].or(reach[s])
		}
	}
	d.reach = reach
	return reach
}

// scheduleClosure is reachability over the dag edges *plus* same-view
// serialization chains. In the fixed schedule, all strands operating on one
// view are executed under that view's ownership — a single worker at a
// time, with ownership handed off through joins and reductions — so they
// are totally ordered in serial-execution order. This closure is the
// physical happens-before of the schedule; pairs involving a view-aware
// access race only if they are parallel here (an unstolen continuation and
// the reductions feeding it cannot overlap a later same-view reduction, no
// matter how the dag looks).
func (d *Dag) scheduleClosure() []bitset {
	if d.schedReach != nil {
		return d.schedReach
	}
	n := len(d.Strands)
	extra := make([][]int, n)
	last := make(map[cilk.ViewID]int)
	for i, s := range d.Strands {
		if prev, ok := last[s.VID]; ok {
			extra[prev] = append(extra[prev], i)
		}
		last[s.VID] = i
	}
	reach := make([]bitset, n)
	for i := n - 1; i >= 0; i-- {
		reach[i] = newBitset(n)
		for _, s := range d.Out[i] {
			reach[i].set(s)
			reach[i].or(reach[s])
		}
		for _, s := range extra[i] {
			reach[i].set(s)
			reach[i].or(reach[s])
		}
	}
	d.schedReach = reach
	return reach
}

// ParallelInSchedule reports whether u and v can overlap in some execution
// of the fixed schedule: no path in either direction through dag edges or
// same-view serialization.
func (d *Dag) ParallelInSchedule(u, v int) bool {
	if u == v {
		return false
	}
	if u > v {
		u, v = v, u
	}
	return !d.scheduleClosure()[u].has(v)
}

// Precedes reports u ≺ v: a path exists from u to v.
func (d *Dag) Precedes(u, v int) bool {
	if u == v {
		return false
	}
	if u > v {
		return false // edges only go forward
	}
	return d.closure()[u].has(v)
}

// Parallel reports u ‖ v: distinct strands with no path either way.
func (d *Dag) Parallel(u, v int) bool {
	if u == v {
		return false
	}
	return !d.Precedes(u, v) && !d.Precedes(v, u)
}

// Peers returns peers(u), the set of strands logically parallel with u, as
// a bitset over strand IDs (§3).
func (d *Dag) Peers(u int) bitset {
	n := len(d.Strands)
	p := newBitset(n)
	for v := 0; v < n; v++ {
		if d.Parallel(u, v) {
			p.set(v)
		}
	}
	return p
}

// SamePeers reports whether peers(u) = peers(v).
func (d *Dag) SamePeers(u, v int) bool {
	return d.Peers(u).equal(d.Peers(v))
}

// ViewReadRaces returns all pairs of reducer-reads of the same reducer
// whose strands have different peer sets — the §3 definition of a
// view-read race. Call it only on a dag recorded with NoSteals (the user
// dag), since peer-set semantics are defined over the ordinary dag.
func (d *Dag) ViewReadRaces() [][2]ReducerRead {
	var out [][2]ReducerRead
	for i := 0; i < len(d.Reads); i++ {
		for j := i + 1; j < len(d.Reads); j++ {
			a, b := d.Reads[i], d.Reads[j]
			if a.Reducer != b.Reducer {
				continue
			}
			if !d.SamePeers(a.Strand, b.Strand) {
				out = append(out, [2]ReducerRead{a, b})
			}
		}
	}
	return out
}

// HasViewReadRace reports whether any view-read race exists.
func (d *Dag) HasViewReadRace() bool { return len(d.ViewReadRaces()) > 0 }

// DeterminacyRaces returns, per the §5 conditions, every racing access
// pair: both touch one location, at least one writes, and the two strands
// can actually race. When the later access is view-oblivious, logical
// parallelism in the dag suffices — the access exists under every schedule,
// so some schedule realizes the overlap. When the later access is
// view-aware, its existence is tied to this schedule, so the pair must be
// parallel in the schedule's physical happens-before: logically parallel
// AND not serialized through same-view ownership chains (in particular the
// two strands must operate on parallel views).
func (d *Dag) DeterminacyRaces() [][2]Access {
	byAddr := make(map[mem.Addr][]Access)
	for _, a := range d.Acc {
		byAddr[a.Addr] = append(byAddr[a.Addr], a)
	}
	var out [][2]Access
	for _, accs := range byAddr {
		for i := 0; i < len(accs); i++ {
			for j := i + 1; j < len(accs); j++ {
				e1, e2 := accs[i], accs[j]
				if !e1.Write && !e2.Write {
					continue
				}
				if e1.Strand == e2.Strand {
					continue
				}
				if e2.ViewAware {
					if !d.ParallelInSchedule(e1.Strand, e2.Strand) {
						continue
					}
				} else if !d.Parallel(e1.Strand, e2.Strand) {
					continue
				}
				out = append(out, [2]Access{e1, e2})
			}
		}
	}
	return out
}

// RacyAddrs returns the set of addresses involved in at least one
// determinacy race under the physical-schedule semantics of
// DeterminacyRaces. Every address here must be reported by SP+ — a miss is
// a detector bug.
func (d *Dag) RacyAddrs() map[mem.Addr]bool {
	out := make(map[mem.Addr]bool)
	for _, pair := range d.DeterminacyRaces() {
		out[pair[0].Addr] = true
	}
	return out
}

// LiberalRacyAddrs returns the racy addresses under the literal pairwise §5
// condition: both strands logically parallel in the dag and, for a
// view-aware later access, associated with distinct views. This is a
// superset of RacyAddrs: it ignores the transitive same-view ownership
// serialization that the schedule enforces (a view handed from a reduction
// to an unstolen continuation serializes strands the pairwise condition
// calls parallel). SP+'s reports must stay inside this set — anything
// outside would pair strands that are serial or share a view.
//
// The gap between the two sets is where the paper's Figure 6 pseudocode
// genuinely sits: its shadow-replacement rule ("replace when the reduce
// strand shares the last accessor's view ID") prunes exactly the
// serialized same-view chains, but bag view-IDs drift as bags merge, so a
// handful of physically-serialized cross-view pairs are still reported.
// All of them are races under the paper's own literal definition.
func (d *Dag) LiberalRacyAddrs() map[mem.Addr]bool {
	byAddr := make(map[mem.Addr][]Access)
	for _, a := range d.Acc {
		byAddr[a.Addr] = append(byAddr[a.Addr], a)
	}
	out := make(map[mem.Addr]bool)
	for addr, accs := range byAddr {
	pairs:
		for i := 0; i < len(accs); i++ {
			for j := i + 1; j < len(accs); j++ {
				e1, e2 := accs[i], accs[j]
				if !e1.Write && !e2.Write {
					continue
				}
				if e1.Strand == e2.Strand || !d.Parallel(e1.Strand, e2.Strand) {
					continue
				}
				if e2.ViewAware &&
					d.Strands[e1.Strand].VID == d.Strands[e2.Strand].VID {
					continue
				}
				out[addr] = true
				break pairs
			}
		}
	}
	return out
}

// ReduceStrands returns the IDs of all reduce strands.
func (d *Dag) ReduceStrands() []int {
	var out []int
	for _, s := range d.Strands {
		if s.IsReduce {
			out = append(out, s.ID)
		}
	}
	return out
}

// StrandsOf returns the strand IDs of one frame, in serial order.
func (d *Dag) StrandsOf(f cilk.FrameID) []int {
	var out []int
	for _, s := range d.Strands {
		if s.Frame == f {
			out = append(out, s.ID)
		}
	}
	return out
}
