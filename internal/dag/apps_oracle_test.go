package dag

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/cilk"
	"repro/internal/mem"
	"repro/internal/spplus"
)

// TestAppsAgainstOracle validates the SP+ sandwich property on the real
// evaluation benchmarks (test scale): every physically racy address is
// reported and every report is at least a literal-§5 race. This is the
// strongest end-to-end check in the repository — the oracle recomputes
// logical parallelism, view parallelism and schedule serialization from
// scratch on tens of thousands of recorded strands.
func TestAppsAgainstOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("quadratic oracle on app-sized dags")
	}
	for _, app := range apps.All() {
		app := app
		for _, sc := range []struct {
			name string
			spec cilk.StealSpec
		}{
			{"serial", nil},
			{"steal-all", cilk.StealAll{}},
		} {
			t.Run(app.Name+"/"+sc.name, func(t *testing.T) {
				al := mem.NewAllocator()
				ins := app.Build(al, apps.Test)
				rec := NewRecorder()
				det := spplus.New()
				cilk.Run(ins.Prog, cilk.Config{Spec: sc.spec, Hooks: cilk.Multi{rec, det}})
				if err := ins.Verify(); err != nil {
					t.Fatal(err)
				}
				if n := len(rec.D.Strands); n > 60_000 {
					t.Skipf("dag too large for the quadratic oracle: %d strands", n)
				}
				physical := rec.D.RacyAddrs()
				liberal := rec.D.LiberalRacyAddrs()
				got := map[mem.Addr]bool{}
				for _, r := range det.Report().Races() {
					got[r.Addr] = true
				}
				for a := range physical {
					if !got[a] {
						t.Errorf("physically racy %s missed by SP+", al.Describe(a))
					}
				}
				for a := range got {
					if !liberal[a] {
						t.Errorf("SP+ reported %s beyond the literal §5 condition", al.Describe(a))
					}
				}
			})
		}
	}
}
