package dag

import (
	"fmt"
	"strings"

	"repro/internal/cilk"
	"repro/internal/mem"
)

// NodeKind labels SP parse tree nodes.
type NodeKind int8

// Parse-tree node kinds: leaves are strands, internal nodes compose their
// children in series (S) or parallel (P).
const (
	LeafNode NodeKind = iota
	SNode
	PNode
)

// String implements fmt.Stringer.
func (k NodeKind) String() string {
	switch k {
	case LeafNode:
		return "leaf"
	case SNode:
		return "S"
	case PNode:
		return "P"
	default:
		return "?"
	}
}

// PTNode is one node of a canonical SP parse tree (§4, Figure 4).
type PTNode struct {
	Kind   NodeKind
	Left   *PTNode
	Right  *PTNode
	Parent *PTNode
	LeafID int // valid when Kind == LeafNode
	Frame  cilk.FrameID
}

// ParseTree is the canonical SP parse tree of a Cilk computation that
// uses no reducers (the §4 model): leaves are strands in serial order;
// each sync block is a right-leaning chain whose node is a P node exactly
// when its left child is a spawned subcomputation; a spine of S nodes
// links a function's sync blocks.
type ParseTree struct {
	Root   *PTNode
	Leaves []*PTNode
}

// LCA returns the least common ancestor of two leaves.
func (t *ParseTree) LCA(u, v int) *PTNode {
	depth := func(n *PTNode) int {
		d := 0
		for ; n.Parent != nil; n = n.Parent {
			d++
		}
		return d
	}
	a, b := t.Leaves[u], t.Leaves[v]
	da, db := depth(a), depth(b)
	for ; da > db; da-- {
		a = a.Parent
	}
	for ; db > da; db-- {
		b = b.Parent
	}
	for a != b {
		a, b = a.Parent, b.Parent
	}
	return a
}

// ParallelLeaves reports u ‖ v via Feng–Leiserson's Lemma 4: two strands
// are logically parallel iff their LCA is a P node.
func (t *ParseTree) ParallelLeaves(u, v int) bool {
	if u == v {
		return false
	}
	return t.LCA(u, v).Kind == PNode
}

// AllSPath reports whether the path connecting leaves u and v consists
// entirely of S nodes — by Lemma 2, exactly the condition for
// peers(u) = peers(v).
func (t *ParseTree) AllSPath(u, v int) bool {
	if u == v {
		return true
	}
	lca := t.LCA(u, v)
	if lca.Kind != SNode {
		return false
	}
	for _, leaf := range []int{u, v} {
		for n := t.Leaves[leaf].Parent; n != lca; n = n.Parent {
			if n.Kind != SNode {
				return false
			}
		}
	}
	return true
}

// Render draws the tree with one node per line, Figure 4 style.
func (t *ParseTree) Render() string {
	var b strings.Builder
	var walk func(n *PTNode, indent int)
	walk = func(n *PTNode, indent int) {
		if n == nil {
			return
		}
		pad := strings.Repeat("  ", indent)
		if n.Kind == LeafNode {
			fmt.Fprintf(&b, "%s%d\n", pad, n.LeafID)
			return
		}
		fmt.Fprintf(&b, "%s%v\n", pad, n.Kind)
		walk(n.Left, indent+1)
		walk(n.Right, indent+1)
	}
	walk(t.Root, 0)
	return b.String()
}

// ptElem is one element of a sync block under construction: a leaf or a
// completed child subtree.
type ptElem struct {
	node    *PTNode
	spawned bool // composes in parallel with the rest of the block
}

type ptFrame struct {
	id     cilk.FrameID
	blocks [][]ptElem
	cur    []ptElem
	// leaf open for the currently executing strand
	open *PTNode
}

// ParseRecorder implements cilk.Hooks and builds the canonical SP parse
// tree of a run with no simulated steals. Every control event closes the
// current strand leaf — empty strands are still dag vertices, so leaves
// may carry no accesses. Accesses map to the open leaf, letting tests
// correlate parse-tree leaves with the Recorder's strands.
type ParseRecorder struct {
	cilk.Empty

	stack  []*ptFrame
	leaves []*PTNode
	tree   *ParseTree
	// Acc records (leaf, addr, write) per access in serial order.
	Acc []Access
	seq int
}

// NewParseRecorder returns an empty parse-tree recorder.
func NewParseRecorder() *ParseRecorder { return &ParseRecorder{} }

func (r *ParseRecorder) top() *ptFrame { return r.stack[len(r.stack)-1] }

func (r *ParseRecorder) openLeaf(f *ptFrame) *PTNode {
	leaf := &PTNode{Kind: LeafNode, LeafID: len(r.leaves), Frame: f.id}
	r.leaves = append(r.leaves, leaf)
	f.open = leaf
	return leaf
}

func (r *ParseRecorder) closeLeaf(f *ptFrame) {
	if f.open != nil {
		f.cur = append(f.cur, ptElem{node: f.open})
		f.open = nil
	}
}

// FrameEnter implements cilk.Hooks.
func (r *ParseRecorder) FrameEnter(f *cilk.Frame) {
	if len(r.stack) > 0 {
		r.closeLeaf(r.top())
	}
	fr := &ptFrame{id: f.ID}
	r.stack = append(r.stack, fr)
	r.openLeaf(fr)
}

// FrameReturn implements cilk.Hooks: the child's finished tree becomes an
// element of the parent's current sync block.
func (r *ParseRecorder) FrameReturn(g, f *cilk.Frame) {
	child := r.top()
	r.stack = r.stack[:len(r.stack)-1]
	sub := r.finish(child)
	parent := r.top()
	parent.cur = append(parent.cur, ptElem{node: sub, spawned: g.Spawned})
	r.openLeaf(parent)
}

// Sync implements cilk.Hooks: close the block, start the next.
func (r *ParseRecorder) Sync(f *cilk.Frame) {
	fr := r.top()
	r.closeLeaf(fr)
	fr.blocks = append(fr.blocks, fr.cur)
	fr.cur = nil
	r.openLeaf(fr)
}

// ContinuationStolen must not occur: the §4 parse tree models the
// ordinary (reducer-free schedule) dag.
func (r *ParseRecorder) ContinuationStolen(*cilk.Frame, cilk.ViewID) {
	panic("dag: ParseRecorder requires a no-steal schedule")
}

// Load implements cilk.Hooks.
func (r *ParseRecorder) Load(f *cilk.Frame, a mem.Addr) { r.access(a, false) }

// Store implements cilk.Hooks.
func (r *ParseRecorder) Store(f *cilk.Frame, a mem.Addr) { r.access(a, true) }

func (r *ParseRecorder) access(a mem.Addr, write bool) {
	r.seq++
	r.Acc = append(r.Acc, Access{Strand: r.top().open.LeafID, Addr: a, Write: write, Seq: r.seq})
}

// ProgramEnd implements cilk.Hooks: finish the root.
func (r *ParseRecorder) ProgramEnd(*cilk.Frame) {
	root := r.top()
	r.stack = r.stack[:0]
	r.tree = &ParseTree{Root: r.finish(root), Leaves: r.leaves}
	for _, leaf := range r.leaves {
		_ = leaf
	}
	setParents(r.tree.Root, nil)
}

// finish closes the frame's last strand and block and assembles the
// canonical subtree: per block, a right-leaning chain whose node kind is P
// exactly when the left child is a spawned subtree; blocks joined by a
// spine of S nodes.
func (r *ParseRecorder) finish(fr *ptFrame) *PTNode {
	r.closeLeaf(fr)
	fr.blocks = append(fr.blocks, fr.cur)
	fr.cur = nil
	var blockTrees []*PTNode
	for _, block := range fr.blocks {
		if len(block) == 0 {
			continue
		}
		t := block[len(block)-1].node
		for i := len(block) - 2; i >= 0; i-- {
			kind := SNode
			if block[i].spawned {
				kind = PNode
			}
			t = &PTNode{Kind: kind, Left: block[i].node, Right: t, Frame: fr.id}
		}
		blockTrees = append(blockTrees, t)
	}
	if len(blockTrees) == 0 {
		// A frame always has at least its first strand.
		panic("dag: frame with no parse-tree elements")
	}
	spine := blockTrees[len(blockTrees)-1]
	for i := len(blockTrees) - 2; i >= 0; i-- {
		spine = &PTNode{Kind: SNode, Left: blockTrees[i], Right: spine, Frame: fr.id}
	}
	return spine
}

func setParents(n, parent *PTNode) {
	if n == nil {
		return
	}
	n.Parent = parent
	setParents(n.Left, n)
	setParents(n.Right, n)
}

// Tree returns the finished parse tree (after the run).
func (r *ParseRecorder) Tree() *ParseTree { return r.tree }
