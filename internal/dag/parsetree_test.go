package dag

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/cilk"
	"repro/internal/mem"
	"repro/internal/progs"
)

// recordBoth runs a program under both the dag recorder and the parse-tree
// recorder and returns them; each access appears in both logs at the same
// position, giving the strand↔leaf correspondence.
func recordBoth(prog func(*cilk.Ctx)) (*Recorder, *ParseRecorder) {
	rec := NewRecorder()
	pt := NewParseRecorder()
	cilk.Run(prog, cilk.Config{Hooks: cilk.Multi{rec, pt}})
	return rec, pt
}

func TestFig4ParseTree(t *testing.T) {
	// The canonical parse tree of the Figure 2 computation (Figure 4
	// shows function a's subtree): the sync block of a is the chain
	// S(1, P(b, S(4, P(c, S(10, S(e, 15)))))) with a spine S linking
	// strand 16's block.
	_, pt := recordBoth(progs.Fig2(func(c *cilk.Ctx, s int) {
		c.Load(mem.Addr(1000 + s))
	}))
	tree := pt.Tree()
	if tree == nil {
		t.Fatal("no tree built")
	}
	// Find the leaf of each figure strand through the access log.
	site := map[int]int{}
	for _, a := range pt.Acc {
		site[int(a.Addr)-1000] = a.Strand
	}
	// Root frame: the spine's left subtree holds strands 1..15, the right
	// holds 16.
	if tree.Root.Kind != SNode {
		t.Fatalf("root = %v, want S (the spine)", tree.Root.Kind)
	}
	// Chain kinds along block 1 of a: S P S P S S.
	var kinds []NodeKind
	for n := tree.Root.Left; n != nil && n.Kind != LeafNode; n = n.Right {
		kinds = append(kinds, n.Kind)
	}
	want := []NodeKind{SNode, PNode, SNode, PNode, SNode, SNode}
	if len(kinds) != len(want) {
		t.Fatalf("chain kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("chain kinds = %v, want %v", kinds, want)
		}
	}
	// Figure 4's caption: the LCA of strands inside one sync block…
	// spot checks via the lemmas:
	if !tree.ParallelLeaves(site[2], site[4]) {
		t.Error("b ‖ 4: LCA must be a P node")
	}
	if tree.ParallelLeaves(site[4], site[10]) {
		t.Error("4 ≺ 10: LCA must be an S node")
	}
	if !tree.AllSPath(site[10], site[11]) {
		t.Error("path 10..11 must be all S nodes")
	}
	if tree.AllSPath(site[10], site[14]) {
		t.Error("path 10..14 crosses a P node (f's spawn)")
	}
	if !strings.Contains(tree.Render(), "P") {
		t.Error("render must show P nodes")
	}
}

func TestLemma2OnFig2(t *testing.T) {
	// Lemma 2: peers(u) = peers(v) iff the parse-tree path u..v is all S
	// nodes. Cross-check parse tree vs the reachability-based peer sets
	// for every pair of accessed strands.
	rec, pt := recordBoth(progs.Fig2(func(c *cilk.Ctx, s int) {
		c.Load(mem.Addr(1000 + s))
	}))
	if len(rec.D.Acc) != len(pt.Acc) {
		t.Fatal("access logs diverge")
	}
	for i := range rec.D.Acc {
		for j := i + 1; j < len(rec.D.Acc); j++ {
			si, sj := rec.D.Acc[i].Strand, rec.D.Acc[j].Strand
			li, lj := pt.Acc[i].Strand, pt.Acc[j].Strand
			if got, want := pt.Tree().AllSPath(li, lj), rec.D.SamePeers(si, sj); got != want {
				t.Errorf("access pair (%d,%d): all-S=%v, same-peers=%v", i, j, got, want)
			}
		}
	}
}

func TestLemma4OnRandomPrograms(t *testing.T) {
	// Feng–Leiserson Lemma 4 (u ‖ v iff LCA is a P node) and Lemma 2,
	// cross-checked against the reachability oracle on random reducer-free
	// programs.
	check := func(seed int64) bool {
		al := mem.NewAllocator()
		prog := progs.Random(al, progs.RandomOpts{Seed: seed, NoReducers: true})
		rec, pt := recordBoth(prog)
		if len(rec.D.Acc) != len(pt.Acc) {
			return false
		}
		n := len(rec.D.Acc)
		if n > 60 {
			n = 60 // quadratic pair check; cap the work
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				si, sj := rec.D.Acc[i].Strand, rec.D.Acc[j].Strand
				li, lj := pt.Acc[i].Strand, pt.Acc[j].Strand
				if si == sj != (li == lj) {
					t.Logf("seed %d: strand identity diverges at pair (%d,%d)", seed, i, j)
					return false
				}
				if si == sj {
					continue
				}
				if pt.Tree().ParallelLeaves(li, lj) != rec.D.Parallel(si, sj) {
					t.Logf("seed %d: Lemma 4 violated at pair (%d,%d)", seed, i, j)
					return false
				}
				if pt.Tree().AllSPath(li, lj) != rec.D.SamePeers(si, sj) {
					t.Logf("seed %d: Lemma 2 violated at pair (%d,%d)", seed, i, j)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestParseRecorderRejectsSteals(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ParseRecorder must reject stolen continuations")
		}
	}()
	pt := NewParseRecorder()
	cilk.Run(func(c *cilk.Ctx) {
		c.Spawn("f", func(*cilk.Ctx) {})
		c.Sync()
	}, cilk.Config{Spec: cilk.StealAll{}, Hooks: pt})
}
