package dag

import (
	"repro/internal/cilk"
	"repro/internal/mem"
	"repro/internal/streamerr"
)

// Recorder implements cilk.Hooks and builds the performance dag of the run
// it observes. Strand boundaries follow §3 and §5: a strand ends at every
// spawn, call, return, sync, stolen continuation and reduce operation;
// reduce operations execute as their own strands carrying the surviving
// view ID; the reduce strands before a sync form the reduce tree, whose
// root feeds the sync strand.
//
// Strands materialize lazily — only when code actually runs between two
// control events — so the serial simulation's interleaving (a reduce
// executing between a child's return and a stolen continuation, say)
// introduces no phantom dependencies: a stolen continuation depends only on
// its spawn strand, never on reductions that merely precede it in the
// serial order.
type Recorder struct {
	D *Dag

	stack   []*fRec
	seq     int
	vaDepth int
	// active reduce strand, or -1
	reduceStrand int
}

type fRec struct {
	id    cilk.FrameID
	label string
	// cur is the materialized strand currently executing, or -1.
	cur int
	// nextPred is the program-order predecessor of the next strand to
	// materialize: the spawn strand after a spawn, the child's last strand
	// after a call, the previous strand otherwise. -1 for a frame's first
	// strand (its predecessor lives in the parent and is wired at enter).
	nextPred int
	// vids mirrors the executor's view-slot stack for the frame.
	vids []cilk.ViewID
	// ends holds, per live view context, the endpoints its eventual
	// reduce (or the sync) must await: returned spawned children's last
	// strands, and the context's reduce strand once one ran.
	ends map[cilk.ViewID][]int
	// latest is the most recent strand (code or reduce) per context; a
	// reduce strand here means the context's view was produced by that
	// reduction, so following strands in the context depend on it.
	latest map[cilk.ViewID]int
}

func (f *fRec) topVID() cilk.ViewID { return f.vids[len(f.vids)-1] }

// NewRecorder returns a recorder with an empty dag.
func NewRecorder() *Recorder {
	return &Recorder{D: &Dag{}, reduceStrand: -1}
}

func (r *Recorder) top() *fRec { return r.stack[len(r.stack)-1] }

// ensure materializes the frame's current strand if none is active.
func (r *Recorder) ensure(rec *fRec) int {
	if rec.cur >= 0 {
		return rec.cur
	}
	v := rec.topVID()
	s := r.D.newStrand(rec.id, rec.label, v, false)
	if rec.nextPred >= 0 {
		r.D.edge(rec.nextPred, s)
	}
	if prev, ok := rec.latest[v]; ok && r.D.Strands[prev].IsReduce {
		// The context's view was produced by a reduction; the worker
		// resumes this context only after that reduce completes.
		r.D.edge(prev, s)
	}
	rec.latest[v] = s
	rec.cur = s
	return s
}

// endCur closes the frame's current strand (if any), making it the
// program-order predecessor of the next one.
func (r *Recorder) endCur(rec *fRec) {
	if rec.cur >= 0 {
		rec.nextPred = rec.cur
		rec.cur = -1
	}
}

// ProgramStart implements cilk.Hooks.
func (r *Recorder) ProgramStart(*cilk.Frame) {}

// ProgramEnd implements cilk.Hooks.
func (r *Recorder) ProgramEnd(*cilk.Frame) {}

// FrameEnter ends the parent's current strand; the child's first strand,
// when it materializes, hangs off the spawn/call strand and inherits the
// parent's view context.
func (r *Recorder) FrameEnter(f *cilk.Frame) {
	rec := &fRec{
		id:       f.ID,
		label:    f.Label,
		cur:      -1,
		nextPred: -1,
		vids:     []cilk.ViewID{0},
		ends:     make(map[cilk.ViewID][]int),
		latest:   make(map[cilk.ViewID]int),
	}
	if len(r.stack) > 0 {
		parent := r.top()
		ps := r.ensure(parent)
		r.endCur(parent)
		rec.nextPred = ps
		rec.vids[0] = parent.topVID()
	}
	r.stack = append(r.stack, rec)
}

// FrameReturn closes the child. After a call, the parent's next strand
// follows the child's last strand; after a spawn, it is the continuation
// (following the spawn strand, which endCur already recorded) and the
// child's last strand joins the current view context's endpoints.
func (r *Recorder) FrameReturn(g, f *cilk.Frame) {
	if len(r.stack) < 2 {
		panic(streamerr.Errorf("dag", streamerr.KindOrder,
			"return of frame %d with %d frames on the stack", g.ID, len(r.stack)).WithFrame(int64(g.ID)))
	}
	grec := r.top()
	if grec.id != g.ID {
		panic(streamerr.Errorf("dag", streamerr.KindOrder,
			"event order violation: return %d, top %d", g.ID, grec.id).WithFrame(int64(g.ID)))
	}
	last := r.ensure(grec)
	r.stack = r.stack[:len(r.stack)-1]
	frec := r.top()
	if g.Spawned {
		v := frec.topVID()
		frec.ends[v] = append(frec.ends[v], last)
		// frec.nextPred is still the spawn strand: the continuation edge.
	} else {
		frec.nextPred = last
	}
}

// ContinuationStolen ends the current strand (if code ran) and switches the
// frame into the fresh view context; the stolen continuation's strand will
// depend only on its program-order predecessor, not on any reduction.
func (r *Recorder) ContinuationStolen(f *cilk.Frame, newVID cilk.ViewID) {
	if len(r.stack) == 0 {
		panic(streamerr.Errorf("dag", streamerr.KindOrder,
			"stolen continuation before any frame entered").WithFrame(int64(f.ID)))
	}
	rec := r.top()
	r.endCur(rec)
	rec.vids = append(rec.vids, newVID)
}

// ReduceStart creates the reduce strand joining every endpoint of the two
// views being reduced; it carries the surviving view ID and becomes the
// merged context's sole endpoint and latest producer.
func (r *Recorder) ReduceStart(f *cilk.Frame, keepVID, dieVID cilk.ViewID) {
	if len(r.stack) == 0 {
		panic(streamerr.Errorf("dag", streamerr.KindOrder,
			"reduce before any frame entered").WithFrame(int64(f.ID)))
	}
	rec := r.top()
	if rec.topVID() == dieVID {
		// The frame's current strand (materializing it now if it ran no
		// code — empty strands are still dag vertices) is in the dominated
		// context and is an input of this reduction.
		r.ensure(rec)
		r.endCur(rec)
	}
	idx := -1
	for i := len(rec.vids) - 1; i > 0; i-- {
		if rec.vids[i] == dieVID && rec.vids[i-1] == keepVID {
			idx = i
			break
		}
	}
	if idx < 0 {
		panic(streamerr.Errorf("dag", streamerr.KindState,
			"reduce of unknown pair (%d,%d)", keepVID, dieVID).WithFrame(int64(f.ID)))
	}
	rec.vids = append(rec.vids[:idx], rec.vids[idx+1:]...)

	rs := r.D.newStrand(f.ID, f.Label+"/reduce", keepVID, true)
	for _, vid := range []cilk.ViewID{keepVID, dieVID} {
		for _, e := range rec.ends[vid] {
			r.D.edge(e, rs)
		}
		if prev, ok := rec.latest[vid]; ok && !containsInt(rec.ends[vid], prev) {
			r.D.edge(prev, rs)
		}
	}
	delete(rec.ends, dieVID)
	delete(rec.latest, dieVID)
	rec.ends[keepVID] = []int{rs}
	rec.latest[keepVID] = rs
	r.reduceStrand = rs
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// ReduceEnd closes the reduce strand; the frame's next strand materializes
// lazily and picks up its dependency on the reduction via latest.
func (r *Recorder) ReduceEnd(f *cilk.Frame) {
	r.reduceStrand = -1
}

// Sync materializes the sync strand: it joins the frame's last strand and
// every remaining endpoint of the (single, by view invariant 3) surviving
// context, including the root of the reduce tree.
func (r *Recorder) Sync(f *cilk.Frame) {
	if len(r.stack) == 0 {
		panic(streamerr.Errorf("dag", streamerr.KindOrder,
			"sync before any frame entered").WithFrame(int64(f.ID)))
	}
	rec := r.top()
	// Materialize the strand preceding the sync even if it ran no code —
	// the dag model's continuation strands exist regardless (e.g. strand 8
	// of Figure 2 when c's continuation does nothing), and peer sets
	// depend on their presence.
	r.ensure(rec)
	r.endCur(rec)
	v := rec.topVID()
	s := r.D.newStrand(rec.id, rec.label, v, false)
	if rec.nextPred >= 0 {
		r.D.edge(rec.nextPred, s)
	}
	for _, e := range rec.ends[v] {
		r.D.edge(e, s)
	}
	if prev, ok := rec.latest[v]; ok && r.D.Strands[prev].IsReduce && !containsInt(rec.ends[v], prev) {
		r.D.edge(prev, s)
	}
	delete(rec.ends, v)
	rec.latest[v] = s
	rec.cur = s
}

// ViewAwareBegin implements cilk.Hooks.
func (r *Recorder) ViewAwareBegin(f *cilk.Frame, op cilk.ViewOp, rd *cilk.Reducer) {
	r.vaDepth++
}

// ViewAwareEnd implements cilk.Hooks.
func (r *Recorder) ViewAwareEnd(f *cilk.Frame, op cilk.ViewOp, rd *cilk.Reducer) {
	r.vaDepth--
}

// ReducerCreate records the create as a reducer-read.
func (r *Recorder) ReducerCreate(f *cilk.Frame, rd *cilk.Reducer) {
	r.recordRead(rd)
}

// ReducerRead records a set_value/get_value reducer-read.
func (r *Recorder) ReducerRead(f *cilk.Frame, rd *cilk.Reducer) {
	r.recordRead(rd)
}

func (r *Recorder) recordRead(rd *cilk.Reducer) {
	r.seq++
	r.D.Reads = append(r.D.Reads, ReducerRead{Strand: r.curStrand(), Reducer: rd, Seq: r.seq})
}

// Load records a read access.
func (r *Recorder) Load(f *cilk.Frame, a mem.Addr) {
	r.seq++
	r.D.Acc = append(r.D.Acc, Access{
		Strand: r.curStrand(), Addr: a, Write: false,
		ViewAware: r.vaDepth > 0, Seq: r.seq,
	})
}

// Store records a write access.
func (r *Recorder) Store(f *cilk.Frame, a mem.Addr) {
	r.seq++
	r.D.Acc = append(r.D.Acc, Access{
		Strand: r.curStrand(), Addr: a, Write: true,
		ViewAware: r.vaDepth > 0, Seq: r.seq,
	})
}

func (r *Recorder) curStrand() int {
	if r.reduceStrand >= 0 {
		return r.reduceStrand
	}
	if len(r.stack) == 0 {
		panic(streamerr.Errorf("dag", streamerr.KindOrder,
			"memory access before any frame entered"))
	}
	return r.ensure(r.top())
}

var _ cilk.Hooks = (*Recorder)(nil)
