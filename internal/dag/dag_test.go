package dag

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/cilk"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/peerset"
	"repro/internal/progs"
	"repro/internal/spbags"
	"repro/internal/spplus"
)

// recordFig2 runs the Figure 2 fixture with a unique load at each numbered
// strand and returns the dag plus the strand ID of each site.
func recordFig2(spec cilk.StealSpec) (*Dag, map[int]int) {
	r := NewRecorder()
	prog := progs.Fig2(func(c *cilk.Ctx, strand int) {
		c.Load(mem.Addr(1000 + strand))
	})
	cilk.Run(prog, cilk.Config{Spec: spec, Hooks: r})
	site := make(map[int]int)
	for _, a := range r.D.Acc {
		site[int(a.Addr)-1000] = a.Strand
	}
	return r.D, site
}

func TestFig2Reachability(t *testing.T) {
	d, site := recordFig2(nil)
	// §3's worked claims: 4 ≺ 9 and 9 ‖ 10.
	if !d.Precedes(site[4], site[9]) {
		t.Error("strand 4 must precede strand 9")
	}
	if !d.Parallel(site[9], site[10]) {
		t.Error("strands 9 and 10 must be parallel")
	}
	// Serial order is total within a function: 1 ≺ 4 ≺ 10 ≺ 15 ≺ 16.
	for _, pair := range [][2]int{{1, 4}, {4, 10}, {10, 15}, {15, 16}, {1, 16}} {
		if !d.Precedes(site[pair[0]], site[pair[1]]) {
			t.Errorf("strand %d must precede %d", pair[0], pair[1])
		}
	}
	// Spawned subtrees are parallel to continuations: 2 ‖ 4, 2 ‖ 15, 6 ‖ 8.
	for _, pair := range [][2]int{{2, 4}, {2, 15}, {6, 8}, {5, 10}, {12, 14}} {
		if !d.Parallel(site[pair[0]], site[pair[1]]) {
			t.Errorf("strands %d and %d must be parallel", pair[0], pair[1])
		}
	}
	// Everything precedes the final strand 16.
	for s := 1; s < 16; s++ {
		if !d.Precedes(site[s], site[16]) {
			t.Errorf("strand %d must precede 16", s)
		}
	}
}

func TestFig2PeerClasses(t *testing.T) {
	d, site := recordFig2(nil)
	class := make(map[int]int) // figure strand -> class index
	for ci, members := range progs.Fig2PeerClasses {
		for _, m := range members {
			class[m] = ci
		}
	}
	for a := 1; a <= progs.Fig2Strands; a++ {
		for b := a + 1; b <= progs.Fig2Strands; b++ {
			same := d.SamePeers(site[a], site[b])
			want := class[a] == class[b]
			if same != want {
				t.Errorf("SamePeers(%d,%d) = %v, want %v", a, b, same, want)
			}
		}
	}
}

func TestFig2ViewReadOracleMatchesPeerSet(t *testing.T) {
	// For every pair of read sites, the dag oracle and the Peer-Set
	// detector must agree.
	for a := 1; a <= progs.Fig2Strands; a++ {
		for b := a; b <= progs.Fig2Strands; b++ {
			rec := NewRecorder()
			det := peerset.New()
			cilk.Run(progs.Fig2Reads(a, b), cilk.Config{Hooks: cilk.Multi{rec, det}})
			oracle := rec.D.HasViewReadRace()
			got := !det.Report().Empty()
			if oracle != got {
				t.Errorf("reads (%d,%d): oracle=%v peer-set=%v", a, b, oracle, got)
			}
		}
	}
}

func TestFig5PerformanceDag(t *testing.T) {
	r := NewRecorder()
	siteAddr := map[string]mem.Addr{}
	next := mem.Addr(2000)
	prog := progs.Fig5(func(c *cilk.Ctx, site string) {
		if _, ok := siteAddr[site]; !ok {
			siteAddr[site] = next
			next++
		}
		c.Load(siteAddr[site])
	}, nil)
	cilk.Run(prog, cilk.Config{Spec: progs.Fig5Spec{}, Hooks: r})
	d := r.D

	reduces := d.ReduceStrands()
	if len(reduces) != 3 {
		t.Fatalf("reduce strands = %d, want 3", len(reduces))
	}
	r0, r1, r2 := reduces[0], reduces[1], reduces[2]

	// The reduce tree: r2 joins the outputs of r0 and r1.
	if !d.Precedes(r0, r2) || !d.Precedes(r1, r2) {
		t.Error("r2 must depend on r0 and r1")
	}
	// r0 and r1 are parallel — they live in different subtrees of the
	// reduce tree.
	if !d.Parallel(r0, r1) {
		t.Error("r0 and r1 must be parallel")
	}

	site := func(name string) int {
		for _, a := range d.Acc {
			if a.Addr == siteAddr[name] {
				return a.Strand
			}
		}
		t.Fatalf("site %q not recorded", name)
		return -1
	}

	// The stolen continuation a:3 (view γ) does not wait for r0.
	if !d.Parallel(r0, site("a:3")) {
		t.Error("r0 must be parallel with the stolen continuation a:3")
	}
	// δ's strand a:4 feeds r1.
	if !d.Precedes(site("a:4"), r1) {
		t.Error("a:4 must precede r1")
	}
	// f's work feeds r1 through e's return.
	if !d.Precedes(site("f"), r1) {
		t.Error("f must precede r1")
	}
	// c's work feeds r0 (c updated view β).
	if !d.Precedes(site("c:1"), r0) {
		t.Error("c must precede r0")
	}
	// r1 is parallel with strands in c — the §6 race scenario.
	if !d.Parallel(r1, site("c:1")) {
		t.Error("r1 must be parallel with c's strands")
	}
	// Everything precedes the final strand a:5 (after the sync).
	for _, s := range []string{"b", "c:1", "d", "e:1", "f", "a:4"} {
		if !d.Precedes(site(s), site("a:5")) {
			t.Errorf("%s must precede a:5", s)
		}
	}
	// View IDs per strand.
	vids := map[string]cilk.ViewID{
		"a:1": 0, "b": 0, // α
		"a:2": 1, "c:1": 1, "d": 1, // β
		"a:3": 2, "e:1": 2, "f": 2, // γ
		"a:4": 3, // δ
		"a:5": 0, // back to α after the sync
	}
	for name, want := range vids {
		if got := d.Strands[site(name)].VID; got != want {
			t.Errorf("vid(%s) = %d, want %d", name, got, want)
		}
	}
	// Reduce strands carry the surviving view: r0 → α, r1 → γ, r2 → α.
	if d.Strands[r0].VID != 0 || d.Strands[r1].VID != 2 || d.Strands[r2].VID != 0 {
		t.Errorf("reduce vids = %d,%d,%d, want 0,2,0",
			d.Strands[r0].VID, d.Strands[r1].VID, d.Strands[r2].VID)
	}
}

func TestDeterminacyOracleBasics(t *testing.T) {
	al := mem.NewAllocator()
	x := al.Alloc("x", 1)
	rec := NewRecorder()
	cilk.Run(func(c *cilk.Ctx) {
		c.Spawn("w", func(c *cilk.Ctx) { c.Store(x.At(0)) })
		c.Load(x.At(0))
		c.Sync()
		c.Load(x.At(0)) // after sync: no race with the write
	}, cilk.Config{Hooks: rec})
	races := rec.D.DeterminacyRaces()
	if len(races) != 1 {
		t.Fatalf("races = %d, want 1", len(races))
	}
}

// oracleVsSPPlus runs one random program under one spec with both the
// recorder and the SP+ detector attached and checks the sandwich property:
// every physically racy address is reported, and every reported address is
// racy under the literal §5 pairwise condition. On runs without view-aware
// accesses the two oracles coincide and the check is exact.
func oracleVsSPPlus(t *testing.T, seed int64, p float64, order cilk.ReduceOrder, monoidStores bool) {
	t.Helper()
	al := mem.NewAllocator()
	prog := progs.Random(al, progs.RandomOpts{
		Seed: seed, MonoidStores: monoidStores,
	})
	rec := NewRecorder()
	det := spplus.New()
	spec := progs.RandomSpec{Seed: seed + 1, P: p, Reduce: order}
	cilk.Run(prog, cilk.Config{Spec: spec, Hooks: cilk.Multi{rec, det}})

	physical := rec.D.RacyAddrs()
	liberal := rec.D.LiberalRacyAddrs()
	got := make(map[mem.Addr]bool)
	for _, r := range det.Report().Races() {
		got[r.Addr] = true
	}
	for a := range physical {
		if !got[a] {
			t.Fatalf("seed %d p=%.2f order=%d: physically racy addr %#x missed by SP+ (oracle %v, SP+ %v)",
				seed, p, order, uint64(a), keys(physical), keys(got))
		}
	}
	for a := range got {
		if !liberal[a] {
			t.Fatalf("seed %d p=%.2f order=%d: SP+ reported %#x, not racy even under the literal §5 condition (liberal %v)",
				seed, p, order, uint64(a), keys(liberal))
		}
	}
}

func keys(m map[mem.Addr]bool) []string {
	var out []string
	for k := range m {
		out = append(out, fmt.Sprintf("%#x", uint64(k)))
	}
	return out
}

func TestQuickSPPlusMatchesOracle(t *testing.T) {
	check := func(seed int64) bool {
		for _, p := range []float64{0, 0.3, 1} {
			for _, order := range []cilk.ReduceOrder{cilk.ReduceAtSync, cilk.ReduceEager, cilk.ReduceMiddleFirst} {
				oracleVsSPPlus(t, seed, p, order, true)
				oracleVsSPPlus(t, seed, p, order, false)
			}
		}
		return !t.Failed()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickObliviousExactEquivalence: on reducer-free programs the
// physical and literal oracles coincide and SP+, SP-bags and the oracle
// must agree exactly, per address, under every schedule.
func TestQuickObliviousExactEquivalence(t *testing.T) {
	check := func(seed int64) bool {
		for _, p := range []float64{0, 0.5, 1} {
			al := mem.NewAllocator()
			prog := progs.Random(al, progs.RandomOpts{Seed: seed, NoReducers: true})
			rec := NewRecorder()
			plus := spplus.New()
			bags := spbags.New()
			spec := progs.RandomSpec{Seed: seed + 3, P: p}
			cilk.Run(prog, cilk.Config{Spec: spec, Hooks: cilk.Multi{rec, plus, bags}})

			physical := rec.D.RacyAddrs()
			liberal := rec.D.LiberalRacyAddrs()
			if len(physical) != len(liberal) {
				t.Logf("seed %d: oracles diverge on oblivious program", seed)
				return false
			}
			for _, det := range []core.Detector{plus, bags} {
				got := make(map[mem.Addr]bool)
				for _, r := range det.Report().Races() {
					got[r.Addr] = true
				}
				if len(got) != len(physical) {
					t.Logf("seed %d p=%.1f: %s found %d addrs, oracle %d",
						seed, p, det.Name(), len(got), len(physical))
					return false
				}
				for a := range physical {
					if !got[a] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPeerSetMatchesOracle(t *testing.T) {
	check := func(seed int64) bool {
		al := mem.NewAllocator()
		prog := progs.Random(al, progs.RandomOpts{Seed: seed, Reads: true})
		rec := NewRecorder()
		det := peerset.New()
		cilk.Run(prog, cilk.Config{Hooks: cilk.Multi{rec, det}})
		oracle := rec.D.HasViewReadRace()
		got := !det.Report().Empty()
		if oracle != got {
			t.Logf("seed %d: oracle=%v peer-set=%v", seed, oracle, got)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestForwardEdgesInvariant(t *testing.T) {
	// The recorder promises every edge goes forward in strand-ID order
	// (edge panics otherwise); this exercises it on a convoluted run.
	al := mem.NewAllocator()
	prog := progs.Random(al, progs.RandomOpts{Seed: 99, MonoidStores: true, Reads: true})
	rec := NewRecorder()
	cilk.Run(prog, cilk.Config{Spec: progs.RandomSpec{Seed: 7, P: 0.5}, Hooks: rec})
	n := len(rec.D.Strands)
	if n == 0 {
		t.Fatal("no strands recorded")
	}
	for u, succs := range rec.D.Out {
		for _, v := range succs {
			if v <= u || v >= n {
				t.Fatalf("bad edge %d -> %d", u, v)
			}
		}
	}
}

func TestStrandsOfAndHelpers(t *testing.T) {
	d, site := recordFig2(nil)
	root := d.Strands[site[1]].Frame
	if got := len(d.StrandsOf(root)); got < 5 {
		t.Fatalf("root has %d strands, want >= 5", got)
	}
	if d.Precedes(site[9], site[9]) || d.Parallel(site[9], site[9]) {
		t.Fatal("a strand neither precedes nor parallels itself")
	}
}
