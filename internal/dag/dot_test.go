package dag

import (
	"strings"
	"testing"

	"repro/internal/cilk"
	"repro/internal/progs"
)

func TestDotRendersPerformanceDag(t *testing.T) {
	r := NewRecorder()
	cilk.Run(progs.Fig5(func(*cilk.Ctx, string) {}, nil),
		cilk.Config{Spec: progs.Fig5Spec{}, Hooks: r})
	dot := r.D.Dot("fig5")
	for _, want := range []string{
		"digraph \"fig5\"",
		"doubleoctagon", // reduce strands
		"subgraph",      // frame clusters
		"->",            // edges
		"v3",            // the δ view appears
	} {
		if !strings.Contains(dot, want) {
			t.Fatalf("dot output missing %q:\n%s", want, dot)
		}
	}
	// Every strand has a node line; every edge references defined nodes.
	if got := strings.Count(dot, "n0 ["); got != 1 {
		t.Fatalf("node n0 defined %d times", got)
	}
	if !strings.HasSuffix(strings.TrimSpace(dot), "}") {
		t.Fatal("dot must be closed")
	}
}

func TestDotDistinctColorsPerView(t *testing.T) {
	r := NewRecorder()
	cilk.Run(progs.Fig5(func(*cilk.Ctx, string) {}, nil),
		cilk.Config{Spec: progs.Fig5Spec{}, Hooks: r})
	dot := r.D.Dot("x")
	// Four views → at least four distinct fill colors.
	colors := map[string]bool{}
	for _, line := range strings.Split(dot, "\n") {
		if i := strings.Index(line, "fillcolor=\""); i >= 0 {
			colors[line[i+11:i+18]] = true
		}
	}
	if len(colors) < 4 {
		t.Fatalf("expected ≥4 view colors, got %d", len(colors))
	}
}
