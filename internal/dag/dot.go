package dag

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cilk"
)

// Dot renders the recorded (performance) dag in Graphviz dot format,
// Figure 2/Figure 5 style: strands as boxes clustered by function
// instantiation, reduce strands as double octagons, edges as parallel
// control dependencies, and strands colored by view ID so the view
// contexts that simulated steals created are visible at a glance.
func (d *Dag) Dot(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", title)
	b.WriteString("  rankdir=TB;\n  node [shape=box, style=filled, fontname=\"monospace\"];\n")

	// Stable view-color assignment: view IDs in first-appearance order.
	palette := []string{
		"#dce9f7", "#f7dcdc", "#dcf7e0", "#f7f3dc", "#eadcf7",
		"#dcf4f7", "#f7e6dc", "#e8f7dc", "#f7dcef", "#e0e0e0",
	}
	colorOf := make(map[cilk.ViewID]string)
	nextColor := 0
	color := func(v cilk.ViewID) string {
		c, ok := colorOf[v]
		if !ok {
			c = palette[nextColor%len(palette)]
			colorOf[v] = c
			nextColor++
		}
		return c
	}

	// Group strands by frame for clusters.
	frames := make(map[cilk.FrameID][]Strand)
	var frameIDs []cilk.FrameID
	for _, s := range d.Strands {
		if _, ok := frames[s.Frame]; !ok {
			frameIDs = append(frameIDs, s.Frame)
		}
		frames[s.Frame] = append(frames[s.Frame], s)
	}
	sort.Slice(frameIDs, func(i, j int) bool { return frameIDs[i] < frameIDs[j] })

	for _, fid := range frameIDs {
		ss := frames[fid]
		fmt.Fprintf(&b, "  subgraph \"cluster_f%d\" {\n", fid)
		fmt.Fprintf(&b, "    label=\"%s#%d\"; color=gray;\n", ss[0].Label, fid)
		for _, s := range ss {
			shape := "box"
			label := fmt.Sprintf("%d", s.ID)
			if s.IsReduce {
				shape = "doubleoctagon"
				label = fmt.Sprintf("r%d", s.ID)
			}
			fmt.Fprintf(&b, "    n%d [label=\"%s\\nv%d\", shape=%s, fillcolor=%q];\n",
				s.ID, label, s.VID, shape, color(s.VID))
		}
		b.WriteString("  }\n")
	}
	for u, succs := range d.Out {
		for _, v := range succs {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", u, v)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
