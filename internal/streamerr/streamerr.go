// Package streamerr defines the single structured error type the analysis
// pipeline uses to report violations of the cilk event-stream contract.
//
// The detectors (peer-set, sp-bags, sp+), the dag recorder and the serial
// executor validate the event contract as they consume the stream. A live
// execution can never violate the contract, so the validation failure mode
// is a panic — but the panic *value* is always a *streamerr.Error, never a
// bare string. Recovery points (trace.Replay, rader.Run, the rader sweep
// workers) translate that panic value back into an ordinary error carrying
// the layer that detected the fault, the event index, the offending frame
// and, for byte-level trace faults, the stream offset. Anything else that
// escapes as a panic — a crashing downstream consumer, a runtime fault in
// a detector driven off contract — is wrapped with KindConsumer so callers
// always observe one error type and the process never dies.
//
// This package sits below internal/cilk on purpose: the executor itself
// panics with *Error, and internal/core re-exports the type as
// core.StreamError for detector-facing code.
package streamerr

import "fmt"

// Kind classifies a stream fault.
type Kind int

const (
	// KindOrder marks an event arriving out of the contract order (a
	// return that does not match the frame stack, a sync for a frame that
	// is not executing, ...).
	KindOrder Kind = iota
	// KindState marks consumer or executor state violating an invariant
	// the contract guarantees (unreduced views at a return, a sync with
	// multiple P bags, ...).
	KindState
	// KindMalformed marks an event that is not decodable at all: a bad
	// event kind byte, an oversized label, an unknown view operation.
	KindMalformed
	// KindTruncated marks a stream that ended mid-event, or a v2 stream
	// that ended before its footer.
	KindTruncated
	// KindCorrupt marks an integrity failure in a v2 trace: a CRC or
	// event-count mismatch against the footer, or trailing bytes after it.
	KindCorrupt
	// KindConsumer marks an arbitrary panic out of a downstream consumer
	// (or a runtime fault in a consumer driven off contract), wrapped so
	// the pipeline still reports one structured error type.
	KindConsumer
	// KindBudget marks a run aborted because it exceeded its event budget.
	KindBudget
	// KindDeadline marks a run or sweep aborted by its deadline.
	KindDeadline
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindOrder:
		return "order-violation"
	case KindState:
		return "state-violation"
	case KindMalformed:
		return "malformed-event"
	case KindTruncated:
		return "truncated-stream"
	case KindCorrupt:
		return "corrupt-stream"
	case KindConsumer:
		return "consumer-panic"
	case KindBudget:
		return "budget-exceeded"
	case KindDeadline:
		return "deadline-exceeded"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Error is the pipeline's structured stream error. Fields that are unknown
// at the detection site hold -1 and are filled in by the recovery point
// that has them (trace.Replay knows the event index and byte offset; a
// detector knows the offending frame).
type Error struct {
	// Layer names the component that detected the fault: "cilk",
	// "peerset", "sp-bags", "spplus", "dag", "trace", "rader", "faults".
	Layer string
	// Kind classifies the fault.
	Kind Kind
	// Event is the index of the offending event in the stream, or -1.
	Event int64
	// Frame is the ID of the offending frame, or -1.
	Frame int64
	// Offset is the byte offset in a trace stream, or -1.
	Offset int64
	// Detail is the human-readable description.
	Detail string
}

// New returns an Error with all positional fields unknown.
func New(layer string, kind Kind, detail string) *Error {
	return &Error{Layer: layer, Kind: kind, Event: -1, Frame: -1, Offset: -1, Detail: detail}
}

// Errorf is New with formatting.
func Errorf(layer string, kind Kind, format string, a ...any) *Error {
	return New(layer, kind, fmt.Sprintf(format, a...))
}

// WithFrame records the offending frame and returns e.
func (e *Error) WithFrame(frame int64) *Error { e.Frame = frame; return e }

// WithEvent records the event index and returns e.
func (e *Error) WithEvent(n int64) *Error { e.Event = n; return e }

// WithOffset records the byte offset and returns e.
func (e *Error) WithOffset(off int64) *Error { e.Offset = off; return e }

// Error implements the error interface.
func (e *Error) Error() string {
	s := fmt.Sprintf("%s: %s: %s", e.Layer, e.Kind, e.Detail)
	switch {
	case e.Event >= 0 && e.Offset >= 0:
		s += fmt.Sprintf(" (event %d, byte offset %d)", e.Event, e.Offset)
	case e.Event >= 0:
		s += fmt.Sprintf(" (event %d)", e.Event)
	case e.Offset >= 0:
		s += fmt.Sprintf(" (byte offset %d)", e.Offset)
	}
	if e.Frame >= 0 {
		s += fmt.Sprintf(" [frame %d]", e.Frame)
	}
	return s
}

// FromPanic translates a recovered panic value into an *Error. A panic
// that already carries an *Error keeps its original layer and fields;
// anything else is wrapped as a consumer panic attributed to layer. It
// returns nil when p is nil so recovery points can call it unconditionally.
func FromPanic(layer string, p any) *Error {
	if p == nil {
		return nil
	}
	if se, ok := p.(*Error); ok {
		return se
	}
	return Errorf(layer, KindConsumer, "panic: %v", p)
}
