package dsu

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMakeSetSingleton(t *testing.T) {
	f := NewForest(4)
	a := f.MakeSet("a")
	b := f.MakeSet("b")
	if f.Same(a, b) {
		t.Fatal("fresh sets must be disjoint")
	}
	if got := f.Payload(a); got != "a" {
		t.Fatalf("payload(a) = %v, want a", got)
	}
	if got := f.Payload(b); got != "b" {
		t.Fatalf("payload(b) = %v, want b", got)
	}
}

func TestUnionKeepsDstPayload(t *testing.T) {
	f := NewForest(4)
	a := f.MakeSet("A")
	b := f.MakeSet("B")
	f.Union(a, b)
	if !f.Same(a, b) {
		t.Fatal("union failed")
	}
	if got := f.Payload(b); got != "A" {
		t.Fatalf("payload after union = %v, want A (dst payload survives)", got)
	}
}

func TestUnionChainPayload(t *testing.T) {
	// Repeatedly union singletons into a growing set; payload must always be
	// the original destination's, regardless of which root rank picks.
	f := NewForest(64)
	dst := f.MakeSet("keep")
	for i := 0; i < 50; i++ {
		e := f.MakeSet(i)
		f.Union(dst, e)
		if got := f.Payload(e); got != "keep" {
			t.Fatalf("after union %d payload = %v, want keep", i, got)
		}
	}
}

func TestUnionSelf(t *testing.T) {
	f := NewForest(2)
	a := f.MakeSet("x")
	if r := f.Union(a, a); r != f.Find(a) {
		t.Fatal("self union should be a no-op returning the root")
	}
	if f.Payload(a) != "x" {
		t.Fatal("self union must not drop payload")
	}
}

func TestSetPayload(t *testing.T) {
	f := NewForest(2)
	a := f.MakeSet("old")
	b := f.MakeSet("junk")
	f.Union(a, b)
	f.SetPayload(b, "new")
	if got := f.Payload(a); got != "new" {
		t.Fatalf("payload = %v, want new", got)
	}
}

func TestFindCompresses(t *testing.T) {
	f := NewForest(1024)
	elems := make([]Elem, 1000)
	for i := range elems {
		elems[i] = f.MakeSet(nil)
	}
	for i := 1; i < len(elems); i++ {
		f.Union(elems[0], elems[i])
	}
	root := f.Find(elems[0])
	for _, e := range elems {
		if f.Find(e) != root {
			t.Fatal("all elements must share one root")
		}
	}
	// After compression every node points at the root directly.
	for _, e := range elems {
		if p := f.nodes[e].parent; p != root {
			t.Fatalf("node %d parent = %d, want root %d after compression", e, p, root)
		}
	}
}

// refDSU is a trivially correct reference: set membership by map coloring.
type refDSU struct {
	color   map[int]int
	payload map[int]any
	next    int
}

func newRefDSU() *refDSU {
	return &refDSU{color: map[int]int{}, payload: map[int]any{}}
}

func (r *refDSU) makeSet(p any) int {
	id := r.next
	r.next++
	r.color[id] = id
	r.payload[id] = p
	return id
}

func (r *refDSU) union(dst, src int) {
	cd, cs := r.color[dst], r.color[src]
	if cd == cs {
		return
	}
	keep := r.payload[cd]
	for k, c := range r.color {
		if c == cs {
			r.color[k] = cd
		}
	}
	delete(r.payload, cs)
	r.payload[cd] = keep
}

func (r *refDSU) same(a, b int) bool { return r.color[a] == r.color[b] }

func (r *refDSU) pay(e int) any { return r.payload[r.color[e]] }

// TestQuickAgainstReference drives Forest and a reference implementation with
// the same random operation sequence and requires identical observable
// behaviour (Same and Payload on random pairs).
func TestQuickAgainstReference(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f := NewForest(0)
		ref := newRefDSU()
		var elems []Elem
		var refs []int
		for op := 0; op < 300; op++ {
			switch {
			case len(elems) < 2 || rng.Intn(3) == 0:
				p := rng.Intn(1000)
				elems = append(elems, f.MakeSet(p))
				refs = append(refs, ref.makeSet(p))
			default:
				i, j := rng.Intn(len(elems)), rng.Intn(len(elems))
				f.Union(elems[i], elems[j])
				ref.union(refs[i], refs[j])
			}
			a, b := rng.Intn(len(elems)), rng.Intn(len(elems))
			if f.Same(elems[a], elems[b]) != ref.same(refs[a], refs[b]) {
				return false
			}
			if f.Payload(elems[a]) != ref.pay(refs[a]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestNaiveForestMatchesForest(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := NewForest(0)
	n := NewNaiveForest()
	var fe []Elem
	var ne []Elem
	for op := 0; op < 500; op++ {
		if len(fe) < 2 || rng.Intn(3) == 0 {
			p := rng.Intn(100)
			fe = append(fe, f.MakeSet(p))
			ne = append(ne, n.MakeSet(p))
		} else {
			i, j := rng.Intn(len(fe)), rng.Intn(len(fe))
			f.Union(fe[i], fe[j])
			n.Union(ne[i], ne[j])
		}
		a, b := rng.Intn(len(fe)), rng.Intn(len(fe))
		if f.Same(fe[a], fe[b]) != (n.Find(ne[a]) == n.Find(ne[b])) {
			t.Fatal("naive and fast forests disagree on Same")
		}
		if f.Payload(fe[a]) != n.Payload(ne[a]) {
			t.Fatal("naive and fast forests disagree on Payload")
		}
	}
}

func TestStats(t *testing.T) {
	f := NewForest(4)
	a := f.MakeSet(nil)
	b := f.MakeSet(nil)
	f.Union(a, b)
	f.Find(a)
	finds, unions := f.Stats()
	if unions != 1 {
		t.Fatalf("unions = %d, want 1", unions)
	}
	if finds < 3 { // two inside Union, one explicit
		t.Fatalf("finds = %d, want >= 3", finds)
	}
}

func BenchmarkAblationPathCompression(b *testing.B) {
	const n = 1 << 12
	b.Run("forest", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f := NewForest(n)
			elems := make([]Elem, n)
			for j := range elems {
				elems[j] = f.MakeSet(nil)
			}
			for j := 1; j < n; j++ {
				f.Union(elems[j], elems[j-1])
			}
			for j := 0; j < n; j++ {
				f.Find(elems[j])
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f := NewNaiveForest()
			elems := make([]Elem, n)
			for j := range elems {
				elems[j] = f.MakeSet(nil)
			}
			for j := 1; j < n; j++ {
				f.Union(elems[j], elems[j-1])
			}
			for j := 0; j < n; j++ {
				f.Find(elems[j])
			}
		}
	})
}
