// Package dsu implements a fast disjoint-set (union-find) data structure
// with union by rank and path compression, following CLRS chapter 21, which
// is the structure the Peer-Set and SP+ algorithms use to maintain their
// "bags" of procedure IDs. Each set root carries an opaque payload (the bag
// descriptor), so FindBag is a Find plus one pointer chase.
//
// Amortized cost per operation is O(alpha(n)), Tarjan's functional inverse
// of Ackermann's function, which is the alpha that appears in the paper's
// Theorem 1 and Theorem 5 running-time bounds.
package dsu

// Elem is the handle for one element of the universe. Elements are created
// by Forest.MakeSet and are meaningful only with the Forest that made them.
type Elem int32

// None is the zero Elem sentinel for "no element". MakeSet never returns it.
const None Elem = -1

type node struct {
	parent Elem
	rank   int8
}

// Forest is a collection of disjoint sets over elements it has created.
// The zero value is an empty forest ready for use.
type Forest struct {
	nodes   []node
	payload []any // payload[root] is the set's bag descriptor; nil elsewhere
	finds   uint64
	unions  uint64
}

// NewForest returns a forest with capacity preallocated for n elements.
func NewForest(n int) *Forest {
	return &Forest{
		nodes:   make([]node, 0, n),
		payload: make([]any, 0, n),
	}
}

// Len reports how many elements have been created.
func (f *Forest) Len() int { return len(f.nodes) }

// MakeSet creates a fresh singleton set and returns its element. The new
// set's payload is p.
func (f *Forest) MakeSet(p any) Elem {
	e := Elem(len(f.nodes))
	f.nodes = append(f.nodes, node{parent: e})
	f.payload = append(f.payload, p)
	return e
}

// Find returns the representative (root) of the set containing e,
// compressing the path along the way.
func (f *Forest) Find(e Elem) Elem {
	f.finds++
	root := e
	for f.nodes[root].parent != root {
		root = f.nodes[root].parent
	}
	for f.nodes[e].parent != root {
		e, f.nodes[e].parent = f.nodes[e].parent, root
	}
	return root
}

// Payload returns the payload attached to the set containing e.
func (f *Forest) Payload(e Elem) any {
	return f.payload[f.Find(e)]
}

// SetPayload replaces the payload of the set containing e.
func (f *Forest) SetPayload(e Elem, p any) {
	f.payload[f.Find(e)] = p
}

// Union merges the set containing src into the set containing dst and
// returns the new root. The payload of dst's set survives; src's payload is
// dropped. This directed flavour is what the bag algorithms need: "union bag
// B into bag A" keeps A's identity (its kind and view ID).
func (f *Forest) Union(dst, src Elem) Elem {
	f.unions++
	rd, rs := f.Find(dst), f.Find(src)
	if rd == rs {
		return rd
	}
	keep := f.payload[rd]
	// Union by rank, then make sure the surviving root carries dst's payload.
	var root Elem
	if f.nodes[rd].rank < f.nodes[rs].rank {
		f.nodes[rd].parent = rs
		root = rs
	} else if f.nodes[rd].rank > f.nodes[rs].rank {
		f.nodes[rs].parent = rd
		root = rd
	} else {
		f.nodes[rs].parent = rd
		f.nodes[rd].rank++
		root = rd
	}
	f.payload[rd] = nil
	f.payload[rs] = nil
	f.payload[root] = keep
	return root
}

// Same reports whether a and b are in the same set.
func (f *Forest) Same(a, b Elem) bool { return f.Find(a) == f.Find(b) }

// Stats reports the number of Find and Union operations performed, for the
// harness's accounting of detector work.
func (f *Forest) Stats() (finds, unions uint64) { return f.finds, f.unions }

// Clone returns a structurally independent copy of the forest: parent
// links, ranks, payload slots and operation counters. Payload values are
// copied shallowly — callers whose payloads are mutable pointers (the bag
// detectors) must remap them afterward.
func (f *Forest) Clone() *Forest {
	return &Forest{
		nodes:   append(make([]node, 0, len(f.nodes)), f.nodes...),
		payload: append(make([]any, 0, len(f.payload)), f.payload...),
		finds:   f.finds,
		unions:  f.unions,
	}
}

// CopyFrom makes f an independent copy of src, reusing f's slice capacity
// where possible — the pooled-reuse counterpart of Clone.
func (f *Forest) CopyFrom(src *Forest) {
	f.nodes = append(f.nodes[:0], src.nodes...)
	f.payload = append(f.payload[:0], src.payload...)
	f.finds, f.unions = src.finds, src.unions
}

// Payloads gives mutable access to the payload slots (indexed by root
// element) so a Clone caller can remap pointer payloads in place.
func (f *Forest) Payloads() []any { return f.payload }

// Reset empties the forest, keeping allocated capacity for reuse.
func (f *Forest) Reset() {
	f.nodes = f.nodes[:0]
	for i := range f.payload {
		f.payload[i] = nil
	}
	f.payload = f.payload[:0]
	f.finds, f.unions = 0, 0
}

// NaiveForest is a linked-list disjoint-set without path compression or
// union by rank. It exists only as the ablation baseline for
// BenchmarkAblationPathCompression; production code uses Forest.
type NaiveForest struct {
	parent  []Elem
	payload []any
}

// NewNaiveForest returns an empty naive forest.
func NewNaiveForest() *NaiveForest { return &NaiveForest{} }

// MakeSet creates a fresh singleton set with payload p.
func (f *NaiveForest) MakeSet(p any) Elem {
	e := Elem(len(f.parent))
	f.parent = append(f.parent, e)
	f.payload = append(f.payload, p)
	return e
}

// Find returns the root of e's set without compressing.
func (f *NaiveForest) Find(e Elem) Elem {
	for f.parent[e] != e {
		e = f.parent[e]
	}
	return e
}

// Payload returns the payload of e's set.
func (f *NaiveForest) Payload(e Elem) any { return f.payload[f.Find(e)] }

// Union merges src's set into dst's, keeping dst's payload.
func (f *NaiveForest) Union(dst, src Elem) Elem {
	rd, rs := f.Find(dst), f.Find(src)
	if rd == rs {
		return rd
	}
	f.parent[rs] = rd
	f.payload[rs] = nil
	return rd
}
