package reducer

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/cilk"
	"repro/internal/progs"
)

// specs exercised by every determinism test.
var specs = []cilk.StealSpec{
	nil,
	cilk.StealAll{},
	cilk.StealAll{Reduce: cilk.ReduceEager},
	cilk.StealAll{Reduce: cilk.ReduceMiddleFirst},
	progs.RandomSpec{Seed: 11, P: 0.4},
}

func TestOpAddDeterministic(t *testing.T) {
	for _, spec := range specs {
		var got int
		cilk.Run(func(c *cilk.Ctx) {
			h := New[int](c, "sum", OpAdd[int](), 0)
			c.ParForGrain("add", 100, 3, func(cc *cilk.Ctx, i int) {
				h.Update(cc, func(_ *cilk.Ctx, v int) int { return v + i })
			})
			got = h.Value(c)
		}, cilk.Config{Spec: spec})
		if got != 4950 {
			t.Fatalf("spec %#v: sum = %d, want 4950", spec, got)
		}
	}
}

func TestOpMulDeterministic(t *testing.T) {
	for _, spec := range specs {
		var got uint64
		cilk.Run(func(c *cilk.Ctx) {
			h := New[uint64](c, "prod", OpMul[uint64](), 1)
			c.ParForGrain("mul", 20, 2, func(cc *cilk.Ctx, i int) {
				h.Update(cc, func(_ *cilk.Ctx, v uint64) uint64 { return v * uint64(i+1) })
			})
			got = h.Value(c)
		}, cilk.Config{Spec: spec})
		want := uint64(1)
		for i := 1; i <= 20; i++ {
			want *= uint64(i)
		}
		if got != want {
			t.Fatalf("prod = %d, want %d", got, want)
		}
	}
}

func TestOpMaxIndexDeterministicTies(t *testing.T) {
	// Two equal maxima: the serially-earlier index must win under every
	// schedule (associativity without commutativity).
	vals := []int{3, 9, 1, 9, 5}
	for _, spec := range specs {
		var got MaxView[int]
		cilk.Run(func(c *cilk.Ctx) {
			h := New[MaxView[int]](c, "max", OpMax[int](), MaxView[int]{})
			c.ParForGrain("scan", len(vals), 1, func(cc *cilk.Ctx, i int) {
				h.Update(cc, func(_ *cilk.Ctx, v MaxView[int]) MaxView[int] {
					return v.Max(vals[i], i)
				})
			})
			got = h.Value(c)
		}, cilk.Config{Spec: spec})
		if got.Value != 9 || got.Index != 1 {
			t.Fatalf("spec %#v: max = %+v, want value 9 at index 1", spec, got)
		}
	}
}

func TestOpMinIndex(t *testing.T) {
	vals := []int{3, 0, 7, 0}
	for _, spec := range specs {
		var got MinView[int]
		cilk.Run(func(c *cilk.Ctx) {
			h := New[MinView[int]](c, "min", OpMin[int](), MinView[int]{})
			c.ParForGrain("scan", len(vals), 1, func(cc *cilk.Ctx, i int) {
				h.Update(cc, func(_ *cilk.Ctx, v MinView[int]) MinView[int] {
					return v.Min(vals[i], i)
				})
			})
			got = h.Value(c)
		}, cilk.Config{Spec: spec})
		if got.Value != 0 || got.Index != 1 {
			t.Fatalf("min = %+v, want value 0 at index 1", got)
		}
	}
}

func TestBitwiseOps(t *testing.T) {
	for _, spec := range specs {
		var and, or, xor uint32
		cilk.Run(func(c *cilk.Ctx) {
			ha := New[uint32](c, "and", OpAnd[uint32](), ^uint32(0))
			ho := New[uint32](c, "or", OpOr[uint32](), 0)
			hx := New[uint32](c, "xor", OpXor[uint32](), 0)
			c.ParForGrain("bits", 16, 1, func(cc *cilk.Ctx, i int) {
				m := uint32(0xF0F0F0F0 | uint32(i))
				ha.Update(cc, func(_ *cilk.Ctx, v uint32) uint32 { return v & m })
				ho.Update(cc, func(_ *cilk.Ctx, v uint32) uint32 { return v | uint32(1<<i) })
				hx.Update(cc, func(_ *cilk.Ctx, v uint32) uint32 { return v ^ uint32(1<<i) })
			})
			and, or, xor = ha.Value(c), ho.Value(c), hx.Value(c)
		}, cilk.Config{Spec: spec})
		if and != 0xF0F0F0F0 {
			t.Fatalf("and = %#x", and)
		}
		if or != 0xFFFF {
			t.Fatalf("or = %#x", or)
		}
		if xor != 0xFFFF {
			t.Fatalf("xor = %#x", xor)
		}
	}
}

func TestListPreservesSerialOrder(t *testing.T) {
	for _, spec := range specs {
		var got []int
		cilk.Run(func(c *cilk.Ctx) {
			h := New[[]int](c, "list", List[int](), nil)
			c.ParForGrain("app", 50, 2, func(cc *cilk.Ctx, i int) {
				h.Update(cc, func(_ *cilk.Ctx, v []int) []int { return append(v, i) })
			})
			got = h.Value(c)
		}, cilk.Config{Spec: spec})
		for i, v := range got {
			if v != i {
				t.Fatalf("spec %#v: list out of order at %d: %v", spec, i, got[:i+1])
			}
		}
		if len(got) != 50 {
			t.Fatalf("len = %d", len(got))
		}
	}
}

func TestHolderProvidesScratch(t *testing.T) {
	cilk.Run(func(c *cilk.Ctx) {
		h := New[[]byte](c, "scratch", Holder[[]byte](func() []byte { return make([]byte, 8) }), make([]byte, 8))
		c.ParForGrain("use", 20, 1, func(cc *cilk.Ctx, i int) {
			h.Update(cc, func(_ *cilk.Ctx, buf []byte) []byte {
				buf[0] = byte(i) // private workspace, no race
				return buf
			})
		})
	}, cilk.Config{Spec: cilk.StealAll{}})
}

func TestOstreamSerialOrder(t *testing.T) {
	for _, spec := range specs {
		var got string
		cilk.Run(func(c *cilk.Ctx) {
			h := New[*Ostream](c, "out", OstreamMonoid(), &Ostream{})
			c.ParForGrain("emit", 20, 2, func(cc *cilk.Ctx, i int) {
				h.Update(cc, func(_ *cilk.Ctx, o *Ostream) *Ostream {
					o.Printf("%d,", i)
					return o
				})
			})
			got = h.Value(c).String()
		}, cilk.Config{Spec: spec})
		want := ""
		for i := 0; i < 20; i++ {
			want += fmt.Sprintf("%d,", i)
		}
		if got != want {
			t.Fatalf("spec %#v: ostream = %q, want %q", spec, got, want)
		}
	}
}

func TestHypervectorOrder(t *testing.T) {
	var got []string
	cilk.Run(func(c *cilk.Ctx) {
		h := New[*Hypervector[string]](c, "hv", HypervectorMonoid[string](), &Hypervector[string]{})
		c.ParForGrain("emit", 30, 1, func(cc *cilk.Ctx, i int) {
			h.Update(cc, func(_ *cilk.Ctx, v *Hypervector[string]) *Hypervector[string] {
				v.Append(fmt.Sprintf("e%02d", i))
				return v
			})
		})
		got = h.Value(c).Elems
	}, cilk.Config{Spec: cilk.StealAll{Reduce: cilk.ReduceEager}})
	if !sort.StringsAreSorted(got) || len(got) != 30 {
		t.Fatalf("hypervector out of order: %v", got)
	}
}

// --- Bag ---

func TestBagInsertLen(t *testing.T) {
	b := NewBag[int]()
	for i := 0; i < 1000; i++ {
		if b.Len() != i {
			t.Fatalf("len = %d, want %d", b.Len(), i)
		}
		b.Insert(i)
	}
	seen := make(map[int]bool)
	b.ForEach(func(x int) { seen[x] = true })
	if len(seen) != 1000 {
		t.Fatalf("ForEach visited %d distinct, want 1000", len(seen))
	}
}

func TestBagUnionPreservesElements(t *testing.T) {
	check := func(na, nb uint8) bool {
		a, b := NewBag[int](), NewBag[int]()
		want := make(map[int]int)
		for i := 0; i < int(na); i++ {
			a.Insert(i)
			want[i]++
		}
		for i := 0; i < int(nb); i++ {
			b.Insert(1000 + i)
			want[1000+i]++
		}
		a.Union(b)
		if a.Len() != int(na)+int(nb) {
			return false
		}
		if !b.Empty() {
			return false
		}
		got := make(map[int]int)
		a.ForEach(func(x int) { got[x]++ })
		if len(got) != len(want) {
			return false
		}
		for k, v := range want {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBagPennantStructure(t *testing.T) {
	// A bag of n elements has pennants exactly at the set bits of n.
	for _, n := range []int{1, 2, 3, 7, 8, 100, 255, 256} {
		b := NewBag[int]()
		for i := 0; i < n; i++ {
			b.Insert(i)
		}
		count := 0
		total := 0
		for _, pn := range b.Pennants() {
			count++
			size := 0
			var walk func(p *Pennant[int])
			walk = func(p *Pennant[int]) {
				if p == nil {
					return
				}
				size++
				l, r := p.Children()
				walk(l)
				walk(r)
			}
			walk(pn)
			if size&(size-1) != 0 {
				t.Fatalf("n=%d: pennant size %d not a power of two", n, size)
			}
			total += size
		}
		if total != n {
			t.Fatalf("n=%d: pennants hold %d elements", n, total)
		}
		bits := 0
		for m := n; m > 0; m >>= 1 {
			bits += m & 1
		}
		if count != bits {
			t.Fatalf("n=%d: %d pennants, want %d (popcount)", n, count, bits)
		}
	}
}

func TestBagReducerDeterministicContents(t *testing.T) {
	// The bag is unordered, but its element multiset must be identical
	// under every schedule.
	collect := func(spec cilk.StealSpec) []int {
		var out []int
		cilk.Run(func(c *cilk.Ctx) {
			h := New[*Bag[int]](c, "bag", BagMonoid[int](), NewBag[int]())
			c.ParForGrain("ins", 200, 4, func(cc *cilk.Ctx, i int) {
				h.Update(cc, func(_ *cilk.Ctx, b *Bag[int]) *Bag[int] {
					b.Insert(i)
					return b
				})
			})
			h.Value(c).ForEach(func(x int) { out = append(out, x) })
		}, cilk.Config{Spec: spec})
		sort.Ints(out)
		return out
	}
	want := collect(nil)
	if len(want) != 200 {
		t.Fatalf("bag has %d elements", len(want))
	}
	for _, spec := range specs[1:] {
		got := collect(spec)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("spec %#v: bag contents differ", spec)
		}
	}
}

func TestBagUnionRandomSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	bags := make([]*Bag[int], 8)
	want := 0
	for i := range bags {
		bags[i] = NewBag[int]()
		n := rng.Intn(100)
		for j := 0; j < n; j++ {
			bags[i].Insert(want)
			want++
		}
	}
	for len(bags) > 1 {
		i := rng.Intn(len(bags) - 1)
		bags[i].Union(bags[i+1])
		bags = append(bags[:i+1], bags[i+2:]...)
	}
	if bags[0].Len() != want {
		t.Fatalf("merged bag has %d, want %d", bags[0].Len(), want)
	}
	seen := make(map[int]bool)
	bags[0].ForEach(func(x int) { seen[x] = true })
	if len(seen) != want {
		t.Fatalf("distinct = %d, want %d", len(seen), want)
	}
}
