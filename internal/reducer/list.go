package reducer

import "repro/internal/cilk"

// LinkedList is the list reducer's view as Cilk++ actually ships it: a
// singly linked list with head and tail pointers so Reduce is an O(1)
// splice — the very operation whose hidden write the paper's Figure 1
// race lives in. The slice-based List monoid in this package is simpler
// but its Combine copies; LinkedList keeps reduction constant-time, which
// matters when τ appears in SP+'s O((T+Mτ)·α) bound.
type LinkedList[T any] struct {
	head, tail *listNode[T]
	n          int
}

type listNode[T any] struct {
	v    T
	next *listNode[T]
}

// PushBack appends v in O(1).
func (l *LinkedList[T]) PushBack(v T) {
	n := &listNode[T]{v: v}
	if l.tail == nil {
		l.head, l.tail = n, n
	} else {
		l.tail.next = n
		l.tail = n
	}
	l.n++
}

// Len reports the element count.
func (l *LinkedList[T]) Len() int { return l.n }

// Splice appends other's nodes in O(1), emptying other.
func (l *LinkedList[T]) Splice(other *LinkedList[T]) {
	if other.head == nil {
		return
	}
	if l.tail == nil {
		l.head, l.tail = other.head, other.tail
	} else {
		l.tail.next = other.head
		l.tail = other.tail
	}
	l.n += other.n
	other.head, other.tail, other.n = nil, nil, 0
}

// Slice materializes the contents in order.
func (l *LinkedList[T]) Slice() []T {
	out := make([]T, 0, l.n)
	for n := l.head; n != nil; n = n.next {
		out = append(out, n.v)
	}
	return out
}

// ForEach visits elements in order.
func (l *LinkedList[T]) ForEach(f func(T)) {
	for n := l.head; n != nil; n = n.next {
		f(n.v)
	}
}

// LinkedListMonoid splices views in serial order with O(1) Combine.
func LinkedListMonoid[T any]() cilk.Monoid {
	return typed[*LinkedList[T]]{
		identity: func(*cilk.Ctx) *LinkedList[T] { return &LinkedList[T]{} },
		combine: func(_ *cilk.Ctx, l, r *LinkedList[T]) *LinkedList[T] {
			l.Splice(r)
			return l
		},
	}
}

// MapMonoid merges map views: keys unique to either side transfer; keys
// present in both combine their values with the supplied (associative)
// value combiner, left value first — so per-key results equal the serial
// reduction over that key's updates.
func MapMonoid[K comparable, V any](combineValue func(l, r V) V) cilk.Monoid {
	return typed[map[K]V]{
		identity: func(*cilk.Ctx) map[K]V { return make(map[K]V) },
		combine: func(_ *cilk.Ctx, l, r map[K]V) map[K]V {
			// Merge the smaller side into the larger when the larger is
			// the left (serial-earlier) view; if the right view is larger
			// we still must merge into l to keep left-bias of the value
			// combiner, so only the iteration cost differs.
			for k, rv := range r {
				if lv, ok := l[k]; ok {
					l[k] = combineValue(lv, rv)
				} else {
					l[k] = rv
				}
			}
			return l
		},
	}
}

// Histogram is a MapMonoid specialization counting occurrences.
func Histogram[K comparable]() cilk.Monoid {
	return MapMonoid[K, int](func(l, r int) int { return l + r })
}

// Moments is a statistics reducer view: count, sum, min and max of a
// stream of float64 observations.
type Moments struct {
	Count    int
	Sum      float64
	Min, Max float64
}

// Observe folds one observation into the view.
func (m Moments) Observe(x float64) Moments {
	if m.Count == 0 {
		return Moments{Count: 1, Sum: x, Min: x, Max: x}
	}
	m.Count++
	m.Sum += x
	if x < m.Min {
		m.Min = x
	}
	if x > m.Max {
		m.Max = x
	}
	return m
}

// Mean returns the running mean (0 for an empty view).
func (m Moments) Mean() float64 {
	if m.Count == 0 {
		return 0
	}
	return m.Sum / float64(m.Count)
}

// MomentsMonoid combines statistics views; commutative and associative.
func MomentsMonoid() cilk.Monoid {
	return typed[Moments]{
		identity: func(*cilk.Ctx) Moments { return Moments{} },
		combine: func(_ *cilk.Ctx, l, r Moments) Moments {
			if l.Count == 0 {
				return r
			}
			if r.Count == 0 {
				return l
			}
			out := Moments{Count: l.Count + r.Count, Sum: l.Sum + r.Sum, Min: l.Min, Max: l.Max}
			if r.Min < out.Min {
				out.Min = r.Min
			}
			if r.Max > out.Max {
				out.Max = r.Max
			}
			return out
		},
	}
}
