package reducer

import "repro/internal/cilk"

// Bag is the Leiserson–Schardl pennant bag from "A work-efficient parallel
// breadth-first search algorithm (or how to cope with the nondeterminism
// of reducers)" — the reducer data structure the paper's pbfs benchmark
// uses. A pennant is a tree of 2^k elements whose root has a single child
// that is a complete binary tree of 2^k−1 elements; a bag is a sparse
// array of pennants, one per set bit of the element count, maintained like
// a binary counter. Insert is O(1) amortized; Union of two bags is
// O(log n) pointer surgery (a full adder over pennants), which is what
// makes the bag an efficient reducer monoid.
type Bag[T any] struct {
	spine []*pennant[T]
	n     int
}

type pennant[T any] struct {
	el   T
	l, r *pennant[T]
}

// pennantUnion combines two pennants of equal size 2^k into one of size
// 2^(k+1): y adopts x's child tree as its right child and becomes x's
// child.
func pennantUnion[T any](x, y *pennant[T]) *pennant[T] {
	y.r = x.l
	x.l = y
	return x
}

// pennantSplit undoes pennantUnion, halving a pennant of size 2^(k+1)
// into two of size 2^k.
func pennantSplit[T any](x *pennant[T]) (*pennant[T], *pennant[T]) {
	y := x.l
	x.l = y.r
	y.r = nil
	return x, y
}

// NewBag returns an empty bag.
func NewBag[T any]() *Bag[T] { return &Bag[T]{} }

// Len reports the number of elements in the bag.
func (b *Bag[T]) Len() int { return b.n }

// Empty reports whether the bag holds no elements.
func (b *Bag[T]) Empty() bool { return b.n == 0 }

// Insert adds one element, carrying pennants like a binary counter.
func (b *Bag[T]) Insert(x T) {
	p := &pennant[T]{el: x}
	k := 0
	for {
		if k == len(b.spine) {
			b.spine = append(b.spine, nil)
		}
		if b.spine[k] == nil {
			b.spine[k] = p
			break
		}
		p = pennantUnion(b.spine[k], p)
		b.spine[k] = nil
		k++
	}
	b.n++
}

// Union merges other into b in O(log n) time, emptying other. Merging is a
// full adder over the two spines; element order inside pennants is
// unspecified, which is fine because a bag is unordered by contract.
func (b *Bag[T]) Union(other *Bag[T]) {
	if other.n == 0 {
		return
	}
	if len(other.spine) > len(b.spine) {
		b.spine, other.spine = other.spine, b.spine
	}
	var carry *pennant[T]
	for k := 0; k < len(b.spine); k++ {
		var o *pennant[T]
		if k < len(other.spine) {
			o = other.spine[k]
		}
		b.spine[k], carry = fullAdder(b.spine[k], o, carry)
		if o == nil && carry == nil && k >= len(other.spine) {
			break
		}
	}
	if carry != nil {
		b.spine = append(b.spine, carry)
	}
	b.n += other.n
	other.spine = nil
	other.n = 0
}

func fullAdder[T any](x, y, z *pennant[T]) (sum, carry *pennant[T]) {
	switch {
	case x == nil && y == nil:
		return z, nil
	case x == nil && z == nil:
		return y, nil
	case y == nil && z == nil:
		return x, nil
	case x == nil:
		return nil, pennantUnion(y, z)
	case y == nil:
		return nil, pennantUnion(x, z)
	case z == nil:
		return nil, pennantUnion(x, y)
	default:
		return x, pennantUnion(y, z)
	}
}

// ForEach visits every element serially.
func (b *Bag[T]) ForEach(f func(T)) {
	for _, p := range b.spine {
		walkPennant(p, f)
	}
}

func walkPennant[T any](p *pennant[T], f func(T)) {
	if p == nil {
		return
	}
	f(p.el)
	walkPennant(p.l, f)
	walkPennant(p.r, f)
}

// Pennants returns the bag's pennants for parallel traversal: callers
// spawn one task per pennant and recurse over each pennant with Split.
func (b *Bag[T]) Pennants() []*Pennant[T] {
	var out []*Pennant[T]
	for _, p := range b.spine {
		if p != nil {
			out = append(out, &Pennant[T]{p: p})
		}
	}
	return out
}

// Pennant is an exported handle over one pennant for parallel walks.
type Pennant[T any] struct{ p *pennant[T] }

// Element returns the pennant root's element.
func (pn *Pennant[T]) Element() T { return pn.p.el }

// Children returns the root's subtrees (either may be nil).
func (pn *Pennant[T]) Children() (l, r *Pennant[T]) {
	if pn.p.l != nil {
		l = &Pennant[T]{p: pn.p.l}
	}
	if pn.p.r != nil {
		r = &Pennant[T]{p: pn.p.r}
	}
	return l, r
}

// BagMonoid is the bag-union monoid: identity is the empty bag, Combine
// unions the right (serially later) bag into the left.
func BagMonoid[T any]() cilk.Monoid {
	return typed[*Bag[T]]{
		identity: func(*cilk.Ctx) *Bag[T] { return NewBag[T]() },
		combine: func(_ *cilk.Ctx, l, r *Bag[T]) *Bag[T] {
			l.Union(r)
			return l
		},
	}
}
