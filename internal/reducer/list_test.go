package reducer

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/cilk"
)

func TestLinkedListBasics(t *testing.T) {
	var l LinkedList[int]
	for i := 0; i < 5; i++ {
		l.PushBack(i)
	}
	if l.Len() != 5 {
		t.Fatalf("len = %d", l.Len())
	}
	if fmt.Sprint(l.Slice()) != "[0 1 2 3 4]" {
		t.Fatalf("slice = %v", l.Slice())
	}
	var other LinkedList[int]
	other.PushBack(5)
	other.PushBack(6)
	l.Splice(&other)
	if l.Len() != 7 || other.Len() != 0 {
		t.Fatal("splice must move everything")
	}
	sum := 0
	l.ForEach(func(v int) { sum += v })
	if sum != 21 {
		t.Fatalf("foreach sum = %d", sum)
	}
	// Splice into empty, splice of empty.
	var e LinkedList[int]
	e.Splice(&l)
	if e.Len() != 7 {
		t.Fatal("splice into empty")
	}
	e.Splice(&other)
	if e.Len() != 7 {
		t.Fatal("splice of empty must be a no-op")
	}
}

func TestLinkedListReducerSerialOrder(t *testing.T) {
	for _, spec := range specs {
		var got []int
		cilk.Run(func(c *cilk.Ctx) {
			h := New[*LinkedList[int]](c, "ll", LinkedListMonoid[int](), &LinkedList[int]{})
			c.ParForGrain("app", 60, 2, func(cc *cilk.Ctx, i int) {
				h.Update(cc, func(_ *cilk.Ctx, l *LinkedList[int]) *LinkedList[int] {
					l.PushBack(i)
					return l
				})
			})
			got = h.Value(c).Slice()
		}, cilk.Config{Spec: spec})
		if len(got) != 60 {
			t.Fatalf("len = %d", len(got))
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("spec %#v: out of order at %d: %v", spec, i, got[:i+1])
			}
		}
	}
}

func TestMapMonoidMergesPerKey(t *testing.T) {
	for _, spec := range specs {
		var got map[string]int
		cilk.Run(func(c *cilk.Ctx) {
			h := New[map[string]int](c, "m", MapMonoid[string, int](func(l, r int) int { return l + r }),
				map[string]int{})
			c.ParForGrain("upd", 90, 3, func(cc *cilk.Ctx, i int) {
				key := fmt.Sprintf("k%d", i%3)
				h.Update(cc, func(_ *cilk.Ctx, m map[string]int) map[string]int {
					m[key] += i
					return m
				})
			})
			got = h.Value(c)
		}, cilk.Config{Spec: spec})
		want := map[string]int{"k0": 0, "k1": 0, "k2": 0}
		for i := 0; i < 90; i++ {
			want[fmt.Sprintf("k%d", i%3)] += i
		}
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("spec %#v: %s = %d, want %d", spec, k, got[k], v)
			}
		}
	}
}

func TestMapMonoidNonCommutativeValues(t *testing.T) {
	// Per-key values concatenate in serial order even though the map
	// itself is unordered.
	var got map[int]string
	cilk.Run(func(c *cilk.Ctx) {
		h := New[map[int]string](c, "m", MapMonoid[int, string](func(l, r string) string { return l + r }),
			map[int]string{})
		c.ParForGrain("upd", 12, 1, func(cc *cilk.Ctx, i int) {
			h.Update(cc, func(_ *cilk.Ctx, m map[int]string) map[int]string {
				m[i%2] += fmt.Sprintf("%d,", i)
				return m
			})
		})
		got = h.Value(c)
	}, cilk.Config{Spec: cilk.StealAll{Reduce: cilk.ReduceMiddleFirst}})
	if got[0] != "0,2,4,6,8,10," || got[1] != "1,3,5,7,9,11," {
		t.Fatalf("per-key serial order broken: %v", got)
	}
}

func TestHistogram(t *testing.T) {
	var got map[byte]int
	data := []byte("abracadabra")
	cilk.Run(func(c *cilk.Ctx) {
		h := New[map[byte]int](c, "hist", Histogram[byte](), map[byte]int{})
		c.ParForGrain("count", len(data), 1, func(cc *cilk.Ctx, i int) {
			h.Update(cc, func(_ *cilk.Ctx, m map[byte]int) map[byte]int {
				m[data[i]]++
				return m
			})
		})
		got = h.Value(c)
	}, cilk.Config{Spec: cilk.StealAll{}})
	if got['a'] != 5 || got['b'] != 2 || got['r'] != 2 || got['c'] != 1 || got['d'] != 1 {
		t.Fatalf("histogram = %v", got)
	}
}

func TestMomentsReducer(t *testing.T) {
	for _, spec := range specs {
		var got Moments
		cilk.Run(func(c *cilk.Ctx) {
			h := New[Moments](c, "stats", MomentsMonoid(), Moments{})
			c.ParForGrain("obs", 100, 4, func(cc *cilk.Ctx, i int) {
				h.Update(cc, func(_ *cilk.Ctx, m Moments) Moments {
					return m.Observe(float64(i))
				})
			})
			got = h.Value(c)
		}, cilk.Config{Spec: spec})
		if got.Count != 100 || got.Min != 0 || got.Max != 99 {
			t.Fatalf("moments = %+v", got)
		}
		if math.Abs(got.Mean()-49.5) > 1e-9 {
			t.Fatalf("mean = %f", got.Mean())
		}
	}
	if (Moments{}).Mean() != 0 {
		t.Fatal("empty mean must be 0")
	}
}
