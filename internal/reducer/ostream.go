package reducer

import (
	"bytes"
	"fmt"
	"io"

	"repro/internal/cilk"
)

// Ostream is the view type of the reducer_ostream hyperobject: parallel
// subcomputations write freely to their view's buffer, and reduction
// concatenates buffers in serial order, so the final output reads exactly
// as a serial execution would have produced it. The paper's dedup and
// ferret benchmarks write their output through one of these.
type Ostream struct {
	buf bytes.Buffer
}

// Write implements io.Writer.
func (o *Ostream) Write(p []byte) (int, error) { return o.buf.Write(p) }

// WriteString appends s.
func (o *Ostream) WriteString(s string) { o.buf.WriteString(s) }

// Printf appends formatted output.
func (o *Ostream) Printf(format string, args ...any) {
	fmt.Fprintf(&o.buf, format, args...)
}

// Len reports the buffered byte count.
func (o *Ostream) Len() int { return o.buf.Len() }

// Bytes returns the buffered output.
func (o *Ostream) Bytes() []byte { return o.buf.Bytes() }

// String returns the buffered output as a string.
func (o *Ostream) String() string { return o.buf.String() }

// WriteTo flushes the buffered output to w.
func (o *Ostream) WriteTo(w io.Writer) (int64, error) { return o.buf.WriteTo(w) }

// OstreamMonoid concatenates views in serial order.
func OstreamMonoid() cilk.Monoid {
	return typed[*Ostream]{
		identity: func(*cilk.Ctx) *Ostream { return &Ostream{} },
		combine: func(_ *cilk.Ctx, l, r *Ostream) *Ostream {
			l.buf.Write(r.buf.Bytes())
			return l
		},
	}
}

// Hypervector is the appendable-vector reducer the paper's collision
// benchmark uses: Update appends to the view's slice, Combine concatenates
// preserving serial order. It differs from List by tracking capacity
// explicitly so Combine can reuse the left view's storage.
type Hypervector[T any] struct {
	Elems []T
}

// Append adds x to the view.
func (h *Hypervector[T]) Append(x T) { h.Elems = append(h.Elems, x) }

// Len reports the element count.
func (h *Hypervector[T]) Len() int { return len(h.Elems) }

// HypervectorMonoid concatenates hypervectors in serial order.
func HypervectorMonoid[T any]() cilk.Monoid {
	return typed[*Hypervector[T]]{
		identity: func(*cilk.Ctx) *Hypervector[T] { return &Hypervector[T]{} },
		combine: func(_ *cilk.Ctx, l, r *Hypervector[T]) *Hypervector[T] {
			l.Elems = append(l.Elems, r.Elems...)
			return l
		},
	}
}
