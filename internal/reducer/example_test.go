package reducer_test

import (
	"fmt"

	"repro/internal/cilk"
	"repro/internal/reducer"
)

// Example shows the canonical reducer pattern: parallel updates, one read
// after the sync, deterministic under any schedule.
func Example() {
	var total int
	prog := func(c *cilk.Ctx) {
		sum := reducer.New[int](c, "sum", reducer.OpAdd[int](), 0)
		c.ParFor("loop", 100, func(cc *cilk.Ctx, i int) {
			sum.Update(cc, func(_ *cilk.Ctx, v int) int { return v + i })
		})
		total = sum.Value(c)
	}
	cilk.Run(prog, cilk.Config{Spec: cilk.StealAll{}})
	fmt.Println(total)
	// Output: 4950
}

// ExampleOstreamMonoid demonstrates order-preserving parallel output: the
// reduction concatenates buffers in serial order, so the result reads as
// if the loop had run sequentially.
func ExampleOstreamMonoid() {
	var out string
	prog := func(c *cilk.Ctx) {
		h := reducer.New[*reducer.Ostream](c, "out", reducer.OstreamMonoid(), &reducer.Ostream{})
		c.ParForGrain("emit", 5, 1, func(cc *cilk.Ctx, i int) {
			h.Update(cc, func(_ *cilk.Ctx, o *reducer.Ostream) *reducer.Ostream {
				o.Printf("line %d\n", i)
				return o
			})
		})
		out = h.Value(c).String()
	}
	cilk.Run(prog, cilk.Config{Spec: cilk.StealAll{Reduce: cilk.ReduceEager}})
	fmt.Print(out)
	// Output:
	// line 0
	// line 1
	// line 2
	// line 3
	// line 4
}

// ExampleBagMonoid inserts into the Leiserson–Schardl pennant bag in
// parallel; unions cost O(log n) and the element multiset is
// schedule-independent.
func ExampleBagMonoid() {
	var n int
	prog := func(c *cilk.Ctx) {
		h := reducer.New[*reducer.Bag[int]](c, "bag", reducer.BagMonoid[int](), reducer.NewBag[int]())
		c.ParForGrain("ins", 64, 4, func(cc *cilk.Ctx, i int) {
			h.Update(cc, func(_ *cilk.Ctx, b *reducer.Bag[int]) *reducer.Bag[int] {
				b.Insert(i)
				return b
			})
		})
		n = h.Value(c).Len()
	}
	cilk.Run(prog, cilk.Config{Spec: cilk.StealAll{}})
	fmt.Println(n)
	// Output: 64
}
