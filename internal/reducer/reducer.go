// Package reducer is the reducer library layered over the cilk runtime's
// Monoid interface: the common monoids that Cilk Plus ships (op_add,
// op_mul, op_min/op_max with index, bitwise ops, ostream), plus the
// published reducer data structures the paper's benchmarks use — the
// Leiserson–Schardl pennant Bag that powers PBFS, the hypervector used by
// collision, and a Holder. All reductions are associative but generally
// not commutative, which is the property that makes reducers deterministic
// (§1): Combine(left, right) always receives the serially-earlier view on
// the left.
package reducer

import (
	"repro/internal/cilk"
)

// typed adapts a pair of typed closures to cilk.Monoid.
type typed[T any] struct {
	identity func(c *cilk.Ctx) T
	combine  func(c *cilk.Ctx, l, r T) T
}

func (m typed[T]) Identity(c *cilk.Ctx) any { return m.identity(c) }

func (m typed[T]) Combine(c *cilk.Ctx, l, r any) any {
	return m.combine(c, l.(T), r.(T))
}

// Handle is a typed wrapper around a *cilk.Reducer.
type Handle[T any] struct {
	R *cilk.Reducer
}

// New declares a typed reducer on ctx (a reducer-read).
func New[T any](c *cilk.Ctx, name string, m cilk.Monoid, initial T) Handle[T] {
	return Handle[T]{R: c.NewReducer(name, m, initial)}
}

// NewQuiet declares a typed reducer without the creation reducer-read,
// modeling a global reducer constructed before the computation.
func NewQuiet[T any](c *cilk.Ctx, name string, m cilk.Monoid, initial T) Handle[T] {
	return Handle[T]{R: c.NewReducerQuiet(name, m, initial)}
}

// Update applies f to the current view.
func (h Handle[T]) Update(c *cilk.Ctx, f func(c *cilk.Ctx, view T) T) {
	c.Update(h.R, func(cc *cilk.Ctx, v any) any { return f(cc, v.(T)) })
}

// Value retrieves the current view (a reducer-read).
func (h Handle[T]) Value(c *cilk.Ctx) T { return c.Value(h.R).(T) }

// Set resets the current view (a reducer-read).
func (h Handle[T]) Set(c *cilk.Ctx, v T) { c.SetValue(h.R, v) }

// Number is the constraint for the arithmetic monoids.
type Number interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64 |
		~float32 | ~float64
}

// OpAdd is the addition monoid (Cilk Plus reducer_opadd).
func OpAdd[T Number]() cilk.Monoid {
	return typed[T]{
		identity: func(*cilk.Ctx) T { var z T; return z },
		combine:  func(_ *cilk.Ctx, l, r T) T { return l + r },
	}
}

// OpMul is the multiplication monoid (reducer_opmul).
func OpMul[T Number]() cilk.Monoid {
	return typed[T]{
		identity: func(*cilk.Ctx) T { var z T; return z + 1 },
		combine:  func(_ *cilk.Ctx, l, r T) T { return l * r },
	}
}

// MaxView is the view of OpMax: a running maximum plus whether it is set,
// and the serial index where it was attained (reducer_max_index).
type MaxView[T Number] struct {
	Set   bool
	Value T
	Index int
}

// Max folds a candidate into the view.
func (v MaxView[T]) Max(x T, index int) MaxView[T] {
	if !v.Set || x > v.Value {
		return MaxView[T]{Set: true, Value: x, Index: index}
	}
	return v
}

// OpMax is the maximum monoid with index (reducer_max_index). Ties keep
// the serially-earlier index, preserving determinism.
func OpMax[T Number]() cilk.Monoid {
	return typed[MaxView[T]]{
		identity: func(*cilk.Ctx) MaxView[T] { return MaxView[T]{} },
		combine: func(_ *cilk.Ctx, l, r MaxView[T]) MaxView[T] {
			switch {
			case !r.Set:
				return l
			case !l.Set:
				return r
			case r.Value > l.Value:
				return r
			default:
				return l
			}
		},
	}
}

// MinView is the view of OpMin.
type MinView[T Number] struct {
	Set   bool
	Value T
	Index int
}

// Min folds a candidate into the view.
func (v MinView[T]) Min(x T, index int) MinView[T] {
	if !v.Set || x < v.Value {
		return MinView[T]{Set: true, Value: x, Index: index}
	}
	return v
}

// OpMin is the minimum monoid with index (reducer_min_index).
func OpMin[T Number]() cilk.Monoid {
	return typed[MinView[T]]{
		identity: func(*cilk.Ctx) MinView[T] { return MinView[T]{} },
		combine: func(_ *cilk.Ctx, l, r MinView[T]) MinView[T] {
			switch {
			case !r.Set:
				return l
			case !l.Set:
				return r
			case r.Value < l.Value:
				return r
			default:
				return l
			}
		},
	}
}

// OpAnd is the bitwise-and monoid (reducer_opand).
func OpAnd[T ~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64]() cilk.Monoid {
	return typed[T]{
		identity: func(*cilk.Ctx) T { var z T; return ^z },
		combine:  func(_ *cilk.Ctx, l, r T) T { return l & r },
	}
}

// OpOr is the bitwise-or monoid (reducer_opor).
func OpOr[T ~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64]() cilk.Monoid {
	return typed[T]{
		identity: func(*cilk.Ctx) T { var z T; return z },
		combine:  func(_ *cilk.Ctx, l, r T) T { return l | r },
	}
}

// OpXor is the bitwise-xor monoid (reducer_opxor).
func OpXor[T ~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64]() cilk.Monoid {
	return typed[T]{
		identity: func(*cilk.Ctx) T { var z T; return z },
		combine:  func(_ *cilk.Ctx, l, r T) T { return l ^ r },
	}
}

// List is the list-append monoid over slices: identity is nil, Combine is
// concatenation. Appends in serial order; the view type is []T.
func List[T any]() cilk.Monoid {
	return typed[[]T]{
		identity: func(*cilk.Ctx) []T { return nil },
		combine:  func(_ *cilk.Ctx, l, r []T) []T { return append(l, r...) },
	}
}

// Holder is the holder hyperobject: a per-view scratch value with no
// meaningful reduction (the left view wins), used to give each parallel
// subcomputation private workspace.
func Holder[T any](mk func() T) cilk.Monoid {
	return typed[T]{
		identity: func(*cilk.Ctx) T { return mk() },
		combine:  func(_ *cilk.Ctx, l, r T) T { return l },
	}
}
