// Package sched is the steal-specification library (§5, §8). A steal
// specification fixes the schedule the SP+ algorithm analyses: which
// continuations are stolen (each minting a reducer view) and in which
// order views reduce. Rader's practical encodings (§8) are all here — a
// triple of continuation indices applied to every sync block for eliciting
// reduce strands, a continuation depth for eliciting update strands, a
// seeded random choice per sync block, and an explicit label set for
// replaying a reported racy schedule — plus textual (de)serialization for
// the command-line tools.
package sched

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/cilk"
)

// ByDepth steals every continuation whose P-depth (number of P nodes on
// the root-to-continuation parse-tree path) equals D — one member of
// Theorem 6's breadth-first family. Rader's "check updates" configuration
// uses D equal to half the maximum sync-block size.
type ByDepth struct {
	D      int
	Reduce cilk.ReduceOrder
}

// ShouldSteal implements cilk.StealSpec.
func (s ByDepth) ShouldSteal(ci cilk.ContInfo) bool { return ci.PDepth == s.D }

// Order implements cilk.StealSpec.
func (s ByDepth) Order() cilk.ReduceOrder { return s.Reduce }

// String implements fmt.Stringer.
func (s ByDepth) String() string { return fmt.Sprintf("depth:%d", s.D) }

// Triple steals continuations I < J < K of every sync block and reduces
// the two views they delimit first (ReduceMiddleFirst), eliciting the
// reduce strand that combines the I..J and J..K update segments — the §8
// "three values specifying the continuations to be stolen" encoding that
// drives Theorem 7's coverage family.
type Triple struct {
	I, J, K int
}

// ShouldSteal implements cilk.StealSpec.
func (s Triple) ShouldSteal(ci cilk.ContInfo) bool {
	return ci.Index == s.I || ci.Index == s.J || ci.Index == s.K
}

// Order implements cilk.StealSpec.
func (s Triple) Order() cilk.ReduceOrder { return cilk.ReduceMiddleFirst }

// String implements fmt.Stringer.
func (s Triple) String() string { return fmt.Sprintf("triple:%d,%d,%d", s.I, s.J, s.K) }

// Single steals continuation A of every sync block. At the sync the lone
// parallel view reduces into the base view, eliciting the reduce operation
// combining update segments (0, A] and (A, K] of a K-continuation block.
type Single struct {
	A int
}

// ShouldSteal implements cilk.StealSpec.
func (s Single) ShouldSteal(ci cilk.ContInfo) bool { return ci.Index == s.A }

// Order implements cilk.StealSpec.
func (s Single) Order() cilk.ReduceOrder { return cilk.ReduceAtSync }

// String implements fmt.Stringer.
func (s Single) String() string { return fmt.Sprintf("single:%d", s.A) }

// Pair steals continuations A < B of every sync block. With the default
// eager reduction the base view merges with the view the pair delimits as
// soon as the next child returns, eliciting the reduce of the block prefix
// with segments (A, B]; with Mid set, reduction is middle-first at the
// sync, eliciting the reduce of (A, B] with the block's tail view instead.
type Pair struct {
	A, B int
	Mid  bool
}

// ShouldSteal implements cilk.StealSpec.
func (s Pair) ShouldSteal(ci cilk.ContInfo) bool { return ci.Index == s.A || ci.Index == s.B }

// Order implements cilk.StealSpec.
func (s Pair) Order() cilk.ReduceOrder {
	if s.Mid {
		return cilk.ReduceMiddleFirst
	}
	return cilk.ReduceEager
}

// String implements fmt.Stringer.
func (s Pair) String() string {
	if s.Mid {
		return fmt.Sprintf("pair-mid:%d,%d", s.A, s.B)
	}
	return fmt.Sprintf("pair:%d,%d", s.A, s.B)
}

// Random picks, per sync block, three continuation indices in [1, K]
// pseudo-randomly from the seed — Rader's "random seed and maximum sync
// block size" input (§8). The choice is stable per (frame, sync block), so
// a run is reproducible from the seed alone.
type Random struct {
	Seed int64
	K    int // maximum sync-block size
}

// ShouldSteal implements cilk.StealSpec.
func (s Random) ShouldSteal(ci cilk.ContInfo) bool {
	if s.K < 1 {
		return false
	}
	for pick := 0; pick < 3; pick++ {
		h := uint64(ci.Frame.ID)*0x9e3779b97f4a7c15 ^
			uint64(ci.SyncBlock)*0xbf58476d1ce4e5b9 ^
			uint64(s.Seed)*0x94d049bb133111eb ^
			uint64(pick)*0xd6e8feb86659fd93
		h ^= h >> 29
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 32
		if ci.Index == 1+int(h%uint64(s.K)) {
			return true
		}
	}
	return false
}

// Order implements cilk.StealSpec.
func (s Random) Order() cilk.ReduceOrder { return cilk.ReduceMiddleFirst }

// String implements fmt.Stringer.
func (s Random) String() string { return fmt.Sprintf("random:%d,%d", s.Seed, s.K) }

// Labels steals exactly the continuations named by their replay labels
// (cilk.ContInfo.String()), the encoding Rader reports alongside a race so
// the triggering schedule can be repeated as a regression test (§8).
type Labels struct {
	Set    map[string]bool
	Reduce cilk.ReduceOrder
}

// FromSteals builds a Labels spec replaying the steals of a previous run.
func FromSteals(steals []cilk.ContInfo, order cilk.ReduceOrder) Labels {
	set := make(map[string]bool, len(steals))
	for _, ci := range steals {
		set[ci.String()] = true
	}
	return Labels{Set: set, Reduce: order}
}

// ShouldSteal implements cilk.StealSpec.
func (s Labels) ShouldSteal(ci cilk.ContInfo) bool { return s.Set[ci.String()] }

// Order implements cilk.StealSpec.
func (s Labels) Order() cilk.ReduceOrder { return s.Reduce }

// String implements fmt.Stringer.
func (s Labels) String() string {
	labels := make([]string, 0, len(s.Set))
	for l := range s.Set {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	return "labels:" + strings.Join(labels, ";")
}

// Parse decodes a specification from its textual form:
//
//	none | all | all-eager | depth:D | triple:I,J,K | random:SEED,K |
//	labels:L1;L2;...
func Parse(s string) (cilk.StealSpec, error) {
	head, rest, _ := strings.Cut(s, ":")
	switch head {
	case "none", "":
		return cilk.NoSteals{}, nil
	case "all":
		return cilk.StealAll{}, nil
	case "all-eager":
		return cilk.StealAll{Reduce: cilk.ReduceEager}, nil
	case "depth":
		d, err := strconv.Atoi(rest)
		if err != nil {
			return nil, fmt.Errorf("sched: bad depth spec %q: %w", s, err)
		}
		return ByDepth{D: d}, nil
	case "single":
		a, err := strconv.Atoi(rest)
		if err != nil || a < 1 {
			return nil, fmt.Errorf("sched: bad single spec %q", s)
		}
		return Single{A: a}, nil
	case "pair", "pair-mid":
		parts := strings.Split(rest, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("sched: pair needs two indices: %q", s)
		}
		a, err1 := strconv.Atoi(strings.TrimSpace(parts[0]))
		b, err2 := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err1 != nil || err2 != nil || a < 1 || b <= a {
			return nil, fmt.Errorf("sched: pair indices must satisfy 1 <= a < b: %q", s)
		}
		return Pair{A: a, B: b, Mid: head == "pair-mid"}, nil
	case "triple":
		parts := strings.Split(rest, ",")
		if len(parts) != 3 {
			return nil, fmt.Errorf("sched: triple needs three indices: %q", s)
		}
		var idx [3]int
		for i, p := range parts {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				return nil, fmt.Errorf("sched: bad triple %q: %w", s, err)
			}
			idx[i] = v
		}
		if !(idx[0] < idx[1] && idx[1] < idx[2]) || idx[0] < 1 {
			return nil, fmt.Errorf("sched: triple indices must satisfy 1 <= i < j < k: %q", s)
		}
		return Triple{I: idx[0], J: idx[1], K: idx[2]}, nil
	case "random":
		parts := strings.Split(rest, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("sched: random needs seed,K: %q", s)
		}
		seed, err := strconv.ParseInt(strings.TrimSpace(parts[0]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sched: bad random seed %q: %w", s, err)
		}
		k, err := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err != nil {
			return nil, fmt.Errorf("sched: bad random K %q: %w", s, err)
		}
		return Random{Seed: seed, K: k}, nil
	case "labels":
		set := make(map[string]bool)
		for _, l := range strings.Split(rest, ";") {
			if l = strings.TrimSpace(l); l != "" {
				set[l] = true
			}
		}
		return Labels{Set: set}, nil
	default:
		return nil, fmt.Errorf("sched: unknown specification %q", s)
	}
}

// Format renders a spec in the textual form Parse accepts.
func Format(spec cilk.StealSpec) string {
	switch v := spec.(type) {
	case nil:
		return "none"
	case cilk.NoSteals:
		return "none"
	case cilk.StealAll:
		if v.Reduce == cilk.ReduceEager {
			return "all-eager"
		}
		return "all"
	case fmt.Stringer:
		return v.String()
	default:
		return fmt.Sprintf("%T", spec)
	}
}
