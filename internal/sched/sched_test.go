package sched

import (
	"testing"

	"repro/internal/cilk"
)

func TestParseRoundTrip(t *testing.T) {
	for _, s := range []string{
		"none", "all", "all-eager", "depth:3", "single:2", "pair:1,4",
		"triple:1,2,5", "random:42,8",
	} {
		spec, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if got := Format(spec); got != s {
			t.Errorf("Format(Parse(%q)) = %q", s, got)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{
		"bogus", "depth:x", "triple:1,2", "triple:3,2,1", "triple:0,1,2",
		"pair:2,2", "single:0", "random:1", "random:x,2",
	} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

// contOf builds a ContInfo with the given coordinates for direct spec
// checks.
func contOf(frame *cilk.Frame, index, pdepth, syncBlock int) cilk.ContInfo {
	return cilk.ContInfo{Frame: frame, Index: index, PDepth: pdepth, SyncBlock: syncBlock}
}

func TestByDepth(t *testing.T) {
	s := ByDepth{D: 2}
	f := &cilk.Frame{}
	if !s.ShouldSteal(contOf(f, 1, 2, 0)) || s.ShouldSteal(contOf(f, 1, 3, 0)) {
		t.Fatal("ByDepth keys on PDepth")
	}
}

func TestTriplePairSingle(t *testing.T) {
	f := &cilk.Frame{}
	tr := Triple{I: 1, J: 3, K: 5}
	for idx := 1; idx <= 6; idx++ {
		want := idx == 1 || idx == 3 || idx == 5
		if tr.ShouldSteal(contOf(f, idx, 0, 0)) != want {
			t.Fatalf("triple at index %d", idx)
		}
	}
	if tr.Order() != cilk.ReduceMiddleFirst {
		t.Fatal("triples reduce middle-first")
	}
	pr := Pair{A: 2, B: 4}
	if !pr.ShouldSteal(contOf(f, 2, 0, 0)) || pr.ShouldSteal(contOf(f, 3, 0, 0)) {
		t.Fatal("pair indices")
	}
	if pr.Order() != cilk.ReduceEager {
		t.Fatal("pairs reduce eagerly")
	}
	sg := Single{A: 3}
	if !sg.ShouldSteal(contOf(f, 3, 0, 0)) || sg.ShouldSteal(contOf(f, 1, 0, 0)) {
		t.Fatal("single index")
	}
}

func TestRandomStableAndBounded(t *testing.T) {
	s := Random{Seed: 7, K: 8}
	f := &cilk.Frame{ID: 3}
	// Stability: same continuation, same answer.
	ci := contOf(f, 4, 0, 2)
	first := s.ShouldSteal(ci)
	for i := 0; i < 10; i++ {
		if s.ShouldSteal(ci) != first {
			t.Fatal("Random must be deterministic per continuation")
		}
	}
	// At most three indices stolen per sync block.
	stolen := 0
	for idx := 1; idx <= s.K; idx++ {
		if s.ShouldSteal(contOf(f, idx, 0, 2)) {
			stolen++
		}
	}
	if stolen < 1 || stolen > 3 {
		t.Fatalf("random spec steals %d indices, want 1..3", stolen)
	}
	if (Random{Seed: 1, K: 0}).ShouldSteal(ci) {
		t.Fatal("K=0 steals nothing")
	}
}

func TestLabelsReplay(t *testing.T) {
	// Record the steals of one run, replay them exactly.
	prog := func(c *cilk.Ctx) {
		for i := 0; i < 5; i++ {
			c.Spawn("f", func(c *cilk.Ctx) {
				c.Spawn("g", func(*cilk.Ctx) {})
				c.Sync()
			})
		}
		c.Sync()
	}
	first := cilk.Run(prog, cilk.Config{Spec: Random{Seed: 3, K: 5}})
	if len(first.Steals) == 0 {
		t.Skip("seed stole nothing; pick another")
	}
	replay := FromSteals(first.Steals, cilk.ReduceAtSync)
	second := cilk.Run(prog, cilk.Config{Spec: replay})
	if len(second.Steals) != len(first.Steals) {
		t.Fatalf("replay stole %d, original %d", len(second.Steals), len(first.Steals))
	}
	for i := range first.Steals {
		if first.Steals[i].String() != second.Steals[i].String() {
			t.Fatalf("steal %d differs: %v vs %v", i, first.Steals[i], second.Steals[i])
		}
	}
	// Round-trip through the textual form too.
	spec2, err := Parse(Format(replay))
	if err != nil {
		t.Fatal(err)
	}
	third := cilk.Run(prog, cilk.Config{Spec: spec2})
	if len(third.Steals) != len(first.Steals) {
		t.Fatal("textual replay diverged")
	}
}

func TestPDepthMatchesSpawnCounts(t *testing.T) {
	// PDepth of a continuation equals the Peer-Set spawn count as+ls at
	// that point; spot-check on a nested program.
	var depths []int
	spy := specSpy{onCont: func(ci cilk.ContInfo) { depths = append(depths, ci.PDepth) }}
	cilk.Run(func(c *cilk.Ctx) {
		c.Spawn("a", func(c *cilk.Ctx) { // cont: pdepth 1
			c.Spawn("b", func(*cilk.Ctx) {}) // cont: pdepth 2
			c.Spawn("b", func(*cilk.Ctx) {}) // cont: pdepth 3
			c.Sync()
			c.Spawn("b", func(*cilk.Ctx) {}) // cont: pdepth 2 (after sync)
			c.Sync()
		})
		c.Spawn("a", func(*cilk.Ctx) {}) // cont: pdepth 2
		c.Sync()
	}, cilk.Config{Spec: spy})
	want := []int{2, 3, 2, 1, 2}
	if len(depths) != len(want) {
		t.Fatalf("continuations = %v", depths)
	}
	for i := range want {
		if depths[i] != want[i] {
			t.Fatalf("pdepths = %v, want %v", depths, want)
		}
	}
}

type specSpy struct {
	onCont func(cilk.ContInfo)
}

func (s specSpy) ShouldSteal(ci cilk.ContInfo) bool {
	s.onCont(ci)
	return false
}

func (s specSpy) Order() cilk.ReduceOrder { return cilk.ReduceAtSync }
