package sched

import (
	"testing"

	"repro/internal/cilk"
)

// FuzzParse: Parse must never panic; when it succeeds, Format must round
// trip through a second Parse to an equivalent spec, and the spec must be
// callable.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"none", "all", "all-eager", "depth:3", "single:2", "pair:1,4",
		"pair-mid:2,9", "triple:1,2,5", "random:42,8",
		"labels:main/b0/c1@1;f/b2/c3@9", "", "bogus", "depth:",
		"triple:9", "random:,", "labels:",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := Parse(s)
		if err != nil {
			return
		}
		text := Format(spec)
		spec2, err := Parse(text)
		if err != nil {
			t.Fatalf("Format produced unparsable %q from %q: %v", text, s, err)
		}
		// Both specs must agree on a few probe continuations.
		fr := &cilk.Frame{ID: 1}
		for idx := 1; idx <= 6; idx++ {
			ci := cilk.ContInfo{Frame: fr, Index: idx, PDepth: idx, SyncBlock: 1, Seq: idx}
			if spec.ShouldSteal(ci) != spec2.ShouldSteal(ci) {
				t.Fatalf("round trip changed decisions for %q", s)
			}
		}
		if spec.Order() != spec2.Order() {
			t.Fatalf("round trip changed reduce order for %q", s)
		}
	})
}
