package workload

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestChunkBoundariesCoverAndBound(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	data := make([]byte, 64*1024)
	rng.Read(data)
	const minS, avgS, maxS = 64, 256, 1024
	ends := ChunkBoundaries(data, minS, avgS, maxS)
	if ends[len(ends)-1] != len(data) {
		t.Fatal("chunks must cover the stream")
	}
	prev := 0
	for i, e := range ends {
		size := e - prev
		if size <= 0 {
			t.Fatalf("chunk %d has size %d", i, size)
		}
		if size > maxS {
			t.Fatalf("chunk %d exceeds max: %d", i, size)
		}
		if i < len(ends)-1 && size < minS {
			t.Fatalf("non-final chunk %d below min: %d", i, size)
		}
		prev = e
	}
	// Average size in the right ballpark (within 3x either way).
	avg := len(data) / len(ends)
	if avg < avgS/3 || avg > avgS*3 {
		t.Fatalf("average chunk size %d, expected near %d", avg, avgS)
	}
}

func TestChunkBoundariesDeterministic(t *testing.T) {
	data := bytes.Repeat([]byte("the quick brown fox "), 500)
	a := ChunkBoundaries(data, 32, 128, 512)
	b := ChunkBoundaries(data, 32, 128, 512)
	if len(a) != len(b) {
		t.Fatal("nondeterministic chunking")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic chunking")
		}
	}
}

// TestChunkerLocality is the defining CDC property: inserting bytes near
// the front of the stream must leave the vast majority of chunk content
// intact (boundaries resynchronize), unlike fixed-size chunking where
// every later chunk shifts.
func TestChunkerLocality(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	data := make([]byte, 32*1024)
	rng.Read(data)
	edited := append(append([]byte("INSERTED BYTES!!"), data[:100]...), data[100:]...)

	hashes := func(d []byte) map[uint64]bool {
		out := map[uint64]bool{}
		for _, c := range Chunks(d, ChunkBoundaries(d, 64, 256, 1024)) {
			out[fnvHash(c)] = true
		}
		return out
	}
	orig := hashes(data)
	ed := hashes(edited)
	shared := 0
	for h := range ed {
		if orig[h] {
			shared++
		}
	}
	if frac := float64(shared) / float64(len(ed)); frac < 0.9 {
		t.Fatalf("only %.0f%% of chunks survive a front insertion; CDC locality broken", frac*100)
	}
}

func fnvHash(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

func TestChunkBoundariesEdgeCases(t *testing.T) {
	if ends := ChunkBoundaries(nil, 16, 32, 64); len(ends) != 1 || ends[0] != 0 {
		t.Fatalf("empty stream: %v", ends)
	}
	if ends := ChunkBoundaries([]byte("x"), 16, 32, 64); len(ends) != 1 || ends[0] != 1 {
		t.Fatalf("tiny stream: %v", ends)
	}
	// Degenerate parameters are repaired.
	ends := ChunkBoundaries(bytes.Repeat([]byte{1}, 4096), 0, 0, 0)
	if ends[len(ends)-1] != 4096 {
		t.Fatal("repaired parameters must still cover")
	}
}

func TestChunksMaterialization(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		data := make([]byte, rng.Intn(8192))
		rng.Read(data)
		ends := ChunkBoundaries(data, 32, 64, 256)
		var rejoined []byte
		for _, c := range Chunks(data, ends) {
			rejoined = append(rejoined, c...)
		}
		return bytes.Equal(rejoined, data)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
