package workload

import "math/rand"

// Content-defined chunking in the style of PARSEC dedup's Rabin
// fingerprinting stage: a rolling hash over a sliding window declares a
// chunk boundary wherever its low bits hit a magic value, so chunk
// boundaries depend on content rather than position. Editing one region of
// the stream therefore disturbs only nearby boundaries — the locality
// property that makes deduplication robust to insertions — which
// TestChunkerLocality checks directly.

// chunkWindow is the rolling-hash window size in bytes.
const chunkWindow = 16

// buzTable is the random byte-to-hash mapping of the buzhash; fixed seed
// keeps chunking deterministic across runs.
var buzTable = func() [256]uint64 {
	rng := rand.New(rand.NewSource(0x5eed))
	var t [256]uint64
	for i := range t {
		t[i] = rng.Uint64()
	}
	return t
}()

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// ChunkBoundaries splits data into content-defined chunks with sizes in
// [minSize, maxSize] and expected size avgSize (a power of two). The
// return value lists chunk end offsets; the last entry is len(data).
func ChunkBoundaries(data []byte, minSize, avgSize, maxSize int) []int {
	if minSize < chunkWindow {
		minSize = chunkWindow
	}
	if avgSize < minSize {
		avgSize = minSize * 2
	}
	if maxSize < avgSize {
		maxSize = avgSize * 4
	}
	mask := uint64(avgSize - 1) // avgSize a power of two → ~1/avgSize hit rate
	var ends []int
	start := 0
	var h uint64
	for i := 0; i < len(data); i++ {
		h = rotl(h, 1) ^ buzTable[data[i]]
		if i-start+1 >= chunkWindow+1 {
			h ^= rotl(buzTable[data[i-chunkWindow]], chunkWindow)
		}
		size := i - start + 1
		if (size >= minSize && h&mask == mask) || size >= maxSize {
			ends = append(ends, i+1)
			start = i + 1
			h = 0
		}
	}
	if start < len(data) || len(data) == 0 {
		ends = append(ends, len(data))
	}
	return ends
}

// Chunks materializes the byte slices delimited by ChunkBoundaries.
func Chunks(data []byte, ends []int) [][]byte {
	out := make([][]byte, 0, len(ends))
	start := 0
	for _, e := range ends {
		out = append(out, data[start:e])
		start = e
	}
	return out
}
