package workload

import (
	"testing"
	"testing/quick"
)

func TestRandomGraphConnectedAndSized(t *testing.T) {
	g := RandomGraph(1, 500, 2000)
	if g.N != 500 {
		t.Fatalf("N = %d", g.N)
	}
	if g.Edges() != 2*2000 {
		t.Fatalf("edge slots = %d, want %d", g.Edges(), 2*2000)
	}
	dist := BFSLevels(g, 0)
	for v, d := range dist {
		if d < 0 {
			t.Fatalf("vertex %d unreachable: spanning tree broken", v)
		}
	}
}

func TestRandomGraphDeterministic(t *testing.T) {
	a := RandomGraph(7, 100, 300)
	b := RandomGraph(7, 100, 300)
	for i := range a.Adj {
		if a.Adj[i] != b.Adj[i] {
			t.Fatal("graph not deterministic")
		}
	}
}

func TestCSRConsistency(t *testing.T) {
	check := func(seed int64) bool {
		g := RandomGraph(seed, 50, 120)
		// Every directed edge u->v has a mirror v->u.
		count := make(map[[2]int32]int)
		for u := 0; u < g.N; u++ {
			for _, v := range g.Neighbors(u) {
				count[[2]int32{int32(u), v}]++
			}
		}
		for k, c := range count {
			if count[[2]int32{k[1], k[0]}] != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomCorpusDuplication(t *testing.T) {
	c := RandomCorpus(3, 200, 64, 0.5)
	if len(c.Data) != 200*64 {
		t.Fatalf("corpus size %d", len(c.Data))
	}
	seen := make(map[string]bool)
	dups := 0
	for i := 0; i < 200; i++ {
		chunk := string(c.Data[i*64 : (i+1)*64])
		if seen[chunk] {
			dups++
		}
		seen[chunk] = true
	}
	if dups < 50 || dups > 150 {
		t.Fatalf("dups = %d, want around 100", dups)
	}
}

func TestRandomImageDB(t *testing.T) {
	db := RandomImageDB(5, 100, 10, 16)
	if len(db.Vectors) != 100 || len(db.Queries) != 10 || db.Dim != 16 {
		t.Fatal("sizes wrong")
	}
	for _, v := range db.Vectors {
		if len(v) != 16 {
			t.Fatal("vector dim wrong")
		}
	}
}

func TestBodiesAndCollision(t *testing.T) {
	bodies := RandomBodies(2, 100)
	if len(bodies) != 100 {
		t.Fatal("count")
	}
	a := Body{X: 0, Y: 0, Z: 0, R: 1}
	b := Body{X: 1.5, Y: 0, Z: 0, R: 1}
	if !Collides(a, b) {
		t.Fatal("overlapping spheres must collide")
	}
	c := Body{X: 3, Y: 0, Z: 0, R: 1}
	if Collides(a, c) {
		t.Fatal("distant spheres must not collide")
	}
}

func TestKnapsackDP(t *testing.T) {
	inst := &KnapsackInstance{
		Items:    []KnapsackItem{{Weight: 3, Value: 4}, {Weight: 4, Value: 5}, {Weight: 2, Value: 3}},
		Capacity: 6,
	}
	if got := SolveKnapsackDP(inst); got != 8 {
		t.Fatalf("dp = %d, want 8 (items 1 and 3... weight 5, value 8)", got)
	}
	r := RandomKnapsack(4, 20)
	if len(r.Items) != 20 || r.Capacity <= 0 {
		t.Fatal("random instance malformed")
	}
	if SolveKnapsackDP(r) <= 0 {
		t.Fatal("dp result must be positive")
	}
}

func TestBFSLevelsSmall(t *testing.T) {
	// Path graph 0-1-2-3 built by hand through RandomGraph semantics is
	// fiddly; construct CSR directly.
	g := &Graph{
		N:      4,
		Adj:    []int32{1, 0, 2, 1, 3, 2},
		Offset: []int32{0, 1, 3, 5, 6},
	}
	d := BFSLevels(g, 0)
	for v, want := range []int32{0, 1, 2, 3} {
		if d[v] != want {
			t.Fatalf("dist[%d] = %d, want %d", v, d[v], want)
		}
	}
}
