// Package workload generates the deterministic synthetic inputs that stand
// in for the paper's benchmark data sets (PARSEC's dedup "medium" and
// ferret "large" inputs, the pbfs graph, the collision body set, Frigo's
// knapsack instance). Every generator is a pure function of its seed and
// size parameters, so runs are reproducible and the uninstrumented
// baseline, the empty tool and the detectors all see byte-identical work.
package workload

import "math/rand"

// Graph is an undirected graph in compressed sparse row form.
type Graph struct {
	N      int
	Adj    []int32 // concatenated adjacency lists
	Offset []int32 // Offset[v]..Offset[v+1] indexes Adj; len N+1
}

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return int(g.Offset[v+1] - g.Offset[v]) }

// Neighbors returns v's adjacency slice.
func (g *Graph) Neighbors(v int) []int32 {
	return g.Adj[g.Offset[v]:g.Offset[v+1]]
}

// Edges returns the number of directed edge slots (2x undirected edges).
func (g *Graph) Edges() int { return len(g.Adj) }

// RandomGraph builds a connected seeded random graph with n vertices and
// roughly m undirected edges: a random spanning tree for connectivity plus
// m−n+1 random extra edges.
func RandomGraph(seed int64, n, m int) *Graph {
	rng := rand.New(rand.NewSource(seed))
	type edge struct{ u, v int32 }
	edges := make([]edge, 0, m)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		u, v := int32(perm[i]), int32(perm[rng.Intn(i)])
		edges = append(edges, edge{u, v})
	}
	for len(edges) < m {
		u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
		if u != v {
			edges = append(edges, edge{u, v})
		}
	}
	deg := make([]int32, n)
	for _, e := range edges {
		deg[e.u]++
		deg[e.v]++
	}
	g := &Graph{N: n, Offset: make([]int32, n+1)}
	for v := 0; v < n; v++ {
		g.Offset[v+1] = g.Offset[v] + deg[v]
	}
	g.Adj = make([]int32, g.Offset[n])
	fill := make([]int32, n)
	copy(fill, g.Offset[:n])
	for _, e := range edges {
		g.Adj[fill[e.u]] = e.v
		fill[e.u]++
		g.Adj[fill[e.v]] = e.u
		fill[e.v]++
	}
	return g
}

// Corpus is a byte stream with controlled chunk-level duplication, the
// dedup benchmark's input.
type Corpus struct {
	Data      []byte
	ChunkSize int
}

// RandomCorpus builds nChunks chunks of chunkSize bytes where dupRate (in
// [0,1]) of the chunks repeat earlier ones.
func RandomCorpus(seed int64, nChunks, chunkSize int, dupRate float64) *Corpus {
	rng := rand.New(rand.NewSource(seed))
	var uniques [][]byte
	data := make([]byte, 0, nChunks*chunkSize)
	for i := 0; i < nChunks; i++ {
		if len(uniques) > 0 && rng.Float64() < dupRate {
			data = append(data, uniques[rng.Intn(len(uniques))]...)
			continue
		}
		chunk := make([]byte, chunkSize)
		for j := range chunk {
			chunk[j] = byte(rng.Intn(256))
		}
		uniques = append(uniques, chunk)
		data = append(data, chunk...)
	}
	return &Corpus{Data: data, ChunkSize: chunkSize}
}

// ImageDB is a database of feature vectors plus query vectors, the ferret
// benchmark's input (image similarity search over precomputed features).
type ImageDB struct {
	Dim     int
	Vectors [][]float32
	Queries [][]float32
}

// RandomImageDB builds n database vectors and q queries of dimension dim.
// Queries are perturbed copies of database vectors so nearest-neighbour
// results are nontrivial.
func RandomImageDB(seed int64, n, q, dim int) *ImageDB {
	rng := rand.New(rand.NewSource(seed))
	db := &ImageDB{Dim: dim}
	mk := func() []float32 {
		v := make([]float32, dim)
		for i := range v {
			v[i] = rng.Float32()
		}
		return v
	}
	for i := 0; i < n; i++ {
		db.Vectors = append(db.Vectors, mk())
	}
	for i := 0; i < q; i++ {
		base := db.Vectors[rng.Intn(n)]
		qv := make([]float32, dim)
		for j := range qv {
			qv[j] = base[j] + 0.05*(rng.Float32()-0.5)
		}
		db.Queries = append(db.Queries, qv)
	}
	return db
}

// Body is one sphere for the collision benchmark.
type Body struct {
	X, Y, Z float64
	R       float64
}

// RandomBodies scatters n spheres in the unit cube with radii chosen so a
// modest fraction of pairs collide.
func RandomBodies(seed int64, n int) []Body {
	rng := rand.New(rand.NewSource(seed))
	bodies := make([]Body, n)
	for i := range bodies {
		bodies[i] = Body{
			X: rng.Float64(),
			Y: rng.Float64(),
			Z: rng.Float64(),
			R: 0.01 + 0.04*rng.Float64(),
		}
	}
	return bodies
}

// Collides reports whether two spheres intersect.
func Collides(a, b Body) bool {
	dx, dy, dz := a.X-b.X, a.Y-b.Y, a.Z-b.Z
	rr := a.R + b.R
	return dx*dx+dy*dy+dz*dz <= rr*rr
}

// KnapsackItem is one item of the knapsack instance.
type KnapsackItem struct {
	Weight int
	Value  int
}

// KnapsackInstance is Frigo's knapsack-challenge style input.
type KnapsackInstance struct {
	Items    []KnapsackItem
	Capacity int
}

// RandomKnapsack builds n items with correlated weights and values and a
// capacity near half the total weight, the regime where branch and bound
// does real work.
func RandomKnapsack(seed int64, n int) *KnapsackInstance {
	rng := rand.New(rand.NewSource(seed))
	inst := &KnapsackInstance{}
	total := 0
	for i := 0; i < n; i++ {
		w := 1 + rng.Intn(100)
		v := w + rng.Intn(50) // loosely correlated
		inst.Items = append(inst.Items, KnapsackItem{Weight: w, Value: v})
		total += w
	}
	inst.Capacity = total / 2
	return inst
}

// SolveKnapsackDP computes the exact optimum by dynamic programming, the
// verifier for the branch-and-bound benchmark.
func SolveKnapsackDP(inst *KnapsackInstance) int {
	best := make([]int, inst.Capacity+1)
	for _, it := range inst.Items {
		for w := inst.Capacity; w >= it.Weight; w-- {
			if v := best[w-it.Weight] + it.Value; v > best[w] {
				best[w] = v
			}
		}
	}
	return best[inst.Capacity]
}

// BFSLevels computes BFS distances serially, the pbfs verifier. Returns -1
// for unreachable vertices.
func BFSLevels(g *Graph, src int) []int32 {
	dist := make([]int32, g.N)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int32{int32(src)}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbors(int(v)) {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}
