package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"reflect"
	"testing"

	"repro/internal/faults"
)

// chaosContent is the deterministic "trace" the chaos workload uploads.
func chaosContent() []byte {
	b := make([]byte, 32<<10)
	for i := range b {
		b[i] = byte(i*7 + i>>8)
	}
	return b
}

// runWorkload drives one deterministic store workload — the same mix a
// live raderd performs: verdict writes for several keys, a chunked
// resumable upload with commit, and journaled job transitions. It is
// written the way a correct crash-recovering caller behaves: it resumes
// the upload from the store's durable offset and treats every operation
// as idempotent. It stops at the first error (a simulated crash).
func runWorkload(s *Store) error {
	for i := 0; i < 3; i++ {
		key := fmt.Sprintf("digest%d|sp+|all", i)
		err := s.PutVerdict(&Verdict{
			Key:      key,
			Digest:   fmt.Sprintf("digest%d", i),
			Detector: "sp+",
			Spec:     "all",
			Clean:    i%2 == 0,
			Report:   []byte(fmt.Sprintf(`{"schema":3,"detector":"sp+","unit":%d}`, i)),
		})
		if err != nil {
			return err
		}
	}

	content := chaosContent()
	sum := sha256.Sum256(content)
	dg := hex.EncodeToString(sum[:])
	if !s.HasTrace(dg) {
		// Resume from whatever is durable, in two chunks.
		off := s.PartialOffset(dg)
		for off < int64(len(content)) {
			end := off + 12000
			if end > int64(len(content)) {
				end = int64(len(content))
			}
			n, err := s.AppendPartial(dg, off, bytes.NewReader(content[off:end]))
			if err != nil {
				return err
			}
			off = n
		}
		if err := s.CommitPartial(dg); err != nil {
			return err
		}
	}

	if err := s.JournalJob(JobRecord{ID: "job-1", Prog: "fig1", State: JobQueued}); err != nil {
		return err
	}
	if err := s.JournalJob(JobRecord{ID: "job-2", Prog: "dedup", Scale: "test", State: JobQueued}); err != nil {
		return err
	}
	return s.JournalJob(JobRecord{ID: "job-1", Prog: "fig1", State: JobDone})
}

// observe snapshots everything a client of the store can see: verdict
// report bytes per key, trace content, and the set of pending jobs a
// reopen reports.
type observation struct {
	verdicts map[string]string
	trace    string
	pending  []JobRecord
}

func observeStore(t *testing.T, dir string) observation {
	t.Helper()
	s, rec := open(t, dir, Options{})
	obs := observation{verdicts: map[string]string{}, pending: rec.PendingJobs}
	for i := 0; i < 3; i++ {
		key := fmt.Sprintf("digest%d|sp+|all", i)
		if v, ok, err := s.GetVerdict(key); err != nil {
			t.Fatalf("observe %s: %v", key, err)
		} else if ok {
			obs.verdicts[key] = string(v.Report)
		}
	}
	content := chaosContent()
	sum := sha256.Sum256(content)
	dg := hex.EncodeToString(sum[:])
	if rc, _, err := s.OpenTrace(dg); err == nil {
		raw, _ := io.ReadAll(rc)
		rc.Close()
		obs.trace = string(raw)
	}
	return obs
}

// TestChaosCrashAtEveryInjectionPoint is the crash-recovery property
// test: for every durable-I/O injection point in the workload, simulate
// the process dying exactly there, reopen the store (recovery scan), run
// the workload again the way a restarted daemon would, and require the
// final observable state to be byte-identical to an uninterrupted run.
func TestChaosCrashAtEveryInjectionPoint(t *testing.T) {
	// Control: uninterrupted run.
	controlDir := t.TempDir()
	ctl, _ := open(t, controlDir, Options{})
	if err := runWorkload(ctl); err != nil {
		t.Fatalf("control workload: %v", err)
	}
	want := observeStore(t, controlDir)
	if len(want.verdicts) != 3 || want.trace == "" || len(want.pending) != 1 {
		t.Fatalf("control run incomplete: %d verdicts, trace %d bytes, %d pending",
			len(want.verdicts), len(want.trace), len(want.pending))
	}

	// Counting pass: how many injection points does the workload cross?
	counter := &faults.Disk{FailAt: -1}
	cdir := t.TempDir()
	cs, _ := open(t, cdir, Options{Inject: counter.Check})
	if err := runWorkload(cs); err != nil {
		t.Fatalf("counting workload: %v", err)
	}
	total := counter.Ops()
	if total < 20 {
		t.Fatalf("suspiciously few injection points: %d", total)
	}

	for at := int64(0); at < total; at++ {
		at := at
		t.Run(fmt.Sprintf("crash-at-%d", at), func(t *testing.T) {
			dir := t.TempDir()
			inj := &faults.Disk{FailAt: at}
			s, _, err := Open(dir, Options{Inject: inj.Check})
			if err != nil {
				// The crash hit Open's own journal bootstrap — the
				// "daemon" died before serving. Restart below.
			} else if err := runWorkload(s); err == nil && inj.Injected() {
				t.Fatalf("crash at %d fired but workload finished cleanly", at)
			}

			// Restart: recovery scan, then the workload as a restarted
			// daemon performs it.
			s2, _, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("reopen after crash at %d: %v", at, err)
			}
			if err := runWorkload(s2); err != nil {
				t.Fatalf("rerun after crash at %d: %v", at, err)
			}
			got := observeStore(t, dir)
			if !reflect.DeepEqual(got.verdicts, want.verdicts) {
				t.Fatalf("crash at %d: verdicts diverge:\n got %v\nwant %v", at, got.verdicts, want.verdicts)
			}
			if got.trace != want.trace {
				t.Fatalf("crash at %d: trace content diverges (%d vs %d bytes)", at, len(got.trace), len(want.trace))
			}
			if !reflect.DeepEqual(got.pending, want.pending) {
				t.Fatalf("crash at %d: pending jobs diverge:\n got %+v\nwant %+v", at, got.pending, want.pending)
			}
		})
	}
}
