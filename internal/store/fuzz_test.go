package store

import (
	"bytes"
	"os"
	"testing"
)

// FuzzStoreRecovery is the torn-write property: however a stored verdict
// record is truncated or corrupted on disk, reopening the store must
// succeed, the read must never return wrong bytes (it either serves the
// intact record or quarantines and misses), and recomputing — a fresh
// PutVerdict — must restore the golden verdict byte-identically.
func FuzzStoreRecovery(f *testing.F) {
	golden := []byte(`{"schema":3,"detector":"sp+","clean":false,"races":["w/w fig1.c:12"]}`)
	const key = "deadbeef|sp+|all"

	f.Add(uint16(0), uint16(0), false)
	f.Add(uint16(9), uint16(3), true)
	f.Add(uint16(64), uint16(200), false)
	f.Add(uint16(1000), uint16(77), true)

	f.Fuzz(func(t *testing.T, cut, flip uint16, alsoFlip bool) {
		dir := t.TempDir()
		s, _, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		rec := &Verdict{Key: key, Digest: "deadbeef", Detector: "sp+", Spec: "all", Report: golden}
		if err := s.PutVerdict(rec); err != nil {
			t.Fatal(err)
		}
		path := s.verdictPath(key)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}

		// Corrupt: truncate at an arbitrary offset, optionally also flip
		// an arbitrary byte of what remains.
		mut := append([]byte(nil), data[:int(cut)%(len(data)+1)]...)
		if alsoFlip && len(mut) > 0 {
			mut[int(flip)%len(mut)] ^= 1 << (flip % 8)
		}
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		intact := bytes.Equal(mut, data)

		// Recovery scan must absorb the damage without error.
		s2, rep, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("Open over corrupted store: %v", err)
		}
		if !intact && rep.VerdictsQuarantined != 1 {
			t.Fatalf("corrupt record must be quarantined by the scan: %+v", rep)
		}

		got, ok, err := s2.GetVerdict(key)
		if err != nil {
			t.Fatalf("GetVerdict after corruption: %v", err)
		}
		if ok {
			if !intact {
				t.Fatalf("served a verdict from a corrupted record")
			}
			if !bytes.Equal(got.Report, golden) {
				t.Fatalf("served non-golden bytes: %q", got.Report)
			}
			return
		}
		// Quarantine-then-recompute: the re-derived verdict must land and
		// read back golden.
		if err := s2.PutVerdict(rec); err != nil {
			t.Fatalf("recompute put: %v", err)
		}
		got, ok, err = s2.GetVerdict(key)
		if err != nil || !ok || !bytes.Equal(got.Report, golden) {
			t.Fatalf("recomputed verdict not golden: ok=%v err=%v got=%q", ok, err, got.Report)
		}
	})
}

// FuzzVerdictDecode hardens the record parser against arbitrary bytes:
// it must never panic or over-allocate, only return an error or a valid
// record.
func FuzzVerdictDecode(f *testing.F) {
	rec := &Verdict{Key: "k|d|s", Digest: "k", Detector: "d", Report: []byte(`{}`)}
	enc, _ := rec.encode()
	f.Add(enc)
	f.Add([]byte(verdictMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := decodeVerdict(data)
		if err == nil && v == nil {
			t.Fatal("nil record without error")
		}
	})
}
