package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func openTestStore(t *testing.T) *Store {
	t.Helper()
	s, _, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func TestSpanTreeRoundTrip(t *testing.T) {
	s := openTestStore(t)
	rec := &SpanTree{
		Key:         "deadbeef|spbags|",
		Traceparent: "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
		Doc:         []byte(`{"spans":[{"name":"run","tid":0}]}`),
	}
	if err := s.PutSpans(rec); err != nil {
		t.Fatalf("PutSpans: %v", err)
	}
	got, ok, err := s.GetSpans(rec.Key)
	if err != nil || !ok {
		t.Fatalf("GetSpans: ok=%v err=%v", ok, err)
	}
	if got.Key != rec.Key || got.Traceparent != rec.Traceparent || string(got.Doc) != string(rec.Doc) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if s.Stats().SpansWrites != 1 {
		t.Fatalf("SpansWrites = %d, want 1", s.Stats().SpansWrites)
	}
}

func TestSpanTreeMiss(t *testing.T) {
	s := openTestStore(t)
	got, ok, err := s.GetSpans("absent|spbags|")
	if got != nil || ok || err != nil {
		t.Fatalf("miss returned %v %v %v", got, ok, err)
	}
}

func TestSpanTreeCorruptQuarantines(t *testing.T) {
	s := openTestStore(t)
	rec := &SpanTree{Key: "k", Doc: []byte("doc")}
	if err := s.PutSpans(rec); err != nil {
		t.Fatal(err)
	}
	path := s.spansPath("k")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.GetSpans("k")
	if got != nil || ok || err != nil {
		t.Fatalf("corrupt record served: %v %v %v", got, ok, err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt record not moved out of the hot path")
	}
	ents, err := os.ReadDir(filepath.Join(s.Dir(), "quarantine"))
	if err != nil || len(ents) == 0 {
		t.Fatalf("quarantine empty: %v", err)
	}
}

func TestSpanTreeTruncatedRejected(t *testing.T) {
	rec := &SpanTree{Key: "k2", Doc: []byte(strings.Repeat("x", 256))}
	data, err := rec.encode()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 1, len(spansMagic), len(spansMagic) + 4, len(data) / 2, len(data) - 1} {
		if _, err := decodeSpanTree(data[:n]); err == nil {
			t.Errorf("prefix of %d bytes decoded", n)
		}
	}
	if _, err := decodeSpanTree(data); err != nil {
		t.Fatalf("full record rejected: %v", err)
	}
}

func TestSpanTreeKeyMismatchQuarantines(t *testing.T) {
	s := openTestStore(t)
	if err := s.PutSpans(&SpanTree{Key: "real", Doc: []byte("d")}); err != nil {
		t.Fatal(err)
	}
	// Move the record to where a different key would live.
	other := s.spansPath("other")
	if err := os.MkdirAll(filepath.Dir(other), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(s.spansPath("real"), other); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.GetSpans("other"); ok {
		t.Fatal("record served under the wrong key")
	}
}

// TestSpanTreeSurvivesReopen pins that a spans/ record written by one
// store generation is readable after recovery reopens the directory.
func TestSpanTreeSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s1, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.PutSpans(&SpanTree{Key: "persist", Doc: []byte("tree")}); err != nil {
		t.Fatal(err)
	}
	s2, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	got, ok, err := s2.GetSpans("persist")
	if err != nil || !ok || string(got.Doc) != "tree" {
		t.Fatalf("record lost across reopen: %v %v %v", got, ok, err)
	}
}
