package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Recovery reports what the Open-time scan found and fixed. Every field
// is informational: recovery never fails the Open for reconcilable
// damage — the worst state a crash can leave costs recomputation, not
// correctness.
type Recovery struct {
	// TempFilesRemoved counts orphaned tmp/ files from interrupted
	// atomic writes (the write never happened; the final file is
	// untouched by protocol).
	TempFilesRemoved int
	// VerdictsScanned and VerdictsQuarantined count the verdict files
	// checked and the torn/corrupt ones moved to quarantine/.
	VerdictsScanned     int
	VerdictsQuarantined int
	// TracesScanned and TracesQuarantined count the finalized traces
	// checked (v2 footer CRC) and the ones quarantined.
	TracesScanned     int
	TracesQuarantined int
	// PartialsKept counts resumable uploads preserved for resume;
	// PartialsRemoved counts those GCed because their finalized trace
	// already exists (the upload raced its own completion).
	PartialsKept    int
	PartialsRemoved int
	// PendingJobs are journaled-but-unfinished sweep jobs the service
	// should re-enqueue. JournalTornLines counts dropped torn lines.
	PendingJobs      []JobRecord
	JournalTornLines int
}

// String renders the one-line startup banner.
func (r *Recovery) String() string {
	return fmt.Sprintf(
		"recovered: %d tmp removed, %d/%d verdicts quarantined, %d/%d traces quarantined, %d partials kept (%d gced), %d jobs pending",
		r.TempFilesRemoved, r.VerdictsQuarantined, r.VerdictsScanned,
		r.TracesQuarantined, r.TracesScanned, r.PartialsKept, r.PartialsRemoved,
		len(r.PendingJobs))
}

// recover reconciles the on-disk layout after an arbitrary crash.
func (s *Store) recover() (*Recovery, error) {
	rec := &Recovery{}

	// 1. Orphan temp files: an interrupted atomic write left bytes in
	// tmp/ that were never renamed. The protocol guarantees the final
	// file is either old or new, so temps are pure garbage.
	tmps, err := listFiles(filepath.Join(s.dir, "tmp"))
	if err != nil {
		return nil, fmt.Errorf("store: scanning tmp: %w", err)
	}
	for _, p := range tmps {
		if err := os.Remove(p); err == nil {
			rec.TempFilesRemoved++
		}
	}

	// 2. Verdict records: verify framing + CRC of every record;
	// quarantine what fails. (Records are small; the scan is one read
	// per file.)
	verdicts, err := listFiles(filepath.Join(s.dir, "verdicts"))
	if err != nil {
		return nil, fmt.Errorf("store: scanning verdicts: %w", err)
	}
	for _, p := range verdicts {
		rec.VerdictsScanned++
		data, err := os.ReadFile(p)
		if err != nil {
			s.quarantine(p, "unreadable")
			rec.VerdictsQuarantined++
			continue
		}
		if _, err := decodeVerdict(data); err != nil {
			s.quarantine(p, err.Error())
			rec.VerdictsQuarantined++
		}
	}

	// 3. Finalized traces: names must be content digests; content must
	// pass the (streaming, O(1)-memory) integrity check when one is
	// wired in.
	traces, err := listFiles(filepath.Join(s.dir, "traces"))
	if err != nil {
		return nil, fmt.Errorf("store: scanning traces: %w", err)
	}
	for _, p := range traces {
		rec.TracesScanned++
		digest := strings.TrimSuffix(filepath.Base(p), ".trace")
		if !ValidDigest(digest) || !strings.HasSuffix(p, ".trace") {
			s.quarantine(p, "not content-addressed")
			rec.TracesQuarantined++
			continue
		}
		if s.verifyTrace != nil {
			f, err := os.Open(p)
			if err != nil {
				s.quarantine(p, "unreadable")
				rec.TracesQuarantined++
				continue
			}
			verr := s.verifyTrace(f)
			f.Close()
			if verr != nil {
				s.quarantine(p, verr.Error())
				rec.TracesQuarantined++
			}
		}
	}

	// 4. Partial uploads: keep them (resumability across restarts is the
	// point), except when the finalized trace already exists — then the
	// partial is a leftover duplicate.
	partials, err := listFiles(filepath.Join(s.dir, "partial"))
	if err != nil {
		return nil, fmt.Errorf("store: scanning partials: %w", err)
	}
	for _, p := range partials {
		digest := strings.TrimSuffix(filepath.Base(p), ".partial")
		if !ValidDigest(digest) || !strings.HasSuffix(p, ".partial") {
			s.quarantine(p, "not content-addressed")
			rec.PartialsRemoved++
			continue
		}
		if s.HasTrace(digest) {
			_ = os.Remove(p)
			rec.PartialsRemoved++
			continue
		}
		rec.PartialsKept++
	}
	return rec, nil
}
