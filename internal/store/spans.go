package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// spansMagic heads every on-disk span-tree record. Same versioning
// convention as verdictMagic: a layout change bumps the digit and stale
// records quarantine rather than misparse.
const spansMagic = "RADERSP1\n"

// SpanTree is one durably stored server-side span tree: the obs.SpanDoc
// bytes raderd recorded while computing a verdict, stored next to it so a
// remote client can fetch the server's half of a distributed trace after
// the fact.
type SpanTree struct {
	// Key is the verdict-style key the record answers (digest|detector|spec
	// for analyses, programDigest|sweep for sweep jobs).
	Key string `json:"key"`
	// Traceparent is the W3C context the tree was recorded under, "" when
	// the triggering request carried none.
	Traceparent string `json:"traceparent,omitempty"`
	// Doc is the encoded obs.SpanDoc, stored verbatim.
	Doc []byte `json:"-"`
}

// encode renders the record with the verdict framing:
//
//	"RADERSP1\n" | u32 metaLen | meta JSON | u32 docLen | doc | u32 CRC32C
func (t *SpanTree) encode() ([]byte, error) {
	meta, err := json.Marshal(t)
	if err != nil {
		return nil, fmt.Errorf("store: encoding span-tree meta: %w", err)
	}
	out := make([]byte, 0, len(spansMagic)+8+len(meta)+len(t.Doc)+4)
	out = append(out, spansMagic...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(meta)))
	out = append(out, meta...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(t.Doc)))
	out = append(out, t.Doc...)
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(out, verdictCRC))
	return out, nil
}

// decodeSpanTree parses and verifies an encoded record.
func decodeSpanTree(data []byte) (*SpanTree, error) {
	if len(data) < len(spansMagic)+4+4+4 {
		return nil, fmt.Errorf("store: span-tree record truncated (%d bytes)", len(data))
	}
	if string(data[:len(spansMagic)]) != spansMagic {
		return nil, fmt.Errorf("store: bad span-tree magic")
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.Checksum(body, verdictCRC); got != sum {
		return nil, fmt.Errorf("store: span-tree checksum mismatch: record %08x, content %08x", sum, got)
	}
	p := body[len(spansMagic):]
	metaLen := binary.LittleEndian.Uint32(p)
	p = p[4:]
	if uint64(metaLen) > maxVerdictSection || uint64(metaLen)+4 > uint64(len(p)) {
		return nil, fmt.Errorf("store: span-tree meta length %d exceeds record", metaLen)
	}
	meta := p[:metaLen]
	p = p[metaLen:]
	docLen := binary.LittleEndian.Uint32(p)
	p = p[4:]
	if uint64(docLen) != uint64(len(p)) {
		return nil, fmt.Errorf("store: span-tree doc length %d, %d bytes remain", docLen, len(p))
	}
	var t SpanTree
	if err := json.Unmarshal(meta, &t); err != nil {
		return nil, fmt.Errorf("store: span-tree meta: %w", err)
	}
	t.Doc = append([]byte(nil), p...)
	return &t, nil
}

func (s *Store) spansPath(key string) string {
	kd := verdictKeyDigest(key)
	return filepath.Join(s.dir, "spans", shard(kd), kd+".spans")
}

// PutSpans durably stores a span tree under its verdict-style key. Span
// trees are observability data: best-effort by design, so callers log
// rather than fail requests on error.
func (s *Store) PutSpans(rec *SpanTree) error {
	data, err := rec.encode()
	if err != nil {
		return err
	}
	if err := s.writeAtomic(s.spansPath(rec.Key), data); err != nil {
		return err
	}
	s.spansWrites.Add(1)
	return nil
}

// GetSpans loads and verifies the span tree stored under key. A missing
// record is (nil, false, nil); a torn or corrupt record is quarantined
// and reported as a miss — losing one loses a profile view, never a
// verdict.
func (s *Store) GetSpans(key string) (*SpanTree, bool, error) {
	path := s.spansPath(key)
	data, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("store: reading span tree: %w", err)
	}
	rec, err := decodeSpanTree(data)
	if err != nil {
		s.quarantine(path, err.Error())
		return nil, false, nil
	}
	if rec.Key != key {
		s.quarantine(path, "key mismatch")
		return nil, false, nil
	}
	return rec, true, nil
}
