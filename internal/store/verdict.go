package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
)

// verdictMagic heads every on-disk verdict record. The trailing digit is
// the record-format version; bumping the layout bumps the magic, and old
// records then quarantine-and-recompute rather than misparse.
const verdictMagic = "RADERVD1\n"

var verdictCRC = crc32.MakeTable(crc32.Castagnoli)

// maxVerdictSection bounds each length-prefixed section of a record; a
// torn length prefix must not trigger a giant allocation.
const maxVerdictSection = 1 << 30

// Verdict is one durably stored analysis result: the exact report
// document bytes the service returned (byte-identical replay across
// restarts is the whole contract), plus the envelope metadata needed to
// rebuild the in-memory cache entry without decoding the document.
type Verdict struct {
	// Key is the cache key the record answers: digest|detector|spec.
	Key string `json:"key"`
	// Digest is the content identity of the analyzed trace or program.
	Digest string `json:"digest"`
	// Detector and Spec echo the analyzed configuration.
	Detector string `json:"detector"`
	Spec     string `json:"spec,omitempty"`
	// Clean mirrors the document's verdict for envelope reuse.
	Clean bool `json:"clean"`
	// Report is the encoded report document, stored verbatim.
	Report []byte `json:"-"`
}

// encode renders the record:
//
//	"RADERVD1\n" | u32 metaLen | meta JSON | u32 reportLen | report | u32 CRC32C
//
// with all integers little-endian and the CRC covering everything before
// it (magic included). The CRC is the torn-write detector: any prefix or
// bitflip of a record fails decodeVerdict and is quarantined.
func (v *Verdict) encode() ([]byte, error) {
	meta, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("store: encoding verdict meta: %w", err)
	}
	out := make([]byte, 0, len(verdictMagic)+8+len(meta)+len(v.Report)+4)
	out = append(out, verdictMagic...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(meta)))
	out = append(out, meta...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(v.Report)))
	out = append(out, v.Report...)
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(out, verdictCRC))
	return out, nil
}

// decodeVerdict parses and verifies an encoded record. Any framing or
// checksum violation is an error; callers quarantine and treat it as a
// miss.
func decodeVerdict(data []byte) (*Verdict, error) {
	if len(data) < len(verdictMagic)+4+4+4 {
		return nil, fmt.Errorf("store: verdict record truncated (%d bytes)", len(data))
	}
	if string(data[:len(verdictMagic)]) != verdictMagic {
		return nil, fmt.Errorf("store: bad verdict magic")
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.Checksum(body, verdictCRC); got != sum {
		return nil, fmt.Errorf("store: verdict checksum mismatch: record %08x, content %08x", sum, got)
	}
	p := body[len(verdictMagic):]
	metaLen := binary.LittleEndian.Uint32(p)
	p = p[4:]
	if uint64(metaLen) > maxVerdictSection || uint64(metaLen)+4 > uint64(len(p)) {
		return nil, fmt.Errorf("store: verdict meta length %d exceeds record", metaLen)
	}
	meta := p[:metaLen]
	p = p[metaLen:]
	repLen := binary.LittleEndian.Uint32(p)
	p = p[4:]
	if uint64(repLen) != uint64(len(p)) {
		return nil, fmt.Errorf("store: verdict report length %d, %d bytes remain", repLen, len(p))
	}
	var v Verdict
	if err := json.Unmarshal(meta, &v); err != nil {
		return nil, fmt.Errorf("store: verdict meta: %w", err)
	}
	v.Report = append([]byte(nil), p...)
	return &v, nil
}
