package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/faults"
)

func open(t *testing.T, dir string, opts Options) (*Store, *Recovery) {
	t.Helper()
	s, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s, rec
}

func digestOf(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

func TestVerdictRoundTrip(t *testing.T) {
	s, _ := open(t, t.TempDir(), Options{})
	rec := &Verdict{
		Key:      "abc|sp+|all",
		Digest:   "abc",
		Detector: "sp+",
		Spec:     "all",
		Clean:    false,
		Report:   []byte(`{"schema":3,"races":["r1"]}`),
	}
	if err := s.PutVerdict(rec); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.GetVerdict(rec.Key)
	if err != nil || !ok {
		t.Fatalf("GetVerdict: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got.Report, rec.Report) || got.Detector != "sp+" || got.Clean {
		t.Fatalf("round trip mangled the record: %+v", got)
	}
	if _, ok, _ := s.GetVerdict("no|such|key"); ok {
		t.Fatal("absent key must miss")
	}
	st := s.Stats()
	if st.VerdictWrites != 1 || st.VerdictHits != 1 || st.VerdictMisses != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// A verdict survives a store reopen byte-identically — the core
// durability contract.
func TestVerdictSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, _ := open(t, dir, Options{})
	rec := &Verdict{Key: "k|d|s", Digest: "k", Detector: "d", Report: []byte(`{"x":1}`)}
	if err := s.PutVerdict(rec); err != nil {
		t.Fatal(err)
	}
	s2, r := open(t, dir, Options{})
	if r.VerdictsScanned != 1 || r.VerdictsQuarantined != 0 {
		t.Fatalf("recovery scan: %+v", r)
	}
	got, ok, err := s2.GetVerdict("k|d|s")
	if err != nil || !ok {
		t.Fatalf("reopen GetVerdict: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got.Report, rec.Report) {
		t.Fatalf("report bytes drifted: %q vs %q", got.Report, rec.Report)
	}
}

// Corrupting any byte of a stored verdict record makes the read
// quarantine it and report a miss — never an error, never bad data.
func TestCorruptVerdictQuarantinedOnRead(t *testing.T) {
	dir := t.TempDir()
	s, _ := open(t, dir, Options{})
	rec := &Verdict{Key: "k|d|s", Digest: "k", Detector: "d", Report: []byte(`{"x":1}`)}
	if err := s.PutVerdict(rec); err != nil {
		t.Fatal(err)
	}
	path := s.verdictPath("k|d|s")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, at := range []int{0, len(verdictMagic), len(data) / 2, len(data) - 1} {
		mut := append([]byte(nil), data...)
		mut[at] ^= 0x5A
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		got, ok, err := s.GetVerdict("k|d|s")
		if err != nil {
			t.Fatalf("flip at %d: corrupt record must not error: %v", at, err)
		}
		if ok {
			t.Fatalf("flip at %d: corrupt record must miss, got %+v", at, got)
		}
		// The corrupt file moved to quarantine; re-put for the next case.
		if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("flip at %d: corrupt record must leave the hot path", at)
		}
		if err := s.PutVerdict(rec); err != nil {
			t.Fatal(err)
		}
	}
	if q := s.Stats().Quarantined; q != 4 {
		t.Fatalf("quarantined = %d, want 4", q)
	}
	names, _ := listFiles(filepath.Join(dir, "quarantine"))
	if len(names) != 4 {
		t.Fatalf("quarantine dir holds %d files, want 4", len(names))
	}
}

// The recovery scan quarantines corrupt verdicts and removes orphan temp
// files.
func TestRecoveryScanQuarantinesAndCleans(t *testing.T) {
	dir := t.TempDir()
	s, _ := open(t, dir, Options{})
	good := &Verdict{Key: "good|d|", Digest: "good", Detector: "d", Report: []byte(`{}`)}
	bad := &Verdict{Key: "bad|d|", Digest: "bad", Detector: "d", Report: []byte(`{}`)}
	if err := s.PutVerdict(good); err != nil {
		t.Fatal(err)
	}
	if err := s.PutVerdict(bad); err != nil {
		t.Fatal(err)
	}
	// Tear the bad record and plant an orphan temp file.
	badPath := s.verdictPath("bad|d|")
	data, _ := os.ReadFile(badPath)
	if err := os.WriteFile(badPath, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "tmp", "orphan.123"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, r := open(t, dir, Options{})
	if r.TempFilesRemoved != 1 {
		t.Fatalf("temp files removed = %d, want 1", r.TempFilesRemoved)
	}
	if r.VerdictsScanned != 2 || r.VerdictsQuarantined != 1 {
		t.Fatalf("verdict scan: %+v", r)
	}
	if _, ok, _ := s2.GetVerdict("good|d|"); !ok {
		t.Fatal("good verdict must survive recovery")
	}
	if _, ok, _ := s2.GetVerdict("bad|d|"); ok {
		t.Fatal("torn verdict must be gone after recovery")
	}
	if !strings.Contains(r.String(), "1/2 verdicts quarantined") {
		t.Fatalf("banner: %s", r.String())
	}
}

func TestPartialUploadLifecycle(t *testing.T) {
	dir := t.TempDir()
	s, _ := open(t, dir, Options{})
	content := bytes.Repeat([]byte("0123456789abcdef"), 4096) // 64 KiB
	dg := digestOf(content)

	// Chunked append with an offset-conflict in the middle.
	off, err := s.AppendPartial(dg, 0, bytes.NewReader(content[:1000]))
	if err != nil || off != 1000 {
		t.Fatalf("chunk 1: off=%d err=%v", off, err)
	}
	if got := s.PartialOffset(dg); got != 1000 {
		t.Fatalf("PartialOffset = %d", got)
	}
	// Wrong offset: rejected, server truth returned.
	off, err = s.AppendPartial(dg, 500, bytes.NewReader(content[500:1000]))
	var oe *OffsetError
	if !errors.As(err, &oe) || oe.Want != 1000 || off != 1000 {
		t.Fatalf("offset conflict: off=%d err=%v", off, err)
	}
	// Resume at the server's offset, then finish.
	if _, err = s.AppendPartial(dg, 1000, bytes.NewReader(content[1000:])); err != nil {
		t.Fatal(err)
	}
	if err := s.CommitPartial(dg); err != nil {
		t.Fatal(err)
	}
	if !s.HasTrace(dg) {
		t.Fatal("committed trace must exist")
	}
	rc, size, err := s.OpenTrace(dg)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	got, _ := io.ReadAll(rc)
	if size != int64(len(content)) || !bytes.Equal(got, content) {
		t.Fatalf("stored trace differs: %d bytes vs %d", size, len(content))
	}
	if s.PartialOffset(dg) != 0 {
		t.Fatal("partial must be consumed by commit")
	}
}

// A partial upload survives a store reopen and resumes where it left
// off; a partial whose trace was finalized is GCed by recovery.
func TestPartialSurvivesReopenAndGC(t *testing.T) {
	dir := t.TempDir()
	s, _ := open(t, dir, Options{})
	content := bytes.Repeat([]byte{7}, 10000)
	dg := digestOf(content)
	if _, err := s.AppendPartial(dg, 0, bytes.NewReader(content[:4000])); err != nil {
		t.Fatal(err)
	}

	s2, r := open(t, dir, Options{})
	if r.PartialsKept != 1 || r.PartialsRemoved != 0 {
		t.Fatalf("recovery: %+v", r)
	}
	if got := s2.PartialOffset(dg); got != 4000 {
		t.Fatalf("resume offset after reopen = %d, want 4000", got)
	}
	if _, err := s2.AppendPartial(dg, 4000, bytes.NewReader(content[4000:])); err != nil {
		t.Fatal(err)
	}
	if err := s2.CommitPartial(dg); err != nil {
		t.Fatal(err)
	}

	// Plant a fresh partial for the now-final digest: recovery GCs it.
	if err := os.WriteFile(filepath.Join(dir, "partial", dg+".partial"), []byte("left"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, r3 := open(t, dir, Options{})
	if r3.PartialsRemoved != 1 || r3.PartialsKept != 0 {
		t.Fatalf("GC recovery: %+v", r3)
	}
}

// Committing an upload whose content does not hash to the claimed digest
// quarantines it.
func TestCommitDigestMismatchQuarantines(t *testing.T) {
	s, _ := open(t, t.TempDir(), Options{})
	content := []byte("not what was claimed")
	claimed := digestOf([]byte("something else"))
	if _, err := s.AppendPartial(claimed, 0, bytes.NewReader(content)); err != nil {
		t.Fatal(err)
	}
	err := s.CommitPartial(claimed)
	if err == nil {
		t.Fatal("commit with wrong content must fail")
	}
	if s.HasTrace(claimed) {
		t.Fatal("mismatched content must not finalize")
	}
	if s.Stats().Quarantined != 1 {
		t.Fatalf("stats: %+v", s.Stats())
	}
}

// The trace verifier gate: commit rejects content the verifier refuses.
func TestCommitRunsVerifier(t *testing.T) {
	refuse := errors.New("not a trace")
	s, _ := open(t, t.TempDir(), Options{
		VerifyTrace: func(r io.Reader) error {
			io.Copy(io.Discard, r)
			return refuse
		},
	})
	content := []byte("garbage bytes")
	dg := digestOf(content)
	if _, err := s.AppendPartial(dg, 0, bytes.NewReader(content)); err != nil {
		t.Fatal(err)
	}
	if err := s.CommitPartial(dg); !errors.Is(err, refuse) {
		t.Fatalf("verifier verdict must surface, got %v", err)
	}
	if s.HasTrace(dg) {
		t.Fatal("refused content must not finalize")
	}
}

func TestPutTraceVerifiesDigest(t *testing.T) {
	s, _ := open(t, t.TempDir(), Options{})
	content := []byte("some trace bytes")
	if err := s.PutTrace(digestOf(content), bytes.NewReader(content)); err != nil {
		t.Fatal(err)
	}
	if !s.HasTrace(digestOf(content)) {
		t.Fatal("trace must be stored")
	}
	err := s.PutTrace(digestOf([]byte("other")), bytes.NewReader(content))
	if err == nil {
		t.Fatal("wrong digest must be rejected")
	}
	if s.HasTrace(digestOf([]byte("other"))) {
		t.Fatal("mismatched trace must not remain stored")
	}
}

func TestJournalLifecycle(t *testing.T) {
	dir := t.TempDir()
	s, rec := open(t, dir, Options{})
	if len(rec.PendingJobs) != 0 {
		t.Fatalf("fresh store has pending jobs: %+v", rec.PendingJobs)
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.JournalJob(JobRecord{ID: "j1", Prog: "fig1", State: JobQueued}))
	must(s.JournalJob(JobRecord{ID: "j2", Prog: "dedup", Scale: "test", State: JobQueued}))
	must(s.JournalJob(JobRecord{ID: "j1", Prog: "fig1", State: JobDone}))

	// j2 never finished; a reopen reports it pending.
	_, rec2 := open(t, dir, Options{})
	if len(rec2.PendingJobs) != 1 || rec2.PendingJobs[0].ID != "j2" || rec2.PendingJobs[0].Scale != "test" {
		t.Fatalf("pending after reopen: %+v", rec2.PendingJobs)
	}
}

// A torn trailing journal line (crash mid-append) is dropped, not fatal.
func TestJournalTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	s, _ := open(t, dir, Options{})
	if err := s.JournalJob(JobRecord{ID: "j1", Prog: "fig1", State: JobQueued}); err != nil {
		t.Fatal(err)
	}
	jp := filepath.Join(dir, "journal", "jobs.jsonl")
	f, err := os.OpenFile(jp, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"id":"j2","prog":"ferret","sta`) // torn mid-record
	f.Close()

	_, rec := open(t, dir, Options{})
	if rec.JournalTornLines != 1 {
		t.Fatalf("torn lines = %d, want 1", rec.JournalTornLines)
	}
	if len(rec.PendingJobs) != 1 || rec.PendingJobs[0].ID != "j1" {
		t.Fatalf("pending: %+v", rec.PendingJobs)
	}
}

// An injected disk error on a verdict write fails the Put but leaves the
// store consistent: no torn final file, the old value (if any) intact.
func TestInjectedWriteErrorLeavesStoreConsistent(t *testing.T) {
	dir := t.TempDir()
	old := &Verdict{Key: "k|d|", Digest: "k", Detector: "d", Report: []byte(`{"v":"old"}`)}
	fresh := &Verdict{Key: "k|d|", Digest: "k", Detector: "d", Report: []byte(`{"v":"new"}`)}

	for _, op := range []string{OpTempCreate, OpTempWrite, OpTempSync, OpRename} {
		s, _ := open(t, dir, Options{})
		if err := s.PutVerdict(old); err != nil {
			t.Fatal(err)
		}
		// Arm the injector only after Open: the open-time journal
		// compaction flows through the same seam.
		inj := &faults.Disk{Op: op, FailAt: 0, Err: faults.ErrDisk}
		armed := false
		s2, _ := open(t, dir, Options{Inject: func(op, path string) error {
			if !armed {
				return nil
			}
			return inj.Check(op, path)
		}})
		armed = true
		if err := s2.PutVerdict(fresh); err == nil {
			t.Fatalf("op %s: injected failure must surface", op)
		}
		if !inj.Injected() {
			t.Fatalf("op %s: fault never fired", op)
		}
		got, ok, err := s2.GetVerdict("k|d|")
		if err != nil || !ok || !bytes.Equal(got.Report, old.Report) {
			t.Fatalf("op %s: old value must survive failed overwrite: ok=%v err=%v got=%s",
				op, ok, err, got.Report)
		}
	}
}

func TestValidDigest(t *testing.T) {
	good := digestOf([]byte("x"))
	for _, tc := range []struct {
		d  string
		ok bool
	}{
		{good, true},
		{strings.ToUpper(good), false},
		{good[:63], false},
		{good + "a", false},
		{strings.Replace(good, good[:1], "/", 1), false},
		{"../../../../etc/passwd", false},
		{"", false},
	} {
		if ValidDigest(tc.d) != tc.ok {
			t.Errorf("ValidDigest(%q) = %v, want %v", tc.d, !tc.ok, tc.ok)
		}
	}
}
