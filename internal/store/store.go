// Package store is the durable half of raderd: a disk-backed,
// content-addressed trace and verdict store with crash-at-any-point
// recovery. It exists so that detection never has to be redone after a
// failure — the robustness analogue of the prefix-sharing sweep's "never
// redo work you can recover": a verdict computed once for a (digest,
// detector, spec) key is served byte-identical forever, across process
// restarts, torn writes and corrupted files.
//
// Durability discipline:
//
//   - Every finalized file is written atomically: bytes go to a temp file
//     under tmp/, are fsynced, then renamed into a digest-sharded layout
//     (traces/<aa>/<digest>.trace, verdicts/<aa>/<key-digest>.verdict),
//     and the containing directory is fsynced. A crash leaves either the
//     old state or the new state, never a torn final file.
//   - Every verdict record carries its own CRC32C; traces carry the v2
//     CILKTRACE footer. Reads verify before trusting.
//   - Corrupt or torn files are never fatal: they are moved to
//     quarantine/ and the read reports a miss, so the caller re-derives
//     the verdict (the store's contract is cache-like: losing an entry
//     costs one recomputation, never correctness).
//   - Resumable uploads accumulate in partial/<digest>.partial and
//     survive restarts; commit verifies the SHA-256 content digest and
//     the trace footer before the atomic rename.
//   - Sweep jobs are journaled (journal/jobs.jsonl, one fsynced JSON line
//     per transition); Open replays the journal and reports
//     persisted-but-unfinished jobs for the service to re-enqueue.
//
// Open runs a recovery scan: orphan temp files are deleted, undecodable
// verdict and trace files are quarantined, partial uploads whose final
// trace already exists are garbage-collected, and the journal is
// compacted. All store I/O flows through an optional fault-injection
// seam (Options.Inject) so the chaos suite can prove the recovery
// contract at every injection point.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
)

// Injection-seam operation names, passed to Options.Inject before every
// durable side effect. The chaos suite enumerates these by a counting
// pass and then fails each one in turn.
const (
	OpTempCreate   = "temp-create"
	OpTempWrite    = "temp-write"
	OpTempSync     = "temp-sync"
	OpRename       = "rename"
	OpDirSync      = "dir-sync"
	OpPartialOpen  = "partial-open"
	OpPartialWrite = "partial-write"
	OpPartialSync  = "partial-sync"
	OpJournalWrite = "journal-write"
	OpJournalSync  = "journal-sync"
)

// Options configures Open.
type Options struct {
	// Inject, when non-nil, is consulted before every durable side
	// effect; a non-nil return aborts the operation with that error.
	// faults.Disk implements this seam for the chaos suite.
	Inject func(op, path string) error
	// VerifyTrace, when non-nil, is the content integrity check applied
	// to finalized traces during the recovery scan and to completed
	// resumable uploads at commit (the service wires in
	// trace.VerifyIntegrity; the store itself is format-agnostic — it
	// addresses bytes). It must cost O(1) memory on large inputs.
	VerifyTrace func(io.Reader) error
}

// Stats are the store's monotonic operation counters, exported by the
// service as metrics.
type Stats struct {
	VerdictWrites uint64 // verdict records durably written
	VerdictHits   uint64 // verified verdict reads
	VerdictMisses uint64 // absent (or quarantined-on-read) verdicts
	TraceWrites   uint64 // traces committed (direct or via partial)
	SpansWrites   uint64 // span-tree records durably written
	Quarantined   uint64 // files moved to quarantine (scan + read paths)
	IngestBytes   uint64 // bytes appended to partial uploads
}

// Store is a content-addressed trace + verdict store rooted at one
// directory. Methods are safe for concurrent use.
type Store struct {
	dir         string
	inject      func(op, path string) error
	verifyTrace func(io.Reader) error

	journal *journal

	quarantineSeq atomic.Uint64

	verdictWrites atomic.Uint64
	verdictHits   atomic.Uint64
	verdictMisses atomic.Uint64
	traceWrites   atomic.Uint64
	spansWrites   atomic.Uint64
	quarantined   atomic.Uint64
	ingestBytes   atomic.Uint64

	// partialMu serializes appends per digest (a resumable upload is a
	// single logical stream; concurrent appenders would interleave).
	partialMu sync.Mutex
}

// Open initializes (or adopts) a store rooted at dir, runs the recovery
// scan, and returns the recovery report. A directory that has never held
// a store is created empty; a directory left behind by a crashed process
// is reconciled, never rejected.
func Open(dir string, opts Options) (*Store, *Recovery, error) {
	s := &Store{dir: dir, inject: opts.Inject, verifyTrace: opts.VerifyTrace}
	if s.inject == nil {
		s.inject = func(op, path string) error { return nil }
	}
	for _, sub := range []string{"tmp", "traces", "verdicts", "spans", "partial", "quarantine", "journal"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, nil, fmt.Errorf("store: creating layout: %w", err)
		}
	}
	rec, err := s.recover()
	if err != nil {
		return nil, nil, err
	}
	j, pending, torn, err := openJournal(s, filepath.Join(dir, "journal", "jobs.jsonl"))
	if err != nil {
		return nil, nil, err
	}
	s.journal = j
	rec.PendingJobs = pending
	rec.JournalTornLines = torn
	return s, rec, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Stats snapshots the operation counters.
func (s *Store) Stats() Stats {
	return Stats{
		VerdictWrites: s.verdictWrites.Load(),
		VerdictHits:   s.verdictHits.Load(),
		VerdictMisses: s.verdictMisses.Load(),
		TraceWrites:   s.traceWrites.Load(),
		SpansWrites:   s.spansWrites.Load(),
		Quarantined:   s.quarantined.Load(),
		IngestBytes:   s.ingestBytes.Load(),
	}
}

// ValidDigest reports whether d looks like a lowercase SHA-256 hex
// digest — the only identity the content-addressed paths accept (also a
// path-traversal guard: digests never contain separators).
func ValidDigest(d string) bool {
	if len(d) != sha256.Size*2 {
		return false
	}
	for _, c := range d {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// shard returns the two-hex-char shard directory for a digest-like key.
func shard(key string) string { return key[:2] }

func (s *Store) tracePath(digest string) string {
	return filepath.Join(s.dir, "traces", shard(digest), digest+".trace")
}

// verdictKeyDigest converts an arbitrary verdict key (digest|detector|spec)
// into the hex name its record file is stored under.
func verdictKeyDigest(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}

func (s *Store) verdictPath(key string) string {
	kd := verdictKeyDigest(key)
	return filepath.Join(s.dir, "verdicts", shard(kd), kd+".verdict")
}

func (s *Store) partialPath(digest string) string {
	return filepath.Join(s.dir, "partial", digest+".partial")
}

// writeAtomic writes data to path via the temp+fsync+rename+dirsync
// protocol. Every step passes the injection seam first.
func (s *Store) writeAtomic(path string, data []byte) error {
	return s.writeAtomicFrom(path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// writeAtomicFrom is writeAtomic for streamed content: fill writes the
// payload to the temp file without ever holding it whole in memory.
func (s *Store) writeAtomicFrom(path string, fill func(io.Writer) error) (err error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := s.inject(OpTempCreate, path); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Join(s.dir, "tmp"), filepath.Base(path)+".*")
	if err != nil {
		return fmt.Errorf("store: temp file: %w", err)
	}
	tmpName := tmp.Name()
	defer func() {
		if err != nil && !errors.Is(err, errAborted) {
			tmp.Close()
			os.Remove(tmpName)
		}
	}()
	if err := s.inject(OpTempWrite, tmpName); err != nil {
		return abort(err)
	}
	if err := fill(tmp); err != nil {
		return fmt.Errorf("store: writing %s: %w", filepath.Base(path), err)
	}
	if err := s.inject(OpTempSync, tmpName); err != nil {
		return abort(err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("store: fsync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: close: %w", err)
	}
	if err := s.inject(OpRename, path); err != nil {
		return abort(err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("store: rename into place: %w", err)
	}
	if err := s.inject(OpDirSync, filepath.Dir(path)); err != nil {
		return abort(err)
	}
	syncDir(filepath.Dir(path))
	return nil
}

// errAborted marks an injected abort: the deferred cleanup is skipped so
// the simulated crash leaves its debris on disk, exactly as a real kill
// would.
var errAborted = errors.New("store: operation aborted by fault injection")

func abort(cause error) error { return fmt.Errorf("%w: %w", errAborted, cause) }

// Aborted reports whether err came from the injection seam (as opposed
// to a real I/O failure).
func Aborted(err error) bool { return errors.Is(err, errAborted) }

// syncDir fsyncs a directory so a rename into it survives power loss.
// Best effort: some filesystems reject directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

// quarantine moves a corrupt or undecodable file out of the hot layout
// (never deleting evidence) and counts it. The destination name keeps
// the original base name plus a uniquifying sequence number.
func (s *Store) quarantine(path, reason string) {
	seq := s.quarantineSeq.Add(1)
	dst := filepath.Join(s.dir, "quarantine",
		fmt.Sprintf("%s.%d", filepath.Base(path), seq))
	if err := os.Rename(path, dst); err != nil {
		// Renaming within one filesystem only fails if the source is
		// already gone; removing is the safe fallback.
		_ = os.Remove(path)
	}
	s.quarantined.Add(1)
	_ = reason // reasons surface via the recovery report; kept for symmetry
}

// ---- traces ----

// HasTrace reports whether a finalized trace for digest exists.
func (s *Store) HasTrace(digest string) bool {
	if !ValidDigest(digest) {
		return false
	}
	_, err := os.Stat(s.tracePath(digest))
	return err == nil
}

// OpenTrace opens a finalized trace for streaming replay. The caller
// closes it. Returns os.ErrNotExist when the digest is not stored.
func (s *Store) OpenTrace(digest string) (io.ReadCloser, int64, error) {
	if !ValidDigest(digest) {
		return nil, 0, fmt.Errorf("store: %w: bad digest %q", os.ErrNotExist, digest)
	}
	f, err := os.Open(s.tracePath(digest))
	if err != nil {
		return nil, 0, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	return f, st.Size(), nil
}

// PutTrace durably stores trace content under its claimed digest,
// verifying the SHA-256 while streaming. The write is atomic; a
// pre-existing trace for the digest is left untouched (content-addressed
// files are immutable).
func (s *Store) PutTrace(digest string, r io.Reader) error {
	if !ValidDigest(digest) {
		return fmt.Errorf("store: bad digest %q", digest)
	}
	path := s.tracePath(digest)
	if _, err := os.Stat(path); err == nil {
		_, err := io.Copy(io.Discard, r)
		return err
	}
	h := sha256.New()
	err := s.writeAtomicFrom(path, func(w io.Writer) error {
		_, err := io.Copy(io.MultiWriter(w, h), r)
		return err
	})
	if err != nil {
		return err
	}
	if got := hex.EncodeToString(h.Sum(nil)); got != digest {
		// The rename already happened with wrong content — undo it.
		// (Verification-before-rename is the partial-upload path's job;
		// PutTrace re-checks for defense in depth.)
		s.quarantine(path, "digest mismatch")
		return fmt.Errorf("store: content digest %s does not match claimed %s", got, digest)
	}
	s.traceWrites.Add(1)
	return nil
}

// ---- verdict records ----

// PutVerdict durably stores a verdict record under its cache key
// (digest|detector|spec). The record is checksummed on disk and the
// write is atomic.
func (s *Store) PutVerdict(rec *Verdict) error {
	data, err := rec.encode()
	if err != nil {
		return err
	}
	if err := s.writeAtomic(s.verdictPath(rec.Key), data); err != nil {
		return err
	}
	s.verdictWrites.Add(1)
	return nil
}

// GetVerdict loads and verifies the verdict stored under key. A missing
// record is (nil, false, nil). A torn or corrupt record is quarantined
// and reported as a miss — the caller recomputes and overwrites; losing
// a record never loses correctness.
func (s *Store) GetVerdict(key string) (*Verdict, bool, error) {
	path := s.verdictPath(key)
	data, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			s.verdictMisses.Add(1)
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("store: reading verdict: %w", err)
	}
	rec, err := decodeVerdict(data)
	if err != nil {
		s.quarantine(path, err.Error())
		s.verdictMisses.Add(1)
		return nil, false, nil
	}
	if rec.Key != key {
		// A hash collision in the key digest, or a file renamed by hand:
		// either way this record answers a different question.
		s.quarantine(path, "key mismatch")
		s.verdictMisses.Add(1)
		return nil, false, nil
	}
	s.verdictHits.Add(1)
	return rec, true, nil
}

// ---- resumable partial uploads ----

// PartialOffset reports how many bytes of a resumable upload have been
// durably received (0 when none has started).
func (s *Store) PartialOffset(digest string) int64 {
	st, err := os.Stat(s.partialPath(digest))
	if err != nil {
		return 0
	}
	return st.Size()
}

// ErrOffsetMismatch is returned (wrapped) by AppendPartial when the
// client's claimed offset does not equal the bytes already received; the
// wrapping error's Offset is the server's truth to resume from.
var ErrOffsetMismatch = errors.New("store: upload offset mismatch")

// OffsetError carries the server-side offset for resume.
type OffsetError struct {
	Want int64 // bytes durably received; resume here
	Got  int64 // offset the client claimed
}

func (e *OffsetError) Error() string {
	return fmt.Sprintf("%v: have %d bytes, client claimed offset %d", ErrOffsetMismatch, e.Want, e.Got)
}

func (e *OffsetError) Unwrap() error { return ErrOffsetMismatch }

// AppendPartial appends one chunk of a resumable upload at the claimed
// offset, streaming r to disk (constant memory regardless of chunk or
// trace size). The chunk is fsynced before the new offset is reported,
// so a client may treat the returned offset as durable.
func (s *Store) AppendPartial(digest string, offset int64, r io.Reader) (int64, error) {
	if !ValidDigest(digest) {
		return 0, fmt.Errorf("store: bad digest %q", digest)
	}
	s.partialMu.Lock()
	defer s.partialMu.Unlock()
	path := s.partialPath(digest)
	if err := s.inject(OpPartialOpen, path); err != nil {
		return 0, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, fmt.Errorf("store: partial: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return 0, fmt.Errorf("store: partial: %w", err)
	}
	have := st.Size()
	if offset != have {
		return have, &OffsetError{Want: have, Got: offset}
	}
	if err := s.inject(OpPartialWrite, path); err != nil {
		return have, err
	}
	if _, err := f.Seek(have, io.SeekStart); err != nil {
		return have, fmt.Errorf("store: partial seek: %w", err)
	}
	n, err := io.Copy(f, r)
	s.ingestBytes.Add(uint64(n))
	if err != nil {
		// The tail of this chunk may be torn. Truncate back to the last
		// durable offset so a resume restarts the chunk cleanly.
		_ = f.Truncate(have)
		return have, fmt.Errorf("store: partial write: %w", err)
	}
	if err := s.inject(OpPartialSync, path); err != nil {
		return have, err
	}
	if err := f.Sync(); err != nil {
		return have, fmt.Errorf("store: partial fsync: %w", err)
	}
	return have + n, nil
}

// CommitPartial verifies a completed resumable upload — the SHA-256 of
// every received byte must equal the claimed digest, and the store's
// VerifyTrace option (typically trace.VerifyIntegrity) must accept the
// content — then atomically finalizes it as the trace for digest. On
// verification failure the partial is quarantined: the upload was
// corrupt end to end and resuming it cannot help.
func (s *Store) CommitPartial(digest string) error {
	if !ValidDigest(digest) {
		return fmt.Errorf("store: bad digest %q", digest)
	}
	s.partialMu.Lock()
	defer s.partialMu.Unlock()
	path := s.partialPath(digest)
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("store: no partial upload for %s: %w", digest, err)
	}
	h := sha256.New()
	_, err = io.Copy(h, f)
	f.Close()
	if err != nil {
		return fmt.Errorf("store: hashing partial: %w", err)
	}
	if got := hex.EncodeToString(h.Sum(nil)); got != digest {
		s.quarantine(path, "commit digest mismatch")
		return fmt.Errorf("store: uploaded content hashes to %s, not the claimed %s", got, digest)
	}
	if s.verifyTrace != nil {
		f, err := os.Open(path)
		if err != nil {
			return fmt.Errorf("store: verifying partial: %w", err)
		}
		verr := s.verifyTrace(f)
		f.Close()
		if verr != nil {
			s.quarantine(path, "integrity check failed")
			return fmt.Errorf("store: uploaded trace failed integrity check: %w", verr)
		}
	}
	final := s.tracePath(digest)
	if err := os.MkdirAll(filepath.Dir(final), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	// The partial is already fsynced chunk by chunk; finalizing is one
	// atomic rename plus directory sync.
	if err := s.inject(OpRename, final); err != nil {
		return abort(err)
	}
	if err := os.Rename(path, final); err != nil {
		return fmt.Errorf("store: finalizing upload: %w", err)
	}
	if err := s.inject(OpDirSync, filepath.Dir(final)); err != nil {
		return abort(err)
	}
	syncDir(filepath.Dir(final))
	s.traceWrites.Add(1)
	return nil
}

// AbortPartial discards an in-flight resumable upload.
func (s *Store) AbortPartial(digest string) {
	if !ValidDigest(digest) {
		return
	}
	s.partialMu.Lock()
	defer s.partialMu.Unlock()
	_ = os.Remove(s.partialPath(digest))
}

// ---- helpers shared with recovery ----

// listFiles returns the regular files under root (one or two levels
// deep), sorted for determinism.
func listFiles(root string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				return nil
			}
			return err
		}
		if !d.IsDir() && !strings.HasPrefix(d.Name(), ".") {
			out = append(out, path)
		}
		return nil
	})
	return out, err
}
