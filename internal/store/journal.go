package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Job states recorded in the journal.
const (
	JobQueued = "queued"
	JobDone   = "done"
	JobFailed = "failed"
)

// JobRecord is one journaled sweep-job transition. A job's life is a
// queued record followed eventually by a done or failed record with the
// same ID; a queued record with no terminal record is
// persisted-but-unfinished work that a restarted daemon re-enqueues.
type JobRecord struct {
	ID    string `json:"id"`
	Prog  string `json:"prog"`
	Scale string `json:"scale,omitempty"`
	// Sample is the job's specification-sampling cap (0 = full family).
	// It is part of the verdict, so a recovered job must re-run with it.
	Sample int    `json:"sample,omitempty"`
	State  string `json:"state"`
}

// journal is an append-only JSONL file of JobRecords. Appends are
// fsynced line by line, so at most the final line can be torn by a
// crash — and a torn line is simply dropped on replay (its job either
// never reached the queue, or its terminal state is re-derived by
// rerunning, which is idempotent).
type journal struct {
	s  *Store
	mu sync.Mutex
	f  *os.File
}

// openJournal replays (and compacts) the journal at path, returning the
// handle for further appends, the pending (unfinished) jobs, and how
// many torn trailing lines were dropped.
func openJournal(s *Store, path string) (*journal, []JobRecord, int, error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, 0, fmt.Errorf("store: reading journal: %w", err)
	}
	pending, torn := replayJournal(data)

	// Compact: rewrite the journal to hold only the pending records,
	// atomically, so the file does not grow forever and recovery after
	// the next crash replays a minimal history.
	var buf bytes.Buffer
	for _, r := range pending {
		line, err := json.Marshal(r)
		if err != nil {
			return nil, nil, 0, fmt.Errorf("store: compacting journal: %w", err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	if err := s.writeAtomic(path, buf.Bytes()); err != nil {
		return nil, nil, 0, fmt.Errorf("store: compacting journal: %w", err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("store: opening journal: %w", err)
	}
	return &journal{s: s, f: f}, pending, torn, nil
}

// replayJournal folds the journal bytes into the set of unfinished jobs
// (in first-queued order) plus the count of undecodable lines dropped.
func replayJournal(data []byte) (pending []JobRecord, torn int) {
	open := map[string]int{} // id -> index in pending
	for _, line := range bytes.Split(data, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var r JobRecord
		if err := json.Unmarshal(line, &r); err != nil || r.ID == "" {
			// A torn tail (crash mid-append) or bitrot: drop the line.
			torn++
			continue
		}
		switch r.State {
		case JobQueued:
			if _, dup := open[r.ID]; !dup {
				open[r.ID] = len(pending)
				pending = append(pending, r)
			}
		case JobDone, JobFailed:
			if i, ok := open[r.ID]; ok {
				pending[i].ID = "" // tombstone
				delete(open, r.ID)
			}
		}
	}
	out := pending[:0]
	for _, r := range pending {
		if r.ID != "" {
			out = append(out, r)
		}
	}
	return out, torn
}

// Append durably journals one job transition (fsync before return).
func (j *journal) append(r JobRecord) error {
	line, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("store: journal encode: %w", err)
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.s.inject(OpJournalWrite, j.f.Name()); err != nil {
		return err
	}
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("store: journal append: %w", err)
	}
	if err := j.s.inject(OpJournalSync, j.f.Name()); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("store: journal fsync: %w", err)
	}
	return nil
}

// JournalJob records a job transition in the durable journal. The queued
// record must be written before the job is acknowledged to the client;
// the terminal record is written after the verdict is stored, so a crash
// between the two re-runs the job (idempotent: verdicts are
// content-addressed).
func (s *Store) JournalJob(r JobRecord) error { return s.journal.append(r) }
