package specgen

import (
	"reflect"
	"testing"

	"repro/internal/cilk"
)

var familyProfiles = []Profile{
	{},
	{MaxPDepth: 1, MaxSyncBlock: 1, CilkDepth: 1},
	{MaxPDepth: 3, MaxSyncBlock: 3, CilkDepth: 2},
	{MaxPDepth: 5, MaxSyncBlock: 4, CilkDepth: 3},
	{MaxPDepth: 2, MaxSyncBlock: 7, CilkDepth: 2},
	{MaxPDepth: 12, MaxSyncBlock: 9, CilkDepth: 4},
}

// The virtual family must be the materialized family: same length, same
// member at every index — the sweep's determinism contract hangs on the
// two being interchangeable.
func TestFamilyMatchesAll(t *testing.T) {
	for _, p := range familyProfiles {
		all := All(p)
		fam := NewFamily(p)
		if fam.Len() != len(all) {
			t.Fatalf("profile %+v: Len()=%d, All yields %d", p, fam.Len(), len(all))
		}
		for i, want := range all {
			if got := fam.At(i); !reflect.DeepEqual(got, want) {
				t.Fatalf("profile %+v: At(%d)=%#v, All[%d]=%#v", p, got, i, i, want)
			}
		}
	}
}

func TestFamilyAtPanicsOutOfRange(t *testing.T) {
	fam := NewFamily(Profile{MaxPDepth: 2, MaxSyncBlock: 2})
	for _, i := range []int{-1, fam.Len()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%d) did not panic", i)
				}
			}()
			fam.At(i)
		}()
	}
}

// The lazy indexed construction must group identically to the eager one
// and expand to the identical structure.
func TestBuildTrieIndexedMatchesEager(t *testing.T) {
	for _, p := range familyProfiles[1:] {
		probes := flatProbes(p.MaxSyncBlock)
		specs := All(p)
		eager := BuildTrie(specs, probes)
		lazy := BuildTrieIndexed(len(specs), func(i int) cilk.StealSpec { return specs[i] }, probes)
		if !reflect.DeepEqual(eager.Groups, lazy.Groups) {
			t.Fatalf("profile %+v: groups differ:\neager %v\nlazy  %v", p, eager.Groups, lazy.Groups)
		}
		lazy.ExpandAll(lazy.Root)
		if !sameShape(eager.Root, lazy.Root) {
			t.Fatalf("profile %+v: expanded lazy trie differs structurally from eager", p)
		}
	}
}

// sameShape compares two expanded tries node by node.
func sameShape(a, b *TrieNode) bool {
	if a.IsLeaf() != b.IsLeaf() || a.Seq != b.Seq || a.Group != b.Group ||
		len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Children {
		if !sameShape(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

// Leaves on an unexpanded node must settle the same group set as the
// fully expanded subtree (order aside) — the deadline-skip contract.
func TestLazyLeavesCoverSubtree(t *testing.T) {
	p := Profile{MaxPDepth: 5, MaxSyncBlock: 5, CilkDepth: 2}
	probes := flatProbes(p.MaxSyncBlock)
	specs := All(p)
	lazy := BuildTrieIndexed(len(specs), func(i int) cilk.StealSpec { return specs[i] }, probes)
	before := append([]int(nil), lazy.Root.Leaves(nil)...)
	lazy.ExpandAll(lazy.Root)
	after := lazy.Root.Leaves(nil)
	if len(before) != len(after) {
		t.Fatalf("unexpanded leaves %d, expanded %d", len(before), len(after))
	}
	seen := make(map[int]bool, len(before))
	for _, g := range before {
		seen[g] = true
	}
	for _, g := range after {
		if !seen[g] {
			t.Fatalf("group %d missing from unexpanded cover", g)
		}
	}
}

// Sampling is deterministic per seed, always keeps member 0, returns
// sorted unique indices, and covers every first-steal stratum before
// exhausting any.
func TestSampleFamilyDeterministic(t *testing.T) {
	p := Profile{MaxPDepth: 6, MaxSyncBlock: 6, CilkDepth: 2}
	probes := flatProbes(p.MaxSyncBlock)
	fam := NewFamily(p)
	n := fam.Len() / 3

	a := SampleFamily(fam, probes, n, 42)
	b := SampleFamily(fam, probes, n, 42)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed sampled differently:\n%v\n%v", a, b)
	}
	if len(a) != n {
		t.Fatalf("sampled %d, want %d", len(a), n)
	}
	if a[0] != 0 {
		t.Fatalf("member 0 not kept: %v", a[:5])
	}
	for i := 1; i < len(a); i++ {
		if a[i] <= a[i-1] {
			t.Fatalf("sample not sorted/unique at %d: %v", i, a)
		}
	}

	c := SampleFamily(fam, probes, n, 43)
	if reflect.DeepEqual(a, c) {
		t.Fatalf("different seeds sampled identically")
	}

	// Coverage guidance: with n at least the stratum count, every
	// first-steal stratum contributes at least one member.
	strata := make(map[int]bool)
	for i := 0; i < fam.Len(); i++ {
		strata[FirstSteal(fam.At(i), probes)] = true
	}
	if n < len(strata) {
		t.Fatalf("test setup: n=%d below stratum count %d", n, len(strata))
	}
	covered := make(map[int]bool)
	for _, i := range a {
		covered[FirstSteal(fam.At(i), probes)] = true
	}
	if len(covered) != len(strata) {
		t.Fatalf("sample covers %d of %d strata", len(covered), len(strata))
	}
}

func TestSampleFamilyFullWhenUncapped(t *testing.T) {
	p := Profile{MaxPDepth: 3, MaxSyncBlock: 3, CilkDepth: 2}
	probes := flatProbes(p.MaxSyncBlock)
	fam := NewFamily(p)
	for _, n := range []int{0, -1, fam.Len(), fam.Len() + 5} {
		sel := SampleFamily(fam, probes, n, 7)
		if len(sel) != fam.Len() {
			t.Fatalf("n=%d: got %d indices, want all %d", n, len(sel), fam.Len())
		}
	}
}
