package specgen

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/cilk"
	"repro/internal/sched"
)

// tagMonoid concatenates string tags and reports each Combine's inputs.
func tagMonoid(onReduce func(left, right []string)) cilk.Monoid {
	return cilk.MonoidFuncs(
		func(*cilk.Ctx) any { return []string(nil) },
		func(_ *cilk.Ctx, l, r any) any {
			lt, rt := l.([]string), r.([]string)
			if onReduce != nil {
				onReduce(lt, rt)
			}
			return append(lt, rt...)
		},
	)
}

// oneSyncBlock builds a program with a single sync block of K
// continuations. Segment i of the block (0 ≤ i ≤ K) updates the reducer
// with tag s<i>, and spawned child i updates with tag c<i> (which lands in
// the view of segment i−1, its inherited context).
func oneSyncBlock(k int, onReduce func(l, r []string), onUpdate func(site string, view []string)) func(*cilk.Ctx) {
	return func(c *cilk.Ctx) {
		r := c.NewReducerQuiet("h", tagMonoid(onReduce), []string(nil))
		upd := func(cc *cilk.Ctx, tag string) {
			cc.Update(r, func(_ *cilk.Ctx, v any) any {
				if onUpdate != nil {
					onUpdate(tag, v.([]string))
				}
				return append(v.([]string), tag)
			})
		}
		upd(c, "s0")
		for i := 1; i <= k; i++ {
			tag := fmt.Sprintf("c%d", i)
			c.Spawn("child", func(cc *cilk.Ctx) { upd(cc, tag) })
			upd(c, fmt.Sprintf("s%d", i))
		}
		c.Sync()
	}
}

// seqSubset steals exactly the continuations whose global sequence numbers
// are in the set — the brute-force enumeration device.
type seqSubset struct {
	set   map[int]bool
	order cilk.ReduceOrder
}

func (s seqSubset) ShouldSteal(ci cilk.ContInfo) bool { return s.set[ci.Seq] }

func (s seqSubset) Order() cilk.ReduceOrder { return s.order }

// allOrders are the reduce orders the executor can express.
var allOrders = []cilk.ReduceOrder{cilk.ReduceAtSync, cilk.ReduceEager, cilk.ReduceMiddleFirst}

func sig(l, r []string) string {
	return strings.Join(l, " ") + " | " + strings.Join(r, " ")
}

func TestMeasureProfile(t *testing.T) {
	p := Measure(oneSyncBlock(5, nil, nil))
	if p.MaxSyncBlock != 5 {
		t.Fatalf("K = %d, want 5", p.MaxSyncBlock)
	}
	if p.MaxPDepth != 5 {
		t.Fatalf("M = %d, want 5", p.MaxPDepth)
	}
	if p.CilkDepth != 1 {
		t.Fatalf("D = %d, want 1", p.CilkDepth)
	}
}

func TestCounts(t *testing.T) {
	if Binomial3(5) != 10 || Binomial3(2) != 0 {
		t.Fatal("Binomial3 wrong")
	}
	// DistinctReduceOps(k) = Σ_y y·(k−y+1), cross-checked directly.
	for k := 1; k <= 10; k++ {
		want := 0
		for y := 1; y <= k; y++ {
			want += y * (k - y + 1)
		}
		if got := DistinctReduceOps(k); got != want {
			t.Fatalf("DistinctReduceOps(%d) = %d, want %d", k, got, want)
		}
	}
	// The reduce family has exactly one member per possible reduce op.
	for k := 1; k <= 8; k++ {
		p := Profile{MaxSyncBlock: k}
		if got := len(ReduceSpecs(p)); got != DistinctReduceOps(k) {
			t.Fatalf("K=%d: family size %d, want %d", k, got, DistinctReduceOps(k))
		}
	}
}

// TestTheorem7ReduceCoverage: on a single sync block of K continuations,
// the generated C(K+1,3) specifications elicit exactly the C(K+1,3)
// distinct reduce operations, and brute-forcing every steal subset under
// every expressible reduce order elicits nothing more.
func TestTheorem7ReduceCoverage(t *testing.T) {
	const k = 5
	collect := func(spec cilk.StealSpec) map[string]bool {
		out := make(map[string]bool)
		cilk.Run(oneSyncBlock(k, func(l, r []string) { out[sig(l, r)] = true }, nil),
			cilk.Config{Spec: spec})
		return out
	}

	family := make(map[string]bool)
	p := Profile{MaxSyncBlock: k}
	for _, spec := range ReduceSpecs(p) {
		for s := range collect(spec) {
			family[s] = true
		}
	}
	if len(family) != DistinctReduceOps(k) {
		var got []string
		for s := range family {
			got = append(got, s)
		}
		sort.Strings(got)
		t.Fatalf("family elicited %d distinct reduce ops, want %d:\n%s",
			len(family), DistinctReduceOps(k), strings.Join(got, "\n"))
	}

	// Brute force: all 2^k steal subsets × every reduce order. The K
	// continuations of the block have sequence numbers 1..k.
	brute := make(map[string]bool)
	for mask := 0; mask < 1<<k; mask++ {
		set := make(map[int]bool)
		for b := 0; b < k; b++ {
			if mask&(1<<b) != 0 {
				set[b+1] = true
			}
		}
		for _, order := range allOrders {
			for s := range collect(seqSubset{set: set, order: order}) {
				brute[s] = true
			}
		}
	}
	for s := range brute {
		if !family[s] {
			t.Errorf("brute force elicited %q, family missed it", s)
		}
	}
	for s := range family {
		if !brute[s] {
			t.Errorf("family elicited %q outside the brute-force universe", s)
		}
	}
}

// nestedProg is a two-level program for the Theorem 6 update-coverage
// test: updates at several P-depths.
func nestedProg(onUpdate func(site string, view []string)) func(*cilk.Ctx) {
	return func(c *cilk.Ctx) {
		r := c.NewReducerQuiet("h", tagMonoid(nil), []string(nil))
		upd := func(cc *cilk.Ctx, tag string) {
			cc.Update(r, func(_ *cilk.Ctx, v any) any {
				if onUpdate != nil {
					onUpdate(tag, v.([]string))
				}
				return append(v.([]string), tag)
			})
		}
		upd(c, "m0")
		c.Spawn("A", func(c *cilk.Ctx) {
			upd(c, "a0")
			c.Spawn("B", func(c *cilk.Ctx) { upd(c, "b0") })
			upd(c, "a1")
			c.Spawn("B", func(c *cilk.Ctx) { upd(c, "b1") })
			upd(c, "a2")
			c.Sync()
			upd(c, "a3")
		})
		upd(c, "m1")
		c.Spawn("A", func(c *cilk.Ctx) { upd(c, "x0") })
		upd(c, "m2")
		c.Sync()
		upd(c, "m3")
	}
}

// TestTheorem6UpdateCoverage: the breadth-first by-P-depth family elicits
// every (site, observed view) pair that any steal subset under any reduce
// order can produce.
func TestTheorem6UpdateCoverage(t *testing.T) {
	collect := func(spec cilk.StealSpec) map[string]bool {
		out := make(map[string]bool)
		cilk.Run(nestedProg(func(site string, view []string) {
			out[site+" sees <"+strings.Join(view, " ")+">"] = true
		}), cilk.Config{Spec: spec})
		return out
	}

	prof := Measure(nestedProg(nil))
	family := make(map[string]bool)
	for _, spec := range UpdateSpecs(prof) {
		for s := range collect(spec) {
			family[s] = true
		}
	}

	// Brute force over all subsets of the program's continuations.
	res := cilk.Run(nestedProg(nil), cilk.Config{Spec: cilk.StealAll{}})
	nConts := len(res.Steals)
	if nConts == 0 || nConts > 12 {
		t.Fatalf("unexpected continuation count %d", nConts)
	}
	brute := make(map[string]bool)
	for mask := 0; mask < 1<<nConts; mask++ {
		set := make(map[int]bool)
		for b := 0; b < nConts; b++ {
			if mask&(1<<b) != 0 {
				set[b+1] = true
			}
		}
		for _, order := range allOrders {
			for s := range collect(seqSubset{set: set, order: order}) {
				brute[s] = true
			}
		}
	}
	var missing []string
	for s := range brute {
		if !family[s] {
			missing = append(missing, s)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		t.Fatalf("update strands missed by the Theorem 6 family:\n%s", strings.Join(missing, "\n"))
	}
	for s := range family {
		if !brute[s] {
			t.Errorf("family elicited %q outside the brute-force universe", s)
		}
	}
}

// TestSharedIndicesAcrossSyncBlocks checks §8's optimization claim: "We
// can steal the same continuations for every sync block, and the
// completeness guarantee still stands." A program with TWO sync blocks is
// swept with the single shared family; every possible reduce operation of
// each block must still be elicited.
func TestSharedIndicesAcrossSyncBlocks(t *testing.T) {
	const k = 4
	prog := func(onReduce func(l, r []string)) func(*cilk.Ctx) {
		return func(c *cilk.Ctx) {
			r := c.NewReducerQuiet("h", tagMonoid(onReduce), []string(nil))
			upd := func(cc *cilk.Ctx, tag string) {
				cc.Update(r, func(_ *cilk.Ctx, v any) any { return append(v.([]string), tag) })
			}
			for block := 0; block < 2; block++ {
				upd(c, fmt.Sprintf("b%d-s0", block))
				for i := 1; i <= k; i++ {
					tag := fmt.Sprintf("b%d-c%d", block, i)
					c.Spawn("child", func(cc *cilk.Ctx) { upd(cc, tag) })
					upd(c, fmt.Sprintf("b%d-s%d", block, i))
				}
				c.Sync()
			}
		}
	}
	collect := func(spec cilk.StealSpec) map[string]bool {
		out := make(map[string]bool)
		cilk.Run(prog(func(l, r []string) { out[sig(l, r)] = true }), cilk.Config{Spec: spec})
		return out
	}
	family := make(map[string]bool)
	p := Measure(prog(nil))
	if p.MaxSyncBlock != k {
		t.Fatalf("K = %d, want %d", p.MaxSyncBlock, k)
	}
	for _, spec := range ReduceSpecs(p) {
		for s := range collect(spec) {
			family[s] = true
		}
	}
	// Each block contributes DistinctReduceOps(k) distinct operations
	// (signatures carry the block tag, so they never collide).
	want := 2 * DistinctReduceOps(k)
	if len(family) != want {
		t.Fatalf("shared-index family elicited %d reduce ops across two blocks, want %d",
			len(family), want)
	}
}

// TestTheorem7LowerBoundShape: the paper's explicit sum is Ω(n³); check
// the cubic growth numerically.
func TestTheorem7LowerBoundShape(t *testing.T) {
	for _, n := range []int{12, 24, 48, 96} {
		lo := TheoremSevenLowerBound(n)
		hi := TheoremSevenLowerBound(2 * n)
		if lo <= 0 {
			t.Fatalf("bound(%d) = %d, want positive", n, lo)
		}
		ratio := float64(hi) / float64(lo)
		if ratio < 6 || ratio > 10 { // cubic doubling ≈ 8
			t.Fatalf("bound(%d)=%d bound(%d)=%d ratio %.2f, want ≈8", n, lo, 2*n, hi, ratio)
		}
	}
	// And the bound never exceeds the trivial upper bound C(n+1,3).
	for n := 6; n <= 60; n += 6 {
		if TheoremSevenLowerBound(n) > Binomial3(n+1) {
			t.Fatalf("lower bound exceeds the number of distinct reduce ops at n=%d", n)
		}
	}
}

// TestAllFamilySize: |All| = Θ(M + K³).
func TestAllFamilySize(t *testing.T) {
	p := Profile{MaxPDepth: 7, MaxSyncBlock: 6}
	want := (7 + 1) + DistinctReduceOps(6) // 8 + 36 + 20
	if got := len(All(p)); got != want {
		t.Fatalf("family size %d, want %d", got, want)
	}
}

var _ = sched.Triple{} // keep the import for the family types
