// The steal-decision trie groups the §7 specification family by longest
// common prefix of steal decisions. For an ostensibly deterministic
// program the continuation-probe sequence is schedule-independent: every
// specification is asked ShouldSteal at the same probes, in the same
// order, with the same ContInfo. Two specifications that answer the same
// way up to probe t therefore produce bit-identical instrumentation-event
// prefixes up to probe t — the invariant the prefix-sharing sweep exploits
// by snapshotting detector state at trie branch points instead of
// re-analysing the shared prefix once per specification.
//
// Reduce ordering complicates sharing only after the first steal: with no
// views beyond the leftmost there is nothing to reduce, so ReduceOrder and
// ReduceScheduler cannot influence the stream. The trie's edge keys encode
// exactly that: decisions share freely while no steal has occurred, and
// once one has, the key conservatively incorporates the specification's
// reduce mode so only schedules with identical post-steal semantics keep
// sharing.
package specgen

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/cilk"
)

// ProbeRecord captures the scalar identity of one continuation probe from
// a recording run, enough to re-evaluate any steal specification offline
// and to verify a later run replays the same probe sequence.
type ProbeRecord struct {
	Frame     cilk.FrameID
	Label     string
	Depth     int
	SyncBlock int
	Index     int
	Seq       int
	PDepth    int
}

// Matches reports whether a live probe is the recorded one. A mismatch
// means the program is not ostensibly deterministic (its spawn structure
// changed across runs), which invalidates prefix sharing for the run.
func (p ProbeRecord) Matches(ci cilk.ContInfo) bool {
	return ci.Seq == p.Seq && ci.Index == p.Index && ci.SyncBlock == p.SyncBlock &&
		ci.PDepth == p.PDepth && ci.Depth == p.Depth &&
		ci.Frame != nil && ci.Frame.ID == p.Frame
}

type recordingSpec struct {
	pr     *profiler
	probes *[]ProbeRecord
}

func (s recordingSpec) ShouldSteal(ci cilk.ContInfo) bool {
	s.pr.observe(ci)
	*s.probes = append(*s.probes, ProbeRecord{
		Frame: ci.Frame.ID, Label: ci.Label, Depth: ci.Depth,
		SyncBlock: ci.SyncBlock, Index: ci.Index, Seq: ci.Seq, PDepth: ci.PDepth,
	})
	return false
}

func (s recordingSpec) Order() cilk.ReduceOrder { return cilk.ReduceAtSync }

// MeasureProbes is Measure plus a recording of every continuation probe in
// serial order — the single profiling run the prefix-sharing sweep builds
// its trie from.
func MeasureProbes(prog func(*cilk.Ctx)) (Profile, []ProbeRecord) {
	pr := &profiler{}
	var probes []ProbeRecord
	cilk.Run(prog, cilk.Config{Spec: recordingSpec{pr: pr, probes: &probes}})
	return pr.p, probes
}

// evalProbe replays one recorded probe against a specification offline.
func evalProbe(spec cilk.StealSpec, p ProbeRecord) bool {
	f := &cilk.Frame{ID: p.Frame, Label: p.Label, Depth: p.Depth, SyncBlock: p.SyncBlock}
	return spec.ShouldSteal(cilk.ContInfo{
		Frame: f, Label: p.Label, Depth: p.Depth, SyncBlock: p.SyncBlock,
		Index: p.Index, Seq: p.Seq, PDepth: p.PDepth,
	})
}

// DecisionVector evaluates spec offline over the recorded probes: element
// i is ShouldSteal's answer at probe i+1. Specifications in the §7 family
// decide from the probe's scalar fields alone, so offline evaluation
// agrees with a live run.
func DecisionVector(spec cilk.StealSpec, probes []ProbeRecord) []bool {
	vec := make([]bool, len(probes))
	for i, p := range probes {
		vec[i] = evalProbe(spec, p)
	}
	return vec
}

// TrieNode is one node of the steal-decision trie. A branch node carries
// the probe sequence number its children decide differently at and its
// children ordered shared-prefix-first (the no-steal edge, when present,
// is Children[0]); a leaf carries the specification group it covers.
//
// Nodes built by BuildTrieIndexed start unexpanded: the group partition
// and divergence scan run only when Trie.Expand materializes a node's
// children, so a sweep that never reaches a subtree (deadline skip,
// sampling) never pays for its structure. BuildTrie expands everything,
// matching the original eager construction exactly.
type TrieNode struct {
	Seq      int
	Children []*TrieNode
	Group    int

	// groups is the unexpanded cover set (nil once expanded, or for a
	// leaf); scanFrom is the probe sequence the divergence scan resumes at.
	groups   []int
	scanFrom int
}

// IsLeaf reports whether the node covers a single specification group.
func (n *TrieNode) IsLeaf() bool { return len(n.Children) == 0 && len(n.groups) == 0 }

// Leaves appends the group indices of every leaf under n, leftmost first.
// An unexpanded node reports its cover set without materializing children
// (in partition order, which is only guaranteed to be leftmost-first once
// expanded) — the deadline-skip path settles whole subtrees this way
// without forcing their structure.
func (n *TrieNode) Leaves(out []int) []int {
	if len(n.groups) > 0 {
		return append(out, n.groups...)
	}
	if n.IsLeaf() {
		return append(out, n.Group)
	}
	for _, c := range n.Children {
		out = c.Leaves(out)
	}
	return out
}

// Trie is the steal-decision trie over one specification family.
type Trie struct {
	// Probes is the recorded continuation-probe sequence.
	Probes []ProbeRecord
	// Groups partitions specification indices by identical (decision
	// vector, reduce mode): every spec in a group produces the same event
	// stream, so one run's verdict serves them all. Indices within a group
	// and groups themselves are in specification order.
	Groups [][]int
	// Root covers every group. It is a leaf when the family collapses to
	// one group (e.g. a program with no continuations).
	Root *TrieNode

	bits       [][]byte // per group, the packed decision bitset (bit j = probe j+1 steals)
	firstSteal []int    // per group, seq of first steal (len(Probes)+1 = none)
}

// stealAt reports group g's decision at probe seq (1-based).
func (t *Trie) stealAt(g, seq int) bool {
	return t.bits[g][(seq-1)>>3]&(1<<((seq-1)&7)) != 0
}

// modeKey fingerprints the schedule semantics that can influence the event
// stream once a steal has occurred. Specifications that schedule their own
// reductions get a unique key (their timing is not computable offline), so
// they never share past their first steal — conservative but safe.
func modeKey(spec cilk.StealSpec, idx int) string {
	if _, ok := spec.(cilk.ReduceScheduler); ok {
		return fmt.Sprintf("rs%d", idx)
	}
	return fmt.Sprintf("o%d", spec.Order())
}

// BuildTrie evaluates every specification over the recorded probes and
// builds the decision trie, fully expanded — the eager construction the
// original prefix-sharing sweep used, kept for callers (and tests) that
// want the whole structure up front. It is BuildTrieIndexed over the slice
// plus a full expansion, so the two constructions are structurally
// identical by definition.
func BuildTrie(specs []cilk.StealSpec, probes []ProbeRecord) *Trie {
	t := BuildTrieIndexed(len(specs), func(i int) cilk.StealSpec { return specs[i] }, probes)
	t.ExpandAll(t.Root)
	return t
}

// BuildTrieIndexed groups a virtual specification sequence — count members
// fetched one at a time through at, typically Family.At or a sampled
// remapping of it — by identical (decision bitset, reduce mode), and
// returns a trie whose root is unexpanded: subtree structure materializes
// through Expand only when a sweep unit actually walks it. Each member is
// held only while its bitset is packed, so a 10^4+-spec family never
// exists as a slice.
func BuildTrieIndexed(count int, at func(int) cilk.StealSpec, probes []ProbeRecord) *Trie {
	t := &Trie{Probes: probes}
	groupOf := make(map[string]int)
	nb := (len(probes) + 7) / 8
	for i := 0; i < count; i++ {
		spec := at(i)
		bits := make([]byte, nb)
		first := len(probes) + 1
		for j, p := range probes {
			if evalProbe(spec, p) {
				bits[j>>3] |= 1 << (j & 7)
				if first > len(probes) {
					first = j + 1
				}
			}
		}
		gk := string(bits)
		if first <= len(probes) {
			// Reduce mode only matters once a steal occurs; all-serial
			// vectors coincide regardless of mode.
			gk += "|" + modeKey(spec, i)
		}
		g, ok := groupOf[gk]
		if !ok {
			g = len(t.Groups)
			groupOf[gk] = g
			t.Groups = append(t.Groups, nil)
			t.bits = append(t.bits, bits)
			t.firstSteal = append(t.firstSteal, first)
		}
		t.Groups[g] = append(t.Groups[g], i)
	}
	all := make([]int, len(t.Groups))
	for g := range all {
		all[g] = g
	}
	t.Root = t.newNode(all, 1)
	return t
}

// newNode covers a group set whose divergence scan starts at scanFrom. A
// single-group set is a leaf immediately; anything larger stays unexpanded
// until Expand partitions it.
func (t *Trie) newNode(groups []int, scanFrom int) *TrieNode {
	if len(groups) == 1 {
		return &TrieNode{Group: groups[0]}
	}
	return &TrieNode{groups: groups, scanFrom: scanFrom}
}

// edgeKey is the trie edge label of group g's decision at probe seq:
// decisions share freely while no steal has occurred on the path ("0");
// after the first steal the group identity joins the key (the
// representative's reduce mode was folded into the group key, so distinct
// modes are already distinct groups), and only schedules with identical
// post-steal semantics stay on one path. Keys sort with the no-steal edge
// first ("0" < "0|…" < "1|…").
func (t *Trie) edgeKey(g, seq int) string {
	steal := t.stealAt(g, seq)
	prior := t.firstSteal[g] < seq
	switch {
	case !steal && !prior:
		return "0"
	case !steal:
		return "0|g" + strconv.Itoa(g)
	default:
		return "1|g" + strconv.Itoa(g)
	}
}

// Expand materializes n's children: scan probes from the node's resume
// point until the cover set's edge keys diverge, then partition. It is
// idempotent and a no-op on leaves and already-expanded nodes. Callers
// must serialize expansion of a given node themselves; the sweep gets this
// for free because a node is only ever walked by the one unit that covers
// it, and units hand nodes to other workers only through the deque's
// mutex.
func (t *Trie) Expand(n *TrieNode) {
	if n.Children != nil || len(n.groups) == 0 {
		return
	}
	groups := n.groups
	for seq := n.scanFrom; seq <= len(t.Probes); seq++ {
		byKey := make(map[string][]int)
		var keys []string
		for _, g := range groups {
			k := t.edgeKey(g, seq)
			if _, ok := byKey[k]; !ok {
				keys = append(keys, k)
			}
			byKey[k] = append(byKey[k], g)
		}
		if len(keys) == 1 {
			continue
		}
		sort.Strings(keys)
		n.Seq = seq
		n.Children = make([]*TrieNode, 0, len(keys))
		for _, k := range keys {
			n.Children = append(n.Children, t.newNode(byKey[k], seq+1))
		}
		n.groups = nil
		return
	}
	// Distinct groups share every edge key: possible only when vectors are
	// identical and modes differ without any steal — excluded by grouping —
	// so reaching here is a construction bug.
	panic(fmt.Sprintf("specgen: trie groups %v never diverge", groups))
}

// ExpandAll expands the whole subtree under n.
func (t *Trie) ExpandAll(n *TrieNode) {
	t.Expand(n)
	for _, c := range n.Children {
		t.ExpandAll(c)
	}
}
