// The steal-decision trie groups the §7 specification family by longest
// common prefix of steal decisions. For an ostensibly deterministic
// program the continuation-probe sequence is schedule-independent: every
// specification is asked ShouldSteal at the same probes, in the same
// order, with the same ContInfo. Two specifications that answer the same
// way up to probe t therefore produce bit-identical instrumentation-event
// prefixes up to probe t — the invariant the prefix-sharing sweep exploits
// by snapshotting detector state at trie branch points instead of
// re-analysing the shared prefix once per specification.
//
// Reduce ordering complicates sharing only after the first steal: with no
// views beyond the leftmost there is nothing to reduce, so ReduceOrder and
// ReduceScheduler cannot influence the stream. The trie's edge keys encode
// exactly that: decisions share freely while no steal has occurred, and
// once one has, the key conservatively incorporates the specification's
// reduce mode so only schedules with identical post-steal semantics keep
// sharing.
package specgen

import (
	"fmt"
	"sort"

	"repro/internal/cilk"
)

// ProbeRecord captures the scalar identity of one continuation probe from
// a recording run, enough to re-evaluate any steal specification offline
// and to verify a later run replays the same probe sequence.
type ProbeRecord struct {
	Frame     cilk.FrameID
	Label     string
	Depth     int
	SyncBlock int
	Index     int
	Seq       int
	PDepth    int
}

// Matches reports whether a live probe is the recorded one. A mismatch
// means the program is not ostensibly deterministic (its spawn structure
// changed across runs), which invalidates prefix sharing for the run.
func (p ProbeRecord) Matches(ci cilk.ContInfo) bool {
	return ci.Seq == p.Seq && ci.Index == p.Index && ci.SyncBlock == p.SyncBlock &&
		ci.PDepth == p.PDepth && ci.Depth == p.Depth &&
		ci.Frame != nil && ci.Frame.ID == p.Frame
}

type recordingSpec struct {
	pr     *profiler
	probes *[]ProbeRecord
}

func (s recordingSpec) ShouldSteal(ci cilk.ContInfo) bool {
	s.pr.observe(ci)
	*s.probes = append(*s.probes, ProbeRecord{
		Frame: ci.Frame.ID, Label: ci.Label, Depth: ci.Depth,
		SyncBlock: ci.SyncBlock, Index: ci.Index, Seq: ci.Seq, PDepth: ci.PDepth,
	})
	return false
}

func (s recordingSpec) Order() cilk.ReduceOrder { return cilk.ReduceAtSync }

// MeasureProbes is Measure plus a recording of every continuation probe in
// serial order — the single profiling run the prefix-sharing sweep builds
// its trie from.
func MeasureProbes(prog func(*cilk.Ctx)) (Profile, []ProbeRecord) {
	pr := &profiler{}
	var probes []ProbeRecord
	cilk.Run(prog, cilk.Config{Spec: recordingSpec{pr: pr, probes: &probes}})
	return pr.p, probes
}

// DecisionVector evaluates spec offline over the recorded probes: element
// i is ShouldSteal's answer at probe i+1. Specifications in the §7 family
// decide from the probe's scalar fields alone, so offline evaluation
// agrees with a live run.
func DecisionVector(spec cilk.StealSpec, probes []ProbeRecord) []bool {
	vec := make([]bool, len(probes))
	for i, p := range probes {
		f := &cilk.Frame{ID: p.Frame, Label: p.Label, Depth: p.Depth, SyncBlock: p.SyncBlock}
		vec[i] = spec.ShouldSteal(cilk.ContInfo{
			Frame: f, Label: p.Label, Depth: p.Depth, SyncBlock: p.SyncBlock,
			Index: p.Index, Seq: p.Seq, PDepth: p.PDepth,
		})
	}
	return vec
}

// TrieNode is one node of the steal-decision trie. A branch node carries
// the probe sequence number its children decide differently at and its
// children ordered shared-prefix-first (the no-steal edge, when present,
// is Children[0]); a leaf carries the specification group it covers.
type TrieNode struct {
	Seq      int
	Children []*TrieNode
	Group    int
}

// IsLeaf reports whether the node covers a single specification group.
func (n *TrieNode) IsLeaf() bool { return len(n.Children) == 0 }

// Leaves appends the group indices of every leaf under n, leftmost first.
func (n *TrieNode) Leaves(out []int) []int {
	if n.IsLeaf() {
		return append(out, n.Group)
	}
	for _, c := range n.Children {
		out = c.Leaves(out)
	}
	return out
}

// Trie is the steal-decision trie over one specification family.
type Trie struct {
	// Probes is the recorded continuation-probe sequence.
	Probes []ProbeRecord
	// Groups partitions specification indices by identical (decision
	// vector, reduce mode): every spec in a group produces the same event
	// stream, so one run's verdict serves them all. Indices within a group
	// and groups themselves are in specification order.
	Groups [][]int
	// Root covers every group. It is a leaf when the family collapses to
	// one group (e.g. a program with no continuations).
	Root *TrieNode

	vectors    [][]bool // per group, the representative decision vector
	firstSteal []int    // per group, seq of first steal (len(Probes)+1 = none)
}

// modeKey fingerprints the schedule semantics that can influence the event
// stream once a steal has occurred. Specifications that schedule their own
// reductions get a unique key (their timing is not computable offline), so
// they never share past their first steal — conservative but safe.
func modeKey(spec cilk.StealSpec, idx int) string {
	if _, ok := spec.(cilk.ReduceScheduler); ok {
		return fmt.Sprintf("rs%d", idx)
	}
	return fmt.Sprintf("o%d", spec.Order())
}

// BuildTrie evaluates every specification over the recorded probes and
// builds the decision trie.
func BuildTrie(specs []cilk.StealSpec, probes []ProbeRecord) *Trie {
	t := &Trie{Probes: probes}
	groupOf := make(map[string]int)
	for i, spec := range specs {
		vec := DecisionVector(spec, probes)
		first := len(probes) + 1
		key := make([]byte, len(vec))
		for j, b := range vec {
			key[j] = '0'
			if b {
				key[j] = '1'
				if first > len(probes) {
					first = j + 1
				}
			}
		}
		gk := string(key)
		if first <= len(probes) {
			// Reduce mode only matters once a steal occurs; all-serial
			// vectors coincide regardless of mode.
			gk += "|" + modeKey(spec, i)
		}
		g, ok := groupOf[gk]
		if !ok {
			g = len(t.Groups)
			groupOf[gk] = g
			t.Groups = append(t.Groups, nil)
			t.vectors = append(t.vectors, vec)
			t.firstSteal = append(t.firstSteal, first)
		}
		t.Groups[g] = append(t.Groups[g], i)
	}
	all := make([]int, len(t.Groups))
	for g := range all {
		all[g] = g
	}
	t.Root = t.build(all, 1)
	return t
}

// edgeKey is the trie edge label of group g's decision at probe seq:
// decisions share freely while no steal has occurred on the path ("0");
// after the first steal the reduce mode joins the key, so only schedules
// with identical post-steal semantics stay on one path. Keys sort with
// the no-steal edge first ("0" < "0|…" < "1|…").
func (t *Trie) edgeKey(g, seq int, modes []string) string {
	steal := t.vectors[g][seq-1]
	prior := t.firstSteal[g] < seq
	switch {
	case !steal && !prior:
		return "0"
	case !steal:
		return "0|" + modes[g]
	default:
		return "1|" + modes[g]
	}
}

// groupModes lazily computes, per group, the mode key of its
// representative spec. Captured once in build via closure state.
func (t *Trie) build(groups []int, seq int) *TrieNode {
	if len(groups) == 1 {
		return &TrieNode{Group: groups[0]}
	}
	modes := make([]string, len(t.Groups))
	for _, g := range groups {
		if t.firstSteal[g] <= len(t.Probes) {
			// Mode of the group's vector: any member agrees past the first
			// steal by group construction; encode via the vector's group id
			// position (stable) — the representative's mode was folded into
			// the group key, so groups with different modes are distinct.
			modes[g] = fmt.Sprintf("g%d", g)
		}
	}
	return t.buildAt(groups, seq, modes)
}

func (t *Trie) buildAt(groups []int, seq int, modes []string) *TrieNode {
	if len(groups) == 1 {
		return &TrieNode{Group: groups[0]}
	}
	for ; seq <= len(t.Probes); seq++ {
		byKey := make(map[string][]int)
		var keys []string
		for _, g := range groups {
			k := t.edgeKey(g, seq, modes)
			if _, ok := byKey[k]; !ok {
				keys = append(keys, k)
			}
			byKey[k] = append(byKey[k], g)
		}
		if len(keys) == 1 {
			continue
		}
		sort.Strings(keys)
		node := &TrieNode{Seq: seq}
		for _, k := range keys {
			node.Children = append(node.Children, t.buildAt(byKey[k], seq+1, modes))
		}
		return node
	}
	// Distinct groups share every edge key: possible only when vectors are
	// identical and modes differ without any steal — excluded by grouping —
	// so reaching here is a construction bug.
	panic(fmt.Sprintf("specgen: trie groups %v never diverge", groups))
}
