package specgen

import (
	"reflect"
	"testing"

	"repro/internal/cilk"
	"repro/internal/sched"
)

// flatProbes synthesizes the probe sequence of a flat program with k
// spawns in one sync block: probe i has Index i, PDepth i, Seq i.
func flatProbes(k int) []ProbeRecord {
	probes := make([]ProbeRecord, k)
	for i := range probes {
		probes[i] = ProbeRecord{
			Frame: 1, Label: "w", Depth: 1, SyncBlock: 1,
			Index: i + 1, Seq: i + 1, PDepth: i + 1,
		}
	}
	return probes
}

func groupOfSpec(t *testing.T, tr *Trie, specs []cilk.StealSpec, target cilk.StealSpec) int {
	t.Helper()
	for i, s := range specs {
		if reflect.DeepEqual(s, target) {
			for g, members := range tr.Groups {
				for _, m := range members {
					if m == i {
						return g
					}
				}
			}
			t.Fatalf("spec %v in no group", target)
		}
	}
	t.Fatalf("spec %v not in family", target)
	return -1
}

// On a flat program, ByDepth{d} and Single{d} steal exactly the same
// continuation, so the trie must collapse them into one group — while
// Pair and its middle-first twin share a decision vector but not a reduce
// mode, and must stay apart.
func TestTrieGroupsFlatFamily(t *testing.T) {
	const k = 3
	probes := flatProbes(k)
	profile := Profile{MaxPDepth: k, MaxSyncBlock: k, CilkDepth: 2}
	specs := All(profile)
	tr := BuildTrie(specs, probes)

	if len(tr.Groups) >= len(specs) {
		t.Fatalf("no dedup: %d groups for %d specs", len(tr.Groups), len(specs))
	}
	for d := 1; d <= k; d++ {
		gb := groupOfSpec(t, tr, specs, sched.ByDepth{D: d})
		gs := groupOfSpec(t, tr, specs, sched.Single{A: d})
		if gb != gs {
			t.Errorf("ByDepth{%d} in group %d, Single{%d} in group %d; want shared", d, gb, d, gs)
		}
	}
	eager := groupOfSpec(t, tr, specs, sched.Pair{A: 1, B: 2})
	mid := groupOfSpec(t, tr, specs, sched.Pair{A: 1, B: 2, Mid: true})
	if eager == mid {
		t.Error("Pair and Pair-Mid share a group despite different reduce modes")
	}

	// Every group's members answer identically at every probe.
	for g, members := range tr.Groups {
		want := DecisionVector(specs[members[0]], probes)
		for _, m := range members[1:] {
			if got := DecisionVector(specs[m], probes); !reflect.DeepEqual(got, want) {
				t.Errorf("group %d member %d has vector %v, want %v", g, m, got, want)
			}
		}
	}
}

// Structural invariants: the leaves partition the groups, the leftmost
// leaf is the all-serial group (spec 0, NoSteals), every branch node
// splits at a strictly increasing probe sequence, and building twice
// yields the same trie.
func TestTrieStructure(t *testing.T) {
	probes := flatProbes(4)
	profile := Profile{MaxPDepth: 4, MaxSyncBlock: 4, CilkDepth: 2}
	specs := All(profile)
	tr := BuildTrie(specs, probes)

	leaves := tr.Root.Leaves(nil)
	if len(leaves) != len(tr.Groups) {
		t.Fatalf("%d leaves for %d groups", len(leaves), len(tr.Groups))
	}
	seen := map[int]bool{}
	for _, g := range leaves {
		if seen[g] {
			t.Fatalf("group %d appears under two leaves", g)
		}
		seen[g] = true
	}
	if tr.Groups[leaves[0]][0] != 0 {
		t.Fatalf("leftmost leaf covers spec %d, want 0 (NoSteals)", tr.Groups[leaves[0]][0])
	}

	var walk func(n *TrieNode, minSeq int)
	walk = func(n *TrieNode, minSeq int) {
		if n.IsLeaf() {
			return
		}
		if n.Seq < minSeq || n.Seq > len(probes) {
			t.Fatalf("branch at seq %d outside (%d, %d]", n.Seq, minSeq, len(probes))
		}
		if len(n.Children) < 2 {
			t.Fatalf("branch at seq %d has %d children", n.Seq, len(n.Children))
		}
		for _, c := range n.Children {
			walk(c, n.Seq+1)
		}
	}
	walk(tr.Root, 1)

	again := BuildTrie(specs, probes)
	if !reflect.DeepEqual(tr.Groups, again.Groups) || !reflect.DeepEqual(tr.Root, again.Root) {
		t.Fatal("two builds of the same family disagree")
	}
}

// A probe-free program collapses the whole family to one leaf: with no
// continuations there is nothing to decide, so every spec shares the
// all-empty decision vector.
func TestTrieNoProbes(t *testing.T) {
	specs := All(Profile{})
	tr := BuildTrie(specs, nil)
	if len(tr.Groups) != 1 {
		t.Fatalf("%d groups for a probe-free program, want 1", len(tr.Groups))
	}
	if !tr.Root.IsLeaf() {
		t.Fatal("root is not a leaf")
	}
}

// Matches accepts exactly the recorded probe and rejects perturbations of
// each discriminating field.
func TestProbeRecordMatches(t *testing.T) {
	p := ProbeRecord{Frame: 3, Label: "w", Depth: 2, SyncBlock: 1, Index: 2, Seq: 5, PDepth: 4}
	ci := cilk.ContInfo{
		Frame: &cilk.Frame{ID: 3}, Label: "w", Depth: 2, SyncBlock: 1,
		Index: 2, Seq: 5, PDepth: 4,
	}
	if !p.Matches(ci) {
		t.Fatal("recorded probe rejected")
	}
	bad := ci
	bad.Index = 3
	if p.Matches(bad) {
		t.Error("Index perturbation accepted")
	}
	bad = ci
	bad.Seq = 6
	if p.Matches(bad) {
		t.Error("Seq perturbation accepted")
	}
	bad = ci
	bad.Frame = &cilk.Frame{ID: 4}
	if p.Matches(bad) {
		t.Error("Frame perturbation accepted")
	}
	bad = ci
	bad.Frame = nil
	if p.Matches(bad) {
		t.Error("nil frame accepted")
	}
}
