// The §7 family as a virtual sequence. All materializes every
// specification up front, which is fine at the paper's ~10^2 scale but
// wasteful at 10^4+ (a 100-continuation sync block yields 171k reduce
// specifications). Family exposes the identical family — same members,
// same order — as Len/At arithmetic over the profile, so the sweep can
// walk, group and sample specifications without ever holding the whole
// slice, and the budget-aware sampler can pick a subset by index alone.
package specgen

import (
	"fmt"
	"sort"

	"repro/internal/cilk"
	"repro/internal/sched"
)

// Family is the §7 coverage family of a profile as an indexable virtual
// sequence: index i of a Family equals element i of All(p), but members
// are constructed on demand. The layout is the update family (NoSteals,
// then ByDepth 1..M) followed by the reduce family (Singles, then the
// Pair/Pair-Mid interleaving in (a,b) order, then Triples in (i,j,l)
// order).
type Family struct {
	P Profile

	m, k                    int
	singles, pairs, triples int
}

// NewFamily returns the family of profile p.
func NewFamily(p Profile) *Family {
	k := p.MaxSyncBlock
	return &Family{
		P: p, m: p.MaxPDepth, k: k,
		singles: k, pairs: k * (k - 1), triples: Binomial3(k),
	}
}

// Len is the family size: 1 + M + K + 2·C(K,2) + C(K,3), the Θ(M + K³)
// of Theorems 6 and 7.
func (f *Family) Len() int { return 1 + f.m + f.singles + f.pairs + f.triples }

// At constructs member i. The mapping is pure arithmetic over the
// profile, so At(i) for the same profile always yields the same value —
// the property the sweep's determinism contract rests on.
func (f *Family) At(i int) cilk.StealSpec {
	if i < 0 || i >= f.Len() {
		panic(fmt.Sprintf("specgen: family index %d out of range [0,%d)", i, f.Len()))
	}
	if i == 0 {
		return cilk.NoSteals{}
	}
	i--
	if i < f.m {
		return sched.ByDepth{D: i + 1}
	}
	i -= f.m
	if i < f.singles {
		return sched.Single{A: i + 1}
	}
	i -= f.singles
	if i < f.pairs {
		a, b := f.pairAt(i / 2)
		return sched.Pair{A: a, B: b, Mid: i%2 == 1}
	}
	i -= f.pairs
	a, b, c := f.tripleAt(i)
	return sched.Triple{I: a, J: b, K: c}
}

// pairAt maps q ∈ [0, C(K,2)) to the q-th (a,b) pair in lexicographic
// order with 1 ≤ a < b ≤ K.
func (f *Family) pairAt(q int) (a, b int) {
	for a = 1; a <= f.k; a++ {
		if n := f.k - a; q < n {
			return a, a + 1 + q
		} else {
			q -= n
		}
	}
	panic("specgen: pair index out of range")
}

// tripleAt maps q ∈ [0, C(K,3)) to the q-th (i,j,l) triple in
// lexicographic order with 1 ≤ i < j < l ≤ K.
func (f *Family) tripleAt(q int) (i, j, l int) {
	for i = 1; i <= f.k; i++ {
		rest := f.k - i
		if n := rest * (rest - 1) / 2; q < n {
			for j = i + 1; j <= f.k; j++ {
				if n := f.k - j; q < n {
					return i, j, j + 1 + q
				} else {
					q -= n
				}
			}
		} else {
			q -= n
		}
	}
	panic("specgen: triple index out of range")
}

// FirstSteal evaluates spec offline over the recorded probes and returns
// the 1-based sequence number of its first steal, or len(probes)+1 when it
// steals nothing — the decision-prefix subtree the specification diverges
// into, and the stratum key of the coverage-guided sampler.
func FirstSteal(spec cilk.StealSpec, probes []ProbeRecord) int {
	for j, p := range probes {
		if evalProbe(spec, p) {
			return j + 1
		}
	}
	return len(probes) + 1
}

// SampleFamily picks n member indices from the family deterministically,
// coverage-guided: specifications are stratified by the sequence number of
// their first steal (each stratum is one divergence point — one subtree of
// the steal-decision trie), and the sample round-robins across strata so
// sparsely populated subtrees are weighted higher than their share of the
// family, keeping breadth of schedule coverage as the sample shrinks.
// Member 0 (the all-serial NoSteals schedule) is always kept: it anchors
// the Peer-Set piggyback and the base schedule's verdict. Order within a
// stratum is a seeded xorshift shuffle — never wall-clock randomness — so
// the same (family, probes, n, seed) always selects the same subset, in
// every sweep strategy. The returned indices are sorted ascending. When n
// is non-positive or covers the family, every index is returned.
func SampleFamily(f *Family, probes []ProbeRecord, n int, seed uint64) []int {
	total := f.Len()
	if n <= 0 || n >= total {
		all := make([]int, total)
		for i := range all {
			all[i] = i
		}
		return all
	}

	strata := make(map[int][]int)
	var keys []int
	for i := 0; i < total; i++ {
		fs := FirstSteal(f.At(i), probes)
		if _, ok := strata[fs]; !ok {
			keys = append(keys, fs)
		}
		strata[fs] = append(strata[fs], i)
	}
	sort.Ints(keys)
	for _, k := range keys {
		shuffle(strata[k], seed^uint64(k)*0x9e3779b97f4a7c15)
	}

	out := make([]int, 0, n)
	out = append(out, 0)
	taken := map[int]bool{0: true}
	for len(out) < n {
		progress := false
		for _, k := range keys {
			if len(out) >= n {
				break
			}
			s := strata[k]
			for len(s) > 0 && taken[s[0]] {
				s = s[1:]
			}
			if len(s) > 0 {
				out = append(out, s[0])
				taken[s[0]] = true
				s = s[1:]
				progress = true
			}
			strata[k] = s
		}
		if !progress {
			break
		}
	}
	sort.Ints(out)
	return out
}

// shuffle is a seeded Fisher-Yates over an xorshift64 stream.
func shuffle(s []int, seed uint64) {
	x := seed
	if x == 0 {
		x = 0x9e3779b97f4a7c15
	}
	for i := len(s) - 1; i > 0; i-- {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		j := int(x % uint64(i+1))
		s[i], s[j] = s[j], s[i]
	}
}
