// Package specgen constructs the §7 steal-specification families that give
// SP+ its coverage guarantee for ostensibly deterministic programs: with D
// the Cilk depth and K the maximum sync-block size, Θ(M) specifications
// (M ≤ KD) elicit every possible update strand (Theorem 6), and Θ(K³)
// specifications elicit every possible reduce strand (Theorem 7). Running
// SP+ once per generated specification therefore checks every execution of
// the program for determinacy races involving a view-oblivious strand.
package specgen

import (
	"repro/internal/cilk"
	"repro/internal/sched"
)

// Profile describes the program quantities the generators need. Measure
// derives one from a single uninstrumented run.
type Profile struct {
	// MaxPDepth is the maximum number of P nodes on any root-to-leaf path
	// of the SP parse tree — the M of Theorem 6.
	MaxPDepth int
	// MaxSyncBlock is the maximum number of continuations in any sync
	// block — the K of Theorem 7.
	MaxSyncBlock int
	// CilkDepth is the maximum function nesting depth D.
	CilkDepth int
}

// profiler observes one run and measures the Profile quantities.
type profiler struct {
	cilk.Empty
	p Profile
}

// stealAllProbe steals everything so PDepth reflects the full parse tree.
func (pr *profiler) observe(ci cilk.ContInfo) {
	if ci.PDepth > pr.p.MaxPDepth {
		pr.p.MaxPDepth = ci.PDepth
	}
	if ci.Index > pr.p.MaxSyncBlock {
		pr.p.MaxSyncBlock = ci.Index
	}
	if ci.Depth+1 > pr.p.CilkDepth {
		pr.p.CilkDepth = ci.Depth + 1
	}
}

type probeSpec struct{ pr *profiler }

func (s probeSpec) ShouldSteal(ci cilk.ContInfo) bool {
	s.pr.observe(ci)
	return false
}

func (s probeSpec) Order() cilk.ReduceOrder { return cilk.ReduceAtSync }

// Measure runs the program once (serially, stealing nothing) and returns
// its Profile. The serial order — and with it every continuation and its
// P-depth — is schedule-independent for ostensibly deterministic programs,
// so one run suffices.
func Measure(prog func(*cilk.Ctx)) Profile {
	pr := &profiler{}
	cilk.Run(prog, cilk.Config{Spec: probeSpec{pr: pr}})
	return pr.p
}

// UpdateSpecs returns Theorem 6's breadth-first family: specification d
// steals every continuation with exactly d P nodes on its root-to-leaf
// parse-tree path. Two continuations share a specification iff they share
// that count, so the family has exactly MaxPDepth members (plus the
// no-steal base schedule) and elicits every possible update strand: the
// view an Update observes is determined by the closest enclosing stolen
// continuation, and each specification realizes one distance.
func UpdateSpecs(p Profile) []cilk.StealSpec {
	specs := make([]cilk.StealSpec, 0, p.MaxPDepth+1)
	specs = append(specs, cilk.NoSteals{})
	for d := 1; d <= p.MaxPDepth; d++ {
		specs = append(specs, sched.ByDepth{D: d})
	}
	return specs
}

// ReduceSpecs returns Theorem 7's family, applied to every sync block (§8
// shows reusing the same indices across sync blocks preserves the
// guarantee). A view over a K-continuation sync block is an interval
// between two delimiters, where a delimiter is a stolen continuation, the
// block start, or the sync; a possible reduce operation is an adjacent
// interval pair (x, y)(y, z) with x ∈ {start, 1..y−1}, y ∈ {1..K} a steal,
// and z ∈ {y+1..K, sync}. There are Σ_y y·(K−y+1) = K² + C(K,3) of them
// (the paper's Θ(K³)), and the family elicits each with exactly one
// specification:
//
//   - x = start, z = sync: the single steal at y;
//   - x = start, z ≤ K:   the pair (y, z) with eager reduction;
//   - x ≥ 1,  z = sync:   the pair (x, y) with middle-first reduction;
//   - x ≥ 1,  z ≤ K:      the triple (x, y, z) with middle-first reduction.
//
// Totalling K + 2·C(K,2) + C(K,3) = K² + C(K,3) specifications — the
// matching upper bound to Theorem 7's Ω(K³) lower bound.
func ReduceSpecs(p Profile) []cilk.StealSpec {
	k := p.MaxSyncBlock
	var specs []cilk.StealSpec
	for a := 1; a <= k; a++ {
		specs = append(specs, sched.Single{A: a})
	}
	for a := 1; a <= k; a++ {
		for b := a + 1; b <= k; b++ {
			specs = append(specs, sched.Pair{A: a, B: b})
			specs = append(specs, sched.Pair{A: a, B: b, Mid: true})
		}
	}
	for i := 1; i <= k; i++ {
		for j := i + 1; j <= k; j++ {
			for l := j + 1; l <= k; l++ {
				specs = append(specs, sched.Triple{I: i, J: j, K: l})
			}
		}
	}
	return specs
}

// All returns the full §7 coverage family: the update family plus the
// reduce family, Θ(M + K³) specifications in total.
func All(p Profile) []cilk.StealSpec {
	return append(UpdateSpecs(p), ReduceSpecs(p)...)
}

// Binomial3 is C(n, 3), the count appearing in the Theorem 7 bounds.
func Binomial3(n int) int {
	if n < 3 {
		return 0
	}
	return n * (n - 1) * (n - 2) / 6
}

// DistinctReduceOps counts the distinct possible reduce operations over a
// sync block with k continuations: adjacent view-interval pairs delimited
// by a middle steal y, a left boundary (block start or an earlier steal)
// and a right boundary (a later steal or the sync) — Σ_y y·(k−y+1)
// = k² + C(k,3), the concrete instance of Theorem 7's Θ(k³).
func DistinctReduceOps(k int) int { return k*k + Binomial3(k) }

// TheoremSevenLowerBound evaluates the paper's explicit lower-bound sum
// for the number of reduce trees needed on a sequence of n elements:
// |R| ≥ Σ_{s=n/2+1}^{2(n+1)/3-1} (n−s+1)(2n−3s+2) = Ω(n³).
func TheoremSevenLowerBound(n int) int {
	total := 0
	for s := n/2 + 1; s <= 2*(n+1)/3-1; s++ {
		if t := (n - s + 1) * (2*n - 3*s + 2); t > 0 {
			total += t
		}
	}
	return total
}
