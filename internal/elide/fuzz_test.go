package elide_test

import (
	"errors"
	"testing"

	"repro/internal/cilk"
	"repro/internal/elide"
	"repro/internal/mem"
	"repro/internal/progs"
	"repro/internal/streamerr"
	"repro/internal/trace"
)

// kindOf extracts the typed stream-fault kind from err, failing the test
// when the error is untyped (or nil): every way of rejecting a damaged
// trace must speak the streamerr vocabulary.
func kindOf(t *testing.T, what string, err error) streamerr.Kind {
	t.Helper()
	var se *streamerr.Error
	if !errors.As(err, &se) {
		t.Fatalf("%s: error %v is not a *streamerr.Error", what, err)
	}
	return se.Kind
}

// FuzzElide is the soundness fuzz target for the static elision pass:
// random reducer programs under random steal schedules must produce
// filtered traces whose verdicts are byte-identical to the full trace
// across every detector (including depa at shard counts 1, 3 and 8 and
// the all-detectors fan-out — requireParity checks all three application
// modes). Damaged streams — truncated or bit-flipped — must fail with
// the same typed stream errors whether the damage hits the full or the
// filtered trace, and elide.Analyze must reject them exactly as a plain
// replay would.
func FuzzElide(f *testing.F) {
	for seed := int64(0); seed < 6; seed++ {
		f.Add(seed, byte(seed*41), uint8(seed))
	}
	// Deep nesting plus a high steal probability: multi-word fork paths.
	f.Add(int64(1)<<40+99, byte(255), uint8(5))
	f.Fuzz(func(t *testing.T, seed int64, pByte byte, depthSel uint8) {
		opts := progs.RandomOpts{
			Seed:         seed,
			MaxDepth:     3 + int(depthSel%5), // 3..7
			MaxStmts:     5,
			Addrs:        6,
			Reducers:     2,
			MonoidStores: true,
			Reads:        true,
		}
		spec := progs.RandomSpec{Seed: seed ^ 0x7a3e, P: float64(pByte) / 255}
		al := mem.NewAllocator()
		data := record(t, progs.Random(al, opts), spec)
		requireParity(t, "fuzz", data)
		if t.Failed() {
			return
		}

		plan, err := elide.Analyze(data)
		if err != nil {
			t.Fatalf("analyze: %v", err)
		}
		filtered, _, err := plan.Filter(data)
		if err != nil {
			t.Fatalf("filter: %v", err)
		}

		// Truncation: cutting the final byte beheads the footer of full
		// and filtered stream alike; both must fail with the same typed
		// kind, and Analyze must reject the damage exactly like a replay.
		_, fullErr := trace.ReplayAllBytes(data[:len(data)-1], cilk.Empty{})
		fullKind := kindOf(t, "truncated full replay", fullErr)
		_, filtErr := trace.ReplayAllBytes(filtered[:len(filtered)-1], cilk.Empty{})
		if filtKind := kindOf(t, "truncated filtered replay", filtErr); filtKind != fullKind {
			t.Fatalf("truncated filtered trace fails with kind %v, full trace with %v", filtKind, fullKind)
		}
		if _, err := elide.Analyze(data[:len(data)-1]); kindOf(t, "analyze truncated", err) != fullKind {
			t.Fatalf("Analyze rejects truncation with a different kind than replay: %v vs %v", err, fullErr)
		}
		if _, _, err := plan.Filter(data[:len(data)-1]); kindOf(t, "filter truncated", err) != fullKind {
			t.Fatalf("Filter rejects truncation with a different kind than replay: %v vs %v", err, fullErr)
		}

		// Corruption: flip a byte in each stream's event body. The exact
		// kind depends on which record the flip lands in, but both streams
		// must reject the damage with a typed error — a corrupt filtered
		// trace must never launder into a clean verdict.
		corrupt := func(what string, stream []byte) {
			mod := append([]byte(nil), stream...)
			mod[len(trace.Magic)+(len(mod)-len(trace.Magic))/2] ^= 0xff
			if _, err := trace.ReplayAllBytes(mod, cilk.Empty{}); err == nil {
				t.Fatalf("%s: bit-flipped stream replayed clean", what)
			} else {
				kindOf(t, what+" replay", err)
			}
			if _, err := elide.Analyze(mod); err == nil {
				t.Fatalf("%s: Analyze accepted a bit-flipped stream", what)
			} else {
				kindOf(t, what+" analyze", err)
			}
		}
		corrupt("full", data)
		corrupt("filtered", filtered)
	})
}
