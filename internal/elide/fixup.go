package elide

import (
	"repro/internal/rader"
	"repro/internal/report"
)

// run is a maximal run of consecutive elided ordinals in one detector
// ordinal space: start, start+1, ..., start+count-1 were all elided.
type run struct {
	start, count int64
}

// appendRun extends the last run when ord is its successor (ordinals
// arrive in ascending order).
func appendRun(rs []run, ord int64) []run {
	if n := len(rs); n > 0 && rs[n-1].start+rs[n-1].count == ord {
		rs[n-1].count++
		return rs
	}
	return append(rs, run{start: ord, count: 1})
}

// remapOrd translates a filtered-stream ordinal back to the original
// stream's ordinal: every elided event with an original ordinal at or
// below the translated position shifts it up by one. Non-positive
// ordinals (omitted provenance) pass through.
func remapOrd(runs []run, o int64) int64 {
	if o <= 0 {
		return o
	}
	for _, r := range runs {
		if r.start > o {
			break
		}
		o += r.count
	}
	return o
}

// runsFor picks the ordinal space a detector counts events in: SP+
// additionally consumes the steal/reduce/view events (space B); the
// other access-consuming detectors count only {FrameEnter, FrameReturn,
// Sync, Load, Store} (space A); Peer-Set never consumes accesses, so
// its ordinals cannot shift.
func (p *Plan) runsFor(detector string) []run {
	switch rader.DetectorName(detector) {
	case rader.SPPlus:
		return p.runsB
	case rader.SPBags, rader.OffsetSpan, rader.EnglishHebrew, rader.Depa:
		return p.runsA
	default:
		return nil
	}
}

// FixupReport rewrites a filtered-trace verdict document in place so it
// is byte-identical to the full-trace document: the replayed-event
// count becomes the original stream's, race provenance ordinals are
// remapped into the original ordinal space, and the depa parallel stats
// are restored to their full-trace values (workers and shard merges are
// shard-count properties and never drift).
func (p *Plan) FixupReport(r *report.Report) {
	if r == nil {
		return
	}
	if r.Events != 0 {
		r.Events = p.aud.OriginalEvents
	}
	if runs := p.runsFor(r.Detector); len(runs) > 0 {
		for i := range r.Races {
			if pv := r.Races[i].Provenance; pv != nil {
				pv.FirstEvent = remapOrd(runs, pv.FirstEvent)
				pv.SecondEvent = remapOrd(runs, pv.SecondEvent)
			}
		}
	}
	if r.Parallel != nil {
		r.Parallel.FastPathHits = p.aud.FastPathHits
		r.Parallel.Accesses = p.aud.OriginalAccesses
		r.Parallel.FastPathRate = 0
		if r.Parallel.Accesses > 0 {
			r.Parallel.FastPathRate = float64(r.Parallel.FastPathHits) / float64(r.Parallel.Accesses)
		}
	}
}

// FixupMulti applies FixupReport to every sub-report of an
// all-detectors document.
func (p *Plan) FixupMulti(m *report.Multi) {
	if m == nil {
		return
	}
	if m.Events != 0 {
		m.Events = p.aud.OriginalEvents
	}
	for _, r := range m.Reports {
		p.FixupReport(r)
	}
}
