package elide

import "encoding/json"

// AuditSchema versions the audit artifact.
const AuditSchema = 1

// The audit taxonomy. Every class except must-keep is proven race-free
// and elided; the split explains which proof applied.
const (
	// ClassStrandLocal: every access happened on one strand — nothing to
	// race with.
	ClassStrandLocal = "strand-local"
	// ClassReadOnly: no store ever touched the address.
	ClassReadOnly = "read-only"
	// ClassSyncSerialized: stores exist and multiple strands touched the
	// address, but every pair is ordered by the SP relation — each access
	// lies beyond the last sync frontier of every conflicting predecessor.
	ClassSyncSerialized = "sync-serialized"
	// ClassViewProtected: every access sits inside reducer view-operation
	// windows and the SP relation serializes them — the reducer's views
	// protected the location.
	ClassViewProtected = "view-protected"
	// ClassMustKeep: a depa shadow rule fired — some access is logically
	// parallel with a prior conflicting access. Kept verbatim.
	ClassMustKeep = "must-keep"
)

// classOrder fixes the audit's class ordering (deterministic JSON).
var classOrder = []string{
	ClassStrandLocal,
	ClassReadOnly,
	ClassSyncSerialized,
	ClassViewProtected,
	ClassMustKeep,
}

// AddrRange is a closed address interval in the audit.
type AddrRange struct {
	Lo uint64 `json:"lo"`
	Hi uint64 `json:"hi"`
}

// appendAddrRange extends the last range when a is its successor
// (callers feed addresses in ascending order).
func appendAddrRange(rs []AddrRange, a uint64) []AddrRange {
	if n := len(rs); n > 0 && rs[n-1].Hi+1 == a {
		rs[n-1].Hi = a
		return rs
	}
	return append(rs, AddrRange{Lo: a, Hi: a})
}

// ClassSummary is one class's slice of the address space.
type ClassSummary struct {
	Class     string      `json:"class"`
	Addresses int64       `json:"addresses"`
	Events    int64       `json:"events"` // access events at these addresses
	Elided    bool        `json:"elided"`
	Ranges    []AddrRange `json:"ranges,omitempty"`
}

// Audit is the machine-readable "why elided" artifact: what the
// classifier proved, per class, and the stream-level accounting. It
// contains only structs and slices, so equal values marshal to equal
// bytes.
type Audit struct {
	Schema           int   `json:"schema"`
	OriginalEvents   int64 `json:"originalEvents"`
	FilteredEvents   int64 `json:"filteredEvents"`
	ElidedEvents     int64 `json:"elidedEvents"`
	ElidedBytes      int64 `json:"elidedBytes"`
	OriginalAccesses int64 `json:"originalAccesses"`
	KeptAccesses     int64 `json:"keptAccesses"`
	Addresses        int64 `json:"addresses"`
	// Shrink is OriginalEvents / FilteredEvents — the replay-work ratio
	// the pass buys.
	Shrink float64 `json:"shrink"`
	// FastPathHits is the depa coalescing hit count on the *full*
	// stream; FixupReport restores it into the parallel stats section,
	// where elision-induced coalescing drift would otherwise show.
	FastPathHits int64          `json:"fastPathHits"`
	Classes      []ClassSummary `json:"classes"`
}

// Marshal renders the audit artifact (indented: it is a human-facing
// diagnostic as much as a machine-readable one).
func (a *Audit) Marshal() ([]byte, error) {
	b, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
