package elide_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/cilk"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/depa"
	"repro/internal/elide"
	"repro/internal/mem"
	"repro/internal/rader"
	"repro/internal/report"
	"repro/internal/trace"
)

// record runs prog under spec and returns the encoded v2 trace.
func record(t testing.TB, prog func(*cilk.Ctx), spec cilk.StealSpec) []byte {
	t.Helper()
	var buf bytes.Buffer
	tw := trace.NewWriter(&buf)
	cilk.Run(prog, cilk.Config{Spec: spec, Hooks: tw})
	if err := tw.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	return buf.Bytes()
}

// detCase is one detector configuration the parity suite replays under.
type detCase struct {
	name   string
	shards int // depa only; 0 = not depa
}

var parityCases = []detCase{
	{name: string(rader.PeerSet)},
	{name: string(rader.SPBags)},
	{name: string(rader.SPPlus)},
	{name: string(rader.OffsetSpan)},
	{name: string(rader.EnglishHebrew)},
	{name: string(rader.Depa), shards: 1},
	{name: string(rader.Depa), shards: 3},
	{name: string(rader.Depa), shards: 8},
}

func newCase(t testing.TB, c detCase) (core.Detector, cilk.Hooks) {
	t.Helper()
	if c.shards > 0 {
		d := depa.New()
		d.Shards = c.shards
		return d, d
	}
	d, hooks, err := rader.NewDetector(rader.DetectorName(c.name))
	if err != nil {
		t.Fatalf("detector %s: %v", c.name, err)
	}
	return d, hooks
}

// docSingle replays data (optionally under skip) into one detector and
// marshals the verdict document.
func docSingle(t testing.TB, data []byte, c detCase, skip *trace.SkipSet) []byte {
	t.Helper()
	det, hooks := newCase(t, c)
	n, err := trace.ReplayAllBytesSkip(data, skip, nil, hooks)
	if err != nil {
		t.Fatalf("replay %s: %v", c.name, err)
	}
	doc, err := report.FromDetector(c.name, "", n, det).Marshal()
	if err != nil {
		t.Fatalf("marshal %s: %v", c.name, err)
	}
	return doc
}

// docAll replays data into the all-detectors fan-out and marshals the
// Multi document.
func docAll(t testing.TB, data []byte, skip *trace.SkipSet) ([]byte, *report.Multi) {
	t.Helper()
	dets := rader.NewAllDetectors()
	hooks := make([]cilk.Hooks, len(dets))
	for i, d := range dets {
		hooks[i] = d.(cilk.Hooks)
	}
	n, err := trace.ReplayAllBytesSkip(data, skip, nil, hooks...)
	if err != nil {
		t.Fatalf("replay all: %v", err)
	}
	m := report.FromDetectors("", n, dets)
	doc, err := m.Marshal()
	if err != nil {
		t.Fatalf("marshal all: %v", err)
	}
	return doc, m
}

// requireParity asserts the three ways of applying a plan — full trace,
// filtered trace, skip-set replay — produce byte-identical documents for
// every detector configuration.
func requireParity(t *testing.T, name string, data []byte) {
	t.Helper()
	plan, err := elide.Analyze(data)
	if err != nil {
		t.Fatalf("%s: analyze: %v", name, err)
	}
	filtered, fst, err := plan.Filter(data)
	if err != nil {
		t.Fatalf("%s: filter: %v", name, err)
	}
	if fst.KeptEvents != plan.Audit().FilteredEvents {
		t.Fatalf("%s: filter kept %d events, audit says %d", name, fst.KeptEvents, plan.Audit().FilteredEvents)
	}
	if fst.ElidedBytes != plan.Audit().ElidedBytes {
		t.Fatalf("%s: filter elided %d bytes, audit says %d", name, fst.ElidedBytes, plan.Audit().ElidedBytes)
	}
	for _, c := range parityCases {
		label := c.name
		if c.shards > 0 {
			label = fmt.Sprintf("%s@%d", c.name, c.shards)
		}
		full := docSingle(t, data, c, nil)

		viaFile := docSingle(t, filtered, c, nil)
		var viaFileDoc report.Report
		mustUnmarshal(t, viaFile, &viaFileDoc)
		plan.FixupReport(&viaFileDoc)
		got, err := viaFileDoc.Marshal()
		if err != nil {
			t.Fatalf("%s/%s: remarshal: %v", name, label, err)
		}
		if !bytes.Equal(full, got) {
			t.Errorf("%s/%s: filtered-file report differs\n full: %s\nelide: %s", name, label, full, got)
		}

		viaSkip := docSingle(t, data, c, plan.SkipSet())
		var viaSkipDoc report.Report
		mustUnmarshal(t, viaSkip, &viaSkipDoc)
		plan.FixupReport(&viaSkipDoc)
		got, err = viaSkipDoc.Marshal()
		if err != nil {
			t.Fatalf("%s/%s: remarshal: %v", name, label, err)
		}
		if !bytes.Equal(full, got) {
			t.Errorf("%s/%s: skip-replay report differs\n full: %s\nelide: %s", name, label, full, got)
		}
	}

	fullAll, _ := docAll(t, data, nil)
	_, m := docAll(t, filtered, nil)
	plan.FixupMulti(m)
	got, err := m.Marshal()
	if err != nil {
		t.Fatalf("%s: remarshal multi: %v", name, err)
	}
	if !bytes.Equal(fullAll, got) {
		t.Errorf("%s: all-detectors filtered report differs\n full: %s\nelide: %s", name, fullAll, got)
	}
}

func mustUnmarshal(t testing.TB, b []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(b, v); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
}

// TestElideParityCorpus is the headline soundness gate: across the
// whole program corpus, under serial and steal-everything schedules,
// race reports from filtered traces (both application modes) are
// byte-identical to full-trace reports for every detector, including
// depa at several shard counts and the all-detectors fan-out.
func TestElideParityCorpus(t *testing.T) {
	for _, e := range corpus.All() {
		for _, sc := range []struct {
			tag  string
			spec cilk.StealSpec
		}{{"serial", cilk.NoSteals{}}, {"steal-all", cilk.StealAll{}}} {
			name := e.Name + "/" + sc.tag
			al := mem.NewAllocator()
			data := record(t, e.Build(al), sc.spec)
			requireParity(t, name, data)
		}
	}
}

// TestElideV1Trace covers the legacy footerless format: a v1 stream
// filters to a v1 stream and the parity contract holds unchanged.
func TestElideV1Trace(t *testing.T) {
	e := corpus.All()[0]
	al := mem.NewAllocator()
	data := record(t, e.Build(al), cilk.StealAll{})
	v1 := append([]byte(trace.MagicV1), data[len(trace.Magic):len(data)-13]...)
	requireParity(t, e.Name+"/v1", v1)

	plan, err := elide.Analyze(v1)
	if err != nil {
		t.Fatalf("analyze v1: %v", err)
	}
	filtered, _, err := plan.Filter(v1)
	if err != nil {
		t.Fatalf("filter v1: %v", err)
	}
	if !bytes.HasPrefix(filtered, []byte(trace.MagicV1)) {
		t.Fatalf("filtered v1 stream lost its magic header")
	}
}

// TestElideShrink pins the point of the pass: a race-free program's
// trace loses its access events entirely, and the filtered stream still
// replays clean under everything.
func TestElideShrink(t *testing.T) {
	var entry *corpus.Entry
	all := corpus.All()
	for i := range all {
		if all[i].Name == "oblivious-sync-separated" {
			entry = &all[i]
			break
		}
	}
	if entry == nil {
		t.Fatal("corpus entry oblivious-sync-separated missing")
	}
	al := mem.NewAllocator()
	data := record(t, entry.Build(al), cilk.StealAll{})
	plan, err := elide.Analyze(data)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	aud := plan.Audit()
	if aud.KeptAccesses != 0 {
		t.Fatalf("clean program kept %d accesses:\n%+v", aud.KeptAccesses, aud.Classes)
	}
	if aud.ElidedEvents == 0 || aud.Shrink <= 1 {
		t.Fatalf("nothing elided: %+v", aud)
	}
	for _, cs := range aud.Classes {
		if cs.Class == elide.ClassMustKeep {
			t.Fatalf("clean program classified addresses must-keep: %+v", cs)
		}
		if len(cs.Ranges) == 0 || cs.Addresses == 0 || cs.Events == 0 {
			t.Fatalf("empty class summary: %+v", cs)
		}
	}
}

// TestElideAuditDeterministic: analyzing the same trace twice yields
// byte-identical audit artifacts (the artifact is committed by CI runs
// and diffed).
func TestElideAuditDeterministic(t *testing.T) {
	e := corpus.All()[0]
	al := mem.NewAllocator()
	data := record(t, e.Build(al), cilk.StealAll{})
	p1, err := elide.Analyze(data)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := elide.Analyze(data)
	if err != nil {
		t.Fatal(err)
	}
	a1, err := p1.Audit().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	a2, err := p2.Audit().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a1, a2) {
		t.Fatalf("audit not deterministic:\n%s\nvs\n%s", a1, a2)
	}
}

// TestElideFilteredStreamIntegrity: the filtered stream is a valid v2
// stream — fresh footer, correct event count — and its replay skips
// nothing further.
func TestElideFilteredStreamIntegrity(t *testing.T) {
	e := corpus.All()[0]
	al := mem.NewAllocator()
	data := record(t, e.Build(al), cilk.StealAll{})
	plan, err := elide.Analyze(data)
	if err != nil {
		t.Fatal(err)
	}
	filtered, fst, err := plan.Filter(data)
	if err != nil {
		t.Fatal(err)
	}
	var st trace.ReplayStats
	n, err := trace.ReplayAllBytesStats(filtered, &st)
	if err != nil {
		t.Fatalf("filtered stream does not replay: %v", err)
	}
	if n != fst.KeptEvents {
		t.Fatalf("filtered stream replays %d events, filter kept %d", n, fst.KeptEvents)
	}
	if st.Skipped != 0 {
		t.Fatalf("plain replay reports %d skipped events", st.Skipped)
	}
	var sst trace.ReplayStats
	nSkip, err := trace.ReplayAllBytesSkip(data, plan.SkipSet(), &sst)
	if err != nil {
		t.Fatalf("skip replay: %v", err)
	}
	if nSkip != plan.Audit().OriginalEvents {
		t.Fatalf("skip replay consumed %d events, original %d", nSkip, plan.Audit().OriginalEvents)
	}
	if sst.Skipped != plan.Audit().ElidedEvents {
		t.Fatalf("skip replay skipped %d, audit elided %d", sst.Skipped, plan.Audit().ElidedEvents)
	}
}
