// Package elide is the static elision pre-pass over recorded traces:
// it proves, per shadow address, that no logically-parallel conflicting
// access pair exists — using the depa (dag-depth, fork-path) timestamps
// of PR7 as the SP oracle — and produces a Plan that removes every
// access event to the proven-race-free addresses while leaving race
// reports byte-identical.
//
// The soundness argument has three legs:
//
//   - The criterion. An address is elidable iff the depa shadow
//     discipline (reader/writer singletons advanced under the
//     pseudotransitivity rule, exactly internal/depa's detection rules)
//     never fires on it: no access to it is logically parallel with a
//     prior conflicting access. SP-bags and depa fire races at exactly
//     these addresses; SP+, Offset-Span and English-Hebrew fire at a
//     subset of them (verified corpus-wide and fuzzed by FuzzElide);
//     Peer-Set never consumes Load/Store events at all. So no
//     detector's race set mentions an elided address.
//
//   - Isolation. Every detector keeps per-address shadow state and
//     evolves its control state (bags, labels, timestamps) from control
//     events only, so removing one address's accesses cannot change any
//     verdict at another address.
//
//   - Accounting. Detector-relative event ordinals (race provenance)
//     and the depa coalescing stats do shift when accesses disappear;
//     the Plan records exactly how (run-length-encoded elided ordinals
//     per detector ordinal space, plus the full-trace coalescing
//     counts) and FixupReport/FixupMulti restore the original values on
//     the filtered-trace document, making it byte-identical to the
//     full-trace document.
//
// A Plan can be applied two ways with identical observable behaviour:
// materialize a filtered trace in the same CILKTRACE format (Filter,
// backed by trace.FilterAccesses) or replay the full trace under the
// Plan's address-range skip set (trace.ReplayAllSkip), which every
// existing consumer supports unchanged.
package elide

import (
	"sort"

	"repro/internal/cilk"
	"repro/internal/core"
	"repro/internal/depa"
	"repro/internal/mem"
	"repro/internal/trace"
)

// access ops, mirroring internal/depa.
const (
	opLoad uint8 = iota
	opStore
)

// addrState is the classifier's per-address shadow cell.
type addrState struct {
	reader, writer       depa.Timestamp
	hasReader, hasWriter bool
	loads, stores        int64
	firstGen             int64 // strand generation of the first access
	racy                 bool  // a depa shadow rule fired: must keep
	multiStrand          bool  // accessed from more than one strand
	outsideVA            bool  // some access outside any view-op window
}

// classifier is pass 1: it reconstructs strand timestamps with a
// depa.Cursor and runs the depa shadow discipline per address, plus the
// bookkeeping the audit and the stats fixup need (strand generations,
// view-op windows, and an exact simulation of the depa detector's
// coalescing fast path on the full stream).
type classifier struct {
	cilk.Empty
	cursor  depa.Cursor
	ts      depa.Timestamp
	tsValid bool
	gen     int64 // strand generation: bumps at every control event
	vaDepth int
	addrs   map[mem.Addr]*addrState

	accesses int64

	// full-trace simulation of depa's logAccess coalescing: a hit iff
	// the previous access (any address, whole stream) carried the same
	// (strand, addr, op).
	haveLast     bool
	lastGen      int64
	lastAddr     mem.Addr
	lastOp       uint8
	fastPathHits int64
}

func (c *classifier) bump() {
	c.gen++
	c.tsValid = false
}

// FrameEnter implements cilk.Hooks.
func (c *classifier) FrameEnter(f *cilk.Frame) {
	c.cursor.Enter(f.Spawned)
	c.bump()
}

// FrameReturn implements cilk.Hooks.
func (c *classifier) FrameReturn(g, f *cilk.Frame) {
	if c.cursor.Open() < 2 {
		panic(core.Violatef("elide", core.StreamOrder, g.ID,
			"return of frame %d with %d frames open", g.ID, c.cursor.Open()))
	}
	c.cursor.Return()
	c.bump()
}

// Sync implements cilk.Hooks.
func (c *classifier) Sync(f *cilk.Frame) {
	if c.cursor.Open() == 0 {
		panic(core.Violatef("elide", core.StreamOrder, f.ID, "sync before any frame entered"))
	}
	c.cursor.Sync()
	c.bump()
}

// ViewAwareBegin implements cilk.Hooks.
func (c *classifier) ViewAwareBegin(f *cilk.Frame, op cilk.ViewOp, r *cilk.Reducer) {
	c.vaDepth++
}

// ViewAwareEnd implements cilk.Hooks.
func (c *classifier) ViewAwareEnd(f *cilk.Frame, op cilk.ViewOp, r *cilk.Reducer) {
	if c.vaDepth > 0 {
		c.vaDepth--
	}
}

// Load implements cilk.Hooks.
func (c *classifier) Load(f *cilk.Frame, a mem.Addr) { c.access(f, a, opLoad) }

// Store implements cilk.Hooks.
func (c *classifier) Store(f *cilk.Frame, a mem.Addr) { c.access(f, a, opStore) }

func (c *classifier) access(f *cilk.Frame, a mem.Addr, op uint8) {
	if c.cursor.Open() == 0 {
		panic(core.Violatef("elide", core.StreamOrder, f.ID, "memory access before any frame entered"))
	}
	c.accesses++
	if c.haveLast && c.lastGen == c.gen && c.lastAddr == a && c.lastOp == op {
		c.fastPathHits++
	} else {
		c.haveLast, c.lastGen, c.lastAddr, c.lastOp = true, c.gen, a, op
	}
	if !c.tsValid {
		c.ts = c.cursor.Now()
		c.tsValid = true
	}
	st := c.addrs[a]
	if st == nil {
		st = &addrState{firstGen: c.gen}
		c.addrs[a] = st
	}
	if st.firstGen != c.gen {
		st.multiStrand = true
	}
	if c.vaDepth == 0 {
		st.outsideVA = true
	}
	// The depa shadow rules (internal/depa/finalize.go), streamed: the
	// reader/writer singletons advance only from none or a serial
	// predecessor, which pseudotransitivity of ∥ makes sufficient to
	// witness every racy address.
	switch op {
	case opLoad:
		st.loads++
		if st.hasWriter && depa.Parallel(st.writer, c.ts) {
			st.racy = true
		}
		if !st.hasReader || !depa.Parallel(st.reader, c.ts) {
			st.reader, st.hasReader = c.ts, true
		}
	case opStore:
		st.stores++
		if st.hasReader && depa.Parallel(st.reader, c.ts) {
			st.racy = true
		}
		if st.hasWriter && depa.Parallel(st.writer, c.ts) {
			st.racy = true
			return // a parallel writer never advances the writer shadow
		}
		st.writer, st.hasWriter = c.ts, true
	}
}

// classOf is the audit taxonomy for one address. Soundness rests only
// on racy → must-keep; the remaining classes explain *why* an address
// was provably race-free, in precedence order.
func classOf(st *addrState) string {
	switch {
	case st.racy:
		return ClassMustKeep
	case st.stores == 0:
		return ClassReadOnly
	case !st.multiStrand:
		return ClassStrandLocal
	case !st.outsideVA:
		return ClassViewProtected
	default:
		return ClassSyncSerialized
	}
}

// ordPass is pass 2: with the elided address set fixed, it walks the
// stream again recording, for each elided access, its 1-based ordinal
// in both detector ordinal spaces — space A ({FrameEnter, FrameReturn,
// Sync, Load, Store}: SP-bags, Offset-Span, English-Hebrew, depa) and
// space B (A plus {Stolen, ReduceStart, ReduceEnd, ViewAwareBegin,
// ViewAwareEnd}: SP+) — as run-length-encoded runs, plus the encoded
// bytes those access records occupy.
type ordPass struct {
	cilk.Empty
	elided       map[mem.Addr]bool
	ordA, ordB   int64
	runsA, runsB []run
	elidedEvents int64
	elidedBytes  int64
}

// FrameEnter implements cilk.Hooks.
func (o *ordPass) FrameEnter(f *cilk.Frame) { o.ordA++; o.ordB++ }

// FrameReturn implements cilk.Hooks.
func (o *ordPass) FrameReturn(g, f *cilk.Frame) { o.ordA++; o.ordB++ }

// Sync implements cilk.Hooks.
func (o *ordPass) Sync(f *cilk.Frame) { o.ordA++; o.ordB++ }

// ContinuationStolen implements cilk.Hooks.
func (o *ordPass) ContinuationStolen(f *cilk.Frame, vid cilk.ViewID) { o.ordB++ }

// ReduceStart implements cilk.Hooks.
func (o *ordPass) ReduceStart(f *cilk.Frame, keep, die cilk.ViewID) { o.ordB++ }

// ReduceEnd implements cilk.Hooks.
func (o *ordPass) ReduceEnd(f *cilk.Frame) { o.ordB++ }

// ViewAwareBegin implements cilk.Hooks.
func (o *ordPass) ViewAwareBegin(f *cilk.Frame, op cilk.ViewOp, r *cilk.Reducer) { o.ordB++ }

// ViewAwareEnd implements cilk.Hooks.
func (o *ordPass) ViewAwareEnd(f *cilk.Frame, op cilk.ViewOp, r *cilk.Reducer) { o.ordB++ }

// Load implements cilk.Hooks.
func (o *ordPass) Load(f *cilk.Frame, a mem.Addr) { o.access(f, a) }

// Store implements cilk.Hooks.
func (o *ordPass) Store(f *cilk.Frame, a mem.Addr) { o.access(f, a) }

func (o *ordPass) access(f *cilk.Frame, a mem.Addr) {
	o.ordA++
	o.ordB++
	if !o.elided[a] {
		return
	}
	o.elidedEvents++
	o.elidedBytes += int64(1 + uvarintLen(uint64(f.ID)) + uvarintLen(uint64(a)))
	o.runsA = appendRun(o.runsA, o.ordA)
	o.runsB = appendRun(o.runsB, o.ordB)
}

// uvarintLen is the encoded size of v as an unsigned varint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// Plan is the result of analyzing one trace: which addresses to elide,
// the audit explaining why, and the ordinal bookkeeping that keeps
// filtered-trace reports byte-identical to full-trace reports.
type Plan struct {
	aud          *Audit
	elided       map[mem.Addr]bool
	skip         *trace.SkipSet
	runsA, runsB []run
}

// Analyze runs the two classification passes over one encoded trace
// (v1 or v2) and returns its elision Plan. The stream is fully
// validated on the way (both passes replay it); a malformed, truncated
// or corrupt trace fails here with the usual *streamerr.Error kinds.
func Analyze(data []byte) (*Plan, error) {
	c := &classifier{addrs: make(map[mem.Addr]*addrState)}
	n, err := trace.ReplayAllBytes(data, c)
	if err != nil {
		return nil, err
	}

	addrs := make([]mem.Addr, 0, len(c.addrs))
	for a := range c.addrs {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })

	elided := make(map[mem.Addr]bool)
	byClass := make(map[string]*ClassSummary, len(classOrder))
	var elidedAddrs []mem.Addr
	for _, a := range addrs {
		st := c.addrs[a]
		cls := classOf(st)
		if cls != ClassMustKeep {
			elided[a] = true
			elidedAddrs = append(elidedAddrs, a)
		}
		cs := byClass[cls]
		if cs == nil {
			cs = &ClassSummary{Class: cls, Elided: cls != ClassMustKeep}
			byClass[cls] = cs
		}
		cs.Addresses++
		cs.Events += st.loads + st.stores
		cs.Ranges = appendAddrRange(cs.Ranges, uint64(a))
	}

	p2 := &ordPass{elided: elided}
	if _, err := trace.ReplayAllBytes(data, p2); err != nil {
		return nil, err
	}

	aud := &Audit{
		Schema:           AuditSchema,
		OriginalEvents:   n,
		FilteredEvents:   n - p2.elidedEvents,
		ElidedEvents:     p2.elidedEvents,
		ElidedBytes:      p2.elidedBytes,
		OriginalAccesses: c.accesses,
		KeptAccesses:     c.accesses - p2.elidedEvents,
		Addresses:        int64(len(addrs)),
		FastPathHits:     c.fastPathHits,
		Classes:          make([]ClassSummary, 0, len(classOrder)),
	}
	if aud.FilteredEvents > 0 {
		aud.Shrink = float64(aud.OriginalEvents) / float64(aud.FilteredEvents)
	}
	for _, cls := range classOrder {
		if cs := byClass[cls]; cs != nil {
			aud.Classes = append(aud.Classes, *cs)
		}
	}

	return &Plan{
		aud:    aud,
		elided: elided,
		skip:   trace.SkipSetFromAddrs(elidedAddrs),
		runsA:  p2.runsA,
		runsB:  p2.runsB,
	}, nil
}

// Audit returns the plan's "why elided" artifact.
func (p *Plan) Audit() *Audit { return p.aud }

// SkipSet returns the elided address ranges for trace.ReplayAllSkip.
func (p *Plan) SkipSet() *trace.SkipSet { return p.skip }

// Keep reports whether address a survives elision.
func (p *Plan) Keep(a mem.Addr) bool { return !p.elided[a] }

// Filter materializes the filtered trace for the stream the plan was
// computed from: same format version, access events to elided addresses
// removed, fresh integrity footer.
func (p *Plan) Filter(data []byte) ([]byte, trace.FilterStats, error) {
	return trace.FilterAccesses(data, p.Keep)
}
