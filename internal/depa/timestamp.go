// Package depa is a DePa-style series-parallel order-maintenance oracle
// and the parallel race detector built on it. Each strand of a Cilk
// computation is assigned a (dag-depth, fork-path) timestamp: the fork
// path records, for every fork the strand sits under, the dag depth at
// which that fork occurred and which branch the strand descends from
// (0 = the spawned child, 1 = the continuation). Two timestamps answer
// series/parallel queries by themselves — no disjoint-set forest, no
// shared mutable bags — which is what lets detection shard across workers:
// the SP relation of two accesses depends only on the two timestamps, not
// on any detector state evolved between them (Westrick/Wang/Acar,
// PAPERS.md "Efficient Parallel Determinacy Race Detection").
//
// The precedence rule, with e = (forkDepth, branch) the first entry where
// two fork paths diverge:
//
//   - equal forkDepth: the strands descend from different branches of the
//     same fork instance, which are logically parallel;
//   - different forkDepth: the two fork instances extend a common serial
//     chain — the path popped back to the shared prefix at an intervening
//     sync — so the strand under the shallower fork joined before the
//     deeper fork even occurred: it precedes;
//   - one path a prefix of the other (or equal): the strands share a
//     serial chain and the smaller dag depth precedes.
//
// Recording the fork depth per entry is load-bearing: branch bits alone
// would call a sync block's spawned child (path p·0) parallel with the
// next block's continuation (path p·1), though the sync serialized them.
//
// Fork paths pack into "graduation words": 32-bit entries, two lanes per
// uint64, high lane first, so path comparison scans words — one XOR per
// two forks of nesting — and typical spawn depths resolve in a word or
// two. Precedes/Parallel are O(1) for bounded spawn depth and O(depth/2)
// words in the worst case, against the Θ(α)-amortized forest walks of
// SP-bags.
package depa

import (
	"fmt"
	"strings"
)

// branch values within a path entry.
const (
	branchChild uint32 = 0 // the spawned child side of a fork
	branchCont  uint32 = 1 // the continuation side of a fork
)

// pathEntry packs (forkDepth, branch) as forkDepth<<1|branch. Fork depths
// along one path strictly increase, so entries compare like their fork
// depths once branches tie-break equal depths (child before continuation
// in serial order).
func pathEntry(forkDepth int32, branch uint32) uint32 {
	return uint32(forkDepth)<<1 | branch
}

// Timestamp is one strand's (dag-depth, fork-path) vertex ID. The zero
// value is the root strand: empty path, depth 0. Timestamps are immutable
// once created; the builder copies the packed words out of its mutable
// per-frame path.
type Timestamp struct {
	depth int32
	n     int32    // path entries
	words []uint64 // ceil(n/2) graduation words, two 32-bit lanes each
}

// Depth returns the strand's dag depth.
func (t Timestamp) Depth() int32 { return t.depth }

// PathLen returns the number of fork-path entries (the strand's fork
// nesting depth).
func (t Timestamp) PathLen() int { return int(t.n) }

// entryAt extracts path entry i.
func (t Timestamp) entryAt(i int32) uint32 {
	w := t.words[i>>1]
	if i&1 == 0 {
		return uint32(w >> 32)
	}
	return uint32(w)
}

// pack builds a Timestamp from an unpacked entry slice. The entries are
// copied; the caller's slice stays mutable.
func pack(path []uint32, depth int32) Timestamp {
	n := int32(len(path))
	if n == 0 {
		return Timestamp{depth: depth}
	}
	words := make([]uint64, (n+1)/2)
	for i, e := range path {
		if i&1 == 0 {
			words[i>>1] = uint64(e) << 32
		} else {
			words[i>>1] |= uint64(e)
		}
	}
	return Timestamp{depth: depth, n: n, words: words}
}

// String renders the timestamp for diagnostics: d<depth>[f<fork>·<branch> ...].
func (t Timestamp) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "d%d[", t.depth)
	for i := int32(0); i < t.n; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		e := t.entryAt(i)
		fmt.Fprintf(&b, "f%d·%d", e>>1, e&1)
	}
	b.WriteByte(']')
	return b.String()
}

// divergence finds the first path entry where a and b differ, scanning
// graduation words. It returns the entry index and the two entries, or
// ok=false when one path is a prefix of the other (or they are equal).
func divergence(a, b Timestamp) (ea, eb uint32, ok bool) {
	m := a.n
	if b.n < m {
		m = b.n
	}
	mw := int((m + 1) / 2)
	for w := 0; w < mw; w++ {
		x := a.words[w] ^ b.words[w]
		if x == 0 {
			continue
		}
		i := int32(w) << 1
		if x>>32 == 0 { // high lanes agree; divergence in the low lane
			i++
		}
		if i >= m {
			// The differing lane sits past the common length — the tail
			// of the longer path sharing a word with padding zeros.
			return 0, 0, false
		}
		return a.entryAt(i), b.entryAt(i), true
	}
	return 0, 0, false
}

// Parallel reports whether the strands at a and b are logically parallel.
func Parallel(a, b Timestamp) bool {
	ea, eb, ok := divergence(a, b)
	return ok && ea>>1 == eb>>1
}

// Precedes reports whether the strand at a strictly precedes the strand
// at b in the series-parallel order (a ≺ b: every execution runs a's
// instructions before b's).
func Precedes(a, b Timestamp) bool {
	ea, eb, ok := divergence(a, b)
	if ok {
		if ea>>1 == eb>>1 {
			return false // two branches of one fork: parallel
		}
		// Distinct forks extending one serial chain: the shallower fork's
		// subtree joined at a sync before the deeper fork occurred.
		return ea>>1 < eb>>1
	}
	return a.depth < b.depth
}

// SerialLess is the total order of strands in the canonical serial
// (depth-first, child before continuation) execution. It refines ≺ on
// serially ordered strands and orders parallel strands by which executes
// first serially — the order the live detector's merge step uses to
// linearize per-worker logs into the canonical event stream.
func SerialLess(a, b Timestamp) bool {
	ea, eb, ok := divergence(a, b)
	if ok {
		// Same fork: child (branch 0) runs first serially. Different
		// forks: the shallower fork's subtree runs first. Both cases are
		// the numeric entry order.
		return ea < eb
	}
	if a.depth != b.depth {
		return a.depth < b.depth
	}
	return a.n < b.n // unreachable for well-formed streams; keeps the order total
}

// Equal reports whether a and b name the same strand.
func Equal(a, b Timestamp) bool {
	if a.depth != b.depth || a.n != b.n {
		return false
	}
	for i := range a.words {
		if a.words[i] != b.words[i] {
			return false
		}
	}
	return true
}
