package depa

import (
	"fmt"
	"sort"

	"repro/internal/cilk"
	"repro/internal/mem"
)

// BCtx is the bridged execution context: a workload written against it
// runs unchanged on the serial cilk simulator (where the baseline
// detectors replay it) and live on the wsrt work-stealing runtime (where
// the depa live detector watches it during execution). The byte-parity
// contract between the two modes only makes sense because both substrates
// execute the same program text through this one interface.
type BCtx interface {
	// Spawn runs body as a spawned child that may execute in parallel
	// with the continuation.
	Spawn(label string, body func(BCtx))
	// Call runs body as a called child: a nested join scope, serial with
	// the caller.
	Call(label string, body func(BCtx))
	// Sync joins all children spawned in the current scope since the
	// last sync.
	Sync()
	// Load and Store report instrumented memory accesses.
	Load(a mem.Addr)
	Store(a mem.Addr)
}

// ParForGrain expands a parallel loop over [0, n) into the standard
// divide-and-conquer spawn tree with the exact shape of the serial
// executor's cilk_for — the expansion lives here, over BCtx, so both
// substrates get an identical frame and spawn structure.
func ParForGrain(c BCtx, label string, n, grain int, body func(BCtx, int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	c.Call(label, func(cc BCtx) {
		bridgeParforRec(cc, label, 0, n, grain, body)
	})
}

func bridgeParforRec(c BCtx, label string, lo, hi, grain int, body func(BCtx, int)) {
	if hi-lo <= grain {
		for i := lo; i < hi; i++ {
			body(c, i)
		}
		return
	}
	mid := lo + (hi-lo)/2
	c.Spawn(label, func(cc BCtx) {
		bridgeParforRec(cc, label, lo, mid, grain, body)
	})
	c.Call(label, func(cc BCtx) {
		bridgeParforRec(cc, label, mid, hi, grain, body)
	})
	c.Sync()
}

// cilkB adapts *cilk.Ctx to BCtx: running a workload through it under
// cilk.Run drives the serial detectors (the SP-bags baseline of the
// parity contract) or the trace recorder.
type cilkB struct{ c *cilk.Ctx }

// CilkCtx wraps a serial executor context for use with a bridged
// workload: cilk.Run(CilkProg(w.Body), ...).
func CilkProg(body func(BCtx)) func(*cilk.Ctx) {
	return func(c *cilk.Ctx) { body(cilkB{c}) }
}

func (b cilkB) Spawn(label string, body func(BCtx)) {
	b.c.Spawn(label, func(cc *cilk.Ctx) { body(cilkB{cc}) })
}

func (b cilkB) Call(label string, body func(BCtx)) {
	b.c.Call(label, func(cc *cilk.Ctx) { body(cilkB{cc}) })
}

func (b cilkB) Sync()            { b.c.Sync() }
func (b cilkB) Load(a mem.Addr)  { b.c.Load(a) }
func (b cilkB) Store(a mem.Addr) { b.c.Store(a) }

// Workload is a named bridged program with a known verdict, the live-mode
// analogue of a corpus entry. Build returns a fresh rerunnable body;
// address identity comes from the allocator, so building twice with fresh
// allocators yields identical address streams.
type Workload struct {
	Name string
	Desc string
	Racy bool // whether the program contains a determinacy race
	// Build constructs the program over a fresh allocator.
	Build func(al *mem.Allocator) func(BCtx)
}

// Workloads returns the catalogue of bridged programs: dedup- and
// ferret-class shapes after the paper's benchmark suite (minus the
// hyperobjects — live depa detection covers determinacy races), racy
// variants of each, and the scaling stress workload behind the Figure-7
// style table.
func Workloads() []Workload {
	return []Workload{
		{
			Name: "dedup",
			Desc: "content-chunk fingerprinting, per-chunk output slots (clean)",
			Build: func(al *mem.Allocator) func(BCtx) {
				return DedupWorkload(al, 64, false)
			},
		},
		{
			Name: "dedup-racy",
			Desc: "dedup with a shared duplicate-counter touched by every chunk",
			Racy: true,
			Build: func(al *mem.Allocator) func(BCtx) {
				return DedupWorkload(al, 64, true)
			},
		},
		{
			Name: "ferret",
			Desc: "similarity-search pipeline, per-query top-K slots (clean)",
			Build: func(al *mem.Allocator) func(BCtx) {
				return FerretWorkload(al, 16, 8, false)
			},
		},
		{
			Name: "ferret-racy",
			Desc: "ferret with a shared global-best cell written by every query",
			Racy: true,
			Build: func(al *mem.Allocator) func(BCtx) {
				return FerretWorkload(al, 16, 8, true)
			},
		},
		{
			Name: "stress",
			Desc: "deep spawn tree with hot per-leaf access loops (the scaling workload)",
			Build: func(al *mem.Allocator) func(BCtx) {
				return StressWorkload(al, 256, 64)
			},
		},
	}
}

// WorkloadByName resolves a catalogue entry.
func WorkloadByName(name string) (Workload, error) {
	var names []string
	for _, w := range Workloads() {
		if w.Name == name {
			return w, nil
		}
		names = append(names, w.Name)
	}
	sort.Strings(names)
	return Workload{}, fmt.Errorf("unknown workload %q (have %v)", name, names)
}

// DedupWorkload models the dedup kernel's detection-relevant shape: a
// parallel loop fingerprints content chunks (reading a shared input
// region, hashing into a private scratch cell per chunk) and writes each
// chunk's archive slot. With racy set, every chunk also bumps one shared
// duplicate counter — the classic reduction-turned-race.
func DedupWorkload(al *mem.Allocator, chunks int, racy bool) func(BCtx) {
	input := al.Alloc("input", chunks*4)
	slots := al.Alloc("slots", chunks)
	scratch := al.Alloc("scratch", chunks)
	dupes := al.Alloc("dupes", 1)
	return func(c BCtx) {
		ParForGrain(c, "chunk", chunks, 4, func(cc BCtx, i int) {
			// Fingerprint: read the chunk's input window, accumulate in
			// the chunk's private scratch cell.
			for k := 0; k < 4; k++ {
				cc.Load(input.At(i*4 + k))
				cc.Store(scratch.At(i))
			}
			cc.Load(scratch.At(i))
			cc.Store(slots.At(i))
			if racy {
				cc.Load(dupes.At(0))
				cc.Store(dupes.At(0))
			}
		})
	}
}

// FerretWorkload models the ferret pipeline's shape: each query spawns a
// scan over database segments, folding candidate distances into the
// query's private top-K cell; queries run in parallel. With racy set, the
// final rank stage of every query writes one shared global-best cell.
func FerretWorkload(al *mem.Allocator, queries, segments int, racy bool) func(BCtx) {
	db := al.Alloc("db", segments*4)
	topk := al.Alloc("topk", queries)
	best := al.Alloc("best", 1)
	return func(c BCtx) {
		ParForGrain(c, "query", queries, 1, func(cc BCtx, q int) {
			cc.Call("scan", func(sc BCtx) {
				for s := 0; s < segments; s++ {
					for k := 0; k < 4; k++ {
						sc.Load(db.At(s*4 + k))
					}
					sc.Load(topk.At(q))
					sc.Store(topk.At(q))
				}
			})
			if racy {
				cc.Load(best.At(0))
				cc.Store(best.At(0))
			}
		})
	}
}

// StressWorkload is the scaling benchmark's subject. Each leaf owns one
// shadow page (the layout strides by the page size, so the page-granular
// shards get an even split), runs hot strand-local load/store bursts that
// the coalescing fast path absorbs, then scatters stores across its page
// so the detection phase has real shadow work per leaf, and finally reads
// a neighbour's (read-only) cell to keep cross-leaf traffic in the log.
// The scatter fills an eighth of the page so the per-entry shadow
// protocol, not the one-time zeroing of freshly allocated shadow pages,
// dominates the measured detection time.
func StressWorkload(al *mem.Allocator, leaves, work int) func(BCtx) {
	const pageStride = 1 << pageBits
	const spread = pageStride / 8
	pool := al.Alloc("pool", leaves*pageStride)
	return func(c BCtx) {
		ParForGrain(c, "leaf", leaves, 1, func(cc BCtx, i int) {
			base := i * pageStride
			for k := 0; k < work; k++ {
				cc.Load(pool.At(base))
			}
			for k := 0; k < work; k++ {
				cc.Store(pool.At(base + 1))
			}
			for k := 0; k < spread; k++ {
				cc.Store(pool.At(base + 2 + k))
			}
			cc.Load(pool.At(((i + 1) % leaves) * pageStride))
		})
	}
}
