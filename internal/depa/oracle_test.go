package depa

import (
	"testing"
	"testing/quick"

	"repro/internal/cilk"
	"repro/internal/corpus"
	"repro/internal/dag"
	"repro/internal/mem"
	"repro/internal/progs"
)

// accessTimestamps expands the detector's (coalesced) access log into one
// timestamp per instrumented access, in serial event order — the k-th
// element corresponds to the k-th Load/Store of the run, which is exactly
// dag.Recorder's Acc[k] on the same run.
func accessTimestamps(d *Detector) []Timestamp {
	var out []Timestamp
	for _, e := range d.entries {
		for i := int32(0); i < e.count; i++ {
			out = append(out, d.strands[e.strand].ts)
		}
	}
	return out
}

// checkOracleEquivalence runs prog under spec with the dag recorder and a
// depa detector fanned off one event stream, then asserts that the two
// oracles agree on the SP relation of every pair of accesses: Parallel,
// Precedes in both directions, mutual exclusion of the three relations,
// and SerialLess consistency with the serial execution order.
func checkOracleEquivalence(t *testing.T, name string, prog func(*cilk.Ctx), spec cilk.StealSpec) {
	t.Helper()
	rec := dag.NewRecorder()
	det := New()
	cilk.Run(prog, cilk.Config{Spec: spec, Hooks: cilk.Multi{rec, det}})

	ts := accessTimestamps(det)
	acc := rec.D.Acc
	if len(ts) != len(acc) {
		t.Fatalf("%s: depa saw %d accesses, dag recorder %d", name, len(ts), len(acc))
	}
	for i := 0; i < len(acc); i++ {
		for j := i + 1; j < len(acc); j++ {
			si, sj := acc[i].Strand, acc[j].Strand
			if si == sj {
				if !Equal(ts[i], ts[j]) {
					t.Fatalf("%s: accesses %d,%d share dag strand %d but timestamps differ: %v vs %v",
						name, i, j, si, ts[i], ts[j])
				}
				continue
			}
			wantPar := rec.D.Parallel(si, sj)
			if got := Parallel(ts[i], ts[j]); got != wantPar {
				t.Fatalf("%s: accesses %d,%d (strands %d,%d): depa Parallel=%v, dag=%v (%v vs %v)",
					name, i, j, si, sj, got, wantPar, ts[i], ts[j])
			}
			wantPrec := rec.D.Precedes(si, sj)
			if got := Precedes(ts[i], ts[j]); got != wantPrec {
				t.Fatalf("%s: accesses %d,%d (strands %d,%d): depa Precedes=%v, dag=%v (%v vs %v)",
					name, i, j, si, sj, got, wantPrec, ts[i], ts[j])
			}
			wantRev := rec.D.Precedes(sj, si)
			if got := Precedes(ts[j], ts[i]); got != wantRev {
				t.Fatalf("%s: accesses %d,%d (strands %d,%d): depa reverse Precedes=%v, dag=%v (%v vs %v)",
					name, i, j, si, sj, got, wantRev, ts[j], ts[i])
			}
			n := 0
			for _, v := range []bool{wantPar, wantPrec, wantRev} {
				if v {
					n++
				}
			}
			if n != 1 {
				t.Fatalf("%s: accesses %d,%d: SP relations not mutually exclusive (par=%v prec=%v rev=%v)",
					name, i, j, wantPar, wantPrec, wantRev)
			}
			// Access i executed before access j in the (canonical) serial
			// run that produced this stream, so SerialLess must agree.
			if !Equal(ts[i], ts[j]) && !SerialLess(ts[i], ts[j]) {
				t.Fatalf("%s: accesses %d,%d executed in serial order but SerialLess=%v/%v (%v vs %v)",
					name, i, j, SerialLess(ts[i], ts[j]), SerialLess(ts[j], ts[i]), ts[i], ts[j])
			}
		}
	}
}

// TestOracleCorpusEquivalence sweeps the reducer-free corpus entries: on
// those programs the dag is the pure SP dag of the program, and the depa
// timestamps must reproduce its relations exactly under every schedule.
func TestOracleCorpusEquivalence(t *testing.T) {
	for _, e := range corpus.All() {
		if !e.Oblivious {
			continue
		}
		for _, spec := range []cilk.StealSpec{cilk.NoSteals{}, cilk.StealAll{}} {
			al := mem.NewAllocator()
			checkOracleEquivalence(t, e.Name, e.Build(al), spec)
		}
	}
}

// TestQuickOracleEquivalence property-tests the oracle contract on random
// reducer-free programs across schedules.
func TestQuickOracleEquivalence(t *testing.T) {
	check := func(seed int64) bool {
		for _, p := range []float64{0, 0.5, 1} {
			al := mem.NewAllocator()
			prog := progs.Random(al, progs.RandomOpts{Seed: seed, NoReducers: true})
			spec := progs.RandomSpec{Seed: seed + 3, P: p}
			checkOracleEquivalence(t, "random", prog, spec)
			if t.Failed() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDeepOracleEquivalence stresses deeper spawn nesting so fork
// paths spill across multiple graduation words.
func TestQuickDeepOracleEquivalence(t *testing.T) {
	check := func(seed int64) bool {
		al := mem.NewAllocator()
		prog := progs.Random(al, progs.RandomOpts{
			Seed: seed, NoReducers: true, MaxDepth: 9, MaxStmts: 4, Addrs: 4,
		})
		checkOracleEquivalence(t, "deep-random", prog, cilk.NoSteals{})
		return !t.Failed()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
