package depa

import (
	"testing"

	"repro/internal/cilk"
	"repro/internal/mem"
	"repro/internal/progs"
	"repro/internal/spbags"
)

// FuzzDepaOracle cross-validates the three authorities on fuzzer-chosen
// programs and schedules. The fuzzer picks a generator seed, a steal
// probability and a nesting budget; for the resulting program it asserts
// (a) the depa timestamps reproduce the dag oracle's SP relations for
// every pair of accesses — Parallel, Precedes both ways, mutual
// exclusion, SerialLess — and (b) the depa verdict agrees with SP-bags'
// byte for byte (modulo the relation wording the two provenance styles
// use). The explicit seeds cover the depths at which fork paths cross
// graduation-word boundaries; the fuzzer explores everything in between.
func FuzzDepaOracle(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed, byte(seed*36), uint8(seed))
	}
	// A large seed plus the deepest nesting budget: multi-word paths.
	f.Add(int64(1)<<40+12345, byte(255), uint8(6))
	f.Fuzz(func(t *testing.T, seed int64, pByte byte, depthSel uint8) {
		opts := progs.RandomOpts{
			Seed:       seed,
			NoReducers: true,
			MaxDepth:   3 + int(depthSel%7), // 3..9: up to multi-word fork paths
			MaxStmts:   5,
			Addrs:      6,
		}
		spec := progs.RandomSpec{Seed: seed ^ 0x5bf0, P: float64(pByte) / 255}

		al := mem.NewAllocator()
		checkOracleEquivalence(t, "fuzz", progs.Random(al, opts), spec)
		if t.Failed() {
			return
		}

		// Verdict agreement: rebuild the same program over a fresh
		// allocator (identical address stream) and feed one serial run to
		// SP-bags and a fresh depa detector side by side.
		al2 := mem.NewAllocator()
		bags := spbags.New()
		dep := New()
		cilk.Run(progs.Random(al2, opts), cilk.Config{Spec: spec, Hooks: cilk.Multi{bags, dep}})
		requireParity(t, "fuzz", bags, dep)
	})
}
