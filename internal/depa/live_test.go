package depa

import (
	"fmt"
	"testing"

	"repro/internal/cilk"
	"repro/internal/mem"
	"repro/internal/spbags"
	"repro/internal/wsrt"
)

// serialBaseline runs a bridged workload under the serial executor with
// SP-bags and a replay-mode depa detector attached.
func serialBaseline(w Workload) (*spbags.Detector, *Detector) {
	al := mem.NewAllocator()
	bags := spbags.New()
	dep := New()
	cilk.Run(CilkProg(w.Build(al)), cilk.Config{Hooks: cilk.Multi{bags, dep}})
	return bags, dep
}

// TestLiveSPBagsParity is the live-mode half of the acceptance criterion:
// for every bridged workload, running it live on wsrt at 1/2/4/8 workers
// (both deque implementations) yields verdicts byte-identical to the
// serial SP-bags baseline — including event ordinals, frame numbering and
// dedup counts, which only survive because the finalize step reconstructs
// the canonical serial stream exactly.
func TestLiveSPBagsParity(t *testing.T) {
	for _, w := range Workloads() {
		bags, _ := serialBaseline(w)
		want := renderReport(bags.Report(), true)
		if w.Racy == bags.Report().Empty() {
			t.Fatalf("%s: catalogue says racy=%v but SP-bags found %d races",
				w.Name, w.Racy, bags.Report().Distinct())
		}
		for _, workers := range []int{1, 2, 4, 8} {
			for _, lockFree := range []bool{false, true} {
				name := fmt.Sprintf("%s/w%d/lockfree=%v", w.Name, workers, lockFree)
				al := mem.NewAllocator()
				live := NewLive()
				rt := wsrt.New(workers)
				if lockFree {
					rt = wsrt.NewLockFree(workers)
				}
				live.Run(rt, w.Build(al))
				if got := renderReport(live.Report(), true); got != want {
					t.Fatalf("%s: live verdict diverges from serial SP-bags\n--- serial ---\n%s--- live ---\n%s",
						name, want, got)
				}
				st := live.ParallelStats()
				if st.Workers != workers {
					t.Fatalf("%s: stats.Workers = %d, want %d", name, st.Workers, workers)
				}
				if st.Accesses == 0 {
					t.Fatalf("%s: no accesses observed", name)
				}
			}
		}
	}
}

// TestLiveMatchesReplayExactly pins the stronger intra-depa contract: the
// live detector and the replay detector agree on everything, including
// the relation strings.
func TestLiveMatchesReplayExactly(t *testing.T) {
	for _, w := range Workloads() {
		_, rep := serialBaseline(w)
		want := renderReport(rep.Report(), false)
		al := mem.NewAllocator()
		live := NewLive()
		live.Run(wsrt.New(4), w.Build(al))
		if got := renderReport(live.Report(), false); got != want {
			t.Fatalf("%s: live and replay depa disagree\n--- replay ---\n%s--- live ---\n%s", w.Name, want, got)
		}
	}
}

// TestLiveEventCountsMatchSerial checks that the reconstructed canonical
// stream has the serial stream's exact event population.
func TestLiveEventCountsMatchSerial(t *testing.T) {
	for _, w := range Workloads() {
		_, rep := serialBaseline(w)
		want := rep.EventCounts()
		al := mem.NewAllocator()
		live := NewLive()
		live.Run(wsrt.New(3), w.Build(al))
		got := live.EventCounts()
		if got.FrameEnters != want.FrameEnters || got.FrameReturns != want.FrameReturns ||
			got.Syncs != want.Syncs || got.Loads != want.Loads || got.Stores != want.Stores {
			t.Fatalf("%s: live stream population diverges: got %+v want %+v", w.Name, got, want)
		}
	}
}

// TestLiveShardMerges checks the sync-boundary merge accounting: every
// spawned child must be merged into its parent exactly once.
func TestLiveShardMerges(t *testing.T) {
	al := mem.NewAllocator()
	live := NewLive()
	live.Run(wsrt.New(2), WorkloadMust(t, "stress").Build(al))
	st := live.ParallelStats()
	// 255 spawned children in a 256-leaf divide-and-conquer tree, plus
	// the final detection fan-out.
	if st.ShardMerges <= 255 {
		t.Fatalf("shard merges = %d, want > 255", st.ShardMerges)
	}
	if st.FastPathHits == 0 {
		t.Fatal("stress workload produced no fast-path hits")
	}
	// Each leaf's two access bursts coalesce to one entry apiece: 2*(work-1)
	// fast-path hits per leaf against the scattered stores that don't.
	if st.FastPathRate() <= 0.15 {
		t.Fatalf("fast-path rate = %v, want > 0.15 on the stress workload", st.FastPathRate())
	}
}

// WorkloadMust resolves a catalogue entry or fails the test.
func WorkloadMust(t *testing.T, name string) Workload {
	t.Helper()
	w, err := WorkloadByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return w
}
