package depa

// cursorFrame is one open Cilk function's slice of the cursor: the
// current fork path, the length to truncate back to at Sync, the
// executing strand's dag depth, the sync block's running depth maximum,
// and how the frame was entered (a spawned child closes its fork when
// it returns; a called child just extends the serial chain).
type cursorFrame struct {
	path        []uint32 // current fork path (base + one entry per joined spawn this block)
	basePathLen int      // fork path length at frame entry; Sync truncates to it
	depth       int32    // dag depth of the current strand
	maxBlock    int32    // max dag depth seen in the current sync block
	forkDepth   int32    // depth of the fork that spawned this frame (spawned only)
	spawned     bool
}

// Cursor maintains the (dag-depth, fork-path) position of the strand
// currently executing, over a stack of open Cilk functions. It is the
// timestamp arithmetic of the depa detector factored out on its own so
// other passes over the same event stream — the static elision
// classifier in internal/elide — can reconstruct strand timestamps
// without carrying the detector's access log or lineage. Enter, Return
// and Sync mirror the detector's FrameEnter, FrameReturn and Sync
// transitions exactly; Now packs the top frame's cursor into a
// comparable Timestamp.
//
// Callers own stream-order validation: Return on a single open frame or
// Sync with none is a caller bug, and the methods assume well-formed
// input rather than re-checking it.
type Cursor struct {
	frames []cursorFrame
}

// Open is the number of frames currently open.
func (c *Cursor) Open() int { return len(c.frames) }

// Enter starts the new function's first strand: a called child extends
// the caller's serial chain one level deeper; a spawned child descends
// the branch-0 side of a fresh fork at the parent's depth.
func (c *Cursor) Enter(spawned bool) {
	fs := cursorFrame{spawned: spawned}
	if n := len(c.frames); n > 0 {
		p := &c.frames[n-1]
		if spawned {
			fs.forkDepth = p.depth
			fs.path = append(append(make([]uint32, 0, len(p.path)+1), p.path...),
				pathEntry(p.depth, branchChild))
			fs.depth = p.depth + 1
		} else {
			fs.path = append(make([]uint32, 0, len(p.path)), p.path...)
			fs.depth = p.depth + 1
		}
	}
	fs.basePathLen = len(fs.path)
	fs.maxBlock = fs.depth
	c.frames = append(c.frames, fs)
}

// Return pops the returning frame and resumes its parent: after a
// spawned child the parent moves to the continuation branch of the
// child's fork; after a called child it continues the shared serial
// chain below the child's final depth. Either way the child's depths
// fold into the parent's sync block maximum, so the next Sync lands
// strictly after everything the block ran.
func (c *Cursor) Return() {
	n := len(c.frames)
	g := c.frames[n-1]
	c.frames = c.frames[:n-1]
	f := &c.frames[n-2]
	if g.spawned {
		f.path = append(f.path, pathEntry(g.forkDepth, branchCont))
		f.depth = g.forkDepth + 1
	} else {
		f.depth = g.depth + 1
	}
	if g.depth > f.maxBlock {
		f.maxBlock = g.depth
	}
	if g.maxBlock > f.maxBlock {
		f.maxBlock = g.maxBlock
	}
	if f.depth > f.maxBlock {
		f.maxBlock = f.depth
	}
}

// Sync joins the top frame's block: the fork path pops back to the
// frame's base (all the block's forks are closed) and the post-sync
// strand sits one level below everything the block executed.
func (c *Cursor) Sync() {
	f := &c.frames[len(c.frames)-1]
	f.path = f.path[:f.basePathLen]
	f.depth = f.maxBlock + 1
	f.maxBlock = f.depth
}

// Now packs the top frame's cursor into the executing strand's
// Timestamp. The result owns its storage; later cursor motion does not
// mutate it.
func (c *Cursor) Now() Timestamp {
	f := &c.frames[len(c.frames)-1]
	return pack(f.path, f.depth)
}
