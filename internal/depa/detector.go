package depa

import (
	"runtime"
	"time"

	"repro/internal/cilk"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/obs"
)

// noStrand is the shadow-space sentinel: no strand has accessed the
// location yet.
const noStrand int32 = -1

// access ops in the log.
const (
	opLoad uint8 = iota
	opStore
)

// strandRec is one strand of the computation: its timestamp and the
// lineage element of the Cilk function instantiation executing it (race
// reports attribute accesses to frames, exactly as SP-bags does).
type strandRec struct {
	ts    Timestamp
	frame int32
}

// entry is one logged access — or, thanks to the coalescing fast path, a
// run of count identical consecutive accesses by one strand. Runs are
// safe to collapse because nothing else the detector observes happens
// between the repeats: the strand's previous logged event was the same
// (addr, op), so every repeat sees identical shadow state and identical
// verdicts, and the repeats occupy consecutive event ordinals ord..ord+count-1.
type entry struct {
	addr   mem.Addr
	ord    int64
	strand int32
	count  int32
	op     uint8
}

// frameMeta tracks one open Cilk function's identity: the frame ID and
// label for stream-order diagnostics and the lineage element race
// reports attribute accesses to. The fork-path/depth arithmetic lives
// in the Cursor (cursor.go), which the detector advances in lockstep
// with this stack.
type frameMeta struct {
	id    cilk.FrameID
	label string
	elem  int32
}

// ParallelStats accounts for the parallel detection machinery: how many
// shards (or live workers) ran, how many shard result sets were merged at
// the join, and how much of the access stream the lock-free coalescing
// fast path absorbed before it ever reached a shadow lookup.
type ParallelStats struct {
	Workers      int
	ShardMerges  int64
	FastPathHits int64 // accesses absorbed by coalescing (never individually logged)
	Accesses     int64 // total instrumented accesses observed
}

// FastPathRate is the fraction of accesses the fast path absorbed.
func (p ParallelStats) FastPathRate() float64 {
	if p.Accesses == 0 {
		return 0
	}
	return float64(p.FastPathHits) / float64(p.Accesses)
}

// ParallelStatsProvider is implemented by the depa detectors; the report
// layer uses it to fill the schema's parallel section and raderd feeds
// its rader_depa_* metrics from it.
type ParallelStatsProvider interface {
	ParallelStats() ParallelStats
}

// Detector is the depa race detector in replay form: it consumes the same
// five events SP-bags consumes (FrameEnter, FrameReturn, Sync, Load,
// Store), reconstructs strand timestamps from the stream, logs accesses
// per strand, and defers the shadow-space checks to a detection phase
// sharded by shadow page across Shards goroutines. Its verdicts — race
// set, dedup counts, and event ordinals — are byte-identical to SP-bags'
// on every stream (TestDepaSPBagsParity): both algorithms answer the same
// question, "is the prior recorded access logically parallel to the
// current strand", SP-bags through bag membership and depa through
// timestamp comparison.
//
// Create one per run; Report finalizes on first call.
type Detector struct {
	cilk.Empty

	// Shards is the number of detection goroutines the finalize phase
	// fans out to (0 = GOMAXPROCS). The verdict is byte-identical for
	// every value: shards partition the address space by shadow page and
	// candidate races merge back in serial event order.
	Shards int

	// Trace, when set, collects rader_depa_* spans for the finalize
	// phase, one lane per shard.
	Trace *obs.Trace

	// Sequential runs the detection shards one after another on the
	// calling goroutine instead of fanning out. The verdict is identical
	// either way; the benchmark harness uses it to measure each shard's
	// busy time without scheduler interference.
	Sequential bool

	stack    []frameMeta
	cursor   Cursor
	lin      core.Lineage
	strands  []strandRec
	entries  []entry
	report   core.Report
	counts   obs.EventCounts
	events   int64 // ordinal of the event being processed (1-based)
	nextElem int32 // dense lineage element IDs, one per FrameEnter

	finalized  bool
	stats      ParallelStats
	shardTimes []time.Duration
}

// New returns a fresh depa detector.
func New() *Detector {
	return &Detector{}
}

// Name implements core.Detector.
func (d *Detector) Name() string { return "depa" }

// Report implements core.Detector. The first call runs the sharded
// detection phase over the access log; later calls return the same
// report.
func (d *Detector) Report() *core.Report {
	d.finalize()
	return &d.report
}

// ParallelStats implements ParallelStatsProvider (meaningful after the
// report has been finalized).
func (d *Detector) ParallelStats() ParallelStats {
	d.finalize()
	return d.stats
}

// EventCounts implements core.EventCountsProvider.
func (d *Detector) EventCounts() obs.EventCounts { return d.counts }

func (d *Detector) top() frameMeta { return d.stack[len(d.stack)-1] }

// newStrand registers the cursor's current position as a fresh strand,
// attributed to the top frame's lineage element, and returns its ID.
func (d *Detector) newStrand() int32 {
	id := int32(len(d.strands))
	d.strands = append(d.strands, strandRec{ts: d.cursor.Now(), frame: d.top().elem})
	return id
}

// curStrand is the strand executing now: strands are registered at every
// control event, so the newest strand belongs to the top frame's cursor.
func (d *Detector) curStrand() int32 { return int32(len(d.strands)) - 1 }

// FrameEnter starts the new function's first strand: a called child
// extends the caller's serial chain one level deeper; a spawned child
// descends the branch-0 side of a fresh fork at the parent's depth.
func (d *Detector) FrameEnter(f *cilk.Frame) {
	d.events++
	d.counts.FrameEnters++
	meta := frameMeta{id: f.ID, label: f.Label, elem: d.nextElem}
	d.nextElem++
	parent := core.NoParent
	if len(d.stack) > 0 {
		parent = d.top().elem
	}
	d.lin.Add(meta.elem, f.ID, f.Label, parent)
	d.stack = append(d.stack, meta)
	d.cursor.Enter(f.Spawned)
	d.newStrand()
}

// FrameReturn resumes the parent: after a spawned child it moves to the
// continuation branch of the child's fork; after a called child it
// continues the shared serial chain below the child's final depth. Either
// way the child's depths fold into the parent's sync block maximum, so
// the next Sync lands strictly after everything the block ran.
func (d *Detector) FrameReturn(g, f *cilk.Frame) {
	d.events++
	d.counts.FrameReturns++
	if len(d.stack) < 2 {
		panic(core.Violatef("depa", core.StreamOrder, g.ID,
			"return of frame %d with %d frames on the stack", g.ID, len(d.stack)))
	}
	grec := d.top()
	if grec.id != g.ID {
		panic(core.Violatef("depa", core.StreamOrder, g.ID,
			"event order violation: return %d, top %d", g.ID, grec.id))
	}
	d.stack = d.stack[:len(d.stack)-1]
	d.cursor.Return()
	d.newStrand()
}

// Sync joins the block: the fork path pops back to the frame's base (all
// the block's forks are closed) and the post-sync strand sits one level
// below everything the block executed.
func (d *Detector) Sync(f *cilk.Frame) {
	d.events++
	d.counts.Syncs++
	if len(d.stack) == 0 {
		panic(core.Violatef("depa", core.StreamOrder, f.ID, "sync before any frame entered"))
	}
	d.cursor.Sync()
	d.newStrand()
}

// logAccess appends to the access log, or bumps the count of the last
// entry when this access repeats it — the lock-free fast path for
// strand-local hot loops. The match is exact: same strand, address and
// op with nothing logged in between, so the repeats are consecutive
// events of one strand and collapse losslessly (see entry).
func (d *Detector) logAccess(f *cilk.Frame, a mem.Addr, op uint8) {
	if len(d.stack) == 0 {
		panic(core.Violatef("depa", core.StreamOrder, f.ID, "memory access before any frame entered"))
	}
	s := d.curStrand()
	if n := len(d.entries); n > 0 {
		if last := &d.entries[n-1]; last.strand == s && last.addr == a && last.op == op {
			last.count++
			d.stats.FastPathHits++
			return
		}
	}
	d.entries = append(d.entries, entry{addr: a, ord: d.events, strand: s, count: 1, op: op})
}

// Load implements the read rule (checked at finalize): a race iff the
// last writer is parallel with the reading strand.
func (d *Detector) Load(f *cilk.Frame, a mem.Addr) {
	d.events++
	d.counts.Loads++
	d.logAccess(f, a, opLoad)
}

// Store implements the write rule (checked at finalize): a race iff the
// last reader or last writer is parallel with the writing strand.
func (d *Detector) Store(f *cilk.Frame, a mem.Addr) {
	d.events++
	d.counts.Stores++
	d.logAccess(f, a, opStore)
}

// finalize runs the sharded detection phase once.
func (d *Detector) finalize() {
	if d.finalized {
		return
	}
	d.finalized = true
	shards := d.Shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	d.stats.Workers = shards
	d.stats.Accesses = int64(d.counts.Loads + d.counts.Stores)
	d.shardTimes = runDetection(d.entries, d.strands, &d.lin, shards, d.Sequential, d.Trace, &d.report)
	d.stats.ShardMerges += int64(shards)
	// Two shadow reads per log entry, not per access: the coalescing fast
	// path is precisely what keeps repeats away from the shadow space.
	d.counts.ShadowLookups += 2 * uint64(len(d.entries))
}

// ShardTimes returns the per-shard busy time of the detection phase (one
// element per shard, meaningful after finalize). The scaling table derives
// its critical-path speedup from these.
func (d *Detector) ShardTimes() []time.Duration {
	d.finalize()
	return d.shardTimes
}

// runDetection is the shared detection tail of both depa modes: shard the
// log, merge the candidates back into serial order, and fold them into
// the report. It returns per-shard busy times.
func runDetection(entries []entry, strands []strandRec, lin *core.Lineage, shards int, sequential bool, tr *obs.Trace, rp *core.Report) []time.Duration {
	span := tr.Start("rader_depa_finalize")
	pending, times := detectSharded(entries, strands, lin, shards, sequential, tr)
	for _, p := range mergePending(pending) {
		for i := int32(0); i < p.count; i++ {
			rp.Add(p.race)
		}
	}
	span.Arg("shards", shards).Arg("entries", len(entries)).
		Arg("races", rp.Distinct()).End()
	return times
}

var (
	_ core.Detector = (*Detector)(nil)
	_ cilk.Hooks    = (*Detector)(nil)
)
