package depa

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/cilk"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/mem"
	"repro/internal/progs"
	"repro/internal/spbags"
	"repro/internal/trace"
)

// renderReport serializes a report for byte comparison. The Relation
// string is the one field where depa and SP-bags legitimately differ — the
// two algorithms answer "was the prior access parallel" through different
// evidence ("writer parallel" vs "writer in P-bag") — so stripRelation
// masks it; everything else (race set, order, frames, labels, paths,
// addresses, event ordinals, dedup counts) must match byte for byte.
func renderReport(rp *core.Report, stripRelation bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "distinct=%d total=%d\n", rp.Distinct(), rp.Total())
	for _, r := range rp.Races() {
		if stripRelation {
			r.Prov.Relation = ""
		}
		fmt.Fprintf(&b, "%s prov={first=%d second=%d rel=%q}\n",
			r.String(), r.Prov.FirstEvent, r.Prov.SecondEvent, r.Prov.Relation)
	}
	return b.String()
}

func requireParity(t *testing.T, name string, bags *spbags.Detector, dep *Detector) {
	t.Helper()
	want := renderReport(bags.Report(), true)
	got := renderReport(dep.Report(), true)
	if got != want {
		t.Fatalf("%s: depa verdict diverges from SP-bags\n--- sp-bags ---\n%s--- depa ---\n%s", name, want, got)
	}
}

// TestDepaSPBagsParityLive runs every corpus entry under both schedule
// extremes with SP-bags and depa fanned off one event stream and requires
// byte-identical verdicts. The corpus includes reducer programs: both
// detectors are reducer-oblivious replayers consuming exactly the same
// five events, so they must agree there too.
func TestDepaSPBagsParityLive(t *testing.T) {
	for _, e := range corpus.All() {
		for si, spec := range []cilk.StealSpec{cilk.NoSteals{}, cilk.StealAll{}} {
			al := mem.NewAllocator()
			bags := spbags.New()
			dep := New()
			cilk.Run(e.Build(al), cilk.Config{Spec: spec, Hooks: cilk.Multi{bags, dep}})
			requireParity(t, fmt.Sprintf("%s/spec%d", e.Name, si), bags, dep)
		}
	}
}

// TestDepaSPBagsParityRandom widens the live parity sweep to random
// programs, with and without reducer machinery in the stream.
func TestDepaSPBagsParityRandom(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		for _, o := range []progs.RandomOpts{
			{Seed: seed, NoReducers: true},
			{Seed: seed, MonoidStores: true, Reads: true},
		} {
			for _, p := range []float64{0, 0.5, 1} {
				al := mem.NewAllocator()
				prog := progs.Random(al, o)
				bags := spbags.New()
				dep := New()
				spec := progs.RandomSpec{Seed: seed + 9, P: p}
				cilk.Run(prog, cilk.Config{Spec: spec, Hooks: cilk.Multi{bags, dep}})
				requireParity(t, fmt.Sprintf("random seed=%d noRed=%v p=%.1f", seed, o.NoReducers, p), bags, dep)
			}
		}
	}
}

// recordCorpusTrace runs a corpus entry once with the trace writer
// attached and returns the encoded stream.
func recordCorpusTrace(t *testing.T, e corpus.Entry, spec cilk.StealSpec) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	al := mem.NewAllocator()
	cilk.Run(e.Build(al), cilk.Config{Spec: spec, Hooks: w})
	if err := w.Close(); err != nil {
		t.Fatalf("%s: record: %v", e.Name, err)
	}
	return buf.Bytes()
}

// TestDepaSPBagsParityReplay replays recorded corpus traces into both
// detectors — the replay-mode half of the acceptance criterion — and also
// requires that the depa verdict is invariant across shard counts,
// including shard counts that do not divide the page population evenly.
func TestDepaSPBagsParityReplay(t *testing.T) {
	for _, e := range corpus.All() {
		for si, spec := range []cilk.StealSpec{cilk.NoSteals{}, cilk.StealAll{}} {
			name := fmt.Sprintf("%s/spec%d", e.Name, si)
			data := recordCorpusTrace(t, e, spec)

			bags := spbags.New()
			dep := New()
			if _, err := trace.ReplayAllBytes(data, bags, dep); err != nil {
				t.Fatalf("%s: replay: %v", name, err)
			}
			requireParity(t, name, bags, dep)

			base := renderReport(dep.Report(), false)
			for _, shards := range []int{1, 2, 3, 8} {
				d2 := New()
				d2.Shards = shards
				if _, err := trace.ReplayAllBytes(data, d2); err != nil {
					t.Fatalf("%s: replay shards=%d: %v", name, shards, err)
				}
				if got := renderReport(d2.Report(), false); got != base {
					t.Fatalf("%s: verdict depends on shard count %d\n--- base ---\n%s--- got ---\n%s",
						name, shards, base, got)
				}
				st := d2.ParallelStats()
				if st.Workers != shards || st.ShardMerges != int64(shards) {
					t.Fatalf("%s: stats = %+v, want workers=shardMerges=%d", name, st, shards)
				}
			}
		}
	}
}

// TestDepaSPBagsParityTruncated feeds both detectors every truncation
// prefix of a racy recorded trace: whatever prefix of the stream survives,
// the partial verdicts must still match byte for byte (the degraded-input
// half of the acceptance criterion).
func TestDepaSPBagsParityTruncated(t *testing.T) {
	var entry corpus.Entry
	for _, e := range corpus.All() {
		if e.Name == "oblivious-write-read" {
			entry = e
		}
	}
	if entry.Name == "" {
		t.Fatal("corpus entry oblivious-write-read missing")
	}
	data := recordCorpusTrace(t, entry, cilk.StealAll{})
	for cut := 0; cut <= len(data); cut += 7 {
		bags := spbags.New()
		dep := New()
		_, errB := trace.ReplayAllBytes(data[:cut], bags)
		_, errD := trace.ReplayAllBytes(data[:cut], dep)
		if (errB == nil) != (errD == nil) {
			t.Fatalf("cut=%d: replay error divergence: sp-bags %v, depa %v", cut, errB, errD)
		}
		requireParity(t, fmt.Sprintf("truncated cut=%d", cut), bags, dep)
	}
}

// TestDepaFastPathStats pins the coalescing fast path: a tight
// strand-local loop must collapse into one log entry while the verdict
// still reflects every access.
func TestDepaFastPathStats(t *testing.T) {
	al := mem.NewAllocator()
	x := al.Alloc("x", 1)
	dep := New()
	cilk.Run(func(c *cilk.Ctx) {
		for i := 0; i < 100; i++ {
			c.Store(x.At(0))
		}
	}, cilk.Config{Hooks: dep})
	if !dep.Report().Empty() {
		t.Fatalf("serial stores raced: %s", dep.Report().Summary())
	}
	st := dep.ParallelStats()
	if st.Accesses != 100 {
		t.Fatalf("accesses = %d, want 100", st.Accesses)
	}
	if st.FastPathHits != 99 {
		t.Fatalf("fast-path hits = %d, want 99", st.FastPathHits)
	}
	if got := st.FastPathRate(); got != 0.99 {
		t.Fatalf("fast-path rate = %v, want 0.99", got)
	}
	if n := len(dep.entries); n != 1 {
		t.Fatalf("log entries = %d, want 1 coalesced run", n)
	}
}
