package depa

import (
	"strings"
	"testing"
)

// mk builds a timestamp from raw (forkDepth, branch) entries.
func mk(depth int32, entries ...[2]int32) Timestamp {
	path := make([]uint32, 0, len(entries))
	for _, e := range entries {
		path = append(path, pathEntry(e[0], uint32(e[1])))
	}
	return pack(path, depth)
}

func TestPackRoundTrip(t *testing.T) {
	for n := 0; n <= 9; n++ {
		path := make([]uint32, 0, n)
		for i := 0; i < n; i++ {
			path = append(path, pathEntry(int32(3*i+1), uint32(i%2)))
		}
		ts := pack(path, int32(n+7))
		if ts.Depth() != int32(n+7) {
			t.Fatalf("n=%d: depth = %d, want %d", n, ts.Depth(), n+7)
		}
		if ts.PathLen() != n {
			t.Fatalf("n=%d: pathLen = %d, want %d", n, ts.PathLen(), n)
		}
		for i := 0; i < n; i++ {
			if got := ts.entryAt(int32(i)); got != path[i] {
				t.Fatalf("n=%d entry %d: got %#x want %#x", n, i, got, path[i])
			}
		}
		// Mutating the caller's slice must not alias the timestamp.
		for i := range path {
			path[i] = 0xffffffff
		}
		for i := 0; i < n; i++ {
			if ts.entryAt(int32(i)) == 0xffffffff {
				t.Fatalf("n=%d: pack aliased the caller's path slice", n)
			}
		}
	}
}

func TestHandRelations(t *testing.T) {
	root := mk(0)
	child := mk(1, [2]int32{0, 0})    // spawned child of the root fork
	cont := mk(1, [2]int32{0, 1})     // the continuation of that fork
	postSync := mk(3)                 // strand after the join, path popped
	deepFork := mk(4, [2]int32{3, 0}) // child of a later fork on the serial chain

	type rel struct {
		a, b     Timestamp
		precedes bool // a ≺ b
		follows  bool // b ≺ a
		parallel bool
	}
	cases := []rel{
		{root, child, true, false, false},
		{root, cont, true, false, false},
		{root, postSync, true, false, false},
		{child, cont, false, false, true},
		{child, postSync, true, false, false},
		{cont, postSync, true, false, false},
		// The earlier fork's subtree joined at the sync before the later
		// fork existed: child (fork depth 0) precedes deepFork (fork
		// depth 3), even though their branch bits alone would read as a
		// parallel child/continuation pair.
		{child, deepFork, true, false, false},
		{cont, deepFork, true, false, false},
		{postSync, deepFork, true, false, false},
	}
	for i, c := range cases {
		if got := Precedes(c.a, c.b); got != c.precedes {
			t.Errorf("case %d: Precedes(%v, %v) = %v, want %v", i, c.a, c.b, got, c.precedes)
		}
		if got := Precedes(c.b, c.a); got != c.follows {
			t.Errorf("case %d: Precedes(%v, %v) = %v, want %v", i, c.b, c.a, got, c.follows)
		}
		if got := Parallel(c.a, c.b); got != c.parallel {
			t.Errorf("case %d: Parallel(%v, %v) = %v, want %v", i, c.a, c.b, got, c.parallel)
		}
		if got := Parallel(c.b, c.a); got != c.parallel {
			t.Errorf("case %d: Parallel(%v, %v) = %v, want %v", i, c.b, c.a, got, c.parallel)
		}
		// Exactly one of ≺, ≻, ∥ holds for distinct strands.
		n := 0
		for _, v := range []bool{c.precedes, c.follows, c.parallel} {
			if v {
				n++
			}
		}
		if n != 1 {
			t.Errorf("case %d: relations not mutually exclusive", i)
		}
		// SerialLess refines ≺ and totally orders the pair.
		if c.precedes && !SerialLess(c.a, c.b) {
			t.Errorf("case %d: a ≺ b but !SerialLess(a, b)", i)
		}
		if SerialLess(c.a, c.b) == SerialLess(c.b, c.a) {
			t.Errorf("case %d: SerialLess not antisymmetric on distinct strands", i)
		}
	}
}

func TestSelfRelations(t *testing.T) {
	for _, ts := range []Timestamp{mk(0), mk(5, [2]int32{1, 0}, [2]int32{4, 1}), mk(9, [2]int32{2, 1}, [2]int32{5, 0}, [2]int32{7, 1})} {
		if !Equal(ts, ts) {
			t.Fatalf("Equal(%v, %v) = false", ts, ts)
		}
		if Parallel(ts, ts) {
			t.Fatalf("Parallel(%v, self) = true", ts)
		}
		if Precedes(ts, ts) {
			t.Fatalf("Precedes(%v, self) = true", ts)
		}
		if SerialLess(ts, ts) {
			t.Fatalf("SerialLess(%v, self) = true", ts)
		}
	}
}

// TestDivergencePastCommonLength pins the padding-lane subtlety: when two
// paths agree on their common prefix but one is longer, the XOR scan hits
// a nonzero word whose differing lane lies past the shorter path's length.
// That is a prefix case, not a divergence.
func TestDivergencePastCommonLength(t *testing.T) {
	short := mk(2, [2]int32{0, 0})                // one entry: high lane of word 0
	long := mk(4, [2]int32{0, 0}, [2]int32{2, 0}) // two entries sharing word 0
	if _, _, ok := divergence(short, long); ok {
		t.Fatalf("divergence(%v, %v) reported a split on a prefix pair", short, long)
	}
	if !Precedes(short, long) {
		t.Fatalf("Precedes(%v, %v) = false, want true (serial chain, smaller depth)", short, long)
	}
	if Parallel(short, long) {
		t.Fatalf("Parallel(%v, %v) = true on a prefix pair", short, long)
	}
}

func TestString(t *testing.T) {
	ts := mk(7, [2]int32{0, 0}, [2]int32{3, 1})
	s := ts.String()
	for _, want := range []string{"d7", "f0·0", "f3·1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q, missing %q", s, want)
		}
	}
}
