package depa

import (
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/obs"
)

// pageBits mirrors internal/mem's shadow page geometry: shards partition
// the address space by shadow page so each shard's working set is whole
// pages of its private shadow spaces.
const pageBits = 12

// pendingRace is one candidate race found by a shard, tagged with the
// serial ordinal of the access that fired it so the merge step can
// re-linearize candidates from all shards into the exact order a serial
// detector would have reported them.
type pendingRace struct {
	race  core.Race
	ord   int64 // serial ordinal of the firing access (first repeat of a run)
	sub   uint8 // at one store, the reader-race (0) precedes the writer-race (1)
	count int32 // coalesced repeats, each of which re-fires the same race
}

// detectSharded runs the shadow-space discipline over the access log,
// sharded by shadow page: shard s owns pages with page % shards == s.
// Every shard scans the whole log — a cheap branch per entry — and runs
// the full reader/writer protocol on its own pages only. The split is
// sound because per-address verdicts depend on nothing outside the
// address: the SP relation of two accesses comes from their strand
// timestamps alone, never from detector state evolved on other
// locations. There is no serial bucketing pass to Amdahl away the
// speedup; the only serial work left is the final merge of candidates.
// It also returns each shard's busy time — the basis of the scaling
// table's critical-path speedup. sequential runs the shards one after
// another on the calling goroutine (identical verdict, uncontended
// timings).
func detectSharded(entries []entry, strands []strandRec, lin *core.Lineage, shards int, sequential bool, tr *obs.Trace) ([][]pendingRace, []time.Duration) {
	if shards < 1 {
		shards = 1
	}
	out := make([][]pendingRace, shards)
	times := make([]time.Duration, shards)
	one := func(s int) {
		span := tr.StartTID(s+1, "rader_depa_shard")
		t0 := time.Now()
		out[s] = detectShard(entries, strands, lin, s, shards)
		times[s] = time.Since(t0)
		span.Arg("shard", s).Arg("races", len(out[s])).End()
	}
	if sequential || shards == 1 {
		for s := 0; s < shards; s++ {
			one(s)
		}
		return out, times
	}
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			one(s)
		}(s)
	}
	wg.Wait()
	return out, times
}

// detectShard is the serial shadow protocol restricted to one shard's
// pages. The rules are SP-bags' rules with "is the recorded frame's bag a
// P bag" replaced by "is the recorded strand's timestamp parallel with
// the current strand" — the same question answered from the timestamps,
// which is what makes the protocol shardable. The reader shadow advances
// only when the previous reader is serial with the current strand
// (pseudotransitivity of ∥ keeps one reader sufficient); the writer
// shadow advances only from none or a serial writer.
func detectShard(entries []entry, strands []strandRec, lin *core.Lineage, shard, shards int) []pendingRace {
	reader := mem.NewShadow(noStrand)
	writer := mem.NewShadow(noStrand)
	readerEv := mem.NewShadow(0)
	writerEv := mem.NewShadow(0)
	// The page filter runs once per entry per shard — it is the scan's
	// fixed cost and bounds the achievable speedup, so the power-of-two
	// case (every configuration the scaling table measures) replaces the
	// integer modulo with a mask.
	mask := -1
	if shards&(shards-1) == 0 {
		mask = shards - 1
	}
	var pend []pendingRace
	access := func(s int32, op core.AccessOp) core.Access {
		elem := strands[s].frame
		return core.Access{Frame: lin.Frame(elem), Label: lin.Label(elem), Path: lin.Path(elem), Op: op}
	}
	for _, e := range entries {
		if shards > 1 {
			page := int(uint64(e.addr) >> pageBits)
			if mask >= 0 {
				if page&mask != shard {
					continue
				}
			} else if page%shards != shard {
				continue
			}
		}
		cur := e.strand
		curTs := strands[cur].ts
		// A coalesced run re-executes the same rule count times against
		// unchanged foreign state: races re-fire per repeat (the report
		// dedups to the first, counting the rest) and a shadow advance
		// lands on the run's last ordinal, exactly as repeat-by-repeat
		// processing would leave it.
		lastOrd := e.ord + int64(e.count) - 1
		switch e.op {
		case opLoad:
			if w := writer.Get(e.addr); w != noStrand && Parallel(strands[w].ts, curTs) {
				pend = append(pend, pendingRace{
					race: core.Race{
						Kind: core.Determinacy, Addr: e.addr,
						First:  access(w, core.OpWrite),
						Second: access(cur, core.OpRead),
						Prov: core.Provenance{
							FirstEvent: int64(writerEv.Get(e.addr)), SecondEvent: e.ord,
							Relation: "writer parallel",
						},
					},
					ord: e.ord, sub: 0, count: e.count,
				})
			}
			if r := reader.Get(e.addr); r == noStrand || !Parallel(strands[r].ts, curTs) {
				reader.Set(e.addr, cur)
				readerEv.Set(e.addr, int32(lastOrd))
			}
		case opStore:
			if r := reader.Get(e.addr); r != noStrand && Parallel(strands[r].ts, curTs) {
				pend = append(pend, pendingRace{
					race: core.Race{
						Kind: core.Determinacy, Addr: e.addr,
						First:  access(r, core.OpRead),
						Second: access(cur, core.OpWrite),
						Prov: core.Provenance{
							FirstEvent: int64(readerEv.Get(e.addr)), SecondEvent: e.ord,
							Relation: "reader parallel",
						},
					},
					ord: e.ord, sub: 0, count: e.count,
				})
			}
			w := writer.Get(e.addr)
			if w != noStrand && Parallel(strands[w].ts, curTs) {
				pend = append(pend, pendingRace{
					race: core.Race{
						Kind: core.Determinacy, Addr: e.addr,
						First:  access(w, core.OpWrite),
						Second: access(cur, core.OpWrite),
						Prov: core.Provenance{
							FirstEvent: int64(writerEv.Get(e.addr)), SecondEvent: e.ord,
							Relation: "writer parallel",
						},
					},
					ord: e.ord, sub: 1, count: e.count,
				})
			}
			if w == noStrand || !Parallel(strands[w].ts, curTs) {
				writer.Set(e.addr, cur)
				writerEv.Set(e.addr, int32(lastOrd))
			}
		}
	}
	return pend
}

// mergePending joins the shards' candidates back into serial event
// order. (ord, sub) is unique per candidate — one access fires at most a
// reader-race then a writer-race — so the order, and therefore which
// representative the report retains under its dedup limit, is identical
// to a serial detector's regardless of shard count or scheduling.
func mergePending(byShard [][]pendingRace) []pendingRace {
	n := 0
	for _, s := range byShard {
		n += len(s)
	}
	all := make([]pendingRace, 0, n)
	for _, s := range byShard {
		all = append(all, s...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].ord != all[j].ord {
			return all[i].ord < all[j].ord
		}
		return all[i].sub < all[j].sub
	})
	return all
}
